#include "kernel/kernel.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "common/log.h"
#include "isa/instruction.h"

namespace flexstep::kernel {

using arch::Core;
using arch::TrapAction;
using arch::TrapCause;
using fs::CoreUnit;

namespace {
constexpr Cycle kTickCost = 200;  ///< Non-switching timer tick excursion.
}

Kernel::Kernel(soc::Soc& soc, KernelConfig config) : soc_(soc), config_(config) {
  cores_.resize(soc_.num_cores());
}

Kernel::~Kernel() = default;

u32 Kernel::add_task(RtTaskSpec spec) {
  FLEX_CHECK_MSG(!ran_, "add_task after run()");
  FLEX_CHECK(spec.period > 0);
  FLEX_CHECK(spec.core < soc_.num_cores());
  FLEX_CHECK(sched::num_copies(spec.type) == spec.checker_cores.size());
  for (CoreId c : spec.checker_cores) {
    FLEX_CHECK(c < soc_.num_cores());
    FLEX_CHECK(c != spec.core);
  }
  soc_.load_program(spec.program);
  tasks_.push_back(std::move(spec));
  return static_cast<u32>(tasks_.size() - 1);
}

u64 Kernel::checker_mask_of(const RtTaskSpec& task) const {
  u64 mask = 0;
  for (CoreId c : task.checker_cores) mask |= u64{1} << c;
  return mask;
}

// ---------------------------------------------------------------------------
// Custom-ISA sequences (Alg. 1 / Alg. 2 building blocks)
// ---------------------------------------------------------------------------

void Kernel::isa_configure_global(Core& core) {
  core.set_reg(5, current_main_mask_);
  core.set_reg(6, current_checker_mask_);
  core.exec_kernel_instruction(isa::make_r(isa::Opcode::kGConfigure, 0, 5, 6));
}

void Kernel::isa_check_disable(Core& core) {
  core.exec_kernel_instruction(isa::make_i(isa::Opcode::kMCheck, 0, 0, 0));
}

void Kernel::isa_check_enable_and_associate(Core& core, Job& job) {
  const RtTaskSpec& task = tasks_[job.task_id];
  core.set_reg(6, checker_mask_of(task));
  core.exec_kernel_instruction(isa::make_r(isa::Opcode::kMAssociate, 0, 6, 0));
  // Selective checking passes the remaining per-job budget through rs1.
  u8 budget_reg = 0;
  if (task.verify_budget != 0) {
    core.set_reg(7, job.budget_left);
    budget_reg = 7;
  }
  core.exec_kernel_instruction(isa::make_i(isa::Opcode::kMCheck, 0, budget_reg, 1));
  job.channels = soc_.unit(core.id()).out_channels();
}

void Kernel::isa_checker_set_state(Core& core, bool busy) {
  core.exec_kernel_instruction(
      isa::make_i(isa::Opcode::kCCheckState, 0, 0, busy ? 1 : 0));
}

// ---------------------------------------------------------------------------
// Scheduling
// ---------------------------------------------------------------------------

void Kernel::release_due_jobs(CoreId core, Cycle now) {
  auto& state = cores_[core];
  while (!state.pending.empty() && jobs_[state.pending.front()].release <= now) {
    const u32 id = state.pending.front();
    state.pending.pop_front();
    jobs_[id].state = Job::State::kReady;
    state.ready.push_back(id);
    ++stats_.released;
  }
}

i32 Kernel::pick_edf(CoreId core) const {
  const auto& ready = cores_[core].ready;
  i32 best = -1;
  for (u32 id : ready) {
    if (best < 0 || jobs_[id].abs_deadline < jobs_[best].abs_deadline ||
        (jobs_[id].abs_deadline == jobs_[best].abs_deadline &&
         id < static_cast<u32>(best))) {
      best = static_cast<i32>(id);
    }
  }
  return best;
}

void Kernel::arm_timer(CoreId core) {
  auto& state = cores_[core];
  if (state.pending.empty()) {
    soc_.core(core).clear_timer();
  } else {
    soc_.core(core).set_timer(jobs_[state.pending.front()].release);
  }
}

void Kernel::save_current(Core& core, bool requeue) {
  auto& state = cores_[core.id()];
  if (state.current < 0) return;
  Job& job = jobs_[static_cast<u32>(state.current)];
  job.saved_ctx = core.capture_state();
  job.has_ctx = true;
  if (job.is_checker) {
    job.replay_ctx = soc_.unit(core.id()).extract_replay_context();
    soc_.unit(core.id()).set_in_channel(nullptr);
  }
  if (requeue) {
    job.state = Job::State::kPreempted;
    state.ready.push_back(job.id);
    ++stats_.preemptions;
  }
  state.current = -1;
}

void Kernel::park_or_idle(Core& core) {
  core.set_idle();
  arm_timer(core.id());
}

void Kernel::dispatch(Core& core, Job& job) {
  auto& state = cores_[core.id()];
  // Remove from the ready list.
  state.ready.erase(std::find(state.ready.begin(), state.ready.end(), job.id));
  state.current = static_cast<i32>(job.id);
  job.state = Job::State::kRunning;
  ++stats_.context_switches;

  CoreUnit& unit = soc_.unit(core.id());
  const RtTaskSpec& task = tasks_[job.task_id];

  // Alg. 1 lines 13-16: (re)configure the global registers for this core's
  // new attribute before launching the job.
  const u64 bit = u64{1} << core.id();
  current_main_mask_ &= ~bit;
  current_checker_mask_ &= ~bit;
  if (job.is_checker) {
    current_checker_mask_ |= bit;
  } else if (task.type != sched::TaskType::kNormal) {
    current_main_mask_ |= bit;
  }
  isa_configure_global(core);

  if (job.is_checker) {
    // Alg. 1 lines 26-28 + the Alg. 2 checker thread.
    isa_checker_set_state(core, true);
    unit.set_in_channel(job.in_channel);
    unit.adopt_replay_context(job.replay_ctx);
    job.replay_ctx = {};
    if (unit.replay_suspended()) {
      // Resume a preempted mid-segment replay.
      core.restore_state(job.saved_ctx);
      unit.resume_replay();
      core.activate();
    } else {
      // Waiting for an SCP (Alg. 2 line 8): parked until the stream is ready;
      // pump() performs record/apply/jal as soon as a segment arrives.
      core.set_user_mode(false);
      core.set_idle();
    }
    job.started = true;
    arm_timer(core.id());
    return;
  }

  // Original (or non-verification) job.
  if (job.has_ctx) {
    core.restore_state(job.saved_ctx);
  } else {
    arch::ArchState fresh{};
    fresh.pc = task.program.entry();
    core.restore_state(fresh);
  }
  core.set_user_mode(false);
  const bool wants_checking =
      task.type != sched::TaskType::kNormal &&
      (task.verify_budget == 0 || job.budget_left > 0);
  if (wants_checking) {
    // Alg. 1 lines 22-25.
    isa_check_enable_and_associate(core, job);
    // Late-bind the checker jobs' input channels (first dispatch only).
    for (u32 jid = 0; jid < jobs_.size(); ++jid) {
      Job& checker = jobs_[jid];
      if (checker.is_checker && checker.main_job == static_cast<i32>(job.id) &&
          checker.in_channel == nullptr) {
        for (fs::Channel* ch : job.channels) {
          if (ch->checker_id() == checker.core) checker.in_channel = ch;
        }
        // If the checker job is currently dispatched and parked, hand the
        // channel to its unit immediately.
        if (cores_[checker.core].current == static_cast<i32>(jid)) {
          soc_.unit(checker.core).set_in_channel(checker.in_channel);
        }
      }
    }
  }
  core.set_user_mode(true);  // Kernel.Context.jalr (Alg. 1 line 29)
  core.activate();
  job.started = true;
  arm_timer(core.id());
}

void Kernel::context_switch(Core& core, bool requeue_current) {
  CoreUnit& unit = soc_.unit(core.id());
  // Alg. 1 lines 3-7: switch off the checking function by core attribute.
  const fs::CoreAttr attr = unit.attr();
  if (attr == fs::CoreAttr::kMain) {
    // Preserve the outgoing job's selective-checking budget before the
    // disable clears the CPC state.
    auto& state = cores_[core.id()];
    if (state.current >= 0) {
      Job& current = jobs_[static_cast<u32>(state.current)];
      if (!current.is_checker && tasks_[current.task_id].verify_budget != 0) {
        current.budget_left = unit.checking_budget();
      }
    }
    isa_check_disable(core);
  } else if (attr == fs::CoreAttr::kChecker) {
    isa_checker_set_state(core, false);
  }
  save_current(core, requeue_current);

  release_due_jobs(core.id(), core.cycle());
  const i32 next = pick_edf(core.id());
  if (next < 0) {
    park_or_idle(core);
    return;
  }
  dispatch(core, jobs_[static_cast<u32>(next)]);
}

void Kernel::complete_job(Core& core, Job& job) {
  job.completed = true;
  job.completed_at = core.cycle();
  job.state = Job::State::kDone;
  ++stats_.completed;
  const bool missed = job.completed_at > job.abs_deadline;
  if (missed) ++stats_.missed;
  stats_.jobs.push_back({job.task_id, job.job_index, job.is_checker, job.release,
                         job.abs_deadline, job.completed_at, true, missed});

  if (job.is_checker) {
    soc_.unit(core.id()).set_in_channel(nullptr);
    return;
  }
  if (tasks_[job.task_id].type != sched::TaskType::kNormal) {
    // Verification job done: close the stream so checkers can finish draining.
    soc_.fabric().dissociate(core.id());
    for (auto& other : jobs_) {
      if (other.is_checker && other.main_job == static_cast<i32>(job.id)) {
        other.main_finished = true;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Trap handling
// ---------------------------------------------------------------------------

TrapAction Kernel::on_trap(Core& core, TrapCause cause) {
  auto& state = cores_[core.id()];
  switch (cause) {
    case TrapCause::kEcall:
      return {TrapAction::Kind::kResumeUser, config_.ecall_cost};

    case TrapCause::kTimer: {
      release_due_jobs(core.id(), core.cycle());
      const i32 best = pick_edf(core.id());
      const i32 cur = state.current;
      const bool preempt =
          best >= 0 && (cur < 0 || jobs_[static_cast<u32>(best)].abs_deadline <
                                       jobs_[static_cast<u32>(cur)].abs_deadline);
      if (preempt) {
        context_switch(core, /*requeue_current=*/true);
        return {TrapAction::Kind::kContextSwitched, config_.context_switch_cost};
      }
      arm_timer(core.id());
      return {TrapAction::Kind::kResumeUser, kTickCost};
    }

    case TrapCause::kTaskExit: {
      FLEX_CHECK(state.current >= 0);
      Job& job = jobs_[static_cast<u32>(state.current)];
      complete_job(core, job);
      state.current = -1;
      context_switch(core, /*requeue_current=*/false);
      return {TrapAction::Kind::kContextSwitched, config_.context_switch_cost};
    }

    case TrapCause::kFetchFault: {
      CoreUnit& unit = soc_.unit(core.id());
      if (unit.replay_active() || unit.replay_suspended()) {
        unit.on_replay_fetch_fault();  // detection, not a crash
        return {TrapAction::Kind::kContextSwitched, 0};
      }
      FLEX_CHECK_MSG(false, "fetch fault outside replay");
      return {TrapAction::Kind::kHalt, 0};
    }

    case TrapCause::kSoftware:
      return {TrapAction::Kind::kResumeUser, kTickCost};
    case TrapCause::kIllegal:
      return {TrapAction::Kind::kHalt, 0};
  }
  return {TrapAction::Kind::kHalt, 0};
}

// ---------------------------------------------------------------------------
// Co-simulation loop
// ---------------------------------------------------------------------------

void Kernel::check_checker_progress(CoreId core_id) {
  auto& state = cores_[core_id];
  if (state.current < 0) return;
  Job& job = jobs_[static_cast<u32>(state.current)];
  if (!job.is_checker) return;
  Core& core = soc_.core(core_id);
  CoreUnit& unit = soc_.unit(core_id);

  if (unit.replay_active() || unit.replay_suspended()) return;

  if (job.in_channel == nullptr && job.main_job >= 0) {
    // Late channel binding (main job may have dispatched after us).
    const Job& main_job = jobs_[static_cast<u32>(job.main_job)];
    for (fs::Channel* ch : main_job.channels) {
      if (ch->checker_id() == core_id) {
        job.in_channel = ch;
        unit.set_in_channel(ch);
      }
    }
  }
  if (job.in_channel == nullptr) return;

  if (job.main_finished && job.in_channel->drained()) {
    complete_job(core, job);
    state.current = -1;
    context_switch(core, /*requeue_current=*/false);
    return;
  }
  if (job.in_channel->segment_ready(core.cycle())) {
    core.activate();
    unit.begin_replay();
    return;
  }
  const Cycle ready_at = job.in_channel->next_segment_ready_at();
  if (ready_at != fs::kNever) {
    core.advance_to(ready_at);
    core.activate();
    unit.begin_replay();
    return;
  }
  // Nothing to do yet: stay parked.
  if (core.status() == Core::Status::kRunning) core.set_idle();
}

void Kernel::pump(Cycle min_running_cycle) {
  (void)min_running_cycle;
  // ---- Phase A: dispatch, checker progress, unblocking ----
  for (CoreId id = 0; id < soc_.num_cores(); ++id) {
    Core& core = soc_.core(id);
    auto& state = cores_[id];

    // Dispatch idle cores (no current job) as soon as work exists: either a
    // ready job now, or a pending future release (the core's local clock
    // jumps to the release — releases are pre-known, so this is safe).
    if (state.current < 0 && core.status() == Core::Status::kIdle) {
      release_due_jobs(id, core.cycle());
      i32 pick = pick_edf(id);
      if (pick < 0 && !state.pending.empty()) {
        const Cycle at = jobs_[state.pending.front()].release;
        core.advance_to(at);
        release_due_jobs(id, at);
        pick = pick_edf(id);
      }
      if (pick >= 0) dispatch(core, jobs_[static_cast<u32>(pick)]);
    }

    // Parked checker cores: scheduler decisions happen directly (the core is
    // not executing, so no trap is needed). A release with an earlier
    // deadline preempts the waiting checker job.
    if (state.current >= 0 && core.status() == Core::Status::kIdle &&
        jobs_[static_cast<u32>(state.current)].is_checker) {
      release_due_jobs(id, core.cycle());
      if (!state.pending.empty()) {
        // Future releases are evaluated immediately while parked; a losing
        // job simply stays queued (EDF picks by deadline).
        const Cycle r = jobs_[state.pending.front()].release;
        const i32 cur = state.current;
        if (jobs_[state.pending.front()].abs_deadline <
            jobs_[static_cast<u32>(cur)].abs_deadline) {
          core.advance_to(r);
          release_due_jobs(id, r);
        }
      }
      const i32 best = pick_edf(id);
      if (best >= 0 && jobs_[static_cast<u32>(best)].abs_deadline <
                           jobs_[static_cast<u32>(state.current)].abs_deadline) {
        context_switch(core, /*requeue_current=*/true);
      } else {
        check_checker_progress(id);
      }
      continue;
    }

    // Backpressure resolution for blocked main cores.
    if (core.status() == Core::Status::kBlocked) {
      CoreUnit& unit = soc_.unit(id);
      if (unit.out_channels_have_space()) {
        core.unblock_at(std::max(core.cycle(), unit.out_channel_space_available_at()));
      }
    }
  }

  // ---- Phase B: timer delivery to still-blocked cores ----
  // Causality gate: nothing already schedulable may still happen before the
  // timer time — consider running cores and parked checkers' pending work.
  Cycle live_min = std::numeric_limits<Cycle>::max();
  for (CoreId id = 0; id < soc_.num_cores(); ++id) {
    Core& core = soc_.core(id);
    if (core.status() == Core::Status::kRunning) {
      live_min = std::min(live_min, core.cycle());
    } else if (core.status() == Core::Status::kIdle && cores_[id].current >= 0) {
      const Cycle ready_at = soc_.unit(id).next_segment_ready_at();
      if (ready_at != fs::kNever) live_min = std::min(live_min, ready_at);
    }
  }
  for (CoreId id = 0; id < soc_.num_cores(); ++id) {
    Core& core = soc_.core(id);
    if (core.status() == Core::Status::kBlocked && core.timer_armed() &&
        core.timer_at() <= live_min && cores_[id].current >= 0) {
      const Cycle at = std::max(core.cycle(), core.timer_at());
      core.clear_timer();
      core.deliver_interrupt(TrapCause::kTimer, at);
    }
  }
}

Core* Kernel::pick_next_core() {
  Core* best = nullptr;
  for (CoreId id = 0; id < soc_.num_cores(); ++id) {
    Core& core = soc_.core(id);
    if (core.status() != Core::Status::kRunning) continue;
    if (best == nullptr || core.cycle() < best->cycle()) best = &core;
  }
  return best;
}

bool Kernel::all_done() const {
  for (const auto& job : jobs_) {
    if (!job.completed) return false;
  }
  return true;
}

void Kernel::run() {
  FLEX_CHECK_MSG(!ran_, "run() called twice");
  ran_ = true;

  // ---- generate the job sets ----
  for (u32 tid = 0; tid < tasks_.size(); ++tid) {
    const RtTaskSpec& task = tasks_[tid];
    u32 index = 0;
    for (Cycle release = task.first_release;
         release + task.period <= config_.horizon; release += task.period) {
      if (task.max_jobs != 0 && index >= task.max_jobs) break;
      Job original;
      original.id = static_cast<u32>(jobs_.size());
      original.task_id = tid;
      original.job_index = index;
      original.core = task.core;
      original.release = release;
      original.abs_deadline = release + task.period;
      original.budget_left = task.verify_budget;
      jobs_.push_back(original);
      const u32 original_id = original.id;

      for (CoreId checker_core : task.checker_cores) {
        Job checker;
        checker.id = static_cast<u32>(jobs_.size());
        checker.task_id = tid;
        checker.job_index = index;
        checker.is_checker = true;
        checker.core = checker_core;
        checker.release = release;
        checker.abs_deadline = release + task.period;
        checker.main_job = static_cast<i32>(original_id);
        jobs_.push_back(checker);
      }
      ++index;
    }
  }

  // Per-core pending queues ordered by release.
  for (const auto& job : jobs_) cores_[job.core].pending.push_back(job.id);
  for (auto& state : cores_) {
    std::sort(state.pending.begin(), state.pending.end(), [&](u32 a, u32 b) {
      if (jobs_[a].release != jobs_[b].release) return jobs_[a].release < jobs_[b].release;
      return a < b;
    });
  }

  // ---- wire the SoC ----
  for (CoreId id = 0; id < soc_.num_cores(); ++id) {
    Core& core = soc_.core(id);
    core.set_trap_handler(this);
    core.set_user_mode(false);
    core.set_idle();
    soc_.unit(id).set_on_segment_done(
        [this, id](CoreUnit&, bool) { check_checker_progress(id); });
  }

  // ---- main loop ----
  u64 safety = 0;
  u32 stall_iterations = 0;
  const u64 safety_cap = 4'000'000'000ULL;
  while (!all_done()) {
    FLEX_CHECK_MSG(++safety < safety_cap, "kernel co-simulation runaway");

    Core* next = pick_next_core();
    const Cycle min_running =
        next != nullptr ? next->cycle() : std::numeric_limits<Cycle>::max();
    pump(min_running);
    next = pick_next_core();
    if (next != nullptr) {
      stall_iterations = 0;
      next->step();
      continue;
    }
    // Nothing runnable: pump() either made progress through dispatch /
    // checker wake-ups / unblocking, or the configuration is wedged.
    FLEX_CHECK_MSG(++stall_iterations < 4, "kernel co-simulation deadlock");
  }

  // Record any never-completed jobs (defensive; all_done implies none).
  for (const auto& job : jobs_) {
    if (!job.completed) {
      stats_.jobs.push_back({job.task_id, job.job_index, job.is_checker, job.release,
                             job.abs_deadline, 0, false, true});
      ++stats_.missed;
    }
  }
}

}  // namespace flexstep::kernel
