// Real-time task specification for the kernel model.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"
#include "isa/assembler.h"
#include "sched/task_model.h"

namespace flexstep::kernel {

struct RtTaskSpec {
  std::string name;
  isa::Program program;      ///< One job = one full run of the program.
  Cycle period = 0;          ///< Release period in cycles; implicit deadline.
  Cycle first_release = 0;
  u32 max_jobs = 0;          ///< Number of jobs to release (0 = fill horizon).

  sched::TaskType type = sched::TaskType::kNormal;
  CoreId core = 0;                  ///< Original-computation core (partitioned).
  std::vector<CoreId> checker_cores;  ///< For T^V2 (1) / T^V3 (2).

  /// Selective checking (paper Sec. V / Fig. 1(c)): verify only the first
  /// `verify_budget` instructions of each job (0 = verify the whole job).
  u64 verify_budget = 0;
};

struct JobRecord {
  u32 task_id = 0;
  u32 job_index = 0;
  bool is_checker = false;
  Cycle release = 0;
  Cycle abs_deadline = 0;
  Cycle completed_at = 0;
  bool completed = false;
  bool missed = false;
};

struct KernelStats {
  std::vector<JobRecord> jobs;
  u32 released = 0;
  u32 completed = 0;
  u32 missed = 0;
  u32 preemptions = 0;
  u32 context_switches = 0;
};

}  // namespace flexstep::kernel
