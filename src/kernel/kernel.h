// RTOS kernel model: partitioned EDF with full FlexStep integration.
//
// This is the paper's Sec. IV in executable form. The kernel is host-level
// software (see arch/trap.h) driving the simulated cores through their
// privileged API and the FlexStep custom ISA:
//   * Alg. 1 — every context switch disables checking / idles the checker,
//     (re-)writes the global configuration registers on new releases, then
//     associates checkers and re-enables checking for verification tasks;
//   * Alg. 2 — checker cores run a dedicated checker thread: record context
//     to the ASS, wait for SCPs, apply + jal, report results.
// Preemption is EDF-driven at job releases via per-core timers; checker jobs
// are first-class schedulable entities and are preemptible mid-replay (the
// capability LockStep/HMR lack, Fig. 1).
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "arch/trap.h"
#include "common/types.h"
#include "flexstep/core_unit.h"
#include "kernel/rt_task.h"
#include "soc/soc.h"

namespace flexstep::kernel {

struct KernelConfig {
  Cycle context_switch_cost = 2000;  ///< ~1.25 µs at 1.6 GHz.
  Cycle ecall_cost = 1200;
  Cycle horizon = us_to_cycles(200'000);  ///< Stop releasing jobs after this.
};

class Kernel final : public arch::TrapHandler {
 public:
  Kernel(soc::Soc& soc, KernelConfig config);
  ~Kernel() override;

  /// Register a task (before run()). Returns the task id.
  u32 add_task(RtTaskSpec spec);

  /// Release jobs, schedule, and run the SoC until every released job
  /// completed (or nothing can make progress).
  void run();

  const KernelStats& stats() const { return stats_; }
  soc::Soc& soc() { return soc_; }

  // arch::TrapHandler
  arch::TrapAction on_trap(arch::Core& core, arch::TrapCause cause) override;

 private:
  struct Job {
    u32 id = 0;
    u32 task_id = 0;
    u32 job_index = 0;
    bool is_checker = false;
    CoreId core = 0;
    Cycle release = 0;
    Cycle abs_deadline = 0;

    enum class State : u8 { kPending, kReady, kRunning, kPreempted, kDone };
    State state = State::kPending;

    // Saved execution context (original jobs and mid-replay checker jobs).
    arch::ArchState saved_ctx{};
    bool has_ctx = false;
    bool started = false;

    // Original verification jobs: channels created by M.associate.
    std::vector<fs::Channel*> channels;
    /// Selective checking: instructions of verification still owed this job.
    u64 budget_left = 0;

    // Checker jobs: the stream to verify + per-job replay state.
    fs::Channel* in_channel = nullptr;
    i32 main_job = -1;
    bool main_finished = false;
    fs::CoreUnit::ReplayContext replay_ctx{};

    bool completed = false;
    Cycle completed_at = 0;
  };

  struct CoreState {
    i32 current = -1;                ///< Running job id (-1 = none).
    std::vector<u32> ready;          ///< Ready job ids (EDF picks min deadline).
    std::deque<u32> pending;         ///< Future releases, sorted by release.
  };

  // ---- scheduling ----
  void release_due_jobs(CoreId core, Cycle now);
  i32 pick_edf(CoreId core) const;
  void arm_timer(CoreId core);
  /// Alg. 1: full context switch on `core` to the EDF-best ready job.
  void context_switch(arch::Core& core, bool requeue_current);
  void dispatch(arch::Core& core, Job& job);
  void park_or_idle(arch::Core& core);
  void complete_job(arch::Core& core, Job& job);
  void save_current(arch::Core& core, bool requeue);

  // ---- custom-ISA helpers (the kernel's Alg. 1/2 instruction sequences) ----
  void isa_configure_global(arch::Core& core);
  void isa_check_disable(arch::Core& core);
  void isa_check_enable_and_associate(arch::Core& core, Job& job);
  void isa_checker_set_state(arch::Core& core, bool busy);

  // ---- co-simulation loop ----
  void pump(Cycle frontier);
  arch::Core* pick_next_core();
  bool all_done() const;
  void check_checker_progress(CoreId core_id);
  u64 checker_mask_of(const RtTaskSpec& task) const;

  soc::Soc& soc_;
  KernelConfig config_;
  std::vector<RtTaskSpec> tasks_;
  std::vector<Job> jobs_;
  std::vector<CoreState> cores_;
  u64 current_main_mask_ = 0;
  u64 current_checker_mask_ = 0;
  KernelStats stats_;
  bool ran_ = false;
};

}  // namespace flexstep::kernel
