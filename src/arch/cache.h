// Set-associative tag-array cache model (timing only — data lives in Memory).
//
// Matches the paper's Tab. II hierarchy: blocking L1 I/D caches (16 KB,
// 4-way, 2-cycle latency) and a shared 512 KB 8-way L2 with 40-cycle latency.
// The model tracks tags + LRU so hit/miss behaviour reflects the workload's
// true address stream; miss penalties feed the core's cycle accounting.
//
// The hit probe is inlined here (it sits on the per-instruction hot path of
// the batched execution engine); victim selection and the L2/memory descent
// stay out of line.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace flexstep::io {
class ArchiveWriter;
class ArchiveReader;
}  // namespace flexstep::io

namespace flexstep::arch {

struct CacheConfig {
  u32 size_bytes = 16 * 1024;
  u32 ways = 4;
  u32 line_bytes = 64;
  Cycle latency = 2;  ///< Access latency on hit (paper "LatencyCycles").
};

class Cache {
 public:
  /// An invalid way carries this tag sentinel instead of a separate flag, so
  /// one set of 4 ways packs into a single 64 B host cache line. Real tags
  /// cannot collide with it: a tag is `addr >> (line_shift + set_shift)`, and
  /// an all-ones value would require addresses beyond any simulated mapping.
  static constexpr u64 kInvalidTag = ~u64{0};

  struct Way {
    u64 tag = kInvalidTag;
    u64 lru = 0;  ///< Higher = more recently used.
  };

  /// Full tag-array + LRU + statistics state (the data lives in Memory).
  struct Snapshot {
    std::vector<Way> ways;
    u64 tick = 0;
    u64 hits = 0;
    u64 misses = 0;
    std::size_t bytes() const { return ways.size() * sizeof(Way); }

    void serialize(io::ArchiveWriter& ar) const;
    void deserialize(io::ArchiveReader& ar);
  };

  explicit Cache(const CacheConfig& config, std::string name = {});

  void save(Snapshot& out) const;
  /// Restore; the geometry (sets × ways) must match this cache's config.
  void restore(const Snapshot& snapshot);

  /// Probe (and fill on miss). Returns true on hit.
  bool access(Addr addr) {
    const u64 line = addr >> line_shift_;
    const u32 set = static_cast<u32>(line & (num_sets_ - 1));
    const u64 tag = line >> set_shift_;
    Way* base = &ways_[static_cast<std::size_t>(set) * config_.ways];
    ++tick_;
    // Branchless scan: the hit way's position is data-dependent, so an
    // early-exit loop mispredicts on nearly every probe. A fixed-trip scan
    // compiles to conditional moves, leaving only the (highly predictable)
    // hit/miss branch. At most one way can match (fill only happens on miss).
    u32 hit_way = config_.ways;
    for (u32 w = 0; w < config_.ways; ++w) {
      if (base[w].tag == tag) hit_way = w;
    }
    if (hit_way != config_.ways) [[likely]] {
      base[hit_way].lru = tick_;
      ++hits_;
      return true;
    }
    fill_miss(base, tag);
    return false;
  }

  /// Invalidate everything (context-switch cold-start modelling, tests).
  void invalidate_all();

  // ---- fault-site adapter (fault/sites.h) ----

  /// Total tag-array ways (sets × associativity) enumerable as fault sites.
  std::size_t fault_way_count() const { return ways_.size(); }
  /// XOR one bit of a way's tag. Because an invalid way carries the all-ones
  /// kInvalidTag sentinel instead of a separate valid flag, the same 64-bit
  /// flip space covers both tag corruption (aliasing a way onto the wrong
  /// line) and valid-bit corruption (an invalid way turning into a bogus
  /// near-all-ones tag). Timing-only either way: data lives in Memory.
  void fault_flip_tag(std::size_t way_index, u64 bit) {
    ways_[way_index].tag ^= u64{1} << bit;
  }

  const CacheConfig& config() const { return config_; }
  u64 hits() const { return hits_; }
  u64 misses() const { return misses_; }
  double miss_rate() const;
  const std::string& name() const { return name_; }

 private:
  void fill_miss(Way* base, u64 tag);

  CacheConfig config_;
  std::string name_;
  u32 num_sets_;
  u32 line_shift_;
  u32 set_shift_;
  std::vector<Way> ways_;  ///< num_sets_ × config_.ways, row-major.
  u64 tick_ = 0;
  u64 hits_ = 0;
  u64 misses_ = 0;
};

/// Per-core view of the memory hierarchy: private L1I/L1D over a shared L2.
/// Returns *extra* stall cycles beyond the pipelined L1-hit path.
class CacheHierarchy {
 public:
  CacheHierarchy(const CacheConfig& l1i, const CacheConfig& l1d, Cache* shared_l2,
                 Cycle memory_latency);

  /// Private-cache state (the shared L2 is snapshotted by its owner, the SoC).
  struct Snapshot {
    Cache::Snapshot l1i;
    Cache::Snapshot l1d;
    std::size_t bytes() const { return l1i.bytes() + l1d.bytes(); }

    void serialize(io::ArchiveWriter& ar) const;
    void deserialize(io::ArchiveReader& ar);
  };

  void save(Snapshot& out) const {
    l1i_.save(out.l1i);
    l1d_.save(out.l1d);
  }
  void restore(const Snapshot& snapshot) {
    l1i_.restore(snapshot.l1i);
    l1d_.restore(snapshot.l1d);
  }

  /// Instruction fetch probe for the line containing `pc`.
  Cycle fetch(Addr pc) {
    if (l1i_.access(pc)) return 0;  // hit latency hidden by the pipelined front end
    return beyond_l1(pc);
  }

  /// Data access probe.
  Cycle data(Addr addr) {
    if (l1d_.access(addr)) return 0;  // hit path pipelined
    return beyond_l1(addr);
  }

  Cache& l1i() { return l1i_; }
  Cache& l1d() { return l1d_; }

  /// Upper bound on the extra stall any single probe can charge (L1 miss
  /// descending through the L2 to memory). Trace worst-case cost bounds.
  Cycle worst_miss_cost() const {
    return (l2_ != nullptr ? l2_->config().latency : Cycle{0}) + memory_latency_;
  }

 private:
  Cycle beyond_l1(Addr addr);

  Cache l1i_;
  Cache l1d_;
  Cache* l2_;  ///< Shared, owned by the SoC; may be null (then miss goes to memory).
  Cycle memory_latency_;
};

}  // namespace flexstep::arch
