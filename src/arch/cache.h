// Set-associative tag-array cache model (timing only — data lives in Memory).
//
// Matches the paper's Tab. II hierarchy: blocking L1 I/D caches (16 KB,
// 4-way, 2-cycle latency) and a shared 512 KB 8-way L2 with 40-cycle latency.
// The model tracks tags + LRU so hit/miss behaviour reflects the workload's
// true address stream; miss penalties feed the core's cycle accounting.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace flexstep::arch {

struct CacheConfig {
  u32 size_bytes = 16 * 1024;
  u32 ways = 4;
  u32 line_bytes = 64;
  Cycle latency = 2;  ///< Access latency on hit (paper "LatencyCycles").
};

class Cache {
 public:
  explicit Cache(const CacheConfig& config, std::string name = {});

  /// Probe (and fill on miss). Returns true on hit.
  bool access(Addr addr);

  /// Invalidate everything (context-switch cold-start modelling, tests).
  void invalidate_all();

  const CacheConfig& config() const { return config_; }
  u64 hits() const { return hits_; }
  u64 misses() const { return misses_; }
  double miss_rate() const;
  const std::string& name() const { return name_; }

 private:
  struct Way {
    u64 tag = 0;
    bool valid = false;
    u64 lru = 0;  ///< Higher = more recently used.
  };

  CacheConfig config_;
  std::string name_;
  u32 num_sets_;
  u32 line_shift_;
  std::vector<Way> ways_;  ///< num_sets_ × config_.ways, row-major.
  u64 tick_ = 0;
  u64 hits_ = 0;
  u64 misses_ = 0;
};

/// Per-core view of the memory hierarchy: private L1I/L1D over a shared L2.
/// Returns *extra* stall cycles beyond the pipelined L1-hit path.
class CacheHierarchy {
 public:
  CacheHierarchy(const CacheConfig& l1i, const CacheConfig& l1d, Cache* shared_l2,
                 Cycle memory_latency);

  /// Instruction fetch probe for the line containing `pc`.
  Cycle fetch(Addr pc);
  /// Data access probe.
  Cycle data(Addr addr);

  Cache& l1i() { return l1i_; }
  Cache& l1d() { return l1d_; }

 private:
  Cycle beyond_l1(Addr addr);

  Cache l1i_;
  Cache l1d_;
  Cache* l2_;  ///< Shared, owned by the SoC; may be null (then miss goes to memory).
  Cycle memory_latency_;
};

}  // namespace flexstep::arch
