// Core-level configuration, defaults matching the paper's Tab. II.
#pragma once

#include "arch/branch_pred.h"
#include "arch/cache.h"
#include "common/types.h"

namespace flexstep::arch {

struct CoreConfig {
  CacheConfig l1i{.size_bytes = 16 * 1024, .ways = 4, .line_bytes = 64, .latency = 2};
  CacheConfig l1d{.size_bytes = 16 * 1024, .ways = 4, .line_bytes = 64, .latency = 2};
  BranchPredictorConfig bpred{};

  /// DRAM latency beyond the L2 (the paper does not publish one; 100 cycles
  /// at 1.6 GHz ≈ 62 ns is a typical LPDDR4 round trip).
  Cycle memory_latency = 100;

  /// Load-to-use bubble in the 5-stage in-order pipe.
  Cycle load_use_penalty = 1;
};

}  // namespace flexstep::arch
