// Core-level configuration, defaults matching the paper's Tab. II.
#pragma once

#include "arch/branch_pred.h"
#include "arch/cache.h"
#include "common/types.h"

namespace flexstep::arch {

/// Superinstruction trace cache knobs (arch/trace.h). Traces are a pure host
/// optimisation: recorded/flushed traces never change architectural outcomes,
/// so these knobs tune speed, not semantics.
struct TraceConfig {
  bool enabled = true;
  /// Block-entry visits before a region is recorded as a trace.
  u32 heat_threshold = 4;
  /// Per-trace instruction cap (a basic block rarely gets near this).
  u32 max_insts = 192;
  /// Blocks shorter than this are not worth a trace dispatch.
  u32 min_insts = 2;
  /// log2 of the direct-mapped trace table size.
  u32 slots_log2 = 12;
};

struct CoreConfig {
  CacheConfig l1i{.size_bytes = 16 * 1024, .ways = 4, .line_bytes = 64, .latency = 2};
  CacheConfig l1d{.size_bytes = 16 * 1024, .ways = 4, .line_bytes = 64, .latency = 2};
  BranchPredictorConfig bpred{};

  /// DRAM latency beyond the L2 (the paper does not publish one; 100 cycles
  /// at 1.6 GHz ≈ 62 ns is a typical LPDDR4 round trip).
  Cycle memory_latency = 100;

  /// Load-to-use bubble in the 5-stage in-order pipe.
  Cycle load_use_penalty = 1;

  /// Superinstruction trace cache for the batched engine's ALU fast path.
  TraceConfig trace{};
};

}  // namespace flexstep::arch
