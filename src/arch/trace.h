// Superinstruction trace cache for the batched execution engine.
//
// Core::run_fast_path still pays a full decode-dispatch iteration per
// instruction (bounds check, fetch-line compare, opcode-range test, loop
// bounds, 70-way switch). Classic threaded-code results (Ertl & Gregg;
// QEMU-style TB chaining) show hot straight-line regions can amortise nearly
// all of that: record the region once, pre-decode it into a dense array of
// superinstructions (operands extracted, immediates pre-extended, static
// stall costs pre-summed), then replay the whole region with one tight loop
// and a single cycle/instret update at the end.
//
// Equivalence contract: executing a trace is bit-identical to stepping the
// same instructions through Core::step() — same registers, memory, cache
// tags/LRU, branch-predictor state, cycle/stall/mispredict accounting. The
// engine guarantees this by construction:
//   * traces contain only fast-path opcodes (the contiguous [kAdd, kSd]
//     prefix: ALU, branches, jumps, plain loads/stores) — nothing that can
//     trap, block, or touch the extension seams;
//   * a trace only dispatches when the quantum has headroom for its
//     worst-case cycle cost and full instruction count, so no interrupt
//     poll, quantum break, or instruction bound can land mid-trace;
//   * all dynamic microarchitectural probes (I-fetch at line boundaries,
//     D-cache per access, BHT/BTB/RAS per control transfer) execute in
//     program order inside the replay loop.
//
// Traces are derived state: flushed on snapshot restore (forks stay
// bit-exact trivially — they never influence outcomes, only host speed) and
// invalidated when any agent stores to a code page they cover. Invalidation
// is deferred to the next lookup boundary because the write may originate
// from inside the executing trace itself.
#pragma once

#include <memory>
#include <vector>

#include "arch/config.h"
#include "arch/memory.h"
#include "common/types.h"
#include "isa/instruction.h"

namespace flexstep::arch {

/// Superinstruction kinds, defined through one X-macro so the enum and the
/// threaded-dispatch table in core.cpp can never drift out of order.
///
/// The first block mirrors the fast-path prefix of isa::Opcode
/// value-for-value (static_asserts in trace.cpp pin the anchors), so
/// recording a plain instruction is a cast. Then the pseudo-ops:
///   * kIFetchProbe — I-cache probe for a 64 B fetch-line boundary inside
///     the trace (`target` = the boundary pc). The trace's first line is
///     probed dynamically against last_fetch_line before the replay loop.
///   * kExit — sentinel terminating every trace that does not end in a
///     control transfer; lets the replay loop drop its bound check.
///   * kStaticCost — `imm` cycles of statically known cost at this position
///     (ALU ops writing x0: their only architectural effect is the cycle, so
///     no op is emitted, but the fused segment-stream modes advance a per-op
///     commit clock and need the cost to stay in program order; adjacent
///     elided ops merge into one). The plain replay path skips it — the cost
///     is already summed into base_cost.
/// And the fused superinstructions (one dispatch for a hot two-instruction
/// idiom; both architectural commits still happen, in order):
///   * kLdAddAcc / kLdXorAcc — ld rd,(rs1)imm ; add/xor rs2,rs2,rd
///   * kAndiBne / kAndiBeq   — andi rd,rs1,imm ; bne/beq rd,x0 (terminal;
///                             branch pc = entry + 4*rs2, taken pc = target)
///   * kMulAddi              — mul rd,rs1,rs2 ; addi rd,rd,imm
///   * kAndAdd               — and rd,rs1,rs2 ; add rd,imm-reg,rd
// clang-format off
#define FLEX_TRACE_KIND_LIST(X)                                    \
  X(kAdd) X(kSub) X(kSll) X(kSrl) X(kSra) X(kAnd) X(kOr) X(kXor)   \
  X(kSlt) X(kSltu) X(kMul) X(kMulh) X(kDiv) X(kDivu) X(kRem)       \
  X(kRemu)                                                         \
  X(kAddi) X(kAndi) X(kOri) X(kXori) X(kSlli) X(kSrli) X(kSrai)    \
  X(kSlti) X(kSltiu) X(kLui)                                       \
  X(kBeq) X(kBne) X(kBlt) X(kBge) X(kBltu) X(kBgeu)                \
  X(kJal) X(kJalr)                                                 \
  X(kLb) X(kLbu) X(kLh) X(kLhu) X(kLw) X(kLwu) X(kLd)              \
  X(kSb) X(kSh) X(kSw) X(kSd)                                      \
  X(kIFetchProbe) X(kExit) X(kStaticCost)                          \
  X(kLdAddAcc) X(kLdXorAcc) X(kAndiBne) X(kAndiBeq) X(kMulAddi)    \
  X(kAndAdd)
// clang-format on

/// Generic fused pairs of single-cycle ALU ops (the bulk of any workload's
/// straight-line filler): one dispatch executes both halves. The first
/// half's operands live in the pair op itself, the second half's in the
/// next (payload) slot, which the handler consumes. The list is row-major in
/// (first, second) over a fixed 6-op alphabet, so the recorder computes the
/// kind as base + 6*first + second (static_asserts in trace.cpp pin it).
// clang-format off
#define FLEX_TRACE_ALU_ALPHABET(X) X(Add) X(Sub) X(Xor) X(Or) X(Slli) X(Addi)
#define FLEX_TRACE_PAIR_LIST(X)                                                  \
  X(AddAdd, Add, Add)   X(AddSub, Add, Sub)   X(AddXor, Add, Xor)                \
  X(AddOr, Add, Or)     X(AddSlli, Add, Slli) X(AddAddi, Add, Addi)              \
  X(SubAdd, Sub, Add)   X(SubSub, Sub, Sub)   X(SubXor, Sub, Xor)                \
  X(SubOr, Sub, Or)     X(SubSlli, Sub, Slli) X(SubAddi, Sub, Addi)              \
  X(XorAdd, Xor, Add)   X(XorSub, Xor, Sub)   X(XorXor, Xor, Xor)                \
  X(XorOr, Xor, Or)     X(XorSlli, Xor, Slli) X(XorAddi, Xor, Addi)              \
  X(OrAdd, Or, Add)     X(OrSub, Or, Sub)     X(OrXor, Or, Xor)                  \
  X(OrOr, Or, Or)       X(OrSlli, Or, Slli)   X(OrAddi, Or, Addi)                \
  X(SlliAdd, Slli, Add) X(SlliSub, Slli, Sub) X(SlliXor, Slli, Xor)              \
  X(SlliOr, Slli, Or)   X(SlliSlli, Slli, Slli) X(SlliAddi, Slli, Addi)          \
  X(AddiAdd, Addi, Add) X(AddiSub, Addi, Sub) X(AddiXor, Addi, Xor)              \
  X(AddiOr, Addi, Or)   X(AddiSlli, Addi, Slli) X(AddiAddi, Addi, Addi)
// clang-format on

enum class TraceOpKind : u8 {
#define FLEX_TRACE_ENUM(name) name,
  FLEX_TRACE_KIND_LIST(FLEX_TRACE_ENUM)
#undef FLEX_TRACE_ENUM
#define FLEX_TRACE_PAIR_ENUM(name, first, second) kPair##name,
  FLEX_TRACE_PAIR_LIST(FLEX_TRACE_PAIR_ENUM)
#undef FLEX_TRACE_PAIR_ENUM
};

/// One pre-decoded superinstruction. 16 bytes; meaning of the fields varies
/// by kind (see Core::execute_trace):
///   * ALU-imm / loads / stores: `imm` is the sign-extended immediate
///     (shift amounts pre-masked, LUI pre-shifted).
///   * branches / kJal: `imm` is the instruction index from the trace entry
///     (pc = entry_pc + 4*imm), `target` the precomputed taken/jump target.
///   * kJalr: `imm` is the offset, `target` the instruction's own pc.
///   * kIFetchProbe: `target` is the pc whose line to probe.
struct TraceOp {
  u8 kind = 0;
  u8 rd = 0;
  u8 rs1 = 0;
  u8 rs2 = 0;
  i32 imm = 0;
  u64 target = 0;
};

/// A recorded straight-line region: at most one control transfer, as the
/// final instruction. Ends early before any slow-path opcode, at the image
/// end, or at the configured length cap.
struct Trace {
  Addr entry_pc = 0;
  /// Fall-through continuation: pc after the last instruction. The terminal
  /// control op overrides it dynamically (taken branch / jump target).
  Addr exit_pc = 0;
  /// Fetch line of the last instruction — last_fetch_line after replay.
  Addr exit_line = 0;
  u32 inst_count = 0;
  /// Static cycle cost: 1/instruction + multiplier/divider latencies +
  /// load-use bubbles. Dynamic stalls (cache misses, mispredicts, redirect
  /// bubbles) are accumulated during replay and added on top.
  Cycle base_cost = 0;
  /// base_cost + worst-case dynamic stalls: the quantum-headroom bound that
  /// guarantees no cycle limit can expire mid-trace.
  Cycle worst_cost = 0;
  u64 first_page = 0;  ///< Code pages covered (write-invalidation range).
  u64 last_page = 0;
  /// Plain loads + stores in the trace, and their kinds in program order
  /// (0 = load — including the load half of kLdAddAcc/kLdXorAcc — 1 = store).
  /// The fused segment-stream modes gate dispatch on these: a trace only
  /// replays when the cursor has room for every record (producer) or the
  /// staged log prefix matches kind-for-kind (consumer), so no mid-trace
  /// bail-out can be needed.
  u32 mem_ops = 0;
  std::vector<u8> mem_kinds;
  /// Data-memory share of worst_cost: per load the load-use penalty plus a
  /// worst-case d-cache miss, per store a worst-case miss. Replay serves every
  /// access from the staged log at a fixed FIFO stall instead, so its dispatch
  /// bound is worst_cost - mem_worst_cost + mem_ops * replay_stall — without
  /// this correction, memory-heavy hot traces can out-budget a checker's
  /// whole quantum and never dispatch.
  Cycle mem_worst_cost = 0;
  /// Worst-case pre-commit clock offset (from trace entry) at the LAST memory
  /// op's replay compare stamp, counting prior memory ops at zero — the
  /// dispatcher adds (mem_ops - 1) * replay_stall for them. This bounds where
  /// the final channel pop of the trace can land, which is the only part of a
  /// replayed trace the scheduler can observe: when the engine has promised a
  /// bulk-consume horizon, a trace whose pops all fit below the quantum bound
  /// may dispatch even though its tail (trailing ALU / probes / terminal)
  /// would overrun the bound. Meaningless when mem_ops == 0.
  Cycle last_pop_worst = 0;
  std::vector<TraceOp> ops;  ///< Includes pseudo-ops; size() >= inst_count.
};

/// Worst-case/static cost parameters captured from the owning core's
/// configuration at construction (used to precompute trace cost bounds).
struct TraceCostModel {
  Cycle worst_miss = 0;  ///< Upper bound on one cache-probe stall (L2 + DRAM).
  Cycle load_use = 0;
  Cycle mispredict = 0;
};

/// Per-core trace store: direct-mapped table keyed by entry pc, with a heat
/// table in front so only genuinely hot block entries get recorded.
class TraceCache final : public CodeWriteListener {
 public:
  struct Stats {
    u64 dispatches = 0;       ///< Traces replayed.
    u64 insts_from_traces = 0;
    u64 recorded = 0;
    u64 refused = 0;          ///< Too-short blocks marked never-record.
    u64 seeded = 0;           ///< Traces installed by static seeding.
    u64 heat_misses = 0;      ///< Entry misses spent warming heat counters.
    u64 code_write_flushes = 0;  ///< Traces dropped by stores to code pages.
    u64 full_flushes = 0;        ///< flush() calls (snapshot restore).
  };

  TraceCache(const TraceConfig& config, Memory& memory, const TraceCostModel& cost);
  ~TraceCache();

  TraceCache(const TraceCache&) = delete;
  TraceCache& operator=(const TraceCache&) = delete;

  /// Trace starting exactly at `pc`, or nullptr. Processes any pending
  /// write-invalidation first — callers must therefore not hold a Trace
  /// pointer across lookups.
  const Trace* lookup(Addr pc) {
    if (pending_invalidation_) [[unlikely]] process_pending_invalidation();
    const Slot& slot = slots_[slot_index(pc)];
    return slot.entry_pc == pc ? slot.trace.get() : nullptr;
  }

  /// Lookup miss at a block entry: bump the heat counter and, at threshold,
  /// record the region from the pre-decoded image stream. Returns the fresh
  /// trace when one was recorded.
  const Trace* notice_entry(Addr pc, const isa::Instruction* code, Addr base, Addr end);

  /// Statically-seeded recording: install a trace at `pc` immediately,
  /// bypassing the heat counter (the static analysis already declared the
  /// entry hot). Returns true when `pc` is covered afterwards (freshly
  /// recorded or already present). A refused seed (region too short) marks
  /// the heat entry never-record, exactly like a refused hot entry. Seeds are
  /// host-speed only — they never change simulated outcomes — and remain
  /// evictable by genuine heat through the normal direct-mapped slot path.
  bool seed(Addr pc, const isa::Instruction* code, Addr base, Addr end);

  /// Drop every trace (snapshot restore: traces are derived state).
  void flush();

  void count_dispatch(u32 insts) {
    ++stats_.dispatches;
    stats_.insts_from_traces += insts;
  }

  const Stats& stats() const { return stats_; }

  // CodeWriteListener: deferred — the store may run inside a live trace.
  void on_code_page_written(u64 page_id) override;

 private:
  struct Slot {
    Addr entry_pc = ~Addr{0};
    std::unique_ptr<Trace> trace;
  };
  struct Heat {
    Addr pc = ~Addr{0};
    u32 count = 0;
  };
  static constexpr u32 kRefused = ~u32{0};

  std::size_t slot_index(Addr pc) const { return (pc >> 2) & slot_mask_; }
  bool record(Addr pc, const isa::Instruction* code, Addr base, Addr end, Trace& out) const;
  void process_pending_invalidation();

  TraceConfig config_;
  Memory& memory_;
  TraceCostModel cost_;
  std::size_t slot_mask_;
  std::vector<Slot> slots_;
  std::vector<Heat> heat_;
  bool pending_invalidation_ = false;
  std::vector<u64> dirty_pages_;
  Stats stats_;
};

/// Would the trace recorder fuse `first`+`second` into one superinstruction
/// if they appeared adjacently inside a recorded region? Mirrors the peephole
/// in TraceCache::record (named idioms + the generic ALU-pair alphabet),
/// ignoring position-dependent constraints (fetch-line split, branch-index
/// width). Used by the static lint to flag jumps that enter the second half
/// of a fusible pair.
bool trace_pair_fusible(const isa::Instruction& first, const isa::Instruction& second);

}  // namespace flexstep::arch
