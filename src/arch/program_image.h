// Loaded-program registry: maps PC ranges to pre-decoded instruction streams.
//
// Programs are written to simulated memory in encoded form (the memory image
// is real) and additionally kept pre-decoded for fast fetch. Cores look up
// the image containing the current PC and index into it; self-modifying code
// is not supported (none of the paper's workloads need it).
#pragma once

#include <memory>
#include <vector>

#include "common/types.h"
#include "isa/assembler.h"

namespace flexstep::arch {

class Memory;

struct LoadedImage {
  Addr base = 0;
  Addr end = 0;  ///< One past the last instruction byte.
  std::vector<isa::Instruction> code;

  bool contains(Addr pc) const { return pc >= base && pc < end; }
  const isa::Instruction& at(Addr pc) const { return code[(pc - base) / 4]; }
};

class ImageRegistry {
 public:
  /// Write the program's encoded form into memory and register the decoded
  /// stream. Overlapping images are rejected.
  const LoadedImage* load(Memory& memory, const isa::Program& program);

  /// Image containing `pc`, or nullptr.
  const LoadedImage* find(Addr pc) const;

  std::size_t size() const { return images_.size(); }

 private:
  std::vector<std::unique_ptr<LoadedImage>> images_;
};

}  // namespace flexstep::arch
