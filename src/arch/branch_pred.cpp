#include "arch/branch_pred.h"

#include <bit>

#include "common/check.h"

namespace flexstep::arch {

namespace {
constexpr u8 kWeaklyNotTaken = 1;  // counter states: 0,1 predict not-taken; 2,3 taken
}

BranchPredictor::BranchPredictor(const BranchPredictorConfig& config) : config_(config) {
  FLEX_CHECK(std::has_single_bit(config.bht_entries));
  bht_.assign(config.bht_entries, kWeaklyNotTaken);
  btb_.assign(config.btb_entries, {});
  ras_.assign(config.ras_entries, 0);
}




void BranchPredictor::save(Snapshot& out) const {
  out.bht = bht_;
  out.btb = btb_;
  out.ras = ras_;
  out.ras_top = ras_top_;
  out.btb_tick = btb_tick_;
}

void BranchPredictor::restore(const Snapshot& snapshot) {
  FLEX_CHECK_MSG(snapshot.bht.size() == bht_.size() && snapshot.btb.size() == btb_.size() &&
                     snapshot.ras.size() == ras_.size(),
                 "branch-predictor snapshot geometry mismatch");
  bht_ = snapshot.bht;
  btb_ = snapshot.btb;
  ras_ = snapshot.ras;
  ras_top_ = snapshot.ras_top;
  btb_tick_ = snapshot.btb_tick;
}

void BranchPredictor::btb_insert(Addr pc, Addr target) {
  ++btb_tick_;
  BtbEntry* victim = &btb_.front();
  for (auto& entry : btb_) {
    if (entry.valid && entry.pc == pc) {
      entry.target = target;
      entry.lru = btb_tick_;
      return;
    }
    if (!entry.valid) {
      victim = &entry;
      break;
    }
    if (entry.lru < victim->lru) victim = &entry;
  }
  *victim = {pc, target, true, btb_tick_};
}



void BranchPredictor::reset() {
  bht_.assign(bht_.size(), kWeaklyNotTaken);
  for (auto& entry : btb_) entry.valid = false;
  ras_top_ = 0;
}

}  // namespace flexstep::arch
