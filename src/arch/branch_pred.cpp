#include "arch/branch_pred.h"

#include <bit>

#include "common/archive.h"
#include "common/check.h"

namespace flexstep::arch {

void BranchPredictor::Snapshot::serialize(io::ArchiveWriter& ar) const {
  ar.put_varint(bht.size());
  ar.put_bytes(bht.data(), bht.size());
  ar.put_varint(btb.size());
  for (const BtbEntry& entry : btb) {
    ar.put_u64(entry.pc);
    ar.put_u64(entry.target);
    ar.put_bool(entry.valid);
    ar.put_varint(entry.lru);
  }
  ar.put_varint(ras.size());
  for (Addr ra : ras) ar.put_u64(ra);
  ar.put_u32(ras_top);
  ar.put_varint(btb_tick);
}

void BranchPredictor::Snapshot::deserialize(io::ArchiveReader& ar) {
  bht.clear();
  btb.clear();
  ras.clear();
  const u64 bht_count = ar.take_count(1);
  bht.resize(ar.ok() ? static_cast<std::size_t>(bht_count) : 0);
  ar.take_bytes(bht.data(), bht.size());
  const u64 btb_count = ar.take_count(18);  // pc + target + valid + lru >= 18 B
  for (u64 i = 0; ar.ok() && i < btb_count; ++i) {
    BtbEntry entry;
    entry.pc = ar.take_u64();
    entry.target = ar.take_u64();
    entry.valid = ar.take_bool();
    entry.lru = ar.take_varint();
    btb.push_back(entry);
  }
  const u64 ras_count = ar.take_count(8);
  for (u64 i = 0; ar.ok() && i < ras_count; ++i) ras.push_back(ar.take_u64());
  ras_top = ar.take_u32();
  btb_tick = ar.take_varint();
}

namespace {
constexpr u8 kWeaklyNotTaken = 1;  // counter states: 0,1 predict not-taken; 2,3 taken
}

BranchPredictor::BranchPredictor(const BranchPredictorConfig& config) : config_(config) {
  FLEX_CHECK(std::has_single_bit(config.bht_entries));
  bht_.assign(config.bht_entries, kWeaklyNotTaken);
  btb_.assign(config.btb_entries, {});
  ras_.assign(config.ras_entries, 0);
}




void BranchPredictor::save(Snapshot& out) const {
  out.bht = bht_;
  out.btb = btb_;
  out.ras = ras_;
  out.ras_top = ras_top_;
  out.btb_tick = btb_tick_;
}

void BranchPredictor::restore(const Snapshot& snapshot) {
  FLEX_CHECK_MSG(snapshot.bht.size() == bht_.size() && snapshot.btb.size() == btb_.size() &&
                     snapshot.ras.size() == ras_.size(),
                 "branch-predictor snapshot geometry mismatch");
  bht_ = snapshot.bht;
  btb_ = snapshot.btb;
  ras_ = snapshot.ras;
  ras_top_ = snapshot.ras_top;
  btb_tick_ = snapshot.btb_tick;
}

void BranchPredictor::btb_insert(Addr pc, Addr target) {
  ++btb_tick_;
  BtbEntry* victim = &btb_.front();
  for (auto& entry : btb_) {
    if (entry.valid && entry.pc == pc) {
      entry.target = target;
      entry.lru = btb_tick_;
      return;
    }
    if (!entry.valid) {
      victim = &entry;
      break;
    }
    if (entry.lru < victim->lru) victim = &entry;
  }
  *victim = {pc, target, true, btb_tick_};
}



void BranchPredictor::reset() {
  bht_.assign(bht_.size(), kWeaklyNotTaken);
  for (auto& entry : btb_) entry.valid = false;
  ras_top_ = 0;
}

}  // namespace flexstep::arch
