#include "arch/trace.h"

#include <algorithm>

#include "common/check.h"
#include "isa/opcode.h"

namespace flexstep::arch {

using isa::Opcode;

// The first TraceOpKind block mirrors the fast-path opcode prefix
// value-for-value so recording a plain instruction is a cast. Pin the
// anchors; the fast-path contiguity itself is asserted in core.cpp.
static_assert(static_cast<u8>(TraceOpKind::kAdd) == static_cast<u8>(Opcode::kAdd));
static_assert(static_cast<u8>(TraceOpKind::kAddi) == static_cast<u8>(Opcode::kAddi));
static_assert(static_cast<u8>(TraceOpKind::kLui) == static_cast<u8>(Opcode::kLui));
static_assert(static_cast<u8>(TraceOpKind::kBeq) == static_cast<u8>(Opcode::kBeq));
static_assert(static_cast<u8>(TraceOpKind::kJalr) == static_cast<u8>(Opcode::kJalr));
static_assert(static_cast<u8>(TraceOpKind::kLd) == static_cast<u8>(Opcode::kLd));
static_assert(static_cast<u8>(TraceOpKind::kSd) == static_cast<u8>(Opcode::kSd));
static_assert(static_cast<u8>(TraceOpKind::kIFetchProbe) ==
              static_cast<u8>(Opcode::kLrD));
// ALU-pair kinds are laid out row-major over the 6-op alphabet right after
// the named fused ops, so the recorder computes base + 6*first + second.
static_assert(static_cast<u8>(TraceOpKind::kPairAddAdd) ==
              static_cast<u8>(TraceOpKind::kAndAdd) + 1);
static_assert(static_cast<u8>(TraceOpKind::kPairAddiAddi) ==
              static_cast<u8>(TraceOpKind::kPairAddAdd) + 35);

namespace {

/// Index into the ALU-pair alphabet {Add, Sub, Xor, Or, Slli, Addi}, or -1.
int alu_pair_index(Opcode op) {
  switch (op) {
    case Opcode::kAdd: return 0;
    case Opcode::kSub: return 1;
    case Opcode::kXor: return 2;
    case Opcode::kOr: return 3;
    case Opcode::kSlli: return 4;
    case Opcode::kAddi: return 5;
    default: return -1;
  }
}

i32 alu_pair_imm(Opcode op, i32 imm) { return op == Opcode::kSlli ? (imm & 63) : imm; }

}  // namespace

TraceCache::TraceCache(const TraceConfig& config, Memory& memory,
                       const TraceCostModel& cost)
    : config_(config), memory_(memory), cost_(cost) {
  const std::size_t slots = std::size_t{1} << config_.slots_log2;
  slot_mask_ = slots - 1;
  slots_.resize(slots);
  heat_.resize(slots);
}

TraceCache::~TraceCache() { memory_.unwatch_code_pages(this); }

void TraceCache::on_code_page_written(u64 page_id) {
  // Deferred: the store may execute inside the very trace it invalidates, so
  // freeing trace storage here would be use-after-free. lookup()/
  // notice_entry() process the flush at the next dispatch boundary.
  pending_invalidation_ = true;
  if (std::find(dirty_pages_.begin(), dirty_pages_.end(), page_id) ==
      dirty_pages_.end()) {
    dirty_pages_.push_back(page_id);
  }
}

void TraceCache::process_pending_invalidation() {
  for (Slot& slot : slots_) {
    if (slot.trace == nullptr) continue;
    const bool dirty = std::any_of(
        dirty_pages_.begin(), dirty_pages_.end(), [&](u64 page) {
          return page >= slot.trace->first_page && page <= slot.trace->last_page;
        });
    if (dirty) {
      slot.entry_pc = ~Addr{0};
      slot.trace.reset();
      ++stats_.code_write_flushes;
    }
  }
  dirty_pages_.clear();
  pending_invalidation_ = false;
}

void TraceCache::flush() {
  for (Slot& slot : slots_) {
    slot.entry_pc = ~Addr{0};
    slot.trace.reset();
  }
  for (Heat& heat : heat_) heat = Heat{};
  dirty_pages_.clear();
  pending_invalidation_ = false;
  ++stats_.full_flushes;
}

const Trace* TraceCache::notice_entry(Addr pc, const isa::Instruction* code,
                                      Addr base, Addr end) {
  if (pending_invalidation_) process_pending_invalidation();
  Heat& heat = heat_[slot_index(pc)];
  if (heat.pc != pc) {
    // Cold (or aliased) entry: start counting afresh.
    heat.pc = pc;
    heat.count = 1;
    ++stats_.heat_misses;
    return nullptr;
  }
  if (heat.count == kRefused) return nullptr;
  if (++heat.count < config_.heat_threshold) {
    ++stats_.heat_misses;
    return nullptr;
  }

  auto trace = std::make_unique<Trace>();
  if (!record(pc, code, base, end, *trace)) {
    heat.count = kRefused;  // too short / starts at a slow op: never re-walk
    ++stats_.refused;
    return nullptr;
  }
  memory_.watch_code_pages(this, trace->first_page, trace->last_page);
  Slot& slot = slots_[slot_index(pc)];
  slot.entry_pc = pc;
  slot.trace = std::move(trace);
  ++stats_.recorded;
  return slot.trace.get();
}

bool TraceCache::seed(Addr pc, const isa::Instruction* code, Addr base, Addr end) {
  if (pending_invalidation_) process_pending_invalidation();
  Slot& slot = slots_[slot_index(pc)];
  if (slot.entry_pc == pc) return true;  // already covered
  auto trace = std::make_unique<Trace>();
  if (!record(pc, code, base, end, *trace)) {
    // Same terminal state a hot entry would reach: never re-walk this pc.
    Heat& heat = heat_[slot_index(pc)];
    heat.pc = pc;
    heat.count = kRefused;
    ++stats_.refused;
    return false;
  }
  memory_.watch_code_pages(this, trace->first_page, trace->last_page);
  slot.entry_pc = pc;
  slot.trace = std::move(trace);
  ++stats_.recorded;
  ++stats_.seeded;
  return true;
}

bool TraceCache::record(Addr entry_pc, const isa::Instruction* code, Addr base,
                        Addr end, Trace& out) const {
  out.entry_pc = entry_pc;
  out.ops.clear();
  out.inst_count = 0;
  out.base_cost = 0;
  out.mem_ops = 0;
  out.mem_kinds.clear();
  out.mem_worst_cost = 0;
  out.last_pop_worst = 0;
  // The first fetch line is probed dynamically (it may equal the incoming
  // last_fetch_line); budget its worst case up front.
  Cycle worst_extra = cost_.worst_miss;

  // Phase 1: bound the straight-line region [entry_pc, region_end): stop
  // before the first slow-path opcode, after the first control transfer, at
  // the image end, or at the length cap.
  Addr pc = entry_pc;
  bool terminal = false;
  u32 insts = 0;
  while (!terminal && pc >= base && pc < end && insts < config_.max_insts) {
    const Opcode op = code[(pc - base) / 4].op;
    if (static_cast<u8>(op) > static_cast<u8>(Opcode::kSd)) break;  // slow path
    terminal = (static_cast<u8>(op) >= static_cast<u8>(Opcode::kBeq) &&
                static_cast<u8>(op) <= static_cast<u8>(Opcode::kJalr));
    ++insts;
    pc += 4;
  }
  // A zero-instruction trace (entry at a slow-path opcode) would advance
  // nothing and spin the dispatch loop forever, whatever min_insts says.
  if (insts == 0 || insts < config_.min_insts) return false;
  const Addr region_end = pc;
  out.inst_count = insts;

  // Phase 2: translate, with a peephole over adjacent pairs. A fused
  // superinstruction performs both architectural commits in order — fusion
  // only skips one dispatch, never an effect. Pairs are not fused across a
  // fetch-line boundary: the second instruction's I-probe must stay ordered
  // between the two commits (it can contend with data probes in the L2).
  const auto at = [&](Addr p) -> const isa::Instruction& {
    return code[(p - base) / 4];
  };
  const auto line_boundary = [&](Addr p) {
    return p != entry_pc && (p >> 6) != ((p - 4) >> 6);
  };
  const auto inst_index = [&](Addr p) { return static_cast<u32>((p - entry_pc) / 4); };

  for (Addr p = entry_pc; p < region_end; p += 4) {
    const isa::Instruction& inst = at(p);
    if (line_boundary(p)) {
      // Straight-line code enters a new 64 B line: always a fresh probe
      // (last_fetch_line trails by exactly one line here).
      TraceOp probe;
      probe.kind = static_cast<u8>(TraceOpKind::kIFetchProbe);
      probe.target = p;
      out.ops.push_back(probe);
      worst_extra += cost_.worst_miss;
    }

    TraceOp op;
    op.kind = static_cast<u8>(inst.op);
    op.rd = inst.rd;
    op.rs1 = inst.rs1;
    op.rs2 = inst.rs2;
    op.imm = inst.imm;
    bool emit = true;
    out.base_cost += 1;

    // ---- pair fusion (second instruction must exist, carry no probe) ----
    const isa::Instruction* next =
        (p + 4 < region_end && !line_boundary(p + 4)) ? &at(p + 4) : nullptr;
    if (next != nullptr) {
      const Addr np = p + 4;
      bool fused = false;
      if (inst.op == Opcode::kLd && inst.rd != 0 &&
          (next->op == Opcode::kAdd || next->op == Opcode::kXor) &&
          next->rd != 0 && next->rd == next->rs1 && next->rs2 == inst.rd) {
        // ld rd,(rs1)imm ; acc op= rd
        op.kind = static_cast<u8>(next->op == Opcode::kAdd ? TraceOpKind::kLdAddAcc
                                                           : TraceOpKind::kLdXorAcc);
        op.rs2 = next->rd;
        // Pre-stamp worst clock: everything accumulated so far minus this
        // inst's own +1 (stamped pre-commit) and minus prior mem-op costs
        // (the dispatcher re-adds those as replay stalls).
        out.last_pop_worst =
            out.base_cost - 1 + worst_extra - out.mem_worst_cost;
        out.base_cost += 1 + cost_.load_use;
        worst_extra += cost_.worst_miss;
        out.mem_worst_cost += cost_.load_use + cost_.worst_miss;
        out.mem_kinds.push_back(0);
        fused = true;
      } else if (inst.op == Opcode::kAndi && inst.rd != 0 &&
                 (next->op == Opcode::kBne || next->op == Opcode::kBeq) &&
                 next->rs1 == inst.rd && next->rs2 == 0 &&
                 inst_index(np) <= 0xFF) {  // branch index rides in a u8 field
        // andi rd,rs1,imm ; bne/beq rd,x0,target  (terminal)
        op.kind = static_cast<u8>(next->op == Opcode::kBne ? TraceOpKind::kAndiBne
                                                           : TraceOpKind::kAndiBeq);
        op.rs2 = static_cast<u8>(inst_index(np));
        op.target = np + static_cast<Addr>(static_cast<i64>(next->imm));
        out.base_cost += 1;
        worst_extra += cost_.mispredict;
        fused = true;
      } else if (inst.op == Opcode::kMul && inst.rd != 0 &&
                 next->op == Opcode::kAddi && next->rd == inst.rd &&
                 next->rs1 == inst.rd) {
        // mul rd,rs1,rs2 ; addi rd,rd,imm
        op.kind = static_cast<u8>(TraceOpKind::kMulAddi);
        op.imm = next->imm;
        out.base_cost += isa::opcode_latency(Opcode::kMul) - 1 + 1;
        fused = true;
      } else if (inst.op == Opcode::kAnd && inst.rd != 0 &&
                 next->op == Opcode::kAdd && next->rd == inst.rd &&
                 next->rs2 == inst.rd && next->rs1 != inst.rd) {
        // and rd,rs1,rs2 ; add rd,base,rd  (base register carried in imm)
        op.kind = static_cast<u8>(TraceOpKind::kAndAdd);
        op.imm = next->rs1;
        out.base_cost += 1;
        fused = true;
      } else if (inst.rd != 0 && next->rd != 0) {
        // Generic single-cycle ALU pair: one dispatch, second half in a
        // payload slot the handler consumes.
        const int first = alu_pair_index(inst.op);
        const int second = alu_pair_index(next->op);
        if (first >= 0 && second >= 0) {
          op.kind = static_cast<u8>(
              static_cast<u8>(TraceOpKind::kPairAddAdd) + 6 * first + second);
          op.imm = alu_pair_imm(inst.op, inst.imm);
          out.ops.push_back(op);
          TraceOp payload;
          payload.kind = static_cast<u8>(next->op);  // informational only
          payload.rd = next->rd;
          payload.rs1 = next->rs1;
          payload.rs2 = next->rs2;
          payload.imm = alu_pair_imm(next->op, next->imm);
          out.base_cost += 1;
          op = payload;  // pushed by the shared tail below
          fused = true;
        }
      }
      if (fused) {
        out.ops.push_back(op);
        p += 4;
        continue;
      }
    }

    switch (inst.op) {
      case Opcode::kMul:
      case Opcode::kMulh:
      case Opcode::kDiv:
      case Opcode::kDivu:
      case Opcode::kRem:
      case Opcode::kRemu:
        out.base_cost += isa::opcode_latency(inst.op) - 1;
        emit = inst.rd != 0;
        break;
      case Opcode::kAdd: case Opcode::kSub: case Opcode::kSll: case Opcode::kSrl:
      case Opcode::kSra: case Opcode::kAnd: case Opcode::kOr: case Opcode::kXor:
      case Opcode::kSlt: case Opcode::kSltu:
      case Opcode::kAddi: case Opcode::kAndi: case Opcode::kOri: case Opcode::kXori:
      case Opcode::kSlti: case Opcode::kSltiu:
        emit = inst.rd != 0;  // pure ALU into x0: only the cycle counts
        break;
      case Opcode::kSlli:
      case Opcode::kSrli:
      case Opcode::kSrai:
        op.imm = inst.imm & 63;
        emit = inst.rd != 0;
        break;
      case Opcode::kLui:
        // Pre-shift: imm19 << 13 spans exactly [-2^31, 2^31 - 2^13].
        op.imm = static_cast<i32>(static_cast<i64>(inst.imm) << isa::kLuiShift);
        emit = inst.rd != 0;
        break;

      case Opcode::kBeq: case Opcode::kBne: case Opcode::kBlt:
      case Opcode::kBge: case Opcode::kBltu: case Opcode::kBgeu:
        op.imm = static_cast<i32>(inst_index(p));
        op.target = p + static_cast<Addr>(static_cast<i64>(inst.imm));
        worst_extra += cost_.mispredict;
        break;
      case Opcode::kJal:
        op.imm = static_cast<i32>(inst_index(p));
        op.target = p + static_cast<Addr>(static_cast<i64>(inst.imm));
        worst_extra += 1;  // decode-stage redirect bubble on BTB miss
        break;
      case Opcode::kJalr:
        op.target = p;  // needed for link value / BTB / RAS
        worst_extra += cost_.mispredict;
        break;

      case Opcode::kLb: case Opcode::kLbu: case Opcode::kLh: case Opcode::kLhu:
      case Opcode::kLw: case Opcode::kLwu: case Opcode::kLd:
        out.last_pop_worst =
            out.base_cost - 1 + worst_extra - out.mem_worst_cost;
        out.base_cost += cost_.load_use;
        worst_extra += cost_.worst_miss;
        out.mem_worst_cost += cost_.load_use + cost_.worst_miss;
        out.mem_kinds.push_back(0);
        break;
      case Opcode::kSb: case Opcode::kSh: case Opcode::kSw: case Opcode::kSd:
        out.last_pop_worst =
            out.base_cost - 1 + worst_extra - out.mem_worst_cost;
        worst_extra += cost_.worst_miss;
        out.mem_worst_cost += cost_.worst_miss;
        out.mem_kinds.push_back(1);
        break;

      default:
        FLEX_CHECK_MSG(false, "non-fast-path opcode reached the trace recorder");
    }

    if (emit) {
      out.ops.push_back(op);
    } else {
      // ALU into x0: no architectural effect beyond its cycle(s). The fused
      // segment-stream modes advance a per-op commit clock, so the cost must
      // stay at this program position as a pseudo-op (the plain path already
      // has it in base_cost and skips this).
      const auto cycles = static_cast<i32>(isa::opcode_latency(inst.op));
      if (!out.ops.empty() &&
          out.ops.back().kind == static_cast<u8>(TraceOpKind::kStaticCost)) {
        out.ops.back().imm += cycles;
      } else {
        TraceOp elided;
        elided.kind = static_cast<u8>(TraceOpKind::kStaticCost);
        elided.imm = cycles;
        out.ops.push_back(elided);
      }
    }
  }

  if (!terminal) {
    // Sentinel so the replay loop needs no bound check.
    TraceOp exit_op;
    exit_op.kind = static_cast<u8>(TraceOpKind::kExit);
    out.ops.push_back(exit_op);
  }

  out.exit_pc = region_end;
  out.exit_line = (region_end - 4) >> 6;
  out.mem_ops = static_cast<u32>(out.mem_kinds.size());
  out.worst_cost = out.base_cost + worst_extra;
  out.first_page = entry_pc >> Memory::kPageBits;
  out.last_page = (region_end - 1) >> Memory::kPageBits;
  return true;
}

bool trace_pair_fusible(const isa::Instruction& first, const isa::Instruction& second) {
  if (first.op == Opcode::kLd && first.rd != 0 &&
      (second.op == Opcode::kAdd || second.op == Opcode::kXor) &&
      second.rd != 0 && second.rd == second.rs1 && second.rs2 == first.rd) {
    return true;  // ld rd,(rs1)imm ; acc op= rd
  }
  if (first.op == Opcode::kAndi && first.rd != 0 &&
      (second.op == Opcode::kBne || second.op == Opcode::kBeq) &&
      second.rs1 == first.rd && second.rs2 == 0) {
    return true;  // andi rd,rs1,imm ; bne/beq rd,x0 (terminal)
  }
  if (first.op == Opcode::kMul && first.rd != 0 && second.op == Opcode::kAddi &&
      second.rd == first.rd && second.rs1 == first.rd) {
    return true;  // mul rd,rs1,rs2 ; addi rd,rd,imm
  }
  if (first.op == Opcode::kAnd && first.rd != 0 && second.op == Opcode::kAdd &&
      second.rd == first.rd && second.rs2 == first.rd && second.rs1 != first.rd) {
    return true;  // and rd,rs1,rs2 ; add rd,base,rd
  }
  return first.rd != 0 && second.rd != 0 && alu_pair_index(first.op) >= 0 &&
         alu_pair_index(second.op) >= 0;
}

}  // namespace flexstep::arch
