// In-order scalar core modelled after Rocket (paper Tab. II): 5-stage pipeline
// timing, private L1 caches over a shared L2, BHT/BTB/RAS branch prediction,
// user/kernel privilege, traps and a local timer.
//
// The core is FlexStep-agnostic: the FlexStep per-core unit attaches through
// CoreHooks (commit observation, custom ISA) and MemPort (checker replay).
#pragma once

#include <array>

#include "arch/arch_state.h"
#include "arch/config.h"
#include "arch/memory.h"
#include "arch/ports.h"
#include "arch/program_image.h"
#include "arch/trap.h"
#include "common/types.h"
#include "isa/csr.h"

namespace flexstep::arch {

struct Trace;
class TraceCache;

/// "No cycle bound" sentinel for Core::run_until.
inline constexpr Cycle kNoCycleBound = ~Cycle{0};

/// Why the last run_until() burst returned. The co-simulation driver reads
/// this after every quantum to attribute burst ends (soc::CosimStats — hook
/// break vs scheduling bound vs status change); tests use it to pin the
/// zero-progress classification the drivers' progress guard relies on.
enum class RunExit : u8 {
  kNone,          ///< No run_until() has completed yet.
  kStatusChange,  ///< Core left kRunning (halt, block, WFI, idle).
  kCycleBound,    ///< Local clock reached stop_before.
  kInstretBound,  ///< max_instructions commits retired.
  kQuantumBreak,  ///< A hook requested the quantum end (cross-core event).
};

class Core : private ReservationObserver {
 public:
  enum class Status : u8 {
    kIdle,              ///< Parked by the kernel; nothing to run.
    kRunning,
    kBlocked,           ///< Stalled on DBC backpressure / empty replay log.
    kWaitingInterrupt,  ///< WFI retired; waiting for timer/software interrupt.
    kHalted,            ///< HALT retired with no scheduler attached.
  };

  Core(CoreId id, const CoreConfig& config, Memory& memory, const ImageRegistry& images,
       Cache* shared_l2);

  Core(const Core&) = delete;
  Core& operator=(const Core&) = delete;
  ~Core();

  /// Complete per-core state: architectural registers and CSRs, private-cache
  /// tags, branch-predictor tables, LR/SC reservation, interrupt/timer state,
  /// clocks and counters. Does NOT include the extension seams (hooks, trap
  /// handler, memory port) — those are ownership wiring, re-established by
  /// whoever restores the snapshot (fs::CoreUnit, soc::VerifiedExecution).
  struct Snapshot {
    // Architectural state.
    std::array<u64, 32> regs{};
    Addr pc = 0;
    bool user_mode = true;
    u64 csr_mepc = 0;
    u64 csr_mcause = 0;
    u64 csr_mscratch = 0;

    // Microarchitectural state.
    CacheHierarchy::Snapshot caches;
    BranchPredictor::Snapshot bpred;
    Addr last_fetch_line = ~Addr{0};
    Addr reservation_addr = 0;
    bool reservation_valid = false;

    // Time & counters.
    Cycle cycle = 0;
    u64 instret = 0;
    u64 user_instret = 0;
    u64 stall_cycles = 0;
    u64 mispredicts = 0;

    // Interrupts & status.
    Cycle timer_at = 0;
    bool timer_armed = false;
    bool swi_pending = false;
    bool suppress_traps = false;
    Status status = Status::kRunning;

    std::size_t bytes() const { return sizeof(*this) + caches.bytes() + bpred.bytes(); }

    void serialize(io::ArchiveWriter& ar) const;
    void deserialize(io::ArchiveReader& ar);
  };

  void save(Snapshot& out) const;
  void restore(const Snapshot& snapshot);

  // ---- execution ----

  /// Execute (at most) one instruction; advances the local clock. This is the
  /// reference (stepwise) engine: one image lookup, hook dispatch and virtual
  /// MemPort dispatch per retired instruction.
  Status step();

  /// Batched engine: execute until the status leaves kRunning or
  /// `max_instructions` commit. Produces bit-identical architectural state,
  /// cycle counts and hook observations to an equivalent step() loop (the
  /// fast path only engages where hooks/ports provably cannot observe the
  /// difference); tests/test_exec_engine.cpp holds it to that.
  Status run(u64 max_instructions);

  /// Batched engine with a local-clock quantum: execute while
  /// `cycle() < stop_before` (and `max_instructions` has not been reached and
  /// no quantum end was requested). Co-simulation drivers use this to advance
  /// one core in a burst exactly as long as the stepwise scheduler would have
  /// kept picking it.
  Status run_until(Cycle stop_before, u64 max_instructions = ~u64{0});

  /// End the current run_until() quantum after the in-flight instruction
  /// commits. Called (transitively) by hooks when the core performs an action
  /// another core could observe "in the past" of this core's clock — e.g.
  /// completing a checking segment or freeing DBC space a blocked producer
  /// waits on — so the driver can reschedule.
  void request_quantum_end() { quantum_break_ = true; }

  /// Why the most recent run_until() returned (kNone before the first one).
  RunExit last_run_exit() const { return run_exit_; }

  // ---- identity & time ----

  CoreId id() const { return id_; }
  Cycle cycle() const { return cycle_; }
  /// Move the local clock forward (never backward).
  void advance_to(Cycle c) { if (c > cycle_) cycle_ = c; }
  void add_cycles(Cycle c) { cycle_ += c; }
  u64 instret() const { return instret_; }
  u64 user_instret() const { return user_instret_; }

  // ---- extension seams ----

  void set_hooks(CoreHooks* hooks) { hooks_ = hooks; }
  CoreHooks* hooks() const { return hooks_; }
  /// Disable the fused segment-stream fast path (memory ops fall back to the
  /// per-instruction step() path inside batched spans). Default comes from
  /// FLEX_FUSED (unset/1 = on); the bench uses this to measure the unfused
  /// baseline in-process. Traces still engage only when fusion is on — the
  /// trace cache's replay compare is fused-path machinery.
  void set_fused_batching(bool on) { fused_batching_ = on; }
  bool fused_batching() const { return fused_batching_; }
  void set_trap_handler(TrapHandler* handler) { handler_ = handler; }
  /// Install a replacement data-memory port (nullptr restores the cache port).
  void set_mem_port(MemPort* port);
  MemPort& cache_mem_port();

  // ---- privileged API (kernel model & FlexStep units) ----

  ArchState capture_state() const;
  void restore_state(const ArchState& state);

  Addr pc() const { return pc_; }
  void set_pc(Addr pc) { pc_ = pc; }
  u64 reg(u8 index) const { return regs_[index]; }
  void set_reg(u8 index, u64 value) {
    if (index != 0) regs_[index] = value;
  }
  bool user_mode() const { return user_mode_; }
  void set_user_mode(bool user) { user_mode_ = user; }

  u64 read_csr(u16 csr) const;
  void write_csr(u16 csr, u64 value);

  void set_timer(Cycle at) {
    timer_at_ = at;
    timer_armed_ = true;
  }
  void clear_timer() { timer_armed_ = false; }
  bool timer_armed() const { return timer_armed_; }
  Cycle timer_at() const { return timer_at_; }
  void raise_software_interrupt() { swi_pending_ = true; }

  // ---- status transitions ----

  Status status() const { return status_; }
  /// Producer/consumer unblocking: resume no earlier than `at`.
  void unblock_at(Cycle at);
  /// Kernel preemption of a blocked core: resume immediately (the pending
  /// instruction never committed and will re-execute under the new context).
  void cancel_block();
  /// Wake from WFI at cycle `at`.
  void wake(Cycle at);
  void set_idle() { status_ = Status::kIdle; }
  void activate() { status_ = Status::kRunning; }
  void halt() { status_ = Status::kHalted; }

  /// Invoked by hooks from inside a memory pre-check to stall the core.
  void block() { status_ = Status::kBlocked; }

  /// Checker replay: ECALL/HALT were committed by the main core as ordinary
  /// user instructions (the kernel excursion itself is not replayed), so the
  /// replaying core must treat them as no-ops instead of trapping.
  void set_trap_suppression(bool on) { suppress_traps_ = on; }
  bool trap_suppression() const { return suppress_traps_; }

  /// Deliver a pending trap to a non-running core (kernel tick on a blocked /
  /// waiting core). Sets the clock to `at`, cancels the block, and traps.
  void deliver_interrupt(TrapCause cause, Cycle at);

  // ---- kernel-mode instruction execution ----

  /// Execute one instruction in kernel mode through the normal decode/execute
  /// path (used by the kernel model for the FlexStep custom ISA, Alg. 1/2).
  /// Returns the rd value (0 for instructions without a result).
  u64 exec_kernel_instruction(const isa::Instruction& inst);

  // ---- microarchitectural state & stats ----

  CacheHierarchy& caches() { return caches_; }
  BranchPredictor& bpred() { return bpred_; }
  u64 stall_cycles() const { return stall_cycles_; }
  u64 mispredicts() const { return mispredicts_; }

  /// Superinstruction trace cache (nullptr when disabled by CoreConfig).
  /// Purely derived state: flushed on restore, never part of snapshots.
  const TraceCache* trace_cache() const { return trace_cache_.get(); }

  /// Pre-record traces at statically-identified hot block entries (analysis
  /// trace_seeds), bypassing the heat counters. Returns how many seeds ended
  /// up covered. Host-speed only — seeded traces replay bit-identically to
  /// stepping, like every trace. Seeds whose pc lies outside any loaded
  /// image are skipped; no-op (returns 0) when tracing is disabled.
  u32 seed_traces(const std::vector<Addr>& seeds);

 private:
  class CachePort;  // default MemPort through the cache hierarchy

  void take_trap(TrapCause cause);
  /// Returns true if an interrupt was taken (step must return).
  bool poll_interrupts();

  /// Fast-path engagement modes for the batched engine (template parameter so
  /// each variant compiles to its own branch-free hot loop):
  ///   * kFull    — hooks passive: every fast-path opcode inlines, traces on.
  ///   * kCount   — hooks active but batchable, no segment cursor: memory
  ///     instructions bail to step() (full CommitInfo + backpressure
  ///     pre-check) and traces stay off — with every load/store leaving the
  ///     loop per instruction, trace replay would only add overhead.
  ///   * kProduce — segment cursor staging MAL records: plain loads/stores
  ///     execute normally and append (addr, data, post-commit cycle) records;
  ///     traces on, gated on cursor headroom.
  ///   * kReplay  — segment cursor holding staged log entries: loads are
  ///     served from the log, stores verified against it, mismatches reported
  ///     through the cursor callback at the pre-commit clock; traces on,
  ///     gated on a kind-for-kind match of the staged prefix.
  /// The caller reports the retired count of kCount/kProduce/kReplay spans
  /// through on_commit_batch, which also publishes/retires cursor records.
  enum class FastMode : u8 { kFull, kCount, kProduce, kReplay };

  /// Hot loop of the batched engine: executes fast-path instructions (ALU,
  /// branches, jumps, plain loads/stores) while no slow-path condition holds.
  /// Returns when a slow-path instruction, trap condition, image exit, bound,
  /// cursor exhaustion or quantum break requires the caller to fall back to
  /// step() / re-evaluate hoisted state. `cursor` is non-null exactly for
  /// kProduce/kReplay.
  template <FastMode M>
  void run_fast_path(Cycle stop_before, u64 instret_end, SegmentCursor* cursor);

  /// Replay one recorded trace (arch/trace.h). Caller guarantees headroom:
  /// cycle + trace.worst_cost stays below the quantum limit, instret +
  /// trace.inst_count within the instruction bound, and (fused modes) the
  /// cursor admits every memory record the trace carries.
  template <FastMode M>
  void execute_trace(const Trace& trace, Addr& pc, Cycle& cycle, u64& instret,
                     Addr& last_line, SegmentCursor* cursor);

  /// LR/SC reservation: the local flags are the architectural state (they
  /// round-trip through Snapshot); the shared Memory registry mirrors them so
  /// any write to the granule — own store/AMO or another core's — invalidates.
  void set_reservation(Addr granule);
  void release_reservation();
  // ReservationObserver (called from Memory's write path).
  void on_reservation_invalidated() override { reservation_valid_ = false; }

  CoreId id_;
  CoreConfig config_;
  Memory& memory_;
  const ImageRegistry& images_;

  // Architectural state.
  std::array<u64, 32> regs_{};
  Addr pc_ = 0;
  bool user_mode_ = true;
  u64 csr_mepc_ = 0;
  u64 csr_mcause_ = 0;
  u64 csr_mscratch_ = 0;

  // Microarchitectural state.
  CacheHierarchy caches_;
  BranchPredictor bpred_;
  Addr last_fetch_line_ = ~Addr{0};
  Addr reservation_addr_ = 0;
  bool reservation_valid_ = false;

  // Time & counters.
  Cycle cycle_ = 0;
  u64 instret_ = 0;
  u64 user_instret_ = 0;
  u64 stall_cycles_ = 0;
  u64 mispredicts_ = 0;

  // Interrupts.
  Cycle timer_at_ = 0;
  bool timer_armed_ = false;
  bool swi_pending_ = false;
  bool suppress_traps_ = false;

  Status status_ = Status::kRunning;
  bool quantum_break_ = false;  ///< Set by request_quantum_end(); ends run_until.
  RunExit run_exit_ = RunExit::kNone;  ///< Why the last run_until returned.

  // Extension seams.
  static bool default_fused_batching();
  /// Fused segment-stream fast path enable (see set_fused_batching); the
  /// default is resolved from FLEX_FUSED once per process.
  bool fused_batching_ = default_fused_batching();
  CoreHooks* hooks_ = nullptr;
  TrapHandler* handler_ = nullptr;
  MemPort* port_ = nullptr;  ///< Active port (defaults to cache_port_).
  std::unique_ptr<MemPort> cache_port_;

  // Fetch fast path.
  const LoadedImage* image_ = nullptr;

  // Superinstruction trace cache (arch/trace.h); null when disabled.
  std::unique_ptr<TraceCache> trace_cache_;
};

}  // namespace flexstep::arch
