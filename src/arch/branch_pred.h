// Rocket-like branch prediction state (paper Tab. II: 512-entry BHT,
// 28-entry BTB, 6-entry RAS). Used purely for timing: mispredictions add a
// front-end refill penalty in the 5-stage pipeline.
#pragma once

#include <optional>
#include <vector>

#include "common/types.h"

namespace flexstep::arch {

struct BranchPredictorConfig {
  u32 bht_entries = 512;  ///< 2-bit saturating counters.
  u32 btb_entries = 28;
  u32 ras_entries = 6;
  Cycle mispredict_penalty = 3;  ///< Redirect cost in a 5-stage in-order pipe.
};

class BranchPredictor {
 public:
  explicit BranchPredictor(const BranchPredictorConfig& config);

  /// Conditional branch direction prediction.
  bool predict_taken(Addr pc) const;
  void update(Addr pc, bool taken);

  /// BTB target lookup/insert (for jal/jalr timing).
  std::optional<Addr> btb_lookup(Addr pc) const;
  void btb_insert(Addr pc, Addr target);

  /// Return-address stack.
  void ras_push(Addr return_addr);
  std::optional<Addr> ras_pop();

  void reset();

  const BranchPredictorConfig& config() const { return config_; }

 private:
  struct BtbEntry {
    Addr pc = 0;
    Addr target = 0;
    bool valid = false;
    u64 lru = 0;
  };

  BranchPredictorConfig config_;
  std::vector<u8> bht_;  ///< 2-bit counters, weakly-taken initial state.
  std::vector<BtbEntry> btb_;
  std::vector<Addr> ras_;
  u32 ras_top_ = 0;   ///< Number of valid entries (wraps by overwrite).
  u64 btb_tick_ = 0;
};

}  // namespace flexstep::arch
