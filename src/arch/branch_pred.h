// Rocket-like branch prediction state (paper Tab. II: 512-entry BHT,
// 28-entry BTB, 6-entry RAS). Used purely for timing: mispredictions add a
// front-end refill penalty in the 5-stage pipeline.
#pragma once

#include <optional>
#include <vector>

#include "common/types.h"

namespace flexstep::io {
class ArchiveWriter;
class ArchiveReader;
}  // namespace flexstep::io

namespace flexstep::arch {

struct BranchPredictorConfig {
  u32 bht_entries = 512;  ///< 2-bit saturating counters.
  u32 btb_entries = 28;
  u32 ras_entries = 6;
  Cycle mispredict_penalty = 3;  ///< Redirect cost in a 5-stage in-order pipe.
};

class BranchPredictor {
 public:
  struct BtbEntry {
    Addr pc = 0;
    Addr target = 0;
    bool valid = false;
    u64 lru = 0;
  };

  /// Complete predictor state (BHT counters, BTB, RAS).
  struct Snapshot {
    std::vector<u8> bht;
    std::vector<BtbEntry> btb;
    std::vector<Addr> ras;
    u32 ras_top = 0;
    u64 btb_tick = 0;
    std::size_t bytes() const {
      return bht.size() + btb.size() * sizeof(BtbEntry) + ras.size() * sizeof(Addr);
    }

    void serialize(io::ArchiveWriter& ar) const;
    void deserialize(io::ArchiveReader& ar);
  };

  explicit BranchPredictor(const BranchPredictorConfig& config);

  void save(Snapshot& out) const;
  /// Restore; table sizes must match this predictor's config.
  void restore(const Snapshot& snapshot);

  // The predict/update/lookup probes sit on the batched engine's hot path and
  // are inlined here; the BTB insert (miss path) stays out of line.

  /// Conditional branch direction prediction.
  bool predict_taken(Addr pc) const {
    const u32 idx = static_cast<u32>(pc >> 2) & (config_.bht_entries - 1);
    return bht_[idx] >= 2;
  }
  void update(Addr pc, bool taken) {
    const u32 idx = static_cast<u32>(pc >> 2) & (config_.bht_entries - 1);
    u8& counter = bht_[idx];
    if (taken) {
      if (counter < 3) ++counter;
    } else {
      if (counter > 0) --counter;
    }
  }

  /// BTB target lookup/insert (for jal/jalr timing).
  std::optional<Addr> btb_lookup(Addr pc) const {
    for (const auto& entry : btb_) {
      if (entry.valid && entry.pc == pc) return entry.target;
    }
    return std::nullopt;
  }
  void btb_insert(Addr pc, Addr target);

  /// Return-address stack.
  void ras_push(Addr return_addr) {
    ras_[ras_top_ % config_.ras_entries] = return_addr;
    ++ras_top_;
  }
  std::optional<Addr> ras_pop() {
    if (ras_top_ == 0) return std::nullopt;
    --ras_top_;
    return ras_[ras_top_ % config_.ras_entries];
  }

  void reset();

  // ---- fault-site adapter (fault/sites.h) ----

  /// Indexable predictor fault sites: every BHT counter, BTB entry and RAS
  /// slot, in that order.
  std::size_t fault_site_count() const {
    return bht_.size() + btb_.size() + ras_.size();
  }
  /// Flippable bits of site `index`: 2 (BHT saturating counter), 129 (BTB
  /// target + pc + valid) or 64 (RAS return address).
  u32 fault_site_bits(std::size_t index) const {
    if (index < bht_.size()) return 2;
    if (index < bht_.size() + btb_.size()) return 129;
    return 64;
  }
  /// XOR the addressed bit; a 2-bit BHT flip keeps the counter in 0..3, so a
  /// second flip restores bit-identical state for every site kind.
  void fault_flip(std::size_t index, u64 bit) {
    if (index < bht_.size()) {
      bht_[index] ^= static_cast<u8>(1u << bit);
      return;
    }
    index -= bht_.size();
    if (index < btb_.size()) {
      BtbEntry& entry = btb_[index];
      if (bit < 64) {
        entry.target ^= u64{1} << bit;
      } else if (bit < 128) {
        entry.pc ^= u64{1} << (bit - 64);
      } else {
        entry.valid = !entry.valid;
      }
      return;
    }
    ras_[index - btb_.size()] ^= u64{1} << bit;
  }

  const BranchPredictorConfig& config() const { return config_; }

 private:
  BranchPredictorConfig config_;
  std::vector<u8> bht_;  ///< 2-bit counters, weakly-taken initial state.
  std::vector<BtbEntry> btb_;
  std::vector<Addr> ras_;
  u32 ras_top_ = 0;   ///< Number of valid entries (wraps by overwrite).
  u64 btb_tick_ = 0;
};

}  // namespace flexstep::arch
