// Architectural register state — the unit of FlexStep Register Checkpoints
// (SCP/ECP) and of kernel context switches.
#pragma once

#include <array>

#include "common/types.h"

namespace flexstep::arch {

struct ArchState {
  Addr pc = 0;
  std::array<u64, 32> regs{};  ///< x0..x31; x0 always reads 0.

  friend bool operator==(const ArchState&, const ArchState&) = default;
};

/// Storage footprint of one checkpoint in the hardware ASS unit.
/// 32 regs × 8 B + PC (8 B) = 264 B architectural payload; the paper's ASS
/// (518 B/core) holds roughly two such snapshots' worth of state + metadata.
inline constexpr u32 kArchStateBytes = 32 * 8 + 8;

}  // namespace flexstep::arch
