// Sparse flat physical memory for the simulated SoC.
//
// Backing store is allocated in 4 KiB pages on first touch so multi-megabyte
// working sets cost only what they use. All cores share one Memory instance
// (the simulated SoC has a single physical address space).
//
// The access fast path is inlined here: a small direct-mapped page-pointer
// cache resolves the hot page without touching the hash map, so the common
// aligned access is a mask, a table probe and a memcpy. A single-entry cache
// thrashed whenever a core's code/data pages interleaved (or main and checker
// accesses alternated); the multi-entry table keeps all hot pages resident.
#pragma once

#include <array>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace flexstep::io {
class ArchiveWriter;
class ArchiveReader;
}  // namespace flexstep::io

namespace flexstep::arch {

/// Receives a deferred notification when a watched (code) page is written.
/// Used by the per-core trace caches: a store into a page covered by recorded
/// traces must eventually drop those traces. Handlers run inside Memory's
/// write path, so they must only set flags / record the page — never free
/// trace storage that might be executing (TraceCache defers the flush to its
/// next lookup boundary).
class CodeWriteListener {
 public:
  virtual void on_code_page_written(u64 page_id) = 0;

 protected:
  ~CodeWriteListener() = default;
};

/// Holder of an LR/SC reservation. Memory tracks every live reservation in
/// the (shared) physical address space and invalidates it when ANY agent —
/// the owning core, another core's store/AMO/SC, a bulk write — touches the
/// reserved 8-byte granule. This centralises what the per-core cache port
/// used to approximate locally ("cross-core invalidation handled in sc()"),
/// which let a different core's store to the reserved line slip through and
/// an AMO leave the owner's own reservation standing.
class ReservationObserver {
 public:
  virtual void on_reservation_invalidated() = 0;

 protected:
  ~ReservationObserver() = default;
};

class Memory {
 public:
  static constexpr unsigned kPageBits = 12;
  static constexpr Addr kPageSize = Addr{1} << kPageBits;
  using Page = std::array<u8, kPageSize>;

  Memory() = default;
  Memory(const Memory&) = delete;
  Memory& operator=(const Memory&) = delete;

  /// Resident-page image of the address space: only pages a core ever touched
  /// are copied (a never-written page reads as zero, so dropping it from the
  /// snapshot loses nothing), never the full 2^addr space.
  struct Snapshot {
    std::vector<std::pair<u64, Page>> pages;  ///< (page id, contents), id-sorted.
    std::size_t bytes() const { return pages.size() * sizeof(Page); }

    /// Wire format: page count, then (id, raw 4 KiB span) pairs — all fields
    /// fixed-width so the page payloads stay 8-aligned in the archive.
    void serialize(io::ArchiveWriter& ar) const;
    void deserialize(io::ArchiveReader& ar);
  };

  void save(Snapshot& out) const;

  /// Restore to the exact saved state: snapshot pages are copied back and
  /// pages materialised after the save are dropped (they were implicitly zero
  /// at save time, so a restored run re-materialises them zero-filled).
  void restore(const Snapshot& snapshot);

  /// Aligned little-endian accessors; `bytes` in {1,2,4,8}. Accesses that
  /// straddle a page split into two chunk copies.
  u64 read(Addr addr, u32 bytes) {
    FLEX_DCHECK(bytes == 1 || bytes == 2 || bytes == 4 || bytes == 8);
    const Addr offset = addr & (kPageSize - 1);
    if (offset + bytes <= kPageSize) [[likely]] {
      u64 value = 0;
      std::memcpy(&value, page_data(addr) + offset,
                  bytes);  // little-endian host assumed (linux/x86-64 & aarch64)
      return value;
    }
    return read_split(addr, bytes);
  }

  void write(Addr addr, u32 bytes, u64 value) {
    FLEX_DCHECK(bytes == 1 || bytes == 2 || bytes == 4 || bytes == 8);
    // Write guards, filtered to two predictable compares on the hot path:
    // code-page watch (trace invalidation) and live LR/SC reservations.
    if ((addr >> kPageBits) - watch_min_page_ <= watch_page_span_) [[unlikely]] {
      notify_code_write(addr >> kPageBits);
    }
    if (!reservations_.empty()) [[unlikely]] {
      invalidate_reservations(addr, bytes);
    }
    const Addr offset = addr & (kPageSize - 1);
    if (offset + bytes <= kPageSize) [[likely]] {
      std::memcpy(page_data(addr) + offset, &value, bytes);
      return;
    }
    write_split(addr, bytes, value);
  }

  u64 read_u64(Addr a) { return read(a, 8); }
  u32 read_u32(Addr a) { return static_cast<u32>(read(a, 4)); }
  void write_u64(Addr a, u64 v) { write(a, 8, v); }
  void write_u32(Addr a, u32 v) { write(a, 4, v); }

  /// Bulk helpers (program loading, test fixtures).
  void write_block(Addr addr, const void* src, std::size_t n);
  void read_block(Addr addr, void* dst, std::size_t n);

  /// Number of materialised pages (tests / footprint accounting).
  std::size_t resident_pages() const { return pages_.size(); }

  // ---- fault-site adapter (fault/sites.h) ----

  /// Resident 8-byte words enumerable as fault sites. Word indices walk the
  /// resident pages in page-id order, so the index space is deterministic for
  /// a given touched-page set (never the hash map's iteration order).
  std::size_t fault_word_count() const {
    return pages_.size() * (kPageSize / 8);
  }
  /// Physical address of resident word `word_index` (id-sorted page walk).
  Addr fault_word_addr(std::size_t word_index) const;
  /// XOR one bit of a resident word, bypassing the write-path guards: a
  /// particle strike corrupts the cell silently — it is not an agent's store,
  /// so it must not invalidate LR/SC reservations or fire code-page watches.
  void fault_flip_word(std::size_t word_index, u64 bit);

  // ---- code-page write watching (trace-cache invalidation) ----

  /// Ask for on_code_page_written() whenever any page in [first, last] is
  /// stored to. Ranges from repeated calls merge; watching is idempotent.
  void watch_code_pages(CodeWriteListener* listener, u64 first_page, u64 last_page);
  void unwatch_code_pages(CodeWriteListener* listener);

  // ---- LR/SC reservation registry ----

  /// Register/replace `owner`'s reservation on the 8-byte granule at
  /// `granule_addr` (already masked). Any subsequent write overlapping the
  /// granule — from any core or bulk path — invalidates it and notifies.
  void set_reservation(ReservationObserver* owner, Addr granule_addr);
  void clear_reservation(ReservationObserver* owner);
  /// Live reservations (tests).
  std::size_t reservation_count() const { return reservations_.size(); }

 private:
  /// Direct-mapped page-pointer cache. 16 entries cover a core's code, stack
  /// and a few data streams plus the checker's interleaved pages.
  static constexpr std::size_t kPtrCacheSize = 16;
  struct PtrSlot {
    u64 id = ~u64{0};
    u8* data = nullptr;
  };

  u8* page_data(Addr addr) {
    const u64 id = addr >> kPageBits;
    PtrSlot& slot = ptr_cache_[id & (kPtrCacheSize - 1)];
    if (slot.id == id) [[likely]] return slot.data;
    return page_data_slow(addr);
  }

  u8* page_data_slow(Addr addr);
  u64 read_split(Addr addr, u32 bytes);
  void write_split(Addr addr, u32 bytes, u64 value);
  void notify_code_write(u64 page_id);
  void invalidate_reservations(Addr addr, std::size_t bytes);

  std::unordered_map<u64, std::unique_ptr<Page>> pages_;
  std::array<PtrSlot, kPtrCacheSize> ptr_cache_{};

  // Code-page watch: the hot-path filter is a single range compare over the
  // union of all watched ranges; listeners narrow to their own pages.
  std::vector<CodeWriteListener*> code_listeners_;
  u64 watch_min_page_ = ~u64{0};  ///< ~0 disarms the filter (page - ~0 wraps).
  u64 watch_page_span_ = 0;

  struct Reservation {
    ReservationObserver* owner;
    Addr granule;  ///< 8-byte-aligned reserved address.
  };
  std::vector<Reservation> reservations_;  ///< At most one entry per core.
};

}  // namespace flexstep::arch
