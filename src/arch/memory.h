// Sparse flat physical memory for the simulated SoC.
//
// Backing store is allocated in 4 KiB pages on first touch so multi-megabyte
// working sets cost only what they use. All cores share one Memory instance
// (the simulated SoC has a single physical address space).
#pragma once

#include <array>
#include <memory>
#include <unordered_map>

#include "common/types.h"

namespace flexstep::arch {

class Memory {
 public:
  static constexpr unsigned kPageBits = 12;
  static constexpr Addr kPageSize = Addr{1} << kPageBits;

  Memory() = default;
  Memory(const Memory&) = delete;
  Memory& operator=(const Memory&) = delete;

  /// Aligned little-endian accessors; `bytes` in {1,2,4,8}. Unaligned accesses
  /// that straddle a page fall back to a byte loop.
  u64 read(Addr addr, u32 bytes);
  void write(Addr addr, u32 bytes, u64 value);

  u64 read_u64(Addr a) { return read(a, 8); }
  u32 read_u32(Addr a) { return static_cast<u32>(read(a, 4)); }
  void write_u64(Addr a, u64 v) { write(a, 8, v); }
  void write_u32(Addr a, u32 v) { write(a, 4, v); }

  /// Bulk helpers (program loading, test fixtures).
  void write_block(Addr addr, const void* src, std::size_t n);
  void read_block(Addr addr, void* dst, std::size_t n);

  /// Number of materialised pages (tests / footprint accounting).
  std::size_t resident_pages() const { return pages_.size(); }

 private:
  using Page = std::array<u8, kPageSize>;

  u8* page_data(Addr addr);

  std::unordered_map<u64, std::unique_ptr<Page>> pages_;
  // One-entry cache: most accesses hit the same page as the previous one.
  u64 last_page_id_ = ~u64{0};
  u8* last_page_ = nullptr;
};

}  // namespace flexstep::arch
