#include "arch/memory.h"

#include <cstring>

#include "common/check.h"

namespace flexstep::arch {

u8* Memory::page_data(Addr addr) {
  const u64 id = addr >> kPageBits;
  if (id == last_page_id_) return last_page_;
  auto it = pages_.find(id);
  if (it == pages_.end()) {
    auto page = std::make_unique<Page>();
    page->fill(0);
    it = pages_.emplace(id, std::move(page)).first;
  }
  last_page_id_ = id;
  last_page_ = it->second->data();
  return last_page_;
}

u64 Memory::read(Addr addr, u32 bytes) {
  FLEX_DCHECK(bytes == 1 || bytes == 2 || bytes == 4 || bytes == 8);
  const Addr offset = addr & (kPageSize - 1);
  if (offset + bytes <= kPageSize) {
    const u8* p = page_data(addr) + offset;
    u64 value = 0;
    std::memcpy(&value, p, bytes);  // little-endian host assumed (linux/x86-64 & aarch64)
    return value;
  }
  u64 value = 0;
  for (u32 i = 0; i < bytes; ++i) {
    value |= static_cast<u64>(*(page_data(addr + i) + ((addr + i) & (kPageSize - 1)))) << (8 * i);
  }
  return value;
}

void Memory::write(Addr addr, u32 bytes, u64 value) {
  FLEX_DCHECK(bytes == 1 || bytes == 2 || bytes == 4 || bytes == 8);
  const Addr offset = addr & (kPageSize - 1);
  if (offset + bytes <= kPageSize) {
    u8* p = page_data(addr) + offset;
    std::memcpy(p, &value, bytes);
    return;
  }
  for (u32 i = 0; i < bytes; ++i) {
    *(page_data(addr + i) + ((addr + i) & (kPageSize - 1))) =
        static_cast<u8>(value >> (8 * i));
  }
}

void Memory::write_block(Addr addr, const void* src, std::size_t n) {
  const auto* bytes = static_cast<const u8*>(src);
  while (n > 0) {
    const Addr offset = addr & (kPageSize - 1);
    const std::size_t chunk = std::min<std::size_t>(n, kPageSize - offset);
    std::memcpy(page_data(addr) + offset, bytes, chunk);
    addr += chunk;
    bytes += chunk;
    n -= chunk;
  }
}

void Memory::read_block(Addr addr, void* dst, std::size_t n) {
  auto* bytes = static_cast<u8*>(dst);
  while (n > 0) {
    const Addr offset = addr & (kPageSize - 1);
    const std::size_t chunk = std::min<std::size_t>(n, kPageSize - offset);
    std::memcpy(bytes, page_data(addr) + offset, chunk);
    addr += chunk;
    bytes += chunk;
    n -= chunk;
  }
}

}  // namespace flexstep::arch
