#include "arch/memory.h"

#include <algorithm>

#include "common/archive.h"
#include "common/check.h"

namespace flexstep::arch {

void Memory::Snapshot::serialize(io::ArchiveWriter& ar) const {
  ar.put_u64(pages.size());
  for (const auto& [id, page] : pages) {
    ar.put_u64(id);
    ar.put_bytes(page.data(), page.size());
  }
}

void Memory::Snapshot::deserialize(io::ArchiveReader& ar) {
  pages.clear();
  const u64 count = ar.take_u64();
  if (ar.ok() && count > (~u64{0}) / (kPageSize + 8)) {
    ar.fail(io::ArchiveStatus::kMalformed, "page count exceeds payload size");
  }
  u64 prev_id = 0;
  for (u64 i = 0; ar.ok() && i < count; ++i) {
    const u64 id = ar.take_u64();
    if (i > 0 && id <= prev_id) {
      // Ids are strictly increasing by the save() sort; a CRC-clean file
      // violating it was written by a broken producer.
      ar.fail(io::ArchiveStatus::kMalformed, "memory page ids not id-sorted");
      break;
    }
    prev_id = id;
    const u8* span = ar.take_span(kPageSize);
    if (span == nullptr) break;
    pages.emplace_back(id, Page{});
    std::memcpy(pages.back().second.data(), span, kPageSize);
  }
  if (!ar.ok()) pages.clear();
}

void Memory::save(Snapshot& out) const {
  out.pages.clear();
  out.pages.reserve(pages_.size());
  for (const auto& [id, page] : pages_) out.pages.emplace_back(id, *page);
  // Id-sorted so a snapshot's layout depends only on the touched pages, not on
  // the hash map's iteration order.
  std::sort(out.pages.begin(), out.pages.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
}

void Memory::restore(const Snapshot& snapshot) {
  // Drop pages the run materialised after the save; they read as zero in the
  // saved state and will re-materialise zero-filled on next touch.
  std::erase_if(pages_, [&](const auto& entry) {
    const auto it = std::lower_bound(
        snapshot.pages.begin(), snapshot.pages.end(), entry.first,
        [](const auto& p, u64 id) { return p.first < id; });
    return it == snapshot.pages.end() || it->first != entry.first;
  });
  for (const auto& [id, contents] : snapshot.pages) {
    auto it = pages_.find(id);
    if (it == pages_.end()) {
      it = pages_.emplace(id, std::make_unique<Page>()).first;
    }
    *it->second = contents;
  }
  // Cached page pointers may reference erased pages.
  ptr_cache_.fill(PtrSlot{});
  // Reservations are derived per-core state: whoever restores the cores
  // re-registers any reservation the snapshot carried (Core::restore), so a
  // stale registry entry must not survive the memory rewind.
  for (const Reservation& r : reservations_) r.owner->on_reservation_invalidated();
  reservations_.clear();
}

void Memory::watch_code_pages(CodeWriteListener* listener, u64 first_page,
                              u64 last_page) {
  FLEX_CHECK(first_page <= last_page);
  if (std::find(code_listeners_.begin(), code_listeners_.end(), listener) ==
      code_listeners_.end()) {
    code_listeners_.push_back(listener);
  }
  const u64 min = std::min(watch_min_page_ == ~u64{0} ? first_page : watch_min_page_,
                           first_page);
  const u64 max = std::max(watch_min_page_ == ~u64{0} ? last_page
                                                      : watch_min_page_ + watch_page_span_,
                           last_page);
  watch_min_page_ = min;
  watch_page_span_ = max - min;
}

void Memory::unwatch_code_pages(CodeWriteListener* listener) {
  std::erase(code_listeners_, listener);
  if (code_listeners_.empty()) {
    watch_min_page_ = ~u64{0};
    watch_page_span_ = 0;
  }
}

void Memory::notify_code_write(u64 page_id) {
  for (CodeWriteListener* listener : code_listeners_) {
    listener->on_code_page_written(page_id);
  }
}

void Memory::set_reservation(ReservationObserver* owner, Addr granule_addr) {
  FLEX_DCHECK((granule_addr & 7) == 0);
  for (Reservation& r : reservations_) {
    if (r.owner == owner) {
      r.granule = granule_addr;
      return;
    }
  }
  reservations_.push_back({owner, granule_addr});
}

void Memory::clear_reservation(ReservationObserver* owner) {
  std::erase_if(reservations_, [&](const Reservation& r) { return r.owner == owner; });
}

void Memory::invalidate_reservations(Addr addr, std::size_t bytes) {
  const Addr lo = addr & ~Addr{7};
  const Addr hi = (addr + bytes - 1) & ~Addr{7};
  std::erase_if(reservations_, [&](const Reservation& r) {
    if (r.granule < lo || r.granule > hi) return false;
    r.owner->on_reservation_invalidated();
    return true;
  });
}

Addr Memory::fault_word_addr(std::size_t word_index) const {
  constexpr std::size_t kWordsPerPage = kPageSize / 8;
  FLEX_CHECK_MSG(word_index < fault_word_count(), "fault word index out of range");
  std::vector<u64> ids;
  ids.reserve(pages_.size());
  for (const auto& [id, page] : pages_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  const u64 page_id = ids[word_index / kWordsPerPage];
  return (page_id << kPageBits) + (word_index % kWordsPerPage) * 8;
}

void Memory::fault_flip_word(std::size_t word_index, u64 bit) {
  FLEX_CHECK(bit < 64);
  const Addr addr = fault_word_addr(word_index);
  Page& page = *pages_.at(addr >> kPageBits);
  // Direct page access: deliberately skips notify_code_write and reservation
  // invalidation (see header) and therefore also write()'s pointer cache.
  page[(addr & (kPageSize - 1)) + bit / 8] ^= static_cast<u8>(1u << (bit % 8));
}

u8* Memory::page_data_slow(Addr addr) {
  const u64 id = addr >> kPageBits;
  auto it = pages_.find(id);
  if (it == pages_.end()) {
    auto page = std::make_unique<Page>();
    page->fill(0);
    it = pages_.emplace(id, std::move(page)).first;
  }
  PtrSlot& slot = ptr_cache_[id & (kPtrCacheSize - 1)];
  slot.id = id;
  slot.data = it->second->data();
  return slot.data;
}

u64 Memory::read_split(Addr addr, u32 bytes) {
  FLEX_DCHECK(bytes == 1 || bytes == 2 || bytes == 4 || bytes == 8);
  const u32 first = static_cast<u32>(kPageSize - (addr & (kPageSize - 1)));
  u64 value = 0;
  auto* dst = reinterpret_cast<u8*>(&value);
  std::memcpy(dst, page_data(addr) + (addr & (kPageSize - 1)), first);
  std::memcpy(dst + first, page_data(addr + first), bytes - first);
  return value;
}

void Memory::write_split(Addr addr, u32 bytes, u64 value) {
  FLEX_DCHECK(bytes == 1 || bytes == 2 || bytes == 4 || bytes == 8);
  // write() already ran the guards for the first page; the split also lands
  // on the next page, which may be watched independently.
  const u64 second_page = (addr >> kPageBits) + 1;
  if (second_page - watch_min_page_ <= watch_page_span_) {
    notify_code_write(second_page);
  }
  const u32 first = static_cast<u32>(kPageSize - (addr & (kPageSize - 1)));
  const auto* src = reinterpret_cast<const u8*>(&value);
  std::memcpy(page_data(addr) + (addr & (kPageSize - 1)), src, first);
  std::memcpy(page_data(addr + first), src + first, bytes - first);
}

void Memory::write_block(Addr addr, const void* src, std::size_t n) {
  if (n == 0) return;
  for (u64 page = addr >> kPageBits, last = (addr + n - 1) >> kPageBits; page <= last;
       ++page) {
    if (page - watch_min_page_ <= watch_page_span_) notify_code_write(page);
  }
  if (!reservations_.empty()) invalidate_reservations(addr, n);
  const auto* bytes = static_cast<const u8*>(src);
  while (n > 0) {
    const Addr offset = addr & (kPageSize - 1);
    const std::size_t chunk = std::min<std::size_t>(n, kPageSize - offset);
    std::memcpy(page_data(addr) + offset, bytes, chunk);
    addr += chunk;
    bytes += chunk;
    n -= chunk;
  }
}

void Memory::read_block(Addr addr, void* dst, std::size_t n) {
  auto* bytes = static_cast<u8*>(dst);
  while (n > 0) {
    const Addr offset = addr & (kPageSize - 1);
    const std::size_t chunk = std::min<std::size_t>(n, kPageSize - offset);
    std::memcpy(bytes, page_data(addr) + offset, chunk);
    addr += chunk;
    bytes += chunk;
    n -= chunk;
  }
}

}  // namespace flexstep::arch
