#include "arch/program_image.h"

#include "arch/memory.h"
#include "common/check.h"

namespace flexstep::arch {

const LoadedImage* ImageRegistry::load(Memory& memory, const isa::Program& program) {
  auto image = std::make_unique<LoadedImage>();
  image->base = program.code_base;
  image->end = program.code_end();
  image->code = program.code;
  for (const auto& existing : images_) {
    const bool overlap = image->base < existing->end && existing->base < image->end;
    FLEX_CHECK_MSG(!overlap, "program image overlaps an already-loaded image");
  }
  // Materialise the encoded image in simulated memory.
  const auto words = program.encode_all();
  memory.write_block(program.code_base, words.data(), words.size() * sizeof(u32));

  images_.push_back(std::move(image));
  return images_.back().get();
}

const LoadedImage* ImageRegistry::find(Addr pc) const {
  for (const auto& image : images_) {
    if (image->contains(pc)) return image.get();
  }
  return nullptr;
}

}  // namespace flexstep::arch
