#include "arch/cache.h"

#include <bit>

#include "common/archive.h"
#include "common/check.h"

namespace flexstep::arch {

void Cache::Snapshot::serialize(io::ArchiveWriter& ar) const {
  ar.put_varint(ways.size());
  for (const Way& way : ways) {
    ar.put_u64(way.tag);
    ar.put_varint(way.lru);
  }
  ar.put_varint(tick);
  ar.put_varint(hits);
  ar.put_varint(misses);
}

void Cache::Snapshot::deserialize(io::ArchiveReader& ar) {
  ways.clear();
  const u64 count = ar.take_count(9);  // >= 8 tag bytes + 1 lru byte per way
  ways.reserve(ar.ok() ? static_cast<std::size_t>(count) : 0);
  for (u64 i = 0; ar.ok() && i < count; ++i) {
    Way way;
    way.tag = ar.take_u64();
    way.lru = ar.take_varint();
    ways.push_back(way);
  }
  tick = ar.take_varint();
  hits = ar.take_varint();
  misses = ar.take_varint();
}

void CacheHierarchy::Snapshot::serialize(io::ArchiveWriter& ar) const {
  l1i.serialize(ar);
  l1d.serialize(ar);
}

void CacheHierarchy::Snapshot::deserialize(io::ArchiveReader& ar) {
  l1i.deserialize(ar);
  l1d.deserialize(ar);
}

Cache::Cache(const CacheConfig& config, std::string name)
    : config_(config), name_(std::move(name)) {
  FLEX_CHECK(config.line_bytes > 0 && std::has_single_bit(config.line_bytes));
  FLEX_CHECK(config.ways > 0);
  FLEX_CHECK(config.size_bytes % (config.line_bytes * config.ways) == 0);
  num_sets_ = config.size_bytes / (config.line_bytes * config.ways);
  FLEX_CHECK(std::has_single_bit(num_sets_));
  line_shift_ = static_cast<u32>(std::countr_zero(config.line_bytes));
  set_shift_ = static_cast<u32>(std::countr_zero(num_sets_));
  ways_.resize(static_cast<std::size_t>(num_sets_) * config.ways);
}

void Cache::save(Snapshot& out) const {
  out.ways = ways_;
  out.tick = tick_;
  out.hits = hits_;
  out.misses = misses_;
}

void Cache::restore(const Snapshot& snapshot) {
  FLEX_CHECK_MSG(snapshot.ways.size() == ways_.size(),
                 "cache snapshot geometry mismatch");
  ways_ = snapshot.ways;
  tick_ = snapshot.tick;
  hits_ = snapshot.hits;
  misses_ = snapshot.misses;
}

void Cache::fill_miss(Way* base, u64 tag) {
  ++misses_;
  // Victim: first invalid way, otherwise least-recently-used.
  Way* victim = nullptr;
  for (u32 w = 0; w < config_.ways; ++w) {
    Way& way = base[w];
    if (way.tag == kInvalidTag) {
      victim = &way;
      break;
    }
    if (victim == nullptr || way.lru < victim->lru) victim = &way;
  }
  victim->tag = tag;
  victim->lru = tick_;
}

void Cache::invalidate_all() {
  for (auto& way : ways_) way.tag = kInvalidTag;
}

double Cache::miss_rate() const {
  const u64 total = hits_ + misses_;
  return total == 0 ? 0.0 : static_cast<double>(misses_) / static_cast<double>(total);
}

CacheHierarchy::CacheHierarchy(const CacheConfig& l1i, const CacheConfig& l1d,
                               Cache* shared_l2, Cycle memory_latency)
    : l1i_(l1i, "L1I"), l1d_(l1d, "L1D"), l2_(shared_l2), memory_latency_(memory_latency) {}

Cycle CacheHierarchy::beyond_l1(Addr addr) {
  if (l2_ == nullptr) return memory_latency_;
  if (l2_->access(addr)) return l2_->config().latency;
  return l2_->config().latency + memory_latency_;
}

}  // namespace flexstep::arch
