// Extension points between the generic core and the FlexStep units.
//
// The core stays free of FlexStep knowledge; src/flexstep implements these
// interfaces. Three seams exist, mirroring the paper's microarchitecture:
//   * CoreHooks   — commit/privilege observation (CPC instruction counting,
//                   MAL logging) and the custom-ISA execution path.
//   * MemPort     — the data-memory path. The default port goes through the
//                   cache hierarchy; a checker core in replay mode installs a
//                   port that serves loads from the Memory Access Log and
//                   verifies stores against it ("the checker core halts
//                   memory access", Sec. II).
#pragma once

#include "common/types.h"
#include "isa/instruction.h"

namespace flexstep::arch {

class Core;

/// What the core reports for each committed instruction.
struct CommitInfo {
  Addr pc = 0;
  Addr next_pc = 0;  ///< PC of the next instruction (post branch resolution).
  const isa::Instruction* inst = nullptr;
  bool user_mode = true;

  // Memory side (valid when inst is a memory op that committed).
  bool mem_valid = false;
  Addr mem_addr = 0;
  u64 mem_wdata = 0;   ///< Store data / AMO operand value written.
  u64 mem_rdata = 0;   ///< Load result / AMO old value / SC status.
  u32 mem_bytes = 0;
  bool sc_success = false;
};

/// Result of a data-memory operation.
struct MemResult {
  bool ready = true;  ///< false: operand not available yet — core blocks & retries.
  Cycle stall = 0;    ///< Extra cycles beyond the pipelined hit path.
  u64 data = 0;       ///< Load value / AMO old value / SC status (0 = success).
};

class MemPort {
 public:
  virtual ~MemPort() = default;
  virtual MemResult load(isa::Opcode op, Addr addr, u32 bytes) = 0;
  virtual MemResult store(isa::Opcode op, Addr addr, u32 bytes, u64 data) = 0;
  /// AMO read-modify-write; returns the old memory value in .data.
  virtual MemResult amo(isa::Opcode op, Addr addr, u64 operand) = 0;
  virtual MemResult load_reserved(Addr addr) = 0;
  /// Store-conditional; .data = 0 on success, 1 on failure.
  virtual MemResult store_conditional(Addr addr, u64 data) = 0;
};

class CoreHooks {
 public:
  virtual ~CoreHooks() = default;

  /// True while the hooks are guaranteed to be no-ops for user-mode commits:
  /// memory_can_commit() returns true and on_commit() returns 0 for every
  /// instruction. The batched execution engine (Core::run_until) queries this
  /// before each fast-path attempt and, while passive, executes the
  /// common-case instruction stream without any virtual hook dispatch. State
  /// that flips passivity (M.check enable, replay entry) only changes inside
  /// slow-path events (traps, custom ISA, kernel transitions) or between
  /// quanta, so the cached answer cannot go stale mid-fast-loop. Non-virtual
  /// (a plain flag maintained by the implementation through set_passive) so
  /// the engine's per-instruction query costs one byte load even while hooks
  /// are active.
  bool passive() const { return passive_; }

  /// While non-passive, a hook may still let the batched engine run spans of
  /// NON-MEMORY user-mode instructions without per-commit dispatch, provided
  /// (a) every memory instruction takes the one-at-a-time path (full
  /// CommitInfo + memory_can_commit pre-check), and (b) the span's commit
  /// count is delivered afterwards through on_commit_batch. Returns how many
  /// instructions may be batch-committed before the next boundary where the
  /// hook needs a full per-instruction view (e.g. a segment about to close);
  /// 0 disables batching (the default, and mandatory whenever on_commit does
  /// anything beyond counting for non-memory commits).
  virtual u64 commit_batch_limit() const { return 0; }

  /// Deliver `count` batch-committed non-memory user-mode instructions. Must
  /// be state-equivalent to `count` successive on_commit calls for such
  /// instructions (commit_batch_limit guarantees no boundary sits inside).
  virtual void on_commit_batch(Core& core, u64 count) {
    (void)core;
    (void)count;
  }

  /// Called before a memory instruction executes (checking active only
  /// matters to FlexStep): return false to stall the core until buffer space
  /// exists (DBC backpressure). The instruction has NOT executed yet.
  virtual bool memory_can_commit(Core& core, const isa::Instruction& inst) = 0;

  /// Called after each commit. Returns extra stall cycles charged to the core
  /// (e.g. checkpoint extraction at a segment boundary).
  virtual Cycle on_commit(Core& core, const CommitInfo& info) = 0;

  /// Privilege transitions (CPC privilege monitor, Sec. III-A).
  virtual void on_enter_kernel(Core& core) = 0;
  virtual void on_exit_kernel(Core& core) = 0;

  /// Execute a FlexStep custom instruction; returns the rd result value.
  virtual u64 exec_custom(Core& core, const isa::Instruction& inst) = 0;

 protected:
  /// Implementations flip this whenever their commit-observation needs change
  /// (default: never passive, so custom hooks observe every commit).
  void set_passive(bool passive) { passive_ = passive; }

 private:
  bool passive_ = false;
};

}  // namespace flexstep::arch
