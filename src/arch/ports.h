// Extension points between the generic core and the FlexStep units.
//
// The core stays free of FlexStep knowledge; src/flexstep implements these
// interfaces. Three seams exist, mirroring the paper's microarchitecture:
//   * CoreHooks   — commit/privilege observation (CPC instruction counting,
//                   MAL logging) and the custom-ISA execution path.
//   * MemPort     — the data-memory path. The default port goes through the
//                   cache hierarchy; a checker core in replay mode installs a
//                   port that serves loads from the Memory Access Log and
//                   verifies stores against it ("the checker core halts
//                   memory access", Sec. II).
#pragma once

#include "common/types.h"
#include "isa/instruction.h"

namespace flexstep::arch {

class Core;

/// What the core reports for each committed instruction.
struct CommitInfo {
  Addr pc = 0;
  Addr next_pc = 0;  ///< PC of the next instruction (post branch resolution).
  const isa::Instruction* inst = nullptr;
  bool user_mode = true;

  // Memory side (valid when inst is a memory op that committed).
  bool mem_valid = false;
  Addr mem_addr = 0;
  u64 mem_wdata = 0;   ///< Store data / AMO operand value written.
  u64 mem_rdata = 0;   ///< Load result / AMO old value / SC status.
  u32 mem_bytes = 0;
  bool sc_success = false;
};

/// Result of a data-memory operation.
struct MemResult {
  bool ready = true;  ///< false: operand not available yet — core blocks & retries.
  Cycle stall = 0;    ///< Extra cycles beyond the pipelined hit path.
  u64 data = 0;       ///< Load value / AMO old value / SC status (0 = success).
};

class MemPort {
 public:
  virtual ~MemPort() = default;
  virtual MemResult load(isa::Opcode op, Addr addr, u32 bytes) = 0;
  virtual MemResult store(isa::Opcode op, Addr addr, u32 bytes, u64 data) = 0;
  /// AMO read-modify-write; returns the old memory value in .data.
  virtual MemResult amo(isa::Opcode op, Addr addr, u64 operand) = 0;
  virtual MemResult load_reserved(Addr addr) = 0;
  /// Store-conditional; .data = 0 on success, 1 on failure.
  virtual MemResult store_conditional(Addr addr, u64 data) = 0;
};

/// Replay-side mismatch classes surfaced by the fused fast path — the batched
/// analogue of the replay MemPort's per-access verdicts. The hook maps them
/// back onto its own detection taxonomy.
enum class ReplayMismatch : u8 { kLoadAddr, kStoreAddr, kStoreData };

/// One staged memory-access record inside a SegmentCursor. Fixed flat layout
/// so the batched engine reads/writes it with plain loads and stores — no
/// virtual dispatch on the hot path.
struct MemRecord {
  u8 kind = 0;     ///< Stream-entry kind tag (opaque to the core).
  u8 bytes = 0;
  Addr addr = 0;
  u64 data = 0;    ///< Producer: load result (raw) / store data (masked).
  Cycle cycle = 0; ///< Producer: post-commit stamp of the logging instruction.
};

/// Bulk segment-stream seam between the batched engine and a logging/replay
/// hook. A hook that can absorb plain loads and stores in bulk hands the
/// engine a cursor over preallocated record slots valid for one quantum:
///
///   * produce == true  — the engine executes memory ops normally and appends
///     one record per plain load/store (addr, data, post-commit cycle). The
///     hook publishes the records into its stream inside on_commit_batch,
///     before any per-instruction path can run again.
///   * produce == false — the engine serves loads FROM the staged records and
///     verifies store addr/data against them, charging `replay_stall` per
///     access and reporting divergence through `on_mismatch` (carrying the
///     pre-commit clock, exactly when a stepwise port call would have seen
///     it). `used` counts records consumed; `last_cycle` holds the clock of
///     the last replayed access so the hook can retire the consumed prefix
///     with the right timestamp.
///
/// The capacity is the hook's guarantee that every staged access passes its
/// backpressure / availability checks; the engine bails to the stepwise path
/// the moment the cursor is full (or, replaying, the next staged kind does
/// not match the instruction). A cursor is never live across a run_until
/// return: on_commit_batch always consumes it first.
struct SegmentCursor {
  MemRecord* slots = nullptr;
  u32 capacity = 0;
  u32 used = 0;
  bool produce = false;
  u8 load_kind = 0;       ///< Stream tag the hook expects for plain loads.
  u8 store_kind = 0;      ///< Stream tag the hook expects for plain stores.
  Cycle replay_stall = 0; ///< Per-access log-read stall (consumer side).
  Cycle last_cycle = 0;   ///< Consumer: clock of the last replayed access.
  /// Consumer only: the driver has declared the quantum's cycle bound
  /// scheduler-only (bulk-consume horizon) — nothing outside this core can
  /// observe anything but the channel pops, so a hot trace whose POPS all
  /// land strictly below the bound may dispatch even though its tail would
  /// run past it. The core's cycle trajectory is engine-independent, making
  /// the overrun unobservable; an armed timer deadline stays hard regardless.
  bool allow_bound_overrun = false;
  void* ctx = nullptr;
  void (*on_mismatch)(void* ctx, ReplayMismatch kind, Cycle at) = nullptr;
};

class CoreHooks {
 public:
  virtual ~CoreHooks() = default;

  /// True while the hooks are guaranteed to be no-ops for user-mode commits:
  /// memory_can_commit() returns true and on_commit() returns 0 for every
  /// instruction. The batched execution engine (Core::run_until) queries this
  /// before each fast-path attempt and, while passive, executes the
  /// common-case instruction stream without any virtual hook dispatch. State
  /// that flips passivity (M.check enable, replay entry) only changes inside
  /// slow-path events (traps, custom ISA, kernel transitions) or between
  /// quanta, so the cached answer cannot go stale mid-fast-loop. Non-virtual
  /// (a plain flag maintained by the implementation through set_passive) so
  /// the engine's per-instruction query costs one byte load even while hooks
  /// are active.
  bool passive() const { return passive_; }

  /// While non-passive, a hook may still let the batched engine run spans of
  /// NON-MEMORY user-mode instructions without per-commit dispatch, provided
  /// (a) every memory instruction takes the one-at-a-time path (full
  /// CommitInfo + memory_can_commit pre-check), and (b) the span's commit
  /// count is delivered afterwards through on_commit_batch. Returns how many
  /// instructions may be batch-committed before the next boundary where the
  /// hook needs a full per-instruction view (e.g. a segment about to close);
  /// 0 disables batching (the default, and mandatory whenever on_commit does
  /// anything beyond counting for non-memory commits).
  virtual u64 commit_batch_limit() const { return 0; }

  /// Deliver `count` batch-committed non-memory user-mode instructions. Must
  /// be state-equivalent to `count` successive on_commit calls for such
  /// instructions (commit_batch_limit guarantees no boundary sits inside).
  /// When a segment cursor was opened for the batch, this call also publishes
  /// (producer) or retires (consumer) the staged records — it runs before any
  /// per-instruction hook path can observe the stream again.
  virtual void on_commit_batch(Core& core, u64 count) {
    (void)core;
    (void)count;
  }

  /// Bulk seam (see SegmentCursor): called once per batched span while the
  /// hook is non-passive and batchable. Return a cursor to let the engine keep
  /// plain loads/stores on the fast path — staging produced records or
  /// replay-verifying against staged ones — or nullptr to keep every memory
  /// instruction on the one-at-a-time path (the default). `max_entries` is
  /// the engine's upper bound on memory instructions the span can commit
  /// (instruction budget capped by the cycle window); staging more slots than
  /// that is wasted setup work, staging fewer is merely an earlier bail-out.
  virtual SegmentCursor* open_segment_cursor(Core& core, u64 max_entries) {
    (void)core;
    (void)max_entries;
    return nullptr;
  }

  /// Called before a memory instruction executes (checking active only
  /// matters to FlexStep): return false to stall the core until buffer space
  /// exists (DBC backpressure). The instruction has NOT executed yet.
  virtual bool memory_can_commit(Core& core, const isa::Instruction& inst) = 0;

  /// Called after each commit. Returns extra stall cycles charged to the core
  /// (e.g. checkpoint extraction at a segment boundary).
  virtual Cycle on_commit(Core& core, const CommitInfo& info) = 0;

  /// Privilege transitions (CPC privilege monitor, Sec. III-A).
  virtual void on_enter_kernel(Core& core) = 0;
  virtual void on_exit_kernel(Core& core) = 0;

  /// Execute a FlexStep custom instruction; returns the rd result value.
  virtual u64 exec_custom(Core& core, const isa::Instruction& inst) = 0;

 protected:
  /// Implementations flip this whenever their commit-observation needs change
  /// (default: never passive, so custom hooks observe every commit).
  void set_passive(bool passive) { passive_ = passive; }

 private:
  bool passive_ = false;
};

}  // namespace flexstep::arch
