// Trap causes and the host-level trap-handler interface.
//
// Kernel-mode software is modelled at host level (the paper's OS add-on is a
// few lines inside the context switch; simulating a whole guest kernel binary
// would add nothing to the reproduction). The simulated core transfers to a
// TrapHandler on ECALL / timer interrupt / task exit; the handler manipulates
// the core through its privileged API and tells the core how to continue.
#pragma once

#include "common/types.h"

namespace flexstep::arch {

class Core;

enum class TrapCause : u8 {
  kEcall,         ///< Environment call from user mode.
  kTimer,         ///< Timer interrupt (scheduler tick / preemption).
  kSoftware,      ///< Inter-core software interrupt (reschedule request).
  kTaskExit,      ///< HALT retired: the running task finished.
  kIllegal,       ///< Undecodable or unsupported instruction.
  kFetchFault,    ///< PC outside any loaded program image.
};

constexpr const char* trap_cause_name(TrapCause c) {
  switch (c) {
    case TrapCause::kEcall: return "ecall";
    case TrapCause::kTimer: return "timer";
    case TrapCause::kSoftware: return "software";
    case TrapCause::kTaskExit: return "task-exit";
    case TrapCause::kIllegal: return "illegal";
    case TrapCause::kFetchFault: return "fetch-fault";
  }
  return "?";
}

struct TrapAction {
  enum class Kind : u8 {
    kResumeUser,        ///< Return to user mode at mepc after `kernel_cycles`.
    kHalt,              ///< Stop this core.
    kContextSwitched,   ///< Handler already installed a new context (pc/regs/mode).
  };
  Kind kind = Kind::kResumeUser;
  /// Modelled cost of the kernel excursion, added to the core's local clock.
  Cycle kernel_cycles = 0;
};

class TrapHandler {
 public:
  virtual ~TrapHandler() = default;
  virtual TrapAction on_trap(Core& core, TrapCause cause) = 0;
};

}  // namespace flexstep::arch
