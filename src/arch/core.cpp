#include "arch/core.h"

#include <cstdlib>

#include "arch/trace.h"
#include "common/archive.h"
#include "common/check.h"

namespace flexstep::arch {

using isa::Instruction;
using isa::MemKind;
using isa::Opcode;

// RV64 M-extension corner cases, shared by all three engines (step(),
// run_fast_path(), trace replay) so they stay bit-identical: x/0 = -1,
// x%0 = x, and INT64_MIN / -1 wraps to INT64_MIN with remainder 0 — the
// naive host division would be undefined behaviour (SIGFPE on x86).
namespace {
inline u64 div_signed(u64 a, u64 b) {
  if (b == 0) return ~u64{0};
  if (a == (u64{1} << 63) && b == ~u64{0}) return a;
  return static_cast<u64>(static_cast<i64>(a) / static_cast<i64>(b));
}
inline u64 rem_signed(u64 a, u64 b) {
  if (b == 0) return a;
  if (a == (u64{1} << 63) && b == ~u64{0}) return 0;
  return static_cast<u64>(static_cast<i64>(a) % static_cast<i64>(b));
}
}  // namespace

// ---------------------------------------------------------------------------
// Default data-memory port: real memory + cache-hierarchy timing + LR/SC
// reservation handling.
// ---------------------------------------------------------------------------
class Core::CachePort final : public MemPort {
 public:
  explicit CachePort(Core& core) : core_(core) {}

  MemResult load(Opcode, Addr addr, u32 bytes) override {
    MemResult r;
    r.stall = core_.caches_.data(addr) + core_.config_.load_use_penalty;
    r.data = core_.memory_.read(addr, bytes);
    return r;
  }

  // Reservation invalidation — own stores, own AMOs (which used to leave the
  // owner's reservation standing: an AMO is a store too), other cores'
  // writes to the same granule, and bulk writes — is centralised in the
  // Memory reservation registry: every write path checks it, so no per-op
  // special casing can be missed here or in the batched engine's inlined
  // store paths.
  MemResult store(Opcode, Addr addr, u32 bytes, u64 data) override {
    MemResult r;
    r.stall = core_.caches_.data(addr);
    core_.memory_.write(addr, bytes, data);
    return r;
  }

  MemResult amo(Opcode op, Addr addr, u64 operand) override {
    MemResult r;
    r.stall = core_.caches_.data(addr) + 1;  // read-modify-write occupies an extra cycle
    const u64 old = core_.memory_.read(addr, 8);
    u64 next = 0;
    switch (op) {
      case Opcode::kAmoaddD: next = old + operand; break;
      case Opcode::kAmoswapD: next = operand; break;
      case Opcode::kAmoxorD: next = old ^ operand; break;
      case Opcode::kAmoandD: next = old & operand; break;
      case Opcode::kAmoorD: next = old | operand; break;
      default: FLEX_CHECK_MSG(false, "not an AMO opcode");
    }
    core_.memory_.write(addr, 8, next);  // breaks any reservation on the granule
    r.data = old;
    return r;
  }

  MemResult load_reserved(Addr addr) override {
    MemResult r;
    r.stall = core_.caches_.data(addr) + 1;
    r.data = core_.memory_.read(addr, 8);
    core_.set_reservation(addr & ~Addr{7});
    return r;
  }

  MemResult store_conditional(Addr addr, u64 data) override {
    MemResult r;
    r.stall = core_.caches_.data(addr) + 1;
    const bool ok = core_.reservation_valid_ && core_.reservation_addr_ == (addr & ~Addr{7});
    if (ok) core_.memory_.write(addr, 8, data);
    core_.release_reservation();  // SC consumes the reservation either way
    r.data = ok ? 0 : 1;
    return r;
  }

 private:
  Core& core_;
};

// ---------------------------------------------------------------------------

Core::Core(CoreId id, const CoreConfig& config, Memory& memory, const ImageRegistry& images,
           Cache* shared_l2)
    : id_(id),
      config_(config),
      memory_(memory),
      images_(images),
      caches_(config.l1i, config.l1d, shared_l2, config.memory_latency),
      bpred_(config.bpred),
      cache_port_(std::make_unique<CachePort>(*this)) {
  port_ = cache_port_.get();
  if (config_.trace.enabled) {
    trace_cache_ = std::make_unique<TraceCache>(
        config_.trace, memory_,
        TraceCostModel{caches_.worst_miss_cost(), config_.load_use_penalty,
                       bpred_.config().mispredict_penalty});
  }
}

Core::~Core() { memory_.clear_reservation(this); }

u32 Core::seed_traces(const std::vector<Addr>& seeds) {
  if (trace_cache_ == nullptr) return 0;
  u32 covered = 0;
  for (const Addr pc : seeds) {
    const LoadedImage* image = images_.find(pc);
    if (image == nullptr) continue;
    if (trace_cache_->seed(pc, image->code.data(), image->base, image->end)) {
      ++covered;
    }
  }
  return covered;
}

void Core::set_reservation(Addr granule) {
  reservation_addr_ = granule;
  reservation_valid_ = true;
  memory_.set_reservation(this, granule);
}

void Core::release_reservation() {
  reservation_valid_ = false;
  memory_.clear_reservation(this);
}

void Core::set_mem_port(MemPort* port) { port_ = port != nullptr ? port : cache_port_.get(); }

// FLEX_FUSED=0 falls back to counting-mode batches (memory ops stepwise): a
// debugging lever for isolating fused-path issues, and the baseline the trace
// bench measures its verified-mode speedups against. Read once, same rule as
// FLEX_TRACE/FLEX_ENGINE; per-core overrides go through set_fused_batching.
bool Core::default_fused_batching() {
  static const bool enabled = [] {
    const char* value = std::getenv("FLEX_FUSED");
    return value == nullptr || *value != '0';
  }();
  return enabled;
}

MemPort& Core::cache_mem_port() { return *cache_port_; }

ArchState Core::capture_state() const {
  ArchState s;
  s.pc = pc_;
  s.regs = regs_;
  s.regs[0] = 0;
  return s;
}

void Core::restore_state(const ArchState& state) {
  pc_ = state.pc;
  regs_ = state.regs;
  regs_[0] = 0;
  image_ = nullptr;  // force image re-lookup
}

void Core::Snapshot::serialize(io::ArchiveWriter& ar) const {
  for (u64 r : regs) ar.put_u64(r);
  ar.put_u64(pc);
  ar.put_bool(user_mode);
  ar.put_u64(csr_mepc);
  ar.put_u64(csr_mcause);
  ar.put_u64(csr_mscratch);
  caches.serialize(ar);
  bpred.serialize(ar);
  ar.put_u64(last_fetch_line);
  ar.put_u64(reservation_addr);
  ar.put_bool(reservation_valid);
  ar.put_varint(cycle);
  ar.put_varint(instret);
  ar.put_varint(user_instret);
  ar.put_varint(stall_cycles);
  ar.put_varint(mispredicts);
  ar.put_varint(timer_at);
  ar.put_bool(timer_armed);
  ar.put_bool(swi_pending);
  ar.put_bool(suppress_traps);
  ar.put_u8(static_cast<u8>(status));
}

void Core::Snapshot::deserialize(io::ArchiveReader& ar) {
  for (u64& r : regs) r = ar.take_u64();
  pc = ar.take_u64();
  user_mode = ar.take_bool();
  csr_mepc = ar.take_u64();
  csr_mcause = ar.take_u64();
  csr_mscratch = ar.take_u64();
  caches.deserialize(ar);
  bpred.deserialize(ar);
  last_fetch_line = ar.take_u64();
  reservation_addr = ar.take_u64();
  reservation_valid = ar.take_bool();
  cycle = ar.take_varint();
  instret = ar.take_varint();
  user_instret = ar.take_varint();
  stall_cycles = ar.take_varint();
  mispredicts = ar.take_varint();
  timer_at = ar.take_varint();
  timer_armed = ar.take_bool();
  swi_pending = ar.take_bool();
  suppress_traps = ar.take_bool();
  const u8 raw_status = ar.take_u8();
  if (ar.ok() && raw_status > static_cast<u8>(Status::kHalted)) {
    ar.fail(io::ArchiveStatus::kMalformed, "core status out of domain");
  }
  status = static_cast<Status>(raw_status);
}

void Core::save(Snapshot& out) const {
  out.regs = regs_;
  out.pc = pc_;
  out.user_mode = user_mode_;
  out.csr_mepc = csr_mepc_;
  out.csr_mcause = csr_mcause_;
  out.csr_mscratch = csr_mscratch_;
  caches_.save(out.caches);
  bpred_.save(out.bpred);
  out.last_fetch_line = last_fetch_line_;
  out.reservation_addr = reservation_addr_;
  out.reservation_valid = reservation_valid_;
  out.cycle = cycle_;
  out.instret = instret_;
  out.user_instret = user_instret_;
  out.stall_cycles = stall_cycles_;
  out.mispredicts = mispredicts_;
  out.timer_at = timer_at_;
  out.timer_armed = timer_armed_;
  out.swi_pending = swi_pending_;
  out.suppress_traps = suppress_traps_;
  out.status = status_;
}

void Core::restore(const Snapshot& snapshot) {
  regs_ = snapshot.regs;
  regs_[0] = 0;
  pc_ = snapshot.pc;
  user_mode_ = snapshot.user_mode;
  csr_mepc_ = snapshot.csr_mepc;
  csr_mcause_ = snapshot.csr_mcause;
  csr_mscratch_ = snapshot.csr_mscratch;
  caches_.restore(snapshot.caches);
  bpred_.restore(snapshot.bpred);
  last_fetch_line_ = snapshot.last_fetch_line;
  // Re-sync the shared Memory registry with the restored architectural
  // reservation, so a post-restore (or forked) SC observes invalidations
  // exactly as the original would have — never spuriously succeeds.
  reservation_addr_ = snapshot.reservation_addr;
  reservation_valid_ = snapshot.reservation_valid;
  if (reservation_valid_) {
    memory_.set_reservation(this, reservation_addr_);
  } else {
    memory_.clear_reservation(this);
  }
  cycle_ = snapshot.cycle;
  instret_ = snapshot.instret;
  user_instret_ = snapshot.user_instret;
  stall_cycles_ = snapshot.stall_cycles;
  mispredicts_ = snapshot.mispredicts;
  timer_at_ = snapshot.timer_at;
  timer_armed_ = snapshot.timer_armed;
  swi_pending_ = snapshot.swi_pending;
  suppress_traps_ = snapshot.suppress_traps;
  status_ = snapshot.status;
  quantum_break_ = false;  // never set between scheduling rounds
  run_exit_ = RunExit::kNone;
  image_ = nullptr;        // may belong to another SoC's registry; re-lookup
  // Traces are derived state (never captured): drop them so a restored or
  // forked session re-records from its own execution, trivially bit-exact.
  if (trace_cache_ != nullptr) trace_cache_->flush();
}

u64 Core::read_csr(u16 csr) const {
  switch (csr) {
    case isa::kCsrMhartid: return id_;
    case isa::kCsrCycle: return cycle_;
    case isa::kCsrInstret: return instret_;
    case isa::kCsrMstatus: return user_mode_ ? 0 : 1;
    case isa::kCsrMepc: return csr_mepc_;
    case isa::kCsrMcause: return csr_mcause_;
    case isa::kCsrMscratch: return csr_mscratch_;
    default: return 0;
  }
}

void Core::write_csr(u16 csr, u64 value) {
  switch (csr) {
    case isa::kCsrMepc: csr_mepc_ = value; break;
    case isa::kCsrMcause: csr_mcause_ = value; break;
    case isa::kCsrMscratch: csr_mscratch_ = value; break;
    default: break;  // read-only / unimplemented CSRs ignore writes
  }
}

void Core::unblock_at(Cycle at) {
  FLEX_CHECK(status_ == Status::kBlocked);
  status_ = Status::kRunning;
  advance_to(at);
}

void Core::cancel_block() {
  if (status_ == Status::kBlocked) status_ = Status::kRunning;
}

void Core::wake(Cycle at) {
  if (status_ == Status::kWaitingInterrupt) {
    status_ = Status::kRunning;
    advance_to(at);
  }
}

void Core::deliver_interrupt(TrapCause cause, Cycle at) {
  FLEX_CHECK(status_ == Status::kBlocked || status_ == Status::kWaitingInterrupt ||
             status_ == Status::kRunning || status_ == Status::kIdle);
  advance_to(at);
  if (status_ == Status::kBlocked) cancel_block();
  if (status_ == Status::kWaitingInterrupt) status_ = Status::kRunning;
  take_trap(cause);
}

bool Core::poll_interrupts() {
  if (!user_mode_) return false;  // kernel excursions are modelled atomic
  if (swi_pending_) {
    swi_pending_ = false;
    take_trap(TrapCause::kSoftware);
    return true;
  }
  if (timer_armed_ && cycle_ >= timer_at_) {
    timer_armed_ = false;
    take_trap(TrapCause::kTimer);
    return true;
  }
  return false;
}

void Core::take_trap(TrapCause cause) {
  // ECALL and HALT commit before trapping, so user execution resumes (or the
  // checking-segment boundary sits) just past them.
  csr_mepc_ =
      (cause == TrapCause::kEcall || cause == TrapCause::kTaskExit) ? pc_ + 4 : pc_;
  csr_mcause_ = static_cast<u64>(cause);
  const bool was_user = user_mode_;
  user_mode_ = false;
  if (was_user && hooks_ != nullptr) hooks_->on_enter_kernel(*this);

  TrapAction action;
  if (handler_ != nullptr) {
    action = handler_->on_trap(*this, cause);
  } else {
    action.kind = (cause == TrapCause::kTaskExit || cause == TrapCause::kIllegal ||
                   cause == TrapCause::kFetchFault)
                      ? TrapAction::Kind::kHalt
                      : TrapAction::Kind::kResumeUser;
  }
  cycle_ += action.kernel_cycles;

  switch (action.kind) {
    case TrapAction::Kind::kResumeUser:
      user_mode_ = true;
      pc_ = csr_mepc_;
      if (hooks_ != nullptr) hooks_->on_exit_kernel(*this);
      break;
    case TrapAction::Kind::kHalt:
      status_ = Status::kHalted;
      break;
    case TrapAction::Kind::kContextSwitched:
      // The handler installed the next context (and, per Alg. 1, handled the
      // FlexStep reconfiguration itself). Nothing more to do here.
      break;
  }
}

Core::Status Core::run(u64 max_instructions) {
  return run_until(kNoCycleBound, max_instructions);
}

Core::Status Core::run_until(Cycle stop_before, u64 max_instructions) {
  quantum_break_ = false;
  const u64 instret_end = max_instructions > ~u64{0} - instret_
                              ? ~u64{0}
                              : instret_ + max_instructions;
  while (status_ == Status::kRunning && cycle_ < stop_before &&
         instret_ < instret_end && !quantum_break_) {
    // The fast path engages only where it is provably equivalent to step():
    // user mode, passive hooks (no commit observation possible), the default
    // cache memory port, and no pending software interrupt. All of these can
    // only change inside slow-path events, so they are hoisted out of the
    // hot loop and re-evaluated here after every slow-path instruction.
    if (user_mode_ && !swi_pending_) {
      if ((hooks_ == nullptr || hooks_->passive()) && port_ == cache_port_.get()) {
        run_fast_path<FastMode::kFull>(stop_before, instret_end, nullptr);
        if (status_ != Status::kRunning || cycle_ >= stop_before ||
            instret_ >= instret_end || quantum_break_) {
          break;
        }
      } else if (hooks_ != nullptr && !hooks_->passive()) {
        // Batchable hooks: live (FlexStep segment production or checker
        // replay) but declaring a span over which non-memory commits reduce
        // to a count. With a segment cursor, plain loads/stores ride the fast
        // path too (staged MAL records / in-loop replay compare); without
        // one, memory ops bail to step() per instruction. Custom ISA and the
        // declared boundary itself always stay on the step() path below.
        const u64 batch = hooks_->commit_batch_limit();
        if (batch > 0) {
          const u64 batch_end =
              batch < instret_end - instret_ ? instret_ + batch : instret_end;
          const u64 before = instret_;
          // Upper bound on memory ops this span can commit: its instruction
          // budget, additionally capped by the cycle window (every commit
          // costs at least one cycle) so the hook never stages more than a
          // short quantum could consume.
          u64 window = batch_end - instret_;
          if (stop_before - cycle_ < window) window = stop_before - cycle_;
          // Cursor setup (staging copy, headroom scan, publish) is per-span
          // overhead; under the strict-leapfrog engine spans are a handful of
          // cycles and the cursor cannot pay for itself. Fuse only when the
          // span can plausibly amortize it — below the threshold the batch
          // runs in counting mode exactly as before the fused path existed.
          constexpr u64 kFusedMinWindow = 32;
          SegmentCursor* cursor =
              fused_batching_ && window >= kFusedMinWindow
                  ? hooks_->open_segment_cursor(*this, window)
                  : nullptr;
          if (cursor != nullptr && cursor->produce && port_ != cache_port_.get()) {
            // Producer staging inlines the cache-port memory path; with any
            // other port installed the fused path would bypass it.
            cursor = nullptr;
          }
          if (cursor == nullptr) {
            run_fast_path<FastMode::kCount>(stop_before, batch_end, nullptr);
          } else if (cursor->produce) {
            run_fast_path<FastMode::kProduce>(stop_before, batch_end, cursor);
          } else {
            run_fast_path<FastMode::kReplay>(stop_before, batch_end, cursor);
          }
          if (instret_ != before) hooks_->on_commit_batch(*this, instret_ - before);
          if (status_ != Status::kRunning || cycle_ >= stop_before ||
              instret_ >= instret_end || quantum_break_) {
            break;
          }
        }
      }
    }
    // Slow path: one instruction (or trap delivery) in full generality.
    {
      step();
    }
  }
  run_exit_ = status_ != Status::kRunning ? RunExit::kStatusChange
              : quantum_break_            ? RunExit::kQuantumBreak
              : cycle_ >= stop_before     ? RunExit::kCycleBound
                                          : RunExit::kInstretBound;
  return status_;
}

// Fused-mode load body for run_fast_path: serve from the staged log window
// (replay) or stage a MAL record (produce); other modes hit the cache/memory
// path directly. The replay compare stamp is the pre-commit clock — exactly
// when the stepwise engine's ReplayPort pops the entry (before this
// instruction's cost is added). The produce stamp is the post-commit clock
// (cost is final here: loads add nothing after the data probe), matching the
// stepwise on_commit -> log_memory ordering.
#define FLEX_FAST_LOAD(bytes_)                                              \
  if constexpr (M == FastMode::kReplay) {                                   \
    MemRecord& e = cursor->slots[cursor->used++];                           \
    cursor->last_cycle = cycle;                                             \
    if (e.addr != addr) [[unlikely]] {                                      \
      cursor->on_mismatch(cursor->ctx, ReplayMismatch::kLoadAddr, cycle);   \
    }                                                                       \
    cost += cursor->replay_stall;                                           \
    value = e.data;                                                         \
  } else {                                                                  \
    cost += caches_.data(addr) + config_.load_use_penalty;                  \
    value = memory_.read(addr, (bytes_));                                   \
    if constexpr (M == FastMode::kProduce) {                                \
      MemRecord& rec = cursor->slots[cursor->used++];                       \
      rec.kind = cursor->load_kind;                                         \
      rec.bytes = (bytes_);                                                 \
      rec.addr = addr;                                                      \
      rec.data = value;                                                     \
      rec.cycle = cycle + cost;                                             \
    }                                                                       \
  }

template <Core::FastMode M>
void Core::run_fast_path(Cycle stop_before, u64 instret_end,
                         SegmentCursor* cursor) {
  (void)cursor;  // unused in kFull/kCount instantiations
  // Hoisted fetch window: while the PC stays inside the cached image,
  // straight-line fetch is a bounds check and an indexed load off the
  // pre-decoded stream (no registry lookup).
  Addr base = 0;
  Addr end = 0;
  const Instruction* code = nullptr;
  if (image_ != nullptr) {
    base = image_->base;
    end = image_->end;
    code = image_->code.data();
  }

  // The interrupt poll folds into the loop bound: software interrupts cannot
  // be raised from inside the loop (no hooks run), and the timer deadline is
  // fixed until a trap handler re-arms it — so running while
  // cycle < min(stop_before, timer_at) polls at every instruction boundary
  // exactly as step() does. Architectural counters live in locals for the
  // duration (the out-of-line cache/memory miss paths would otherwise force
  // reloads every iteration) and are written back on every exit.
  Cycle limit = stop_before;
  if (timer_armed_ && timer_at_ < limit) limit = timer_at_;

  Addr pc = pc_;
  Cycle cycle = cycle_;
  const Cycle cycle_start = cycle_;
  u64 instret = instret_;
  const u64 instret_start = instret_;
  Addr last_line = last_fetch_line_;
  // Counting mode: live hooks must see every memory instruction (CommitInfo
  // logging / replay verification / backpressure pre-check), so the fast set
  // shrinks to the non-memory prefix [kAdd, kJalr] and traces stay off
  // (recorded traces embed inlined loads/stores). The fused modes widen the
  // set back to [kAdd, kSd]: the segment cursor carries the per-quantum MAL
  // staging (produce) or the pre-staged log window (replay), so plain
  // loads/stores commit in-loop and traces re-engage.
  TraceCache* const traces =
      (M == FastMode::kCount) ? nullptr : trace_cache_.get();
  constexpr u8 max_fast_op = static_cast<u8>(
      M == FastMode::kCount ? Opcode::kJalr : Opcode::kSd);

trace_point:
  // Trace dispatch: reached on fast-path entry and after every control
  // transfer (the only places a recorded region can begin). Chain hot traces
  // back-to-back while the quantum has headroom for each trace's worst-case
  // cycle cost and full instruction count — that guarantee is what lets the
  // replay loop skip every per-instruction bound/interrupt check without
  // becoming observable (no interrupt, quantum break or bound can land
  // mid-trace; hooks are passive by the fast path's precondition).
  // The outer guard is constexpr so the kCount instantiation (traces is a
  // literal nullptr) drops the block entirely instead of tripping GCC's
  // null-deref analysis on the statically dead calls.
  if constexpr (M != FastMode::kCount)
  if (traces != nullptr) {
    while (cycle < limit && instret < instret_end && pc - base < end - base) {
      const Trace* t = traces->lookup(pc);
      if (t == nullptr) {
        t = traces->notice_entry(pc, code, base, end);
        if (t == nullptr) break;
      }
      // Replay serves loads/stores from the staged log at a deterministic
      // FIFO stall — no d-cache probe, no load-use penalty — so its dispatch
      // bound drops the data-memory share of worst_cost and charges the exact
      // per-access stall instead. Without the correction, memory-heavy hot
      // traces out-budget an entire checker quantum and never dispatch.
      Cycle worst = t->worst_cost;
      if constexpr (M == FastMode::kReplay) {
        worst = t->worst_cost - t->mem_worst_cost +
                static_cast<Cycle>(t->mem_ops) * cursor->replay_stall;
      }
      bool fits = worst <= limit - cycle;
      if constexpr (M == FastMode::kReplay) {
        // Scheduler-only bound (bulk-consume horizon): the quantum bound only
        // exists to keep this checker's pops in the producer's past, so a
        // trace whose last pop lands strictly below the bound may dispatch
        // even though its tail (trailing ALU / probes / terminal) would
        // overrun — the cycle trajectory is engine-independent, making the
        // overrun unobservable. Quantum tails otherwise fall back to the
        // per-instruction loop and were the dominant trace-coverage loss.
        // An armed timer deadline stays hard (the trap cycle must be exact).
        if (!fits && cursor->allow_bound_overrun &&
            (!timer_armed_ || worst <= timer_at_ - cycle)) {
          fits = t->mem_ops == 0 ||
                 t->last_pop_worst +
                         static_cast<Cycle>(t->mem_ops - 1) *
                             cursor->replay_stall <
                     limit - cycle;
        }
      }
      if (!fits || t->inst_count > instret_end - instret) {
        break;  // near a bound: the stepwise loop below handles the tail
      }
      if constexpr (M == FastMode::kProduce || M == FastMode::kReplay) {
        // Fused gating: every memory op in the trace consumes one cursor
        // slot, so the whole trace must fit the remaining window.
        if (cursor->used + t->mem_ops > cursor->capacity) break;
        if constexpr (M == FastMode::kReplay) {
          // Kind-for-kind pre-check against the staged log window: a
          // diverged or faulted stream falls back to stepwise compare.
          bool kinds_match = true;
          for (u32 i = 0; i < t->mem_ops; ++i) {
            const u8 expect =
                t->mem_kinds[i] != 0 ? cursor->store_kind : cursor->load_kind;
            if (cursor->slots[cursor->used + i].kind != expect) {
              kinds_match = false;
              break;
            }
          }
          if (!kinds_match) break;
        }
      }
      execute_trace<M>(*t, pc, cycle, instret, last_line, cursor);
    }
  }

  while (cycle < limit && instret < instret_end) {
    if (pc - base >= end - base) [[unlikely]] {
      const LoadedImage* img = images_.find(pc);
      if (img == nullptr) break;  // fetch fault: step() raises the trap
      image_ = img;
      base = img->base;
      end = img->end;
      code = img->code.data();
    }
    const Instruction& inst = code[(pc - base) / 4];

    // Slow-path opcodes bail out BEFORE the I-cache probe: step() must see
    // the untouched fetch-line state so it performs the probe (and charges a
    // miss penalty) exactly as the stepwise engine would. The fast-path set
    // is contiguous at the front of the opcode enum, so this is one compare;
    // the switch below handles every opcode in [kAdd, kSd].
    static_assert(static_cast<u8>(Opcode::kAdd) == 0 &&
                      static_cast<u8>(Opcode::kLrD) ==
                          static_cast<u8>(Opcode::kSd) + 1,
                  "fast-path opcode range must stay contiguous");
    static_assert(static_cast<u8>(Opcode::kLb) ==
                      static_cast<u8>(Opcode::kJalr) + 1,
                  "counting-mode opcode range must end where memory ops begin");
    if (static_cast<u8>(inst.op) > max_fast_op) goto writeback;

    if constexpr (M == FastMode::kProduce || M == FastMode::kReplay) {
      // Memory ops must clear the cursor BEFORE the I-probe: a bail-out to
      // step() has to leave the fetch-line state untouched so step() performs
      // (and charges) the probe exactly as the stepwise engine would.
      if (static_cast<u8>(inst.op) >= static_cast<u8>(Opcode::kLb)) {
        if (cursor->used == cursor->capacity) goto writeback;
        if constexpr (M == FastMode::kReplay) {
          const bool is_store =
              static_cast<u8>(inst.op) >= static_cast<u8>(Opcode::kSb);
          const u8 expect = is_store ? cursor->store_kind : cursor->load_kind;
          if (cursor->slots[cursor->used].kind != expect) goto writeback;
        }
      }
    }

    Cycle cost = 1;
    const Addr fetch_line = pc >> 6;
    if (fetch_line != last_line) {
      cost += caches_.fetch(pc);
      last_line = fetch_line;
    }

    Addr next_pc = pc + 4;
    u64 rd_value = 0;
    bool write_rd = false;

    const u64 a = regs_[inst.rs1];  // NOLINT: x0 reads as 0 by invariant
    const u64 b = regs_[inst.rs2];
    const auto imm = static_cast<i64>(inst.imm);

    switch (inst.op) {
      // ---- ALU register-register ----
      case Opcode::kAdd: rd_value = a + b; write_rd = true; break;
      case Opcode::kSub: rd_value = a - b; write_rd = true; break;
      case Opcode::kSll: rd_value = a << (b & 63); write_rd = true; break;
      case Opcode::kSrl: rd_value = a >> (b & 63); write_rd = true; break;
      case Opcode::kSra:
        rd_value = static_cast<u64>(static_cast<i64>(a) >> (b & 63));
        write_rd = true;
        break;
      case Opcode::kAnd: rd_value = a & b; write_rd = true; break;
      case Opcode::kOr: rd_value = a | b; write_rd = true; break;
      case Opcode::kXor: rd_value = a ^ b; write_rd = true; break;
      case Opcode::kSlt:
        rd_value = static_cast<i64>(a) < static_cast<i64>(b) ? 1 : 0;
        write_rd = true;
        break;
      case Opcode::kSltu: rd_value = a < b ? 1 : 0; write_rd = true; break;
      case Opcode::kMul:
        rd_value = a * b;
        write_rd = true;
        cost += isa::opcode_latency(inst.op) - 1;
        break;
      case Opcode::kMulh:
        rd_value = static_cast<u64>(
            (static_cast<__int128>(static_cast<i64>(a)) * static_cast<i64>(b)) >> 64);
        write_rd = true;
        cost += isa::opcode_latency(inst.op) - 1;
        break;
      case Opcode::kDiv:
        rd_value = div_signed(a, b);
        write_rd = true;
        cost += isa::opcode_latency(inst.op) - 1;
        break;
      case Opcode::kDivu:
        rd_value = (b == 0) ? ~u64{0} : a / b;
        write_rd = true;
        cost += isa::opcode_latency(inst.op) - 1;
        break;
      case Opcode::kRem:
        rd_value = rem_signed(a, b);
        write_rd = true;
        cost += isa::opcode_latency(inst.op) - 1;
        break;
      case Opcode::kRemu:
        rd_value = (b == 0) ? a : a % b;
        write_rd = true;
        cost += isa::opcode_latency(inst.op) - 1;
        break;

      // ---- ALU register-immediate ----
      case Opcode::kAddi: rd_value = a + static_cast<u64>(imm); write_rd = true; break;
      case Opcode::kAndi: rd_value = a & static_cast<u64>(imm); write_rd = true; break;
      case Opcode::kOri: rd_value = a | static_cast<u64>(imm); write_rd = true; break;
      case Opcode::kXori: rd_value = a ^ static_cast<u64>(imm); write_rd = true; break;
      case Opcode::kSlli: rd_value = a << (inst.imm & 63); write_rd = true; break;
      case Opcode::kSrli: rd_value = a >> (inst.imm & 63); write_rd = true; break;
      case Opcode::kSrai:
        rd_value = static_cast<u64>(static_cast<i64>(a) >> (inst.imm & 63));
        write_rd = true;
        break;
      case Opcode::kSlti:
        rd_value = static_cast<i64>(a) < imm ? 1 : 0;
        write_rd = true;
        break;
      case Opcode::kSltiu:
        rd_value = a < static_cast<u64>(imm) ? 1 : 0;
        write_rd = true;
        break;
      case Opcode::kLui:
        rd_value = static_cast<u64>(static_cast<i64>(inst.imm) << isa::kLuiShift);
        write_rd = true;
        break;

      // ---- conditional branches ----
      case Opcode::kBeq:
      case Opcode::kBne:
      case Opcode::kBlt:
      case Opcode::kBge:
      case Opcode::kBltu:
      case Opcode::kBgeu: {
        bool taken = false;
        switch (inst.op) {
          case Opcode::kBeq: taken = a == b; break;
          case Opcode::kBne: taken = a != b; break;
          case Opcode::kBlt: taken = static_cast<i64>(a) < static_cast<i64>(b); break;
          case Opcode::kBge: taken = static_cast<i64>(a) >= static_cast<i64>(b); break;
          case Opcode::kBltu: taken = a < b; break;
          case Opcode::kBgeu: taken = a >= b; break;
          default: break;
        }
        const bool predicted = bpred_.predict_taken(pc);
        if (predicted != taken) {
          cost += bpred_.config().mispredict_penalty;
          ++mispredicts_;
        }
        bpred_.update(pc, taken);
        if (taken) next_pc = pc + static_cast<Addr>(static_cast<i64>(inst.imm));
        break;
      }

      // ---- jumps ----
      case Opcode::kJal: {
        rd_value = pc + 4;
        write_rd = inst.rd != 0;
        next_pc = pc + static_cast<Addr>(static_cast<i64>(inst.imm));
        const auto hit = bpred_.btb_lookup(pc);
        if (!hit.has_value() || *hit != next_pc) {
          cost += 1;  // decode-stage redirect bubble
          bpred_.btb_insert(pc, next_pc);
        }
        if (inst.rd == 1) bpred_.ras_push(pc + 4);
        break;
      }
      case Opcode::kJalr: {
        const Addr target = (a + static_cast<u64>(imm)) & ~u64{1};
        rd_value = pc + 4;
        write_rd = inst.rd != 0;
        if (inst.rd == 0 && inst.rs1 == 1) {
          const auto predicted = bpred_.ras_pop();
          if (!predicted.has_value() || *predicted != target) {
            cost += bpred_.config().mispredict_penalty;
            ++mispredicts_;
          }
        } else {
          const auto hit = bpred_.btb_lookup(pc);
          if (!hit.has_value() || *hit != target) {
            cost += bpred_.config().mispredict_penalty;
            ++mispredicts_;
            bpred_.btb_insert(pc, target);
          }
          if (inst.rd == 1) bpred_.ras_push(pc + 4);
        }
        next_pc = target;
        break;
      }

      // ---- loads (inlined CachePort::load: default port guaranteed; cases
      // split by width so each copy is a fixed-size move) ----
      case Opcode::kLb:
      case Opcode::kLbu: {
        const Addr addr = a + static_cast<u64>(imm);
        u64 value;
        FLEX_FAST_LOAD(1)
        rd_value = inst.op == Opcode::kLb
                       ? static_cast<u64>(static_cast<i64>(static_cast<i8>(value)))
                       : value;
        write_rd = true;
        break;
      }
      case Opcode::kLh:
      case Opcode::kLhu: {
        const Addr addr = a + static_cast<u64>(imm);
        u64 value;
        FLEX_FAST_LOAD(2)
        rd_value = inst.op == Opcode::kLh
                       ? static_cast<u64>(static_cast<i64>(static_cast<i16>(value)))
                       : value;
        write_rd = true;
        break;
      }
      case Opcode::kLw:
      case Opcode::kLwu: {
        const Addr addr = a + static_cast<u64>(imm);
        u64 value;
        FLEX_FAST_LOAD(4)
        rd_value = inst.op == Opcode::kLw
                       ? static_cast<u64>(static_cast<i64>(static_cast<i32>(value)))
                       : value;
        write_rd = true;
        break;
      }
      case Opcode::kLd: {
        const Addr addr = a + static_cast<u64>(imm);
        u64 value;
        FLEX_FAST_LOAD(8)
        rd_value = value;
        write_rd = true;
        break;
      }

      // ---- stores (inlined CachePort::store; width split as for loads) ----
      case Opcode::kSb:
      case Opcode::kSh:
      case Opcode::kSw:
      case Opcode::kSd: {
        const Addr addr = a + static_cast<u64>(imm);
        if constexpr (M == FastMode::kReplay) {
          // Verify against the staged producer record: address first, then
          // the width-masked data (same precedence as the stepwise checker).
          u64 data = b;
          switch (inst.op) {
            case Opcode::kSb: data = b & 0xff; break;
            case Opcode::kSh: data = b & 0xffff; break;
            case Opcode::kSw: data = b & 0xffff'ffff; break;
            default: break;
          }
          MemRecord& e = cursor->slots[cursor->used++];
          cursor->last_cycle = cycle;
          if (e.addr != addr) [[unlikely]] {
            cursor->on_mismatch(cursor->ctx, ReplayMismatch::kStoreAddr, cycle);
          } else if (e.data != data) [[unlikely]] {
            cursor->on_mismatch(cursor->ctx, ReplayMismatch::kStoreData, cycle);
          }
          cost += cursor->replay_stall;  // checker never writes memory
        } else if constexpr (M == FastMode::kProduce) {
          cost += caches_.data(addr);
          u32 bytes = 8;
          u64 data = b;
          switch (inst.op) {
            case Opcode::kSb: bytes = 1; data = b & 0xff; break;
            case Opcode::kSh: bytes = 2; data = b & 0xffff; break;
            case Opcode::kSw: bytes = 4; data = b & 0xffff'ffff; break;
            default: break;
          }
          memory_.write(addr, bytes, data);
          MemRecord& rec = cursor->slots[cursor->used++];
          rec.kind = cursor->store_kind;
          rec.bytes = static_cast<u8>(bytes);
          rec.addr = addr;
          rec.data = data;
          rec.cycle = cycle + cost;
        } else {
          cost += caches_.data(addr);
          // Reservation invalidation happens inside Memory's write path (the
          // shared registry), identically for every store flavour and core.
          switch (inst.op) {
            case Opcode::kSb: memory_.write(addr, 1, b & 0xff); break;
            case Opcode::kSh: memory_.write(addr, 2, b & 0xffff); break;
            case Opcode::kSw: memory_.write(addr, 4, b & 0xffff'ffff); break;
            default: memory_.write(addr, 8, b); break;
          }
        }
        break;
      }

      // ---- everything else (atomics, system, CSR, custom ISA, traps) ----
      default:
        goto writeback;  // slow path: the caller executes it through step()
    }

    // ---- commit (mirrors step(); hooks are passive by precondition) ----
    if (write_rd && inst.rd != 0) regs_[inst.rd] = rd_value;
    cycle += cost;
    ++instret;
    {
      const bool transfer = next_pc != pc + 4;
      pc = next_pc;
      // Control transfers land on block entries — the only PCs a trace can
      // start at. Re-attempt trace dispatch there (also counts entry heat).
      if (transfer && traces != nullptr) goto trace_point;
    }
  }

writeback:
  pc_ = pc;
  cycle_ = cycle;
  instret_ = instret;
  const u64 retired = instret - instret_start;
  user_instret_ += retired;  // fast path runs in user mode only
  // Identity: every instruction charges cost = 1 + stall, so the summed stall
  // is the cycle delta minus the retired count (exactly step()'s accounting).
  stall_cycles_ += (cycle - cycle_start) - retired;
  last_fetch_line_ = last_line;
}

#undef FLEX_FAST_LOAD

template void Core::run_fast_path<Core::FastMode::kFull>(Cycle, u64,
                                                         SegmentCursor*);
template void Core::run_fast_path<Core::FastMode::kCount>(Cycle, u64,
                                                          SegmentCursor*);
template void Core::run_fast_path<Core::FastMode::kProduce>(Cycle, u64,
                                                            SegmentCursor*);
template void Core::run_fast_path<Core::FastMode::kReplay>(Cycle, u64,
                                                           SegmentCursor*);

// ---------------------------------------------------------------------------
// Trace replay.
//
// On GCC/Clang the dispatch is threaded (computed goto): every
// superinstruction ends in its own indirect jump, so the host BTB learns
// per-op successor patterns instead of thrashing one shared switch jump
// (Ertl & Gregg, "The Structure and Performance of Efficient Interpreters").
// The portable fallback is a conventional switch loop with identical bodies.
// ---------------------------------------------------------------------------
#if defined(__GNUC__) || defined(__clang__)
#define FLEX_TRACE_THREADED 1
#endif

#if FLEX_TRACE_THREADED
#define TRACE_OP(name) lbl_##name:
#define TRACE_NEXT() do { ++op; goto *kDispatch[op->kind]; } while (0)
#else
#define TRACE_OP(name) case TraceOpKind::name:
#define TRACE_NEXT() break
#endif
#define TRACE_DONE() goto trace_done

// Mode-routed accumulators. The plain modes keep the original scheme: static
// costs pre-summed in t.base_cost, `extra` collects dynamic stalls. The fused
// modes additionally need the per-instruction commit clock at each memory op
// (produce stamps records with it, replay compares at it), so they thread a
// running clock `rc` through the handlers instead:
//   - TRACE_STATIC(c) folds an op's static cost into rc;
//   - replay defers fetch-probe costs in `carry` until the next fold, because
//     a probe precedes its instruction and the replay compare stamp is the
//     PRE-commit clock, which excludes the instruction's own probe;
//   - terminal-op dynamic costs (mispredict/redirect) still go through
//     `extra` in every mode — terminals commit after every memory op, so
//     their placement relative to rc is unobservable.
#define TRACE_STATIC(c)                             \
  do {                                              \
    if constexpr (M == FastMode::kReplay) {         \
      rc += carry + (c);                            \
      carry = 0;                                    \
    } else if constexpr (M == FastMode::kProduce) { \
      rc += (c);                                    \
    }                                               \
  } while (0)
#define TRACE_OP1(name) TRACE_OP(name) TRACE_STATIC(1);
#define TRACE_PROBE(pc_expr)                              \
  do {                                                    \
    const Cycle probe_cost = caches_.fetch(pc_expr);      \
    if constexpr (M == FastMode::kReplay) {               \
      carry += probe_cost;                                \
    } else if constexpr (M == FastMode::kProduce) {       \
      rc += probe_cost;                                   \
    } else {                                              \
      extra += probe_cost;                                \
    }                                                     \
  } while (0)

template <Core::FastMode M>
void Core::execute_trace(const Trace& t, Addr& pc, Cycle& cycle, u64& instret,
                         Addr& last_line, SegmentCursor* cursor) {
  (void)cursor;  // unused in the plain instantiations
  // Dynamic stalls only (plain modes); every static cost (1/inst,
  // multiplier/divider latency, load-use bubbles) was pre-summed into
  // t.base_cost at record time. Equivalence with the stepwise loop holds
  // because all state-bearing probes (I-fetch, D-cache, BHT/BTB/RAS) still
  // run in program order and the per-instruction commits only differ in WHEN
  // the shared counters are summed — never in what any probe or operand
  // observes: within a trace no instruction reads cycle/instret (CSR reads
  // are slow-path), and x0 stays zero because ops writing it were dropped at
  // record time (their cost rides the kStaticCost pseudo-op).
  Cycle extra = 0;
  [[maybe_unused]] Cycle rc = cycle;
  [[maybe_unused]] Cycle carry = 0;
  if ((t.entry_pc >> 6) != last_line) TRACE_PROBE(t.entry_pc);
  Addr next_pc = t.exit_pc;
  u64* const regs = regs_.data();
  const TraceOp* op = t.ops.data();

#if FLEX_TRACE_THREADED
#define FLEX_TRACE_LABEL(name) &&lbl_##name,
#define FLEX_TRACE_PAIR_LABEL(name, first, second) &&lbl_kPair##name,
  static const void* const kDispatch[] = {
      FLEX_TRACE_KIND_LIST(FLEX_TRACE_LABEL)
      FLEX_TRACE_PAIR_LIST(FLEX_TRACE_PAIR_LABEL)};
#undef FLEX_TRACE_PAIR_LABEL
#undef FLEX_TRACE_LABEL
  goto *kDispatch[op->kind];
#else
  for (;;) {
    switch (static_cast<TraceOpKind>(op->kind)) {
#endif

  // ---- ALU register-register ----
  TRACE_OP1(kAdd) regs[op->rd] = regs[op->rs1] + regs[op->rs2]; TRACE_NEXT();
  TRACE_OP1(kSub) regs[op->rd] = regs[op->rs1] - regs[op->rs2]; TRACE_NEXT();
  TRACE_OP1(kSll) regs[op->rd] = regs[op->rs1] << (regs[op->rs2] & 63); TRACE_NEXT();
  TRACE_OP1(kSrl) regs[op->rd] = regs[op->rs1] >> (regs[op->rs2] & 63); TRACE_NEXT();
  TRACE_OP1(kSra)
    regs[op->rd] = static_cast<u64>(static_cast<i64>(regs[op->rs1]) >>
                                    (regs[op->rs2] & 63));
    TRACE_NEXT();
  TRACE_OP1(kAnd) regs[op->rd] = regs[op->rs1] & regs[op->rs2]; TRACE_NEXT();
  TRACE_OP1(kOr) regs[op->rd] = regs[op->rs1] | regs[op->rs2]; TRACE_NEXT();
  TRACE_OP1(kXor) regs[op->rd] = regs[op->rs1] ^ regs[op->rs2]; TRACE_NEXT();
  TRACE_OP1(kSlt)
    regs[op->rd] =
        static_cast<i64>(regs[op->rs1]) < static_cast<i64>(regs[op->rs2]) ? 1 : 0;
    TRACE_NEXT();
  TRACE_OP1(kSltu) regs[op->rd] = regs[op->rs1] < regs[op->rs2] ? 1 : 0; TRACE_NEXT();
  TRACE_OP(kMul)
    TRACE_STATIC(isa::opcode_latency(Opcode::kMul));
    regs[op->rd] = regs[op->rs1] * regs[op->rs2];
    TRACE_NEXT();
  TRACE_OP(kMulh)
    TRACE_STATIC(isa::opcode_latency(Opcode::kMulh));
    regs[op->rd] = static_cast<u64>((static_cast<__int128>(static_cast<i64>(
                                         regs[op->rs1])) *
                                     static_cast<i64>(regs[op->rs2])) >>
                                    64);
    TRACE_NEXT();
  TRACE_OP(kDiv)
    TRACE_STATIC(isa::opcode_latency(Opcode::kDiv));
    regs[op->rd] = div_signed(regs[op->rs1], regs[op->rs2]);
    TRACE_NEXT();
  TRACE_OP(kDivu) {
    TRACE_STATIC(isa::opcode_latency(Opcode::kDivu));
    const u64 b = regs[op->rs2];
    regs[op->rd] = (b == 0) ? ~u64{0} : regs[op->rs1] / b;
  }
  TRACE_NEXT();
  TRACE_OP(kRem)
    TRACE_STATIC(isa::opcode_latency(Opcode::kRem));
    regs[op->rd] = rem_signed(regs[op->rs1], regs[op->rs2]);
    TRACE_NEXT();
  TRACE_OP(kRemu) {
    TRACE_STATIC(isa::opcode_latency(Opcode::kRemu));
    const u64 a = regs[op->rs1];
    const u64 b = regs[op->rs2];
    regs[op->rd] = (b == 0) ? a : a % b;
  }
  TRACE_NEXT();

  // ---- ALU register-immediate (shift amounts & LUI pre-masked) ----
  TRACE_OP1(kAddi)
    regs[op->rd] = regs[op->rs1] + static_cast<u64>(static_cast<i64>(op->imm));
    TRACE_NEXT();
  TRACE_OP1(kAndi)
    regs[op->rd] = regs[op->rs1] & static_cast<u64>(static_cast<i64>(op->imm));
    TRACE_NEXT();
  TRACE_OP1(kOri)
    regs[op->rd] = regs[op->rs1] | static_cast<u64>(static_cast<i64>(op->imm));
    TRACE_NEXT();
  TRACE_OP1(kXori)
    regs[op->rd] = regs[op->rs1] ^ static_cast<u64>(static_cast<i64>(op->imm));
    TRACE_NEXT();
  TRACE_OP1(kSlli) regs[op->rd] = regs[op->rs1] << op->imm; TRACE_NEXT();
  TRACE_OP1(kSrli) regs[op->rd] = regs[op->rs1] >> op->imm; TRACE_NEXT();
  TRACE_OP1(kSrai)
    regs[op->rd] = static_cast<u64>(static_cast<i64>(regs[op->rs1]) >> op->imm);
    TRACE_NEXT();
  TRACE_OP1(kSlti)
    regs[op->rd] = static_cast<i64>(regs[op->rs1]) < static_cast<i64>(op->imm) ? 1 : 0;
    TRACE_NEXT();
  TRACE_OP1(kSltiu)
    regs[op->rd] = regs[op->rs1] < static_cast<u64>(static_cast<i64>(op->imm)) ? 1 : 0;
    TRACE_NEXT();
  TRACE_OP1(kLui)
    regs[op->rd] = static_cast<u64>(static_cast<i64>(op->imm));
    TRACE_NEXT();

  // ---- terminal control transfers ----
#define FLEX_TRACE_BRANCH_TAIL(taken_expr)                                   \
  {                                                                          \
    TRACE_STATIC(1);                                                         \
    const bool taken = (taken_expr);                                         \
    const Addr bpc = t.entry_pc + static_cast<Addr>(op->imm) * 4;            \
    if (bpred_.predict_taken(bpc) != taken) {                                \
      extra += bpred_.config().mispredict_penalty;                           \
      ++mispredicts_;                                                        \
    }                                                                        \
    bpred_.update(bpc, taken);                                               \
    if (taken) next_pc = op->target;                                         \
  }                                                                          \
  TRACE_DONE()

  TRACE_OP(kBeq) FLEX_TRACE_BRANCH_TAIL(regs[op->rs1] == regs[op->rs2]);
  TRACE_OP(kBne) FLEX_TRACE_BRANCH_TAIL(regs[op->rs1] != regs[op->rs2]);
  TRACE_OP(kBlt)
    FLEX_TRACE_BRANCH_TAIL(static_cast<i64>(regs[op->rs1]) <
                           static_cast<i64>(regs[op->rs2]));
  TRACE_OP(kBge)
    FLEX_TRACE_BRANCH_TAIL(static_cast<i64>(regs[op->rs1]) >=
                           static_cast<i64>(regs[op->rs2]));
  TRACE_OP(kBltu) FLEX_TRACE_BRANCH_TAIL(regs[op->rs1] < regs[op->rs2]);
  TRACE_OP(kBgeu) FLEX_TRACE_BRANCH_TAIL(regs[op->rs1] >= regs[op->rs2]);

  TRACE_OP(kJal) {
    TRACE_STATIC(1);
    const Addr jpc = t.entry_pc + static_cast<Addr>(op->imm) * 4;
    next_pc = op->target;
    const auto hit = bpred_.btb_lookup(jpc);
    if (!hit.has_value() || *hit != next_pc) {
      extra += 1;  // decode-stage redirect bubble
      bpred_.btb_insert(jpc, next_pc);
    }
    if (op->rd == 1) bpred_.ras_push(jpc + 4);
    if (op->rd != 0) regs[op->rd] = jpc + 4;
  }
  TRACE_DONE();
  TRACE_OP(kJalr) {
    TRACE_STATIC(1);
    const Addr jpc = op->target;
    const Addr target =
        (regs[op->rs1] + static_cast<u64>(static_cast<i64>(op->imm))) & ~u64{1};
    if (op->rd == 0 && op->rs1 == 1) {
      const auto predicted = bpred_.ras_pop();
      if (!predicted.has_value() || *predicted != target) {
        extra += bpred_.config().mispredict_penalty;
        ++mispredicts_;
      }
    } else {
      const auto hit = bpred_.btb_lookup(jpc);
      if (!hit.has_value() || *hit != target) {
        extra += bpred_.config().mispredict_penalty;
        ++mispredicts_;
        bpred_.btb_insert(jpc, target);
      }
      if (op->rd == 1) bpred_.ras_push(jpc + 4);
    }
    if (op->rd != 0) regs[op->rd] = jpc + 4;
    next_pc = target;
  }
  TRACE_DONE();

  // ---- loads (load-use bubble folded into base_cost / rc) ----
  // Fused bodies mirror run_fast_path's FLEX_FAST_LOAD: replay serves the
  // value from the staged log window and stamps the PRE-commit clock (rc
  // before folding the load's own cost; carry holds any preceding probe);
  // produce stamps the post-commit clock after folding the full load cost.
#define FLEX_TRACE_LOAD(bytes_)                                             \
  const Addr addr = regs[op->rs1] + static_cast<u64>(static_cast<i64>(op->imm)); \
  u64 value;                                                                \
  if constexpr (M == FastMode::kReplay) {                                   \
    MemRecord& e = cursor->slots[cursor->used++];                           \
    cursor->last_cycle = rc;                                                \
    if (e.addr != addr) [[unlikely]] {                                      \
      cursor->on_mismatch(cursor->ctx, ReplayMismatch::kLoadAddr, rc);      \
    }                                                                       \
    rc += carry + 1 + cursor->replay_stall;                                 \
    carry = 0;                                                              \
    value = e.data;                                                         \
  } else {                                                                  \
    const Cycle dstall = caches_.data(addr);                                \
    value = memory_.read(addr, (bytes_));                                   \
    if constexpr (M == FastMode::kProduce) {                                \
      rc += 1 + config_.load_use_penalty + dstall;                          \
      MemRecord& rec = cursor->slots[cursor->used++];                       \
      rec.kind = cursor->load_kind;                                         \
      rec.bytes = (bytes_);                                                 \
      rec.addr = addr;                                                      \
      rec.data = value;                                                     \
      rec.cycle = rc;                                                       \
    } else {                                                                \
      extra += dstall;                                                      \
    }                                                                       \
  }
#define FLEX_TRACE_STORE(bytes_, mask_)                                     \
  const Addr addr = regs[op->rs1] + static_cast<u64>(static_cast<i64>(op->imm)); \
  const u64 data = regs[op->rs2] mask_;                                     \
  if constexpr (M == FastMode::kReplay) {                                   \
    MemRecord& e = cursor->slots[cursor->used++];                           \
    cursor->last_cycle = rc;                                                \
    if (e.addr != addr) [[unlikely]] {                                      \
      cursor->on_mismatch(cursor->ctx, ReplayMismatch::kStoreAddr, rc);     \
    } else if (e.data != data) [[unlikely]] {                               \
      cursor->on_mismatch(cursor->ctx, ReplayMismatch::kStoreData, rc);     \
    }                                                                       \
    rc += carry + 1 + cursor->replay_stall;                                 \
    carry = 0;                                                              \
  } else {                                                                  \
    const Cycle dstall = caches_.data(addr);                                \
    memory_.write(addr, (bytes_), data);                                    \
    if constexpr (M == FastMode::kProduce) {                                \
      rc += 1 + dstall;                                                     \
      MemRecord& rec = cursor->slots[cursor->used++];                       \
      rec.kind = cursor->store_kind;                                        \
      rec.bytes = (bytes_);                                                 \
      rec.addr = addr;                                                      \
      rec.data = data;                                                      \
      rec.cycle = rc;                                                       \
    } else {                                                                \
      extra += dstall;                                                      \
    }                                                                       \
  }

  TRACE_OP(kLb) {
    FLEX_TRACE_LOAD(1)
    if (op->rd != 0) {
      regs[op->rd] = static_cast<u64>(static_cast<i64>(static_cast<i8>(value)));
    }
  }
  TRACE_NEXT();
  TRACE_OP(kLbu) {
    FLEX_TRACE_LOAD(1)
    if (op->rd != 0) regs[op->rd] = value;
  }
  TRACE_NEXT();
  TRACE_OP(kLh) {
    FLEX_TRACE_LOAD(2)
    if (op->rd != 0) {
      regs[op->rd] = static_cast<u64>(static_cast<i64>(static_cast<i16>(value)));
    }
  }
  TRACE_NEXT();
  TRACE_OP(kLhu) {
    FLEX_TRACE_LOAD(2)
    if (op->rd != 0) regs[op->rd] = value;
  }
  TRACE_NEXT();
  TRACE_OP(kLw) {
    FLEX_TRACE_LOAD(4)
    if (op->rd != 0) {
      regs[op->rd] = static_cast<u64>(static_cast<i64>(static_cast<i32>(value)));
    }
  }
  TRACE_NEXT();
  TRACE_OP(kLwu) {
    FLEX_TRACE_LOAD(4)
    if (op->rd != 0) regs[op->rd] = value;
  }
  TRACE_NEXT();
  TRACE_OP(kLd) {
    FLEX_TRACE_LOAD(8)
    if (op->rd != 0) regs[op->rd] = value;
  }
  TRACE_NEXT();

  // ---- stores (reservation invalidation inside Memory::write) ----
  TRACE_OP(kSb) {
    FLEX_TRACE_STORE(1, & 0xff)
  }
  TRACE_NEXT();
  TRACE_OP(kSh) {
    FLEX_TRACE_STORE(2, & 0xffff)
  }
  TRACE_NEXT();
  TRACE_OP(kSw) {
    FLEX_TRACE_STORE(4, & 0xffff'ffff)
  }
  TRACE_NEXT();
  TRACE_OP(kSd) {
    FLEX_TRACE_STORE(8, )
  }
  TRACE_NEXT();

  // ---- pseudo-ops ----
  TRACE_OP(kIFetchProbe) TRACE_PROBE(op->target); TRACE_NEXT();
  TRACE_OP(kExit) TRACE_DONE();
  TRACE_OP(kStaticCost)
    // Cost of ops elided at record time (ALU writes into x0); carried as an
    // explicit op so the fused modes keep the running clock in program order.
    TRACE_STATIC(static_cast<Cycle>(op->imm));
    TRACE_NEXT();

  // ---- fused superinstructions (both commits, in order) ----
  TRACE_OP(kLdAddAcc) {
    FLEX_TRACE_LOAD(8)
    regs[op->rd] = value;  // fusion guarantees rd != 0
    regs[op->rs2] += value;
    TRACE_STATIC(1);  // the fused add's own commit cycle
  }
  TRACE_NEXT();
  TRACE_OP(kLdXorAcc) {
    FLEX_TRACE_LOAD(8)
    regs[op->rd] = value;
    regs[op->rs2] ^= value;
    TRACE_STATIC(1);
  }
  TRACE_NEXT();
  TRACE_OP(kAndiBne) {
    TRACE_STATIC(2);
    const u64 masked = regs[op->rs1] & static_cast<u64>(static_cast<i64>(op->imm));
    regs[op->rd] = masked;
    const bool taken = masked != 0;
    const Addr bpc = t.entry_pc + static_cast<Addr>(op->rs2) * 4;
    if (bpred_.predict_taken(bpc) != taken) {
      extra += bpred_.config().mispredict_penalty;
      ++mispredicts_;
    }
    bpred_.update(bpc, taken);
    if (taken) next_pc = op->target;
  }
  TRACE_DONE();
  TRACE_OP(kAndiBeq) {
    TRACE_STATIC(2);
    const u64 masked = regs[op->rs1] & static_cast<u64>(static_cast<i64>(op->imm));
    regs[op->rd] = masked;
    const bool taken = masked == 0;
    const Addr bpc = t.entry_pc + static_cast<Addr>(op->rs2) * 4;
    if (bpred_.predict_taken(bpc) != taken) {
      extra += bpred_.config().mispredict_penalty;
      ++mispredicts_;
    }
    bpred_.update(bpc, taken);
    if (taken) next_pc = op->target;
  }
  TRACE_DONE();
  TRACE_OP(kMulAddi)
    TRACE_STATIC(isa::opcode_latency(Opcode::kMul) + 1);
    regs[op->rd] = regs[op->rs1] * regs[op->rs2] +
                   static_cast<u64>(static_cast<i64>(op->imm));
    TRACE_NEXT();
  TRACE_OP(kAndAdd)
    TRACE_STATIC(2);
    regs[op->rd] = regs[static_cast<u8>(op->imm)] + (regs[op->rs1] & regs[op->rs2]);
    TRACE_NEXT();

  // ---- generic ALU pairs: first half in the pair op, second in the payload
  // slot it consumes. Sequential execution keeps intra-pair dependencies
  // (second half reading the first's rd) exact. ----
#define FLEX_ALU_HALF_Add(o) regs[(o)->rd] = regs[(o)->rs1] + regs[(o)->rs2]
#define FLEX_ALU_HALF_Sub(o) regs[(o)->rd] = regs[(o)->rs1] - regs[(o)->rs2]
#define FLEX_ALU_HALF_Xor(o) regs[(o)->rd] = regs[(o)->rs1] ^ regs[(o)->rs2]
#define FLEX_ALU_HALF_Or(o) regs[(o)->rd] = regs[(o)->rs1] | regs[(o)->rs2]
#define FLEX_ALU_HALF_Slli(o) regs[(o)->rd] = regs[(o)->rs1] << (o)->imm
#define FLEX_ALU_HALF_Addi(o) \
  regs[(o)->rd] = regs[(o)->rs1] + static_cast<u64>(static_cast<i64>((o)->imm))
#define FLEX_TRACE_PAIR_HANDLER(name, first, second) \
  TRACE_OP(kPair##name) {                            \
    TRACE_STATIC(2);                                 \
    FLEX_ALU_HALF_##first(op);                       \
    ++op;                                            \
    FLEX_ALU_HALF_##second(op);                      \
  }                                                  \
  TRACE_NEXT();
  FLEX_TRACE_PAIR_LIST(FLEX_TRACE_PAIR_HANDLER)
#undef FLEX_TRACE_PAIR_HANDLER

#if !FLEX_TRACE_THREADED
    }
    ++op;
  }
#endif

trace_done:
  pc = next_pc;
  if constexpr (M == FastMode::kProduce || M == FastMode::kReplay) {
    // rc already carries every static cost in program order; any probe cost
    // still parked in carry belongs to the terminal op, as do the dynamic
    // stalls in extra. Identical to base_cost + extra by construction — the
    // per-op folds partition the same sum.
    cycle = rc + carry + extra;
  } else {
    cycle += t.base_cost + extra;
  }
  instret += t.inst_count;
  last_line = t.exit_line;
  trace_cache_->count_dispatch(t.inst_count);
}

#undef TRACE_OP
#undef TRACE_OP1
#undef TRACE_NEXT
#undef TRACE_DONE
#undef TRACE_STATIC
#undef TRACE_PROBE
#undef FLEX_TRACE_BRANCH_TAIL
#undef FLEX_TRACE_LOAD
#undef FLEX_TRACE_STORE

template void Core::execute_trace<Core::FastMode::kFull>(const Trace&, Addr&,
                                                         Cycle&, u64&, Addr&,
                                                         SegmentCursor*);
template void Core::execute_trace<Core::FastMode::kCount>(const Trace&, Addr&,
                                                          Cycle&, u64&, Addr&,
                                                          SegmentCursor*);
template void Core::execute_trace<Core::FastMode::kProduce>(const Trace&,
                                                            Addr&, Cycle&,
                                                            u64&, Addr&,
                                                            SegmentCursor*);
template void Core::execute_trace<Core::FastMode::kReplay>(const Trace&, Addr&,
                                                           Cycle&, u64&, Addr&,
                                                           SegmentCursor*);

Core::Status Core::step() {
  if (status_ != Status::kRunning) return status_;
  if (poll_interrupts()) return status_;

  // ---- fetch ----
  if (image_ == nullptr || !image_->contains(pc_)) {
    image_ = images_.find(pc_);
    if (image_ == nullptr) {
      take_trap(TrapCause::kFetchFault);
      return status_;
    }
  }
  const Instruction& inst = image_->at(pc_);

  Cycle cost = 1;
  const Addr fetch_line = pc_ >> 6;
  if (fetch_line != last_fetch_line_) {
    cost += caches_.fetch(pc_);
    last_fetch_line_ = fetch_line;
  }

  // ---- DBC backpressure pre-check (FlexStep main core, Sec. III-C) ----
  if (isa::is_memory(inst.op) && hooks_ != nullptr &&
      !hooks_->memory_can_commit(*this, inst)) {
    status_ = Status::kBlocked;
    return status_;
  }

  Addr next_pc = pc_ + 4;
  u64 rd_value = 0;
  bool write_rd = false;
  bool is_trap_op = false;
  TrapCause trap_cause = TrapCause::kEcall;

  CommitInfo info;
  info.pc = pc_;
  info.inst = &inst;
  info.user_mode = user_mode_;

  const u64 a = regs_[inst.rs1];  // NOLINT: x0 reads as 0 by invariant
  const u64 b = regs_[inst.rs2];
  const auto imm = static_cast<i64>(inst.imm);

  switch (inst.op) {
    // ---- ALU register-register ----
    case Opcode::kAdd: rd_value = a + b; write_rd = true; break;
    case Opcode::kSub: rd_value = a - b; write_rd = true; break;
    case Opcode::kSll: rd_value = a << (b & 63); write_rd = true; break;
    case Opcode::kSrl: rd_value = a >> (b & 63); write_rd = true; break;
    case Opcode::kSra:
      rd_value = static_cast<u64>(static_cast<i64>(a) >> (b & 63));
      write_rd = true;
      break;
    case Opcode::kAnd: rd_value = a & b; write_rd = true; break;
    case Opcode::kOr: rd_value = a | b; write_rd = true; break;
    case Opcode::kXor: rd_value = a ^ b; write_rd = true; break;
    case Opcode::kSlt:
      rd_value = static_cast<i64>(a) < static_cast<i64>(b) ? 1 : 0;
      write_rd = true;
      break;
    case Opcode::kSltu: rd_value = a < b ? 1 : 0; write_rd = true; break;
    case Opcode::kMul:
      rd_value = a * b;
      write_rd = true;
      cost += isa::opcode_latency(inst.op) - 1;
      break;
    case Opcode::kMulh:
      rd_value = static_cast<u64>(
          (static_cast<__int128>(static_cast<i64>(a)) * static_cast<i64>(b)) >> 64);
      write_rd = true;
      cost += isa::opcode_latency(inst.op) - 1;
      break;
    case Opcode::kDiv:
      rd_value = div_signed(a, b);
      write_rd = true;
      cost += isa::opcode_latency(inst.op) - 1;
      break;
    case Opcode::kDivu:
      rd_value = (b == 0) ? ~u64{0} : a / b;
      write_rd = true;
      cost += isa::opcode_latency(inst.op) - 1;
      break;
    case Opcode::kRem:
      rd_value = rem_signed(a, b);
      write_rd = true;
      cost += isa::opcode_latency(inst.op) - 1;
      break;
    case Opcode::kRemu:
      rd_value = (b == 0) ? a : a % b;
      write_rd = true;
      cost += isa::opcode_latency(inst.op) - 1;
      break;

    // ---- ALU register-immediate ----
    case Opcode::kAddi: rd_value = a + static_cast<u64>(imm); write_rd = true; break;
    case Opcode::kAndi: rd_value = a & static_cast<u64>(imm); write_rd = true; break;
    case Opcode::kOri: rd_value = a | static_cast<u64>(imm); write_rd = true; break;
    case Opcode::kXori: rd_value = a ^ static_cast<u64>(imm); write_rd = true; break;
    case Opcode::kSlli: rd_value = a << (inst.imm & 63); write_rd = true; break;
    case Opcode::kSrli: rd_value = a >> (inst.imm & 63); write_rd = true; break;
    case Opcode::kSrai:
      rd_value = static_cast<u64>(static_cast<i64>(a) >> (inst.imm & 63));
      write_rd = true;
      break;
    case Opcode::kSlti:
      rd_value = static_cast<i64>(a) < imm ? 1 : 0;
      write_rd = true;
      break;
    case Opcode::kSltiu:
      rd_value = a < static_cast<u64>(imm) ? 1 : 0;
      write_rd = true;
      break;
    case Opcode::kLui:
      rd_value = static_cast<u64>(static_cast<i64>(inst.imm) << isa::kLuiShift);
      write_rd = true;
      break;

    // ---- conditional branches ----
    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kBlt:
    case Opcode::kBge:
    case Opcode::kBltu:
    case Opcode::kBgeu: {
      bool taken = false;
      switch (inst.op) {
        case Opcode::kBeq: taken = a == b; break;
        case Opcode::kBne: taken = a != b; break;
        case Opcode::kBlt: taken = static_cast<i64>(a) < static_cast<i64>(b); break;
        case Opcode::kBge: taken = static_cast<i64>(a) >= static_cast<i64>(b); break;
        case Opcode::kBltu: taken = a < b; break;
        case Opcode::kBgeu: taken = a >= b; break;
        default: break;
      }
      const bool predicted = bpred_.predict_taken(pc_);
      if (predicted != taken) {
        cost += bpred_.config().mispredict_penalty;
        ++mispredicts_;
      }
      bpred_.update(pc_, taken);
      if (taken) next_pc = pc_ + static_cast<Addr>(static_cast<i64>(inst.imm));
      break;
    }

    // ---- jumps ----
    case Opcode::kJal: {
      rd_value = pc_ + 4;
      write_rd = inst.rd != 0;
      next_pc = pc_ + static_cast<Addr>(static_cast<i64>(inst.imm));
      const auto hit = bpred_.btb_lookup(pc_);
      if (!hit.has_value() || *hit != next_pc) {
        cost += 1;  // decode-stage redirect bubble
        bpred_.btb_insert(pc_, next_pc);
      }
      if (inst.rd == 1) bpred_.ras_push(pc_ + 4);
      break;
    }
    case Opcode::kJalr: {
      const Addr target = (a + static_cast<u64>(imm)) & ~u64{1};
      rd_value = pc_ + 4;
      write_rd = inst.rd != 0;
      if (inst.rd == 0 && inst.rs1 == 1) {
        // Return: predicted through the RAS.
        const auto predicted = bpred_.ras_pop();
        if (!predicted.has_value() || *predicted != target) {
          cost += bpred_.config().mispredict_penalty;
          ++mispredicts_;
        }
      } else {
        const auto hit = bpred_.btb_lookup(pc_);
        if (!hit.has_value() || *hit != target) {
          cost += bpred_.config().mispredict_penalty;
          ++mispredicts_;
          bpred_.btb_insert(pc_, target);
        }
        if (inst.rd == 1) bpred_.ras_push(pc_ + 4);
      }
      next_pc = target;
      break;
    }

    // ---- loads ----
    case Opcode::kLb:
    case Opcode::kLbu:
    case Opcode::kLh:
    case Opcode::kLhu:
    case Opcode::kLw:
    case Opcode::kLwu:
    case Opcode::kLd: {
      const Addr addr = a + static_cast<u64>(imm);
      const u32 bytes = isa::mem_access_bytes(inst.op);
      const MemResult r = port_->load(inst.op, addr, bytes);
      if (!r.ready) {
        status_ = Status::kBlocked;
        return status_;
      }
      cost += r.stall;
      u64 value = r.data;
      switch (inst.op) {  // sign extension
        case Opcode::kLb: value = static_cast<u64>(static_cast<i64>(static_cast<i8>(value))); break;
        case Opcode::kLh: value = static_cast<u64>(static_cast<i64>(static_cast<i16>(value))); break;
        case Opcode::kLw: value = static_cast<u64>(static_cast<i64>(static_cast<i32>(value))); break;
        default: break;
      }
      rd_value = value;
      write_rd = true;
      info.mem_valid = true;
      info.mem_addr = addr;
      info.mem_rdata = r.data;
      info.mem_bytes = bytes;
      break;
    }

    // ---- stores ----
    case Opcode::kSb:
    case Opcode::kSh:
    case Opcode::kSw:
    case Opcode::kSd: {
      const Addr addr = a + static_cast<u64>(imm);
      const u32 bytes = isa::mem_access_bytes(inst.op);
      const u64 data = b & (bytes == 8 ? ~u64{0} : ((u64{1} << (bytes * 8)) - 1));
      const MemResult r = port_->store(inst.op, addr, bytes, data);
      if (!r.ready) {
        status_ = Status::kBlocked;
        return status_;
      }
      cost += r.stall;
      info.mem_valid = true;
      info.mem_addr = addr;
      info.mem_wdata = data;
      info.mem_bytes = bytes;
      break;
    }

    // ---- atomics ----
    case Opcode::kLrD: {
      const Addr addr = a;
      const MemResult r = port_->load_reserved(addr);
      if (!r.ready) {
        status_ = Status::kBlocked;
        return status_;
      }
      cost += r.stall;
      rd_value = r.data;
      write_rd = true;
      info.mem_valid = true;
      info.mem_addr = addr;
      info.mem_rdata = r.data;
      info.mem_bytes = 8;
      break;
    }
    case Opcode::kScD: {
      const Addr addr = a;
      const MemResult r = port_->store_conditional(addr, b);
      if (!r.ready) {
        status_ = Status::kBlocked;
        return status_;
      }
      cost += r.stall;
      rd_value = r.data;  // 0 = success
      write_rd = true;
      info.mem_valid = true;
      info.mem_addr = addr;
      info.mem_wdata = b;
      info.mem_rdata = r.data;
      info.mem_bytes = 8;
      info.sc_success = r.data == 0;
      break;
    }
    case Opcode::kAmoaddD:
    case Opcode::kAmoswapD:
    case Opcode::kAmoxorD:
    case Opcode::kAmoandD:
    case Opcode::kAmoorD: {
      const Addr addr = a;
      const MemResult r = port_->amo(inst.op, addr, b);
      if (!r.ready) {
        status_ = Status::kBlocked;
        return status_;
      }
      cost += r.stall;
      rd_value = r.data;  // old value
      write_rd = true;
      info.mem_valid = true;
      info.mem_addr = addr;
      info.mem_wdata = b;
      info.mem_rdata = r.data;
      info.mem_bytes = 8;
      break;
    }

    // ---- system ----
    case Opcode::kEcall:
      if (!suppress_traps_) {
        is_trap_op = true;
        trap_cause = TrapCause::kEcall;
      }
      break;
    case Opcode::kHalt:
      if (!suppress_traps_) {
        is_trap_op = true;
        trap_cause = TrapCause::kTaskExit;
      }
      break;
    case Opcode::kMret:
      // Guest-level trap return (the host kernel model normally bypasses this).
      user_mode_ = true;
      next_pc = csr_mepc_;
      if (hooks_ != nullptr) hooks_->on_exit_kernel(*this);
      break;
    case Opcode::kWfi:
      cycle_ += cost;
      ++instret_;
      if (user_mode_) ++user_instret_;
      pc_ = next_pc;
      status_ = Status::kWaitingInterrupt;
      return status_;
    case Opcode::kFence:
      cost += 1;
      break;
    case Opcode::kCsrrw:
      rd_value = read_csr(static_cast<u16>(inst.imm));
      write_rd = inst.rd != 0;
      write_csr(static_cast<u16>(inst.imm), a);
      break;
    case Opcode::kCsrrs:
      rd_value = read_csr(static_cast<u16>(inst.imm));
      write_rd = inst.rd != 0;
      if (inst.rs1 != 0) write_csr(static_cast<u16>(inst.imm), rd_value | a);
      break;

    // ---- FlexStep custom ISA ----
    case Opcode::kGIdsContain:
    case Opcode::kGConfigure:
    case Opcode::kMAssociate:
    case Opcode::kMCheck:
    case Opcode::kCCheckState:
    case Opcode::kCRecord:
    case Opcode::kCApply:
    case Opcode::kCJal:
    case Opcode::kCResult:
      if (hooks_ == nullptr) {
        take_trap(TrapCause::kIllegal);
        return status_;
      }
      rd_value = hooks_->exec_custom(*this, inst);
      write_rd = isa::opcode_format(inst.op) == isa::Format::kR && inst.rd != 0;
      // A hook may redirect the PC (C.jal jumps to the SCP's npc). Detect the
      // redirect and route it through the normal commit path.
      if (pc_ != info.pc) {
        next_pc = pc_;
        pc_ = info.pc;
      }
      break;

    case Opcode::kCount_:
      take_trap(TrapCause::kIllegal);
      return status_;
  }

  // ---- commit ----
  if (write_rd && inst.rd != 0) regs_[inst.rd] = rd_value;
  regs_[0] = 0;
  stall_cycles_ += cost - 1;
  cycle_ += cost;
  ++instret_;
  if (user_mode_) ++user_instret_;
  if (hooks_ != nullptr) {
    info.next_pc = is_trap_op ? pc_ + 4 : next_pc;
    const Addr pc_before_hooks = pc_;
    const Cycle extra = hooks_->on_commit(*this, info);
    stall_cycles_ += extra;
    cycle_ += extra;
    if (pc_ != pc_before_hooks) {
      // The hook installed a new context (checker replay completed and the
      // thread context was restored, possibly followed by the next segment's
      // C.apply/C.jal). Honour the hook's PC instead of the fall-through.
      return status_;
    }
  }

  if (is_trap_op) {
    // pc_ still addresses the trapping instruction (mepc = pc_+4 for ecall).
    take_trap(trap_cause);
    return status_;
  }

  pc_ = next_pc;
  return status_;
}

u64 Core::exec_kernel_instruction(const Instruction& inst) {
  FLEX_CHECK_MSG(!user_mode_, "kernel instruction executed in user mode");
  FLEX_CHECK_MSG(hooks_ != nullptr, "FlexStep custom ISA requires attached hooks");
  FLEX_CHECK_MSG(isa::is_flexstep_custom(inst.op), "only FlexStep ops via this path");
  const u64 value = hooks_->exec_custom(*this, inst);
  if (isa::opcode_format(inst.op) == isa::Format::kR && inst.rd != 0) {
    regs_[inst.rd] = value;
  }
  cycle_ += 1;
  ++instret_;
  return value;
}

}  // namespace flexstep::arch
