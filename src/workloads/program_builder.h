// Synthetic workload program generation.
//
// A generated program is a long unrolled loop whose body realises a
// WorkloadProfile's instruction mix: pseudo-random (LCG-driven) loads/stores
// over the working set, predictable and data-dependent branches, multiplies
// and divides, AMOs, and gated ECALLs. Programs are fully deterministic for a
// given (profile, seed) pair, self-contained (no preset registers needed),
// and use only x3..x15 so the nZDC transform can shadow them into x16..x30.
//
// Register allocation:
//   x3,x4,x14,x15  accumulators (feed stores; checked by nZDC)
//   x5             loop counter
//   x6             LCG state (address/branch entropy)
//   x7,x8          temporaries
//   x9             working-set address mask ((ws-1) & ~7)
//   x10            data base pointer
//   x11            roaming pointer
//   x12            LCG multiplier constant
//   x13            secondary pointer
#pragma once

#include "common/types.h"
#include "isa/assembler.h"
#include "workloads/profile.h"

namespace flexstep::workloads {

struct BuildOptions {
  Addr code_base = isa::kDefaultCodeBase;
  Addr data_base = isa::kDefaultDataBase;
  u64 seed = 1;
  /// Override profile.iterations when non-zero (quick tests).
  u32 iterations_override = 0;
};

/// Generate the simulator program realising `profile`.
isa::Program build_workload(const WorkloadProfile& profile, const BuildOptions& options = {});

/// Expected dynamic user-instruction count of the generated program (rough;
/// used for sizing campaigns).
u64 estimated_instructions(const WorkloadProfile& profile, const BuildOptions& options = {});

}  // namespace flexstep::workloads
