// Workload characteristic profiles.
//
// SPECint 2006 and Parsec 3.0 binaries cannot run on this substrate (no
// Linux userland), so every benchmark is modelled as a synthetic program with
// that benchmark's published character: instruction mix, working-set size
// relative to the cache hierarchy, branch predictability, and kernel-call
// rate. The FlexStep / Nzdc overheads then *emerge* from the mechanisms
// (checkpoint extraction, backpressure, duplicated instructions) rather than
// being hard-coded. See DESIGN.md §2.6.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace flexstep::workloads {

struct WorkloadProfile {
  std::string name;
  std::string suite;  ///< "parsec" or "specint"

  // Dynamic instruction-mix fractions; the remainder is simple ALU.
  double f_load = 0.20;
  double f_store = 0.08;
  double f_branch = 0.12;
  double f_mul = 0.03;
  double f_div = 0.005;
  double f_amo = 0.0;

  /// Fraction of conditional branches with data-dependent (unpredictable)
  /// direction; the rest are loop-style, highly predictable.
  double branch_entropy = 0.3;

  /// Data working set; > 16 KB spills L1, > 512 KB spills L2 (Tab. II).
  u32 working_set_kb = 64;

  /// Kernel calls (ECALL) per 1000 user instructions. Frequent kernel entry
  /// shortens checking segments (Fig. 3 premature extermination).
  double ecalls_per_kinst = 0.05;

  /// nZDC fails to build some workloads (paper: bodytrack, ferret, gcc).
  bool nzdc_compiles = true;

  /// Loop iterations; total dynamic instructions ≈ iterations × body size.
  u32 iterations = 200;

  /// Unrolled loop-body size in generated instructions (pre-transform).
  u32 body_instructions = 2500;
};

/// The 8 Parsec 3.0 applications of Fig. 4(a)/6/7 (simmedium character).
const std::vector<WorkloadProfile>& parsec_profiles();

/// The 11 SPECint 2006 benchmarks of Fig. 4(b).
const std::vector<WorkloadProfile>& specint_profiles();

/// Look up by name across both suites; aborts if unknown.
const WorkloadProfile& find_profile(const std::string& name);

}  // namespace flexstep::workloads
