#include "workloads/nzdc.h"

#include <vector>

#include "common/check.h"

namespace flexstep::workloads {

using isa::Format;
using isa::Instruction;
using isa::Opcode;

namespace {

bool is_computational(const Instruction& inst) {
  if (isa::is_memory(inst.op) || isa::is_cond_branch(inst.op) || isa::is_jump(inst.op)) {
    return false;
  }
  switch (inst.op) {
    case Opcode::kEcall:
    case Opcode::kHalt:
    case Opcode::kFence:
    case Opcode::kWfi:
    case Opcode::kMret:
    case Opcode::kCsrrw:
    case Opcode::kCsrrs: return false;
    default: return !isa::is_flexstep_custom(inst.op);
  }
}

Instruction shadowed(const Instruction& inst) {
  Instruction dup = inst;
  dup.rd = nzdc_shadow(inst.rd);
  dup.rs1 = nzdc_shadow(inst.rs1);
  dup.rs2 = nzdc_shadow(inst.rs2);
  return dup;
}

Instruction mv(u8 rd, u8 rs) { return isa::make_i(Opcode::kAddi, rd, rs, 0); }

}  // namespace

bool nzdc_supported(const isa::Program& program) {
  for (const auto& inst : program.code) {
    if (isa::is_flexstep_custom(inst.op)) return false;
    // The shadow file occupies x16..x30 (+x31 scratch); reject programs that
    // already use them.
    if (inst.rd >= 16 || inst.rs1 >= 16 || inst.rs2 >= 16) return false;
  }
  return true;
}

isa::Program nzdc_transform(const isa::Program& program) {
  FLEX_CHECK_MSG(nzdc_supported(program), "program uses registers reserved for nZDC");

  const std::size_t n = program.code.size();
  std::vector<Instruction> out;
  out.reserve(n * 2 + 8);
  std::vector<std::size_t> group_start(n + 1, 0);

  struct ControlFixup {
    std::size_t out_index;      ///< Position of the emitted control instruction.
    std::size_t old_target;     ///< Original instruction index it targeted.
  };
  std::vector<ControlFixup> fixups;
  std::vector<std::size_t> err_branches;  ///< bne ...,err placeholders.

  for (std::size_t i = 0; i < n; ++i) {
    group_start[i] = out.size();
    const Instruction& inst = program.code[i];

    if (is_computational(inst)) {
      out.push_back(inst);
      if (inst.rd != 0) out.push_back(shadowed(inst));
      continue;
    }

    switch (isa::opcode_mem_kind(inst.op)) {
      case isa::MemKind::kLoad:
      case isa::MemKind::kLoadReserved:
        out.push_back(inst);
        if (inst.rd != 0) out.push_back(mv(nzdc_shadow(inst.rd), inst.rd));
        continue;
      case isa::MemKind::kStore: {
        // nZDC protects stores hardest (they externalise state): check the
        // data and the address register against their shadows, store, then
        // load the value back and re-compare (store-verification).
        if (inst.rs2 != 0) {
          err_branches.push_back(out.size());
          out.push_back(isa::make_b(Opcode::kBne, inst.rs2, nzdc_shadow(inst.rs2), 0));
        }
        if (inst.rs1 != 0) {
          err_branches.push_back(out.size());
          out.push_back(isa::make_b(Opcode::kBne, inst.rs1, nzdc_shadow(inst.rs1), 0));
        }
        out.push_back(inst);
        if (inst.op == Opcode::kSd && inst.rs2 != 0) {
          // Load-back verification (64-bit stores; narrower widths would need
          // masking and are checked via the data compare above only).
          out.push_back(isa::make_i(Opcode::kLd, 31, inst.rs1, inst.imm));
          err_branches.push_back(out.size());
          out.push_back(isa::make_b(Opcode::kBne, 31, nzdc_shadow(inst.rs2), 0));
        }
        continue;
      }
      case isa::MemKind::kAmo:
      case isa::MemKind::kStoreConditional:
        if (inst.rs2 != 0) {
          err_branches.push_back(out.size());
          out.push_back(isa::make_b(Opcode::kBne, inst.rs2, nzdc_shadow(inst.rs2), 0));
        }
        out.push_back(inst);
        if (inst.rd != 0) out.push_back(mv(nzdc_shadow(inst.rd), inst.rd));
        continue;
      case isa::MemKind::kNone: break;
    }

    if (isa::is_cond_branch(inst.op)) {
      // Verify both live operands before deciding control flow (wrong-path
      // execution is nZDC's hardest failure mode), and fold the decision into
      // the running control-flow signature (x31).
      for (u8 checked : {inst.rs1, inst.rs2}) {
        if (checked != 0) {
          err_branches.push_back(out.size());
          out.push_back(isa::make_b(Opcode::kBne, checked, nzdc_shadow(checked), 0));
        }
      }
      out.push_back(isa::make_r(Opcode::kXor, 31, 31, inst.rs1));
      const std::size_t old_target = (program.code_base + i * 4 + inst.imm -
                                      program.code_base) / 4;
      fixups.push_back({out.size(), old_target});
      out.push_back(inst);
      continue;
    }

    if (inst.op == Opcode::kJal) {
      const std::size_t old_target =
          (program.code_base + i * 4 + inst.imm - program.code_base) / 4;
      fixups.push_back({out.size(), old_target});
      out.push_back(inst);
      if (inst.rd != 0) out.push_back(mv(nzdc_shadow(inst.rd), inst.rd));
      continue;
    }
    if (inst.op == Opcode::kJalr) {
      // Generated workloads avoid indirect jumps; keep a passthrough for
      // robustness (target registers are runtime values; no remap needed
      // because the transform preserves no absolute code addresses in data).
      out.push_back(inst);
      if (inst.rd != 0) out.push_back(mv(nzdc_shadow(inst.rd), inst.rd));
      continue;
    }

    // System and everything else: passthrough.
    out.push_back(inst);
  }
  group_start[n] = out.size();

  // Error handler: unreachable in fault-free runs.
  const std::size_t err_index = out.size();
  out.push_back(isa::make_c(Opcode::kHalt));

  // Re-target control transfers across the expansion.
  for (const auto& fixup : fixups) {
    FLEX_CHECK(fixup.old_target <= n);
    const auto delta = static_cast<i64>(group_start[fixup.old_target]) -
                       static_cast<i64>(fixup.out_index);
    out[fixup.out_index].imm = static_cast<i32>(delta * 4);
  }
  for (std::size_t idx : err_branches) {
    const auto delta = static_cast<i64>(err_index) - static_cast<i64>(idx);
    out[idx].imm = static_cast<i32>(delta * 4);
  }

  isa::Program result;
  result.name = program.name + "+nzdc";
  result.code_base = program.code_base;
  result.code = std::move(out);
  result.data_base = program.data_base;
  result.data_size = program.data_size;
  for (const auto& inst : result.code) (void)isa::encode(inst);  // range validation
  return result;
}

}  // namespace flexstep::workloads
