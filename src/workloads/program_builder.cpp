#include "workloads/program_builder.h"

#include <bit>

#include "common/check.h"
#include "common/rng.h"

namespace flexstep::workloads {

using isa::Assembler;

namespace {

// Register allocation (see header).
constexpr u8 kAcc0 = 3, kAcc1 = 4, kAcc2 = 14, kAcc3 = 15;
constexpr u8 kLoopCtr = 5, kLcg = 6, kTmp0 = 7, kTmp1 = 8;
constexpr u8 kMask = 9, kBase = 10, kRoam = 11, kLcgMul = 12, kPtr2 = 13;

constexpr u8 kAccs[] = {kAcc0, kAcc1, kAcc2, kAcc3};

class BodyEmitter {
 public:
  BodyEmitter(Assembler& a, const WorkloadProfile& profile, Rng& rng)
      : a_(a), profile_(profile), rng_(rng) {}

  /// Emit ~profile.body_instructions instructions realising the mix.
  void emit_body() {
    const std::size_t start = a_.size();
    const auto target = static_cast<std::size_t>(profile_.body_instructions);
    // Pre-computed gated ECALL schedule.
    const double per_body =
        profile_.ecalls_per_kinst * profile_.body_instructions / 1000.0;
    u32 ungated = static_cast<u32>(per_body);
    const double frac = per_body - ungated;
    i32 gate_mask = -1;
    if (frac > 1e-9) {
      // Fire roughly every 1/frac iterations via loop-counter bits.
      u32 period = std::bit_ceil(static_cast<u32>(1.0 / frac));
      gate_mask = static_cast<i32>(period - 1);
    }
    bool gated_emitted = false;

    while (a_.size() - start < target) {
      const std::size_t remaining = target - (a_.size() - start);
      // Leave room for ECALL sequences near the end.
      if (ungated > 0 && rng_.next_bool(0.02)) {
        a_.ecall();
        --ungated;
        continue;
      }
      if (!gated_emitted && gate_mask >= 0 && remaining < target / 4) {
        emit_gated_ecall(gate_mask);
        gated_emitted = true;
        continue;
      }
      const double r = rng_.next_double();
      double acc = profile_.f_load;
      if (r < acc) {
        emit_load();
        continue;
      }
      acc += profile_.f_store;
      if (r < acc) {
        emit_store();
        continue;
      }
      acc += profile_.f_branch;
      if (r < acc) {
        emit_branch();
        continue;
      }
      acc += profile_.f_mul;
      if (r < acc) {
        emit_mul();
        continue;
      }
      acc += profile_.f_div;
      if (r < acc) {
        emit_div();
        continue;
      }
      acc += profile_.f_amo;
      if (r < acc) {
        emit_amo();
        continue;
      }
      emit_alu();
    }
    // Flush any ECALLs the probability gate missed.
    while (ungated-- > 0) a_.ecall();
    if (!gated_emitted && gate_mask >= 0) emit_gated_ecall(gate_mask);
  }

 private:
  u8 pick_acc() { return kAccs[rng_.next_below(4)]; }
  u8 pick_ptr() { return rng_.next_bool(0.5) ? kRoam : kPtr2; }

  /// x7 = base + (lcg & mask): pseudo-random 8-aligned working-set address.
  void emit_random_addr() {
    a_.and_(kTmp0, kLcg, kMask);
    a_.add(kTmp0, kBase, kTmp0);
  }

  /// Fraction of memory accesses that wander the whole working set (cold /
  /// pointer-chasing behaviour); the rest exhibit spatial locality around the
  /// roaming pointers. Real integer codes hit L1 for ~85-90% of accesses.
  static constexpr double kWanderFraction = 0.06;

  void emit_load() {
    // Loads feed a consuming accumulation, as real code consumes its loads
    // (a dead load would make forwarded-data faults trivially maskable).
    if (rng_.next_bool(kWanderFraction)) {
      emit_random_addr();
      a_.ld(kTmp1, kTmp0, 0);
    } else {
      // Pointer-relative access with a small immediate (spatial locality).
      const i32 off = static_cast<i32>(rng_.next_below(64)) * 8;
      a_.ld(kTmp1, pick_ptr(), off);
    }
    const u8 acc = pick_acc();
    if (rng_.next_bool(0.5)) {
      a_.add(acc, acc, kTmp1);
    } else {
      a_.xor_(acc, acc, kTmp1);
    }
  }

  void emit_store() {
    if (rng_.next_bool(kWanderFraction)) {
      emit_random_addr();
      a_.sd(pick_acc(), kTmp0, 0);
    } else {
      const i32 off = static_cast<i32>(rng_.next_below(64)) * 8;
      a_.sd(pick_acc(), pick_ptr(), off);
    }
  }

  void emit_branch() {
    const bool data_dependent = rng_.next_bool(profile_.branch_entropy);
    auto skip = a_.new_label();
    if (data_dependent) {
      a_.andi(kTmp0, kLcg, 1);       // ~50/50, BHT-hostile
      a_.bne(kTmp0, 0, skip);
    } else {
      a_.andi(kTmp0, kLoopCtr, 63);  // taken 63/64 iterations: predictable
      a_.beq(kTmp0, 0, skip);
    }
    const u32 skipped = 1 + static_cast<u32>(rng_.next_below(2));
    for (u32 i = 0; i < skipped; ++i) emit_alu();
    a_.bind(skip);
  }

  void emit_mul() {
    if (rng_.next_bool(0.5)) {
      // Advance the LCG (keeps the address/branch entropy flowing).
      a_.mul(kLcg, kLcg, kLcgMul);
      a_.addi(kLcg, kLcg, 12345 & 0x1FFF);
    } else {
      a_.mul(pick_acc(), pick_acc(), pick_acc());
    }
  }

  void emit_div() {
    a_.ori(kTmp1, kLcg, 1);  // non-zero divisor
    a_.div(pick_acc(), pick_acc(), kTmp1);
  }

  void emit_amo() {
    // Small shared region at the start of the working set.
    a_.andi(kTmp0, kLcg, 0xFF8);
    a_.add(kTmp0, kBase, kTmp0);
    a_.amoadd_d(kTmp1, kTmp0, pick_acc());
  }

  void emit_alu() {
    const u8 rd = pick_acc();
    switch (rng_.next_below(6)) {
      case 0: a_.add(rd, rd, pick_acc()); break;
      case 1: a_.xor_(rd, rd, kLcg); break;
      case 2: a_.sub(rd, rd, pick_acc()); break;
      case 3: a_.slli(rd, rd, 1); break;  // gentle shift: bits erode slowly
      case 4: a_.or_(rd, rd, pick_acc()); break;
      case 5: a_.addi(rd, rd, static_cast<i32>(rng_.next_below(256))); break;
    }
  }

  void emit_gated_ecall(i32 gate_mask) {
    auto skip = a_.new_label();
    a_.andi(kTmp0, kLoopCtr, gate_mask);
    a_.bne(kTmp0, 0, skip);
    a_.ecall();
    a_.bind(skip);
  }

  Assembler& a_;
  const WorkloadProfile& profile_;
  Rng& rng_;
};

}  // namespace

isa::Program build_workload(const WorkloadProfile& profile, const BuildOptions& options) {
  const u64 ws_bytes = static_cast<u64>(profile.working_set_kb) * 1024;
  FLEX_CHECK_MSG(std::has_single_bit(ws_bytes), "working set must be a power of two");
  const u32 iterations =
      options.iterations_override != 0 ? options.iterations_override : profile.iterations;

  FLEX_CHECK_MSG(profile.body_instructions <= 7000,
                 "body too large for 14-bit branch offsets");

  Assembler a(options.code_base);
  // FNV-1a over the name: deterministic across platforms/stdlib versions.
  u64 name_hash = 1469598103934665603ULL;
  for (char c : profile.name) name_hash = (name_hash ^ static_cast<u8>(c)) * 1099511628211ULL;
  Rng rng(options.seed ^ name_hash);

  // ---- prologue: self-contained register setup ----
  a.li(kBase, static_cast<i64>(options.data_base));
  a.li(kMask, static_cast<i64>((ws_bytes - 1) & ~u64{7}));
  a.li(kLoopCtr, iterations);
  a.li(kLcg, static_cast<i64>(0x2545F491 ^ options.seed));
  a.li(kLcgMul, 1103515245);
  a.li(kRoam, static_cast<i64>(options.data_base));
  a.li(kPtr2, static_cast<i64>(options.data_base + ws_bytes / 2));
  a.li(kAcc0, 17);
  a.li(kAcc1, 29);
  a.li(kAcc2, 43);
  a.li(kAcc3, 71);

  // ---- main loop ----
  auto loop = a.new_label();
  a.bind(loop);
  BodyEmitter(a, profile, rng).emit_body();
  // Re-point the roaming pointers once per iteration (working-set coverage
  // beyond the 4 KB immediate window).
  a.and_(kTmp0, kLcg, kMask);
  a.add(kRoam, kBase, kTmp0);
  a.xor_(kTmp0, kLcg, kLoopCtr);
  a.and_(kTmp0, kTmp0, kMask);
  a.add(kPtr2, kBase, kTmp0);
  a.addi(kLoopCtr, kLoopCtr, -1);
  a.bne(kLoopCtr, 0, loop);
  a.halt();

  return a.finalize(profile.name, options.data_base, ws_bytes);
}

u64 estimated_instructions(const WorkloadProfile& profile, const BuildOptions& options) {
  const u32 iterations =
      options.iterations_override != 0 ? options.iterations_override : profile.iterations;
  return static_cast<u64>(profile.body_instructions + 8) * iterations + 32;
}

}  // namespace flexstep::workloads
