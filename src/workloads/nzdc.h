// nZDC-style software error detection (Didehban & Shrivastava, DAC'16) as a
// program transformation — the paper's software baseline in Fig. 4.
//
// Scheme: every computational register has a shadow (x{3..15} -> x{18..30});
// computation is duplicated into the shadow stream, loads copy their result
// into the shadow, and values are cross-checked before externalisation
// (stores) and before control-flow decisions. A mismatch branches to an error
// handler. The slowdown of the transformed program is *measured* on the
// simulator, not assumed.
//
// Simplifications vs. the LLVM pass (documented in DESIGN.md): loads copy
// rather than re-load, stores check data (not address), branches check one
// operand. These lighten the instruction overhead toward the ~1.6-1.9x band
// the paper reports for nZDC on an in-order core.
#pragma once

#include "isa/assembler.h"

namespace flexstep::workloads {

/// Shadow register of r (identity for x0..x2, which generated programs do not
/// use for data).
constexpr u8 nzdc_shadow(u8 r) { return (r >= 3 && r <= 15) ? static_cast<u8>(r + 15) : r; }

/// Whether the transform supports this program's instruction set (mirrors the
/// paper's "fails to compile" workloads, which are flagged in the profile).
bool nzdc_supported(const isa::Program& program);

/// Apply the transformation. The result is position-independent-fixed: branch
/// offsets are re-targeted across the expansion.
isa::Program nzdc_transform(const isa::Program& program);

}  // namespace flexstep::workloads
