#include "workloads/profile.h"

#include "common/check.h"

namespace flexstep::workloads {

namespace {

// Characteristics distilled from the published behaviour of each benchmark
// (instruction mixes and locality from the Parsec characterisation paper and
// SPEC CPU2006 analyses), scaled to this simulator's two-level hierarchy.
std::vector<WorkloadProfile> make_parsec() {
  std::vector<WorkloadProfile> v;
  // name            load  store branch mul   div    amo  entropy wsKB ecall/k nzdc iters body
  v.push_back({"blackscholes", "parsec", 0.22, 0.06, 0.08, 0.10, 0.020, 0.000, 0.10, 32, 0.00, true, 0, 0});
  v.push_back({"bodytrack", "parsec", 0.24, 0.09, 0.15, 0.05, 0.004, 0.001, 0.35, 128, 0.30, false, 0, 0});
  v.push_back({"ferret", "parsec", 0.26, 0.08, 0.14, 0.04, 0.002, 0.002, 0.30, 256, 0.40, false, 0, 0});
  v.push_back({"dedup", "parsec", 0.24, 0.14, 0.13, 0.02, 0.001, 0.002, 0.30, 256, 0.60, true, 0, 0});
  v.push_back({"fluidanimate", "parsec", 0.30, 0.10, 0.10, 0.06, 0.008, 0.001, 0.20, 128, 0.10, true, 0, 0});
  v.push_back({"swaptions", "parsec", 0.20, 0.06, 0.10, 0.09, 0.015, 0.000, 0.15, 32, 0.02, true, 0, 0});
  v.push_back({"x264", "parsec", 0.26, 0.10, 0.16, 0.05, 0.002, 0.001, 0.40, 128, 0.25, true, 0, 0});
  v.push_back({"streamcluster", "parsec", 0.34, 0.06, 0.11, 0.05, 0.003, 0.001, 0.25, 512, 0.08, true, 0, 0});
  for (auto& p : v) {
    p.iterations = 450;
    p.body_instructions = 1200;
  }
  return v;
}

std::vector<WorkloadProfile> make_specint() {
  std::vector<WorkloadProfile> v;
  // name          load  store branch mul   div    amo entropy wsKB ecall/k nzdc iters body
  v.push_back({"bzip2", "specint", 0.26, 0.10, 0.15, 0.02, 0.001, 0.0, 0.35, 128, 0.05, true, 0, 0});
  v.push_back({"gcc", "specint", 0.25, 0.12, 0.20, 0.01, 0.001, 0.0, 0.45, 512, 0.40, false, 0, 0});
  v.push_back({"mcf", "specint", 0.34, 0.09, 0.17, 0.01, 0.000, 0.0, 0.40, 1024, 0.05, true, 0, 0});
  v.push_back({"gobmk", "specint", 0.24, 0.11, 0.21, 0.02, 0.001, 0.0, 0.50, 128, 0.10, true, 0, 0});
  v.push_back({"hmmer", "specint", 0.30, 0.10, 0.10, 0.04, 0.001, 0.0, 0.15, 64, 0.03, true, 0, 0});
  v.push_back({"sjeng", "specint", 0.22, 0.09, 0.21, 0.02, 0.001, 0.0, 0.50, 128, 0.05, true, 0, 0});
  v.push_back({"libquantum", "specint", 0.30, 0.08, 0.14, 0.03, 0.001, 0.0, 0.10, 1024, 0.02, true, 0, 0});
  v.push_back({"h264ref", "specint", 0.28, 0.12, 0.14, 0.05, 0.002, 0.0, 0.30, 128, 0.08, true, 0, 0});
  v.push_back({"omnetpp", "specint", 0.32, 0.12, 0.18, 0.01, 0.001, 0.0, 0.45, 512, 0.25, true, 0, 0});
  v.push_back({"astar", "specint", 0.30, 0.08, 0.18, 0.02, 0.001, 0.0, 0.45, 256, 0.05, true, 0, 0});
  v.push_back({"xalancbmk", "specint", 0.28, 0.11, 0.21, 0.01, 0.001, 0.0, 0.45, 512, 0.30, true, 0, 0});
  for (auto& p : v) {
    p.iterations = 450;
    p.body_instructions = 1200;
  }
  return v;
}

}  // namespace

const std::vector<WorkloadProfile>& parsec_profiles() {
  static const std::vector<WorkloadProfile> profiles = make_parsec();
  return profiles;
}

const std::vector<WorkloadProfile>& specint_profiles() {
  static const std::vector<WorkloadProfile> profiles = make_specint();
  return profiles;
}

const WorkloadProfile& find_profile(const std::string& name) {
  for (const auto& p : parsec_profiles()) {
    if (p.name == name) return p;
  }
  for (const auto& p : specint_profiles()) {
    if (p.name == name) return p;
  }
  FLEX_CHECK_MSG(false, "unknown workload profile");
  static WorkloadProfile dummy;
  return dummy;
}

}  // namespace flexstep::workloads
