#include "runtime/job_pool.h"

#include <cstdlib>
#include <exception>

#include "common/check.h"

namespace flexstep::runtime {

namespace {

// A participant's pending jobs are a packed half-open index range so that
// popping one index and stealing a span are both single CAS operations.
constexpr u64 pack_range(u64 begin, u64 end) { return (begin << 32) | end; }
constexpr u64 range_begin(u64 packed) { return packed >> 32; }
constexpr u64 range_end(u64 packed) { return packed & 0xFFFFFFFFULL; }

/// True while this thread is executing inside JobPool::run (as caller or as a
/// worker running a job): any nested run() then executes inline.
thread_local bool t_inside_pool_run = false;

/// Hard cap on worker threads: protects against garbage thread counts (e.g. a
/// negative CLI argument wrapped to u32) exhausting the host.
constexpr u32 kMaxThreads = 512;

}  // namespace

struct JobPool::Batch {
  explicit Batch(std::size_t participants) : ranges(participants) {}

  const std::function<void(std::size_t)>* fn = nullptr;
  /// ranges[p] holds participant p's pending [begin, end) — its own initial
  /// contiguous share, later whatever it last stole.
  std::vector<std::atomic<u64>> ranges;
  std::atomic<std::size_t> remaining{0};  ///< Jobs not yet completed.
  std::atomic<bool> abort{false};         ///< Set on first exception.

  std::mutex error_mu;
  std::exception_ptr error;
  std::size_t error_index = 0;

  /// Participants currently inside participate(); guarded by the pool mutex.
  /// run() may not retire (and destroy) the batch until this returns to zero,
  /// because a participant can still be scanning ranges after its last job.
  u32 attached = 1;  // the caller
};

JobPool::JobPool(u32 threads) {
  if (threads == 0) threads = default_thread_count();
  if (threads > kMaxThreads) threads = kMaxThreads;
  workers_.reserve(threads - 1);
  for (u32 t = 0; t + 1 < threads; ++t) {
    workers_.emplace_back([this, t] { worker_loop(t); });
  }
}

JobPool::~JobPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

u32 JobPool::default_thread_count() {
  if (const char* env = std::getenv("FLEX_THREADS"); env != nullptr && *env != '\0') {
    const unsigned long parsed = std::strtoul(env, nullptr, 10);
    if (parsed >= 1) return static_cast<u32>(parsed < kMaxThreads ? parsed : kMaxThreads);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<u32>(hw);
}

JobPool& JobPool::global() {
  static JobPool pool;
  return pool;
}

void JobPool::run(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  FLEX_CHECK(n <= 0xFFFFFFFFULL);

  bool serial = workers_.empty() || n == 1 || t_inside_pool_run;
  Batch batch(workers_.size() + 1);
  if (!serial) {
    std::lock_guard<std::mutex> lock(mu_);
    if (active_ != nullptr) {
      serial = true;  // another top-level run is in flight; don't queue behind it
    }
  }
  if (serial) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  batch.fn = &fn;
  batch.remaining.store(n, std::memory_order_relaxed);
  const std::size_t participants = batch.ranges.size();
  std::size_t begin = 0;
  for (std::size_t p = 0; p < participants; ++p) {
    const std::size_t len = n / participants + (p < n % participants ? 1 : 0);
    batch.ranges[p].store(pack_range(begin, begin + len), std::memory_order_relaxed);
    begin += len;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (active_ != nullptr) {
      // Raced with another publisher between the check above and here.
      for (std::size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    active_ = &batch;
    ++epoch_;
  }
  work_cv_.notify_all();

  t_inside_pool_run = true;
  participate(batch, participants - 1);  // the caller owns the last slot
  t_inside_pool_run = false;

  {
    std::unique_lock<std::mutex> lock(mu_);
    --batch.attached;
    done_cv_.wait(lock, [&] {
      return batch.remaining.load(std::memory_order_acquire) == 0 && batch.attached == 0;
    });
    active_ = nullptr;
    ++epoch_;
  }
  work_cv_.notify_all();

  if (batch.error) std::rethrow_exception(batch.error);
}

void JobPool::worker_loop(std::size_t slot) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_ || active_ != nullptr; });
    if (stop_) return;
    Batch* batch = active_;
    const u64 epoch = epoch_;
    ++batch->attached;
    lock.unlock();

    t_inside_pool_run = true;
    participate(*batch, slot);
    t_inside_pool_run = false;

    lock.lock();
    --batch->attached;
    if (batch->attached == 0) done_cv_.notify_all();
    // Park until this batch is retired so we never re-join a finished batch
    // (epoch also guards against a new batch reusing the same stack address).
    work_cv_.wait(lock, [&] { return stop_ || epoch_ != epoch; });
    if (stop_) return;
  }
}

void JobPool::participate(Batch& batch, std::size_t slot) {
  std::size_t index = 0;
  while (take_job(batch, slot, &index)) {
    if (!batch.abort.load(std::memory_order_relaxed)) {
      try {
        (*batch.fn)(index);
      } catch (...) {
        std::lock_guard<std::mutex> lock(batch.error_mu);
        if (!batch.error || index < batch.error_index) {
          batch.error = std::current_exception();
          batch.error_index = index;
        }
        batch.abort.store(true, std::memory_order_relaxed);
      }
    }
    if (batch.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(mu_);  // pair with the done_cv_ predicate
      done_cv_.notify_all();
    }
  }
}

bool JobPool::take_job(Batch& batch, std::size_t slot, std::size_t* index) {
  for (;;) {
    // Fast path: pop the front of this participant's own range.
    auto& own = batch.ranges[slot];
    u64 packed = own.load(std::memory_order_acquire);
    while (range_begin(packed) < range_end(packed)) {
      const u64 next = pack_range(range_begin(packed) + 1, range_end(packed));
      if (own.compare_exchange_weak(packed, next, std::memory_order_acq_rel)) {
        *index = static_cast<std::size_t>(range_begin(packed));
        return true;
      }
    }
    // Own range drained: steal the upper half of the largest remaining range.
    // (The lower half stays with the victim, so a long-running job at a
    // range's front never travels — only the untouched tail migrates.)
    std::size_t victim = batch.ranges.size();
    u64 victim_size = 0;
    for (std::size_t v = 0; v < batch.ranges.size(); ++v) {
      if (v == slot) continue;
      const u64 p = batch.ranges[v].load(std::memory_order_acquire);
      const u64 size = range_end(p) - range_begin(p);
      if (size > victim_size) {
        victim_size = size;
        victim = v;
      }
    }
    if (victim == batch.ranges.size()) return false;  // every range is empty
    auto& from = batch.ranges[victim];
    u64 p = from.load(std::memory_order_acquire);
    const u64 b = range_begin(p);
    const u64 e = range_end(p);
    if (b >= e) continue;  // raced empty; rescan for another victim
    const u64 mid = b + (e - b) / 2;
    if (!from.compare_exchange_strong(p, pack_range(b, mid), std::memory_order_acq_rel)) {
      continue;  // victim moved under us; rescan
    }
    own.store(pack_range(mid, e), std::memory_order_release);
  }
}

}  // namespace flexstep::runtime
