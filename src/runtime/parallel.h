// ParallelFor / ParallelAccumulate / per-job Rng streams on top of JobPool.
//
// The determinism contract shared by every driver in the repository:
//  1. Work is expressed as N indexed jobs whose outputs depend only on the
//     job index (and the caller's explicit config), never on which worker ran
//     them or in what order.
//  2. Randomness inside a job comes from stream_rng(seed, job_index) — a
//     stream derived from the job index, not from the worker id — so the
//     stream of draws a job sees is identical at any thread count.
//  3. Partial results are merged in ascending job order on the calling
//     thread, so floating-point accumulation order is fixed.
// Together these make every campaign, sweep and bench bit-identical across
// FLEX_THREADS settings (including 1).
#pragma once

#include <cstddef>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "runtime/job_pool.h"

namespace flexstep::runtime {

/// Executes fn(i) for i in [0, n) on `pool`; blocks until done.
inline void parallel_for(JobPool& pool, std::size_t n,
                         const std::function<void(std::size_t)>& fn) {
  pool.run(n, fn);
}

/// parallel_for on the process-global pool (FLEX_THREADS-sized).
inline void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  JobPool::global().run(n, fn);
}

/// Evaluates fn(i) for i in [0, n) and returns the results in index order.
/// T must be default-constructible; each slot is written exactly once.
template <typename T, typename Fn>
std::vector<T> parallel_map(JobPool& pool, std::size_t n, Fn&& fn) {
  std::vector<T> out(n);
  pool.run(n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

template <typename T, typename Fn>
std::vector<T> parallel_map(std::size_t n, Fn&& fn) {
  return parallel_map<T>(JobPool::global(), n, std::forward<Fn>(fn));
}

/// Evaluates per_job(i) for i in [0, n) in parallel, then folds the partial
/// results into `acc` with merge(acc, partial) in ascending job order on the
/// calling thread — the deterministic-accumulation half of the contract above.
template <typename Acc, typename Fn, typename Merge>
Acc parallel_accumulate(JobPool& pool, std::size_t n, Acc acc, Fn&& per_job,
                        Merge&& merge) {
  using Partial = std::decay_t<decltype(per_job(std::size_t{0}))>;
  std::vector<Partial> parts(n);
  pool.run(n, [&](std::size_t i) { parts[i] = per_job(i); });
  for (std::size_t i = 0; i < n; ++i) merge(acc, std::move(parts[i]));
  return acc;
}

template <typename Acc, typename Fn, typename Merge>
Acc parallel_accumulate(std::size_t n, Acc acc, Fn&& per_job, Merge&& merge) {
  return parallel_accumulate(JobPool::global(), n, std::move(acc),
                             std::forward<Fn>(per_job), std::forward<Merge>(merge));
}

/// Independent Rng stream for job `stream` of an experiment seeded by `seed`.
/// The golden-ratio multiply keys each stream to a distinct seed (the map is
/// bijective in stream for fixed seed), SplitMix64 expansion inside reseed()
/// decorrelates neighbouring keys, and Rng::split() advances once more so the
/// returned state is not the raw expansion of any user-visible seed.
inline Rng stream_rng(u64 seed, u64 stream) {
  Rng base(seed ^ (0x9E3779B97F4A7C15ULL * (stream + 1)));
  return base.split();
}

}  // namespace flexstep::runtime
