// Shared parallel experiment runtime: a work-stealing thread pool that every
// campaign, sweep and bench driver schedules onto.
//
// Design constraints (why this is not std::async):
//  - Determinism: results must be bit-identical regardless of thread count.
//    The pool therefore never owns any randomness or accumulation — jobs are
//    indexed, per-job Rng streams derive from the job index (see
//    runtime/parallel.h), and callers merge results in job order.
//  - Nesting: drivers compose (fig7 runs fault campaigns that are themselves
//    sharded). A run() issued from inside a pool job executes inline on the
//    calling thread, so composition can never deadlock or oversubscribe.
//  - Skew: campaign shards vary wildly in cost (sessions retry, faults mask).
//    Work is distributed as per-participant index ranges; a participant that
//    drains its range steals the upper half of the largest remaining one.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.h"

namespace flexstep::runtime {

class JobPool {
 public:
  /// Spawns `threads - 1` workers (the thread calling run() is the final
  /// participant). threads == 0 selects default_thread_count().
  explicit JobPool(u32 threads = 0);

  /// Joins all workers. Must not be called while a run() is in flight.
  ~JobPool();

  JobPool(const JobPool&) = delete;
  JobPool& operator=(const JobPool&) = delete;

  /// Participants that execute jobs: workers plus the calling thread.
  u32 thread_count() const { return static_cast<u32>(workers_.size()) + 1; }

  /// Executes fn(i) for every i in [0, n), blocking until all jobs have
  /// finished; the calling thread participates. Each index runs exactly once.
  /// If a job throws, remaining jobs are skipped (their indices are drained
  /// without invoking fn) and the first recorded exception is rethrown here.
  /// Reentrant calls from inside a job run inline on the calling thread.
  void run(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// FLEX_THREADS environment override, else hardware_concurrency (min 1).
  static u32 default_thread_count();

  /// Process-wide pool sized by default_thread_count(), created on first use.
  static JobPool& global();

 private:
  struct Batch;

  void worker_loop(std::size_t slot);
  void participate(Batch& batch, std::size_t slot);
  static bool take_job(Batch& batch, std::size_t slot, std::size_t* index);

  std::mutex mu_;
  std::condition_variable work_cv_;  ///< Workers: batch published / retired / stop.
  std::condition_variable done_cv_;  ///< run(): all jobs done, all participants out.
  Batch* active_ = nullptr;          ///< Guarded by mu_.
  u64 epoch_ = 0;                    ///< Guarded by mu_; bumps on publish and retire.
  bool stop_ = false;                ///< Guarded by mu_.
  std::vector<std::thread> workers_;
};

}  // namespace flexstep::runtime
