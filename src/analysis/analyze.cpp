#include "analysis/report.h"

#include <algorithm>
#include <cstdio>

#include "flexstep/core_unit.h"
#include "isa/opcode.h"

namespace flexstep::analysis {

using isa::Opcode;

u32 dbc_entries_per_inst(Opcode op) { return fs::CoreUnit::entries_for(op); }

namespace {

/// Per-block dataflow: exact local counts plus the forward entry-bound
/// fixpoint the burst tightening rests on.
void run_dataflow(const Cfg& cfg, ProgramReport& report) {
  const CodeView& view = cfg.view;
  report.costs.assign(cfg.blocks.size(), BlockCosts{});

  u8 global = 0;
  for (u32 i = 0; i < view.inst_count(); ++i) {
    global = std::max<u8>(global, static_cast<u8>(dbc_entries_per_inst(view.code[i].op)));
  }
  report.global_entry_bound = global;

  for (u32 b = 0; b < cfg.blocks.size(); ++b) {
    const BasicBlock& block = cfg.blocks[b];
    BlockCosts& costs = report.costs[b];
    for (u32 i = block.first; i < block.first + block.count; ++i) {
      const Opcode op = view.code[i].op;
      if (isa::is_memory(op)) ++costs.mem_ops;
      const u32 entries = dbc_entries_per_inst(op);
      costs.dbc_entries += entries;
      costs.max_entries_per_inst =
          std::max<u8>(costs.max_entries_per_inst, static_cast<u8>(entries));
      costs.static_cost += isa::opcode_latency(op);
    }
    costs.fwd_entry_bound = costs.max_entries_per_inst;
    // Indirect flow can land on any address-taken leader (or leave the image,
    // which fetch-faults into the kernel before any further user commit);
    // bound it by the whole image rather than the approximated target set so
    // the burst bound never depends on const-prop precision.
    if (block.has_indirect) costs.fwd_entry_bound = global;
  }

  // Fixpoint: join each block's bound with its successors' until stable. The
  // lattice has three points (0/1/2), so this converges in a few sweeps even
  // on pathological graphs; reverse program order makes the common
  // (forward-edge) case converge in one.
  bool changed = true;
  while (changed) {
    changed = false;
    for (u32 b = static_cast<u32>(cfg.blocks.size()); b-- > 0;) {
      const BasicBlock& block = cfg.blocks[b];
      u8 bound = report.costs[b].fwd_entry_bound;
      for (const u32 succ : {block.fall_through, block.taken}) {
        if (succ != kNoBlock) {
          bound = std::max(bound, report.costs[succ].fwd_entry_bound);
        }
      }
      if (bound != report.costs[b].fwd_entry_bound) {
        report.costs[b].fwd_entry_bound = bound;
        changed = true;
      }
    }
  }

  // Per-instruction view for the runtime: reachable instructions take their
  // block's forward bound, everything else (unreachable per the
  // over-approximation, i.e. should never execute) stays at the fully
  // conservative 2 so a missed path degrades the bound, never soundness.
  report.fwd_entry_bound.assign(view.inst_count(), 2);
  for (u32 i = 0; i < view.inst_count(); ++i) {
    const u32 b = cfg.block_of[i];
    if (b != kNoBlock && cfg.blocks[b].reachable) {
      report.fwd_entry_bound[i] = report.costs[b].fwd_entry_bound;
    }
  }

  report.total_insts = view.inst_count();
  report.reachable_insts = 0;
  for (const BasicBlock& block : cfg.blocks) {
    if (block.reachable) report.reachable_insts += block.count;
  }
}

/// Roll blocks up into single-entry regions (extended basic blocks): a block
/// with exactly one predecessor joins its predecessor's region; everything
/// else (entry, join points, back-edge targets, indirect targets) heads a new
/// one. Worst-path costs accumulate down the region tree.
void build_regions(Cfg& cfg, ProgramReport& report) {
  const u32 n = static_cast<u32>(cfg.blocks.size());
  std::vector<u32> pred_count(n, 0);
  std::vector<u32> single_pred(n, kNoBlock);
  for (u32 b = 0; b < n; ++b) {
    if (!cfg.blocks[b].reachable) continue;
    for (const u32 succ : {cfg.blocks[b].fall_through, cfg.blocks[b].taken}) {
      if (succ == kNoBlock) continue;
      ++pred_count[succ];
      single_pred[succ] = b;
    }
  }
  for (const u32 t : cfg.indirect_target_blocks) pred_count[t] += 2;

  std::vector<u32> path_insts(n, 0);
  std::vector<u32> path_mem(n, 0);
  std::vector<u64> path_entries(n, 0);
  std::vector<Cycle> path_cost(n, 0);

  for (u32 b = 0; b < n; ++b) {
    BasicBlock& block = cfg.blocks[b];
    if (!block.reachable) continue;
    const bool head = pred_count[b] != 1 || block.back_edge_target ||
                      single_pred[b] > b /* only pred is a back edge */ ||
                      cfg.blocks[single_pred[b]].region == kNoBlock;
    u32 region_id;
    if (head) {
      region_id = static_cast<u32>(report.regions.size());
      Region region;
      region.head = b;
      region.hot_candidate = block.in_loop;
      report.regions.push_back(region);
      path_insts[b] = 0;
      path_mem[b] = 0;
      path_entries[b] = 0;
      path_cost[b] = 0;
    } else {
      const u32 p = single_pred[b];
      region_id = cfg.blocks[p].region;
      path_insts[b] = path_insts[p];
      path_mem[b] = path_mem[p];
      path_entries[b] = path_entries[p];
      path_cost[b] = path_cost[p];
    }
    block.region = region_id;
    Region& region = report.regions[region_id];
    region.blocks.push_back(b);
    const BlockCosts& costs = report.costs[b];
    region.total_insts += block.count;
    path_insts[b] += block.count;
    path_mem[b] += costs.mem_ops;
    path_entries[b] += costs.dbc_entries;
    path_cost[b] += costs.static_cost;
    region.worst_path_insts = std::max(region.worst_path_insts, path_insts[b]);
    region.worst_path_mem_ops = std::max(region.worst_path_mem_ops, path_mem[b]);
    region.worst_path_dbc_entries =
        std::max(region.worst_path_dbc_entries, path_entries[b]);
    region.worst_path_static_cost =
        std::max(region.worst_path_static_cost, path_cost[b]);
  }
}

/// Statically-known hot candidates for trace seeding: every reachable
/// loop-path block leader. The trace recorder re-validates each seed (region
/// viability, min length); a seed that never dispatches costs one
/// direct-mapped slot until genuine heat reclaims it, so over-seeding is
/// self-correcting.
void collect_seeds(const Cfg& cfg, ProgramReport& report) {
  for (const BasicBlock& block : cfg.blocks) {
    if (block.reachable && block.in_loop) {
      report.trace_seeds.push_back(block.start_pc);
    }
  }
  std::sort(report.trace_seeds.begin(), report.trace_seeds.end());
}

}  // namespace

ProgramReport analyze(const CodeView& view, std::string name) {
  ProgramReport report;
  report.name = std::move(name);
  report.cfg = build_cfg(view);
  if (report.cfg.blocks.empty()) return report;
  run_dataflow(report.cfg, report);
  build_regions(report.cfg, report);
  collect_seeds(report.cfg, report);
  run_lint(report.cfg, report);
  for (const LintFinding& finding : report.findings) {
    if (finding.severity == LintSeverity::kError) {
      ++report.error_count;
    } else {
      ++report.warning_count;
    }
  }
  return report;
}

ProgramReport analyze(const isa::Program& program) {
  return analyze(view_of(program), program.name);
}

std::string ProgramReport::render() const {
  std::string out;
  char line[192];
  std::snprintf(line, sizeof(line),
                "program %s: %llu insts (%llu reachable), %zu blocks, %zu "
                "regions, %zu seeds, entry bound %u (global)\n",
                name.empty() ? "<anonymous>" : name.c_str(),
                static_cast<unsigned long long>(total_insts),
                static_cast<unsigned long long>(reachable_insts),
                cfg.blocks.size(), regions.size(), trace_seeds.size(),
                static_cast<unsigned>(global_entry_bound));
  out += line;
  // Hottest regions by rolled-up worst-path cost (top 5).
  std::vector<const Region*> hot;
  for (const Region& region : regions) {
    if (region.hot_candidate) hot.push_back(&region);
  }
  std::sort(hot.begin(), hot.end(), [](const Region* a, const Region* b) {
    return a->worst_path_static_cost > b->worst_path_static_cost;
  });
  if (hot.size() > 5) hot.resize(5);
  for (const Region* region : hot) {
    const BasicBlock& head = cfg.blocks[region->head];
    std::snprintf(line, sizeof(line),
                  "  hot region @0x%llx: %u insts (worst path %u), %u mem ops, "
                  "%llu DBC entries, %llu cycles static\n",
                  static_cast<unsigned long long>(head.start_pc),
                  region->total_insts, region->worst_path_insts,
                  region->worst_path_mem_ops,
                  static_cast<unsigned long long>(region->worst_path_dbc_entries),
                  static_cast<unsigned long long>(region->worst_path_static_cost));
    out += line;
  }
  std::snprintf(line, sizeof(line), "  lint: %u error(s), %u warning(s)\n",
                error_count, warning_count);
  out += line;
  for (const LintFinding& finding : findings) {
    std::snprintf(line, sizeof(line), "  [%s] %s @0x%llx: %s\n",
                  finding.severity == LintSeverity::kError ? "error" : "warn",
                  lint_kind_name(finding.kind),
                  static_cast<unsigned long long>(finding.pc),
                  finding.message.c_str());
    out += line;
  }
  return out;
}

}  // namespace flexstep::analysis
