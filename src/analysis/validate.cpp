#include "analysis/validate.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

#include "arch/core.h"
#include "arch/memory.h"
#include "arch/program_image.h"
#include "arch/trap.h"
#include "isa/opcode.h"

namespace flexstep::analysis {

namespace {

/// Past this many retirements the per-retire index sequence (needed for the
/// suffix-max forward-bound check) stops being recorded; the other checks are
/// streaming and keep running.
constexpr u64 kSuffixCap = 8'000'000;

/// Minimal kernel model: syscalls resume at zero cost (the validator measures
/// user-mode structure, not kernel timing), task exit halts, and anything
/// unexpected (illegal instruction, fetch fault) halts too — the caller turns
/// a non-kTaskExit halt into a validation error.
class HaltingHandler final : public arch::TrapHandler {
 public:
  arch::TrapAction on_trap(arch::Core& core, arch::TrapCause cause) override {
    (void)core;
    using arch::TrapAction;
    switch (cause) {
      case arch::TrapCause::kEcall:
        return {TrapAction::Kind::kResumeUser, 0};
      case arch::TrapCause::kTaskExit:
        clean_exit = true;
        return {TrapAction::Kind::kHalt, 0};
      default:
        faulted = true;
        return {TrapAction::Kind::kHalt, 0};
    }
  }

  bool clean_exit = false;
  bool faulted = false;
};

/// Commit observer: per-image-index visit counts plus dynamic memory-op /
/// DBC-entry tallies. Non-passive so every user-mode commit is delivered.
class CountingHooks final : public arch::CoreHooks {
 public:
  CountingHooks(Addr base, Addr end)
      : base_(base), end_(end), visits_((end - base) / 4, 0) {}

  bool memory_can_commit(arch::Core&, const isa::Instruction&) override {
    return true;
  }

  Cycle on_commit(arch::Core&, const arch::CommitInfo& info) override {
    if (!info.user_mode) return 0;
    ++retired;
    if (info.pc < base_ || info.pc >= end_ || (info.pc - base_) % 4 != 0) {
      ++out_of_image;
      return 0;
    }
    const u32 index = static_cast<u32>((info.pc - base_) / 4);
    ++visits_[index];
    if (info.mem_valid) ++mem_ops;
    dbc_entries += dbc_entries_per_inst(info.inst->op);
    if (retired <= kSuffixCap) sequence.push_back(index);
    return 0;
  }

  void on_enter_kernel(arch::Core&) override {}
  void on_exit_kernel(arch::Core&) override {}
  u64 exec_custom(arch::Core&, const isa::Instruction&) override { return 0; }

  const std::vector<u64>& visits() const { return visits_; }

  u64 retired = 0;
  u64 mem_ops = 0;
  u64 dbc_entries = 0;
  u64 out_of_image = 0;
  std::vector<u32> sequence;

 private:
  Addr base_;
  Addr end_;
  std::vector<u64> visits_;
};

void fail(ValidationResult& result, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  result.errors.emplace_back(buf);
}

}  // namespace

ValidationResult validate_report(const ProgramReport& report,
                                 const isa::Program& program,
                                 u64 max_insts) {
  ValidationResult result;
  const Cfg& cfg = report.cfg;
  const CodeView& view = cfg.view;

  arch::Memory memory;
  arch::ImageRegistry images;
  images.load(memory, program);
  arch::Core core(0, arch::CoreConfig{}, memory, images, nullptr);
  HaltingHandler handler;
  core.set_trap_handler(&handler);
  CountingHooks hooks(view.base, view.end);
  core.set_hooks(&hooks);
  core.set_pc(program.entry());
  core.run(max_insts);

  result.retired_insts = hooks.retired;
  result.retired_mem_ops = hooks.mem_ops;
  result.retired_dbc_entries = hooks.dbc_entries;
  result.halted = core.status() == arch::Core::Status::kHalted;
  if (!result.halted) {
    fail(result, "program did not halt within %llu instructions",
         static_cast<unsigned long long>(max_insts));
  }
  if (handler.faulted) {
    fail(result, "program faulted (illegal instruction or fetch fault)");
  }
  if (hooks.out_of_image != 0) {
    fail(result, "%llu commits retired outside the analysed image",
         static_cast<unsigned long long>(hooks.out_of_image));
  }

  const std::vector<u64>& visits = hooks.visits();

  // 1. Every executed instruction belongs to a statically-reachable block.
  for (u32 i = 0; i < view.inst_count(); ++i) {
    if (visits[i] == 0) continue;
    const u32 b = cfg.block_of[i];
    if (b == kNoBlock || !cfg.blocks[b].reachable) {
      fail(result, "pc 0x%llx executed %llu times but is statically unreachable",
           static_cast<unsigned long long>(view.base + Addr{i} * 4),
           static_cast<unsigned long long>(visits[i]));
      break;  // one witness is enough
    }
  }

  // 2. Straight-line visit consistency: within a block every instruction
  // retires exactly as often as the leader (the program ran to completion, so
  // no partial block executions remain in flight).
  if (result.halted && !handler.faulted) {
    for (const BasicBlock& block : cfg.blocks) {
      const u64 head_visits = visits[block.first];
      for (u32 i = block.first + 1; i < block.first + block.count; ++i) {
        if (visits[i] != head_visits) {
          fail(result,
               "block @0x%llx visit mismatch: leader %llu vs pc 0x%llx %llu",
               static_cast<unsigned long long>(block.start_pc),
               static_cast<unsigned long long>(head_visits),
               static_cast<unsigned long long>(view.base + Addr{i} * 4),
               static_cast<unsigned long long>(visits[i]));
          break;
        }
      }
    }
  }

  // 3. Static per-instruction classification, weighted by observed visits,
  // must reproduce the dynamic tallies exactly.
  u64 static_mem = 0;
  u64 static_entries = 0;
  for (u32 i = 0; i < view.inst_count(); ++i) {
    if (visits[i] == 0) continue;
    if (isa::is_memory(view.code[i].op)) static_mem += visits[i];
    static_entries += visits[i] * dbc_entries_per_inst(view.code[i].op);
  }
  if (static_mem != hooks.mem_ops) {
    fail(result, "static mem-op count %llu != dynamic %llu",
         static_cast<unsigned long long>(static_mem),
         static_cast<unsigned long long>(hooks.mem_ops));
  }
  if (static_entries != hooks.dbc_entries) {
    fail(result, "static DBC-entry count %llu != dynamic %llu",
         static_cast<unsigned long long>(static_entries),
         static_cast<unsigned long long>(hooks.dbc_entries));
  }

  // 4. Forward-bound domination: walking the retire sequence backwards with a
  // running max of per-instruction DBC production, every visited pc's static
  // forward bound must be >= the worst single instruction that executed at or
  // after it. This is the exact property the tightened burst sizing needs.
  if (hooks.retired > kSuffixCap) {
    result.suffix_check_skipped = true;
  } else if (!report.fwd_entry_bound.empty()) {
    u8 suffix_max = 0;
    for (auto it = hooks.sequence.rbegin(); it != hooks.sequence.rend(); ++it) {
      const u32 i = *it;
      suffix_max = std::max<u8>(
          suffix_max, static_cast<u8>(dbc_entries_per_inst(view.code[i].op)));
      if (report.fwd_entry_bound[i] < suffix_max) {
        fail(result,
             "fwd entry bound at pc 0x%llx is %u but a downstream instruction "
             "produced %u entries",
             static_cast<unsigned long long>(view.base + Addr{i} * 4),
             static_cast<unsigned>(report.fwd_entry_bound[i]),
             static_cast<unsigned>(suffix_max));
        break;
      }
    }
  }

  // 5. Every trace seed names a reachable block leader.
  for (const Addr seed : report.trace_seeds) {
    const u32 b = cfg.block_at(seed);
    if (b == kNoBlock || !cfg.blocks[b].reachable ||
        cfg.blocks[b].start_pc != seed) {
      fail(result, "trace seed 0x%llx is not a reachable block leader",
           static_cast<unsigned long long>(seed));
    }
  }

  return result;
}

std::string ValidationResult::summary() const {
  char line[192];
  std::snprintf(line, sizeof(line),
                "validated %llu retired insts (%llu mem ops, %llu DBC entries): "
                "%s%s",
                static_cast<unsigned long long>(retired_insts),
                static_cast<unsigned long long>(retired_mem_ops),
                static_cast<unsigned long long>(retired_dbc_entries),
                errors.empty() && halted ? "OK" : "FAILED",
                suffix_check_skipped ? " (suffix check skipped)" : "");
  std::string out = line;
  for (const std::string& error : errors) {
    out += "\n  error: " + error;
  }
  return out;
}

}  // namespace flexstep::analysis
