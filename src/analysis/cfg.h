// Whole-image control-flow graph over a pre-decoded program image.
//
// FlexStep discovers guest-program structure dynamically today: the trace
// cache probes block entries with heat counters, and the bounded engine
// sizes producer bursts with a global worst-case (2 DBC entries / inst).
// Both are strictly better-informed when the block boundaries, successor
// edges and per-block costs are known ahead of time (QEMU-style TB chaining;
// MEEK's ahead-of-time sizing of checkable windows). This header builds that
// structure once, from the same pre-decoded instruction stream the cores
// fetch from — so every derived fact is a fact about what will execute.
//
// Soundness posture (what downstream clients may assume):
//   * Block boundaries and direct successor edges are exact: leaders are the
//     image entry, every in-image direct branch/jump target, and the
//     instruction after every terminator.
//   * Indirect control (JALR, plus the kernel-flavoured kMret/kCJal/kCApply
//     if they ever appear in user code) is over-approximated: reachability
//     treats every address-taken leader and every call-return site as a
//     possible target, and the dataflow in report.h bounds indirect paths by
//     the whole-image worst case, never by the approximated target set.
//   * Execution leaving the image (fall-off-the-end, wild JALR) faults at
//     fetch before any further user-mode commit, so "outside the image" needs
//     no edges — the trap boundary is the conservative catch-all.
#pragma once

#include <vector>

#include "arch/program_image.h"
#include "common/types.h"
#include "isa/assembler.h"
#include "isa/instruction.h"

namespace flexstep::analysis {

/// A read-only window onto pre-decoded code: the analysis input. Mirrors
/// arch::LoadedImage's shape so either a loaded image or an un-loaded
/// isa::Program can be analysed (pre-run lint happens before any SoC exists).
struct CodeView {
  Addr base = 0;
  Addr end = 0;  ///< One past the last instruction byte.
  Addr entry = 0;
  const isa::Instruction* code = nullptr;

  u32 inst_count() const { return static_cast<u32>((end - base) / 4); }
  bool contains(Addr pc) const { return pc >= base && pc < end; }
  const isa::Instruction& at(Addr pc) const { return code[(pc - base) / 4]; }
  u32 index_of(Addr pc) const { return static_cast<u32>((pc - base) / 4); }
};

CodeView view_of(const isa::Program& program);
CodeView view_of(const arch::LoadedImage& image);

inline constexpr u32 kNoBlock = ~u32{0};

/// One basic block: a maximal single-entry straight-line run ending at the
/// first terminator (conditional branch, JAL, JALR, HALT, kernel-return
/// flavoured ops) or at the next leader / image end.
struct BasicBlock {
  u32 first = 0;  ///< Instruction index of the leader.
  u32 count = 0;  ///< Instructions in the block (>= 1).
  Addr start_pc = 0;
  Addr end_pc = 0;  ///< One past the last instruction byte.

  // ---- successor edges (block ids; kNoBlock when absent) ----
  u32 fall_through = kNoBlock;  ///< Next block in program order.
  u32 taken = kNoBlock;         ///< Direct branch/JAL target block.
  /// Raw branch/jump target address (valid when the terminator is a direct
  /// branch or JAL, even when it is malformed — the lint reads it).
  Addr taken_pc = 0;
  bool has_direct_target = false;
  /// Terminator transfers control indirectly (JALR / kMret / kCJal /
  /// kCApply): successors are over-approximated, costs use the image bound.
  bool has_indirect = false;
  bool ends_in_halt = false;

  // ---- derived structure ----
  bool reachable = false;
  /// Some predecessor edge arrives from a block at a higher (or equal)
  /// address — the head of a natural loop in generated / structured code.
  bool back_edge_target = false;
  /// Block lies inside the address span of some retreating edge.
  bool in_loop = false;
  u32 region = kNoBlock;  ///< Single-entry region id (report.h fills it).
};

struct Cfg {
  CodeView view;
  std::vector<BasicBlock> blocks;          ///< Sorted by start_pc.
  std::vector<u32> block_of;               ///< Instruction index -> block id.
  /// Leaders whose address is materialised by a constant chain or is a
  /// call-return site (pc+4 of a linking JAL/JALR): the indirect-target
  /// over-approximation used for reachability.
  std::vector<u32> indirect_target_blocks;
  /// The image contains at least one indirect terminator, so the
  /// indirect_target_blocks set participates in reachability.
  bool has_indirect_flow = false;

  /// Block containing `pc`, or kNoBlock when pc is outside the image.
  u32 block_at(Addr pc) const {
    return view.contains(pc) ? block_of[view.index_of(pc)] : kNoBlock;
  }
};

/// Build the CFG: leader discovery, block construction, successor edges,
/// indirect-target over-approximation, reachability and loop marking.
/// Never aborts — malformed programs (misaligned or out-of-image targets)
/// produce a CFG with the offending edges dropped; the lint reports them.
Cfg build_cfg(const CodeView& view);

/// Tiny forward constant propagator over the assembler's li-materialisation
/// subset (LUI/ADDI/ORI/XORI/SLLI/SRLI/ADD/SUB chains plus JAL/JALR link
/// values). Anything else writing a register makes it unknown. Shared by the
/// indirect-target collection (cfg.cpp) and the store-to-code lint.
struct ConstMap {
  bool known[32] = {true};  // x0 is the constant 0
  u64 value[32] = {0};

  /// Apply one instruction at `pc`. Returns true when the instruction's rd
  /// holds a statically known value afterwards.
  bool step(const isa::Instruction& ins, Addr pc);
};

}  // namespace flexstep::analysis
