// Pre-run lint over the CFG: structural defects a guest program can carry
// that either abort the simulation mid-run today (wild branch targets), can
// never work (orphaned SC), or silently cost performance (jumps that split
// fusible pairs, stores that invalidate traces). Severity:
//   * kError   — the program is malformed or contains dead-on-arrival
//     synchronisation; strict callers reject it before wasting a run.
//   * kWarning — legal but suspicious / slow; reported, never fatal.
#include <cstdio>

#include "analysis/report.h"
#include "arch/trace.h"
#include "isa/opcode.h"

namespace flexstep::analysis {

using isa::Opcode;

namespace {

void add_finding(ProgramReport& report, LintKind kind, LintSeverity severity,
                 Addr pc, Addr target, std::string message) {
  LintFinding finding;
  finding.kind = kind;
  finding.severity = severity;
  finding.pc = pc;
  finding.target = target;
  finding.message = std::move(message);
  report.findings.push_back(std::move(finding));
}

std::string hex(Addr a) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%llx", static_cast<unsigned long long>(a));
  return buf;
}

/// Direct branch/JAL targets: misaligned or out-of-image targets fetch-fault
/// (or decode garbage) the moment the branch is taken.
void lint_branch_targets(const Cfg& cfg, ProgramReport& report) {
  for (const BasicBlock& block : cfg.blocks) {
    if (!block.has_direct_target) continue;
    const Addr term_pc = block.end_pc - 4;
    const Addr target = block.taken_pc;
    if ((target % 4) != 0 || (target - cfg.view.base) % 4 != 0) {
      add_finding(report, LintKind::kBranchTargetMisaligned, LintSeverity::kError,
                  term_pc, target, "branch target " + hex(target) + " is not 4-aligned");
      continue;
    }
    if (!cfg.view.contains(target)) {
      add_finding(report, LintKind::kBranchTargetOutOfImage, LintSeverity::kError,
                  term_pc, target,
                  "branch target " + hex(target) + " lies outside the image [" +
                      hex(cfg.view.base) + ", " + hex(cfg.view.end) + ")");
    }
  }
}

void lint_unreachable(const Cfg& cfg, ProgramReport& report) {
  for (const BasicBlock& block : cfg.blocks) {
    if (block.reachable) continue;
    char msg[96];
    std::snprintf(msg, sizeof(msg), "%u-instruction block has no path from the entry",
                  block.count);
    add_finding(report, LintKind::kUnreachableBlock, LintSeverity::kWarning,
                block.start_pc, 0, msg);
  }
}

/// A jump target whose predecessor-in-program-order would fuse with it: any
/// trace recorded across that pair dispatches both halves in one
/// superinstruction, so entering at the second half always takes the
/// interpreter path — a cold entry point inside hot straight-line code.
void lint_fused_pair_entries(const Cfg& cfg, ProgramReport& report) {
  for (const BasicBlock& block : cfg.blocks) {
    if (!block.reachable || !block.has_direct_target || block.taken == kNoBlock) {
      continue;
    }
    const u32 t = cfg.view.index_of(block.taken_pc);
    if (t == 0) continue;
    // The instruction before the target must flow into it (not a terminator)
    // for the recorder to ever walk the pair.
    const isa::Instruction& prev = cfg.view.code[t - 1];
    if (isa::is_cond_branch(prev.op) || isa::is_jump(prev.op) ||
        prev.op == Opcode::kHalt) {
      continue;
    }
    if (arch::trace_pair_fusible(prev, cfg.view.code[t])) {
      add_finding(report, LintKind::kJumpIntoFusedPair, LintSeverity::kWarning,
                  block.end_pc - 4, block.taken_pc,
                  "jump enters the second half of a fusible pair at " +
                      hex(block.taken_pc) +
                      " (trace entry splits the superinstruction)");
    }
  }
}

/// Stores whose address a block-local constant chain resolves into the code
/// range: every such store invalidates all traces covering its page and (with
/// a static DBC bound installed) drops the bounded engine to its conservative
/// fallback — a trace-invalidation hot spot worth flagging.
void lint_stores_to_code(const Cfg& cfg, ProgramReport& report) {
  for (const BasicBlock& block : cfg.blocks) {
    if (!block.reachable) continue;
    ConstMap consts;  // block-local: registers are unknown at block entry
    for (u32 i = block.first; i < block.first + block.count; ++i) {
      const isa::Instruction& ins = cfg.view.code[i];
      const Addr pc = cfg.view.base + Addr{i} * 4;
      const isa::MemKind kind = isa::opcode_mem_kind(ins.op);
      if (kind == isa::MemKind::kStore || kind == isa::MemKind::kAmo ||
          kind == isa::MemKind::kStoreConditional) {
        // S-format: rs1 base + imm offset; AMO/SC (R-format): rs1 base.
        const i64 offset =
            isa::opcode_format(ins.op) == isa::Format::kS ? ins.imm : 0;
        if (consts.known[ins.rs1]) {
          const Addr addr = consts.value[ins.rs1] + static_cast<u64>(offset);
          if (cfg.view.contains(addr)) {
            add_finding(report, LintKind::kStoreToCode, LintSeverity::kWarning,
                        pc, addr,
                        "store to " + hex(addr) +
                            " hits the executable image (invalidates traces "
                            "and the static DBC bound)");
          }
        }
      }
      consts.step(ins, pc);
    }
  }
}

/// SC with no LR on any path from the entry can never succeed (the core's
/// reservation flag starts clear and only LR sets it). A forward
/// may-hold-reservation dataflow: LR generates, SC consumes, everything else
/// (including stores and AMOs, which *may* miss the reserved granule)
/// preserves — so "false" here means "provably never reserved".
void lint_orphan_sc(const Cfg& cfg, ProgramReport& report) {
  const u32 n = static_cast<u32>(cfg.blocks.size());
  std::vector<u8> in(n, 0);
  std::vector<u8> out(n, 0);
  // Indirect targets may be entered with any history: start them at "may".
  for (const u32 t : cfg.indirect_target_blocks) in[t] = 1;

  const auto transfer = [&](u32 b) -> u8 {
    u8 state = in[b];
    const BasicBlock& block = cfg.blocks[b];
    for (u32 i = block.first; i < block.first + block.count; ++i) {
      const isa::MemKind kind = isa::opcode_mem_kind(cfg.view.code[i].op);
      if (kind == isa::MemKind::kLoadReserved) state = 1;
      if (kind == isa::MemKind::kStoreConditional) state = 0;
    }
    return state;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (u32 b = 0; b < n; ++b) {
      if (!cfg.blocks[b].reachable) continue;
      const u8 next_out = transfer(b);
      if (next_out != out[b]) {
        out[b] = next_out;
        changed = true;
      }
      for (const u32 succ : {cfg.blocks[b].fall_through, cfg.blocks[b].taken}) {
        if (succ != kNoBlock && out[b] && !in[succ]) {
          in[succ] = 1;
          changed = true;
        }
      }
    }
  }

  for (u32 b = 0; b < n; ++b) {
    const BasicBlock& block = cfg.blocks[b];
    if (!block.reachable) continue;
    u8 state = in[b];
    for (u32 i = block.first; i < block.first + block.count; ++i) {
      const isa::MemKind kind = isa::opcode_mem_kind(cfg.view.code[i].op);
      if (kind == isa::MemKind::kStoreConditional) {
        if (!state) {
          add_finding(report, LintKind::kScNeverSucceeds, LintSeverity::kError,
                      cfg.view.base + Addr{i} * 4, 0,
                      "store-conditional with no load-reserved on any path "
                      "from the entry: can never succeed");
        }
        state = 0;
      } else if (kind == isa::MemKind::kLoadReserved) {
        state = 1;
      }
    }
  }
}

}  // namespace

void run_lint(const Cfg& cfg, ProgramReport& report) {
  lint_branch_targets(cfg, report);
  lint_unreachable(cfg, report);
  lint_fused_pair_entries(cfg, report);
  lint_stores_to_code(cfg, report);
  lint_orphan_sc(cfg, report);
}

}  // namespace flexstep::analysis
