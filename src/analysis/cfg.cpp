#include "analysis/cfg.h"

#include <algorithm>

#include "isa/opcode.h"

namespace flexstep::analysis {

using isa::Opcode;

CodeView view_of(const isa::Program& program) {
  CodeView view;
  view.base = program.code_base;
  view.end = program.code_end();
  view.entry = program.entry();
  view.code = program.code.data();
  return view;
}

CodeView view_of(const arch::LoadedImage& image) {
  CodeView view;
  view.base = image.base;
  view.end = image.end;
  view.entry = image.base;
  view.code = image.code.data();
  return view;
}

namespace {

/// Terminators that transfer control to a statically unknown pc. kMret /
/// kCJal / kCApply are kernel-model instructions; user code should never
/// contain them, but a hand-assembled program might — treating them as
/// indirect keeps every downstream bound conservative instead of wrong.
bool is_indirect_terminator(Opcode op) {
  return op == Opcode::kJalr || op == Opcode::kMret || op == Opcode::kCJal ||
         op == Opcode::kCApply;
}

bool is_terminator(Opcode op) {
  return isa::is_cond_branch(op) || op == Opcode::kJal || op == Opcode::kHalt ||
         is_indirect_terminator(op);
}

/// Direct control-transfer target (branches and JAL encode a byte offset
/// from their own pc). Only meaningful for those ops.
Addr direct_target(Addr pc, const isa::Instruction& inst) {
  return pc + static_cast<Addr>(static_cast<i64>(inst.imm));
}

bool has_direct_target(Opcode op) {
  return isa::is_cond_branch(op) || op == Opcode::kJal;
}

/// Collect every leader pc that could plausibly be an indirect-jump target:
/// call-return sites (pc+4 of a linking JAL/JALR) plus any in-image 4-aligned
/// value a constant-materialisation chain produces. A linear forward scan
/// with a per-register known-constant map — deliberately an
/// over-approximation (values are collected wherever a chain step lands in
/// the image, and the map survives block boundaries); the dynamic validator
/// in validate.h holds reachability to the truth.
void collect_address_taken(const CodeView& view, std::vector<Addr>& out) {
  ConstMap consts;
  const auto note = [&](u64 v) {
    if (v >= view.base && v < view.end && (v % 4) == 0) out.push_back(v);
  };
  const u32 n = view.inst_count();
  for (u32 i = 0; i < n; ++i) {
    const isa::Instruction& ins = view.code[i];
    const Addr pc = view.base + Addr{i} * 4;
    if (consts.step(ins, pc) && ins.rd != 0) note(consts.value[ins.rd]);
  }
}

}  // namespace

bool ConstMap::step(const isa::Instruction& ins, Addr pc) {
  if ((ins.op == Opcode::kJal || ins.op == Opcode::kJalr) && ins.rd != 0) {
    known[ins.rd] = true;
    value[ins.rd] = pc + 4;  // call-return site in the link register
    return true;
  }
  const u8 rd = ins.rd;
  if (rd == 0 || isa::opcode_format(ins.op) == isa::Format::kS) return false;
  bool now_known = false;
  u64 v = 0;
  switch (ins.op) {
    case Opcode::kLui:
      v = static_cast<u64>(static_cast<i64>(ins.imm) << isa::kLuiShift);
      now_known = true;
      break;
    case Opcode::kAddi:
      if (known[ins.rs1]) { v = value[ins.rs1] + static_cast<u64>(static_cast<i64>(ins.imm)); now_known = true; }
      break;
    case Opcode::kOri:
      if (known[ins.rs1]) { v = value[ins.rs1] | static_cast<u64>(static_cast<i64>(ins.imm)); now_known = true; }
      break;
    case Opcode::kXori:
      if (known[ins.rs1]) { v = value[ins.rs1] ^ static_cast<u64>(static_cast<i64>(ins.imm)); now_known = true; }
      break;
    case Opcode::kSlli:
      if (known[ins.rs1]) { v = value[ins.rs1] << (ins.imm & 63); now_known = true; }
      break;
    case Opcode::kSrli:
      if (known[ins.rs1]) { v = value[ins.rs1] >> (ins.imm & 63); now_known = true; }
      break;
    case Opcode::kAdd:
      if (known[ins.rs1] && known[ins.rs2]) { v = value[ins.rs1] + value[ins.rs2]; now_known = true; }
      break;
    case Opcode::kSub:
      if (known[ins.rs1] && known[ins.rs2]) { v = value[ins.rs1] - value[ins.rs2]; now_known = true; }
      break;
    default:
      break;
  }
  known[rd] = now_known;
  if (now_known) value[rd] = v;
  return now_known;
}

Cfg build_cfg(const CodeView& view) {
  Cfg cfg;
  cfg.view = view;
  const u32 n = view.inst_count();
  if (n == 0 || view.code == nullptr) return cfg;

  // ---- leader discovery ----
  std::vector<u8> leader(n, 0);
  leader[0] = 1;
  if (view.contains(view.entry)) leader[view.index_of(view.entry)] = 1;
  for (u32 i = 0; i < n; ++i) {
    const isa::Instruction& inst = view.code[i];
    if (!is_terminator(inst.op)) continue;
    if (i + 1 < n) leader[i + 1] = 1;
    if (has_direct_target(inst.op)) {
      const Addr pc = view.base + Addr{i} * 4;
      const Addr target = direct_target(pc, inst);
      // Malformed targets (misaligned / out of image) grow no edge and no
      // leader; the lint reports them from taken_pc below.
      if (view.contains(target) && (target - view.base) % 4 == 0) {
        leader[view.index_of(target)] = 1;
      }
    }
  }

  // ---- block construction ----
  cfg.block_of.assign(n, kNoBlock);
  for (u32 i = 0; i < n;) {
    BasicBlock block;
    block.first = i;
    block.start_pc = view.base + Addr{i} * 4;
    u32 j = i;
    while (j < n) {
      cfg.block_of[j] = static_cast<u32>(cfg.blocks.size());
      const Opcode op = view.code[j].op;
      ++j;
      if (is_terminator(op)) break;
      if (j < n && leader[j]) break;
    }
    block.count = j - i;
    block.end_pc = view.base + Addr{j} * 4;
    cfg.blocks.push_back(block);
    i = j;
  }

  // ---- successor edges ----
  for (u32 b = 0; b < cfg.blocks.size(); ++b) {
    BasicBlock& block = cfg.blocks[b];
    const u32 last = block.first + block.count - 1;
    const isa::Instruction& term = view.code[last];
    const Addr term_pc = view.base + Addr{last} * 4;
    if (term.op == Opcode::kHalt) {
      block.ends_in_halt = true;
      continue;
    }
    if (is_indirect_terminator(term.op)) {
      block.has_indirect = true;
      cfg.has_indirect_flow = true;
      continue;  // no fall-through: the terminator always redirects
    }
    if (has_direct_target(term.op)) {
      block.has_direct_target = true;
      block.taken_pc = direct_target(term_pc, term);
      if (view.contains(block.taken_pc) && (block.taken_pc - view.base) % 4 == 0) {
        block.taken = cfg.block_of[view.index_of(block.taken_pc)];
      }
      if (term.op == Opcode::kJal) continue;  // unconditional: no fall-through
    }
    // Conditional branch not-taken, or a block cut at the next leader /
    // image end. Falling off the image end fetch-faults before any further
    // user commit, so "no successor" is the right model there.
    if (block.first + block.count < n) {
      block.fall_through = cfg.block_of[block.first + block.count];
    }
  }

  // ---- indirect-target over-approximation ----
  if (cfg.has_indirect_flow) {
    std::vector<Addr> taken_addrs;
    collect_address_taken(view, taken_addrs);
    std::sort(taken_addrs.begin(), taken_addrs.end());
    taken_addrs.erase(std::unique(taken_addrs.begin(), taken_addrs.end()),
                      taken_addrs.end());
    for (Addr a : taken_addrs) {
      const u32 b = cfg.block_at(a);
      // Only block leaders can be entered; a mid-block address-taken value is
      // almost always data, but a jump there would split the block at run
      // time — record the containing block so reachability stays sound.
      if (b != kNoBlock) cfg.indirect_target_blocks.push_back(b);
    }
    std::sort(cfg.indirect_target_blocks.begin(), cfg.indirect_target_blocks.end());
    cfg.indirect_target_blocks.erase(
        std::unique(cfg.indirect_target_blocks.begin(),
                    cfg.indirect_target_blocks.end()),
        cfg.indirect_target_blocks.end());
  }

  // ---- reachability (DFS from the entry block) ----
  std::vector<u32> stack;
  bool indirect_expanded = false;
  const u32 entry_block = cfg.block_at(view.entry);
  if (entry_block != kNoBlock) stack.push_back(entry_block);
  while (!stack.empty()) {
    const u32 b = stack.back();
    stack.pop_back();
    BasicBlock& block = cfg.blocks[b];
    if (block.reachable) continue;
    block.reachable = true;
    if (block.fall_through != kNoBlock) stack.push_back(block.fall_through);
    if (block.taken != kNoBlock) stack.push_back(block.taken);
    if (block.has_indirect && !indirect_expanded) {
      // One expansion suffices: the target set is global, not per-jump.
      indirect_expanded = true;
      for (u32 t : cfg.indirect_target_blocks) stack.push_back(t);
    }
  }

  // ---- back edges & loop spans ----
  for (u32 b = 0; b < cfg.blocks.size(); ++b) {
    const BasicBlock& block = cfg.blocks[b];
    if (!block.reachable) continue;
    for (const u32 succ : {block.fall_through, block.taken}) {
      if (succ == kNoBlock || succ > b) continue;
      cfg.blocks[succ].back_edge_target = true;
      // Mark the retreating edge's address span as loop body. Generated /
      // structured code is reducible, so the span [head, latch] is the
      // natural loop; for irreducible hand-written code this is merely a
      // heuristic hotness hint (it feeds trace seeding, never soundness).
      for (u32 k = succ; k <= b; ++k) cfg.blocks[k].in_loop = true;
    }
  }

  return cfg;
}

}  // namespace flexstep::analysis
