// Dynamic validation of a ProgramReport: replay the analysed image on a bare
// core (no FlexStep units, no trace cache effects on outcomes) and hold every
// static claim to the retired-instruction truth:
//   * every executed pc lies in a statically-reachable block;
//   * per-block straight-line visit consistency (a block's instructions all
//     retire the same number of times);
//   * the exact static memory-op / DBC-entry counts, weighted by observed
//     block visits, equal the dynamically retired counts;
//   * the per-pc forward entry bound dominates the worst single-instruction
//     DBC production actually observed anywhere downstream of that pc;
//   * every trace seed is a reachable block leader.
// This is the CI gate behind "every analysis result is provably consistent
// with dynamic behaviour" — tests and the bench --analyze mode both run it.
#pragma once

#include <string>
#include <vector>

#include "analysis/report.h"

namespace flexstep::analysis {

struct ValidationResult {
  std::vector<std::string> errors;

  // Dynamic ground truth, for reporting.
  u64 retired_insts = 0;
  u64 retired_mem_ops = 0;
  u64 retired_dbc_entries = 0;
  bool halted = false;
  /// The retire sequence outgrew the suffix-bound cap, so the forward-bound
  /// domination check was skipped (all other checks still ran).
  bool suffix_check_skipped = false;

  bool ok() const { return errors.empty() && halted; }
  std::string summary() const;
};

/// Run `program` to completion (up to `max_insts` retirements) on a bare core
/// and check `report` against what actually executed. The program must be the
/// one the report was built from.
ValidationResult validate_report(const ProgramReport& report,
                                 const isa::Program& program,
                                 u64 max_insts = 20'000'000);

}  // namespace flexstep::analysis
