// analysis::ProgramReport — the product of the static pass, consumed by
// three clients:
//   * trace seeding (arch::Core::seed_traces): statically-known hot-candidate
//     region heads are recorded into the trace cache up front instead of
//     waiting for heat-counter thresholds;
//   * burst sizing (fs::CoreUnit::set_static_dbc_bound): the bounded engine
//     divides DBC headroom by the per-pc worst-case entry production over the
//     forward closure instead of the global 2-entries-per-instruction;
//   * the pre-run lint (sim::Scenario::analyze() / micro_benchmarks
//     --analyze): malformed guest programs are flagged before they run.
//
// Every number here is a worst-case or exact static property of the
// pre-decoded image — validate.h replays the image dynamically and holds the
// block structure and counts to the retired-instruction truth.
#pragma once

#include <string>
#include <vector>

#include "analysis/cfg.h"
#include "common/types.h"

namespace flexstep::analysis {

/// Single-entry superblock region: a tree of blocks entered only through its
/// head (extended basic block). Rolled-up costs are worst-case over the
/// head-to-leaf paths of the tree.
struct Region {
  u32 head = kNoBlock;          ///< Block id of the unique entry.
  std::vector<u32> blocks;      ///< Member block ids (head first).
  u32 total_insts = 0;          ///< Sum over members.
  u32 worst_path_insts = 0;     ///< Max head-to-leaf instruction count.
  u32 worst_path_mem_ops = 0;   ///< Max head-to-leaf memory-op count.
  u64 worst_path_dbc_entries = 0;  ///< Max head-to-leaf DBC entry production.
  Cycle worst_path_static_cost = 0;
  bool hot_candidate = false;   ///< Head sits on a loop path (seed the trace).
};

enum class LintSeverity : u8 { kWarning, kError };

enum class LintKind : u8 {
  kUnreachableBlock,        ///< warning: no path from the entry reaches it
  kBranchTargetMisaligned,  ///< error: direct target not 4-aligned
  kBranchTargetOutOfImage,  ///< error: direct target outside the image
  kJumpIntoFusedPair,       ///< warning: target splits a fusible pair
  kStoreToCode,             ///< warning: statically-known store into the image
  kScNeverSucceeds,         ///< error: SC with no LR on any path from entry
};

constexpr const char* lint_kind_name(LintKind k) {
  switch (k) {
    case LintKind::kUnreachableBlock: return "unreachable-block";
    case LintKind::kBranchTargetMisaligned: return "branch-target-misaligned";
    case LintKind::kBranchTargetOutOfImage: return "branch-target-out-of-image";
    case LintKind::kJumpIntoFusedPair: return "jump-into-fused-pair";
    case LintKind::kStoreToCode: return "store-to-code";
    case LintKind::kScNeverSucceeds: return "sc-never-succeeds";
  }
  return "?";
}

struct LintFinding {
  LintKind kind = LintKind::kUnreachableBlock;
  LintSeverity severity = LintSeverity::kWarning;
  Addr pc = 0;      ///< Offending instruction.
  Addr target = 0;  ///< Branch target / store address when applicable.
  std::string message;
};

/// Per-block dataflow results, indexed like Cfg::blocks.
struct BlockCosts {
  u32 mem_ops = 0;          ///< Exact memory-instruction count in the block.
  u64 dbc_entries = 0;      ///< Worst-case DBC entries the block produces.
  Cycle static_cost = 0;    ///< Sum of static result latencies (lower bound).
  u8 max_entries_per_inst = 0;
  /// Fixpoint: max DBC entries any single instruction can produce on any
  /// path starting in this block (block-local max joined over successors;
  /// indirect terminators join the whole-image bound). This is what makes
  /// tightened producer bursts sound: a burst starting anywhere in the block
  /// can never out-produce headroom / fwd_entry_bound instructions.
  u8 fwd_entry_bound = 0;
};

struct ProgramReport {
  std::string name;
  Cfg cfg;
  std::vector<BlockCosts> costs;    ///< Parallel to cfg.blocks.
  std::vector<Region> regions;
  std::vector<LintFinding> findings;
  /// Region-head pcs worth seeding into the trace cache (deterministic,
  /// ascending). Host-speed only: seeds never change simulated outcomes.
  std::vector<Addr> trace_seeds;
  /// Per-instruction worst-case DBC entries over the forward closure
  /// (index = (pc - base) / 4). Unreachable instructions hold the
  /// conservative 2 — if the over-approximation ever misses a real path the
  /// bound degrades to today's global divisor instead of turning unsound.
  std::vector<u8> fwd_entry_bound;
  /// Max DBC entries of any single instruction anywhere in the image —
  /// the kernel-resume / indirect-flow bound.
  u8 global_entry_bound = 0;

  u64 total_insts = 0;
  u64 reachable_insts = 0;
  u32 error_count = 0;
  u32 warning_count = 0;

  bool has_errors() const { return error_count > 0; }
  /// Human-readable multi-line summary (lint table + region roll-up).
  std::string render() const;
};

/// Worst-case DBC stream entries one retired instruction of `op` produces
/// (delegates to the runtime's own fs::CoreUnit::entries_for so the static
/// and dynamic answers can never drift apart).
u32 dbc_entries_per_inst(isa::Opcode op);

/// Run the full pass: CFG, dataflow, regions, seeds, lint.
ProgramReport analyze(const CodeView& view, std::string name = {});
ProgramReport analyze(const isa::Program& program);

/// Lint only (analyze() calls this; exposed for targeted tests).
void run_lint(const Cfg& cfg, ProgramReport& report);

}  // namespace flexstep::analysis
