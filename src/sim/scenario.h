// One experiment facade for the whole repository.
//
// Every driver used to hand-assemble the same stack — Soc + VerifiedRunConfig
// + workloads::build_workload + VerifiedExecution::prepare. sim::Scenario is
// the single construction path: a fluent description of the experiment
// (workload + build seed, main/checker topology, engine, OS-tick model,
// instruction caps) that produces a sim::Session owning the Soc / program /
// VerifiedExecution triple, prepared and ready to run.
//
// Sessions are also the unit of state capture: Session::snapshot() captures
// the full SoC + driver state (soc::Snapshot), Session::restore() rewinds
// this session to it bit-exactly, and Session::fork() clones an independent
// warmed session from it — the primitive the snapshot-fork fault campaigns
// are built on (fault/campaign.cpp).
//
//   auto session = sim::Scenario()
//                      .workload("swaptions").iterations(400)
//                      .dual()
//                      .build();
//   session.advance(100'000);
//   const soc::Snapshot warm = session.snapshot();
//   sim::Session probe = session.fork(warm);   // independent clone
//
// Determinism contract: a Scenario describes a closed system. Two sessions
// built from equal Scenarios evolve bit-identically; a forked (or restored)
// session evolves bit-identically to the session that took the snapshot.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/report.h"
#include "common/types.h"
#include "soc/snapshot.h"
#include "soc/soc.h"
#include "soc/verified_run.h"
#include "workloads/profile.h"
#include "workloads/program_builder.h"

namespace flexstep::sim {

class Session;

class Scenario {
 public:
  Scenario() = default;

  // ---- workload (what the main core runs) ----

  /// Workload by profile name (looked up across the Parsec/SPECint suites).
  Scenario& workload(const std::string& profile_name);
  Scenario& workload(const workloads::WorkloadProfile& profile);
  /// Use this exact program instead of generating one (nZDC transforms,
  /// hand-assembled tests). Overrides the workload/seed/iterations knobs.
  Scenario& program(isa::Program program);
  /// Workload generator seed (default 1).
  Scenario& seed(u64 seed);
  /// Override the profile's loop iterations (0 = profile default).
  Scenario& iterations(u32 iterations);
  /// Size iterations for ~`us` of simulated single-core time instead.
  Scenario& duration_us(double us);
  Scenario& code_base(Addr base);
  Scenario& data_base(Addr base);

  // ---- platform ----

  /// Core count (default: auto — highest core named by the topology + 1).
  Scenario& cores(u32 count);
  /// Full SocConfig override (later cores() calls edit it).
  Scenario& soc(const soc::SocConfig& config);
  /// FlexStep knob overrides, applied on top of the resolved SocConfig at
  /// build time — composable with soc()/cores()/topology in any order.
  Scenario& segment_limit(u32 limit);
  Scenario& channel_capacity(u64 entries);
  /// Superinstruction trace cache on/off (default: on, unless FLEX_TRACE=0).
  /// A pure host-speed knob: results are bit-identical either way.
  Scenario& trace(bool enabled);
  /// Static guest-program analysis on/off (default: on, unless
  /// FLEX_ANALYZE=0). When on, the built session pre-seeds every core's trace
  /// cache from statically hot region heads and installs the per-pc DBC
  /// production bound that tightens bounded-engine bursts. Host-speed only:
  /// simulated outcomes are bit-identical either way.
  Scenario& analysis(bool enabled);

  // ---- verification topology ----

  Scenario& main_core(CoreId id);
  Scenario& checkers(std::vector<CoreId> ids);
  /// Convenience topologies relative to main_core: no checker, one, two.
  Scenario& plain();
  Scenario& dual();
  Scenario& triple();

  /// Role-based many-core topology: N producers x M checkers (see
  /// soc::RoleBinding). Overrides main_core()/checkers(). Multi-producer
  /// topologies get one program per producer: either via programs(), or
  /// auto-generated from the workload profile at per-role disjoint code/data
  /// bases.
  Scenario& topology(std::vector<soc::RoleBinding> roles);
  /// `count` producer/checker pairs: role i = {core 2i, checker 2i+1}.
  Scenario& pairs(u32 count);
  /// `producers` cores 0..producers-1 all streaming to one shared checker
  /// (core `producers`) — the contended waitlist-arbitration regime.
  Scenario& shared_checker(u32 producers);
  /// Explicit per-producer programs for a multi-role topology (programs[i]
  /// runs on roles[i].producer). Must occupy disjoint code/data regions.
  Scenario& programs(std::vector<isa::Program> programs);

  // ---- co-simulation driver ----

  /// Engine selection. When never called, the FLEX_ENGINE environment
  /// variable ("stepwise" / "quantum" / "bounded") picks the engine, default
  /// kQuantum — so whole experiment binaries can be A/B'd without rebuilds.
  Scenario& engine(soc::Engine engine);
  /// kQuantumBounded burst cap in instructions (0 = auto: one DBC segment /
  /// channel-capacity worth of work). See VerifiedRunConfig::skew_instructions.
  Scenario& skew(u64 instructions);
  Scenario& os_ticks(bool on);
  Scenario& tick(Cycle period, Cycle cost);
  Scenario& ecall_cost(Cycle cycles);
  Scenario& max_instructions(u64 cap);
  /// Treat a co-simulation deadlock as a latched stalled() outcome instead of
  /// a fatal FLEX_CHECK (fault campaigns: DUE classification). Default off.
  Scenario& tolerate_stall(bool on);

  // ---- products ----

  /// The resolved SoC configuration (after cores()/topology auto-sizing).
  soc::SocConfig soc_config() const;
  /// The resolved co-simulation driver configuration.
  soc::VerifiedRunConfig run_config() const;
  /// Just the workload program (kernel-driver experiments compose it with
  /// their own scheduler instead of a VerifiedExecution). Single-role
  /// scenarios only.
  isa::Program build_program() const;
  /// One program per producer role (a single-role scenario yields one entry).
  /// Multi-role scenarios without explicit programs() generate the workload
  /// once per producer at disjoint per-role code/data bases.
  std::vector<isa::Program> build_role_programs() const;
  /// Static analysis of the program this scenario would run (CFG + dataflow
  /// + lint) — the pre-run lint entry point; runs regardless of analysis().
  analysis::ProgramReport analyze() const;
  /// Just the SoC.
  std::unique_ptr<soc::Soc> build_soc() const;
  /// The full prepared session.
  Session build() const;

 private:
  friend class Session;

  std::optional<workloads::WorkloadProfile> profile_;
  std::optional<isa::Program> program_;
  std::optional<std::vector<isa::Program>> programs_;  ///< Per-role override.
  workloads::BuildOptions build_;
  std::optional<double> duration_us_;

  std::optional<soc::SocConfig> soc_;
  std::optional<u32> cores_;
  std::optional<u32> segment_limit_;
  std::optional<u64> channel_capacity_;
  std::optional<bool> trace_;
  std::optional<bool> analysis_;
  bool engine_set_ = false;  ///< engine() called; otherwise FLEX_ENGINE rules.
  soc::VerifiedRunConfig run_;
};

/// A prepared co-simulation owning its Soc / program / VerifiedExecution.
class Session {
 public:
  Session(Session&&) noexcept = default;
  Session& operator=(Session&&) noexcept = default;
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  soc::Soc& soc() { return *soc_; }
  /// First producer's program (the only one in single-role scenarios).
  const isa::Program& program() const { return programs_.front(); }
  /// One program per producer role.
  const std::vector<isa::Program>& programs() const { return programs_; }
  soc::VerifiedExecution& exec() { return *exec_; }
  const Scenario& scenario() const { return scenario_; }

  // ---- execution (forwarders) ----

  bool advance(u64 instruction_budget) { return exec_->advance(instruction_budget); }
  soc::RunStats run() { return exec_->run(); }
  soc::RunStats stats() const { return exec_->stats(); }
  bool finished() const { return exec_->finished(); }
  u64 total_instret() const { return exec_->total_instret(); }
  /// Deadlocked under tolerate_stall (DUE signature). See
  /// VerifiedExecution::stalled().
  bool stalled() const { return exec_->stalled(); }
  /// Relaxed-engine burst accounting (relaxed_bursts / strict_fallbacks /
  /// max_skew_cycles ...; all-zero under other engines). Contention
  /// regressions show up here before they show up in MIPS.
  const soc::CosimStats& cosim_stats() const { return exec_->cosim_stats(); }
  /// Waitlist arbitration decisions taken by the fabric so far.
  u64 arbitration_handoffs() const {
    return soc_->fabric().handoff_events().size();
  }

  // ---- campaign conveniences ----

  /// First DBC channel (nullptr while no verification job is associated).
  fs::Channel* channel();
  fs::ErrorReporter& reporter() { return soc_->fabric().reporter(); }

  // ---- state capture ----

  soc::Snapshot snapshot() const { return exec_->save(); }
  /// Rewind this session to a snapshot it (or a sibling fork) took. Restoring
  /// flushes the (derived) trace caches, so the analysis seeds and the static
  /// burst bound are re-applied afterwards — restored runs keep the same
  /// host-speed profile as the original.
  void restore(const soc::Snapshot& snapshot);

  /// Persist the current state as a versioned, CRC-guarded snapshot archive
  /// (soc::save_snapshot: temp file + atomic rename, never a torn file).
  io::ArchiveError save_file(const std::string& path) const;
  /// Load a snapshot archive and restore() this session to it. Beyond the
  /// archive-level checks (magic / version / per-section CRC), the decoded
  /// snapshot's geometry — core count, cache way counts, predictor table
  /// sizes, fabric unit count — is validated against this session's platform
  /// before restore() runs, so a snapshot from a different SocConfig yields a
  /// structured error instead of a FLEX_CHECK abort. On any error the session
  /// is left untouched.
  io::ArchiveError load_file(const std::string& path);

  /// The static analysis backing this session (nullptr when analysis is off).
  const analysis::ProgramReport* analysis() const { return analysis_.get(); }
  /// Clone an independent session at the snapshot's state: fresh Soc, same
  /// program (loaded, not re-generated), same driver config. The clone and
  /// this session share no mutable state and evolve independently.
  Session fork(const soc::Snapshot& snapshot) const;
  /// snapshot() + fork() in one step.
  Session fork() const { return fork(snapshot()); }

 private:
  friend class Scenario;
  Session(const Scenario& scenario, bool prepare);
  /// Fork path: reuse already-built programs instead of re-running the
  /// workload generator (forks happen once per campaign injection).
  Session(const Scenario& scenario, std::vector<isa::Program> programs,
          bool prepare);
  /// Seed every core's trace cache and (re-)install the static DBC bound.
  /// Called after prepare and after every restore (restores flush traces).
  void apply_analysis();

  Scenario scenario_;  ///< Copy: forks rebuild the platform from it.
  std::vector<isa::Program> programs_;  ///< One per producer role.
  std::unique_ptr<soc::Soc> soc_;
  std::unique_ptr<soc::VerifiedExecution> exec_;
  /// Shared with forks — immutable once built.
  std::shared_ptr<const analysis::ProgramReport> analysis_;
  std::shared_ptr<const fs::StaticDbcBound> bound_;
};

}  // namespace flexstep::sim
