#include "sim/scenario.h"

#include <algorithm>
#include <cstdlib>

#include "common/check.h"

namespace flexstep::sim {

namespace {

/// FLEX_ANALYZE=0 disables the static-analysis clients (trace seeding + burst
/// tightening) for sessions that don't call Scenario::analysis() explicitly.
/// Read once, same rule as FLEX_TRACE / FLEX_ENGINE.
bool default_analysis_enabled() {
  static const bool enabled = [] {
    const char* env = std::getenv("FLEX_ANALYZE");
    return env == nullptr || env[0] != '0';
  }();
  return enabled;
}

}  // namespace

// ---------------------------------------------------------------------------
// Scenario
// ---------------------------------------------------------------------------

Scenario& Scenario::workload(const std::string& profile_name) {
  profile_ = workloads::find_profile(profile_name);
  return *this;
}

Scenario& Scenario::workload(const workloads::WorkloadProfile& profile) {
  profile_ = profile;
  return *this;
}

Scenario& Scenario::program(isa::Program program) {
  program_ = std::move(program);
  return *this;
}

Scenario& Scenario::seed(u64 seed) {
  build_.seed = seed;
  return *this;
}

Scenario& Scenario::iterations(u32 iterations) {
  build_.iterations_override = iterations;
  duration_us_.reset();
  return *this;
}

Scenario& Scenario::duration_us(double us) {
  duration_us_ = us;
  return *this;
}

Scenario& Scenario::code_base(Addr base) {
  build_.code_base = base;
  return *this;
}

Scenario& Scenario::data_base(Addr base) {
  build_.data_base = base;
  return *this;
}

Scenario& Scenario::cores(u32 count) {
  cores_ = count;
  if (soc_.has_value()) soc_->num_cores = count;
  return *this;
}

Scenario& Scenario::soc(const soc::SocConfig& config) {
  soc_ = config;
  return *this;
}

Scenario& Scenario::segment_limit(u32 limit) {
  segment_limit_ = limit;
  return *this;
}

Scenario& Scenario::channel_capacity(u64 entries) {
  channel_capacity_ = entries;
  return *this;
}

Scenario& Scenario::trace(bool enabled) {
  trace_ = enabled;
  return *this;
}

Scenario& Scenario::analysis(bool enabled) {
  analysis_ = enabled;
  return *this;
}

Scenario& Scenario::main_core(CoreId id) {
  run_.main_core = id;
  return *this;
}

Scenario& Scenario::checkers(std::vector<CoreId> ids) {
  run_.checkers = std::move(ids);
  return *this;
}

Scenario& Scenario::plain() { return checkers({}); }

Scenario& Scenario::dual() {
  return checkers({static_cast<CoreId>(run_.main_core + 1)});
}

Scenario& Scenario::triple() {
  return checkers({static_cast<CoreId>(run_.main_core + 1),
                   static_cast<CoreId>(run_.main_core + 2)});
}

Scenario& Scenario::topology(std::vector<soc::RoleBinding> roles) {
  run_.roles = std::move(roles);
  return *this;
}

Scenario& Scenario::pairs(u32 count) {
  std::vector<soc::RoleBinding> roles;
  roles.reserve(count);
  for (u32 i = 0; i < count; ++i) {
    roles.push_back({static_cast<CoreId>(2 * i),
                     {static_cast<CoreId>(2 * i + 1)}});
  }
  return topology(std::move(roles));
}

Scenario& Scenario::shared_checker(u32 producers) {
  std::vector<soc::RoleBinding> roles;
  roles.reserve(producers);
  const CoreId checker = static_cast<CoreId>(producers);
  for (u32 i = 0; i < producers; ++i) {
    roles.push_back({static_cast<CoreId>(i), {checker}});
  }
  return topology(std::move(roles));
}

Scenario& Scenario::programs(std::vector<isa::Program> programs) {
  programs_ = std::move(programs);
  return *this;
}

Scenario& Scenario::engine(soc::Engine engine) {
  run_.engine = engine;
  engine_set_ = true;
  return *this;
}

Scenario& Scenario::skew(u64 instructions) {
  run_.skew_instructions = instructions;
  return *this;
}

Scenario& Scenario::os_ticks(bool on) {
  run_.os_ticks = on;
  return *this;
}

Scenario& Scenario::tick(Cycle period, Cycle cost) {
  run_.os_ticks = true;
  run_.tick_period = period;
  run_.tick_cost = cost;
  return *this;
}

Scenario& Scenario::ecall_cost(Cycle cycles) {
  run_.ecall_cost = cycles;
  return *this;
}

Scenario& Scenario::max_instructions(u64 cap) {
  run_.max_instructions = cap;
  return *this;
}

Scenario& Scenario::tolerate_stall(bool on) {
  run_.tolerate_stall = on;
  return *this;
}

soc::SocConfig Scenario::soc_config() const {
  soc::SocConfig config;
  if (soc_.has_value()) {
    config = *soc_;
  } else {
    u32 cores = cores_.value_or(0);
    if (cores == 0) {
      // Auto-size: the highest core the topology names, plus one.
      CoreId highest = run_.main_core;
      for (CoreId id : run_.checkers) highest = std::max(highest, id);
      for (const soc::RoleBinding& role : run_.roles) {
        highest = std::max(highest, role.producer);
        for (CoreId id : role.checkers) highest = std::max(highest, id);
      }
      cores = static_cast<u32>(highest) + 1;
    }
    config = soc::SocConfig::paper_default(cores);
  }
  // FlexStep knob overrides apply at resolution time, so knob and topology
  // calls compose in any order.
  if (segment_limit_.has_value()) config.flexstep.segment_limit = *segment_limit_;
  if (channel_capacity_.has_value()) {
    config.flexstep.channel_capacity = *channel_capacity_;
  }
  if (trace_.has_value()) config.core.trace.enabled = *trace_;
  return config;
}

soc::VerifiedRunConfig Scenario::run_config() const {
  soc::VerifiedRunConfig config = run_;
  if (!engine_set_) config.engine = soc::default_engine();
  return config;
}

isa::Program Scenario::build_program() const {
  if (program_.has_value()) return *program_;
  FLEX_CHECK_MSG(profile_.has_value(),
                 "Scenario needs a workload() profile or an explicit program()");
  workloads::BuildOptions build = build_;
  if (duration_us_.has_value()) {
    // ~2.3 cycles/instruction on the paper core; size the loop count so one
    // plain execution spans roughly the requested simulated time.
    build.iterations_override = std::max<u32>(
        1, static_cast<u32>(*duration_us_ * kCyclesPerUs / 2.3 /
                            profile_->body_instructions));
  }
  return workloads::build_workload(*profile_, build);
}

std::vector<isa::Program> Scenario::build_role_programs() const {
  const std::size_t role_count = std::max<std::size_t>(1, run_.roles.size());
  if (programs_.has_value()) {
    FLEX_CHECK_MSG(programs_->size() == role_count,
                   "programs() must provide exactly one program per role");
    return *programs_;
  }
  if (role_count == 1) return {build_program()};
  FLEX_CHECK_MSG(!program_.has_value(),
                 "one explicit program() cannot serve several producers — the "
                 "data base is baked into the code; use programs()");
  FLEX_CHECK_MSG(profile_.has_value(),
                 "Scenario needs a workload() profile or explicit programs()");
  // Each producer gets its own workload instance at disjoint code/data
  // regions. The stride is 1 MiB + 64 KiB: larger than any generated image or
  // default working set, and deliberately not a multiple of the L2 set span,
  // so per-role lines spread across sets instead of piling onto one.
  constexpr Addr kRoleStride = 0x0011'0000;
  // Lift the data region clear of the strided code regions (64 producers of
  // code stride end well below 128 MiB).
  const Addr data_floor = std::max<Addr>(build_.data_base, 0x0800'0000);
  std::vector<isa::Program> programs;
  programs.reserve(role_count);
  for (std::size_t r = 0; r < role_count; ++r) {
    workloads::BuildOptions build = build_;
    if (duration_us_.has_value()) {
      build.iterations_override = std::max<u32>(
          1, static_cast<u32>(*duration_us_ * kCyclesPerUs / 2.3 /
                              profile_->body_instructions));
    }
    build.code_base = build_.code_base + static_cast<Addr>(r) * kRoleStride;
    build.data_base = data_floor + static_cast<Addr>(r) * kRoleStride;
    programs.push_back(workloads::build_workload(*profile_, build));
  }
  return programs;
}

analysis::ProgramReport Scenario::analyze() const {
  return analysis::analyze(build_program());
}

std::unique_ptr<soc::Soc> Scenario::build_soc() const {
  return std::make_unique<soc::Soc>(soc_config());
}

Session Scenario::build() const { return Session(*this, /*prepare=*/true); }

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

Session::Session(const Scenario& scenario, bool prepare)
    : Session(scenario, scenario.build_role_programs(), prepare) {}

Session::Session(const Scenario& scenario, std::vector<isa::Program> programs,
                 bool prepare)
    : scenario_(scenario), programs_(std::move(programs)) {
  const soc::SocConfig soc_config = scenario_.soc_config();
  const soc::VerifiedRunConfig run_config = scenario_.run_config();
  FLEX_CHECK_MSG(run_config.main_core < soc_config.num_cores,
                 "scenario main core outside the SoC");
  for (const soc::RoleBinding& role : run_config.roles) {
    FLEX_CHECK_MSG(role.producer < soc_config.num_cores,
                   "scenario role producer outside the SoC");
    for (CoreId id : role.checkers) {
      FLEX_CHECK_MSG(id < soc_config.num_cores,
                     "scenario role checker outside the SoC");
    }
  }
  soc_ = std::make_unique<soc::Soc>(soc_config);
  exec_ = std::make_unique<soc::VerifiedExecution>(*soc_, run_config);
  if (prepare) {
    // Static analysis backs single-program sessions; a multi-producer session
    // skips it (conservative: dynamic trace recording and the global DBC
    // divisor still apply — per-role reports are a follow-on).
    if (programs_.size() == 1 &&
        scenario_.analysis_.value_or(default_analysis_enabled())) {
      auto report = std::make_shared<analysis::ProgramReport>(
          analysis::analyze(programs_.front()));
      auto bound = std::make_shared<fs::StaticDbcBound>();
      bound->base = programs_.front().code_base;
      bound->end = programs_.front().code_end();
      bound->per_inst = report->fwd_entry_bound;
      bound->global = report->global_entry_bound;
      analysis_ = std::move(report);
      bound_ = std::move(bound);
    }
    exec_->prepare(programs_);
    apply_analysis();
  } else {
    // Fork path: register the program images now; the caller restores the
    // snapshot (which contains the prepared state) on top and re-applies the
    // parent's analysis.
    for (const isa::Program& program : programs_) soc_->load_program(program);
  }
}

void Session::apply_analysis() {
  if (analysis_ == nullptr) return;
  for (u32 i = 0; i < soc_->num_cores(); ++i) {
    // Every core replays user code (checkers included), so all trace caches
    // get the statically hot entries; the burst bound only binds on whichever
    // unit is producing, and installing it everywhere is harmless.
    soc_->core(i).seed_traces(analysis_->trace_seeds);
    soc_->unit(i).set_static_dbc_bound(soc_->memory(), bound_);
  }
}

void Session::restore(const soc::Snapshot& snapshot) {
  exec_->restore(snapshot);
  // restore() flushed every trace cache (traces are derived state) and
  // rewound memory to the analysed image, so re-seed and re-arm the bound.
  apply_analysis();
}

io::ArchiveError Session::save_file(const std::string& path) const {
  return soc::save_snapshot(snapshot(), path);
}

io::ArchiveError Session::load_file(const std::string& path) {
  soc::Snapshot loaded;
  if (io::ArchiveError err = soc::load_snapshot(path, loaded); !err.ok()) {
    return err;
  }
  // Geometry gate: restore() FLEX_CHECK-aborts on platform mismatches, but a
  // file is untrusted input — turn shape skew into a structured error first.
  const soc::Snapshot ref = snapshot();
  const auto mismatch = [](const std::string& what) {
    return io::ArchiveError{io::ArchiveStatus::kMalformed,
                            "snapshot does not fit this session's platform: " + what};
  };
  if (loaded.cores.size() != ref.cores.size()) return mismatch("core count");
  if (loaded.l2.ways.size() != ref.l2.ways.size()) return mismatch("L2 geometry");
  for (std::size_t i = 0; i < loaded.cores.size(); ++i) {
    const auto& a = loaded.cores[i];
    const auto& b = ref.cores[i];
    if (a.caches.l1i.ways.size() != b.caches.l1i.ways.size() ||
        a.caches.l1d.ways.size() != b.caches.l1d.ways.size()) {
      return mismatch("L1 geometry of core " + std::to_string(i));
    }
    if (a.bpred.bht.size() != b.bpred.bht.size() ||
        a.bpred.btb.size() != b.bpred.btb.size() ||
        a.bpred.ras.size() != b.bpred.ras.size()) {
      return mismatch("predictor tables of core " + std::to_string(i));
    }
  }
  if (loaded.fabric.units.size() != ref.fabric.units.size()) {
    return mismatch("fabric unit count");
  }
  restore(loaded);
  return {};
}

fs::Channel* Session::channel() {
  auto channels = soc_->fabric().channels();
  return channels.empty() ? nullptr : channels.front();
}

Session Session::fork(const soc::Snapshot& snapshot) const {
  Session child(scenario_, programs_, /*prepare=*/false);
  child.analysis_ = analysis_;  // immutable, shared across the fork tree
  child.bound_ = bound_;
  child.exec_->restore(snapshot);
  child.apply_analysis();
  return child;
}

}  // namespace flexstep::sim
