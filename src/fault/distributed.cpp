#include "fault/distributed.h"

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <functional>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "common/archive.h"
#include "common/check.h"
#include "common/log.h"
#include "sim/scenario.h"
#include "soc/snapshot.h"

namespace flexstep::fault {

namespace {

// ---------------------------------------------------------------------------
// Wire formats: shard-result files and persisted baselines
// ---------------------------------------------------------------------------

/// Shard-result archive: app tag "FSHD", one meta section (campaign kind,
/// shard index, elided-warmup counter) + one payload section (the shard's
/// CampaignStats / VulnReport wire form).
constexpr u32 kShardTag = 0x44485346;  // "FSHD" little-endian.
constexpr u32 kShardVersion = 1;
constexpr u32 kShardMetaSection = 1;
constexpr u32 kShardPayloadSection = 2;

/// Persisted-baseline archive: app tag "FBAS", one meta section (the
/// BaselineStore tag fingerprint) followed by the soc::Snapshot sections.
constexpr u32 kBaselineTag = 0x53414246;  // "FBAS" little-endian.
constexpr u32 kBaselineVersion = 1;
constexpr u32 kBaselineMetaSection = 100;  ///< Distinct from SnapshotSection ids.

constexpr u8 kKindCampaign = 0;
constexpr u8 kKindVuln = 1;

std::string shard_path(const DistributedConfig& dist, u32 shard) {
  return dist.dir + "/" + dist.run_label + "_shard_" + std::to_string(shard) +
         ".fxar";
}

template <typename Result>
struct ShardFile {
  Result result;
  u64 elided = 0;  ///< Warmup instructions restored, not executed, that run.
};

/// Decode a shard-result file; nullopt on ANY defect (missing, truncated,
/// corrupt, wrong kind/index) — an invalid file simply means "not done",
/// which is exactly the resume semantic. Atomic-rename writes guarantee a
/// file that exists is either whole or from a different (stale) run.
template <typename Result>
std::optional<ShardFile<Result>> read_shard_file(const std::string& path,
                                                 u8 kind, u32 shard) {
  std::vector<u8> data;
  if (!io::read_file(path, data).ok()) return std::nullopt;
  io::ArchiveReader ar(data.data(), data.size(), kShardTag, kShardVersion);
  if (!ar.begin_section(kShardMetaSection)) return std::nullopt;
  const u8 stored_kind = ar.take_u8();
  const u32 stored_shard = ar.take_u32();
  ShardFile<Result> out;
  out.elided = ar.take_varint();
  ar.end_section();
  if (!ar.ok() || stored_kind != kind || stored_shard != shard) {
    return std::nullopt;
  }
  if (!ar.begin_section(kShardPayloadSection)) return std::nullopt;
  out.result.deserialize(ar);
  ar.end_section();
  if (!ar.ok()) return std::nullopt;
  return out;
}

template <typename Result>
bool write_shard_file(const std::string& path, u8 kind, u32 shard, u64 elided,
                      const Result& result) {
  io::ArchiveWriter ar(kShardTag, kShardVersion);
  ar.begin_section(kShardMetaSection);
  ar.put_u8(kind);
  ar.put_u32(shard);
  ar.put_varint(elided);
  ar.end_section();
  ar.begin_section(kShardPayloadSection);
  result.serialize(ar);
  ar.end_section();
  const io::ArchiveError err = ar.write_file(path);
  if (!err.ok()) {
    FLEX_LOG_ERROR("distributed campaign: cannot write %s: %s", path.c_str(),
                  err.message().c_str());
  }
  return err.ok();
}

// ---------------------------------------------------------------------------
// FileBaselineStore
// ---------------------------------------------------------------------------

/// BaselineStore over one directory of "FBAS" archives, keyed by
/// (shard, ordinal) in the file name and the fingerprint tag in the file.
/// Load failures of every kind fall back to re-warming; save failures only
/// cost the next run its warm start. Never fatal — baselines are a cache.
class FileBaselineStore final : public BaselineStore {
 public:
  explicit FileBaselineStore(std::string dir) : dir_(std::move(dir)) {
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
  }

  u64 elided_instructions() const { return elided_; }

  bool try_load(u32 shard, u32 ordinal, u64 tag, sim::Session& session) override {
    std::vector<u8> data;
    if (!io::read_file(path(shard, ordinal), data).ok()) return false;
    io::ArchiveReader ar(data.data(), data.size(), kBaselineTag,
                         kBaselineVersion);
    if (!ar.begin_section(kBaselineMetaSection)) return false;
    const u64 stored_tag = ar.take_u64();
    ar.end_section();
    if (!ar.ok() || stored_tag != tag) return false;
    soc::Snapshot snapshot;
    snapshot.deserialize(ar);
    if (!ar.ok()) return false;
    // The tag fingerprints the platform, so a tag-matching snapshot fits this
    // session's geometry; restore() FLEX_CHECKs the remaining invariants.
    session.restore(snapshot);
    elided_ += session.total_instret();
    return true;
  }

  void save(u32 shard, u32 ordinal, u64 tag,
            const sim::Session& session) override {
    io::ArchiveWriter ar(kBaselineTag, kBaselineVersion);
    ar.begin_section(kBaselineMetaSection);
    ar.put_u64(tag);
    ar.end_section();
    session.snapshot().serialize(ar);
    const io::ArchiveError err = ar.write_file(path(shard, ordinal));
    if (!err.ok()) {
      FLEX_LOG_ERROR("baseline store: cannot write %s: %s",
                    path(shard, ordinal).c_str(), err.message().c_str());
    }
  }

 private:
  std::string path(u32 shard, u32 ordinal) const {
    return dir_ + "/baseline_s" + std::to_string(shard) + "_o" +
           std::to_string(ordinal) + ".fxar";
  }

  std::string dir_;
  u64 elided_ = 0;
};

// ---------------------------------------------------------------------------
// Worker body
// ---------------------------------------------------------------------------

/// Kill hook: FLEX_CAMPAIGN_DIE_SHARD=<index> makes the worker that runs that
/// shard finish the work and _exit(42) BEFORE the result file is written —
/// the kill-and-resume tests' "died between compute and rename" window.
bool die_requested(u32 shard) {
  const char* env = std::getenv("FLEX_CAMPAIGN_DIE_SHARD");
  if (env == nullptr || *env == '\0') return false;
  return std::strtoul(env, nullptr, 10) == shard;
}

/// Run one shard with a baseline store and persist its result. Shared by the
/// fork-mode child and the exec-mode worker so the two dispatch modes are
/// behaviourally identical (including the die hook).
template <typename Result>
void run_and_store_shard(
    u8 kind, u32 shard, const DistributedConfig& dist,
    const std::function<Result(u32, BaselineStore*)>& run_shard) {
  FileBaselineStore store(dist.dir + "/baselines");
  const Result result = run_shard(shard, &store);
  if (die_requested(shard)) _exit(42);
  write_shard_file(shard_path(dist, shard), kind, shard,
                   store.elided_instructions(), result);
}

// ---------------------------------------------------------------------------
// Parent driver
// ---------------------------------------------------------------------------

void write_journal(const DistributedConfig& dist, u8 kind,
                   const std::vector<bool>& complete) {
  std::string text = "# resumable campaign journal: kind=";
  text += (kind == kKindCampaign ? "campaign" : "vuln");
  text += " run=" + dist.run_label + "\n";
  for (std::size_t s = 0; s < complete.size(); ++s) {
    text += "shard " + std::to_string(s) +
            (complete[s] ? " complete\n" : " missing\n");
  }
  io::write_file_atomic(dist.dir + "/" + dist.run_label + "_journal.txt",
                        text.data(), text.size());
}

/// The generic driver: scan → partition pending shards over workers → fork
/// (or fork+exec) → wait → rescan → merge in shard order → journal.
/// `spawn_exec` writes a worker's spec file and returns its path (exec mode
/// only). Returns the outcome; `merged` receives completed shards merged in
/// ascending shard-index order (the in-process fold order).
template <typename Result>
DistributedOutcome drive(
    u8 kind, u32 shards, const DistributedConfig& dist,
    const std::function<Result(u32, BaselineStore*)>& run_shard,
    const std::function<std::string(u32 worker, const std::vector<u32>&)>&
        spawn_exec,
    Result& merged) {
  FLEX_CHECK_MSG(dist.workers >= 1,
                 "distributed campaign: workers must be >= 1");
  FLEX_CHECK_MSG(!dist.dir.empty(), "distributed campaign: dir must be set");
  std::error_code ec;
  std::filesystem::create_directories(dist.dir, ec);

  DistributedOutcome out;
  out.shards_total = shards;

  // Resume scan: a shard whose result file decodes cleanly is done — its
  // worker survived the atomic rename. Everything else re-runs.
  std::vector<std::optional<ShardFile<Result>>> have(shards);
  std::vector<u32> pending;
  for (u32 s = 0; s < shards; ++s) {
    have[s] = read_shard_file<Result>(shard_path(dist, s), kind, s);
    if (!have[s].has_value()) pending.push_back(s);
  }
  out.shards_resumed = shards - static_cast<u32>(pending.size());

  // Round-robin the pending shards over the workers; shard->worker placement
  // is irrelevant to outcomes (shards are (seed, index)-seeded), so the
  // simplest deterministic partition wins.
  std::vector<std::vector<u32>> plan(dist.workers);
  for (std::size_t i = 0; i < pending.size(); ++i) {
    plan[i % dist.workers].push_back(pending[i]);
  }

  std::fflush(stdout);
  std::fflush(stderr);
  std::vector<pid_t> children;
  for (u32 w = 0; w < dist.workers; ++w) {
    if (plan[w].empty()) continue;
    const pid_t pid = fork();
    FLEX_CHECK_MSG(pid >= 0, "distributed campaign: fork() failed");
    if (pid == 0) {
      if (spawn_exec != nullptr) {
        const std::string spec = spawn_exec(w, plan[w]);
        execl(dist.exe.c_str(), dist.exe.c_str(), "--campaign-worker",
              spec.c_str(), static_cast<char*>(nullptr));
        std::fprintf(stderr, "campaign worker: exec %s failed\n",
                     dist.exe.c_str());
        _exit(127);
      }
      for (u32 s : plan[w]) run_and_store_shard(kind, s, dist, run_shard);
      _exit(0);
    }
    children.push_back(pid);
  }
  for (pid_t pid : children) {
    int status = 0;
    waitpid(pid, &status, 0);
    // A dead worker is not fatal to the driver: its shards simply stay
    // missing and the next invocation resumes them.
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      FLEX_LOG_ERROR("distributed campaign: worker %d exited abnormally "
                    "(status %d) — run again to resume its shards",
                    static_cast<int>(pid), status);
    }
  }

  // Rescan what the workers produced, then merge every completed shard in
  // ascending index order — the exact fold order of the in-process driver.
  std::vector<bool> complete(shards, false);
  for (u32 s = 0; s < shards; ++s) {
    if (!have[s].has_value()) {
      have[s] = read_shard_file<Result>(shard_path(dist, s), kind, s);
    }
    complete[s] = have[s].has_value();
  }
  for (u32 s = 0; s < shards; ++s) {
    if (!have[s].has_value()) continue;
    ++out.shards_completed;
    out.warmup_instructions_elided += have[s]->elided;
    merged.merge(std::move(have[s]->result));
  }
  write_journal(dist, kind, complete);
  return out;
}

// ---------------------------------------------------------------------------
// Exec-mode spec files
// ---------------------------------------------------------------------------

std::string csv(const std::vector<u32>& values) {
  std::string out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ',';
    out += std::to_string(values[i]);
  }
  return out;
}

std::vector<u32> parse_csv(const std::string& text) {
  std::vector<u32> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) {
      out.push_back(static_cast<u32>(std::strtoul(item.c_str(), nullptr, 10)));
    }
  }
  return out;
}

/// Common spec fields of both campaign kinds. Exec-mode specs carry the
/// workload by profile name and the platform as a core count, so exec mode
/// supports exactly the SocConfig::paper_default platforms.
void spec_common(std::string& spec, const workloads::WorkloadProfile& profile,
                 const soc::SocConfig& soc_config,
                 const DistributedConfig& dist, u32 worker,
                 const std::vector<u32>& assigned) {
  spec += "profile=" + profile.name + "\n";
  spec += "cores=" + std::to_string(soc_config.num_cores) + "\n";
  spec += "dir=" + dist.dir + "\n";
  spec += "run_label=" + dist.run_label + "\n";
  spec += "assigned=" + csv(assigned) + "\n";
  (void)worker;
}

std::string write_spec_file(const DistributedConfig& dist, u32 worker,
                            const std::string& spec) {
  const std::string path = dist.dir + "/" + dist.run_label + "_worker_" +
                           std::to_string(worker) + ".spec";
  const io::ArchiveError err =
      io::write_file_atomic(path, spec.data(), spec.size());
  FLEX_CHECK_MSG(err.ok(), "distributed campaign: cannot write worker spec");
  return path;
}

std::map<std::string, std::string> parse_spec(const std::string& text) {
  std::map<std::string, std::string> out;
  std::stringstream ss(text);
  std::string line;
  while (std::getline(ss, line)) {
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) continue;
    out[line.substr(0, eq)] = line.substr(eq + 1);
  }
  return out;
}

u64 spec_u64(const std::map<std::string, std::string>& kv,
             const std::string& key, u64 fallback) {
  const auto it = kv.find(key);
  if (it == kv.end() || it->second.empty()) return fallback;
  return std::strtoull(it->second.c_str(), nullptr, 10);
}

std::string spec_str(const std::map<std::string, std::string>& kv,
                     const std::string& key) {
  const auto it = kv.find(key);
  return it == kv.end() ? std::string() : it->second;
}

}  // namespace

// ---------------------------------------------------------------------------
// Public drivers
// ---------------------------------------------------------------------------

DistributedCampaignResult run_distributed_campaign(
    const workloads::WorkloadProfile& profile, const soc::SocConfig& soc_config,
    const CampaignConfig& campaign, const DistributedConfig& dist) {
  const std::vector<u32> quota =
      detail::shard_quotas(campaign.target_faults, campaign.shards);

  const std::function<CampaignStats(u32, BaselineStore*)> run_shard =
      [&](u32 s, BaselineStore* store) {
        return detail::run_campaign_shard(profile, soc_config, campaign, s,
                                          quota[s], store);
      };
  std::function<std::string(u32, const std::vector<u32>&)> spawn_exec;
  if (dist.use_exec) {
    spawn_exec = [&](u32 worker, const std::vector<u32>& assigned) {
      std::string spec = "kind=campaign\n";
      spec_common(spec, profile, soc_config, dist, worker, assigned);
      spec += "target_faults=" + std::to_string(campaign.target_faults) + "\n";
      spec += "warmup_rounds=" + std::to_string(campaign.warmup_rounds) + "\n";
      spec += "gap_rounds=" + std::to_string(campaign.gap_rounds) + "\n";
      spec += "seed=" + std::to_string(campaign.seed) + "\n";
      spec += "workload_iterations=" +
              std::to_string(campaign.workload_iterations) + "\n";
      spec += "shards=" + std::to_string(campaign.shards) + "\n";
      spec += std::string("mode=") +
              (campaign.mode == CampaignMode::kSnapshotFork ? "fork" : "reexec") +
              "\n";
      if (campaign.engine.has_value()) {
        spec += "engine=" +
                std::to_string(static_cast<int>(*campaign.engine)) + "\n";
      }
      return write_spec_file(dist, worker, spec);
    };
  }

  DistributedCampaignResult result;
  result.run = drive<CampaignStats>(kKindCampaign,
                                    static_cast<u32>(quota.size()), dist,
                                    run_shard, spawn_exec, result.stats);
  return result;
}

DistributedVulnResult run_distributed_vuln_campaign(
    const workloads::WorkloadProfile& profile, const soc::SocConfig& soc_config,
    const VulnConfig& config, const DistributedConfig& dist) {
  const std::vector<u32> quota =
      detail::shard_quotas(config.target_faults, config.shards);
  const std::vector<Component> comps = detail::resolve_components(config);
  std::vector<u32> start(quota.size());
  u32 assigned_faults = 0;
  for (std::size_t s = 0; s < quota.size(); ++s) {
    start[s] = assigned_faults;
    assigned_faults += quota[s];
  }

  const std::function<VulnReport(u32, BaselineStore*)> run_shard =
      [&](u32 s, BaselineStore* store) {
        return detail::run_vuln_shard(profile, soc_config, config, comps, s,
                                      quota[s], start[s], store);
      };
  std::function<std::string(u32, const std::vector<u32>&)> spawn_exec;
  if (dist.use_exec) {
    spawn_exec = [&](u32 worker, const std::vector<u32>& assigned) {
      std::string spec = "kind=vuln\n";
      spec_common(spec, profile, soc_config, dist, worker, assigned);
      spec += "target_faults=" + std::to_string(config.target_faults) + "\n";
      spec += "warmup_rounds=" + std::to_string(config.warmup_rounds) + "\n";
      spec += "gap_rounds=" + std::to_string(config.gap_rounds) + "\n";
      spec += "horizon=" + std::to_string(config.horizon) + "\n";
      spec += "seed=" + std::to_string(config.seed) + "\n";
      spec += "workload_iterations=" +
              std::to_string(config.workload_iterations) + "\n";
      spec += "shards=" + std::to_string(config.shards) + "\n";
      spec += std::string("mode=") +
              (config.mode == CampaignMode::kSnapshotFork ? "fork" : "reexec") +
              "\n";
      spec += std::string("root_cause=") + (config.root_cause ? "1" : "0") + "\n";
      if (config.engine.has_value()) {
        spec += "engine=" + std::to_string(static_cast<int>(*config.engine)) +
                "\n";
      }
      if (!config.components.empty()) {
        std::vector<u32> comp_ids;
        for (Component c : config.components) {
          comp_ids.push_back(static_cast<u32>(c));
        }
        spec += "components=" + csv(comp_ids) + "\n";
      }
      return write_spec_file(dist, worker, spec);
    };
  }

  DistributedVulnResult result;
  result.run = drive<VulnReport>(kKindVuln, static_cast<u32>(quota.size()),
                                 dist, run_shard, spawn_exec, result.report);
  return result;
}

int campaign_worker_main(const std::string& spec_path) {
  std::vector<u8> raw;
  if (!io::read_file(spec_path, raw).ok()) {
    std::fprintf(stderr, "campaign worker: cannot read spec %s\n",
                 spec_path.c_str());
    return 2;
  }
  const auto kv = parse_spec(
      std::string(reinterpret_cast<const char*>(raw.data()), raw.size()));

  const std::string kind = spec_str(kv, "kind");
  const std::string profile_name = spec_str(kv, "profile");
  if ((kind != "campaign" && kind != "vuln") || profile_name.empty()) {
    std::fprintf(stderr, "campaign worker: malformed spec %s\n",
                 spec_path.c_str());
    return 2;
  }
  const workloads::WorkloadProfile& profile =
      workloads::find_profile(profile_name);
  const soc::SocConfig soc_config = soc::SocConfig::paper_default(
      static_cast<u32>(spec_u64(kv, "cores", 2)));

  DistributedConfig dist;
  dist.dir = spec_str(kv, "dir");
  dist.run_label = spec_str(kv, "run_label");
  const std::vector<u32> assigned = parse_csv(spec_str(kv, "assigned"));

  if (kind == "campaign") {
    CampaignConfig campaign;
    campaign.target_faults = static_cast<u32>(spec_u64(kv, "target_faults", 0));
    campaign.warmup_rounds = spec_u64(kv, "warmup_rounds", 0);
    campaign.gap_rounds = spec_u64(kv, "gap_rounds", 0);
    campaign.seed = spec_u64(kv, "seed", 0);
    campaign.workload_iterations =
        static_cast<u32>(spec_u64(kv, "workload_iterations", 0));
    campaign.shards = static_cast<u32>(spec_u64(kv, "shards", 1));
    campaign.mode = spec_str(kv, "mode") == "reexec"
                        ? CampaignMode::kWarmupReexecution
                        : CampaignMode::kSnapshotFork;
    if (kv.count("engine") != 0) {
      campaign.engine =
          static_cast<soc::Engine>(spec_u64(kv, "engine", 0));
    }
    const std::vector<u32> quota =
        detail::shard_quotas(campaign.target_faults, campaign.shards);
    const std::function<CampaignStats(u32, BaselineStore*)> run_shard =
        [&](u32 s, BaselineStore* store) {
          return detail::run_campaign_shard(profile, soc_config, campaign, s,
                                            quota[s], store);
        };
    for (u32 s : assigned) {
      if (s >= quota.size()) return 2;
      run_and_store_shard(kKindCampaign, s, dist, run_shard);
    }
    return 0;
  }

  VulnConfig config;
  config.target_faults = static_cast<u32>(spec_u64(kv, "target_faults", 0));
  config.warmup_rounds = spec_u64(kv, "warmup_rounds", 0);
  config.gap_rounds = spec_u64(kv, "gap_rounds", 0);
  config.horizon = spec_u64(kv, "horizon", 0);
  config.seed = spec_u64(kv, "seed", 0);
  config.workload_iterations =
      static_cast<u32>(spec_u64(kv, "workload_iterations", 0));
  config.shards = static_cast<u32>(spec_u64(kv, "shards", 1));
  config.mode = spec_str(kv, "mode") == "reexec"
                    ? CampaignMode::kWarmupReexecution
                    : CampaignMode::kSnapshotFork;
  config.root_cause = spec_u64(kv, "root_cause", 0) != 0;
  if (kv.count("engine") != 0) {
    config.engine = static_cast<soc::Engine>(spec_u64(kv, "engine", 0));
  }
  for (u32 c : parse_csv(spec_str(kv, "components"))) {
    if (c >= kComponentCount) return 2;
    config.components.push_back(static_cast<Component>(c));
  }
  const std::vector<u32> quota =
      detail::shard_quotas(config.target_faults, config.shards);
  const std::vector<Component> comps = detail::resolve_components(config);
  std::vector<u32> start(quota.size());
  u32 assigned_faults = 0;
  for (std::size_t s = 0; s < quota.size(); ++s) {
    start[s] = assigned_faults;
    assigned_faults += quota[s];
  }
  const std::function<VulnReport(u32, BaselineStore*)> run_shard =
      [&](u32 s, BaselineStore* store) {
        return detail::run_vuln_shard(profile, soc_config, config, comps, s,
                                      quota[s], start[s], store);
      };
  for (u32 s : assigned) {
    if (s >= quota.size()) return 2;
    run_and_store_shard(kKindVuln, s, dist, run_shard);
  }
  return 0;
}

}  // namespace flexstep::fault
