#include "fault/vuln.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "arch/core.h"
#include "arch/memory.h"
#include "common/archive.h"
#include "common/check.h"
#include "common/rng.h"
#include "flexstep/channel.h"
#include "runtime/parallel.h"
#include "sim/scenario.h"
#include "soc/snapshot.h"

namespace flexstep::fault {

// ---------------------------------------------------------------------------
// VulnReport
// ---------------------------------------------------------------------------

void VulnReport::add(const InjectionRecord& record) {
  records.push_back(record);
  ++injected;
  ComponentVuln& comp = components[static_cast<std::size_t>(record.site.component)];
  ++comp.injected;
  switch (record.outcome) {
    case OutcomeKind::kMasked:
      ++masked;
      ++comp.masked;
      break;
    case OutcomeKind::kDetected:
      ++detected;
      ++comp.detected;
      comp.latencies_us.push_back(record.latency_us);
      break;
    case OutcomeKind::kSdc:
      ++sdc;
      ++comp.sdc;
      break;
    case OutcomeKind::kDue:
      ++due;
      ++comp.due;
      break;
  }
}

void VulnReport::merge(VulnReport&& shard) {
  for (std::size_t c = 0; c < kComponentCount; ++c) {
    ComponentVuln& into = components[c];
    ComponentVuln& from = shard.components[c];
    into.injected += from.injected;
    into.masked += from.masked;
    into.detected += from.detected;
    into.sdc += from.sdc;
    into.due += from.due;
    into.latencies_us.insert(into.latencies_us.end(), from.latencies_us.begin(),
                             from.latencies_us.end());
  }
  records.insert(records.end(), shard.records.begin(), shard.records.end());
  injected += shard.injected;
  masked += shard.masked;
  detected += shard.detected;
  sdc += shard.sdc;
  due += shard.due;
  total_instructions += shard.total_instructions;
  check_invariant();
}

void VulnReport::check_invariant() const {
  FLEX_CHECK_MSG(masked + detected + sdc + due == injected,
                 "vuln campaign classification invariant violated: "
                 "masked + detected + sdc + due != injected");
  u32 component_sum = 0;
  for (const ComponentVuln& comp : components) {
    FLEX_CHECK_MSG(comp.masked + comp.detected + comp.sdc + comp.due ==
                       comp.injected,
                   "vuln campaign per-component classification invariant "
                   "violated");
    component_sum += comp.injected;
  }
  FLEX_CHECK_MSG(component_sum == injected,
                 "vuln campaign component totals do not sum to injected");
}

Histogram VulnReport::latency_histogram(double lo_us, double hi_us,
                                        std::size_t bins) const {
  Histogram hist(lo_us, hi_us, bins);
  for (const InjectionRecord& record : records) {
    if (record.outcome == OutcomeKind::kDetected) hist.add(record.latency_us);
  }
  return hist;
}

u64 VulnReport::digest() const {
  u64 h = 14695981039346656037ULL;
  const auto mix = [&h](u64 v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xFF;
      h *= 1099511628211ULL;
    }
  };
  for (const InjectionRecord& r : records) {
    mix(static_cast<u64>(r.site.component));
    mix(r.site.index);
    mix(r.site.bit);
    mix(r.site.cycle);
    mix(static_cast<u64>(r.outcome));
    mix(static_cast<u64>(r.detect_kind));
    u64 latency_bits = 0;
    std::memcpy(&latency_bits, &r.latency_us, sizeof(latency_bits));
    mix(latency_bits);
    mix(r.rc_valid ? 1 : 0);
    mix(r.rc_instret);
    mix(r.rc_victim_pc);
    mix(r.rc_golden_pc);
  }
  return h;
}

void VulnReport::serialize(io::ArchiveWriter& ar) const {
  ar.put_varint(records.size());
  for (const InjectionRecord& r : records) {
    ar.put_u8(static_cast<u8>(r.site.component));
    ar.put_varint(r.site.index);
    ar.put_varint(r.site.bit);
    ar.put_varint(r.site.cycle);
    ar.put_u8(static_cast<u8>(r.outcome));
    ar.put_u8(static_cast<u8>(r.detect_kind));
    ar.put_f64(r.latency_us);
    ar.put_bool(r.rc_valid);
    ar.put_varint(r.rc_instret);
    ar.put_u64(r.rc_victim_pc);
    ar.put_u64(r.rc_golden_pc);
  }
  ar.put_varint(total_instructions);
}

void VulnReport::deserialize(io::ArchiveReader& ar) {
  *this = VulnReport{};
  const u64 count = ar.take_count(16);
  for (u64 i = 0; ar.ok() && i < count; ++i) {
    InjectionRecord r;
    const u8 component = ar.take_u8();
    r.site.index = ar.take_varint();
    r.site.bit = ar.take_varint();
    r.site.cycle = ar.take_varint();
    const u8 outcome = ar.take_u8();
    const u8 detect = ar.take_u8();
    if (ar.ok() && (component >= kComponentCount ||
                    outcome > static_cast<u8>(OutcomeKind::kDue) ||
                    detect > static_cast<u8>(fs::DetectKind::kStructural))) {
      ar.fail(io::ArchiveStatus::kMalformed, "injection record out of domain");
    }
    r.site.component = static_cast<Component>(component);
    r.outcome = static_cast<OutcomeKind>(outcome);
    r.detect_kind = static_cast<fs::DetectKind>(detect);
    r.latency_us = ar.take_f64();
    r.rc_valid = ar.take_bool();
    r.rc_instret = ar.take_varint();
    r.rc_victim_pc = ar.take_u64();
    r.rc_golden_pc = ar.take_u64();
    if (ar.ok()) add(r);
  }
  total_instructions = ar.take_varint();
}

std::string VulnReport::render() const {
  std::string out;
  char line[192];
  std::snprintf(line, sizeof(line), "%-10s %9s %7s %9s %5s %5s %9s %9s\n",
                "component", "injected", "masked", "detected", "sdc", "due",
                "coverage", "sdc-rate");
  out += line;
  for (std::size_t c = 0; c < kComponentCount; ++c) {
    const ComponentVuln& v = components[c];
    if (v.injected == 0) continue;
    std::snprintf(line, sizeof(line),
                  "%-10s %9u %7u %9u %5u %5u %8.1f%% %8.1f%%\n",
                  component_name(static_cast<Component>(c)), v.injected, v.masked,
                  v.detected, v.sdc, v.due, 100.0 * v.coverage(),
                  100.0 * v.sdc_rate());
    out += line;
  }
  std::snprintf(line, sizeof(line), "%-10s %9u %7u %9u %5u %5u %8.1f%% %8.1f%%\n",
                "total", injected, masked, detected, sdc, due,
                injected == 0 ? 0.0 : 100.0 * detected / injected,
                injected == 0 ? 0.0 : 100.0 * sdc / injected);
  out += line;
  return out;
}

// ---------------------------------------------------------------------------
// Campaign driver
// ---------------------------------------------------------------------------

namespace {

/// Main core of every vuln session (vuln_scenario pins main 0 / checker 1).
constexpr CoreId kMainCore = 0;

/// Same deterministic pacing jitters as the DBC campaign (campaign.cpp): odd
/// bounds break the poll grid, so injection points don't all land at the
/// same program phase.
constexpr u64 kWarmupJitter = 4099;
constexpr u64 kGapJitter = 257;
constexpr u32 kMaxWarmupRetries = 16;

/// Instructions advanced between detection probes inside the horizon.
constexpr u64 kDetectPollStride = 256;

/// Alignment-phase advance() calls allowed before the victim is declared
/// wedged (DUE). Each call has a budget >= 1, so a live victim re-aligns to
/// the golden run's main-core user-instruction count far below this.
constexpr u64 kAlignSpinCap = 100'000;

sim::Scenario vuln_scenario(const workloads::WorkloadProfile& profile,
                            const soc::SocConfig& soc_config,
                            const VulnConfig& config, u64 seed) {
  sim::Scenario scenario;
  scenario.workload(profile)
      .seed(seed)
      .iterations(config.workload_iterations != 0 ? config.workload_iterations
                                                  : profile.iterations * 40)
      .soc(soc_config)
      .main_core(kMainCore)
      .checkers({1})
      // Whole-SoC faults can wedge the machine (e.g. a corrupted main-core pc
      // halting without task exit): that is the DUE outcome, not a crash.
      .tolerate_stall(true);
  if (config.engine.has_value()) scenario.engine(*config.engine);
  return scenario;
}

/// Main-core architectural register compare (pc + x1..x31). `excl_reg`
/// excludes the flipped register slot itself: a flip parked in a register the
/// program never consumed within the horizon is a latent fault (masked), and
/// the residual flipped cell must not read as divergence.
bool main_state_equal(const soc::Snapshot& victim, const soc::Snapshot& golden,
                      std::optional<u8> excl_reg) {
  const arch::Core::Snapshot& v = victim.cores[kMainCore];
  const arch::Core::Snapshot& g = golden.cores[kMainCore];
  if (v.pc != g.pc) return false;
  for (u8 r = 1; r < 32; ++r) {
    if (excl_reg.has_value() && *excl_reg == r) continue;
    if (v.regs[r] != g.regs[r]) return false;
  }
  return true;
}

/// Resident-page merge walk; a page absent on one side compares as zero (a
/// never-touched page reads as zero). `excl_word` skips the flipped 8-byte
/// word itself (same latent-fault rationale as excl_reg).
bool memory_equal(const arch::Memory::Snapshot& a, const arch::Memory::Snapshot& b,
                  std::optional<Addr> excl_word) {
  static const arch::Memory::Page kZeroPage{};
  const auto page_equal = [&](u64 id, const arch::Memory::Page& pa,
                              const arch::Memory::Page& pb) {
    if (!excl_word.has_value() ||
        (*excl_word >> arch::Memory::kPageBits) != id) {
      return std::memcmp(pa.data(), pb.data(), pa.size()) == 0;
    }
    const auto skip_lo =
        static_cast<std::size_t>(*excl_word & (arch::Memory::kPageSize - 1));
    const std::size_t skip_hi = skip_lo + 8;
    for (std::size_t i = 0; i < pa.size(); ++i) {
      if (i >= skip_lo && i < skip_hi) continue;
      if (pa[i] != pb[i]) return false;
    }
    return true;
  };
  std::size_t ia = 0;
  std::size_t ib = 0;
  while (ia < a.pages.size() || ib < b.pages.size()) {
    const u64 id_a = ia < a.pages.size() ? a.pages[ia].first : ~u64{0};
    const u64 id_b = ib < b.pages.size() ? b.pages[ib].first : ~u64{0};
    if (id_a == id_b) {
      if (!page_equal(id_a, a.pages[ia].second, b.pages[ib].second)) return false;
      ++ia;
      ++ib;
    } else if (id_a < id_b) {
      if (!page_equal(id_a, a.pages[ia].second, kZeroPage)) return false;
      ++ia;
    } else {
      if (!page_equal(id_b, kZeroPage, b.pages[ib].second)) return false;
      ++ib;
    }
  }
  return true;
}

/// Inject one whole-SoC fault into the (disposable) victim and classify it
/// against a golden fork of the victim's own pre-fault state. `executed`
/// accumulates instructions actually simulated (victim tail + golden horizon
/// + optional root-cause forks).
InjectionRecord run_one_injection(sim::Session& victim, Component component,
                                  Rng& rng, const VulnConfig& config,
                                  u64& executed) {
  // Golden reference: fork the pre-fault state and run it to the horizon.
  // Derived from the victim in BOTH campaign modes, so the modes differ only
  // in how the victim itself was materialised.
  const soc::Snapshot snap = victim.snapshot();
  sim::Session golden = victim.fork(snap);
  const u64 golden_base = golden.total_instret();
  golden.advance(config.horizon);
  executed += golden.total_instret() - golden_base;
  const u64 golden_main_ui = golden.soc().core(kMainCore).user_instret();
  const soc::Snapshot golden_end = golden.snapshot();

  InjectionRecord rec;
  rec.site = random_site(victim.soc(), component, rng);

  // Compare exclusions for the residual flipped cell (latent faults classify
  // masked). Resolved NOW: the memory index->address mapping depends on the
  // resident-page set, which grows as the victim runs.
  std::optional<Addr> excl_word;
  if (component == Component::kMemory) {
    excl_word = victim.soc().memory().fault_word_addr(
        static_cast<std::size_t>(rec.site.index));
  }
  std::optional<u8> excl_reg;
  if (component == Component::kArchReg && rec.site.index / 32 == kMainCore &&
      rec.site.index % 32 != 0) {
    excl_reg = static_cast<u8>(rec.site.index % 32);
  }

  const std::size_t events_before = victim.reporter().events().size();
  const u64 victim_base = victim.total_instret();
  flip(victim.soc(), rec.site);

  // Any post-flip reporter event is this fault's detection (the victim is
  // disposable and carried no pending event before the flip). Latency runs
  // from the strike to the checker's report, as in the paper's Fig. 7.
  const auto detect_scan = [&]() {
    const auto& events = victim.reporter().events();
    if (events.size() <= events_before) return false;
    const fs::DetectionEvent& event = events[events_before];
    rec.outcome = OutcomeKind::kDetected;
    rec.detect_kind = event.kind;
    rec.latency_us =
        cycles_to_us(event.at >= rec.site.cycle ? event.at - rec.site.cycle : 0);
    return true;
  };

  // Phase A — detection window: run the victim through the horizon, probing
  // for reporter events and for a wedged machine.
  bool alive = true;
  bool decided = false;
  u64 budget = config.horizon;
  while (budget > 0) {
    const u64 stride = std::min<u64>(budget, kDetectPollStride);
    alive = victim.advance(stride);
    budget -= stride;
    if (detect_scan()) {
      decided = true;
      break;
    }
    if (victim.stalled()) {
      rec.outcome = OutcomeKind::kDue;
      decided = true;
      break;
    }
    if (!alive) break;
  }

  // Phase B — alignment + architectural compare. Align the victim's main-core
  // user-instruction count to the golden run's: advance() budgets cap retired
  // instructions, so repeated advance(golden_ui - ui) converges without ever
  // overshooting. Detections during alignment still count.
  if (!decided) {
    const auto main_ui = [&] {
      return victim.soc().core(kMainCore).user_instret();
    };
    u64 spins = 0;
    while (alive && !victim.stalled() && main_ui() < golden_main_ui &&
           spins < kAlignSpinCap) {
      ++spins;
      alive = victim.advance(std::min<u64>(golden_main_ui - main_ui(), 2048));
      if (detect_scan()) {
        decided = true;
        break;
      }
    }
    if (!decided) {
      if (victim.stalled() || (alive && main_ui() < golden_main_ui)) {
        // Wedged, or live but unable to re-align: unrecoverable either way.
        rec.outcome = OutcomeKind::kDue;
      } else {
        // Aligned — or finished early and clean (a fault that legitimately
        // shortened the run shows up as divergence in the compare).
        const soc::Snapshot victim_end = victim.snapshot();
        const bool equal =
            main_state_equal(victim_end, golden_end, excl_reg) &&
            memory_equal(victim_end.memory, golden_end.memory, excl_word);
        rec.outcome = equal ? OutcomeKind::kMasked : OutcomeKind::kSdc;
      }
    }
  }
  executed += victim.total_instret() - victim_base;

  // Root-cause attribution (SDC/DUE only): lockstep a flipped/clean fork pair
  // from the pre-fault snapshot and find the first retired instruction at
  // which the main core's architectural state diverges.
  if (config.root_cause &&
      (rec.outcome == OutcomeKind::kSdc || rec.outcome == OutcomeKind::kDue)) {
    sim::Session flipped = victim.fork(snap);
    sim::Session clean = victim.fork(snap);
    const u64 rc_base = flipped.total_instret() + clean.total_instret();
    flip(flipped.soc(), rec.site);
    for (u64 step = 0; step < config.horizon; ++step) {
      const bool flipped_alive = flipped.advance(1);
      const bool clean_alive = clean.advance(1);
      arch::Core& mv = flipped.soc().core(kMainCore);
      arch::Core& mg = clean.soc().core(kMainCore);
      bool diverged = mv.pc() != mg.pc();
      for (u8 r = 1; r < 32 && !diverged; ++r) {
        if (excl_reg.has_value() && *excl_reg == r) continue;
        diverged = mv.reg(r) != mg.reg(r);
      }
      if (diverged) {
        rec.rc_valid = true;
        rec.rc_instret = mv.instret();
        rec.rc_victim_pc = mv.pc();
        rec.rc_golden_pc = mg.pc();
        break;
      }
      if ((!flipped_alive && !clean_alive) || flipped.stalled()) break;
    }
    executed += flipped.total_instret() + clean.total_instret() - rc_base;
  }
  return rec;
}

}  // namespace

namespace detail {

std::vector<Component> resolve_components(const VulnConfig& config) {
  std::vector<Component> comps = config.components;
  if (comps.empty()) {
    for (std::size_t c = 0; c < kComponentCount; ++c) {
      comps.push_back(static_cast<Component>(c));
    }
  }
  return comps;
}

/// One shard: identical structure to the DBC campaign's shard
/// (campaign.cpp) — clean baseline walks warmup + gaps, every injection runs
/// in a disposable session materialised per `config.mode`. The target
/// component rotates by GLOBAL injection index, so even a tiny campaign
/// covers every component class across its shards.
VulnReport run_vuln_shard(const workloads::WorkloadProfile& profile,
                          const soc::SocConfig& soc_config,
                          const VulnConfig& config,
                          const std::vector<Component>& comps, u32 shard_index,
                          u32 target_faults, u32 global_start,
                          BaselineStore* baselines) {
  VulnReport report;
  Rng shard_rng = runtime::stream_rng(config.seed, shard_index);
  Rng rng = shard_rng.split();               // site-placement draws
  Rng pace_rng = shard_rng.split();          // warmup/gap pacing jitter
  u64 session_seed = shard_rng.next_u64();   // workload-build seeds

  const bool fork_mode = config.mode == CampaignMode::kSnapshotFork;
  // Stores only engage in fork mode (see campaign.cpp): re-execution victims
  // replay the baseline's schedule, which a restored baseline never executed.
  BaselineStore* store = fork_mode ? baselines : nullptr;
  u32 failed_warmups = 0;
  u32 done = 0;
  u32 ordinal = 0;  ///< Successful warmups so far — the store key.

  // The baseline tag shares the DBC campaign's fingerprint fields; salt 1
  // separates the two campaign kinds (vuln scenarios tolerate stalls).
  CampaignConfig tag_fields;
  tag_fields.seed = config.seed;
  tag_fields.workload_iterations = config.workload_iterations;
  tag_fields.engine = config.engine;

  while (done < target_faults) {
    const sim::Scenario scenario =
        vuln_scenario(profile, soc_config, config, ++session_seed);
    sim::Session baseline = scenario.build();
    std::vector<u64> schedule;
    auto baseline_advance = [&](u64 rounds) {
      schedule.push_back(rounds);
      return baseline.advance(rounds);
    };

    const u64 warmup = config.warmup_rounds + pace_rng.next_below(kWarmupJitter);
    u64 baseline_restored = 0;  ///< Instret restored (not executed) from the store.
    bool warm = false;
    if (store != nullptr) {
      const u64 tag = baseline_tag(profile, soc_config, tag_fields, shard_index,
                                   session_seed, warmup, /*salt=*/1);
      if (store->try_load(shard_index, ordinal, tag, baseline)) {
        baseline_restored = baseline.total_instret();
        warm = true;
      } else if ((warm = baseline_advance(warmup))) {
        store->save(shard_index, ordinal, tag, baseline);
      }
      if (warm) ++ordinal;
    } else {
      warm = baseline_advance(warmup);
    }
    if (!warm) {
      report.total_instructions += baseline.total_instret();
      ++failed_warmups;
      FLEX_CHECK_MSG(failed_warmups < kMaxWarmupRetries,
                     "vuln campaign: workload exhausts before warmup_rounds "
                     "completes — raise workload_iterations or lower "
                     "warmup_rounds");
      continue;
    }
    failed_warmups = 0;

    bool session_alive = true;
    while (session_alive && done < target_faults) {
      const Component comp = comps[(global_start + done) % comps.size()];
      // DBC components need live targets at the injection point; everything
      // else (registers, memory, caches, predictor, checker latches) is
      // always populated. Waiting happens on the baseline so the rng draw
      // stream stays identical across campaign modes.
      fs::Channel* ch = baseline.channel();
      if (ch == nullptr) break;
      while (ch->empty() ||
             (comp == Component::kDbcMeta && ch->complete_segments_queued() == 0)) {
        if (!(session_alive = baseline_advance(256))) break;
      }
      if (!session_alive) break;

      sim::Session victim = fork_mode ? baseline.fork() : scenario.build();
      u64 executed = 0;
      if (!fork_mode) {
        for (u64 rounds : schedule) victim.advance(rounds);
        executed += victim.total_instret();  // the re-executed prefix
      }

      const InjectionRecord rec =
          run_one_injection(victim, comp, rng, config, executed);
      report.add(rec);
      report.total_instructions += executed;
      ++done;

      session_alive = baseline_advance(config.gap_rounds +
                                       pace_rng.next_below(kGapJitter));
    }
    report.total_instructions += baseline.total_instret() - baseline_restored;
  }
  return report;
}

}  // namespace detail

VulnReport run_vuln_campaign(const workloads::WorkloadProfile& profile,
                             const soc::SocConfig& soc_config,
                             const VulnConfig& config) {
  FLEX_CHECK_MSG(config.shards >= 1,
                 "vuln campaign: shards must be >= 1 (got 0)");
  FLEX_CHECK_MSG(config.target_faults > 0,
                 "vuln campaign: target_faults must be > 0");
  FLEX_CHECK_MSG(config.warmup_rounds > 0 && config.gap_rounds > 0 &&
                     config.horizon > 0,
                 "vuln campaign: warmup_rounds, gap_rounds and horizon must "
                 "all be nonzero");

  const std::vector<Component> comps = detail::resolve_components(config);

  const std::vector<u32> quota =
      detail::shard_quotas(config.target_faults, config.shards);
  const u32 shards = static_cast<u32>(quota.size());
  std::vector<u32> start(shards);
  u32 assigned = 0;
  for (u32 s = 0; s < shards; ++s) {
    start[s] = assigned;
    assigned += quota[s];
  }

  auto shard_job = [&](std::size_t s) {
    return quota[s] == 0
               ? VulnReport{}
               : detail::run_vuln_shard(profile, soc_config, config, comps,
                                        static_cast<u32>(s), quota[s], start[s]);
  };
  auto fold = [](VulnReport& acc, VulnReport&& part) {
    acc.merge(std::move(part));
  };
  VulnReport report;
  if (config.threads != 0) {
    runtime::JobPool pool(config.threads);
    report = runtime::parallel_accumulate(pool, shards, VulnReport{}, shard_job,
                                          fold);
  } else {
    report =
        runtime::parallel_accumulate(shards, VulnReport{}, shard_job, fold);
  }
  report.check_invariant();
  return report;
}

}  // namespace flexstep::fault
