#include "fault/sites.h"

#include <charconv>

#include "arch/cache.h"
#include "arch/core.h"
#include "common/check.h"
#include "flexstep/channel.h"
#include "flexstep/core_unit.h"
#include "flexstep/fabric.h"
#include "soc/snapshot.h"
#include "soc/soc.h"

namespace flexstep::fault {

namespace {

/// Registers-per-core slots in the kArchReg space: slot 0 = pc, 1..31 = x1..x31
/// (x0 is hardwired zero — a strike there is architecturally invisible).
constexpr u64 kRegSlots = 32;

/// Locate element `index` of a flat per-core cache-tag space laid out as
/// [core0 l1i | core0 l1d | core1 l1i | ... ] with the shared L2 last.
arch::Cache& locate_cache_way(soc::Soc& soc, u64 index, std::size_t& local) {
  for (CoreId c = 0; c < soc.num_cores(); ++c) {
    arch::CacheHierarchy& caches = soc.core(c).caches();
    if (index < caches.l1i().fault_way_count()) {
      local = static_cast<std::size_t>(index);
      return caches.l1i();
    }
    index -= caches.l1i().fault_way_count();
    if (index < caches.l1d().fault_way_count()) {
      local = static_cast<std::size_t>(index);
      return caches.l1d();
    }
    index -= caches.l1d().fault_way_count();
  }
  FLEX_CHECK_MSG(index < soc.l2().fault_way_count(),
                 "cache-tag fault index out of range");
  local = static_cast<std::size_t>(index);
  return soc.l2();
}

arch::BranchPredictor& locate_bpred_site(soc::Soc& soc, u64 index,
                                         std::size_t& local) {
  for (CoreId c = 0; c < soc.num_cores(); ++c) {
    arch::BranchPredictor& bpred = soc.core(c).bpred();
    if (index < bpred.fault_site_count()) {
      local = static_cast<std::size_t>(index);
      return bpred;
    }
    index -= bpred.fault_site_count();
  }
  FLEX_CHECK_MSG(false, "branch-predictor fault index out of range");
  return soc.core(0).bpred();  // unreachable
}

fs::Channel& locate_channel_entry(soc::Soc& soc, u64 index, std::size_t& local) {
  for (fs::Channel* ch : soc.fabric().channels()) {
    if (index < ch->size()) {
      local = static_cast<std::size_t>(index);
      return *ch;
    }
    index -= ch->size();
  }
  FLEX_CHECK_MSG(false, "dbc-entry fault index out of range");
  return *soc.fabric().channels().front();  // unreachable
}

fs::Channel& locate_channel_meta(soc::Soc& soc, u64 index, std::size_t& local) {
  for (fs::Channel* ch : soc.fabric().channels()) {
    if (index < ch->segment_meta_count()) {
      local = static_cast<std::size_t>(index);
      return *ch;
    }
    index -= ch->segment_meta_count();
  }
  FLEX_CHECK_MSG(false, "dbc-meta fault index out of range");
  return *soc.fabric().channels().front();  // unreachable
}

}  // namespace

u64 site_index_count(soc::Soc& soc, Component component) {
  switch (component) {
    case Component::kArchReg:
      return u64{soc.num_cores()} * kRegSlots;
    case Component::kMemory:
      return soc.memory().fault_word_count();
    case Component::kCacheTag: {
      u64 count = soc.l2().fault_way_count();
      for (CoreId c = 0; c < soc.num_cores(); ++c) {
        arch::CacheHierarchy& caches = soc.core(c).caches();
        count += caches.l1i().fault_way_count() + caches.l1d().fault_way_count();
      }
      return count;
    }
    case Component::kBranchPred: {
      u64 count = 0;
      for (CoreId c = 0; c < soc.num_cores(); ++c) {
        count += soc.core(c).bpred().fault_site_count();
      }
      return count;
    }
    case Component::kDbcEntry: {
      u64 count = 0;
      for (const fs::Channel* ch : soc.fabric().channels()) count += ch->size();
      return count;
    }
    case Component::kDbcMeta: {
      u64 count = 0;
      for (const fs::Channel* ch : soc.fabric().channels()) {
        count += ch->segment_meta_count();
      }
      return count;
    }
    case Component::kCheckerState:
      return soc.num_cores();
  }
  return 0;
}

u64 site_bit_count(soc::Soc& soc, const FaultSite& site) {
  switch (site.component) {
    case Component::kArchReg:
    case Component::kMemory:
    case Component::kCacheTag:
      return 64;
    case Component::kBranchPred: {
      std::size_t local = 0;
      return locate_bpred_site(soc, site.index, local).fault_site_bits(local);
    }
    case Component::kDbcEntry: {
      std::size_t local = 0;
      return locate_channel_entry(soc, site.index, local).entry_bit_count(local);
    }
    case Component::kDbcMeta:
      return fs::Channel::kSegmentMetaBits;
    case Component::kCheckerState:
      return fs::CoreUnit::kCheckerStateBits;
  }
  return 0;
}

void flip(soc::Soc& soc, const FaultSite& site) {
  FLEX_CHECK_MSG(site.index < site_index_count(soc, site.component),
                 "fault site index out of range");
  FLEX_CHECK_MSG(site.bit < site_bit_count(soc, site),
                 "fault site bit out of range");
  switch (site.component) {
    case Component::kArchReg: {
      arch::Core& core = soc.core(static_cast<CoreId>(site.index / kRegSlots));
      const u64 slot = site.index % kRegSlots;
      const u64 mask = u64{1} << site.bit;
      if (slot == 0) {
        core.set_pc(core.pc() ^ mask);
      } else {
        core.set_reg(static_cast<u8>(slot), core.reg(static_cast<u8>(slot)) ^ mask);
      }
      return;
    }
    case Component::kMemory:
      soc.memory().fault_flip_word(static_cast<std::size_t>(site.index), site.bit);
      return;
    case Component::kCacheTag: {
      std::size_t local = 0;
      locate_cache_way(soc, site.index, local).fault_flip_tag(local, site.bit);
      return;
    }
    case Component::kBranchPred: {
      std::size_t local = 0;
      locate_bpred_site(soc, site.index, local).fault_flip(local, site.bit);
      return;
    }
    case Component::kDbcEntry: {
      std::size_t local = 0;
      locate_channel_entry(soc, site.index, local).flip_entry_bit(local, site.bit);
      return;
    }
    case Component::kDbcMeta: {
      std::size_t local = 0;
      locate_channel_meta(soc, site.index, local).flip_segment_meta_bit(local,
                                                                        site.bit);
      return;
    }
    case Component::kCheckerState:
      soc.unit(static_cast<CoreId>(site.index)).flip_checker_state_bit(site.bit);
      return;
  }
}

FaultSite random_site(soc::Soc& soc, Component component, Rng& rng) {
  FaultSite site;
  site.component = component;
  const u64 count = site_index_count(soc, component);
  FLEX_CHECK_MSG(count > 0, "component has no enumerable fault sites");
  site.index = rng.next_below(count);
  site.bit = rng.next_below(site_bit_count(soc, site));
  site.cycle = soc.max_cycle();
  return site;
}

std::string describe(const FaultSite& site) {
  std::string out = component_name(site.component);
  out += " i" + std::to_string(site.index);
  out += " b" + std::to_string(site.bit);
  out += " @" + std::to_string(site.cycle);
  return out;
}

ParseSiteResult parse_site_checked(std::string_view text) {
  const auto take_token = [&text]() -> std::string_view {
    while (!text.empty() && text.front() == ' ') text.remove_prefix(1);
    std::size_t end = text.find(' ');
    if (end == std::string_view::npos) end = text.size();
    const std::string_view token = text.substr(0, end);
    text.remove_prefix(end);
    return token;
  };
  const auto parse_u64 = [](std::string_view token, char prefix,
                            u64& out) -> bool {
    if (token.size() < 2 || token.front() != prefix) return false;
    token.remove_prefix(1);
    const auto result =
        std::from_chars(token.data(), token.data() + token.size(), out);
    return result.ec == std::errc{} && result.ptr == token.data() + token.size();
  };
  const auto fail = [](std::string message) {
    ParseSiteResult result;
    result.error = std::move(message);
    return result;
  };

  FaultSite site;
  const std::string_view name = take_token();
  bool found = false;
  for (std::size_t c = 0; c < kComponentCount; ++c) {
    const auto component = static_cast<Component>(c);
    if (name == component_name(component)) {
      site.component = component;
      found = true;
      break;
    }
  }
  if (!found) {
    return fail("unknown component '" + std::string(name) + "'");
  }
  if (const std::string_view token = take_token();
      !parse_u64(token, 'i', site.index)) {
    return fail("expected index token 'i<n>', got '" + std::string(token) + "'");
  }
  if (const std::string_view token = take_token();
      !parse_u64(token, 'b', site.bit)) {
    return fail("expected bit token 'b<n>', got '" + std::string(token) + "'");
  }
  if (const std::string_view token = take_token();
      !parse_u64(token, '@', site.cycle)) {
    return fail("expected cycle token '@<n>', got '" + std::string(token) + "'");
  }
  if (!text.empty() && text.find_first_not_of(' ') != std::string_view::npos) {
    return fail("trailing garbage after site: '" + std::string(text) + "'");
  }
  ParseSiteResult result;
  result.site = site;
  return result;
}

}  // namespace flexstep::fault
