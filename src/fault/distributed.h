// Multi-process resumable campaign driver.
//
// Scales the sharded fault campaigns (fault/campaign.h, fault/vuln.h) across
// worker PROCESSES and makes them restartable: every shard's result streams
// to its own CRC-guarded archive file (written via temp + atomic rename, so a
// killed worker never leaves a torn file), warmed baselines persist to disk
// and are restored instead of re-executed on subsequent runs, and a fresh
// driver invocation resumes by scanning which shard files already decode
// cleanly — only the missing shards re-run.
//
// Determinism contract: shards are seeded from (seed, shard_index) alone
// (runtime::stream_rng), so process placement cannot change any outcome. The
// parent merges decoded shards in ascending shard-index order — the same fold
// order as the in-process driver — so the merged CampaignStats / VulnReport
// is bit-identical (digest()-equal) to a single-process run of the same
// config, including after a worker was killed mid-shard and the campaign
// resumed.
//
// Worker dispatch has two modes:
//   * plain fork() (default): the child runs its shard list in-process and
//     _exit()s — works for any SocConfig, no binary involved;
//   * fork + exec (DistributedConfig::use_exec): the child re-executes
//     `exe --campaign-worker <spec>` with a text spec file naming the
//     campaign. Spec files carry the workload by profile NAME and the
//     platform as a core count, so exec mode is restricted to
//     SocConfig::paper_default platforms.
//
// Fault hook for the kill-and-resume tests: when the FLEX_CAMPAIGN_DIE_SHARD
// environment variable names a shard index, the worker that runs that shard
// completes it and then _exit(42)s WITHOUT writing its result file —
// simulating a worker killed mid-shard after the work was done but before the
// atomic rename. The next driver run redoes exactly that shard.
#pragma once

#include <string>

#include "fault/campaign.h"
#include "fault/vuln.h"

namespace flexstep::fault {

struct DistributedConfig {
  u32 workers = 2;        ///< Worker processes (>= 1).
  std::string dir;        ///< Campaign directory: shard files, baselines, journal.
  /// Names this run's shard-result files (`<run_label>_shard_<k>.fxar`) and
  /// journal. Re-running with a fresh label but the same dir re-runs every
  /// shard against the persisted baselines — the warm-start benchmark path.
  std::string run_label = "run";
  bool use_exec = false;  ///< fork+exec `exe --campaign-worker <spec>` workers.
  std::string exe;        ///< Binary for exec mode (e.g. /proc/self/exe).
};

/// What a driver invocation did, beyond the merged result.
struct DistributedOutcome {
  u32 shards_total = 0;
  u32 shards_completed = 0;  ///< Shard files that decode cleanly at the end.
  u32 shards_resumed = 0;    ///< Found already complete before any worker ran.
  /// Warmup instructions restored from persisted baselines instead of
  /// executed, summed over completed shards (0 on a cold run).
  u64 warmup_instructions_elided = 0;

  /// All shards accounted for; the merged result is only meaningful when
  /// true (a killed worker leaves its shard missing — re-run to resume).
  bool complete() const { return shards_completed == shards_total; }
};

struct DistributedCampaignResult {
  CampaignStats stats;  ///< Merged in shard order; valid when run.complete().
  DistributedOutcome run;
};

struct DistributedVulnResult {
  VulnReport report;  ///< Merged in shard order; valid when run.complete().
  DistributedOutcome run;
};

/// Run (or resume) a DBC-stream campaign across worker processes.
DistributedCampaignResult run_distributed_campaign(
    const workloads::WorkloadProfile& profile, const soc::SocConfig& soc_config,
    const CampaignConfig& campaign, const DistributedConfig& dist);

/// Run (or resume) a whole-SoC vulnerability campaign across worker processes.
DistributedVulnResult run_distributed_vuln_campaign(
    const workloads::WorkloadProfile& profile, const soc::SocConfig& soc_config,
    const VulnConfig& config, const DistributedConfig& dist);

/// Exec-mode worker entry point: parse `spec_path`, run the assigned shards,
/// write their result files. Returns a process exit code (0 on success).
/// Wired to `--campaign-worker <spec>` in the benchmark binary.
int campaign_worker_main(const std::string& spec_path);

}  // namespace flexstep::fault
