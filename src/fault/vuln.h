// Whole-SoC microarchitectural vulnerability campaigns.
//
// Extends the DBC-stream campaign (fault/campaign.h, the paper's Sec. VI-C
// methodology) to the CFA-class question: *where* in the SoC is a particle
// strike dangerous, and what does FlexStep do about it? Each injection picks
// one FaultSite (fault/sites.h) across the component classes, flips it in a
// disposable victim session, and classifies the outcome against a golden
// fork of the same pre-fault state:
//
//   detected — a checker reported a mismatch within the horizon;
//   DUE      — the co-simulation wedged (stall / lost alignment): the fault
//              is unrecoverable but not silent;
//   SDC      — no detection, and the victim's architectural state (main-core
//              registers + pc + memory) diverged from the golden run at equal
//              main-core user-instruction count;
//   masked   — no detection and bit-identical architectural outcome.
//
// The golden fork is derived from the victim's own pre-fault snapshot in
// BOTH campaign modes, so snapshot-fork and warmup-re-execution differ only
// in how the victim is materialised — the classify-identically parity gate
// (micro_benchmarks --vuln) holds them to the same outcome stream.
//
// Classification invariant (enforced): masked + detected + sdc + due ==
// injected, per component and in total.
//
// Scope note: a fault that is still latent at the horizon (e.g. a flipped
// memory word the program never re-reads within the window) classifies as
// masked — outcomes are horizon-relative, as in trace-window CFA studies.
#pragma once

#include <array>
#include <optional>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/types.h"
#include "fault/campaign.h"
#include "fault/sites.h"
#include "flexstep/error.h"
#include "soc/verified_run.h"
#include "workloads/profile.h"

namespace flexstep::fault {

struct VulnConfig {
  u32 target_faults = 700;      ///< Injections (summed over shards).
  u64 warmup_rounds = 20'000;   ///< Retired instructions before injection #1.
  u64 gap_rounds = 1'000;       ///< Baseline advance between injection points.
  /// Post-injection observation window, in retired instructions (summed
  /// across cores — the advance() budget unit). Bounds both the golden
  /// reference run and the victim's detection/alignment phases.
  u64 horizon = 30'000;
  u64 seed = 0xCFA;
  u32 workload_iterations = 0;  ///< Override profile iterations (0 = default).
  u32 shards = kDefaultCampaignShards;
  u32 threads = 0;              ///< Worker threads (0 = FLEX_THREADS / hw).
  CampaignMode mode = CampaignMode::kSnapshotFork;
  std::optional<soc::Engine> engine;
  /// Component classes to inject into, round-robin by global injection index
  /// (so even tiny campaigns cover every class). Empty = all seven.
  std::vector<Component> components;
  /// Attribute SDC/DUE outcomes to the first diverging retired instruction
  /// by lockstepping a flipped/clean fork pair (2× the per-injection cost).
  bool root_cause = false;
};

/// One classified injection.
struct InjectionRecord {
  FaultSite site;
  OutcomeKind outcome = OutcomeKind::kMasked;
  fs::DetectKind detect_kind{};  ///< Valid when outcome == kDetected.
  double latency_us = 0.0;       ///< Valid when outcome == kDetected.

  // Root-cause attribution (VulnConfig::root_cause, SDC/DUE only): the first
  // retired instruction at which the flipped fork's main-core state diverged
  // from the clean fork's.
  bool rc_valid = false;
  u64 rc_instret = 0;      ///< Main-core instret at first divergence.
  Addr rc_victim_pc = 0;   ///< Main-core pc of the flipped fork there.
  Addr rc_golden_pc = 0;   ///< Main-core pc of the clean fork there.
};

/// Per-component outcome breakdown.
struct ComponentVuln {
  u32 injected = 0;
  u32 masked = 0;
  u32 detected = 0;
  u32 sdc = 0;
  u32 due = 0;
  std::vector<double> latencies_us;  ///< Detection latencies (kDetected only).

  double coverage() const {
    return injected == 0 ? 0.0 : static_cast<double>(detected) / injected;
  }
  double sdc_rate() const {
    return injected == 0 ? 0.0 : static_cast<double>(sdc) / injected;
  }
};

/// Full campaign result: per-component breakdown + the flat record stream
/// (in deterministic shard-merge order).
struct VulnReport {
  std::array<ComponentVuln, kComponentCount> components{};
  std::vector<InjectionRecord> records;
  u32 injected = 0;
  u32 masked = 0;
  u32 detected = 0;
  u32 sdc = 0;
  u32 due = 0;
  /// Instructions actually executed across every session (baselines, victims,
  /// golden forks, root-cause forks); restored snapshots contribute nothing.
  u64 total_instructions = 0;

  void add(const InjectionRecord& record);
  /// Fold another shard in (call in ascending shard order for determinism).
  void merge(VulnReport&& shard);
  /// FLEX_CHECKs masked + detected + sdc + due == injected, per component
  /// and in total.
  void check_invariant() const;

  /// Detection-latency histogram over all components (Fig. 7-style density).
  Histogram latency_histogram(double lo_us = 0.0, double hi_us = 200.0,
                              std::size_t bins = 40) const;

  /// Order-sensitive FNV-1a digest of the full record stream (site, outcome,
  /// detect kind, latency bits, root-cause fields). Two campaigns classified
  /// identically iff their digests match — the determinism gates compare
  /// this. Deliberately EXCLUDES total_instructions, which measures host work
  /// (a resumed campaign executes less while classifying identically).
  u64 digest() const;

  /// Multi-line per-component summary table.
  std::string render() const;

  /// Wire format (shard checkpoint files): the record stream + the
  /// total_instructions counter; deserialize() rebuilds every per-component
  /// rollup through add(), so a decoded report satisfies check_invariant()
  /// by construction.
  void serialize(io::ArchiveWriter& ar) const;
  void deserialize(io::ArchiveReader& ar);
};

/// Run a whole-SoC vulnerability campaign on `profile` under dual-core
/// verification (main core 0, checker core 1). Sharded and seeded exactly
/// like run_fault_campaign: outcomes depend only on (seed, shards, mode-
/// independent), never on thread count.
VulnReport run_vuln_campaign(const workloads::WorkloadProfile& profile,
                             const soc::SocConfig& soc_config,
                             const VulnConfig& config);

namespace detail {

/// The component rotation run_vuln_campaign injects into: config.components,
/// or all seven classes when empty. Exposed so worker processes resolve the
/// identical rotation.
std::vector<Component> resolve_components(const VulnConfig& config);

/// One vulnerability-campaign shard, exactly as run_vuln_campaign executes
/// it. `global_start` is the shard's first global injection index (drives the
/// component rotation); `baselines` optionally elides warmups via persisted
/// warmed state — outcomes are unchanged. Deterministic in
/// (config.seed, shard_index) regardless of thread or process placement.
VulnReport run_vuln_shard(const workloads::WorkloadProfile& profile,
                          const soc::SocConfig& soc_config,
                          const VulnConfig& config,
                          const std::vector<Component>& comps, u32 shard_index,
                          u32 target_faults, u32 global_start,
                          BaselineStore* baselines = nullptr);

}  // namespace detail

}  // namespace flexstep::fault
