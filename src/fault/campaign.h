// Fault-injection campaigns (paper Sec. VI-C).
//
// Faults are bit flips in the *forwarded* data — MAL entries and ASS
// checkpoint words queued in a DBC channel — exactly the paper's methodology,
// which perturbs the verification stream without disturbing the main core.
// Detection latency is the simulated time from corruption to the checker's
// mismatch report. One long run hosts many sequential injections.
#pragma once

#include <optional>
#include <vector>

#include "common/types.h"
#include "flexstep/error.h"
#include "flexstep/stream.h"
#include "soc/verified_run.h"
#include "workloads/profile.h"

namespace flexstep::fault {

/// Default shard count for sharded campaigns. Fixed (not derived from the
/// host's core count) because shard structure feeds seed derivation: outcomes
/// depend on `shards`, never on how many threads execute them.
inline constexpr u32 kDefaultCampaignShards = 8;

/// How each injection's pre-fault state is materialised. Every injection runs
/// in a disposable session so its perturbations (checker divergence, reporter
/// events, timing drift) never contaminate the next injection's starting
/// state; the two modes differ only in how that session is produced and are
/// bit-identical outcome-for-outcome (tests/test_sim.cpp holds them to it).
enum class CampaignMode : u8 {
  /// Warm the baseline once, soc::Snapshot it, and fork every injection from
  /// the snapshot (sim::Session::fork). Executes only the baseline prefix
  /// once plus each injection's resolution tail — the checkpointing-mode
  /// campaign structure of CFA/gem5-class frameworks.
  kSnapshotFork,
  /// Reference: rebuild the session and re-execute the whole warmup + gap
  /// prefix for every injection. Orders of magnitude more simulated
  /// instructions at paper-scale warmups; kept as the parity baseline the
  /// snapshot path is verified against (micro_benchmarks --snapshot).
  kWarmupReexecution,
};

struct CampaignConfig {
  u32 target_faults = 2000;     ///< Injections to perform (summed over shards).
  u64 warmup_rounds = 50'000;   ///< Retired instructions before the first injection.
  u64 gap_rounds = 3'000;       ///< Baseline advance between injection points.
  u64 seed = 0xF417;
  u32 workload_iterations = 0;  ///< Override profile iterations (0 = default).
  u32 shards = kDefaultCampaignShards;  ///< Independent campaign shards (>= 1).
  u32 threads = 0;  ///< Worker threads (0 = FLEX_THREADS / hardware_concurrency).
  CampaignMode mode = CampaignMode::kSnapshotFork;
  /// Co-simulation engine the sessions run under (FLEX_ENGINE when unset).
  /// Injection placement keys off advance() rendezvous points, so absolute
  /// outcomes at a given seed are engine-specific; snapshot-fork vs
  /// re-execution parity holds within any one engine.
  std::optional<soc::Engine> engine;
};

/// Final classification of one injection — the four-way taxonomy of
/// CFA-class vulnerability analyses. "Undetected" alone is not a class:
/// a fault FlexStep missed may still have perturbed architectural state
/// (SDC) or wedged the machine (DUE), and those must never be conflated
/// with harmless masked flips.
enum class OutcomeKind : u8 {
  kMasked,    ///< No detection, final architectural state matches the golden run.
  kDetected,  ///< A checker reported a mismatch (FlexStep coverage).
  kSdc,       ///< Silent data corruption: undetected AND architecturally diverged.
  kDue,       ///< Detected-unrecoverable: the run wedged (stall / lost alignment).
};

constexpr const char* outcome_kind_name(OutcomeKind k) {
  switch (k) {
    case OutcomeKind::kMasked: return "masked";
    case OutcomeKind::kDetected: return "detected";
    case OutcomeKind::kSdc: return "sdc";
    case OutcomeKind::kDue: return "due";
  }
  return "?";
}

struct FaultOutcome {
  bool detected = false;
  double latency_us = 0.0;                  ///< Valid when detected.
  fs::DetectKind detect_kind{};             ///< Valid when detected.
  fs::StreamItem::Kind target_kind{};       ///< What was corrupted.
  /// Four-way classification. The DBC stream campaign (this file) only
  /// produces kDetected/kMasked — a corrupted stream item never touches
  /// architectural state; the whole-SoC campaign (fault/vuln.h) produces
  /// all four.
  OutcomeKind kind = OutcomeKind::kMasked;
};

struct CampaignStats {
  std::vector<FaultOutcome> outcomes;
  u32 injected = 0;
  u32 detected = 0;
  u32 undetected = 0;  ///< masked + sdc + due (everything FlexStep missed).
  u32 masked = 0;
  u32 sdc = 0;
  u32 due = 0;

  /// Instructions actually executed on the host across every session (baseline
  /// prefixes + per-injection work). A restored snapshot contributes nothing;
  /// a re-executed prefix contributes in full — this is the counter the
  /// snapshot-fork speedup claim is asserted against.
  u64 total_instructions = 0;

  double coverage() const {
    return injected == 0 ? 0.0 : static_cast<double>(detected) / injected;
  }
  /// Silent-data-corruption rate: the fraction of injections FlexStep both
  /// missed and that corrupted architectural state.
  double sdc_rate() const {
    return injected == 0 ? 0.0 : static_cast<double>(sdc) / injected;
  }
  std::vector<double> latencies_us() const;

  /// Record one classified injection (bumps the kind counter + the
  /// detected/undetected rollups and appends the outcome).
  void record(const FaultOutcome& outcome);

  /// Appends another shard's outcomes and folds its counters in. Shards are
  /// merged in ascending shard order so the campaign result is deterministic.
  /// Enforces the classification invariant
  /// masked + detected + sdc + due == injected on the merged result.
  void merge(CampaignStats&& shard);
};

/// Run a campaign on `profile` under dual-core verification. The campaign is
/// split into `campaign.shards` independent shards — each a worker-owned
/// sim::Session sequence hosting its share of `target_faults` injections,
/// seeded from the shard index via runtime::stream_rng — executed on the
/// parallel runtime and merged in shard order. Each shard keeps a clean
/// baseline session and materialises every injection in a disposable session
/// per `campaign.mode` (snapshot-fork by default). Results are bit-identical
/// for a given (seed, shards, mode-independent) at any thread count.
CampaignStats run_fault_campaign(const workloads::WorkloadProfile& profile,
                                 const soc::SocConfig& soc_config,
                                 const CampaignConfig& campaign);

}  // namespace flexstep::fault
