// Fault-injection campaigns (paper Sec. VI-C).
//
// Faults are bit flips in the *forwarded* data — MAL entries and ASS
// checkpoint words queued in a DBC channel — exactly the paper's methodology,
// which perturbs the verification stream without disturbing the main core.
// Detection latency is the simulated time from corruption to the checker's
// mismatch report. One long run hosts many sequential injections.
#pragma once

#include <vector>

#include "common/types.h"
#include "flexstep/error.h"
#include "flexstep/stream.h"
#include "soc/verified_run.h"
#include "workloads/profile.h"

namespace flexstep::fault {

struct CampaignConfig {
  u32 target_faults = 2000;     ///< Injections to perform.
  u64 warmup_rounds = 50'000;   ///< Co-sim steps before the first injection.
  u64 gap_rounds = 3'000;       ///< Steps between fault resolution and next injection.
  u64 seed = 0xF417;
  u32 workload_iterations = 0;  ///< Override profile iterations (0 = default).
};

struct FaultOutcome {
  bool detected = false;
  double latency_us = 0.0;                  ///< Valid when detected.
  fs::DetectKind detect_kind{};             ///< Valid when detected.
  fs::StreamItem::Kind target_kind{};       ///< What was corrupted.
};

struct CampaignStats {
  std::vector<FaultOutcome> outcomes;
  u32 injected = 0;
  u32 detected = 0;
  u32 undetected = 0;  ///< Masked faults (e.g. flip in a dead SCP register).

  double coverage() const {
    return injected == 0 ? 0.0 : static_cast<double>(detected) / injected;
  }
  std::vector<double> latencies_us() const;
};

/// Run a campaign on `profile` under dual-core (or the given) verification.
/// Fresh SoCs are instantiated as needed until `target_faults` injections
/// resolve.
CampaignStats run_fault_campaign(const workloads::WorkloadProfile& profile,
                                 const soc::SocConfig& soc_config,
                                 const CampaignConfig& campaign);

}  // namespace flexstep::fault
