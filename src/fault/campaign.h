// Fault-injection campaigns (paper Sec. VI-C).
//
// Faults are bit flips in the *forwarded* data — MAL entries and ASS
// checkpoint words queued in a DBC channel — exactly the paper's methodology,
// which perturbs the verification stream without disturbing the main core.
// Detection latency is the simulated time from corruption to the checker's
// mismatch report. One long run hosts many sequential injections.
#pragma once

#include <optional>
#include <vector>

#include "common/types.h"
#include "flexstep/error.h"
#include "flexstep/stream.h"
#include "soc/verified_run.h"
#include "workloads/profile.h"

namespace flexstep::io {
class ArchiveWriter;
class ArchiveReader;
}  // namespace flexstep::io

namespace flexstep::sim {
class Session;
}  // namespace flexstep::sim

namespace flexstep::fault {

/// Default shard count for sharded campaigns. Fixed (not derived from the
/// host's core count) because shard structure feeds seed derivation: outcomes
/// depend on `shards`, never on how many threads execute them.
inline constexpr u32 kDefaultCampaignShards = 8;

/// How each injection's pre-fault state is materialised. Every injection runs
/// in a disposable session so its perturbations (checker divergence, reporter
/// events, timing drift) never contaminate the next injection's starting
/// state; the two modes differ only in how that session is produced and are
/// bit-identical outcome-for-outcome (tests/test_sim.cpp holds them to it).
enum class CampaignMode : u8 {
  /// Warm the baseline once, soc::Snapshot it, and fork every injection from
  /// the snapshot (sim::Session::fork). Executes only the baseline prefix
  /// once plus each injection's resolution tail — the checkpointing-mode
  /// campaign structure of CFA/gem5-class frameworks.
  kSnapshotFork,
  /// Reference: rebuild the session and re-execute the whole warmup + gap
  /// prefix for every injection. Orders of magnitude more simulated
  /// instructions at paper-scale warmups; kept as the parity baseline the
  /// snapshot path is verified against (micro_benchmarks --snapshot).
  kWarmupReexecution,
};

struct CampaignConfig {
  u32 target_faults = 2000;     ///< Injections to perform (summed over shards).
  u64 warmup_rounds = 50'000;   ///< Retired instructions before the first injection.
  u64 gap_rounds = 3'000;       ///< Baseline advance between injection points.
  u64 seed = 0xF417;
  u32 workload_iterations = 0;  ///< Override profile iterations (0 = default).
  u32 shards = kDefaultCampaignShards;  ///< Independent campaign shards (>= 1).
  u32 threads = 0;  ///< Worker threads (0 = FLEX_THREADS / hardware_concurrency).
  CampaignMode mode = CampaignMode::kSnapshotFork;
  /// Co-simulation engine the sessions run under (FLEX_ENGINE when unset).
  /// Injection placement keys off advance() rendezvous points, so absolute
  /// outcomes at a given seed are engine-specific; snapshot-fork vs
  /// re-execution parity holds within any one engine.
  std::optional<soc::Engine> engine;
};

/// Final classification of one injection — the four-way taxonomy of
/// CFA-class vulnerability analyses. "Undetected" alone is not a class:
/// a fault FlexStep missed may still have perturbed architectural state
/// (SDC) or wedged the machine (DUE), and those must never be conflated
/// with harmless masked flips.
enum class OutcomeKind : u8 {
  kMasked,    ///< No detection, final architectural state matches the golden run.
  kDetected,  ///< A checker reported a mismatch (FlexStep coverage).
  kSdc,       ///< Silent data corruption: undetected AND architecturally diverged.
  kDue,       ///< Detected-unrecoverable: the run wedged (stall / lost alignment).
};

constexpr const char* outcome_kind_name(OutcomeKind k) {
  switch (k) {
    case OutcomeKind::kMasked: return "masked";
    case OutcomeKind::kDetected: return "detected";
    case OutcomeKind::kSdc: return "sdc";
    case OutcomeKind::kDue: return "due";
  }
  return "?";
}

struct FaultOutcome {
  bool detected = false;
  double latency_us = 0.0;                  ///< Valid when detected.
  fs::DetectKind detect_kind{};             ///< Valid when detected.
  fs::StreamItem::Kind target_kind{};       ///< What was corrupted.
  /// Four-way classification. The DBC stream campaign (this file) only
  /// produces kDetected/kMasked — a corrupted stream item never touches
  /// architectural state; the whole-SoC campaign (fault/vuln.h) produces
  /// all four.
  OutcomeKind kind = OutcomeKind::kMasked;
};

struct CampaignStats {
  std::vector<FaultOutcome> outcomes;
  u32 injected = 0;
  u32 detected = 0;
  u32 undetected = 0;  ///< masked + sdc + due (everything FlexStep missed).
  u32 masked = 0;
  u32 sdc = 0;
  u32 due = 0;

  /// Instructions actually executed on the host across every session (baseline
  /// prefixes + per-injection work). A restored snapshot contributes nothing;
  /// a re-executed prefix contributes in full — this is the counter the
  /// snapshot-fork speedup claim is asserted against.
  u64 total_instructions = 0;

  double coverage() const {
    return injected == 0 ? 0.0 : static_cast<double>(detected) / injected;
  }
  /// Silent-data-corruption rate: the fraction of injections FlexStep both
  /// missed and that corrupted architectural state.
  double sdc_rate() const {
    return injected == 0 ? 0.0 : static_cast<double>(sdc) / injected;
  }
  std::vector<double> latencies_us() const;

  /// Record one classified injection (bumps the kind counter + the
  /// detected/undetected rollups and appends the outcome).
  void record(const FaultOutcome& outcome);

  /// Appends another shard's outcomes and folds its counters in. Shards are
  /// merged in ascending shard order so the campaign result is deterministic.
  /// Enforces the classification invariant
  /// masked + detected + sdc + due == injected on the merged result.
  void merge(CampaignStats&& shard);

  /// Order-sensitive FNV-1a digest of the outcome stream (detected flag,
  /// latency bits, detect/target/outcome kinds). Deliberately EXCLUDES
  /// total_instructions: that counter measures host work, which legitimately
  /// differs between a cold campaign and one resumed from persisted baselines
  /// while the classified outcomes stay bit-identical. The distributed-merge
  /// and resume gates compare this.
  u64 digest() const;

  /// Wire format (shard checkpoint files): the outcome stream + the
  /// total_instructions counter; deserialize() rebuilds every rollup counter
  /// through record(), so a decoded shard satisfies the classification
  /// invariant by construction.
  void serialize(io::ArchiveWriter& ar) const;
  void deserialize(io::ArchiveReader& ar);
};

/// Persistence seam for warmed baseline sessions. A campaign shard asks the
/// store for a baseline keyed by (shard, ordinal, tag) before executing a
/// warmup; on a hit the warmup is elided entirely (restore is bit-exact, so
/// outcomes are unchanged), on a miss the shard executes the warmup and
/// offers the warmed state back. `tag` fingerprints everything the warmed
/// state depends on (profile, seed, shard, session seed, warmup length,
/// iterations, platform), so a stale or foreign file can never be restored.
/// Stores only engage in kSnapshotFork mode — re-execution victims replay the
/// baseline's advance schedule, which a restored baseline never executed.
class BaselineStore {
 public:
  virtual ~BaselineStore() = default;
  /// Restore the keyed baseline into `session` if present and tag-matching.
  virtual bool try_load(u32 shard, u32 ordinal, u64 tag, sim::Session& session) = 0;
  virtual void save(u32 shard, u32 ordinal, u64 tag, const sim::Session& session) = 0;
};

/// Run a campaign on `profile` under dual-core verification. The campaign is
/// split into `campaign.shards` independent shards — each a worker-owned
/// sim::Session sequence hosting its share of `target_faults` injections,
/// seeded from the shard index via runtime::stream_rng — executed on the
/// parallel runtime and merged in shard order. Each shard keeps a clean
/// baseline session and materialises every injection in a disposable session
/// per `campaign.mode` (snapshot-fork by default). Results are bit-identical
/// for a given (seed, shards, mode-independent) at any thread count.
CampaignStats run_fault_campaign(const workloads::WorkloadProfile& profile,
                                 const soc::SocConfig& soc_config,
                                 const CampaignConfig& campaign);

namespace detail {

/// The per-shard quota split run_fault_campaign uses: target_faults divided
/// as evenly as possible over min(shards, target_faults) shards, remainder to
/// the lowest indices. Exposed so the multi-process driver (distributed.h)
/// partitions work identically to the in-process one.
std::vector<u32> shard_quotas(u32 target_faults, u32 shards);

/// Fingerprint of everything a warmed baseline's state depends on (workload
/// identity + build seed, shard seeding, exact warmup length, platform,
/// engine). `salt` separates campaign kinds whose scenarios differ beyond
/// these fields (0 = DBC-stream campaign, 1 = whole-SoC vuln campaign).
u64 baseline_tag(const workloads::WorkloadProfile& profile,
                 const soc::SocConfig& soc_config,
                 const CampaignConfig& campaign, u32 shard_index,
                 u64 session_seed, u64 warmup_rounds, u64 salt);

/// One campaign shard, exactly as run_fault_campaign executes it. Exposed so
/// worker processes can run individual shards; everything random derives from
/// (campaign.seed, shard_index), so a shard's outcome stream is independent
/// of which thread OR process runs it. `baselines` (optional) elides warmups
/// via persisted warmed state — outcomes are unchanged.
CampaignStats run_campaign_shard(const workloads::WorkloadProfile& profile,
                                 const soc::SocConfig& soc_config,
                                 const CampaignConfig& campaign, u32 shard_index,
                                 u32 target_faults,
                                 BaselineStore* baselines = nullptr);

}  // namespace detail

}  // namespace flexstep::fault
