#include "fault/campaign.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"
#include "runtime/parallel.h"
#include "workloads/program_builder.h"

namespace flexstep::fault {

using fs::Channel;
using fs::ErrorReporter;
using soc::Soc;
using soc::VerifiedExecution;
using soc::VerifiedRunConfig;

std::vector<double> CampaignStats::latencies_us() const {
  std::vector<double> out;
  out.reserve(outcomes.size());
  for (const auto& o : outcomes) {
    if (o.detected) out.push_back(o.latency_us);
  }
  return out;
}

void CampaignStats::merge(CampaignStats&& shard) {
  injected += shard.injected;
  detected += shard.detected;
  undetected += shard.undetected;
  outcomes.insert(outcomes.end(), shard.outcomes.begin(), shard.outcomes.end());
}

namespace {

/// Instructions advanced between fault-resolution probes.
constexpr u64 kResolvePollStride = 64;

/// Deterministic pacing jitter added to the warmup and to each inter-fault
/// gap. Without it every injection lands on the same kResolvePollStride grid
/// at the same program phase in every shard, which biases which stream-item
/// kind sits at the channel tail; the serial campaign got its phase diversity
/// for free from resolution-time drift across hundreds of faults. Odd bounds
/// so the jitter breaks the 64-instruction poll grid.
constexpr u64 kWarmupJitter = 4099;
constexpr u64 kGapJitter = 257;

/// One workload execution hosting a sequence of injections.
class Session {
 public:
  Session(const workloads::WorkloadProfile& profile, const soc::SocConfig& soc_config,
          const CampaignConfig& campaign, u64 seed)
      : soc_(soc_config), exec_(soc_, VerifiedRunConfig{0, {1}}) {
    workloads::BuildOptions build;
    build.seed = seed;
    // Long-running program so one session hosts many injections.
    build.iterations_override = campaign.workload_iterations != 0
                                    ? campaign.workload_iterations
                                    : profile.iterations * 40;
    program_ = workloads::build_workload(profile, build);
    exec_.prepare(program_);
  }

  /// Advances the co-sim by ~`rounds` retired instructions (one stepwise
  /// round retired at most one instruction, so the campaign's warmup/gap knobs
  /// keep their meaning) using the quantum engine. Returns false if execution
  /// finished.
  bool advance(u64 rounds) { return exec_.advance(rounds); }

  Channel* channel() {
    auto channels = soc_.fabric().channels();
    return channels.empty() ? nullptr : channels.front();
  }

  ErrorReporter& reporter() { return soc_.fabric().reporter(); }
  Soc& soc() { return soc_; }
  VerifiedExecution& exec() { return exec_; }

 private:
  Soc soc_;
  isa::Program program_;
  VerifiedExecution exec_;
};

/// One shard: a worker-owned Session sequence hosting `target_faults`
/// injections. Everything random derives from (campaign.seed, shard_index),
/// so a shard's outcome stream is independent of which thread runs it.
CampaignStats run_campaign_shard(const workloads::WorkloadProfile& profile,
                                 const soc::SocConfig& soc_config,
                                 const CampaignConfig& campaign, u32 shard_index,
                                 u32 target_faults) {
  CampaignStats stats;
  Rng shard_rng = runtime::stream_rng(campaign.seed, shard_index);
  Rng rng = shard_rng.split();               // fault-placement draws
  Rng pace_rng = shard_rng.split();          // warmup/gap pacing jitter
  u64 session_seed = shard_rng.next_u64();   // workload-build seeds

  while (stats.injected < target_faults) {
    Session session(profile, soc_config, campaign, ++session_seed);
    if (!session.advance(campaign.warmup_rounds + pace_rng.next_below(kWarmupJitter))) {
      continue;  // too short; retry
    }

    while (stats.injected < target_faults) {
      Channel* ch = session.channel();
      if (ch == nullptr) break;

      // Corrupt at the forwarding path (the most recently produced item), as
      // the paper's campaign does — latency then spans the full buffering and
      // replay pipeline.
      const auto fault = ch->inject_fault_at_tail(rng, session.soc().max_cycle());
      if (!fault.has_value()) {
        // Queue momentarily empty — let the main core produce more stream.
        if (!session.advance(512)) break;
        continue;
      }
      ++stats.injected;
      const std::size_t events_before = session.reporter().events().size();

      // Run until the fault resolves: detected (attributed event) or the
      // checker consumed past the fault's segment without complaint.
      FaultOutcome outcome;
      outcome.target_kind = fault->item_kind;
      bool resolved = false;
      bool session_alive = true;
      while (!resolved) {
        // Resolution conditions are sticky (reporter events accumulate, pop
        // sequence numbers are monotone), so the quantum engine may advance a
        // short burst between probes without missing an outcome; detection
        // latency itself is timestamped by the reporter, not by this poll.
        session_alive = session.exec().advance(kResolvePollStride);
        const auto& events = session.reporter().events();
        for (std::size_t i = events_before; i < events.size(); ++i) {
          if (events[i].attributed) {
            outcome.detected = true;
            outcome.latency_us = cycles_to_us(events[i].latency);
            outcome.detect_kind = events[i].kind;
            resolved = true;
            break;
          }
        }
        if (!resolved && !ch->fault_pending()) {
          // Cleared without an attributed event cannot happen (only the
          // reporter clears); guard anyway.
          resolved = true;
        }
        if (!resolved && ch->fault_pending() &&
            ch->pending_fault().segment_end_seq != fs::kUnresolvedSegmentEnd &&
            ch->last_popped_seq() > ch->pending_fault().segment_end_seq) {
          // The segment containing the corruption verified clean: masked.
          ch->clear_fault();
          resolved = true;
        }
        if (!session_alive) {
          // Execution drained with the fault still pending: if the stream is
          // fully consumed, the fault was masked.
          if (ch->fault_pending()) ch->clear_fault();
          resolved = true;
        }
      }
      if (outcome.detected) {
        ++stats.detected;
      } else {
        ++stats.undetected;
      }
      stats.outcomes.push_back(outcome);

      if (!session_alive ||
          !session.advance(campaign.gap_rounds + pace_rng.next_below(kGapJitter))) {
        break;
      }
    }
  }
  return stats;
}

}  // namespace

CampaignStats run_fault_campaign(const workloads::WorkloadProfile& profile,
                                 const soc::SocConfig& soc_config,
                                 const CampaignConfig& campaign) {
  // Shards beyond target_faults would all get a zero quota, so capping here
  // changes no outcome — it only bounds the quota/partials allocations
  // against garbage configs (e.g. a negative CLI argument wrapped to u32).
  const u32 shards =
      std::clamp<u32>(campaign.shards, 1, std::max<u32>(1, campaign.target_faults));
  // Shard quotas: target_faults split as evenly as possible, the remainder
  // going to the lowest shard indices. The split depends only on the config.
  std::vector<u32> quota(shards);
  for (u32 s = 0; s < shards; ++s) {
    quota[s] = campaign.target_faults / shards +
               (s < campaign.target_faults % shards ? 1 : 0);
  }

  auto shard_job = [&](std::size_t s) {
    return quota[s] == 0
               ? CampaignStats{}
               : run_campaign_shard(profile, soc_config, campaign,
                                    static_cast<u32>(s), quota[s]);
  };
  auto fold = [](CampaignStats& acc, CampaignStats&& part) {
    acc.merge(std::move(part));
  };
  if (campaign.threads != 0) {
    runtime::JobPool pool(campaign.threads);
    return runtime::parallel_accumulate(pool, shards, CampaignStats{}, shard_job, fold);
  }
  return runtime::parallel_accumulate(shards, CampaignStats{}, shard_job, fold);
}

}  // namespace flexstep::fault
