#include "fault/campaign.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/archive.h"
#include "common/check.h"
#include "common/rng.h"
#include "runtime/parallel.h"
#include "sim/scenario.h"

namespace flexstep::fault {

using fs::Channel;

std::vector<double> CampaignStats::latencies_us() const {
  std::vector<double> out;
  out.reserve(outcomes.size());
  for (const auto& o : outcomes) {
    if (o.detected) out.push_back(o.latency_us);
  }
  return out;
}

void CampaignStats::record(const FaultOutcome& outcome) {
  ++injected;
  switch (outcome.kind) {
    case OutcomeKind::kDetected:
      ++detected;
      break;
    case OutcomeKind::kMasked:
      ++masked;
      ++undetected;
      break;
    case OutcomeKind::kSdc:
      ++sdc;
      ++undetected;
      break;
    case OutcomeKind::kDue:
      ++due;
      ++undetected;
      break;
  }
  outcomes.push_back(outcome);
}

void CampaignStats::merge(CampaignStats&& shard) {
  injected += shard.injected;
  detected += shard.detected;
  undetected += shard.undetected;
  masked += shard.masked;
  sdc += shard.sdc;
  due += shard.due;
  total_instructions += shard.total_instructions;
  outcomes.insert(outcomes.end(), shard.outcomes.begin(), shard.outcomes.end());
  FLEX_CHECK_MSG(masked + detected + sdc + due == injected,
                 "campaign classification invariant violated: "
                 "masked + detected + sdc + due != injected");
}

u64 CampaignStats::digest() const {
  u64 h = 14695981039346656037ULL;
  const auto mix = [&h](u64 v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xFF;
      h *= 1099511628211ULL;
    }
  };
  for (const FaultOutcome& o : outcomes) {
    mix(o.detected ? 1 : 0);
    u64 latency_bits = 0;
    std::memcpy(&latency_bits, &o.latency_us, sizeof(latency_bits));
    mix(latency_bits);
    mix(static_cast<u64>(o.detect_kind));
    mix(static_cast<u64>(o.target_kind));
    mix(static_cast<u64>(o.kind));
  }
  return h;
}

void CampaignStats::serialize(io::ArchiveWriter& ar) const {
  ar.put_varint(outcomes.size());
  for (const FaultOutcome& o : outcomes) {
    ar.put_bool(o.detected);
    ar.put_f64(o.latency_us);
    ar.put_u8(static_cast<u8>(o.detect_kind));
    ar.put_u8(static_cast<u8>(o.target_kind));
    ar.put_u8(static_cast<u8>(o.kind));
  }
  ar.put_varint(total_instructions);
}

void CampaignStats::deserialize(io::ArchiveReader& ar) {
  *this = CampaignStats{};
  const u64 count = ar.take_count(12);
  for (u64 i = 0; ar.ok() && i < count; ++i) {
    FaultOutcome o;
    o.detected = ar.take_bool();
    o.latency_us = ar.take_f64();
    const u8 detect = ar.take_u8();
    const u8 target = ar.take_u8();
    const u8 kind = ar.take_u8();
    if (ar.ok() && (detect > static_cast<u8>(fs::DetectKind::kStructural) ||
                    target > static_cast<u8>(fs::StreamItem::Kind::kSegmentEnd) ||
                    kind > static_cast<u8>(OutcomeKind::kDue))) {
      ar.fail(io::ArchiveStatus::kMalformed, "fault outcome kind out of domain");
    }
    o.detect_kind = static_cast<fs::DetectKind>(detect);
    o.target_kind = static_cast<fs::StreamItem::Kind>(target);
    o.kind = static_cast<OutcomeKind>(kind);
    if (ar.ok()) record(o);
  }
  total_instructions = ar.take_varint();
}

namespace {

/// Instructions advanced between fault-resolution probes.
constexpr u64 kResolvePollStride = 64;

/// Deterministic pacing jitter added to the warmup and to each inter-fault
/// gap. Without it every injection lands on the same kResolvePollStride grid
/// at the same program phase in every shard, which biases which stream-item
/// kind sits at the channel tail. Odd bounds so the jitter breaks the
/// 64-instruction poll grid.
constexpr u64 kWarmupJitter = 4099;
constexpr u64 kGapJitter = 257;

/// Consecutive sessions allowed to die inside the warmup before the campaign
/// aborts instead of silently looping on a pathological profile.
constexpr u32 kMaxWarmupRetries = 16;

/// The shared session shape: one long-running workload execution (so one
/// baseline hosts many injection points) under dual-core verification.
sim::Scenario campaign_scenario(const workloads::WorkloadProfile& profile,
                                const soc::SocConfig& soc_config,
                                const CampaignConfig& campaign, u64 seed) {
  sim::Scenario scenario;
  scenario.workload(profile)
      .seed(seed)
      .iterations(campaign.workload_iterations != 0 ? campaign.workload_iterations
                                                    : profile.iterations * 40)
      .soc(soc_config)
      .main_core(0)
      .checkers({1});
  if (campaign.engine.has_value()) scenario.engine(*campaign.engine);
  return scenario;
}

/// Corrupt the tail of `victim`'s DBC stream and run until the fault resolves:
/// detected (attributed reporter event) or masked (the corrupted item's
/// segment verified clean, or the run drained). The victim is disposable;
/// the caller never advances it again.
FaultOutcome run_injection(sim::Session& victim, Rng& rng) {
  Channel* ch = victim.channel();
  FLEX_CHECK(ch != nullptr);
  // Corrupt at the forwarding path (the most recently produced item), as the
  // paper's campaign does — latency then spans the full buffering and replay
  // pipeline. The baseline guaranteed a queued item before materialising us.
  const auto fault = ch->inject_fault_at_tail(rng, victim.soc().max_cycle());
  FLEX_CHECK_MSG(fault.has_value(), "injection point had no queued stream item");
  const std::size_t events_before = victim.reporter().events().size();

  FaultOutcome outcome;
  outcome.target_kind = fault->item_kind;
  bool resolved = false;
  while (!resolved) {
    // Resolution conditions are sticky (reporter events accumulate, pop
    // sequence numbers are monotone), so the quantum engine may advance a
    // short burst between probes without missing an outcome; detection
    // latency itself is timestamped by the reporter, not by this poll.
    const bool alive = victim.advance(kResolvePollStride);
    const auto& events = victim.reporter().events();
    for (std::size_t i = events_before; i < events.size(); ++i) {
      if (events[i].attributed) {
        outcome.detected = true;
        outcome.latency_us = cycles_to_us(events[i].latency);
        outcome.detect_kind = events[i].kind;
        outcome.kind = OutcomeKind::kDetected;
        resolved = true;
        break;
      }
    }
    if (!resolved && !ch->fault_pending()) {
      // Cleared without an attributed event cannot happen (only the reporter
      // clears); guard anyway.
      resolved = true;
    }
    if (!resolved && ch->fault_pending() &&
        ch->pending_fault().segment_end_seq != fs::kUnresolvedSegmentEnd &&
        ch->last_popped_seq() > ch->pending_fault().segment_end_seq) {
      // The segment containing the corruption verified clean: masked.
      ch->clear_fault();
      resolved = true;
    }
    if (!alive) {
      // Execution drained with the fault still pending: if the stream is
      // fully consumed, the fault was masked.
      if (ch->fault_pending()) ch->clear_fault();
      resolved = true;
    }
  }
  return outcome;
}

}  // namespace

namespace detail {

/// A BaselineStore hit is honoured only on an exact tag match, so stale
/// files from another configuration re-warm instead of corrupting the
/// campaign.
u64 baseline_tag(const workloads::WorkloadProfile& profile,
                 const soc::SocConfig& soc_config,
                 const CampaignConfig& campaign, u32 shard_index,
                 u64 session_seed, u64 warmup_rounds, u64 salt) {
  u64 h = 14695981039346656037ULL;
  const auto mix_bytes = [&h](const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 1099511628211ULL;
    }
  };
  const auto mix = [&](u64 v) { mix_bytes(&v, sizeof(v)); };
  mix_bytes(profile.name.data(), profile.name.size());
  mix(campaign.seed);
  mix(shard_index);
  mix(session_seed);
  mix(warmup_rounds);
  mix(campaign.workload_iterations);
  mix(soc_config.num_cores);
  mix(static_cast<u64>(campaign.engine.value_or(soc::default_engine())));
  mix(salt);
  return h;
}

std::vector<u32> shard_quotas(u32 target_faults, u32 shards) {
  // Shards beyond target_faults would all get a zero quota, so capping here
  // changes no outcome — it only bounds the allocations.
  const u32 n = std::min<u32>(shards, target_faults);
  std::vector<u32> quota(n);
  for (u32 s = 0; s < n; ++s) {
    quota[s] = target_faults / n + (s < target_faults % n ? 1 : 0);
  }
  return quota;
}

/// One shard: a clean baseline session walks warmup + inter-injection gaps;
/// every injection runs in a disposable session materialised at the baseline's
/// current state — restored from a snapshot (kSnapshotFork) or re-executed
/// from scratch (kWarmupReexecution). Everything random derives from
/// (campaign.seed, shard_index), so a shard's outcome stream is independent
/// of which thread or process runs it — and of the materialisation mode.
CampaignStats run_campaign_shard(const workloads::WorkloadProfile& profile,
                                 const soc::SocConfig& soc_config,
                                 const CampaignConfig& campaign, u32 shard_index,
                                 u32 target_faults, BaselineStore* baselines) {
  CampaignStats stats;
  Rng shard_rng = runtime::stream_rng(campaign.seed, shard_index);
  Rng rng = shard_rng.split();               // fault-placement draws
  Rng pace_rng = shard_rng.split();          // warmup/gap pacing jitter
  u64 session_seed = shard_rng.next_u64();   // workload-build seeds

  const bool fork_mode = campaign.mode == CampaignMode::kSnapshotFork;
  // Stores only engage in fork mode: re-execution victims replay the
  // baseline's advance schedule, which a restored baseline never executed.
  BaselineStore* store = fork_mode ? baselines : nullptr;
  u32 failed_warmups = 0;
  u32 ordinal = 0;  ///< Successful warmups so far — the store key.

  while (stats.injected < target_faults) {
    const sim::Scenario scenario =
        campaign_scenario(profile, soc_config, campaign, ++session_seed);
    sim::Session baseline = scenario.build();
    // Every baseline advance is recorded so the re-execution mode can replay
    // the exact prefix; the fork mode snapshots its end state instead.
    std::vector<u64> schedule;
    auto baseline_advance = [&](u64 rounds) {
      schedule.push_back(rounds);
      return baseline.advance(rounds);
    };

    // The warmup draw happens unconditionally (the pace_rng stream must not
    // depend on store hits), and its length is part of the baseline tag.
    const u64 warmup = campaign.warmup_rounds + pace_rng.next_below(kWarmupJitter);
    u64 baseline_restored = 0;  ///< Instret restored (not executed) from the store.
    bool warm = false;
    if (store != nullptr) {
      const u64 tag = baseline_tag(profile, soc_config, campaign, shard_index,
                                   session_seed, warmup, /*salt=*/0);
      if (store->try_load(shard_index, ordinal, tag, baseline)) {
        baseline_restored = baseline.total_instret();
        warm = true;
      } else if ((warm = baseline_advance(warmup))) {
        store->save(shard_index, ordinal, tag, baseline);
      }
      if (warm) ++ordinal;
    } else {
      warm = baseline_advance(warmup);
    }
    if (!warm) {
      stats.total_instructions += baseline.total_instret();
      ++failed_warmups;
      FLEX_CHECK_MSG(failed_warmups < kMaxWarmupRetries,
                     "fault campaign: workload exhausts before warmup_rounds "
                     "completes (profile too short) — raise workload_iterations "
                     "or lower warmup_rounds");
      continue;  // next seed builds a fresh (differently shaped) workload
    }
    failed_warmups = 0;

    bool session_alive = true;
    while (session_alive && stats.injected < target_faults) {
      // The injection corrupts the most recently forwarded item; make sure
      // one is queued at the baseline's injection point.
      Channel* ch = baseline.channel();
      if (ch == nullptr) break;
      while (ch->empty()) {
        if (!(session_alive = baseline_advance(512))) break;
      }
      if (!session_alive) break;

      // Materialise the disposable pre-injection session.
      sim::Session victim = fork_mode ? baseline.fork() : scenario.build();
      u64 restored_instructions = 0;
      if (fork_mode) {
        restored_instructions = victim.total_instret();  // restored, not executed
      } else {
        for (u64 rounds : schedule) victim.advance(rounds);
      }

      const FaultOutcome outcome = run_injection(victim, rng);
      stats.record(outcome);
      stats.total_instructions += victim.total_instret() - restored_instructions;

      // Advance the clean baseline to the next injection point.
      session_alive = baseline_advance(campaign.gap_rounds +
                                       pace_rng.next_below(kGapJitter));
    }
    stats.total_instructions += baseline.total_instret() - baseline_restored;
  }
  return stats;
}

}  // namespace detail

CampaignStats run_fault_campaign(const workloads::WorkloadProfile& profile,
                                 const soc::SocConfig& soc_config,
                                 const CampaignConfig& campaign) {
  // Validate up front: a zero in any of these silently degenerates the
  // campaign (no shards to run, nothing to inject, or injection points all
  // landing at cycle 0) — fail loudly instead of producing an empty report.
  FLEX_CHECK_MSG(campaign.shards >= 1,
                 "fault campaign: shards must be >= 1 (got 0)");
  FLEX_CHECK_MSG(campaign.target_faults > 0,
                 "fault campaign: target_faults must be > 0");
  FLEX_CHECK_MSG(campaign.warmup_rounds > 0 && campaign.gap_rounds > 0,
                 "fault campaign: warmup_rounds and gap_rounds need a nonzero "
                 "horizon");
  // Shard quotas: target_faults split as evenly as possible, the remainder
  // going to the lowest shard indices. The split depends only on the config
  // and is shared with the multi-process driver (fault/distributed.h).
  const std::vector<u32> quota =
      detail::shard_quotas(campaign.target_faults, campaign.shards);
  const u32 shards = static_cast<u32>(quota.size());

  auto shard_job = [&](std::size_t s) {
    return quota[s] == 0
               ? CampaignStats{}
               : detail::run_campaign_shard(profile, soc_config, campaign,
                                            static_cast<u32>(s), quota[s]);
  };
  auto fold = [](CampaignStats& acc, CampaignStats&& part) {
    acc.merge(std::move(part));
  };
  if (campaign.threads != 0) {
    runtime::JobPool pool(campaign.threads);
    return runtime::parallel_accumulate(pool, shards, CampaignStats{}, shard_job, fold);
  }
  return runtime::parallel_accumulate(shards, CampaignStats{}, shard_job, fold);
}

}  // namespace flexstep::fault
