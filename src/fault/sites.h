// Uniform microarchitectural fault-site abstraction over the whole SoC.
//
// CFA-class vulnerability frameworks enumerate *state elements* — every
// flip-flop-equivalent bit of every component — and flip one (site, bit) per
// injection. This header gives the repository the same uniform handle: a
// FaultSite names one bit of one indexable element of one component class,
// and flip() routes it to the owning component's adapter (arch::Memory,
// arch::Cache, arch::BranchPredictor, fs::Channel, fs::CoreUnit, the cores'
// architectural registers). All flips are pure XOR and therefore self-inverse:
// flipping the same site twice restores bit-identical SoC state, which the
// round-trip unit tests pin via snapshot_digest().
//
// Components deliberately span the detection spectrum of the paper's
// threat model:
//   * kArchReg / kMemory   — architectural state; escapes FlexStep when the
//     corruption never flows through a checked segment (SDC candidates);
//   * kCacheTag / kBranchPred — timing-only microarchitecture (masked);
//   * kDbcEntry / kDbcMeta — the forwarded verification stream itself
//     (FlexStep's detection substrate);
//   * kCheckerState        — the checker's own RCPM/ASS latches (strikes
//     inside the monitoring hardware).
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "common/rng.h"
#include "common/types.h"

namespace flexstep::soc {
class Soc;
struct Snapshot;
u64 snapshot_digest(const Snapshot& snapshot);
}  // namespace flexstep::soc

namespace flexstep::fault {

/// SoC component classes whose state is enumerable as fault sites.
enum class Component : u8 {
  kArchReg,       ///< Per-core architectural registers (pc + x1..x31).
  kMemory,        ///< Resident 8-byte words of the flat physical memory.
  kCacheTag,      ///< L1I/L1D/L2 tag-array ways (tag + valid sentinel).
  kBranchPred,    ///< BHT counters, BTB entries, RAS slots.
  kDbcEntry,      ///< Queued DBC stream items (MAL entries, SCP/ECP words).
  kDbcMeta,       ///< DBC segment metadata (inst_count / ready_at / end_seq).
  kCheckerState,  ///< Checker-side replay latches (pending SCP, ASS ctx, IC).
};

inline constexpr std::size_t kComponentCount = 7;

constexpr const char* component_name(Component c) {
  switch (c) {
    case Component::kArchReg: return "reg";
    case Component::kMemory: return "mem";
    case Component::kCacheTag: return "cache-tag";
    case Component::kBranchPred: return "bpred";
    case Component::kDbcEntry: return "dbc-entry";
    case Component::kDbcMeta: return "dbc-meta";
    case Component::kCheckerState: return "checker";
  }
  return "?";
}

/// One injectable state bit: element `index` of `component`, bit `bit`,
/// struck at simulated time `cycle` (bookkeeping — the flip itself is applied
/// by the campaign at that moment; nothing is scheduled).
struct FaultSite {
  Component component = Component::kArchReg;
  u64 index = 0;
  u64 bit = 0;
  Cycle cycle = 0;

  friend bool operator==(const FaultSite&, const FaultSite&) = default;
};

/// Number of indexable elements `component` currently exposes on `soc`.
/// Memory and DBC spaces grow as the run touches pages / queues items, so the
/// count is a property of the SoC's current state, not of its config.
u64 site_index_count(soc::Soc& soc, Component component);

/// Flippable bits of the element `site.index` names (site.bit is ignored).
u64 site_bit_count(soc::Soc& soc, const FaultSite& site);

/// XOR the addressed bit in the live SoC. Self-inverse; performs no campaign
/// bookkeeping (detection attribution is the vulnerability framework's job).
void flip(soc::Soc& soc, const FaultSite& site);

/// Uniform draw over `component`'s current (index, bit) space; cycle is
/// stamped with soc.max_cycle(). Requires site_index_count(...) > 0.
FaultSite random_site(soc::Soc& soc, Component component, Rng& rng);

/// Human-readable round-trippable form: "<component> i<index> b<bit> @<cycle>".
std::string describe(const FaultSite& site);

/// Outcome of parsing a site description: the site on success, otherwise a
/// diagnostic naming which part of the text failed. Parsing never aborts —
/// campaign manifests and CLI arguments are untrusted input.
struct ParseSiteResult {
  std::optional<FaultSite> site;
  std::string error;  ///< Empty on success.

  bool ok() const { return site.has_value(); }
};

/// Inverse of describe(), with a structured diagnostic on failure.
ParseSiteResult parse_site_checked(std::string_view text);

/// Inverse of describe(); nullopt when the text does not parse.
inline std::optional<FaultSite> parse_site(std::string_view text) {
  return parse_site_checked(text).site;
}

/// Field-wise FNV-1a digest of a full SoC snapshot. The implementation lives
/// in src/soc/ with the snapshot type so every digest user — fault gates,
/// snapshot-file identity tests, the distributed campaign merge check —
/// shares one definition; re-exported here so existing fault-layer callers
/// keep compiling unchanged (and stay unambiguous against ADL, which also
/// finds the soc:: name through the argument type).
using soc::snapshot_digest;

}  // namespace flexstep::fault
