// Analytic 28 nm power/area model (paper Sec. VI-D/E, Fig. 8, Tab. III).
//
// The paper's numbers come from Design Compiler + PrimeTime PX runs on TSMC
// 28 nm; neither tool nor PDK is available here, so this model reproduces the
// published absolutes from a component-level calibration:
//   vanilla 4-core SoC  = 2.71 mm² / 0.485 W   (Tab. III)
//   FlexStep 4-core SoC = 2.77 mm² / 0.499 W   (+2.21% / +2.89%)
// which decomposes into per-core and shared-L2 contributions that also match
// the Fig. 8 2-core and 32-core endpoints. FlexStep's adders scale with the
// configured storage (CPC 8 B + ASS 518 B + DBC 1088 B = 1614 B by default).
#pragma once

#include "common/types.h"
#include "flexstep/config.h"

namespace flexstep::model {

struct SocPowerArea {
  double area_mm2 = 0.0;
  double power_w = 0.0;
};

struct PowerAreaModel {
  // ---- calibrated 28 nm constants (see header) ----
  double core_area_mm2 = 0.34;   ///< Rocket + L1I + L1D.
  double core_power_w = 0.094;
  double l2_area_mm2 = 1.35;     ///< Shared 512 KB L2.
  double l2_power_w = 0.109;

  /// 28 nm SRAM density / leakage+dynamic for the FlexStep storage macros.
  double sram_mm2_per_kb = 0.0055;
  double sram_w_per_kb = 0.0013;
  /// Fixed comparator/control logic per core (CPC counters, value match,
  /// MUX-DEMUX slice of the interconnect).
  double flexstep_logic_mm2 = 0.0061;
  double flexstep_logic_w = 0.0014;

  /// FlexStep per-core storage in bytes for a given DBC FIFO depth.
  static u32 storage_bytes(const fs::FlexStepConfig& config);

  SocPowerArea vanilla(u32 cores) const;
  SocPowerArea flexstep(u32 cores,
                        const fs::FlexStepConfig& config = fs::FlexStepConfig{}) const;

  /// Relative overhead of FlexStep vs vanilla at `cores`.
  double area_overhead(u32 cores) const;
  double power_overhead(u32 cores) const;
};

}  // namespace flexstep::model
