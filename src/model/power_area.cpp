#include "model/power_area.h"

namespace flexstep::model {

u32 PowerAreaModel::storage_bytes(const fs::FlexStepConfig& config) {
  (void)config;
  // The SRAM FIFO is fixed at 64 entries × 17 B regardless of the DMA spill
  // threshold (spill lives in main memory); CPC + ASS are fixed-function.
  return fs::kCpcStorageBytes + fs::kAssStorageBytes + fs::kDbcStorageBytes;
}

SocPowerArea PowerAreaModel::vanilla(u32 cores) const {
  SocPowerArea result;
  result.area_mm2 = cores * core_area_mm2 + l2_area_mm2;
  result.power_w = cores * core_power_w + l2_power_w;
  return result;
}

SocPowerArea PowerAreaModel::flexstep(u32 cores, const fs::FlexStepConfig& config) const {
  SocPowerArea result = vanilla(cores);
  const double kb = storage_bytes(config) / 1024.0;
  const double per_core_area = kb * sram_mm2_per_kb + flexstep_logic_mm2;
  const double per_core_power = kb * sram_w_per_kb + flexstep_logic_w;
  result.area_mm2 += cores * per_core_area;
  result.power_w += cores * per_core_power;
  return result;
}

double PowerAreaModel::area_overhead(u32 cores) const {
  return flexstep(cores).area_mm2 / vanilla(cores).area_mm2 - 1.0;
}

double PowerAreaModel::power_overhead(u32 cores) const {
  return flexstep(cores).power_w / vanilla(cores).power_w - 1.0;
}

}  // namespace flexstep::model
