#include "soc/soc_config.h"

#include <cstdio>
#include <cstdlib>
#include <string_view>

namespace flexstep::soc {

namespace {
/// FLEX_TRACE=0 disables the superinstruction trace cache fleet-wide (A/B
/// measurement, bisecting). Read once: the answer must not change between two
/// Scenario builds that are expected to evolve bit-identically.
bool trace_env_enabled() {
  static const bool enabled = [] {
    const char* value = std::getenv("FLEX_TRACE");
    return value == nullptr || std::string_view(value) != "0";
  }();
  return enabled;
}
}  // namespace

SocConfig SocConfig::paper_default(u32 cores) {
  SocConfig config;
  config.num_cores = cores;
  config.core.trace.enabled = trace_env_enabled();
  return config;
}

std::string SocConfig::describe() const {
  char buf[1024];
  std::snprintf(
      buf, sizeof buf,
      "Homogeneous Core\n"
      "  Core          In-order scalar Rocket-class, @%.1fGHz, %u cores\n"
      "  Pipeline      5-stage, 1 ALU, 1 DIV (33-cycle), 1 MUL (4-cycle)\n"
      "  Branch Pred.  %u-entry BHT, %u-entry BTB, %u-entry RAS\n"
      "Memory Hierarchy\n"
      "  L1 I-Cache    %u KB, %u-way, Blocking, %llu LatencyCycles\n"
      "  L1 D-Cache    %u KB, %u-way, Blocking, %llu LatencyCycles\n"
      "  L2 Cache      %u KB, %u-way, shared, %llu LatencyCycles\n"
      "FlexStep\n"
      "  Segment limit %u instructions; channel capacity %llu entries;\n"
      "  channel latency %llu cycles; checkpoint stall %llu cycles\n",
      kClockHz / 1e9, num_cores, core.bpred.bht_entries, core.bpred.btb_entries,
      core.bpred.ras_entries, core.l1i.size_bytes / 1024, core.l1i.ways,
      static_cast<unsigned long long>(core.l1i.latency), core.l1d.size_bytes / 1024,
      core.l1d.ways, static_cast<unsigned long long>(core.l1d.latency),
      l2.size_bytes / 1024, l2.ways, static_cast<unsigned long long>(l2.latency),
      flexstep.segment_limit, static_cast<unsigned long long>(flexstep.channel_capacity),
      static_cast<unsigned long long>(flexstep.channel_latency),
      static_cast<unsigned long long>(flexstep.checkpoint_stall));
  return buf;
}

}  // namespace flexstep::soc
