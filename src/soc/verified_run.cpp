#include "soc/verified_run.h"

#include <algorithm>
#include <cstdlib>
#include <string_view>

#include "common/check.h"
#include "common/log.h"
#include "isa/instruction.h"
#include "soc/snapshot.h"

namespace flexstep::soc {

using arch::Core;
using arch::TrapAction;
using arch::TrapCause;
using fs::CoreUnit;

Engine default_engine() {
  // Read once: the answer must not change between two Scenario builds that
  // are expected to evolve bit-identically (same rule as FLEX_TRACE).
  static const Engine engine = [] {
    const char* value = std::getenv("FLEX_ENGINE");
    if (value == nullptr || *value == '\0') return Engine::kQuantum;
    const std::string_view name(value);
    if (name == "stepwise") return Engine::kStepwise;
    if (name == "quantum") return Engine::kQuantum;
    if (name == "bounded" || name == "quantum_bounded") {
      return Engine::kQuantumBounded;
    }
    FLEX_CHECK_MSG(false,
                   "FLEX_ENGINE must be one of stepwise / quantum / bounded");
    return Engine::kQuantum;
  }();
  return engine;
}

const char* engine_name(Engine engine) {
  switch (engine) {
    case Engine::kStepwise: return "stepwise";
    case Engine::kQuantum: return "quantum";
    case Engine::kQuantumBounded: return "bounded";
  }
  return "?";
}

VerifiedExecution::VerifiedExecution(Soc& soc, VerifiedRunConfig config)
    : soc_(soc), config_(std::move(config)) {
  // Normalize the topology: legacy (main_core, checkers) configs become the
  // one-role lattice; explicit roles take over and mirror roles[0] back into
  // the legacy fields so config().main_core keeps meaning "first producer".
  roles_ = config_.roles;
  if (roles_.empty()) roles_.push_back({config_.main_core, config_.checkers});
  config_.main_core = roles_.front().producer;
  config_.checkers = roles_.front().checkers;

  core_role_.assign(soc_.num_cores(), -1);
  producer_halted_.assign(roles_.size(), false);
  u64 producer_mask = 0;
  u64 checker_mask = 0;
  for (std::size_t r = 0; r < roles_.size(); ++r) {
    const RoleBinding& role = roles_[r];
    FLEX_CHECK_MSG(role.producer < soc_.num_cores(),
                   "role producer out of range");
    FLEX_CHECK_MSG(role.producer < 64, "G.Configure masks hold core ids 0..63");
    FLEX_CHECK_MSG((producer_mask & (u64{1} << role.producer)) == 0,
                   "duplicate producer across roles");
    producer_mask |= u64{1} << role.producer;
    core_role_[role.producer] = static_cast<i32>(r);
    for (CoreId checker : role.checkers) {
      FLEX_CHECK_MSG(checker < soc_.num_cores(), "role checker out of range");
      FLEX_CHECK_MSG(checker < 64, "G.Configure masks hold core ids 0..63");
      if ((checker_mask & (u64{1} << checker)) == 0) {
        checker_mask |= u64{1} << checker;
        checker_ids_.push_back(checker);
      }
    }
  }
  // G.Configure's mask registers are disjoint: no core both produces and
  // checks within one run.
  FLEX_CHECK_MSG((producer_mask & checker_mask) == 0,
                 "a core cannot be both producer and checker in one run");
  for (const RoleBinding& role : roles_) sched_order_.push_back(role.producer);
  sched_order_.insert(sched_order_.end(), checker_ids_.begin(),
                      checker_ids_.end());

  const fs::FlexStepConfig& fs_config = soc_.config().flexstep;
  skew_insts_ = config_.skew_instructions != 0
                    ? config_.skew_instructions
                    : std::max<u64>(fs_config.segment_limit,
                                    fs_config.channel_capacity / 2);
  FLEX_CHECK(skew_insts_ > 0);
}

VerifiedExecution::~VerifiedExecution() = default;

void VerifiedExecution::install_driver_wiring() {
  for (const RoleBinding& role : roles_) {
    soc_.core(role.producer).set_trap_handler(this);
  }
  for (CoreId id : checker_ids_) {
    soc_.core(id).set_trap_handler(this);
    soc_.unit(id).set_on_segment_done([](CoreUnit& unit, bool) {
      // Start the next pending segment immediately, otherwise park.
      if (unit.segment_ready(unit.core().cycle())) {
        unit.begin_replay();
      } else {
        unit.core().set_idle();
      }
    });
  }
}

void VerifiedExecution::prepare(const isa::Program& program) {
  FLEX_CHECK_MSG(roles_.size() == 1,
                 "multi-producer topologies need one program per producer "
                 "(prepare(vector) overload)");
  prepare(std::vector<isa::Program>{program});
}

void VerifiedExecution::prepare(const std::vector<isa::Program>& programs) {
  FLEX_CHECK_MSG(!prepared_, "prepare called twice");
  FLEX_CHECK_MSG(programs.size() == roles_.size(),
                 "need exactly one program per producer role");
  prepared_ = true;

  for (const isa::Program& program : programs) {
    if (soc_.images().find(program.entry()) == nullptr) {
      soc_.load_program(program);
    }
  }

  install_driver_wiring();
  for (std::size_t r = 0; r < roles_.size(); ++r) {
    Core& producer = soc_.core(roles_[r].producer);
    producer.set_user_mode(false);  // kernel performs the setup
    producer.set_pc(programs[r].entry());
    // Conventional initial registers: x2 = stack-ish scratch, x10 = data base.
    producer.set_reg(10, programs[r].data_base);
  }
  if (config_.os_ticks) {
    // Staggered phases: cores enter kernel mode at different times, the
    // "execution inconsistency" the paper identifies (Sec. VI-A). One global
    // phase counter over (producers..., checkers...) keeps the legacy
    // single-role stagger bit-identical.
    u32 phase = 0;
    for (CoreId id : sched_order_) {
      soc_.core(id).set_timer(config_.tick_period +
                              phase++ * config_.tick_period / 4);
    }
  }

  if (!checker_ids_.empty()) {
    // G.Configure: write the producer/checker ID sets into the global
    // registers (union across every role; the masks are disjoint).
    u64 producer_mask = 0;
    u64 checker_mask = 0;
    for (const RoleBinding& role : roles_) {
      producer_mask |= u64{1} << role.producer;
      for (CoreId c : role.checkers) checker_mask |= u64{1} << c;
    }
    Core& first = soc_.core(roles_.front().producer);
    first.set_reg(5, producer_mask);
    first.set_reg(6, checker_mask);
    first.exec_kernel_instruction(isa::make_r(isa::Opcode::kGConfigure, 0, 5, 6));

    // Checker side: C.check_state(busy) + C.record, then wait for SCPs.
    for (CoreId id : checker_ids_) {
      Core& checker = soc_.core(id);
      checker.set_user_mode(false);
      checker.exec_kernel_instruction(
          isa::make_i(isa::Opcode::kCCheckState, 0, 0, 1));
      checker.set_idle();  // parked until a segment is ready
    }

    // M.associate + M.check.enable per producer, in role order — a shared
    // checker therefore attaches the first role's channel and waitlists the
    // rest in role order (deterministic arbitration FIFO). The enable
    // snapshots the already-installed user context as the first SCP.
    for (const RoleBinding& role : roles_) {
      if (role.checkers.empty()) continue;
      u64 role_mask = 0;
      for (CoreId c : role.checkers) role_mask |= u64{1} << c;
      Core& producer = soc_.core(role.producer);
      producer.set_reg(6, role_mask);
      producer.exec_kernel_instruction(
          isa::make_r(isa::Opcode::kMAssociate, 0, 6, 0));
      producer.exec_kernel_instruction(
          isa::make_i(isa::Opcode::kMCheck, 0, 0, 1));
    }
  }

  for (const RoleBinding& role : roles_) {
    Core& producer = soc_.core(role.producer);
    producer.set_user_mode(true);
    producer.activate();
  }
}

void VerifiedExecution::save(Snapshot& out) const {
  soc_.save(out);
  out.exec_prepared = prepared_;
  out.exec_halted_mask = 0;
  for (std::size_t r = 0; r < roles_.size(); ++r) {
    if (producer_halted_[r]) out.exec_halted_mask |= u64{1} << roles_[r].producer;
  }
}

Snapshot VerifiedExecution::save() const {
  Snapshot out;
  save(out);
  return out;
}

void VerifiedExecution::restore(const Snapshot& snapshot) {
  soc_.restore(snapshot);
  prepared_ = snapshot.exec_prepared;
  for (std::size_t r = 0; r < roles_.size(); ++r) {
    producer_halted_[r] =
        (snapshot.exec_halted_mask & (u64{1} << roles_[r].producer)) != 0;
  }
  stalled_ = false;  // stall state is not snapshotted: a rewound run re-derives it
  // A freshly constructed driver (fork path) has never wired itself into the
  // cores; an in-place restore re-asserts the same pointers harmlessly.
  install_driver_wiring();
}

TrapAction VerifiedExecution::on_trap(Core& core, TrapCause cause) {
  switch (cause) {
    case TrapCause::kEcall:
      // Workload kernel excursion (modelled cost), then back to user mode.
      return {TrapAction::Kind::kResumeUser, config_.ecall_cost};

    case TrapCause::kTaskExit: {
      const i32 role = role_of(core.id());
      if (role >= 0) {
        if (!roles_[static_cast<std::size_t>(role)].checkers.empty()) {
          // Flush the final (partial) segment and close the stream so the
          // checkers can finish draining (possibly via a waitlist handoff).
          core.exec_kernel_instruction(isa::make_i(isa::Opcode::kMCheck, 0, 0, 0));
          soc_.fabric().dissociate(core.id());
        }
        producer_halted_[static_cast<std::size_t>(role)] = true;
      }
      return {TrapAction::Kind::kHalt, 0};
    }

    case TrapCause::kFetchFault: {
      CoreUnit& unit = soc_.unit(core.id());
      // NB: the trap entry already suspended an active replay (the CPC
      // privilege monitor fires before the handler), so check both states.
      if (unit.replay_active() || unit.replay_suspended()) {
        // Corrupted SCP PC steered the replay off the program image: that is
        // a detection, not a crash.
        unit.on_replay_fetch_fault();
        return {TrapAction::Kind::kContextSwitched, 0};
      }
      return {TrapAction::Kind::kHalt, 0};
    }

    case TrapCause::kTimer:
      // Periodic OS tick: pay the excursion and re-arm.
      if (config_.os_ticks) {
        core.set_timer(core.cycle() + config_.tick_period);
        return {TrapAction::Kind::kResumeUser, config_.tick_cost};
      }
      return {TrapAction::Kind::kResumeUser, 0};
    case TrapCause::kSoftware:
      return {TrapAction::Kind::kResumeUser, 0};

    case TrapCause::kIllegal:
      return {TrapAction::Kind::kHalt, 0};
  }
  return {TrapAction::Kind::kHalt, 0};
}

void VerifiedExecution::pump_checkers() {
  soc_.fabric().pump_assignments();
  for (CoreId id : checker_ids_) {
    Core& checker = soc_.core(id);
    CoreUnit& unit = soc_.unit(id);
    if (checker.status() != Core::Status::kIdle) continue;
    if (unit.replay_active() || unit.replay_suspended()) continue;
    const Cycle ready_at = unit.next_segment_ready_at();
    if (ready_at == fs::kNever) continue;
    checker.advance_to(ready_at);
    checker.activate();
    unit.begin_replay();
  }
  // Resolve backpressure: a blocked producer may resume once all its channels
  // have space again (the consumer pop freed it).
  for (const RoleBinding& role : roles_) {
    Core& producer = soc_.core(role.producer);
    if (producer.status() != Core::Status::kBlocked) continue;
    CoreUnit& unit = soc_.unit(role.producer);
    if (unit.out_channels_have_space()) {
      producer.unblock_at(
          std::max(producer.cycle(), unit.out_channel_space_available_at()));
    }
  }
}

Core* VerifiedExecution::pick_next_core() {
  Core* best = nullptr;
  for (CoreId id : sched_order_) {
    Core& core = soc_.core(id);
    if (core.status() != Core::Status::kRunning) continue;
    if (best == nullptr || core.cycle() < best->cycle()) best = &core;
  }
  return best;
}

i32 VerifiedExecution::role_of(CoreId id) const {
  return id < core_role_.size() ? core_role_[id] : -1;
}

bool VerifiedExecution::all_producers_halted() const {
  for (bool halted : producer_halted_) {
    if (!halted) return false;
  }
  return true;
}

bool VerifiedExecution::finished() const {
  if (!all_producers_halted()) return false;
  for (CoreId id : checker_ids_) {
    const CoreUnit& unit = soc_.fabric().unit(id);
    if (unit.replay_active() || unit.replay_suspended()) return false;
    const fs::Channel* in = unit.in_channel();
    if (in != nullptr && !in->drained()) return false;
    // A parked channel can still hold undrained segments: the checker picks
    // it up at the next arbitration handoff, so the run is not done yet.
    if (soc_.fabric().waitlist_depth(id) != 0) return false;
  }
  return true;
}

bool VerifiedExecution::step_round() {
  FLEX_CHECK_MSG(prepared_, "call prepare() first");
  if (finished()) return false;

  pump_checkers();
  Core* core = pick_next_core();
  if (core == nullptr) {
    // Nobody runnable: either we are done, or checkers are idle waiting on
    // segments that became ready between pumps.
    if (finished()) return false;
    pump_checkers();
    core = pick_next_core();
    if (core == nullptr && config_.tolerate_stall) {
      stalled_ = true;  // DUE outcome: the campaign classifies it
      return false;
    }
    FLEX_CHECK_MSG(core != nullptr,
                   soc_.fabric().next_replay_ready_at() == fs::kNever
                       ? "co-simulation deadlock: no core runnable and no "
                         "segment pending"
                       : "co-simulation deadlock: segments pending but no "
                         "core runnable");
  }
  core->step();

  if (role_of(core->id()) >= 0) {
    FLEX_CHECK_MSG(core->instret() <= config_.max_instructions,
                   "producer core exceeded the instruction safety cap");
  }
  return true;
}

Cycle VerifiedExecution::quantum_bound(const arch::Core& chosen) const {
  // The stepwise scheduler picks the smallest-cycle runnable core, ties going
  // to the earlier core in (producers..., checkers...) order. `chosen`
  // therefore stays picked while its clock is below every higher-priority
  // runnable core's clock and at-or-below every lower-priority one's. Only
  // `chosen` executes during the quantum, so the other clocks are fixed;
  // cross-core state changes (wakes, unblocks) are handled by hooks ending
  // the quantum.
  Cycle bound = arch::kNoCycleBound;
  bool past_chosen = false;
  for (CoreId id : sched_order_) {
    const Core& core = soc_.core(id);
    if (&core == &chosen) {
      past_chosen = true;
      continue;
    }
    if (core.status() != Core::Status::kRunning) continue;
    // Higher-priority core (considered earlier): chosen runs while strictly
    // below its clock. Lower-priority: chosen also wins ties.
    const Cycle b = past_chosen ? core.cycle() + 1 : core.cycle();
    bound = std::min(bound, b);
  }
  return bound;
}

Cycle VerifiedExecution::bounded_quantum(const arch::Core& chosen, u64& budget) {
  if (role_of(chosen.id()) >= 0) {
    CoreUnit& unit = soc_.unit(chosen.id());
    // A producer may ignore the consumers' clocks entirely while its DBC
    // channels guarantee headroom for the whole burst: no backpressure
    // decision inside it can depend on pops the relaxed schedule defers, so
    // the burst commits exactly what the strict interleaving would. Burst-end
    // hooks (segment publish) still fire; the skew window caps the lead.
    const u64 headroom = unit.producer_burst_headroom();
    if (headroom > 0) {
      ++cosim_.relaxed_bursts;
      budget = std::min(budget, std::min(headroom, skew_insts_));
      return arch::kNoCycleBound;
    }
    // Out of headroom: a block decision could land inside the burst, and its
    // outcome depends on which pops have happened. Pops on *this* producer's
    // channels can only come from consumers currently attached to them — a
    // channel parked on a fabric waitlist cannot be popped at all until an
    // arbitration handoff (which only happens between rounds). Bound the
    // burst against exactly those attached consumers; everyone else's clock
    // is irrelevant to this producer's lattice.
    Cycle bound = arch::kNoCycleBound;
    bool any_attached = false;
    for (const fs::Channel* ch : unit.out_channels()) {
      const CoreUnit& consumer = soc_.unit(ch->checker_id());
      if (consumer.in_channel() != ch) continue;  // parked on the waitlist
      any_attached = true;
      const Core& checker = soc_.core(ch->checker_id());
      if (checker.status() == Core::Status::kRunning) {
        // Producers precede checkers in the tie-break, so the producer also
        // wins ties against its consumers.
        bound = std::min(bound, checker.cycle() + 1);
      }
    }
    if (!any_attached) {
      // Parked producer: every out-channel is waitlisted. The upcoming block
      // is deterministic (no pop can change it), so run free up to the skew
      // window instead of dragging the SoC to the strict leapfrog — this is
      // the first-class contended regime.
      ++cosim_.relaxed_bursts;
      ++cosim_.parked_producer_bursts;
      budget = std::min(budget, skew_insts_);
      return arch::kNoCycleBound;
    }
    if (bound == arch::kNoCycleBound) {
      // Attached consumers exist but none is runnable right now: their next
      // pops happen only after a pump wake, which this producer's own
      // segment-publish hook triggers (ending the burst). Keep the skew cap
      // as the only brake.
      ++cosim_.relaxed_bursts;
      budget = std::min(budget, skew_insts_);
      return arch::kNoCycleBound;
    }
    // Strict against the attached consumers only: the laggard consumer
    // catches up first (it is picked while behind), restoring the exact
    // stepwise interleaving before the producer commits anything near the
    // threshold. For the legacy single-role topology this degenerates to the
    // old global strict fallback.
    ++cosim_.strict_fallbacks;
    return bound;
  }
  // Checkers: free of each other (their pops land in disjoint channels), but
  // never past their attached producer's clock — every pop must stay in that
  // producer's past so future backpressure decisions see exactly the
  // stepwise-visible pop set. The same bound covers a backpressure-BLOCKED
  // producer while the checker's clock still trails it: all pops then land
  // strictly before the producer's resume, which is its own (larger) clock
  // no matter which pop crossed the space threshold — so the quantum need
  // not end at the exact wake pop, and the unit may retire log entries in
  // bulk straight through the threshold (see
  // CoreUnit::set_bulk_consume_horizon). Only once the checker has caught up
  // to the blocked producer's clock does the wake cycle become load-bearing:
  // stay on the strict, wake-exact bound there. A halted producer makes no
  // further push decisions at all, so the drain phase keeps the strict bound
  // (vs. the other cores) but pops freely. The attached producer is read off
  // the checker's *current* in-channel: while serving a waitlist the checker
  // keeps relaxed bulk-consume progress on that channel regardless of what
  // the parked producers are doing.
  CoreUnit& unit = soc_.unit(chosen.id());
  const fs::Channel* in = unit.in_channel();
  if (in != nullptr) {
    const Core& producer = soc_.core(in->main_id());
    if (producer.status() == Core::Status::kRunning ||
        (producer.status() == Core::Status::kBlocked &&
         chosen.cycle() < producer.cycle())) {
      ++cosim_.relaxed_bursts;
      unit.set_bulk_consume_horizon(producer.cycle());
      return producer.cycle();
    }
    const i32 role = role_of(in->main_id());
    const bool producer_done =
        role >= 0 ? producer_halted_[static_cast<std::size_t>(role)]
                  : producer.status() == Core::Status::kHalted;
    if (producer_done) {
      ++cosim_.relaxed_bursts;
      unit.set_bulk_consume_horizon(arch::kNoCycleBound);
      return quantum_bound(chosen);
    }
  }
  ++cosim_.strict_fallbacks;
  unit.set_bulk_consume_horizon(0);
  return quantum_bound(chosen);
}

void VerifiedExecution::note_burst_skew(const arch::Core& chosen) {
  // Clock lead over the slowest still-runnable core: how far past the strict
  // leapfrog the burst ran. Parked cores are excluded — their clocks lag in
  // every engine (they only advance again at their wake time).
  Cycle trailing = chosen.cycle();
  for (CoreId id : sched_order_) {
    const Core& core = soc_.core(id);
    if (&core != &chosen && core.status() == Core::Status::kRunning) {
      trailing = std::min(trailing, core.cycle());
    }
  }
  cosim_.max_skew_cycles =
      std::max<u64>(cosim_.max_skew_cycles, chosen.cycle() - trailing);
}

bool VerifiedExecution::quantum_round(u64 max_instructions) {
  FLEX_CHECK_MSG(prepared_, "call prepare() first");
  if (finished()) return false;

  pump_checkers();
  Core* core = pick_next_core();
  if (core == nullptr) {
    if (finished()) return false;
    pump_checkers();
    core = pick_next_core();
    if (core == nullptr && config_.tolerate_stall) {
      stalled_ = true;  // DUE outcome: the campaign classifies it
      return false;
    }
    FLEX_CHECK_MSG(core != nullptr,
                   soc_.fabric().next_replay_ready_at() == fs::kNever
                       ? "co-simulation deadlock: no core runnable and no "
                         "segment pending"
                       : "co-simulation deadlock: segments pending but no "
                         "core runnable");
  }
  ++cosim_.rounds;

  const bool bounded = config_.engine == Engine::kQuantumBounded;
  u64 budget = max_instructions;
  const Cycle bound = bounded ? bounded_quantum(*core, budget) : quantum_bound(*core);
  if (role_of(core->id()) >= 0) {
    // Leave one instruction of headroom so the safety check below can fire
    // exactly like the stepwise driver's.
    const u64 cap_left = config_.max_instructions + 1 - core->instret();
    budget = std::min(budget, cap_left);
  }

  // Zero-progress guard: a round that neither retires, advances the clock nor
  // changes the core's status would hand the next round the identical pick
  // and bound — the driver would spin forever (e.g. a burst-end hook firing
  // at the chosen core's current cycle). Crash instead of hanging.
  const Cycle cycle_before = core->cycle();
  const u64 instret_before = core->instret();
  const Core::Status status_before = core->status();
  core->run_until(bound, budget);
  if (config_.tolerate_stall && core->cycle() == cycle_before &&
      core->instret() == instret_before && core->status() == status_before) {
    stalled_ = true;  // DUE outcome: the campaign classifies it
    return false;
  }
  FLEX_CHECK_MSG(core->cycle() != cycle_before || core->instret() != instret_before ||
                     core->status() != status_before,
                 "co-simulation deadlock: quantum round made no progress");
  if (bounded) {
    if (core->last_run_exit() == arch::RunExit::kQuantumBreak) ++cosim_.hook_breaks;
    note_burst_skew(*core);
  }

  if (role_of(core->id()) >= 0) {
    FLEX_CHECK_MSG(core->instret() <= config_.max_instructions,
                   "producer core exceeded the instruction safety cap");
  }
  return true;
}

u64 VerifiedExecution::total_instret() const {
  u64 total = 0;
  for (CoreId id : sched_order_) total += soc_.core(id).instret();
  return total;
}

bool VerifiedExecution::advance(u64 instruction_budget) {
  if (config_.engine == Engine::kStepwise) {
    for (u64 i = 0; i < instruction_budget; ++i) {
      if (!step_round()) return false;
    }
    return true;
  }
  const u64 target = total_instret() + instruction_budget;
  while (total_instret() < target) {
    if (!quantum_round(target - total_instret())) return false;
  }
  return true;
}

RunStats VerifiedExecution::run() {
  if (config_.engine == Engine::kStepwise) {
    while (step_round()) {
    }
  } else {
    while (quantum_round()) {
    }
  }
  return stats();
}

RunStats VerifiedExecution::stats() const {
  RunStats s;
  const Core& first = soc_.core(roles_.front().producer);
  s.main_cycles = first.cycle();
  s.main_instructions = first.instret();
  s.completion_cycles = soc_.max_cycle();

  for (const RoleBinding& role : roles_) {
    const CoreUnit& unit = soc_.unit(role.producer);
    s.segments_produced += unit.segments_produced();
    s.mem_entries += unit.mem_entries_logged();
  }
  for (CoreId id : checker_ids_) {
    const CoreUnit& unit = soc_.unit(id);
    s.segments_verified += unit.segments_verified();
    s.segments_failed += unit.segments_failed();
  }
  for (const fs::Channel* ch : soc_.fabric().channels()) {
    s.backpressure_events += ch->backpressure_events();
    s.max_channel_occupancy = std::max(s.max_channel_occupancy, ch->max_occupancy());
  }
  return s;
}

}  // namespace flexstep::soc
