#include "soc/verified_run.h"

#include <algorithm>
#include <cstdlib>
#include <string_view>

#include "common/check.h"
#include "common/log.h"
#include "isa/instruction.h"
#include "soc/snapshot.h"

namespace flexstep::soc {

using arch::Core;
using arch::TrapAction;
using arch::TrapCause;
using fs::CoreUnit;

Engine default_engine() {
  // Read once: the answer must not change between two Scenario builds that
  // are expected to evolve bit-identically (same rule as FLEX_TRACE).
  static const Engine engine = [] {
    const char* value = std::getenv("FLEX_ENGINE");
    if (value == nullptr || *value == '\0') return Engine::kQuantum;
    const std::string_view name(value);
    if (name == "stepwise") return Engine::kStepwise;
    if (name == "quantum") return Engine::kQuantum;
    if (name == "bounded" || name == "quantum_bounded") {
      return Engine::kQuantumBounded;
    }
    FLEX_CHECK_MSG(false,
                   "FLEX_ENGINE must be one of stepwise / quantum / bounded");
    return Engine::kQuantum;
  }();
  return engine;
}

const char* engine_name(Engine engine) {
  switch (engine) {
    case Engine::kStepwise: return "stepwise";
    case Engine::kQuantum: return "quantum";
    case Engine::kQuantumBounded: return "bounded";
  }
  return "?";
}

VerifiedExecution::VerifiedExecution(Soc& soc, VerifiedRunConfig config)
    : soc_(soc), config_(std::move(config)) {
  FLEX_CHECK(config_.main_core < soc_.num_cores());
  for (CoreId checker : config_.checkers) {
    FLEX_CHECK(checker < soc_.num_cores());
    FLEX_CHECK(checker != config_.main_core);
  }
  const fs::FlexStepConfig& fs_config = soc_.config().flexstep;
  skew_insts_ = config_.skew_instructions != 0
                    ? config_.skew_instructions
                    : std::max<u64>(fs_config.segment_limit,
                                    fs_config.channel_capacity / 2);
  FLEX_CHECK(skew_insts_ > 0);
}

VerifiedExecution::~VerifiedExecution() = default;

void VerifiedExecution::install_driver_wiring() {
  soc_.core(config_.main_core).set_trap_handler(this);
  for (CoreId id : config_.checkers) {
    soc_.core(id).set_trap_handler(this);
    soc_.unit(id).set_on_segment_done([](CoreUnit& unit, bool) {
      // Start the next pending segment immediately, otherwise park.
      if (unit.segment_ready(unit.core().cycle())) {
        unit.begin_replay();
      } else {
        unit.core().set_idle();
      }
    });
  }
}

void VerifiedExecution::prepare(const isa::Program& program) {
  FLEX_CHECK_MSG(!prepared_, "prepare called twice");
  prepared_ = true;

  if (soc_.images().find(program.entry()) == nullptr) soc_.load_program(program);

  install_driver_wiring();
  Core& main = soc_.core(config_.main_core);
  main.set_user_mode(false);  // kernel performs the setup
  main.set_pc(program.entry());
  // Conventional initial registers: x2 = stack-ish scratch, x10 = data base.
  main.set_reg(10, program.data_base);
  if (config_.os_ticks) {
    // Staggered phases: cores enter kernel mode at different times, the
    // "execution inconsistency" the paper identifies (Sec. VI-A).
    main.set_timer(config_.tick_period);
    u32 phase = 1;
    for (CoreId id : config_.checkers) {
      soc_.core(id).set_timer(config_.tick_period +
                              phase++ * config_.tick_period / 4);
    }
  }

  if (!config_.checkers.empty()) {
    // G.Configure: write the main/checker ID sets into the global registers.
    u64 checker_mask = 0;
    for (CoreId c : config_.checkers) checker_mask |= u64{1} << c;
    main.set_reg(5, u64{1} << config_.main_core);
    main.set_reg(6, checker_mask);
    main.exec_kernel_instruction(isa::make_r(isa::Opcode::kGConfigure, 0, 5, 6));

    // Checker side: C.check_state(busy) + C.record, then wait for SCPs.
    for (CoreId id : config_.checkers) {
      Core& checker = soc_.core(id);
      checker.set_user_mode(false);
      checker.exec_kernel_instruction(
          isa::make_i(isa::Opcode::kCCheckState, 0, 0, 1));
      checker.set_idle();  // parked until a segment is ready
    }

    // M.associate + M.check.enable on the main core. The enable snapshots the
    // already-installed user context as the first SCP.
    main.exec_kernel_instruction(isa::make_r(isa::Opcode::kMAssociate, 0, 6, 0));
    main.exec_kernel_instruction(isa::make_i(isa::Opcode::kMCheck, 0, 0, 1));
  }

  main.set_user_mode(true);
  main.activate();
}

void VerifiedExecution::save(Snapshot& out) const {
  soc_.save(out);
  out.exec_prepared = prepared_;
  out.exec_main_halted = main_halted_;
}

Snapshot VerifiedExecution::save() const {
  Snapshot out;
  save(out);
  return out;
}

void VerifiedExecution::restore(const Snapshot& snapshot) {
  soc_.restore(snapshot);
  prepared_ = snapshot.exec_prepared;
  main_halted_ = snapshot.exec_main_halted;
  stalled_ = false;  // stall state is not snapshotted: a rewound run re-derives it
  // A freshly constructed driver (fork path) has never wired itself into the
  // cores; an in-place restore re-asserts the same pointers harmlessly.
  install_driver_wiring();
}

TrapAction VerifiedExecution::on_trap(Core& core, TrapCause cause) {
  switch (cause) {
    case TrapCause::kEcall:
      // Workload kernel excursion (modelled cost), then back to user mode.
      return {TrapAction::Kind::kResumeUser, config_.ecall_cost};

    case TrapCause::kTaskExit: {
      if (core.id() == config_.main_core) {
        if (!config_.checkers.empty()) {
          // Flush the final (partial) segment and close the stream so the
          // checkers can finish draining.
          core.exec_kernel_instruction(isa::make_i(isa::Opcode::kMCheck, 0, 0, 0));
          soc_.fabric().dissociate(config_.main_core);
        }
        main_halted_ = true;
      }
      return {TrapAction::Kind::kHalt, 0};
    }

    case TrapCause::kFetchFault: {
      CoreUnit& unit = soc_.unit(core.id());
      // NB: the trap entry already suspended an active replay (the CPC
      // privilege monitor fires before the handler), so check both states.
      if (unit.replay_active() || unit.replay_suspended()) {
        // Corrupted SCP PC steered the replay off the program image: that is
        // a detection, not a crash.
        unit.on_replay_fetch_fault();
        return {TrapAction::Kind::kContextSwitched, 0};
      }
      return {TrapAction::Kind::kHalt, 0};
    }

    case TrapCause::kTimer:
      // Periodic OS tick: pay the excursion and re-arm.
      if (config_.os_ticks) {
        core.set_timer(core.cycle() + config_.tick_period);
        return {TrapAction::Kind::kResumeUser, config_.tick_cost};
      }
      return {TrapAction::Kind::kResumeUser, 0};
    case TrapCause::kSoftware:
      return {TrapAction::Kind::kResumeUser, 0};

    case TrapCause::kIllegal:
      return {TrapAction::Kind::kHalt, 0};
  }
  return {TrapAction::Kind::kHalt, 0};
}

void VerifiedExecution::pump_checkers() {
  soc_.fabric().pump_assignments();
  for (CoreId id : config_.checkers) {
    Core& checker = soc_.core(id);
    CoreUnit& unit = soc_.unit(id);
    if (checker.status() != Core::Status::kIdle) continue;
    if (unit.replay_active() || unit.replay_suspended()) continue;
    const Cycle ready_at = unit.next_segment_ready_at();
    if (ready_at == fs::kNever) continue;
    checker.advance_to(ready_at);
    checker.activate();
    unit.begin_replay();
  }
  // Resolve backpressure: a blocked main may resume once all its channels
  // have space again (the consumer pop freed it).
  Core& main = soc_.core(config_.main_core);
  if (main.status() == Core::Status::kBlocked) {
    CoreUnit& unit = soc_.unit(config_.main_core);
    if (unit.out_channels_have_space()) {
      main.unblock_at(std::max(main.cycle(), unit.out_channel_space_available_at()));
    }
  }
}

Core* VerifiedExecution::pick_next_core() {
  Core* best = nullptr;
  auto consider = [&](CoreId id) {
    Core& core = soc_.core(id);
    if (core.status() != Core::Status::kRunning) return;
    if (best == nullptr || core.cycle() < best->cycle()) best = &core;
  };
  consider(config_.main_core);
  for (CoreId id : config_.checkers) consider(id);
  return best;
}

bool VerifiedExecution::finished() const {
  if (!main_halted_) return false;
  for (CoreId id : config_.checkers) {
    const CoreUnit& unit = soc_.fabric().unit(id);
    if (unit.replay_active() || unit.replay_suspended()) return false;
    const fs::Channel* in = unit.in_channel();
    if (in != nullptr && !in->drained()) return false;
  }
  return true;
}

bool VerifiedExecution::step_round() {
  FLEX_CHECK_MSG(prepared_, "call prepare() first");
  if (finished()) return false;

  pump_checkers();
  Core* core = pick_next_core();
  if (core == nullptr) {
    // Nobody runnable: either we are done, or checkers are idle waiting on
    // segments that became ready between pumps.
    if (finished()) return false;
    pump_checkers();
    core = pick_next_core();
    if (core == nullptr && config_.tolerate_stall) {
      stalled_ = true;  // DUE outcome: the campaign classifies it
      return false;
    }
    FLEX_CHECK_MSG(core != nullptr,
                   soc_.fabric().next_replay_ready_at() == fs::kNever
                       ? "co-simulation deadlock: no core runnable and no "
                         "segment pending"
                       : "co-simulation deadlock: segments pending but no "
                         "core runnable");
  }
  core->step();

  if (core->id() == config_.main_core) {
    FLEX_CHECK_MSG(core->instret() <= config_.max_instructions,
                   "main core exceeded the instruction safety cap");
  }
  return true;
}

Cycle VerifiedExecution::quantum_bound(const arch::Core& chosen) const {
  // The stepwise scheduler picks the smallest-cycle runnable core, ties going
  // to the earlier core in (main, checkers...) order. `chosen` therefore
  // stays picked while its clock is below every higher-priority runnable
  // core's clock and at-or-below every lower-priority one's. Only `chosen`
  // executes during the quantum, so the other clocks are fixed; cross-core
  // state changes (wakes, unblocks) are handled by hooks ending the quantum.
  Cycle bound = arch::kNoCycleBound;
  bool past_chosen = false;
  auto consider = [&](CoreId id) {
    const Core& core = soc_.core(id);
    if (&core == &chosen) {
      past_chosen = true;
      return;
    }
    if (core.status() != Core::Status::kRunning) return;
    // Higher-priority core (considered earlier): chosen runs while strictly
    // below its clock. Lower-priority: chosen also wins ties.
    const Cycle b = past_chosen ? core.cycle() + 1 : core.cycle();
    bound = std::min(bound, b);
  };
  consider(config_.main_core);
  for (CoreId id : config_.checkers) consider(id);
  return bound;
}

Cycle VerifiedExecution::bounded_quantum(const arch::Core& chosen, u64& budget) {
  if (chosen.id() == config_.main_core) {
    // The producer may ignore the consumers' clocks entirely while its DBC
    // channels guarantee headroom for the whole burst: no backpressure
    // decision inside it can depend on pops the relaxed schedule defers, so
    // the burst commits exactly what the strict interleaving would. Burst-end
    // hooks (segment publish) still fire; the skew window caps the lead.
    const u64 headroom = soc_.unit(config_.main_core).producer_burst_headroom();
    if (headroom == 0) {
      // Contended: a block decision could land inside the burst. Fall back to
      // the strict leapfrog — the laggard checkers then catch up first (they
      // are picked while behind), restoring the exact stepwise interleaving
      // before the producer commits anything near the threshold.
      ++cosim_.strict_fallbacks;
      return quantum_bound(chosen);
    }
    ++cosim_.relaxed_bursts;
    budget = std::min(budget, std::min(headroom, skew_insts_));
    return arch::kNoCycleBound;
  }
  // Checkers: free of each other (their pops land in disjoint channels), but
  // never past the producer's clock — every pop must stay in the producer's
  // past so future backpressure decisions see exactly the stepwise-visible
  // pop set. The same bound covers a backpressure-BLOCKED producer while the
  // checker's clock still trails it: all pops then land strictly before the
  // producer's resume, which is its own (larger) clock no matter which pop
  // crossed the space threshold — so the quantum need not end at the exact
  // wake pop, and the unit may retire log entries in bulk straight through
  // the threshold (see CoreUnit::set_bulk_consume_horizon). Only once the
  // checker has caught up to the blocked producer's clock does the wake
  // cycle become load-bearing: stay on the strict, wake-exact bound there.
  // A halted producer makes no further push decisions at all, so the drain
  // phase keeps the strict bound (vs. the other checkers) but pops freely.
  const Core& main = soc_.core(config_.main_core);
  CoreUnit& unit = soc_.unit(chosen.id());
  if (main.status() == Core::Status::kRunning ||
      (main.status() == Core::Status::kBlocked && chosen.cycle() < main.cycle())) {
    ++cosim_.relaxed_bursts;
    unit.set_bulk_consume_horizon(main.cycle());
    return main.cycle();
  }
  if (main_halted_) {
    ++cosim_.relaxed_bursts;
    unit.set_bulk_consume_horizon(arch::kNoCycleBound);
    return quantum_bound(chosen);
  }
  ++cosim_.strict_fallbacks;
  unit.set_bulk_consume_horizon(0);
  return quantum_bound(chosen);
}

void VerifiedExecution::note_burst_skew(const arch::Core& chosen) {
  // Clock lead over the slowest still-runnable core: how far past the strict
  // leapfrog the burst ran. Parked cores are excluded — their clocks lag in
  // every engine (they only advance again at their wake time).
  Cycle trailing = chosen.cycle();
  auto consider = [&](CoreId id) {
    const Core& core = soc_.core(id);
    if (&core != &chosen && core.status() == Core::Status::kRunning) {
      trailing = std::min(trailing, core.cycle());
    }
  };
  consider(config_.main_core);
  for (CoreId id : config_.checkers) consider(id);
  cosim_.max_skew_cycles =
      std::max<u64>(cosim_.max_skew_cycles, chosen.cycle() - trailing);
}

bool VerifiedExecution::quantum_round(u64 max_instructions) {
  FLEX_CHECK_MSG(prepared_, "call prepare() first");
  if (finished()) return false;

  pump_checkers();
  Core* core = pick_next_core();
  if (core == nullptr) {
    if (finished()) return false;
    pump_checkers();
    core = pick_next_core();
    if (core == nullptr && config_.tolerate_stall) {
      stalled_ = true;  // DUE outcome: the campaign classifies it
      return false;
    }
    FLEX_CHECK_MSG(core != nullptr,
                   soc_.fabric().next_replay_ready_at() == fs::kNever
                       ? "co-simulation deadlock: no core runnable and no "
                         "segment pending"
                       : "co-simulation deadlock: segments pending but no "
                         "core runnable");
  }
  ++cosim_.rounds;

  const bool bounded = config_.engine == Engine::kQuantumBounded;
  u64 budget = max_instructions;
  const Cycle bound = bounded ? bounded_quantum(*core, budget) : quantum_bound(*core);
  if (core->id() == config_.main_core) {
    // Leave one instruction of headroom so the safety check below can fire
    // exactly like the stepwise driver's.
    const u64 cap_left = config_.max_instructions + 1 - core->instret();
    budget = std::min(budget, cap_left);
  }

  // Zero-progress guard: a round that neither retires, advances the clock nor
  // changes the core's status would hand the next round the identical pick
  // and bound — the driver would spin forever (e.g. a burst-end hook firing
  // at the chosen core's current cycle). Crash instead of hanging.
  const Cycle cycle_before = core->cycle();
  const u64 instret_before = core->instret();
  const Core::Status status_before = core->status();
  core->run_until(bound, budget);
  if (config_.tolerate_stall && core->cycle() == cycle_before &&
      core->instret() == instret_before && core->status() == status_before) {
    stalled_ = true;  // DUE outcome: the campaign classifies it
    return false;
  }
  FLEX_CHECK_MSG(core->cycle() != cycle_before || core->instret() != instret_before ||
                     core->status() != status_before,
                 "co-simulation deadlock: quantum round made no progress");
  if (bounded) {
    if (core->last_run_exit() == arch::RunExit::kQuantumBreak) ++cosim_.hook_breaks;
    note_burst_skew(*core);
  }

  if (core->id() == config_.main_core) {
    FLEX_CHECK_MSG(core->instret() <= config_.max_instructions,
                   "main core exceeded the instruction safety cap");
  }
  return true;
}

u64 VerifiedExecution::total_instret() const {
  u64 total = soc_.core(config_.main_core).instret();
  for (CoreId id : config_.checkers) total += soc_.core(id).instret();
  return total;
}

bool VerifiedExecution::advance(u64 instruction_budget) {
  if (config_.engine == Engine::kStepwise) {
    for (u64 i = 0; i < instruction_budget; ++i) {
      if (!step_round()) return false;
    }
    return true;
  }
  const u64 target = total_instret() + instruction_budget;
  while (total_instret() < target) {
    if (!quantum_round(target - total_instret())) return false;
  }
  return true;
}

RunStats VerifiedExecution::run() {
  if (config_.engine == Engine::kStepwise) {
    while (step_round()) {
    }
  } else {
    while (quantum_round()) {
    }
  }
  return stats();
}

RunStats VerifiedExecution::stats() const {
  RunStats s;
  const Core& main = soc_.core(config_.main_core);
  s.main_cycles = main.cycle();
  s.main_instructions = main.instret();
  s.completion_cycles = soc_.max_cycle();

  const CoreUnit& main_unit = soc_.unit(config_.main_core);
  s.segments_produced = main_unit.segments_produced();
  s.mem_entries = main_unit.mem_entries_logged();
  for (CoreId id : config_.checkers) {
    const CoreUnit& unit = soc_.unit(id);
    s.segments_verified += unit.segments_verified();
    s.segments_failed += unit.segments_failed();
  }
  for (const fs::Channel* ch : soc_.fabric().channels()) {
    s.backpressure_events += ch->backpressure_events();
    s.max_channel_occupancy = std::max(s.max_channel_occupancy, ch->max_occupancy());
  }
  return s;
}

}  // namespace flexstep::soc
