// Co-simulation driver for a single verified workload: one main core streams
// checking segments to one or more checker cores (dual-core = DCLS-like,
// one-to-two = TCLS-like, paper Sec. II). This is the substrate of the
// Fig. 4 / Fig. 6 slowdown experiments and the Fig. 7 fault campaigns.
//
// The driver plays the OS role of Alg. 1/2 for a single task: it configures
// the fabric through the custom ISA, pumps checker replays, resolves
// backpressure wake-ups, and models ECALL kernel excursions with a fixed
// cycle cost.
#pragma once

#include <vector>

#include "arch/trap.h"
#include "common/types.h"
#include "soc/soc.h"

namespace flexstep::soc {

/// Which execution engine drives the co-simulation.
enum class Engine : u8 {
  kStepwise,  ///< Reference: one instruction per scheduling round (Core::step).
  kQuantum,   ///< Batched: each round runs the picked core for as long as the
              ///< stepwise scheduler would have kept picking it
              ///< (Core::run_until). Bit-identical state evolution.
  kQuantumBounded,  ///< Relaxed-skew batched: bursts may overrun the strict
                    ///< cycle-leapfrog bound by up to a skew window wherever
                    ///< the overrun is provably invisible — the main core
                    ///< while its DBC channels guarantee headroom (no
                    ///< backpressure decision can depend on deferred consumer
                    ///< pops), checkers up to the main's local clock (their
                    ///< pops stay in the producer's past). Bursts still end
                    ///< at every cross-core interaction point (segment
                    ///< publish, space-freeing pop, backpressure block), and
                    ///< the contended regime falls back to the strict bound —
                    ///< so the observable schedule, and with it every
                    ///< verdict, stat and cycle count, stays bit-identical to
                    ///< kStepwise. tests/test_exec_engine.cpp enforces this.
};

/// The engine FLEX_ENGINE selects ("stepwise" / "quantum" / "bounded", also
/// accepted: "quantum_bounded"); kQuantum when unset. Read once per process —
/// sim::Scenario applies it whenever the experiment didn't pick an engine
/// explicitly.
Engine default_engine();

/// Short lowercase name for tables/JSON ("stepwise", "quantum", "bounded").
const char* engine_name(Engine engine);

struct VerifiedRunConfig {
  CoreId main_core = 0;
  std::vector<CoreId> checkers;  ///< Empty = plain (unverified) run.
  Cycle ecall_cost = 1200;       ///< Kernel-excursion cycles per workload ECALL.
  u64 max_instructions = 500'000'000;  ///< Safety cap on main-core commits.

  /// Background OS interference: every core takes a periodic kernel tick
  /// (scheduler/housekeeping), staggered across cores. This reproduces the
  /// paper's "cores undergoing different kernel mode switches": checkers
  /// stall at different times than the main core, the DBC fills, and
  /// backpressure transfers part of the stall to the main core — the
  /// dominant source of FlexStep's ~1% slowdown (Sec. VI-A).
  bool os_ticks = true;
  Cycle tick_period = us_to_cycles(1000.0);
  Cycle tick_cost = us_to_cycles(18.0);

  /// Engine selection. kQuantum is the default hot path; kStepwise remains
  /// available as the reference baseline (equivalence tests, bench baseline).
  Engine engine = Engine::kQuantum;

  /// kQuantumBounded: cap on the instructions one relaxed burst may run
  /// (bounds the clock lead a burst can build over the other cores, and with
  /// it the interleaving granularity advance() rendezvous points see).
  /// 0 = auto: max(segment_limit, channel_capacity / 2) — one DBC segment /
  /// channel-capacity worth of work.
  u64 skew_instructions = 0;

  /// Fault campaigns: a deadlocked / zero-progress co-simulation (e.g. the
  /// main core halting on a corrupted fetch without ever signalling task
  /// exit) is a legitimate experiment outcome (DUE), not a driver bug. With
  /// this set, the driver latches stalled() and reports "finished" instead
  /// of tripping its deadlock FLEX_CHECKs.
  bool tolerate_stall = false;
};

/// Quantum-engine burst accounting (diagnostics; deliberately not part of
/// RunStats, whose field-wise equality the bit-identity proofs compare).
/// `rounds` counts every quantum_round() under kQuantum AND kQuantumBounded
/// (stepwise drives no quanta); the remaining fields are kQuantumBounded-only
/// and stay zero under the other engines.
struct CosimStats {
  u64 rounds = 0;           ///< Quantum scheduling rounds driven.
  u64 relaxed_bursts = 0;   ///< Bursts freed from the strict leapfrog bound.
  u64 strict_fallbacks = 0; ///< Contended rounds driven at the strict bound.
  u64 hook_breaks = 0;      ///< Bursts ended by a cross-core interaction hook
                            ///< (Core::RunExit::kQuantumBreak): segment
                            ///< publish, space-freeing pop, drain transition.
  u64 max_skew_cycles = 0;  ///< Largest clock lead a burst built over the
                            ///< slowest still-runnable core.
};

struct RunStats {
  Cycle main_cycles = 0;       ///< Main-core cycles from start to HALT.
  u64 main_instructions = 0;
  Cycle completion_cycles = 0; ///< Until all checkers drained (detection done).
  u64 segments_produced = 0;
  u64 segments_verified = 0;
  u64 segments_failed = 0;
  u64 mem_entries = 0;
  u64 backpressure_events = 0;
  u64 max_channel_occupancy = 0;

  double ipc() const {
    return main_cycles == 0 ? 0.0
                            : static_cast<double>(main_instructions) /
                                  static_cast<double>(main_cycles);
  }

  /// Field-wise equality: the snapshot bit-identity tests compare a run-on
  /// session against a restore-and-run sibling through this.
  friend bool operator==(const RunStats&, const RunStats&) = default;
};

class VerifiedExecution final : public arch::TrapHandler {
 public:
  VerifiedExecution(Soc& soc, VerifiedRunConfig config);
  ~VerifiedExecution() override;

  /// Install the program context on the main core and, when checkers are
  /// configured, execute the FlexStep setup sequence (G.Configure,
  /// M.associate, M.check.enable) through the custom ISA.
  void prepare(const isa::Program& program);

  /// Advance the co-simulation by one step (one instruction on the runnable
  /// core with the smallest local clock). Returns false once finished.
  bool step_round();

  /// Advance the co-simulation by one quantum: pick the runnable core with
  /// the smallest local clock and run it for exactly as long as the stepwise
  /// scheduler would have kept picking it (bounded by the other runnable
  /// cores' clocks; hooks end the quantum early on cross-core events such as
  /// SegmentEnd pushes and backpressure-relieving pops). Runs at most
  /// `max_instructions` commits. Returns false once finished.
  bool quantum_round(u64 max_instructions = ~u64{0});

  /// Advance by ~`instruction_budget` retired instructions (summed across the
  /// participating cores) using the configured engine. Returns false once the
  /// co-simulation finished. Fault campaigns use this to interleave injection
  /// probes with execution at a granularity independent of the engine.
  bool advance(u64 instruction_budget);

  /// Total instructions retired across the main core and all checkers.
  u64 total_instret() const;

  /// Run to completion (with the configured engine) and return the statistics.
  RunStats run();

  bool finished() const;
  RunStats stats() const;

  /// True once a tolerate_stall run hit a state no engine round can advance
  /// (co-simulation deadlock — the DUE signature). Latched until restore().
  bool stalled() const { return stalled_; }

  /// Burst accounting of the relaxed engine (all-zero under other engines).
  const CosimStats& cosim_stats() const { return cosim_; }
  /// The resolved kQuantumBounded burst cap (config_.skew_instructions, or
  /// the auto default derived from the SoC's FlexStep geometry).
  u64 skew_instructions() const { return skew_insts_; }

  Soc& soc() { return soc_; }
  const VerifiedRunConfig& config() const { return config_; }

  // ---- state capture (soc/snapshot.h) ----

  /// Capture the SoC plus this driver's state. The snapshot can seed either
  /// an in-place restore() on this driver or a fresh (Soc, VerifiedExecution)
  /// pair with the same configs and programs — sim::Session::fork.
  void save(Snapshot& out) const;
  Snapshot save() const;

  /// Restore SoC + driver state and re-establish the wiring prepare() set up
  /// (trap handlers, checker segment-done callbacks). The same programs must
  /// already be loaded in the SoC's image registry.
  void restore(const Snapshot& snapshot);

  // arch::TrapHandler
  arch::TrapAction on_trap(arch::Core& core, arch::TrapCause cause) override;

 private:
  void pump_checkers();
  /// Trap handlers + checker segment-done callbacks; shared by prepare() and
  /// restore() (a forked driver must point the restored cores at itself).
  void install_driver_wiring();
  arch::Core* pick_next_core();
  /// Local-clock bound up to which `chosen` would keep being picked by the
  /// stepwise scheduler (smallest-cycle-first, main-core-then-checker-order
  /// tie-break), assuming no other core's state changes meanwhile.
  Cycle quantum_bound(const arch::Core& chosen) const;
  /// kQuantumBounded bound: relax the strict bound where provably invisible
  /// (see Engine::kQuantumBounded), shrinking `budget` to the producer's
  /// guaranteed-headroom / skew window when the main core is chosen. Falls
  /// back to quantum_bound() in the contended regime.
  Cycle bounded_quantum(const arch::Core& chosen, u64& budget);
  void note_burst_skew(const arch::Core& chosen);

  Soc& soc_;
  VerifiedRunConfig config_;
  u64 skew_insts_ = 0;  ///< Resolved kQuantumBounded burst cap.
  CosimStats cosim_;
  bool main_halted_ = false;
  bool prepared_ = false;
  bool stalled_ = false;  ///< tolerate_stall: deadlock latched (DUE outcome).
};

}  // namespace flexstep::soc
