// Co-simulation driver for verified workloads on a role-based topology:
// N producer cores stream checking segments to M checker cores (dual-core =
// DCLS-like, one-to-two = TCLS-like, paper Sec. II; several producers may
// share one checker through the fabric waitlist, paper Sec. III-C). This is
// the substrate of the Fig. 4 / Fig. 6 slowdown experiments, the Fig. 7
// fault campaigns and the Fig. 8 many-core scaling sweeps.
//
// The driver plays the OS role of Alg. 1/2: it configures the fabric through
// the custom ISA, pumps checker replays and waitlist arbitration, resolves
// backpressure wake-ups per producer, and models ECALL kernel excursions
// with a fixed cycle cost.
#pragma once

#include <vector>

#include "arch/trap.h"
#include "common/types.h"
#include "soc/soc.h"

namespace flexstep::soc {

/// Which execution engine drives the co-simulation.
enum class Engine : u8 {
  kStepwise,  ///< Reference: one instruction per scheduling round (Core::step).
  kQuantum,   ///< Batched: each round runs the picked core for as long as the
              ///< stepwise scheduler would have kept picking it
              ///< (Core::run_until). Bit-identical state evolution.
  kQuantumBounded,  ///< Relaxed-skew batched: bursts may overrun the strict
                    ///< cycle-leapfrog bound by up to a skew window wherever
                    ///< the overrun is provably invisible — a producer while
                    ///< its DBC channels guarantee headroom (no backpressure
                    ///< decision can depend on deferred consumer pops) or
                    ///< while every out-channel is parked on a fabric
                    ///< waitlist (no pop can touch them at all), checkers up
                    ///< to their attached producer's local clock (their pops
                    ///< stay in that producer's past). Bursts still end at
                    ///< every cross-core interaction point (segment publish,
                    ///< space-freeing pop, backpressure block), and a
                    ///< producer out of headroom with an attached consumer
                    ///< falls back to a strict bound against just the
                    ///< consumers on its own channels — so the observable
                    ///< schedule, and with it every verdict, stat and cycle
                    ///< count, stays bit-identical to kStepwise at every
                    ///< topology. tests/test_exec_engine.cpp enforces this.
};

/// The engine FLEX_ENGINE selects ("stepwise" / "quantum" / "bounded", also
/// accepted: "quantum_bounded"); kQuantum when unset. Read once per process —
/// sim::Scenario applies it whenever the experiment didn't pick an engine
/// explicitly.
Engine default_engine();

/// Short lowercase name for tables/JSON ("stepwise", "quantum", "bounded").
const char* engine_name(Engine engine);

/// One producer/checker binding of the role-based topology: `producer`
/// streams checking segments to every core in `checkers` (empty = plain,
/// unverified producer). Several bindings may name the same checker — those
/// producers then contend for it through the fabric waitlist (paper
/// Sec. III-C), which the driver arbitrates as a first-class regime.
struct RoleBinding {
  CoreId producer = 0;
  std::vector<CoreId> checkers;
};

struct VerifiedRunConfig {
  CoreId main_core = 0;
  std::vector<CoreId> checkers;  ///< Empty = plain (unverified) run.
  Cycle ecall_cost = 1200;       ///< Kernel-excursion cycles per workload ECALL.
  u64 max_instructions = 500'000'000;  ///< Safety cap on main-core commits.

  /// Background OS interference: every core takes a periodic kernel tick
  /// (scheduler/housekeeping), staggered across cores. This reproduces the
  /// paper's "cores undergoing different kernel mode switches": checkers
  /// stall at different times than the main core, the DBC fills, and
  /// backpressure transfers part of the stall to the main core — the
  /// dominant source of FlexStep's ~1% slowdown (Sec. VI-A).
  bool os_ticks = true;
  Cycle tick_period = us_to_cycles(1000.0);
  Cycle tick_cost = us_to_cycles(18.0);

  /// Engine selection. kQuantum is the default hot path; kStepwise remains
  /// available as the reference baseline (equivalence tests, bench baseline).
  Engine engine = Engine::kQuantum;

  /// kQuantumBounded: cap on the instructions one relaxed burst may run
  /// (bounds the clock lead a burst can build over the other cores, and with
  /// it the interleaving granularity advance() rendezvous points see).
  /// 0 = auto: max(segment_limit, channel_capacity / 2) — one DBC segment /
  /// channel-capacity worth of work.
  u64 skew_instructions = 0;

  /// Fault campaigns: a deadlocked / zero-progress co-simulation (e.g. the
  /// main core halting on a corrupted fetch without ever signalling task
  /// exit) is a legitimate experiment outcome (DUE), not a driver bug. With
  /// this set, the driver latches stalled() and reports "finished" instead
  /// of tripping its deadlock FLEX_CHECKs.
  bool tolerate_stall = false;

  /// Role-based topology: N producers x M checkers. Empty = legacy
  /// single-producer mode, equivalent to {{main_core, checkers}}. When set,
  /// `main_core`/`checkers` above are ignored (the driver mirrors roles[0]
  /// into them for legacy accessors). Producers must be pairwise distinct
  /// and no core may appear as both a producer and a checker — the paper's
  /// G.Configure mask registers are disjoint by construction; "any core may
  /// produce or check" is a per-run wiring choice, not a concurrent dual
  /// role on one core.
  std::vector<RoleBinding> roles;
};

/// Quantum-engine burst accounting (diagnostics; deliberately not part of
/// RunStats, whose field-wise equality the bit-identity proofs compare).
/// `rounds` counts every quantum_round() under kQuantum AND kQuantumBounded
/// (stepwise drives no quanta); the remaining fields are kQuantumBounded-only
/// and stay zero under the other engines.
struct CosimStats {
  u64 rounds = 0;           ///< Quantum scheduling rounds driven.
  u64 relaxed_bursts = 0;   ///< Bursts freed from the strict leapfrog bound.
  u64 strict_fallbacks = 0; ///< Contended rounds driven at the strict bound.
  u64 hook_breaks = 0;      ///< Bursts ended by a cross-core interaction hook
                            ///< (Core::RunExit::kQuantumBreak): segment
                            ///< publish, space-freeing pop, drain transition.
  u64 max_skew_cycles = 0;  ///< Largest clock lead a burst built over the
                            ///< slowest still-runnable core.
  u64 parked_producer_bursts = 0;  ///< Relaxed bursts of a producer whose
                                   ///< out-channels were all parked on a
                                   ///< fabric waitlist (no consumer attached,
                                   ///< so no pop can touch them — the burst
                                   ///< runs free instead of falling back to
                                   ///< the strict bound). Also counted in
                                   ///< relaxed_bursts.
};

struct RunStats {
  Cycle main_cycles = 0;       ///< First producer's cycles from start to HALT.
  u64 main_instructions = 0;   ///< First producer's retired instructions.
  Cycle completion_cycles = 0; ///< Until all checkers drained (detection done).
  u64 segments_produced = 0;   ///< Summed across every producer.
  u64 segments_verified = 0;
  u64 segments_failed = 0;
  u64 mem_entries = 0;
  u64 backpressure_events = 0;
  u64 max_channel_occupancy = 0;

  double ipc() const {
    return main_cycles == 0 ? 0.0
                            : static_cast<double>(main_instructions) /
                                  static_cast<double>(main_cycles);
  }

  /// Field-wise equality: the snapshot bit-identity tests compare a run-on
  /// session against a restore-and-run sibling through this.
  friend bool operator==(const RunStats&, const RunStats&) = default;
};

class VerifiedExecution final : public arch::TrapHandler {
 public:
  VerifiedExecution(Soc& soc, VerifiedRunConfig config);
  ~VerifiedExecution() override;

  /// Install the program context on the main core and, when checkers are
  /// configured, execute the FlexStep setup sequence (G.Configure,
  /// M.associate, M.check.enable) through the custom ISA. Single-role
  /// configs only — multi-producer topologies need one program per producer
  /// (the prepare(vector) overload).
  void prepare(const isa::Program& program);

  /// Multi-role prepare: programs[i] runs on roles[i].producer. Programs
  /// must occupy disjoint code/data regions — producers share the flat
  /// memory and the L2.
  void prepare(const std::vector<isa::Program>& programs);

  /// Advance the co-simulation by one step (one instruction on the runnable
  /// core with the smallest local clock). Returns false once finished.
  bool step_round();

  /// Advance the co-simulation by one quantum: pick the runnable core with
  /// the smallest local clock and run it for exactly as long as the stepwise
  /// scheduler would have kept picking it (bounded by the other runnable
  /// cores' clocks; hooks end the quantum early on cross-core events such as
  /// SegmentEnd pushes and backpressure-relieving pops). Runs at most
  /// `max_instructions` commits. Returns false once finished.
  bool quantum_round(u64 max_instructions = ~u64{0});

  /// Advance by ~`instruction_budget` retired instructions (summed across the
  /// participating cores) using the configured engine. Returns false once the
  /// co-simulation finished. Fault campaigns use this to interleave injection
  /// probes with execution at a granularity independent of the engine.
  bool advance(u64 instruction_budget);

  /// Total instructions retired across all producers and checkers.
  u64 total_instret() const;

  /// The normalized topology (config().roles, or the synthesized legacy
  /// {{main_core, checkers}} binding).
  const std::vector<RoleBinding>& roles() const { return roles_; }

  /// Run to completion (with the configured engine) and return the statistics.
  RunStats run();

  bool finished() const;
  RunStats stats() const;

  /// True once a tolerate_stall run hit a state no engine round can advance
  /// (co-simulation deadlock — the DUE signature). Latched until restore().
  bool stalled() const { return stalled_; }

  /// Burst accounting of the relaxed engine (all-zero under other engines).
  const CosimStats& cosim_stats() const { return cosim_; }
  /// The resolved kQuantumBounded burst cap (config_.skew_instructions, or
  /// the auto default derived from the SoC's FlexStep geometry).
  u64 skew_instructions() const { return skew_insts_; }

  Soc& soc() { return soc_; }
  const VerifiedRunConfig& config() const { return config_; }

  // ---- state capture (soc/snapshot.h) ----

  /// Capture the SoC plus this driver's state. The snapshot can seed either
  /// an in-place restore() on this driver or a fresh (Soc, VerifiedExecution)
  /// pair with the same configs and programs — sim::Session::fork.
  void save(Snapshot& out) const;
  Snapshot save() const;

  /// Restore SoC + driver state and re-establish the wiring prepare() set up
  /// (trap handlers, checker segment-done callbacks). The same programs must
  /// already be loaded in the SoC's image registry.
  void restore(const Snapshot& snapshot);

  // arch::TrapHandler
  arch::TrapAction on_trap(arch::Core& core, arch::TrapCause cause) override;

 private:
  void pump_checkers();
  /// Trap handlers + checker segment-done callbacks; shared by prepare() and
  /// restore() (a forked driver must point the restored cores at itself).
  void install_driver_wiring();
  arch::Core* pick_next_core();
  /// Local-clock bound up to which `chosen` would keep being picked by the
  /// stepwise scheduler (smallest-cycle-first, producers-then-checkers-order
  /// tie-break), assuming no other core's state changes meanwhile.
  Cycle quantum_bound(const arch::Core& chosen) const;
  /// kQuantumBounded bound: relax the strict bound where provably invisible
  /// (see Engine::kQuantumBounded), shrinking `budget` to the producer's
  /// guaranteed-headroom / skew window when a producer is chosen. The
  /// per-role lattice replaces the legacy global-main-clock rule: a producer
  /// out of headroom is bounded only by the consumers attached to *its*
  /// channels (or runs free while every out-channel is parked on a
  /// waitlist); a checker is bounded by the producer feeding its *current*
  /// in-channel.
  Cycle bounded_quantum(const arch::Core& chosen, u64& budget);
  void note_burst_skew(const arch::Core& chosen);
  /// Role index of a producer core, -1 for non-producers / foreign cores.
  i32 role_of(CoreId id) const;
  bool all_producers_halted() const;

  Soc& soc_;
  VerifiedRunConfig config_;
  u64 skew_insts_ = 0;  ///< Resolved kQuantumBounded burst cap.
  CosimStats cosim_;
  std::vector<RoleBinding> roles_;   ///< Normalized topology (>= 1 role).
  std::vector<CoreId> checker_ids_;  ///< Unique checkers, first-appearance order.
  std::vector<CoreId> sched_order_;  ///< Scheduler priority: producers, checkers.
  std::vector<i32> core_role_;       ///< Core id -> producer role index or -1.
  std::vector<bool> producer_halted_;  ///< Per role: task-exit seen.
  bool prepared_ = false;
  bool stalled_ = false;  ///< tolerate_stall: deadlock latched (DUE outcome).
};

}  // namespace flexstep::soc
