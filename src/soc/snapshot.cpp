#include "soc/snapshot.h"

namespace flexstep::soc {

void Snapshot::serialize(io::ArchiveWriter& ar) const {
  ar.begin_section(kSectionMemory);
  memory.serialize(ar);
  ar.end_section();

  ar.begin_section(kSectionL2);
  l2.serialize(ar);
  ar.end_section();

  ar.begin_section(kSectionCores);
  ar.put_varint(cores.size());
  for (const arch::Core::Snapshot& core : cores) core.serialize(ar);
  ar.end_section();

  ar.begin_section(kSectionFabric);
  fabric.serialize(ar);
  ar.end_section();

  ar.begin_section(kSectionDriver);
  ar.put_bool(exec_prepared);
  ar.put_u64(exec_halted_mask);
  ar.end_section();
}

void Snapshot::deserialize(io::ArchiveReader& ar) {
  if (ar.begin_section(kSectionMemory)) {
    memory.deserialize(ar);
    ar.end_section();
  }
  if (ar.begin_section(kSectionL2)) {
    l2.deserialize(ar);
    ar.end_section();
  }
  if (ar.begin_section(kSectionCores)) {
    cores.clear();
    const u64 count = ar.take_count(8);
    for (u64 i = 0; ar.ok() && i < count; ++i) {
      cores.emplace_back();
      cores.back().deserialize(ar);
    }
    ar.end_section();
  }
  if (ar.begin_section(kSectionFabric)) {
    fabric.deserialize(ar);
    ar.end_section();
  }
  if (ar.begin_section(kSectionDriver)) {
    exec_prepared = ar.take_bool();
    exec_halted_mask = ar.take_u64();
    ar.end_section();
  }
}

io::ArchiveError save_snapshot(const Snapshot& snapshot, const std::string& path) {
  io::ArchiveWriter ar(kSnapshotAppTag, kSnapshotFormatVersion);
  snapshot.serialize(ar);
  return ar.write_file(path);
}

io::ArchiveError load_snapshot(const std::string& path, Snapshot& out) {
  std::vector<u8> data;
  if (io::ArchiveError err = io::read_file(path, data); !err.ok()) return err;
  io::ArchiveReader ar(data.data(), data.size(), kSnapshotAppTag,
                       kSnapshotFormatVersion);
  out.deserialize(ar);
  return ar.error();
}

// ---------------------------------------------------------------------------
// snapshot_digest
// ---------------------------------------------------------------------------

namespace {

/// FNV-1a, fed field-by-field. Snapshot records contain padding (BtbEntry,
/// StreamItem, Way, ...), so hashing structs as raw bytes would fold
/// indeterminate host memory into the digest.
struct Fnv {
  u64 h = 14695981039346656037ULL;

  void bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const u8*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 1099511628211ULL;
    }
  }
  void word(u64 v) { bytes(&v, sizeof(v)); }
  void flag(bool b) { word(b ? 1 : 0); }

  void state(const arch::ArchState& s) {
    word(s.pc);
    for (u64 r : s.regs) word(r);
  }

  void cache(const arch::Cache::Snapshot& s) {
    for (const auto& way : s.ways) {
      word(way.tag);
      word(way.lru);
    }
    word(s.tick);
    word(s.hits);
    word(s.misses);
  }

  void bpred(const arch::BranchPredictor::Snapshot& s) {
    bytes(s.bht.data(), s.bht.size());
    for (const auto& entry : s.btb) {
      word(entry.pc);
      word(entry.target);
      flag(entry.valid);
      word(entry.lru);
    }
    for (Addr ra : s.ras) word(ra);
    word(s.ras_top);
    word(s.btb_tick);
  }

  void core(const arch::Core::Snapshot& s) {
    for (u64 r : s.regs) word(r);
    word(s.pc);
    flag(s.user_mode);
    word(s.csr_mepc);
    word(s.csr_mcause);
    word(s.csr_mscratch);
    cache(s.caches.l1i);
    cache(s.caches.l1d);
    bpred(s.bpred);
    word(s.last_fetch_line);
    word(s.reservation_addr);
    flag(s.reservation_valid);
    word(s.cycle);
    word(s.instret);
    word(s.user_instret);
    word(s.stall_cycles);
    word(s.mispredicts);
    word(s.timer_at);
    flag(s.timer_armed);
    flag(s.swi_pending);
    flag(s.suppress_traps);
    word(static_cast<u64>(s.status));
  }

  void item(const fs::StreamItem& s) {
    word(static_cast<u64>(s.kind));
    word(s.seq);
    word(s.visible_at);
    word(static_cast<u64>(s.mem.kind));
    word(s.mem.bytes);
    word(s.mem.addr);
    word(s.mem.data);
    state(s.state);
    word(s.inst_count);
  }

  void channel(const fs::Channel::Snapshot& s) {
    word(s.main_id);
    word(s.checker_id);
    word(s.items.size());
    for (const auto& it : s.items) item(it);
    word(s.segments.size());
    for (const auto& seg : s.segments) {
      word(seg.inst_count);
      word(seg.ready_at);
      word(seg.end_seq);
    }
    word(s.next_seq);
    word(s.last_popped_seq);
    word(s.last_pop_cycle);
    flag(s.closed);
    word(s.max_occupancy);
    word(s.backpressure_events);
    flag(s.fault.has_value());
    if (s.fault.has_value()) {
      word(s.fault->seq);
      word(s.fault->segment_end_seq);
      word(s.fault->injected_at);
      word(static_cast<u64>(s.fault->item_kind));
      word(s.fault->bit);
    }
  }

  void unit(const fs::CoreUnit::Snapshot& s) {
    flag(s.checking_enabled);
    flag(s.segment_active);
    word(s.segment_ic);
    word(s.checking_budget);
    word(s.segment_start_pc);
    flag(s.checker_busy);
    flag(s.replay_active);
    flag(s.replay_suspended);
    flag(s.have_thread_ctx);
    state(s.ass_thread_ctx);
    state(s.pending_scp);
    word(s.expected_ic);
    word(s.replayed);
    flag(s.segment_result_ok);
    flag(s.segment_verify_failed);
    flag(s.segment_abort);
    word(s.segments_produced);
    word(s.segments_verified);
    word(s.segments_failed);
    word(s.checkpoints_captured);
    word(s.mem_entries_logged);
    word(s.replayed_total);
  }
};

}  // namespace

u64 snapshot_digest(const Snapshot& snapshot) {
  Fnv fnv;

  fnv.word(snapshot.memory.pages.size());
  for (const auto& [id, page] : snapshot.memory.pages) {
    fnv.word(id);
    fnv.bytes(page.data(), page.size());
  }
  fnv.cache(snapshot.l2);
  fnv.word(snapshot.cores.size());
  for (const auto& core : snapshot.cores) fnv.core(core);

  const fs::Fabric::Snapshot& fabric = snapshot.fabric;
  fnv.word(fabric.main_mask);
  fnv.word(fabric.checker_mask);
  fnv.word(fabric.reporter.events.size());
  for (const auto& event : fabric.reporter.events) {
    fnv.word(event.checker);
    fnv.word(event.at);
    fnv.word(static_cast<u64>(event.kind));
    fnv.flag(event.attributed);
    fnv.word(event.latency);
  }
  fnv.word(fabric.reporter.attributed);
  fnv.word(fabric.channels.size());
  for (const auto& ch : fabric.channels) fnv.channel(ch);
  fnv.word(fabric.units.size());
  for (const auto& u : fabric.units) fnv.unit(u);
  for (const auto& outs : fabric.out_channels) {
    fnv.word(outs.size());
    for (std::size_t idx : outs) fnv.word(idx);
  }
  for (std::size_t idx : fabric.in_channel) fnv.word(idx);
  for (const auto& waitlist : fabric.waitlists) {
    fnv.word(waitlist.size());
    for (std::size_t idx : waitlist) fnv.word(idx);
  }

  fnv.flag(snapshot.exec_prepared);
  fnv.word(snapshot.exec_halted_mask);
  return fnv.h;
}

}  // namespace flexstep::soc
