// First-class SoC state capture: the unit of checkpoint/restore that the
// fault campaigns fork injections from and the sim::Session API exposes.
//
// A Snapshot spans everything that influences the forward simulation:
//   * arch::Memory        — every resident (touched) page, not 2^addr space;
//   * the shared L2 and every core's private L1 tag arrays + LRU state;
//   * per-core architectural state (registers, PC, CSRs), branch-predictor
//     tables, LR/SC reservation, timers, clocks and counters;
//   * the FlexStep fabric — global configuration registers, every DBC
//     channel's queued stream (rings + segment metadata + pending fault),
//     every CoreUnit's producer/checker state, the channel wiring and the
//     checker waitlists, and the error reporter's event log;
//   * the VerifiedExecution driver flags.
//
// Not captured: decoded program images (derived data — the restoring side
// loads the same programs, cf. sim::Session::fork), the extension-seam
// pointers (hooks/handlers/ports), which are re-derived by the restoring
// owners, and the per-core superinstruction trace caches (arch/trace.h) —
// pure host-speed state that Core::restore flushes so a restored or forked
// session re-records from its own execution. The per-core LR/SC reservation
// IS captured (arch::Core::Snapshot) and restore re-registers it in the
// shared arch::Memory registry so cross-agent invalidation keeps working in
// forks. Restoring is bit-exact: a restored SoC's subsequent execution is
// indistinguishable from the original continuing (tests/test_sim.cpp).
#pragma once

#include <vector>

#include "arch/cache.h"
#include "arch/core.h"
#include "arch/memory.h"
#include "flexstep/fabric.h"

namespace flexstep::soc {

struct Snapshot {
  arch::Memory::Snapshot memory;
  arch::Cache::Snapshot l2;
  std::vector<arch::Core::Snapshot> cores;
  fs::Fabric::Snapshot fabric;

  // Co-simulation driver state (filled by VerifiedExecution::save; a bare
  // Soc::save leaves the defaults).
  bool exec_prepared = false;
  bool exec_main_halted = false;

  /// Approximate host footprint (dominated by the resident memory pages).
  std::size_t bytes() const {
    std::size_t total = memory.bytes() + l2.bytes() + fabric.bytes();
    for (const auto& core : cores) total += core.bytes();
    return total;
  }
};

}  // namespace flexstep::soc
