// First-class SoC state capture: the unit of checkpoint/restore that the
// fault campaigns fork injections from and the sim::Session API exposes.
//
// A Snapshot spans everything that influences the forward simulation:
//   * arch::Memory        — every resident (touched) page, not 2^addr space;
//   * the shared L2 and every core's private L1 tag arrays + LRU state;
//   * per-core architectural state (registers, PC, CSRs), branch-predictor
//     tables, LR/SC reservation, timers, clocks and counters;
//   * the FlexStep fabric — global configuration registers, every DBC
//     channel's queued stream (rings + segment metadata + pending fault),
//     every CoreUnit's producer/checker state, the channel wiring and the
//     checker waitlists, and the error reporter's event log;
//   * the VerifiedExecution driver flags.
//
// Not captured: decoded program images (derived data — the restoring side
// loads the same programs, cf. sim::Session::fork), the extension-seam
// pointers (hooks/handlers/ports), which are re-derived by the restoring
// owners, and the per-core superinstruction trace caches (arch/trace.h) —
// pure host-speed state that Core::restore flushes so a restored or forked
// session re-records from its own execution. The per-core LR/SC reservation
// IS captured (arch::Core::Snapshot) and restore re-registers it in the
// shared arch::Memory registry so cross-agent invalidation keeps working in
// forks. Restoring is bit-exact: a restored SoC's subsequent execution is
// indistinguishable from the original continuing (tests/test_sim.cpp).
#pragma once

#include <string>
#include <vector>

#include "arch/cache.h"
#include "arch/core.h"
#include "arch/memory.h"
#include "common/archive.h"
#include "flexstep/fabric.h"

namespace flexstep::soc {

/// Wire-format identity of a serialized soc::Snapshot: the archive app tag
/// ("FSNP") and the snapshot format version. Policy: the version is bumped on
/// ANY layout change — in this header's sections or any component
/// serialize() — and readers reject every other version with a structured
/// kVersionSkew (no migration shims; persisted snapshots are caches their
/// owners recompute, not an interchange format).
inline constexpr u32 kSnapshotAppTag = 0x504E5346;  // "FSNP" little-endian.
// v2: the driver section's single exec_main_halted flag became the per-core
// exec_halted_mask for the role-based N-producer topology.
inline constexpr u32 kSnapshotFormatVersion = 2;

/// Section ids inside a snapshot archive, in file order. The resident-page
/// payload gets its own section so the (large, 8-aligned, raw-span) page data
/// can be mmap-read in place while the fiddly varint-packed state stays
/// compact.
enum SnapshotSection : u32 {
  kSectionMemory = 1,
  kSectionL2 = 2,
  kSectionCores = 3,
  kSectionFabric = 4,
  kSectionDriver = 5,
};

struct Snapshot {
  arch::Memory::Snapshot memory;
  arch::Cache::Snapshot l2;
  std::vector<arch::Core::Snapshot> cores;
  fs::Fabric::Snapshot fabric;

  // Co-simulation driver state (filled by VerifiedExecution::save; a bare
  // Soc::save leaves the defaults). exec_halted_mask holds one bit per
  // producer core id that has signalled task exit.
  bool exec_prepared = false;
  u64 exec_halted_mask = 0;

  /// Approximate host footprint (dominated by the resident memory pages).
  std::size_t bytes() const {
    std::size_t total = memory.bytes() + l2.bytes() + fabric.bytes();
    for (const auto& core : cores) total += core.bytes();
    return total;
  }

  /// Encode into `ar` as one CRC-guarded section per subsystem (the
  /// SnapshotSection ids above). `ar` must have been constructed with
  /// kSnapshotAppTag / kSnapshotFormatVersion.
  void serialize(io::ArchiveWriter& ar) const;

  /// Decode; mirrors serialize() exactly. On any failure (truncation, CRC,
  /// version skew, malformed payload) `ar.error()` is latched with the first
  /// failure and *this is left in a safe (possibly partial) state — callers
  /// must check `ar.ok()` before using the snapshot.
  void deserialize(io::ArchiveReader& ar);
};

/// Serialize `snapshot` and write it to `path` via temp-file + atomic rename
/// (a crashed writer never leaves a torn file — readers see the old file or
/// the complete new one).
io::ArchiveError save_snapshot(const Snapshot& snapshot, const std::string& path);

/// Read + decode `path` into `out`. On failure returns the structured error
/// and leaves `out` partially filled — treat it as garbage.
io::ArchiveError load_snapshot(const std::string& path, Snapshot& out);

/// Field-wise FNV-1a digest of a full SoC snapshot. Field-wise (never a raw
/// struct memcpy) so padding bytes in snapshot records can't leak
/// indeterminate host state into the digest. Shared by the fault flip
/// round-trip tests, the campaign determinism gates, and the snapshot-file
/// round-trip identity tests.
u64 snapshot_digest(const Snapshot& snapshot);

}  // namespace flexstep::soc
