#include "soc/soc.h"

#include "common/check.h"
#include "soc/snapshot.h"

namespace flexstep::soc {

Soc::Soc(const SocConfig& config)
    : config_(config),
      l2_(std::make_unique<arch::Cache>(config.l2, "L2")),
      fabric_(config.flexstep) {
  cores_.reserve(config.num_cores);
  for (CoreId id = 0; id < config.num_cores; ++id) {
    cores_.push_back(
        std::make_unique<arch::Core>(id, config.core, memory_, images_, l2_.get()));
    fabric_.attach(*cores_.back());
  }
}

const arch::LoadedImage* Soc::load_program(const isa::Program& program) {
  return images_.load(memory_, program);
}

Cycle Soc::max_cycle() const {
  Cycle max = 0;
  for (const auto& core : cores_) max = std::max(max, core->cycle());
  return max;
}

void Soc::save(Snapshot& out) const {
  memory_.save(out.memory);
  l2_->save(out.l2);
  out.cores.resize(cores_.size());
  for (std::size_t i = 0; i < cores_.size(); ++i) cores_[i]->save(out.cores[i]);
  fabric_.save(out.fabric);
}

Snapshot Soc::save() const {
  Snapshot out;
  save(out);
  return out;
}

void Soc::restore(const Snapshot& snapshot) {
  FLEX_CHECK_MSG(snapshot.cores.size() == cores_.size(),
                 "snapshot core-count mismatch (different SocConfig?)");
  memory_.restore(snapshot.memory);
  l2_->restore(snapshot.l2);
  for (std::size_t i = 0; i < cores_.size(); ++i) cores_[i]->restore(snapshot.cores[i]);
  // After the cores: unit restore re-derives each core's mem port/suppression.
  fabric_.restore(snapshot.fabric);
}

}  // namespace flexstep::soc
