#include "soc/soc.h"

namespace flexstep::soc {

Soc::Soc(const SocConfig& config)
    : config_(config),
      l2_(std::make_unique<arch::Cache>(config.l2, "L2")),
      fabric_(config.flexstep) {
  cores_.reserve(config.num_cores);
  for (CoreId id = 0; id < config.num_cores; ++id) {
    cores_.push_back(
        std::make_unique<arch::Core>(id, config.core, memory_, images_, l2_.get()));
    fabric_.attach(*cores_.back());
  }
}

const arch::LoadedImage* Soc::load_program(const isa::Program& program) {
  return images_.load(memory_, program);
}

Cycle Soc::max_cycle() const {
  Cycle max = 0;
  for (const auto& core : cores_) max = std::max(max, core->cycle());
  return max;
}

}  // namespace flexstep::soc
