// SoC-level configuration; defaults reproduce the paper's Tab. II.
#pragma once

#include <string>

#include "arch/config.h"
#include "common/types.h"
#include "flexstep/config.h"

namespace flexstep::soc {

struct SocConfig {
  u32 num_cores = 4;
  arch::CoreConfig core{};
  arch::CacheConfig l2{.size_bytes = 512 * 1024, .ways = 8, .line_bytes = 64, .latency = 40};
  fs::FlexStepConfig flexstep{};

  /// Paper configuration (Tab. II) with `cores` homogeneous Rockets.
  static SocConfig paper_default(u32 cores = 4);

  /// Render Tab. II ("Hardware configurations evaluated").
  std::string describe() const;
};

}  // namespace flexstep::soc
