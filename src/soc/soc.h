// SoC assembly: N homogeneous cores (each with its FlexStep unit) over a
// shared L2 and flat memory, mirroring the paper's evaluated platform.
#pragma once

#include <memory>
#include <vector>

#include "arch/cache.h"
#include "arch/core.h"
#include "arch/memory.h"
#include "arch/program_image.h"
#include "common/types.h"
#include "flexstep/fabric.h"
#include "soc/soc_config.h"

namespace flexstep::soc {

struct Snapshot;

class Soc {
 public:
  explicit Soc(const SocConfig& config);

  Soc(const Soc&) = delete;
  Soc& operator=(const Soc&) = delete;

  const SocConfig& config() const { return config_; }
  u32 num_cores() const { return static_cast<u32>(cores_.size()); }

  arch::Core& core(CoreId id) { return *cores_.at(id); }
  fs::CoreUnit& unit(CoreId id) { return fabric_.unit(id); }
  fs::Fabric& fabric() { return fabric_; }
  arch::Memory& memory() { return memory_; }
  arch::ImageRegistry& images() { return images_; }
  arch::Cache& l2() { return *l2_; }

  /// Load a program into simulated memory and register its decoded image.
  const arch::LoadedImage* load_program(const isa::Program& program);

  /// Highest local clock across all cores (simulated wall time).
  Cycle max_cycle() const;

  // ---- state capture (soc/snapshot.h) ----

  /// Capture the full SoC state (memory, caches, cores, fabric). Program
  /// images are derived data and not captured; restore into a fresh Soc
  /// requires the same programs loaded first (sim::Session::fork does this).
  void save(Snapshot& out) const;
  Snapshot save() const;

  /// Restore to a saved state, bit-exactly. Valid on the originating Soc or
  /// on a freshly constructed one with the same SocConfig.
  void restore(const Snapshot& snapshot);

 private:
  SocConfig config_;
  arch::Memory memory_;
  arch::ImageRegistry images_;
  std::unique_ptr<arch::Cache> l2_;
  fs::Fabric fabric_;
  std::vector<std::unique_ptr<arch::Core>> cores_;
};

}  // namespace flexstep::soc
