// Programmatic assembler: workload generators build simulator programs with
// it. Supports forward-referencing labels and multi-instruction pseudo-ops
// (64-bit `li`, unconditional `j`, ...).
#pragma once

#include <string>
#include <vector>

#include "common/types.h"
#include "isa/instruction.h"

namespace flexstep::isa {

/// Default load addresses of generated programs in the simulated flat memory.
inline constexpr Addr kDefaultCodeBase = 0x0001'0000;
inline constexpr Addr kDefaultDataBase = 0x0100'0000;

/// A fully assembled program: decoded instruction stream plus its memory image
/// parameters. Programs are position-dependent (loaded at code_base).
struct Program {
  std::string name;
  Addr code_base = kDefaultCodeBase;
  std::vector<Instruction> code;
  Addr data_base = kDefaultDataBase;
  u64 data_size = 0;  ///< Bytes of zero-initialised working-set data.

  Addr entry() const { return code_base; }
  Addr code_end() const { return code_base + code.size() * 4; }
  /// Binary image of the code segment (one 32-bit word per instruction).
  std::vector<u32> encode_all() const;
};

class Assembler {
 public:
  /// Opaque label handle. Valid until finalize().
  struct Label {
    u32 id = ~u32{0};
  };

  explicit Assembler(Addr code_base = kDefaultCodeBase) : code_base_(code_base) {}

  Label new_label();
  /// Bind `label` to the next emitted instruction. Each label binds once.
  void bind(Label label);

  /// Current emission address.
  Addr here() const { return code_base_ + code_.size() * 4; }
  std::size_t size() const { return code_.size(); }

  // ---- raw emission ----
  void emit(const Instruction& inst) { code_.push_back(inst); }

  // ---- ALU ----
  void add(u8 rd, u8 rs1, u8 rs2) { emit(make_r(Opcode::kAdd, rd, rs1, rs2)); }
  void sub(u8 rd, u8 rs1, u8 rs2) { emit(make_r(Opcode::kSub, rd, rs1, rs2)); }
  void and_(u8 rd, u8 rs1, u8 rs2) { emit(make_r(Opcode::kAnd, rd, rs1, rs2)); }
  void or_(u8 rd, u8 rs1, u8 rs2) { emit(make_r(Opcode::kOr, rd, rs1, rs2)); }
  void xor_(u8 rd, u8 rs1, u8 rs2) { emit(make_r(Opcode::kXor, rd, rs1, rs2)); }
  void sll(u8 rd, u8 rs1, u8 rs2) { emit(make_r(Opcode::kSll, rd, rs1, rs2)); }
  void srl(u8 rd, u8 rs1, u8 rs2) { emit(make_r(Opcode::kSrl, rd, rs1, rs2)); }
  void slt(u8 rd, u8 rs1, u8 rs2) { emit(make_r(Opcode::kSlt, rd, rs1, rs2)); }
  void sltu(u8 rd, u8 rs1, u8 rs2) { emit(make_r(Opcode::kSltu, rd, rs1, rs2)); }
  void mul(u8 rd, u8 rs1, u8 rs2) { emit(make_r(Opcode::kMul, rd, rs1, rs2)); }
  void div(u8 rd, u8 rs1, u8 rs2) { emit(make_r(Opcode::kDiv, rd, rs1, rs2)); }
  void rem(u8 rd, u8 rs1, u8 rs2) { emit(make_r(Opcode::kRem, rd, rs1, rs2)); }
  void addi(u8 rd, u8 rs1, i32 imm) { emit(make_i(Opcode::kAddi, rd, rs1, imm)); }
  void andi(u8 rd, u8 rs1, i32 imm) { emit(make_i(Opcode::kAndi, rd, rs1, imm)); }
  void ori(u8 rd, u8 rs1, i32 imm) { emit(make_i(Opcode::kOri, rd, rs1, imm)); }
  void xori(u8 rd, u8 rs1, i32 imm) { emit(make_i(Opcode::kXori, rd, rs1, imm)); }
  void slli(u8 rd, u8 rs1, i32 shamt) { emit(make_i(Opcode::kSlli, rd, rs1, shamt)); }
  void srli(u8 rd, u8 rs1, i32 shamt) { emit(make_i(Opcode::kSrli, rd, rs1, shamt)); }
  void srai(u8 rd, u8 rs1, i32 shamt) { emit(make_i(Opcode::kSrai, rd, rs1, shamt)); }
  void lui(u8 rd, i32 imm19) { emit(make_uj(Opcode::kLui, rd, imm19)); }

  // ---- memory ----
  void ld(u8 rd, u8 base, i32 off) { emit(make_i(Opcode::kLd, rd, base, off)); }
  void lw(u8 rd, u8 base, i32 off) { emit(make_i(Opcode::kLw, rd, base, off)); }
  void lb(u8 rd, u8 base, i32 off) { emit(make_i(Opcode::kLb, rd, base, off)); }
  void sd(u8 rs2, u8 base, i32 off) { emit(make_s(Opcode::kSd, rs2, base, off)); }
  void sw(u8 rs2, u8 base, i32 off) { emit(make_s(Opcode::kSw, rs2, base, off)); }
  void sb(u8 rs2, u8 base, i32 off) { emit(make_s(Opcode::kSb, rs2, base, off)); }
  void lr_d(u8 rd, u8 base) { emit(make_i(Opcode::kLrD, rd, base, 0)); }
  void sc_d(u8 rd, u8 base, u8 rs2) { emit(make_r(Opcode::kScD, rd, base, rs2)); }
  void amoadd_d(u8 rd, u8 base, u8 rs2) { emit(make_r(Opcode::kAmoaddD, rd, base, rs2)); }
  void amoswap_d(u8 rd, u8 base, u8 rs2) { emit(make_r(Opcode::kAmoswapD, rd, base, rs2)); }

  // ---- control transfer (label-based) ----
  void beq(u8 rs1, u8 rs2, Label target);
  void bne(u8 rs1, u8 rs2, Label target);
  void blt(u8 rs1, u8 rs2, Label target);
  void bge(u8 rs1, u8 rs2, Label target);
  void bltu(u8 rs1, u8 rs2, Label target);
  void bgeu(u8 rs1, u8 rs2, Label target);
  void jal(u8 rd, Label target);
  void j(Label target) { jal(kRegZero, target); }
  void jalr(u8 rd, u8 rs1, i32 off) { emit(make_i(Opcode::kJalr, rd, rs1, off)); }

  // ---- system ----
  void ecall() { emit(make_c(Opcode::kEcall)); }
  void halt() { emit(make_c(Opcode::kHalt)); }
  void fence() { emit(make_c(Opcode::kFence)); }
  void nop() { emit(make_nop()); }
  void csrrw(u8 rd, u16 csr, u8 rs1) { emit(make_i(Opcode::kCsrrw, rd, rs1, csr)); }
  void csrrs(u8 rd, u16 csr, u8 rs1) { emit(make_i(Opcode::kCsrrs, rd, rs1, csr)); }

  // ---- pseudo-ops ----
  /// Load an arbitrary 64-bit constant (1..8 instructions).
  void li(u8 rd, i64 value);
  void mv(u8 rd, u8 rs) { addi(rd, rs, 0); }

  /// Resolve all label fixups and return the program. The assembler is
  /// consumed: further emission is invalid.
  Program finalize(std::string name, Addr data_base = kDefaultDataBase, u64 data_size = 0);

 private:
  void branch_to(Opcode op, u8 rs1, u8 rs2, Label target);

  struct Fixup {
    std::size_t index;  ///< Instruction awaiting the label address.
    u32 label;
  };

  Addr code_base_;
  std::vector<Instruction> code_;
  std::vector<i64> label_addr_;  ///< -1 while unbound.
  std::vector<Fixup> fixups_;
  bool finalized_ = false;
};

}  // namespace flexstep::isa
