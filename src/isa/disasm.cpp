#include "isa/disasm.h"

#include <cstdio>

namespace flexstep::isa {

namespace {
// Lowercase mnemonic from the enum name ("kAddi" -> "addi", "kLrD" -> "lr.d").
std::string mnemonic(Opcode op) {
  std::string name = opcode_name(op);
  name.erase(0, 1);  // drop 'k'
  std::string out;
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    if (c >= 'A' && c <= 'Z') {
      if (i > 0) out += '.';
      out += static_cast<char>(c - 'A' + 'a');
    } else {
      out += c;
    }
  }
  return out;
}
}  // namespace

std::string disasm(const Instruction& inst) {
  char buf[128];
  const std::string m = mnemonic(inst.op);
  switch (opcode_format(inst.op)) {
    case Format::kR:
      std::snprintf(buf, sizeof buf, "%-14s x%u, x%u, x%u", m.c_str(), inst.rd, inst.rs1,
                    inst.rs2);
      break;
    case Format::kI:
      std::snprintf(buf, sizeof buf, "%-14s x%u, x%u, %d", m.c_str(), inst.rd, inst.rs1,
                    inst.imm);
      break;
    case Format::kS:
      std::snprintf(buf, sizeof buf, "%-14s x%u, %d(x%u)", m.c_str(), inst.rs2, inst.imm,
                    inst.rs1);
      break;
    case Format::kB:
      std::snprintf(buf, sizeof buf, "%-14s x%u, x%u, %d", m.c_str(), inst.rs1, inst.rs2,
                    inst.imm);
      break;
    case Format::kUJ:
      std::snprintf(buf, sizeof buf, "%-14s x%u, %d", m.c_str(), inst.rd, inst.imm);
      break;
    case Format::kC:
      std::snprintf(buf, sizeof buf, "%s", m.c_str());
      break;
  }
  return buf;
}

std::string disasm(const Program& prog) {
  std::string out;
  out += prog.name + ":\n";
  char addr[32];
  for (std::size_t i = 0; i < prog.code.size(); ++i) {
    std::snprintf(addr, sizeof addr, "  %08llx:  ",
                  static_cast<unsigned long long>(prog.code_base + i * 4));
    out += addr;
    out += disasm(prog.code[i]);
    out += '\n';
  }
  return out;
}

}  // namespace flexstep::isa
