#include "isa/assembler.h"

#include "common/check.h"

namespace flexstep::isa {

std::vector<u32> Program::encode_all() const {
  std::vector<u32> words;
  words.reserve(code.size());
  for (const auto& inst : code) words.push_back(encode(inst));
  return words;
}

Assembler::Label Assembler::new_label() {
  label_addr_.push_back(-1);
  return Label{static_cast<u32>(label_addr_.size() - 1)};
}

void Assembler::bind(Label label) {
  FLEX_CHECK(label.id < label_addr_.size());
  FLEX_CHECK_MSG(label_addr_[label.id] < 0, "label already bound");
  label_addr_[label.id] = static_cast<i64>(here());
}

void Assembler::branch_to(Opcode op, u8 rs1, u8 rs2, Label target) {
  FLEX_CHECK(target.id < label_addr_.size());
  fixups_.push_back({code_.size(), target.id});
  code_.push_back(make_b(op, rs1, rs2, 0));
}

void Assembler::beq(u8 rs1, u8 rs2, Label t) { branch_to(Opcode::kBeq, rs1, rs2, t); }
void Assembler::bne(u8 rs1, u8 rs2, Label t) { branch_to(Opcode::kBne, rs1, rs2, t); }
void Assembler::blt(u8 rs1, u8 rs2, Label t) { branch_to(Opcode::kBlt, rs1, rs2, t); }
void Assembler::bge(u8 rs1, u8 rs2, Label t) { branch_to(Opcode::kBge, rs1, rs2, t); }
void Assembler::bltu(u8 rs1, u8 rs2, Label t) { branch_to(Opcode::kBltu, rs1, rs2, t); }
void Assembler::bgeu(u8 rs1, u8 rs2, Label t) { branch_to(Opcode::kBgeu, rs1, rs2, t); }

void Assembler::jal(u8 rd, Label target) {
  FLEX_CHECK(target.id < label_addr_.size());
  fixups_.push_back({code_.size(), target.id});
  code_.push_back(make_uj(Opcode::kJal, rd, 0));
}

void Assembler::li(u8 rd, i64 value) {
  if (value >= kImm14Min && value <= kImm14Max) {
    addi(rd, kRegZero, static_cast<i32>(value));
    return;
  }
  // 32-bit path: LUI (imm19 << 13) + ADDI covers most of [-2^31, 2^31).
  if (value >= INT64_C(-0x80000000) && value < INT64_C(0x80000000)) {
    const i64 hi = (value + (1 << (kLuiShift - 1))) >> kLuiShift;  // round to nearest
    const i64 lo = value - (hi << kLuiShift);
    if (hi >= kImm19Min && hi <= kImm19Max) {
      FLEX_CHECK(lo >= kImm14Min && lo <= kImm14Max);
      lui(rd, static_cast<i32>(hi));
      if (lo != 0) addi(rd, rd, static_cast<i32>(lo));
      return;
    }
    // hi overflows imm19 (values near ±2^31): fall through to the long form.
  }
  // Full 64-bit: bits 63..51, then three 13-bit chunks, then the low 12 bits
  // (13 + 13·3 + 12 = 64), built by shift-and-add.
  const auto uval = static_cast<u64>(value);
  lui(rd, static_cast<i32>((uval >> 51) & 0x1FFF));  // top 13 bits at position 13
  srli(rd, rd, kLuiShift);                           // now rd = bits 63..51
  for (int pos = 38; pos >= 12; pos -= 13) {
    slli(rd, rd, 13);
    const auto chunk = static_cast<i32>((uval >> pos) & 0x1FFF);
    if (chunk != 0) addi(rd, rd, chunk);
  }
  slli(rd, rd, 12);
  const auto low = static_cast<i32>(uval & 0xFFF);
  if (low != 0) addi(rd, rd, low);
}

Program Assembler::finalize(std::string name, Addr data_base, u64 data_size) {
  FLEX_CHECK_MSG(!finalized_, "assembler already finalized");
  finalized_ = true;
  for (const auto& fixup : fixups_) {
    const i64 target = label_addr_[fixup.label];
    FLEX_CHECK_MSG(target >= 0, "unbound label referenced");
    const Addr inst_addr = code_base_ + fixup.index * 4;
    const i64 offset = target - static_cast<i64>(inst_addr);
    code_[fixup.index].imm = static_cast<i32>(offset);
  }
  Program prog;
  prog.name = std::move(name);
  prog.code_base = code_base_;
  prog.code = std::move(code_);
  prog.data_base = data_base;
  prog.data_size = data_size;
  // Validate that every instruction encodes (range-checks immediates).
  for (const auto& inst : prog.code) (void)encode(inst);
  return prog;
}

}  // namespace flexstep::isa
