// Instruction set of the simulated FlexStep SoC.
//
// The simulated cores execute an RV64-flavoured subset (integer ALU, M-ext
// multiply/divide, A-ext LR/SC/AMO, branches, loads/stores, a small CSR file)
// plus the FlexStep custom control ISA of the paper's Tab. I. Encodings are a
// regular 32-bit format of our own (documented in instruction.h); the paper's
// contribution is the *control interface*, not RISC-V binary compatibility.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace flexstep::isa {

/// Instruction encoding formats (see instruction.h for bit layouts).
enum class Format : u8 {
  kR,   ///< rd, rs1, rs2
  kI,   ///< rd, rs1, imm14 (also CSR ops: imm = CSR index)
  kS,   ///< rs2 (data), rs1 (base), imm14 — stores
  kB,   ///< rs1, rs2, imm14 (instruction offset) — conditional branches
  kUJ,  ///< rd, imm19 — LUI / JAL
  kC,   ///< no operands (system / FlexStep control)
};

/// Memory behaviour of an opcode; drives MAL logging and cache accesses.
enum class MemKind : u8 { kNone, kLoad, kStore, kAmo, kLoadReserved, kStoreConditional };

// X-macro: mnemonic, format, memory kind, result-latency cycles (Rocket-like:
// 1 for ALU, 4 for MUL, 33 for DIV per the in-order Rocket divider).
// clang-format off
#define FLEXSTEP_OPCODE_LIST(X)                                   \
  /* ALU register-register */                                     \
  X(kAdd,    kR, kNone, 1)  X(kSub,    kR, kNone, 1)              \
  X(kSll,    kR, kNone, 1)  X(kSrl,    kR, kNone, 1)              \
  X(kSra,    kR, kNone, 1)  X(kAnd,    kR, kNone, 1)              \
  X(kOr,     kR, kNone, 1)  X(kXor,    kR, kNone, 1)              \
  X(kSlt,    kR, kNone, 1)  X(kSltu,   kR, kNone, 1)              \
  X(kMul,    kR, kNone, 4)  X(kMulh,   kR, kNone, 4)              \
  X(kDiv,    kR, kNone, 33) X(kDivu,   kR, kNone, 33)             \
  X(kRem,    kR, kNone, 33) X(kRemu,   kR, kNone, 33)             \
  /* ALU register-immediate */                                    \
  X(kAddi,   kI, kNone, 1)  X(kAndi,   kI, kNone, 1)              \
  X(kOri,    kI, kNone, 1)  X(kXori,   kI, kNone, 1)              \
  X(kSlli,   kI, kNone, 1)  X(kSrli,   kI, kNone, 1)              \
  X(kSrai,   kI, kNone, 1)  X(kSlti,   kI, kNone, 1)              \
  X(kSltiu,  kI, kNone, 1)                                        \
  X(kLui,    kUJ, kNone, 1)                                       \
  /* Control transfer */                                          \
  X(kBeq,    kB, kNone, 1)  X(kBne,    kB, kNone, 1)              \
  X(kBlt,    kB, kNone, 1)  X(kBge,    kB, kNone, 1)              \
  X(kBltu,   kB, kNone, 1)  X(kBgeu,   kB, kNone, 1)              \
  X(kJal,    kUJ, kNone, 1) X(kJalr,   kI, kNone, 1)              \
  /* Loads / stores */                                            \
  X(kLb,     kI, kLoad, 1)  X(kLbu,    kI, kLoad, 1)              \
  X(kLh,     kI, kLoad, 1)  X(kLhu,    kI, kLoad, 1)              \
  X(kLw,     kI, kLoad, 1)  X(kLwu,    kI, kLoad, 1)              \
  X(kLd,     kI, kLoad, 1)                                        \
  X(kSb,     kS, kStore, 1) X(kSh,     kS, kStore, 1)             \
  X(kSw,     kS, kStore, 1) X(kSd,     kS, kStore, 1)             \
  /* A-extension (64-bit) */                                      \
  X(kLrD,    kI, kLoadReserved, 2)                                \
  X(kScD,    kR, kStoreConditional, 2)                            \
  X(kAmoaddD, kR, kAmo, 2) X(kAmoswapD, kR, kAmo, 2)              \
  X(kAmoxorD, kR, kAmo, 2) X(kAmoandD,  kR, kAmo, 2)              \
  X(kAmoorD,  kR, kAmo, 2)                                        \
  /* System */                                                    \
  X(kEcall,  kC, kNone, 1) X(kMret,   kC, kNone, 1)               \
  X(kWfi,    kC, kNone, 1) X(kFence,  kC, kNone, 1)               \
  X(kHalt,   kC, kNone, 1)                                        \
  X(kCsrrw,  kI, kNone, 1) X(kCsrrs,  kI, kNone, 1)               \
  /* FlexStep custom ISA (paper Tab. I) */                        \
  X(kGIdsContain, kR, kNone, 1)  /* G.IDs.contain  */             \
  X(kGConfigure,  kR, kNone, 1)  /* G.Configure    */             \
  X(kMAssociate,  kR, kNone, 1)  /* M.associate    */             \
  X(kMCheck,      kI, kNone, 1)  /* M.check        */             \
  X(kCCheckState, kI, kNone, 1)  /* C.check_state  */             \
  X(kCRecord,     kC, kNone, 1)  /* C.record       */             \
  X(kCApply,      kC, kNone, 1)  /* C.apply        */             \
  X(kCJal,        kC, kNone, 1)  /* C.jal          */             \
  X(kCResult,     kR, kNone, 1)  /* C.result       */
// clang-format on

enum class Opcode : u8 {
#define FLEXSTEP_ENUM(name, fmt, mem, lat) name,
  FLEXSTEP_OPCODE_LIST(FLEXSTEP_ENUM)
#undef FLEXSTEP_ENUM
      kCount_,
};

inline constexpr std::size_t kOpcodeCount = static_cast<std::size_t>(Opcode::kCount_);

namespace detail {
struct OpInfo {
  const char* name;
  Format format;
  MemKind mem;
  u8 latency;
};

inline constexpr OpInfo kOpInfo[kOpcodeCount] = {
#define FLEXSTEP_INFO(name, fmt, mem, lat) {#name, Format::fmt, MemKind::mem, lat},
    FLEXSTEP_OPCODE_LIST(FLEXSTEP_INFO)
#undef FLEXSTEP_INFO
};
}  // namespace detail

constexpr const char* opcode_name(Opcode op) {
  return detail::kOpInfo[static_cast<std::size_t>(op)].name;
}
constexpr Format opcode_format(Opcode op) {
  return detail::kOpInfo[static_cast<std::size_t>(op)].format;
}
constexpr MemKind opcode_mem_kind(Opcode op) {
  return detail::kOpInfo[static_cast<std::size_t>(op)].mem;
}
/// Functional-unit result latency in cycles (Rocket: iterative divider).
constexpr u8 opcode_latency(Opcode op) {
  return detail::kOpInfo[static_cast<std::size_t>(op)].latency;
}

constexpr bool is_cond_branch(Opcode op) { return opcode_format(op) == Format::kB; }
constexpr bool is_jump(Opcode op) { return op == Opcode::kJal || op == Opcode::kJalr; }
constexpr bool is_memory(Opcode op) { return opcode_mem_kind(op) != MemKind::kNone; }
constexpr bool is_load_like(Opcode op) {
  const MemKind k = opcode_mem_kind(op);
  return k == MemKind::kLoad || k == MemKind::kLoadReserved || k == MemKind::kAmo;
}
constexpr bool is_store_like(Opcode op) {
  const MemKind k = opcode_mem_kind(op);
  return k == MemKind::kStore || k == MemKind::kStoreConditional || k == MemKind::kAmo;
}
constexpr bool is_flexstep_custom(Opcode op) {
  return op >= Opcode::kGIdsContain && op <= Opcode::kCResult;
}

/// Number of bytes touched by a memory opcode (access width).
constexpr u32 mem_access_bytes(Opcode op) {
  switch (op) {
    case Opcode::kLb:
    case Opcode::kLbu:
    case Opcode::kSb: return 1;
    case Opcode::kLh:
    case Opcode::kLhu:
    case Opcode::kSh: return 2;
    case Opcode::kLw:
    case Opcode::kLwu:
    case Opcode::kSw: return 4;
    default: return is_memory(op) ? 8 : 0;
  }
}

}  // namespace flexstep::isa
