// CSR index assignments for the simulated cores' (deliberately small) CSR file.
#pragma once

#include "common/types.h"

namespace flexstep::isa {

enum Csr : u16 {
  kCsrMhartid = 0xF14,  ///< Core id (read-only).
  kCsrCycle = 0xC00,    ///< Local cycle counter (read-only).
  kCsrInstret = 0xC02,  ///< Retired instruction counter (read-only).
  kCsrMstatus = 0x300,  ///< Bit 0: 1 = kernel/machine mode, 0 = user mode.
  kCsrMepc = 0x341,     ///< Trap return PC.
  kCsrMcause = 0x342,   ///< Trap cause (see arch/trap.h).
  kCsrMscratch = 0x340, ///< Kernel scratch register.
};

}  // namespace flexstep::isa
