// Instruction and program disassembly (debugging / tracing / tests).
#pragma once

#include <string>

#include "isa/assembler.h"
#include "isa/instruction.h"

namespace flexstep::isa {

/// Single instruction, e.g. "add  x3, x1, x2" or "beq  x1, x2, -16".
std::string disasm(const Instruction& inst);

/// Whole program with addresses, one instruction per line.
std::string disasm(const Program& prog);

}  // namespace flexstep::isa
