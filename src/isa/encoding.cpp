#include "common/check.h"
#include "isa/instruction.h"

namespace flexstep::isa {

namespace {

constexpr u32 kRegMask = 0x1F;
constexpr u32 kImm14Mask = 0x3FFF;
constexpr u32 kImm19Mask = 0x7FFFF;

u32 pack_imm14(i32 imm) {
  FLEX_CHECK_MSG(imm >= kImm14Min && imm <= kImm14Max, "imm14 out of range");
  return static_cast<u32>(imm) & kImm14Mask;
}

i32 unpack_imm14(u32 bits) {
  // Sign-extend from 14 bits.
  const i32 v = static_cast<i32>(bits & kImm14Mask);
  return (v << 18) >> 18;
}

u32 pack_imm19(i32 imm) {
  FLEX_CHECK_MSG(imm >= kImm19Min && imm <= kImm19Max, "imm19 out of range");
  return static_cast<u32>(imm) & kImm19Mask;
}

i32 unpack_imm19(u32 bits) {
  const i32 v = static_cast<i32>(bits & kImm19Mask);
  return (v << 13) >> 13;
}

}  // namespace

u32 encode(const Instruction& inst) {
  const u32 op = static_cast<u32>(inst.op) << 24;
  switch (opcode_format(inst.op)) {
    case Format::kR:
      return op | (u32{inst.rd} & kRegMask) << 19 | (u32{inst.rs1} & kRegMask) << 14 |
             (u32{inst.rs2} & kRegMask) << 9;
    case Format::kI:
      return op | (u32{inst.rd} & kRegMask) << 19 | (u32{inst.rs1} & kRegMask) << 14 |
             pack_imm14(inst.imm);
    case Format::kS:
      return op | (u32{inst.rs2} & kRegMask) << 19 | (u32{inst.rs1} & kRegMask) << 14 |
             pack_imm14(inst.imm);
    case Format::kB: {
      FLEX_CHECK_MSG(inst.imm % 4 == 0, "branch offset must be 4-byte aligned");
      return op | (u32{inst.rs1} & kRegMask) << 19 | (u32{inst.rs2} & kRegMask) << 14 |
             pack_imm14(inst.imm / 4);
    }
    case Format::kUJ: {
      i32 imm = inst.imm;
      if (inst.op == Opcode::kJal) {
        FLEX_CHECK_MSG(imm % 4 == 0, "jump offset must be 4-byte aligned");
        imm /= 4;
      }
      return op | (u32{inst.rd} & kRegMask) << 19 | pack_imm19(imm);
    }
    case Format::kC:
      return op;
  }
  FLEX_CHECK_MSG(false, "unreachable format");
  return 0;
}

std::optional<Instruction> decode(u32 word) {
  const u32 op_byte = word >> 24;
  if (op_byte >= kOpcodeCount) return std::nullopt;
  const auto op = static_cast<Opcode>(op_byte);

  Instruction inst;
  inst.op = op;
  switch (opcode_format(op)) {
    case Format::kR:
      inst.rd = static_cast<u8>((word >> 19) & kRegMask);
      inst.rs1 = static_cast<u8>((word >> 14) & kRegMask);
      inst.rs2 = static_cast<u8>((word >> 9) & kRegMask);
      if ((word & 0x1FF) != 0) return std::nullopt;
      break;
    case Format::kI:
      inst.rd = static_cast<u8>((word >> 19) & kRegMask);
      inst.rs1 = static_cast<u8>((word >> 14) & kRegMask);
      inst.imm = unpack_imm14(word);
      break;
    case Format::kS:
      inst.rs2 = static_cast<u8>((word >> 19) & kRegMask);
      inst.rs1 = static_cast<u8>((word >> 14) & kRegMask);
      inst.imm = unpack_imm14(word);
      break;
    case Format::kB:
      inst.rs1 = static_cast<u8>((word >> 19) & kRegMask);
      inst.rs2 = static_cast<u8>((word >> 14) & kRegMask);
      inst.imm = unpack_imm14(word) * 4;
      break;
    case Format::kUJ:
      inst.rd = static_cast<u8>((word >> 19) & kRegMask);
      inst.imm = unpack_imm19(word);
      if (op == Opcode::kJal) inst.imm *= 4;
      break;
    case Format::kC:
      if ((word & 0x00FFFFFF) != 0) return std::nullopt;
      break;
  }
  return inst;
}

}  // namespace flexstep::isa
