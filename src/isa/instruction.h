// Decoded instruction representation and its 32-bit binary encoding.
//
// Encoding layout (all formats place the opcode in the top byte):
//
//   bits   31..24   23..19   18..14   13..9    8..0
//   R:     opcode   rd       rs1      rs2      0
//   I:     opcode   rd       rs1      imm14 (signed, bits 13..0)
//   S:     opcode   rs2      rs1      imm14 (signed)          [stores]
//   B:     opcode   rs1      rs2      imm14 (signed, in units of 4 bytes)
//   UJ:    opcode   rd       imm19 (signed, bits 18..0)
//             LUI: value = imm19 << 13;  JAL: byte offset = imm19 * 4
//   C:     opcode   0
//
// CSR instructions use I-format with `imm` holding the CSR index.
#pragma once

#include <optional>

#include "common/types.h"
#include "isa/opcode.h"

namespace flexstep::isa {

/// Register indices are 0..31; x0 is hardwired to zero.
inline constexpr u8 kNumRegs = 32;
inline constexpr u8 kRegZero = 0;

/// LUI materialises imm19 << kLuiShift.
inline constexpr int kLuiShift = 13;

/// Immediate ranges.
inline constexpr i32 kImm14Min = -(1 << 13);
inline constexpr i32 kImm14Max = (1 << 13) - 1;
inline constexpr i32 kImm19Min = -(1 << 18);
inline constexpr i32 kImm19Max = (1 << 18) - 1;

struct Instruction {
  Opcode op = Opcode::kHalt;
  u8 rd = 0;
  u8 rs1 = 0;
  u8 rs2 = 0;
  /// I/S: byte immediate. B: byte offset (multiple of 4). UJ: see header note.
  i32 imm = 0;

  friend bool operator==(const Instruction&, const Instruction&) = default;
};

/// Encode to the 32-bit binary form. Immediates out of range abort (the
/// assembler validates ranges when building programs).
u32 encode(const Instruction& inst);

/// Decode a 32-bit word; std::nullopt for an invalid opcode byte or a
/// malformed encoding (reserved bits set).
std::optional<Instruction> decode(u32 word);

// ---- Convenience constructors (used by the assembler, tests and kernel) ----

inline Instruction make_r(Opcode op, u8 rd, u8 rs1, u8 rs2) { return {op, rd, rs1, rs2, 0}; }
inline Instruction make_i(Opcode op, u8 rd, u8 rs1, i32 imm) { return {op, rd, rs1, 0, imm}; }
inline Instruction make_s(Opcode op, u8 rs2, u8 rs1, i32 imm) { return {op, 0, rs1, rs2, imm}; }
inline Instruction make_b(Opcode op, u8 rs1, u8 rs2, i32 offset) {
  return {op, 0, rs1, rs2, offset};
}
inline Instruction make_uj(Opcode op, u8 rd, i32 imm) { return {op, rd, 0, 0, imm}; }
inline Instruction make_c(Opcode op) { return {op, 0, 0, 0, 0}; }
inline Instruction make_nop() { return make_i(Opcode::kAddi, 0, 0, 0); }

}  // namespace flexstep::isa
