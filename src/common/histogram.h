// Fixed-bin histogram with density output and ASCII rendering.
//
// Fig. 7 of the paper plots the *density* of error-detection latency per
// workload; benches use this class to produce the same series.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.h"

namespace flexstep {

class Histogram {
 public:
  /// Uniform bins covering [lo, hi); samples outside are clamped to the edge bins.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void add_n(double x, u64 n);

  std::size_t bin_count() const { return counts_.size(); }
  u64 total() const { return total_; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  double bin_width() const { return width_; }

  /// Center of bin i.
  double bin_center(std::size_t i) const;
  u64 bin(std::size_t i) const { return counts_[i]; }

  /// Probability density at bin i (integrates to ~1 over the range).
  double density(std::size_t i) const;

  /// Fraction of samples with value <= x (empirical CDF at bin resolution).
  double cdf(double x) const;

  /// Multi-line ASCII bar chart of the density, `width` columns wide.
  std::string render(std::size_t width = 60) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<u64> counts_;
  u64 total_ = 0;
};

}  // namespace flexstep
