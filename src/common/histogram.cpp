#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace flexstep {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  FLEX_CHECK(hi > lo);
  FLEX_CHECK(bins > 0);
}

void Histogram::add(double x) { add_n(x, 1); }

void Histogram::add_n(double x, u64 n) {
  auto idx = static_cast<std::ptrdiff_t>(std::floor((x - lo_) / width_));
  idx = std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(idx)] += n;
  total_ += n;
}

double Histogram::bin_center(std::size_t i) const {
  return lo_ + (static_cast<double>(i) + 0.5) * width_;
}

double Histogram::density(std::size_t i) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[i]) / (static_cast<double>(total_) * width_);
}

double Histogram::cdf(double x) const {
  if (total_ == 0) return 0.0;
  u64 below = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    // The last bin's upper edge is hi_ by construction; accumulating
    // lo_ + (i+1)*width_ can land a ULP above it under floating-point
    // rounding, making cdf(hi_) < 1. Pin it instead of recomputing it.
    const double upper =
        i + 1 == counts_.size() ? hi_ : lo_ + static_cast<double>(i + 1) * width_;
    if (upper <= x) {
      below += counts_[i];
    } else {
      break;
    }
  }
  return static_cast<double>(below) / static_cast<double>(total_);
}

std::string Histogram::render(std::size_t width) const {
  u64 peak = 0;
  for (u64 c : counts_) peak = std::max(peak, c);
  std::string out;
  char label[32];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::size_t bar =
        peak == 0 ? 0 : static_cast<std::size_t>(counts_[i] * width / peak);
    std::snprintf(label, sizeof label, "%10.2f | ", bin_center(i));
    out += label;
    // Assemble the bar in the string itself: a fixed stack line would
    // silently truncate wide charts (width ≳ 240) including the count.
    out.append(bar, '#');
    out.append(width - std::min(bar, width) + 1, ' ');
    std::snprintf(label, sizeof label, "%llu\n",
                  static_cast<unsigned long long>(counts_[i]));
    out += label;
  }
  return out;
}

}  // namespace flexstep
