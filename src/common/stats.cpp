#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace flexstep {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double geomean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) {
    FLEX_CHECK_MSG(x > 0.0, "geomean requires strictly positive inputs");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double percentile(std::span<const double> xs, double p) {
  FLEX_CHECK(!xs.empty());
  FLEX_CHECK(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

}  // namespace flexstep
