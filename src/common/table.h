// Console table printer. Benches print paper tables/figure series with it so
// the output is directly comparable with the publication.
#pragma once

#include <string>
#include <vector>

namespace flexstep {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append one row; must have the same arity as the header row.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format a double with `prec` decimals.
  static std::string num(double v, int prec = 2);
  /// Format as percentage with sign, e.g. "+2.21%".
  static std::string pct(double fraction, int prec = 2);

  /// Render with aligned columns and a header rule.
  std::string render() const;

  /// Render directly to stdout.
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace flexstep
