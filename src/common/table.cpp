#include "common/table.h"

#include <algorithm>
#include <cstdio>

#include "common/check.h"

namespace flexstep {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  FLEX_CHECK_MSG(cells.size() == headers_.size(), "row arity must match header");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

std::string Table::pct(double fraction, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%+.*f%%", prec, fraction * 100.0);
  return buf;
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());

  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += "| ";
      out += row[c];
      out.append(widths[c] - row[c].size() + 1, ' ');
    }
    out += "|\n";
  };

  std::string out;
  emit_row(headers_, out);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out += "|";
    out.append(widths[c] + 2, '-');
  }
  out += "|\n";
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

void Table::print() const { std::fputs(render().c_str(), stdout); }

}  // namespace flexstep
