// Internal invariant checking. FLEX_CHECK is always on (simulation correctness
// beats the negligible cost); FLEX_DCHECK compiles out in release builds.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace flexstep::detail {
[[noreturn]] inline void check_failed(const char* cond, const char* file, int line,
                                      const char* msg) {
  std::fprintf(stderr, "FLEX_CHECK failed: %s\n  at %s:%d\n  %s\n", cond, file, line,
               msg != nullptr ? msg : "");
  std::abort();
}
}  // namespace flexstep::detail

#define FLEX_CHECK(cond)                                                        \
  do {                                                                          \
    if (!(cond)) ::flexstep::detail::check_failed(#cond, __FILE__, __LINE__, nullptr); \
  } while (false)

#define FLEX_CHECK_MSG(cond, msg)                                               \
  do {                                                                          \
    if (!(cond)) ::flexstep::detail::check_failed(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)

#ifdef NDEBUG
#define FLEX_DCHECK(cond) \
  do {                    \
  } while (false)
#else
#define FLEX_DCHECK(cond) FLEX_CHECK(cond)
#endif
