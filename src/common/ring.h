// Growable power-of-two ring buffer (SPSC queue storage).
//
// std::deque pays a block-map indirection and an allocation every few dozen
// elements; the DBC channels push/pop one StreamItem per logged memory access,
// which made deque traffic a visible slice of simulator time. The ring keeps a
// contiguous power-of-two array indexed with a mask, growing (rarely) by
// doubling when a DMA spill pushes occupancy past the allocated capacity.
#pragma once

#include <bit>
#include <cstddef>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace flexstep {

template <typename T>
class Ring {
 public:
  explicit Ring(std::size_t min_capacity = 16)
      : buf_(std::bit_ceil(min_capacity < 2 ? std::size_t{2} : min_capacity)),
        mask_(buf_.size() - 1) {}

  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }
  std::size_t capacity() const { return buf_.size(); }

  T& front() {
    FLEX_DCHECK(count_ > 0);
    return buf_[head_];
  }
  const T& front() const {
    FLEX_DCHECK(count_ > 0);
    return buf_[head_];
  }
  T& back() {
    FLEX_DCHECK(count_ > 0);
    return buf_[(head_ + count_ - 1) & mask_];
  }
  const T& back() const {
    FLEX_DCHECK(count_ > 0);
    return buf_[(head_ + count_ - 1) & mask_];
  }

  /// Indexed access relative to the front (0 = oldest element).
  T& operator[](std::size_t i) {
    FLEX_DCHECK(i < count_);
    return buf_[(head_ + i) & mask_];
  }
  const T& operator[](std::size_t i) const {
    FLEX_DCHECK(i < count_);
    return buf_[(head_ + i) & mask_];
  }

  /// Append a freshly value-initialised element and return it.
  T& emplace_back() {
    if (count_ == buf_.size()) [[unlikely]] grow();
    T& slot = buf_[(head_ + count_) & mask_];
    slot = T{};
    ++count_;
    return slot;
  }

  /// Append WITHOUT re-initialising the slot: the returned element holds
  /// whatever a previously popped element left there. Callers must overwrite
  /// every field a consumer can observe. Exists because the hot DBC push
  /// (one kMem StreamItem per logged memory access) otherwise spends most of
  /// its time zeroing a ~300-byte ArchState that kMem entries never read.
  T& emplace_back_raw() {
    if (count_ == buf_.size()) [[unlikely]] grow();
    T& slot = buf_[(head_ + count_) & mask_];
    ++count_;
    return slot;
  }

  void push_back(const T& value) { emplace_back() = value; }

  void pop_front() {
    FLEX_DCHECK(count_ > 0);
    head_ = (head_ + 1) & mask_;
    --count_;
  }

  void clear() {
    head_ = 0;
    count_ = 0;
  }

 private:
  void grow() {
    std::vector<T> next(buf_.size() * 2);
    for (std::size_t i = 0; i < count_; ++i) next[i] = buf_[(head_ + i) & mask_];
    buf_ = std::move(next);
    mask_ = buf_.size() - 1;
    head_ = 0;
  }

  std::vector<T> buf_;
  std::size_t mask_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

}  // namespace flexstep
