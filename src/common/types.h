// Fundamental types and global constants shared by every FlexStep module.
#pragma once

#include <cstdint>

namespace flexstep {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// Simulated clock cycles. All core-local and SoC-global timestamps use this.
using Cycle = std::uint64_t;

/// Physical/virtual address in the simulated flat address space.
using Addr = std::uint64_t;

/// Identifies a core inside an SoC. Cores are numbered 0..n-1.
using CoreId = std::uint32_t;

inline constexpr CoreId kInvalidCore = ~CoreId{0};

/// Paper, Tab. II: all cores run at 1.6 GHz.
inline constexpr double kClockHz = 1.6e9;

/// Cycles per microsecond at the paper's clock (1600).
inline constexpr double kCyclesPerUs = kClockHz / 1e6;

/// Convert a cycle count to microseconds of simulated time.
constexpr double cycles_to_us(Cycle c) { return static_cast<double>(c) / kCyclesPerUs; }

/// Convert microseconds of simulated time to cycles.
constexpr Cycle us_to_cycles(double us) { return static_cast<Cycle>(us * kCyclesPerUs); }

}  // namespace flexstep
