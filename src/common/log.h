// Minimal levelled logging. Off by default so benches produce clean tables;
// tests and examples can raise the level to trace scheduler/checker decisions.
#pragma once

#include <cstdarg>

namespace flexstep {

enum class LogLevel { kNone = 0, kError, kInfo, kDebug, kTrace };

/// Process-wide level; defaults to kError.
void set_log_level(LogLevel level);
LogLevel log_level();

/// printf-style logging; a newline is appended.
void logf(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

}  // namespace flexstep

#define FLEX_LOG_INFO(...) ::flexstep::logf(::flexstep::LogLevel::kInfo, __VA_ARGS__)
#define FLEX_LOG_DEBUG(...) ::flexstep::logf(::flexstep::LogLevel::kDebug, __VA_ARGS__)
#define FLEX_LOG_TRACE(...) ::flexstep::logf(::flexstep::LogLevel::kTrace, __VA_ARGS__)
#define FLEX_LOG_ERROR(...) ::flexstep::logf(::flexstep::LogLevel::kError, __VA_ARGS__)
