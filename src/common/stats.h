// Small statistics toolkit used by benches and tests: summary statistics,
// geometric means (the paper reports slowdowns as geomeans), percentiles.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/types.h"

namespace flexstep {

/// Streaming mean/variance (Welford). Numerically stable; O(1) memory.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 with fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> xs);

/// Geometric mean; all inputs must be > 0. 0 for an empty span.
double geomean(std::span<const double> xs);

/// p-th percentile (0 <= p <= 100) with linear interpolation. Sorts a copy.
double percentile(std::span<const double> xs, double p);

/// Median shorthand.
double median(std::span<const double> xs);

}  // namespace flexstep
