#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace flexstep {

namespace {
constexpr u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }

u64 splitmix64(u64& x) {
  x += 0x9E3779B97F4A7C15ULL;
  u64 z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}
}  // namespace

void Rng::reseed(u64 seed) {
  u64 x = seed;
  for (auto& s : s_) s = splitmix64(x);
  // All-zero state is the one invalid state; splitmix64 cannot produce four
  // zeros from any seed, but keep the guard for clarity.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

u64 Rng::next_u64() {
  const u64 result = rotl(s_[1] * 5, 7) * 9;
  const u64 t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

u64 Rng::next_below(u64 bound) {
  FLEX_CHECK(bound > 0);
  // Lemire-style rejection to remove modulo bias.
  const u64 threshold = (~bound + 1) % bound;  // == 2^64 mod bound
  for (;;) {
    const u64 r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

i64 Rng::next_in(i64 lo, i64 hi) {
  FLEX_CHECK(lo <= hi);
  const u64 span = static_cast<u64>(hi - lo) + 1;
  if (span == 0) return static_cast<i64>(next_u64());  // full 64-bit range
  return lo + static_cast<i64>(next_below(span));
}

double Rng::next_double() {
  // 53 high-quality bits -> [0,1) with full double precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::next_double_in(double lo, double hi) { return lo + (hi - lo) * next_double(); }

bool Rng::next_bool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::next_log_uniform(double lo, double hi) {
  FLEX_CHECK(lo > 0.0 && hi >= lo);
  return std::exp(next_double_in(std::log(lo), std::log(hi)));
}

Rng Rng::split() {
  Rng child;
  child.s_[0] = next_u64();
  child.s_[1] = next_u64();
  child.s_[2] = next_u64();
  child.s_[3] = next_u64();
  if ((child.s_[0] | child.s_[1] | child.s_[2] | child.s_[3]) == 0) child.s_[0] = 1;
  return child;
}

}  // namespace flexstep
