// Versioned, CRC-protected binary archive — the snapshot wire format.
//
// An archive is a flat byte buffer: a fixed header (container magic, an
// application tag naming what the payload is, and an application format
// version), followed by a sequence of sections. Each section carries its own
// CRC64 over the payload, so corruption is localised and every decode path
// can reject a damaged file without trusting any of its contents:
//
//   [magic "FXAR"][container u32][app_tag u32][app_version u32]
//   repeat: [id u32][reserved u32][payload_len u64][crc64 u64][payload][pad]
//
// All fixed-width integers are little-endian; section headers are 24 bytes
// and payloads are padded to 8-byte alignment, so a section's raw spans (the
// resident memory pages) land 8-aligned in the file and can be read in place
// from an mmap'd buffer (ArchiveReader::take_span returns a pointer into the
// backing buffer, no copy). The reserved header word and the pad tail must be
// zero and are validated on read — every byte of a well-formed file is
// covered by either the header checks, a CRC, or a must-be-zero rule, so any
// single-bit corruption is rejected.
//
// Decode errors are STRUCTURED, never fatal: the reader latches the first
// ArchiveStatus (truncation, bad magic, version skew, CRC mismatch,
// malformed field) and every subsequent take_* returns zero — callers check
// ok() once at the end of a decode instead of guarding every field. Campaign
// checkpoint files are untrusted input (half-written, bit-rotted, produced
// by a different build); none of them may abort the process.
//
// Versioning policy (v1): the app_version is bumped on ANY layout change and
// readers accept only an exact match — no migration shims. A persisted
// baseline is a cache, not an interchange format; a skewed file is simply
// recomputed by its owner.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.h"

namespace flexstep::io {

/// CRC-64/ECMA-182 (the polynomial used by XZ); table-driven, one pass.
/// Chainable: feed the previous return value as `crc` to continue a stream.
u64 crc64(const void* data, std::size_t n, u64 crc = 0);

enum class ArchiveStatus : u8 {
  kOk,
  kIoError,       ///< open/read/write/rename failed (detail has errno text).
  kBadMagic,      ///< Not an archive, or an archive of a different app_tag.
  kVersionSkew,   ///< app_version != the version this build reads/writes.
  kTruncated,     ///< A read ran past the end of the buffer / section.
  kCrcMismatch,   ///< Section payload does not match its stored CRC64.
  kMalformed,     ///< Structurally invalid (section id/order, field domain).
};

constexpr const char* archive_status_name(ArchiveStatus s) {
  switch (s) {
    case ArchiveStatus::kOk: return "ok";
    case ArchiveStatus::kIoError: return "io-error";
    case ArchiveStatus::kBadMagic: return "bad-magic";
    case ArchiveStatus::kVersionSkew: return "version-skew";
    case ArchiveStatus::kTruncated: return "truncated";
    case ArchiveStatus::kCrcMismatch: return "crc-mismatch";
    case ArchiveStatus::kMalformed: return "malformed";
  }
  return "?";
}

/// First failure of a decode (or file operation). Empty detail when ok.
struct ArchiveError {
  ArchiveStatus status = ArchiveStatus::kOk;
  std::string detail;

  bool ok() const { return status == ArchiveStatus::kOk; }
  /// "crc-mismatch: section 3 payload" — for logs and test assertions.
  std::string message() const;
};

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

class ArchiveWriter {
 public:
  /// Starts the buffer with the container header. `app_tag` names the payload
  /// kind (e.g. "FSNP" for a soc::Snapshot), `app_version` its format version.
  ArchiveWriter(u32 app_tag, u32 app_version);

  /// Open a section. Sections cannot nest; every put_* must happen inside one.
  void begin_section(u32 id);
  /// Seal the open section: patch its length, CRC64 the payload, pad to 8.
  void end_section();

  void put_u8(u8 v);
  void put_u32(u32 v);
  void put_u64(u64 v);
  void put_bool(bool v) { put_u8(v ? 1 : 0); }
  void put_f64(double v);
  /// LEB128 — for counts and small fields.
  void put_varint(u64 v);
  /// Raw span (memory pages). Callers that want the span 8-aligned in the
  /// file should put fixed-width fields (not varints) ahead of it.
  void put_bytes(const void* data, std::size_t n);

  /// The finished archive. Call only with no section open.
  const std::vector<u8>& buffer() const;

  /// Persist atomically: write to `path + ".tmp"`, flush, rename over `path`.
  /// A crashed writer leaves at worst a stale .tmp file, never a torn target.
  ArchiveError write_file(const std::string& path) const;

 private:
  std::vector<u8> buf_;
  std::size_t payload_start_ = 0;  ///< Of the open section.
  std::size_t header_at_ = 0;      ///< Offset of the open section's header.
  bool in_section_ = false;
};

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

class ArchiveReader {
 public:
  /// Validates the container header against (app_tag, app_version); on any
  /// mismatch the error is latched and every subsequent call is a no-op.
  /// The buffer must outlive the reader (take_span aliases it).
  ArchiveReader(const u8* data, std::size_t size, u32 app_tag, u32 app_version);

  bool ok() const { return error_.ok(); }
  const ArchiveError& error() const { return error_; }

  /// Enter the next section, which must have id `expect_id` (sections are
  /// decoded in the order they were written). Verifies the payload CRC64
  /// before returning true; on any failure latches and returns false.
  bool begin_section(u32 expect_id);
  /// Leave the section. A decoder that consumed less than the payload is a
  /// version-skew bug caught here as kMalformed (v1 tolerates no tails).
  void end_section();

  u8 take_u8();
  u32 take_u32();
  u64 take_u64();
  bool take_bool();
  double take_f64();
  u64 take_varint();
  void take_bytes(void* out, std::size_t n);
  /// Zero-copy: a pointer to `n` bytes inside the backing buffer (8-aligned
  /// when the writer kept the span aligned), or nullptr on failure.
  const u8* take_span(std::size_t n);
  /// A varint count, validated: `count * min_elem_bytes` must fit in what
  /// remains of the section, so a corrupt length can never drive a giant
  /// allocation. Returns 0 on failure.
  u64 take_count(std::size_t min_elem_bytes);

  /// Latch a failure from application-level validation (field domain checks).
  void fail(ArchiveStatus status, std::string detail);

 private:
  std::size_t remaining() const { return limit_ - pos_; }

  const u8* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  std::size_t limit_ = 0;        ///< End of the open section (or header).
  std::size_t section_end_ = 0;  ///< Incl. padding — where the next header is.
  bool in_section_ = false;
  ArchiveError error_;
};

// ---------------------------------------------------------------------------
// File helpers
// ---------------------------------------------------------------------------

/// Slurp a file. kIoError when it cannot be opened/read.
ArchiveError read_file(const std::string& path, std::vector<u8>& out);

/// Atomic byte write: temp file + rename (the writer's write_file in free form).
ArchiveError write_file_atomic(const std::string& path, const void* data,
                               std::size_t n);

}  // namespace flexstep::io
