#include "common/log.h"

#include <cstdio>

namespace flexstep {

namespace {
LogLevel g_level = LogLevel::kError;

const char* prefix(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "[error] ";
    case LogLevel::kInfo: return "[info ] ";
    case LogLevel::kDebug: return "[debug] ";
    case LogLevel::kTrace: return "[trace] ";
    case LogLevel::kNone: return "";
  }
  return "";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

void logf(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) > static_cast<int>(g_level)) return;
  std::fputs(prefix(level), stderr);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace flexstep
