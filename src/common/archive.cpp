#include "common/archive.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/check.h"

namespace flexstep::io {

namespace {

/// Container magic "FXAR" and layout version. The container version covers
/// the header/section framing itself; app_version covers the payload layout.
constexpr u32 kMagic = 0x52415846;  // 'F','X','A','R' little-endian.
constexpr u32 kContainerVersion = 1;
constexpr std::size_t kHeaderBytes = 16;
constexpr std::size_t kSectionHeaderBytes = 24;

constexpr std::size_t pad8(std::size_t n) { return (n + 7) & ~std::size_t{7}; }

/// CRC-64/ECMA-182, bit-reflected (poly 0xC96C5795D7870F42), as used by XZ.
struct Crc64Table {
  u64 t[256];
  constexpr Crc64Table() : t{} {
    for (u32 i = 0; i < 256; ++i) {
      u64 c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (c >> 1) ^ 0xC96C5795D7870F42ULL : c >> 1;
      }
      t[i] = c;
    }
  }
};
constexpr Crc64Table kCrc64;

u64 load_u32(const u8* p) {
  return static_cast<u64>(p[0]) | static_cast<u64>(p[1]) << 8 |
         static_cast<u64>(p[2]) << 16 | static_cast<u64>(p[3]) << 24;
}

u64 load_u64(const u8* p) { return load_u32(p) | load_u32(p + 4) << 32; }

std::string errno_text(const char* op, const std::string& path) {
  return std::string(op) + " " + path + ": " + std::strerror(errno);
}

}  // namespace

u64 crc64(const void* data, std::size_t n, u64 crc) {
  const auto* p = static_cast<const u8*>(data);
  crc = ~crc;
  for (std::size_t i = 0; i < n; ++i) {
    crc = kCrc64.t[static_cast<u8>(crc) ^ p[i]] ^ (crc >> 8);
  }
  return ~crc;
}

std::string ArchiveError::message() const {
  std::string out = archive_status_name(status);
  if (!detail.empty()) {
    out += ": ";
    out += detail;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

ArchiveWriter::ArchiveWriter(u32 app_tag, u32 app_version) {
  put_u32(kMagic);
  put_u32(kContainerVersion);
  put_u32(app_tag);
  put_u32(app_version);
}

void ArchiveWriter::begin_section(u32 id) {
  FLEX_CHECK_MSG(!in_section_, "archive writer: sections cannot nest");
  in_section_ = true;
  header_at_ = buf_.size();
  put_u32(id);
  put_u32(0);  // reserved — keeps the 8-byte fields below 8-aligned
  put_u64(0);  // payload_len, patched by end_section
  put_u64(0);  // crc64, patched by end_section
  payload_start_ = buf_.size();
}

void ArchiveWriter::end_section() {
  FLEX_CHECK_MSG(in_section_, "archive writer: end_section without begin");
  in_section_ = false;
  const std::size_t len = buf_.size() - payload_start_;
  const u64 crc = crc64(buf_.data() + payload_start_, len);
  u8* header = buf_.data() + header_at_;
  for (int i = 0; i < 8; ++i) {
    header[8 + i] = static_cast<u8>(static_cast<u64>(len) >> (i * 8));
    header[16 + i] = static_cast<u8>(crc >> (i * 8));
  }
  buf_.resize(payload_start_ + pad8(len), 0);  // next header lands 8-aligned
}

void ArchiveWriter::put_u8(u8 v) { buf_.push_back(v); }

void ArchiveWriter::put_u32(u32 v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<u8>(v >> (i * 8)));
}

void ArchiveWriter::put_u64(u64 v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<u8>(v >> (i * 8)));
}

void ArchiveWriter::put_f64(double v) {
  u64 bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(bits);
}

void ArchiveWriter::put_varint(u64 v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<u8>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<u8>(v));
}

void ArchiveWriter::put_bytes(const void* data, std::size_t n) {
  const auto* p = static_cast<const u8*>(data);
  buf_.insert(buf_.end(), p, p + n);
}

const std::vector<u8>& ArchiveWriter::buffer() const {
  FLEX_CHECK_MSG(!in_section_, "archive writer: buffer() with a section open");
  return buf_;
}

ArchiveError ArchiveWriter::write_file(const std::string& path) const {
  return write_file_atomic(path, buffer().data(), buffer().size());
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

ArchiveReader::ArchiveReader(const u8* data, std::size_t size, u32 app_tag,
                             u32 app_version)
    : data_(data), size_(size), limit_(size) {
  if (size_ < kHeaderBytes) {
    fail(ArchiveStatus::kTruncated, "missing archive header");
    return;
  }
  if (load_u32(data_) != kMagic) {
    fail(ArchiveStatus::kBadMagic, "not an FXAR archive");
    return;
  }
  if (load_u32(data_ + 4) != kContainerVersion) {
    fail(ArchiveStatus::kVersionSkew, "container version mismatch");
    return;
  }
  if (load_u32(data_ + 8) != app_tag) {
    fail(ArchiveStatus::kBadMagic, "archive holds a different payload kind");
    return;
  }
  if (load_u32(data_ + 12) != app_version) {
    fail(ArchiveStatus::kVersionSkew,
         "format version " + std::to_string(load_u32(data_ + 12)) +
             " (this build reads " + std::to_string(app_version) + ")");
    return;
  }
  pos_ = kHeaderBytes;
  section_end_ = kHeaderBytes;
}

bool ArchiveReader::begin_section(u32 expect_id) {
  if (!ok()) return false;
  FLEX_CHECK_MSG(!in_section_, "archive reader: sections cannot nest");
  pos_ = section_end_;
  limit_ = size_;
  if (remaining() < kSectionHeaderBytes) {
    fail(ArchiveStatus::kTruncated,
         "section " + std::to_string(expect_id) + " header missing");
    return false;
  }
  const u32 id = static_cast<u32>(load_u32(data_ + pos_));
  const u64 len = load_u64(data_ + pos_ + 8);
  const u64 crc = load_u64(data_ + pos_ + 16);
  if (id != expect_id) {
    fail(ArchiveStatus::kMalformed, "expected section " +
                                        std::to_string(expect_id) + ", found " +
                                        std::to_string(id));
    return false;
  }
  // The reserved word and the pad tail (checked in end_section) are the only
  // bytes outside the CRC window; validating them as zero means EVERY bit of
  // the file is covered by some check — the corruption-sweep test holds the
  // format to that.
  if (load_u32(data_ + pos_ + 4) != 0) {
    fail(ArchiveStatus::kMalformed,
         "section " + std::to_string(expect_id) + " reserved bits set");
    return false;
  }
  pos_ += kSectionHeaderBytes;
  if (len > remaining()) {
    fail(ArchiveStatus::kTruncated,
         "section " + std::to_string(expect_id) + " payload cut short");
    return false;
  }
  if (crc64(data_ + pos_, static_cast<std::size_t>(len)) != crc) {
    fail(ArchiveStatus::kCrcMismatch,
         "section " + std::to_string(expect_id) + " payload");
    return false;
  }
  limit_ = pos_ + static_cast<std::size_t>(len);
  section_end_ = pos_ + pad8(static_cast<std::size_t>(len));
  if (section_end_ > size_) section_end_ = size_;  // final section: pad optional
  in_section_ = true;
  return true;
}

void ArchiveReader::end_section() {
  if (!ok()) return;
  FLEX_CHECK_MSG(in_section_, "archive reader: end_section without begin");
  in_section_ = false;
  if (pos_ != limit_) {
    // A CRC-clean payload the decoder did not fully consume means writer and
    // reader disagree about the layout within one app_version — a bug, but
    // reported as a structured error so campaign tooling can skip the file.
    fail(ArchiveStatus::kMalformed,
         std::to_string(limit_ - pos_) + " undecoded payload bytes");
    return;
  }
  for (std::size_t i = limit_; i < section_end_; ++i) {
    if (data_[i] != 0) {
      fail(ArchiveStatus::kMalformed, "nonzero section padding");
      return;
    }
  }
}

u8 ArchiveReader::take_u8() {
  if (!ok() || remaining() < 1) {
    if (ok()) fail(ArchiveStatus::kTruncated, "u8 field");
    return 0;
  }
  return data_[pos_++];
}

u32 ArchiveReader::take_u32() {
  if (!ok() || remaining() < 4) {
    if (ok()) fail(ArchiveStatus::kTruncated, "u32 field");
    return 0;
  }
  const u32 v = static_cast<u32>(load_u32(data_ + pos_));
  pos_ += 4;
  return v;
}

u64 ArchiveReader::take_u64() {
  if (!ok() || remaining() < 8) {
    if (ok()) fail(ArchiveStatus::kTruncated, "u64 field");
    return 0;
  }
  const u64 v = load_u64(data_ + pos_);
  pos_ += 8;
  return v;
}

bool ArchiveReader::take_bool() {
  const u8 v = take_u8();
  if (ok() && v > 1) fail(ArchiveStatus::kMalformed, "bool field out of domain");
  return v == 1;
}

double ArchiveReader::take_f64() {
  const u64 bits = take_u64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

u64 ArchiveReader::take_varint() {
  u64 v = 0;
  for (u32 shift = 0; shift < 64; shift += 7) {
    const u8 byte = take_u8();
    if (!ok()) return 0;
    v |= static_cast<u64>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      // Reject non-canonical zero-padded tails ("0x80 0x00" for 0) so one
      // varint has exactly one encoding — corruption can't alias to a valid
      // stream of different length.
      if (byte == 0 && shift != 0) {
        fail(ArchiveStatus::kMalformed, "non-canonical varint");
        return 0;
      }
      return v;
    }
  }
  fail(ArchiveStatus::kMalformed, "varint longer than 64 bits");
  return 0;
}

void ArchiveReader::take_bytes(void* out, std::size_t n) {
  const u8* span = take_span(n);
  if (span != nullptr) std::memcpy(out, span, n);
}

const u8* ArchiveReader::take_span(std::size_t n) {
  if (!ok() || remaining() < n) {
    if (ok()) fail(ArchiveStatus::kTruncated, "raw span");
    return nullptr;
  }
  const u8* span = data_ + pos_;
  pos_ += n;
  return span;
}

u64 ArchiveReader::take_count(std::size_t min_elem_bytes) {
  const u64 count = take_varint();
  if (!ok()) return 0;
  if (min_elem_bytes != 0 && count > remaining() / min_elem_bytes) {
    fail(ArchiveStatus::kMalformed, "element count exceeds payload size");
    return 0;
  }
  return count;
}

void ArchiveReader::fail(ArchiveStatus status, std::string detail) {
  if (!error_.ok()) return;  // first failure wins
  error_.status = status;
  error_.detail = std::move(detail);
  pos_ = limit_;  // park the cursor; every further take returns zero
}

// ---------------------------------------------------------------------------
// File helpers
// ---------------------------------------------------------------------------

ArchiveError read_file(const std::string& path, std::vector<u8>& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return {ArchiveStatus::kIoError, errno_text("open", path)};
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < 0) {
    std::fclose(f);
    return {ArchiveStatus::kIoError, errno_text("stat", path)};
  }
  out.resize(static_cast<std::size_t>(size));
  const std::size_t got = out.empty() ? 0 : std::fread(out.data(), 1, out.size(), f);
  std::fclose(f);
  if (got != out.size()) {
    return {ArchiveStatus::kIoError, errno_text("read", path)};
  }
  return {};
}

ArchiveError write_file_atomic(const std::string& path, const void* data,
                               std::size_t n) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return {ArchiveStatus::kIoError, errno_text("open", tmp)};
  }
  const std::size_t wrote = n == 0 ? 0 : std::fwrite(data, 1, n, f);
  const bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (wrote != n || !flushed) {
    std::remove(tmp.c_str());
    return {ArchiveStatus::kIoError, errno_text("write", tmp)};
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return {ArchiveStatus::kIoError, errno_text("rename", path)};
  }
  return {};
}

}  // namespace flexstep::io
