// Deterministic, fast pseudo-random generation (xoshiro256**).
//
// Every experiment in the repository is seeded explicitly so that benches and
// tests are reproducible run-to-run; std::mt19937_64 is avoided because its
// state is large and its distributions are implementation-defined.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace flexstep {

/// xoshiro256** by Blackman & Vigna: small state, excellent statistical quality.
class Rng {
 public:
  explicit Rng(u64 seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  /// Re-initialise the state from a 64-bit seed (SplitMix64 expansion).
  void reseed(u64 seed);

  /// Next raw 64-bit value.
  u64 next_u64();

  /// Uniform in [0, bound). bound must be > 0. Debiased via rejection.
  u64 next_below(u64 bound);

  /// Uniform integer in [lo, hi] inclusive.
  i64 next_in(i64 lo, i64 hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double next_double_in(double lo, double hi);

  /// True with probability p (clamped to [0,1]).
  bool next_bool(double p);

  /// Log-uniform double in [lo, hi); standard for real-time task period generation.
  double next_log_uniform(double lo, double hi);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child generator (for parallel experiment arms).
  Rng split();

 private:
  u64 s_[4]{};
};

}  // namespace flexstep
