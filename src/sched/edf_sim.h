// Discrete-event simulator for partitioned-EDF schedules with the features
// the three error-detection schemes need:
//   * job dependencies   — FlexStep's asynchronous checking computations are
//                          released when the original completes;
//   * non-preemption     — HMR verification cannot be preempted by
//                          non-verification work;
//   * gang co-scheduling — an HMR mirror occupies its checker core exactly
//                          while the original runs (synchronous split-lock).
// Used to cross-validate the schedulability tests (property: accepted sets
// run without misses) and to regenerate the Fig. 1 motivation Gantt charts.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"
#include "sched/partition.h"
#include "sched/task_model.h"

namespace flexstep::sched {

struct SimJob {
  u32 task_id = 0;
  u32 core = 0;
  double release = 0.0;
  double wcet = 0.0;
  double deadline = 0.0;        ///< Absolute; missing it is a failure.
  double sched_deadline = 0.0;  ///< Absolute; EDF priority (virtual deadlines).
  bool is_check = false;
  bool non_preemptive = false;
  i32 depends_on = -1;   ///< Job index that must complete before this starts.
  i32 gang_master = -1;  ///< Mirror of job `gang_master`: co-executes with it.
};

struct GanttSlice {
  u32 core = 0;
  u32 task_id = 0;
  u32 job_index = 0;
  bool is_check = false;
  double start = 0.0;
  double end = 0.0;
};

struct MissRecord {
  u32 job_index = 0;
  u32 task_id = 0;
  double deadline = 0.0;
  double completion = 0.0;  ///< +inf if unfinished at horizon.
};

struct SimResult {
  bool feasible = true;
  std::vector<MissRecord> misses;
  std::vector<GanttSlice> gantt;
};

SimResult simulate_edf(const std::vector<SimJob>& jobs, u32 num_cores, double horizon);

// ---- per-scheme periodic job expansion from a partitioning ----

/// FlexStep: originals scheduled by virtual deadline; checking computations
/// depend on the original and use the real deadline (asynchronous model).
std::vector<SimJob> make_flexstep_jobs(const TaskSet& tasks, const PartitionResult& plan,
                                       double horizon);

/// LockStep: only main-core jobs exist (checker cores mirror in hardware and
/// carry no schedulable work of their own).
std::vector<SimJob> make_lockstep_jobs(const TaskSet& tasks, const PartitionResult& plan,
                                       double horizon);

/// HMR: verification originals are non-preemptive; mirrors are non-preemptive
/// gang jobs on their checker cores.
std::vector<SimJob> make_hmr_jobs(const TaskSet& tasks, const PartitionResult& plan,
                                  double horizon);

/// ASCII Gantt chart (one row per core), `columns` characters for [0, t_end].
std::string render_gantt(const SimResult& result, u32 num_cores, double t_end,
                         u32 columns = 100);

}  // namespace flexstep::sched
