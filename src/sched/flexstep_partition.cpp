#include "sched/flexstep_partition.h"

#include <algorithm>

#include "common/check.h"

namespace flexstep::sched {

u32 argmin_density(const std::vector<CorePlan>& cores, i32 exclude_a, i32 exclude_b) {
  i32 best = -1;
  for (u32 k = 0; k < cores.size(); ++k) {
    if (static_cast<i32>(k) == exclude_a || static_cast<i32>(k) == exclude_b) continue;
    if (best < 0 || cores[k].density < cores[best].density) best = static_cast<i32>(k);
  }
  FLEX_CHECK_MSG(best >= 0, "no eligible core");
  return static_cast<u32>(best);
}

std::vector<const Task*> sorted_by_utilization(const TaskSet& tasks, TaskType type) {
  std::vector<const Task*> out;
  for (const auto& t : tasks) {
    if (t.type == type) out.push_back(&t);
  }
  std::sort(out.begin(), out.end(), [](const Task* a, const Task* b) {
    if (a->utilization() != b->utilization()) return a->utilization() > b->utilization();
    return a->id < b->id;
  });
  return out;
}

namespace {

void place(CorePlan& core, const Task& task, bool is_check, double deadline,
           double density) {
  core.items.push_back({task.id, is_check, task.wcet, deadline, density, false});
  core.density += density;
}

}  // namespace

PartitionResult flexstep_partition(const TaskSet& tasks, u32 m) {
  PartitionResult result;
  result.cores.assign(m, {});

  // T^V3 needs three distinct cores; T^V2 two.
  if (m < 2) {
    result.failure_reason = "fewer than 2 cores";
    return result;
  }

  // Verification tasks in descending utilisation (V3 first, matching Alg. 3's
  // iteration over {T^V3, T^V2}).
  auto v3 = sorted_by_utilization(tasks, TaskType::kV3);
  auto v2 = sorted_by_utilization(tasks, TaskType::kV2);
  if (!v3.empty() && m < 3) {
    result.failure_reason = "triple-check task with fewer than 3 cores";
    return result;
  }

  std::vector<const Task*> verification;
  verification.insert(verification.end(), v3.begin(), v3.end());
  verification.insert(verification.end(), v2.begin(), v2.end());

  for (const Task* task : verification) {
    const double d_virtual = task->virtual_deadline();
    const double delta_o = task->density_original();
    const double delta_v = task->density_check();

    const u32 k = argmin_density(result.cores);
    place(result.cores[k], *task, false, d_virtual, delta_o);

    const u32 k1 = argmin_density(result.cores, static_cast<i32>(k));
    place(result.cores[k1], *task, true, task->deadline(), delta_v);

    if (task->type == TaskType::kV3) {
      const u32 k2 =
          argmin_density(result.cores, static_cast<i32>(k), static_cast<i32>(k1));
      place(result.cores[k2], *task, true, task->deadline(), delta_v);
    }
  }

  for (const Task* task : sorted_by_utilization(tasks, TaskType::kNormal)) {
    const u32 k = argmin_density(result.cores);
    place(result.cores[k], *task, false, task->deadline(), task->utilization());
  }

  for (const auto& core : result.cores) {
    if (core.density > 1.0 + 1e-12) {
      result.failure_reason = "core density exceeds 1";
      return result;
    }
  }
  result.schedulable = true;
  return result;
}

PartitionResult flexstep_partition_fallback(const TaskSet& tasks, u32 m) {
  PartitionResult result;
  result.cores.assign(m, {});
  if (m < 2) {
    result.failure_reason = "fewer than 2 cores";
    return result;
  }
  auto v3 = sorted_by_utilization(tasks, TaskType::kV3);
  if (!v3.empty() && m < 3) {
    result.failure_reason = "triple-check task with fewer than 3 cores";
    return result;
  }
  auto v2 = sorted_by_utilization(tasks, TaskType::kV2);
  std::vector<const Task*> verification;
  verification.insert(verification.end(), v3.begin(), v3.end());
  verification.insert(verification.end(), v2.begin(), v2.end());

  for (const Task* task : verification) {
    const double u = task->utilization();
    const u32 k = argmin_density(result.cores);
    place(result.cores[k], *task, false, task->deadline(), u);
    const u32 k1 = argmin_density(result.cores, static_cast<i32>(k));
    place(result.cores[k1], *task, true, task->deadline(), u);
    if (task->type == TaskType::kV3) {
      const u32 k2 =
          argmin_density(result.cores, static_cast<i32>(k), static_cast<i32>(k1));
      place(result.cores[k2], *task, true, task->deadline(), u);
    }
  }
  for (const Task* task : sorted_by_utilization(tasks, TaskType::kNormal)) {
    const u32 k = argmin_density(result.cores);
    place(result.cores[k], *task, false, task->deadline(), task->utilization());
  }
  for (const auto& core : result.cores) {
    if (core.density > 1.0 + 1e-12) {
      result.failure_reason = "core utilisation exceeds 1";
      return result;
    }
  }
  result.schedulable = true;
  return result;
}

bool flexstep_schedulable(const TaskSet& tasks, u32 m) {
  if (flexstep_partition(tasks, m).schedulable) return true;
  return flexstep_partition_fallback(tasks, m).schedulable;
}

}  // namespace flexstep::sched
