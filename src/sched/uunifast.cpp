#include "sched/uunifast.h"

#include <cmath>

#include "common/check.h"

namespace flexstep::sched {

std::vector<double> uunifast(u32 n, double total_u, Rng& rng) {
  FLEX_CHECK(n > 0);
  std::vector<double> u(n);
  double sum = total_u;
  for (u32 i = 0; i < n - 1; ++i) {
    const double next =
        sum * std::pow(rng.next_double(), 1.0 / static_cast<double>(n - 1 - i));
    u[i] = sum - next;
    sum = next;
  }
  u[n - 1] = sum;
  return u;
}

TaskSet generate_task_set(const TaskSetParams& params, Rng& rng) {
  for (int attempt = 0; attempt < 1000; ++attempt) {
    const auto utils = uunifast(params.n, params.total_utilization, rng);
    bool feasible = true;
    for (double u : utils) {
      if (u > 1.0) {
        feasible = false;
        break;
      }
    }
    if (!feasible) continue;

    // Randomised class assignment matching the α/β fractions by count.
    const auto n_v2 = static_cast<u32>(std::lround(params.alpha * params.n));
    const auto n_v3 = static_cast<u32>(std::lround(params.beta * params.n));
    FLEX_CHECK(n_v2 + n_v3 <= params.n);
    std::vector<TaskType> types(params.n, TaskType::kNormal);
    for (u32 i = 0; i < n_v2; ++i) types[i] = TaskType::kV2;
    for (u32 i = n_v2; i < n_v2 + n_v3; ++i) types[i] = TaskType::kV3;
    rng.shuffle(types);

    TaskSet tasks(params.n);
    for (u32 i = 0; i < params.n; ++i) {
      tasks[i].id = i;
      tasks[i].period = rng.next_log_uniform(params.period_min, params.period_max);
      tasks[i].wcet = utils[i] * tasks[i].period;
      tasks[i].type = types[i];
    }
    return tasks;
  }
  FLEX_CHECK_MSG(false, "could not generate a feasible task set");
  return {};
}

}  // namespace flexstep::sched
