#include "sched/task_model.h"

namespace flexstep::sched {

double total_utilization(const TaskSet& tasks) {
  double u = 0.0;
  for (const auto& t : tasks) u += t.utilization();
  return u;
}

TypeCounts count_types(const TaskSet& tasks) {
  TypeCounts counts;
  for (const auto& t : tasks) {
    switch (t.type) {
      case TaskType::kNormal: ++counts.normal; break;
      case TaskType::kV2: ++counts.v2; break;
      case TaskType::kV3: ++counts.v3; break;
    }
  }
  return counts;
}

}  // namespace flexstep::sched
