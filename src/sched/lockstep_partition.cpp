#include "sched/lockstep_partition.h"

#include <algorithm>

#include "common/check.h"

namespace flexstep::sched {

namespace {

struct Group {
  u32 main_core;          ///< Index into result.cores.
  u32 checkers;           ///< 1 = pair (DCLS), 2 = triple (TCLS).
};

void place_task(CorePlan& core, const Task& task) {
  core.items.push_back(
      {task.id, false, task.wcet, task.deadline(), task.utilization(), false});
  core.density += task.utilization();
}

}  // namespace

PartitionResult lockstep_partition(const TaskSet& tasks, u32 m) {
  PartitionResult result;
  result.cores.assign(m, {});

  u32 free_cores = m;                 // not yet grouped / used
  u32 next_core = 0;                  // cores are claimed in index order
  std::vector<Group> pair_groups;
  std::vector<Group> triple_groups;
  std::vector<bool> is_checker(m, false);

  auto try_allocate = [&](const Task& task, std::vector<Group>& groups,
                          u32 checkers) -> bool {
    // Fill the most recent group first (groups open only when needed).
    for (auto& group : groups) {
      CorePlan& core = result.cores[group.main_core];
      if (core.density + task.utilization() <= 1.0 + 1e-12) {
        place_task(core, task);
        return true;
      }
    }
    // Open a new group: 1 main + `checkers` checker cores.
    if (free_cores < checkers + 1) return false;
    Group group{next_core, checkers};
    next_core += 1;
    for (u32 c = 0; c < checkers; ++c) is_checker[next_core + c] = true;
    next_core += checkers;
    free_cores -= checkers + 1;
    groups.push_back(group);
    CorePlan& core = result.cores[group.main_core];
    if (core.density + task.utilization() > 1.0 + 1e-12) return false;
    place_task(core, task);
    return true;
  };

  // Verification tasks first (descending utilisation), V3 before V2 since
  // triple groups are the scarcer resource.
  for (const Task* task : sorted_by_utilization(tasks, TaskType::kV3)) {
    if (!try_allocate(*task, triple_groups, 2)) {
      result.failure_reason = "cannot form/fit a triple lockstep group";
      return result;
    }
  }
  for (const Task* task : sorted_by_utilization(tasks, TaskType::kV2)) {
    if (!try_allocate(*task, pair_groups, 1)) {
      result.failure_reason = "cannot form/fit a pair lockstep group";
      return result;
    }
  }

  // Non-verification tasks: worst-fit over usable cores (group mains +
  // ungrouped cores). Checker cores are unusable — the LockStep waste.
  for (const Task* task : sorted_by_utilization(tasks, TaskType::kNormal)) {
    i32 best = -1;
    for (u32 k = 0; k < m; ++k) {
      if (is_checker[k]) continue;
      if (best < 0 || result.cores[k].density < result.cores[best].density) {
        best = static_cast<i32>(k);
      }
    }
    FLEX_CHECK(best >= 0);
    place_task(result.cores[best], *task);
  }

  for (const auto& core : result.cores) {
    if (core.density > 1.0 + 1e-12) {
      result.failure_reason = "core utilisation exceeds 1";
      return result;
    }
  }
  result.schedulable = true;
  return result;
}

}  // namespace flexstep::sched
