// FlexStep partitioning — Algorithm 3 of the paper, verbatim.
//
// Verification tasks are placed first in descending utilisation; each task's
// original computation (with virtual deadline D') and its duplicated
// computation(s) (with window D − D') go to distinct minimum-density cores.
// Non-verification tasks follow, worst-fit by density. The set is accepted
// iff every core's total density Δ[k] ≤ 1 (partitioned EDF, density-based
// sufficient test).
#pragma once

#include "sched/partition.h"

namespace flexstep::sched {

/// Algorithm 3 exactly (virtual-deadline densities; hard guarantee that all
/// checking completes by the deadline).
PartitionResult flexstep_partition(const TaskSet& tasks, u32 m);

/// The paper's fallback (Sec. V, last paragraph): when the virtual-deadline
/// test fails, "remove the virtual deadline and use the verification task's
/// original deadline and utilisation for scheduling and partitioning" —
/// original and duplicated computations each contribute plain utilisation.
PartitionResult flexstep_partition_fallback(const TaskSet& tasks, u32 m);

/// The combined acceptance used for the Fig. 5 experiments: Alg. 3, falling
/// back to the utilisation-based partition when Alg. 3's sufficient test
/// rejects.
bool flexstep_schedulable(const TaskSet& tasks, u32 m);

}  // namespace flexstep::sched
