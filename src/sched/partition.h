// Common partitioning types shared by the three schemes' partitioners.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"
#include "sched/task_model.h"

namespace flexstep::sched {

/// One scheduled computation placed on a core: the original job of a task or
/// one of its duplicated (checking) computations.
struct PlacedItem {
  u32 task_id = 0;
  bool is_check_copy = false;
  double wcet = 0.0;
  double deadline = 0.0;  ///< Deadline used for EDF on this core (may be virtual).
  double density = 0.0;
  /// HMR: item executes non-preemptively w.r.t. non-verification work.
  bool blocking_source = false;
};

struct CorePlan {
  std::vector<PlacedItem> items;
  double density = 0.0;  ///< Σ densities (the Δ[k] of Alg. 3).
};

struct PartitionResult {
  bool schedulable = false;
  std::string failure_reason;
  std::vector<CorePlan> cores;

  double max_core_density() const {
    double d = 0.0;
    for (const auto& core : cores) d = std::max(d, core.density);
    return d;
  }
};

/// Index of the minimum-density core, optionally excluding up to two cores.
u32 argmin_density(const std::vector<CorePlan>& cores, i32 exclude_a = -1,
                   i32 exclude_b = -1);

/// Tasks sorted by descending utilisation (stable on id for determinism).
std::vector<const Task*> sorted_by_utilization(const TaskSet& tasks, TaskType type);

}  // namespace flexstep::sched
