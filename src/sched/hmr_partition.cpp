#include "sched/hmr_partition.h"

#include <algorithm>

#include "common/check.h"

namespace flexstep::sched {

bool edf_blocking_schedulable(const CorePlan& core) {
  for (const auto& item : core.items) {
    double demand = 0.0;
    for (const auto& other : core.items) {
      if (other.deadline <= item.deadline) demand += other.density;
    }
    // Verification executions cannot be preempted by *non-verification*
    // tasks (paper Sec. I/II); verification-vs-verification preemption is
    // allowed, so only non-verification items suffer the blocking term.
    double blocking = 0.0;
    if (!item.blocking_source) {
      for (const auto& other : core.items) {
        if (other.blocking_source && other.deadline > item.deadline) {
          blocking = std::max(blocking, other.wcet);
        }
      }
    }
    if (demand + blocking / item.deadline > 1.0 + 1e-12) return false;
  }
  return true;
}

namespace {

void place(CorePlan& core, const Task& task, bool is_check, bool blocking) {
  core.items.push_back(
      {task.id, is_check, task.wcet, task.deadline(), task.utilization(), blocking});
  core.density += task.utilization();
}

}  // namespace

PartitionResult hmr_partition(const TaskSet& tasks, u32 m) {
  PartitionResult result;
  result.cores.assign(m, {});
  std::vector<bool> has_verification(m, false);

  auto v3 = sorted_by_utilization(tasks, TaskType::kV3);
  auto v2 = sorted_by_utilization(tasks, TaskType::kV2);
  if (!v3.empty() && m < 3) {
    result.failure_reason = "triple-check task with fewer than 3 cores";
    return result;
  }
  if ((!v3.empty() || !v2.empty()) && m < 2) {
    result.failure_reason = "verification task with fewer than 2 cores";
    return result;
  }

  std::vector<const Task*> verification;
  verification.insert(verification.end(), v3.begin(), v3.end());
  verification.insert(verification.end(), v2.begin(), v2.end());

  // Verification tasks are concentrated: split-lock reuses the same physical
  // main/checker pairing whenever it fits, so non-verification tasks keep
  // blocking-free cores. Choose the fullest verification core with room
  // (best-fit decreasing); open a fresh minimum-density core otherwise.
  auto pick_verification_core = [&](i32 excl_a, i32 excl_b) -> u32 {
    i32 best = -1;
    for (u32 k = 0; k < m; ++k) {
      if (static_cast<i32>(k) == excl_a || static_cast<i32>(k) == excl_b) continue;
      if (!has_verification[k]) continue;
      if (best >= 0 && result.cores[k].density <= result.cores[best].density) continue;
      best = static_cast<i32>(k);
    }
    return best >= 0 ? static_cast<u32>(best) : argmin_density(result.cores, excl_a, excl_b);
  };

  for (const Task* task : verification) {
    const u32 copies = num_copies(task->type);
    const double u = task->utilization();

    auto fits = [&](u32 k) { return result.cores[k].density + u <= 1.0 + 1e-12; };
    u32 k = pick_verification_core(-1, -1);
    if (!fits(k)) k = argmin_density(result.cores);
    place(result.cores[k], *task, false, /*blocking=*/true);
    has_verification[k] = true;

    i32 used_a = static_cast<i32>(k);
    i32 used_b = -1;
    for (u32 c = 0; c < copies; ++c) {
      u32 kc = pick_verification_core(used_a, used_b);
      if (!fits(kc)) kc = argmin_density(result.cores, used_a, used_b);
      place(result.cores[kc], *task, true, /*blocking=*/true);
      has_verification[kc] = true;
      if (used_b < 0) {
        used_b = static_cast<i32>(kc);
      } else {
        used_a = static_cast<i32>(kc);  // (never needed beyond 2 copies)
      }
    }
  }

  // Non-verification tasks: prefer cores free of verification load, then
  // worst-fit anywhere.
  for (const Task* task : sorted_by_utilization(tasks, TaskType::kNormal)) {
    i32 best = -1;
    for (u32 k = 0; k < m; ++k) {
      if (has_verification[k]) continue;
      if (best < 0 || result.cores[k].density < result.cores[best].density) {
        best = static_cast<i32>(k);
      }
    }
    if (best < 0) best = static_cast<i32>(argmin_density(result.cores));
    place(result.cores[best], *task, false, /*blocking=*/false);
  }

  for (const auto& core : result.cores) {
    if (core.density > 1.0 + 1e-12) {
      result.failure_reason = "core utilisation exceeds 1";
      return result;
    }
    if (!edf_blocking_schedulable(core)) {
      result.failure_reason = "EDF blocking test failed";
      return result;
    }
  }
  result.schedulable = true;
  return result;
}

}  // namespace flexstep::sched
