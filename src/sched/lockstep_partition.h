// LockStep baseline partitioning (paper Sec. VI-B experiment setup).
//
// Cores are statically grouped on demand: a pair (main + 1 checker) serves
// double-check tasks, a triple (main + 2 checkers) serves triple-check tasks.
// Checker cores mirror their main cycle-by-cycle and can run nothing else;
// everything scheduled on a group's main core — including non-verification
// tasks — is implicitly verified (the Fig. 1(a) inefficiency). New groups are
// formed only when the current group cannot take the next verification task,
// minimising checker-core count. Non-verification tasks are then placed
// worst-fit across group mains and ungrouped cores.
#pragma once

#include "sched/partition.h"

namespace flexstep::sched {

PartitionResult lockstep_partition(const TaskSet& tasks, u32 m);

}  // namespace flexstep::sched
