// Schedulability experiment driver (paper Sec. VI-B, Fig. 5): percentage of
// schedulable random task sets vs. normalised utilisation, under LockStep,
// HMR and FlexStep partitioning.
#pragma once

#include <vector>

#include "common/types.h"
#include "sched/task_model.h"

namespace flexstep::sched {

struct SchedExperimentConfig {
  u32 m = 8;             ///< Cores.
  u32 n = 160;           ///< Tasks per set.
  double alpha = 0.0625; ///< Fraction of double-check (T^V2) tasks.
  double beta = 0.0625;  ///< Fraction of triple-check (T^V3) tasks.
  double u_min = 0.35;   ///< Normalised utilisation sweep (per paper x-axis).
  double u_max = 0.95;
  double u_step = 0.05;
  u32 sets_per_point = 500;
  u64 seed = 2025;
  u32 threads = 0;  ///< Worker threads (0 = FLEX_THREADS / hardware_concurrency).
};

struct SchedCurvePoint {
  double utilization = 0.0;  ///< Normalised (U_total / m).
  double lockstep = 0.0;     ///< % of sets schedulable.
  double hmr = 0.0;
  double flexstep = 0.0;
};

/// Sweeps utilisation points, testing `sets_per_point` random task sets at
/// each. Work is parallelised over (point, task-set block) jobs on the shared
/// experiment runtime; each task set draws from runtime::stream_rng keyed by
/// its global (point, set) index, so the curve is bit-identical for a given
/// seed at any thread count.
std::vector<SchedCurvePoint> run_sched_experiment(const SchedExperimentConfig& config);

}  // namespace flexstep::sched
