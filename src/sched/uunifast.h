// Task-set generation for the Fig. 5 schedulability experiments: UUnifast
// utilisations (Bini & Buttazzo, the paper's cited generator) with
// log-uniform periods and randomised class assignment by the α (double-check)
// and β (triple-check) fractions.
#pragma once

#include "common/rng.h"
#include "sched/task_model.h"

namespace flexstep::sched {

/// UUnifast: n utilisations summing exactly to `total_u`, unbiased over the
/// simplex. Individual values may exceed 1 for large total_u/n; the generator
/// below resamples such sets (they are trivially infeasible).
std::vector<double> uunifast(u32 n, double total_u, Rng& rng);

struct TaskSetParams {
  u32 n = 160;
  double total_utilization = 4.0;  ///< Absolute (not normalised by m).
  double alpha = 0.0625;           ///< Fraction of T^V2 tasks.
  double beta = 0.0625;            ///< Fraction of T^V3 tasks.
  double period_min = 10.0;        ///< ms (units are arbitrary but consistent).
  double period_max = 1000.0;
};

/// Generate one random task set. Resamples until every task has u_i ≤ 1.
TaskSet generate_task_set(const TaskSetParams& params, Rng& rng);

}  // namespace flexstep::sched
