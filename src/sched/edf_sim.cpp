#include "sched/edf_sim.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "common/check.h"

namespace flexstep::sched {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kEps = 1e-9;

struct JobState {
  double remaining = 0.0;
  bool completed = false;
  bool started = false;
  double completion = kInf;
};

}  // namespace

SimResult simulate_edf(const std::vector<SimJob>& jobs, u32 num_cores, double horizon) {
  SimResult result;
  std::vector<JobState> state(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    state[i].remaining = jobs[i].wcet;
    if (jobs[i].wcet <= 0.0) {
      state[i].completed = true;
      state[i].completion = jobs[i].release;
    }
    if (jobs[i].gang_master >= 0) {
      FLEX_CHECK_MSG(static_cast<std::size_t>(jobs[i].gang_master) < jobs.size(),
                     "gang master out of range");
    }
  }

  // Mirrors attached to each master.
  std::vector<std::vector<u32>> mirrors(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (jobs[i].gang_master >= 0) {
      mirrors[static_cast<std::size_t>(jobs[i].gang_master)].push_back(
          static_cast<u32>(i));
    }
  }

  auto ready = [&](std::size_t i, double t) {
    const SimJob& job = jobs[i];
    if (state[i].completed || job.gang_master >= 0) return false;
    if (job.release > t + kEps) return false;
    if (job.depends_on >= 0 && !state[static_cast<std::size_t>(job.depends_on)].completed) {
      return false;
    }
    return true;
  };

  double t = 0.0;
  // prev_running[i]: master job i was executing in the previous interval
  // (needed for non-preemptive claims).
  std::vector<bool> prev_running(jobs.size(), false);

  while (t < horizon - kEps) {
    // ---- claims from started non-preemptive masters ----
    std::vector<i32> core_claim(num_cores, -1);
    auto claim_cores = [&](std::size_t master) {
      core_claim[jobs[master].core] = static_cast<i32>(master);
      for (u32 mi : mirrors[master]) core_claim[jobs[mi].core] = static_cast<i32>(master);
    };
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (prev_running[i] && jobs[i].non_preemptive && !state[i].completed &&
          state[i].started) {
        claim_cores(i);
      }
    }

    // ---- global EDF assignment pass ----
    std::vector<std::size_t> candidates;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (ready(i, t)) candidates.push_back(i);
    }
    std::sort(candidates.begin(), candidates.end(), [&](std::size_t a, std::size_t b) {
      if (jobs[a].sched_deadline != jobs[b].sched_deadline) {
        return jobs[a].sched_deadline < jobs[b].sched_deadline;
      }
      return a < b;
    });

    std::vector<i32> core_run = core_claim;
    for (std::size_t i : candidates) {
      if (core_claim[jobs[i].core] == static_cast<i32>(i)) continue;  // already claimed
      bool cores_free = core_run[jobs[i].core] < 0;
      for (u32 mi : mirrors[i]) cores_free = cores_free && core_run[jobs[mi].core] < 0;
      if (!cores_free) continue;
      core_run[jobs[i].core] = static_cast<i32>(i);
      for (u32 mi : mirrors[i]) core_run[jobs[mi].core] = static_cast<i32>(i);
    }

    // ---- next event time ----
    double t_next = horizon;
    for (const auto& job : jobs) {
      if (job.release > t + kEps) t_next = std::min(t_next, job.release);
    }
    std::vector<std::size_t> running;
    for (u32 c = 0; c < num_cores; ++c) {
      const i32 j = core_run[c];
      if (j >= 0 && jobs[static_cast<std::size_t>(j)].core == c) {
        running.push_back(static_cast<std::size_t>(j));
      }
    }
    for (std::size_t i : running) t_next = std::min(t_next, t + state[i].remaining);
    FLEX_CHECK_MSG(t_next > t + kEps / 2 || !running.empty() || t_next > t,
                   "simulation stalled");
    if (t_next <= t + kEps && running.empty()) {
      // Idle gap with an event exactly at t (numerical edge): nudge forward.
      t_next = t + kEps * 10;
    }
    const double dt = t_next - t;

    // ---- execute & record ----
    for (std::size_t i : running) {
      result.gantt.push_back(
          {jobs[i].core, jobs[i].task_id, static_cast<u32>(i), jobs[i].is_check, t, t_next});
      for (u32 mi : mirrors[i]) {
        result.gantt.push_back({jobs[mi].core, jobs[mi].task_id, mi,
                                jobs[mi].is_check, t, t_next});
      }
      state[i].started = true;
      state[i].remaining -= dt;
      if (state[i].remaining <= kEps) {
        state[i].completed = true;
        state[i].completion = t_next;
        for (u32 mi : mirrors[i]) {
          state[mi].completed = true;
          state[mi].completion = t_next;
        }
      }
    }
    std::fill(prev_running.begin(), prev_running.end(), false);
    for (std::size_t i : running) prev_running[i] = true;

    t = t_next;
  }

  // ---- deadline verdicts ----
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const double completion = state[i].completed ? state[i].completion : kInf;
    if (completion > jobs[i].deadline + kEps && jobs[i].deadline <= horizon + kEps) {
      result.misses.push_back(
          {static_cast<u32>(i), jobs[i].task_id, jobs[i].deadline, completion});
    }
  }
  result.feasible = result.misses.empty();

  // Merge adjacent Gantt slices of the same job on the same core.
  std::vector<GanttSlice> merged;
  for (const auto& slice : result.gantt) {
    if (!merged.empty() && merged.back().job_index == slice.job_index &&
        merged.back().core == slice.core &&
        std::abs(merged.back().end - slice.start) < kEps) {
      merged.back().end = slice.end;
    } else {
      merged.push_back(slice);
    }
  }
  result.gantt = std::move(merged);
  return result;
}

// ---------------------------------------------------------------------------
// Periodic expansion per scheme
// ---------------------------------------------------------------------------

namespace {

struct Placement {
  i32 original_core = -1;
  double original_rel_deadline = 0.0;  ///< EDF deadline on the original core.
  bool original_blocking = false;
  std::vector<u32> copy_cores;
};

std::map<u32, Placement> collect_placements(const PartitionResult& plan) {
  std::map<u32, Placement> placements;
  for (u32 k = 0; k < plan.cores.size(); ++k) {
    for (const auto& item : plan.cores[k].items) {
      Placement& p = placements[item.task_id];
      if (item.is_check_copy) {
        p.copy_cores.push_back(k);
      } else {
        p.original_core = static_cast<i32>(k);
        p.original_rel_deadline = item.deadline;
        p.original_blocking = item.blocking_source;
      }
    }
  }
  return placements;
}

const Task& task_by_id(const TaskSet& tasks, u32 id) {
  for (const auto& t : tasks) {
    if (t.id == id) return t;
  }
  FLEX_CHECK_MSG(false, "task id not found");
  return tasks.front();
}

}  // namespace

std::vector<SimJob> make_flexstep_jobs(const TaskSet& tasks, const PartitionResult& plan,
                                       double horizon) {
  std::vector<SimJob> jobs;
  const auto placements = collect_placements(plan);
  for (const auto& [task_id, p] : placements) {
    const Task& task = task_by_id(tasks, task_id);
    FLEX_CHECK(p.original_core >= 0);
    for (double release = 0.0; release + task.period <= horizon + 1e-9;
         release += task.period) {
      SimJob original;
      original.task_id = task_id;
      original.core = static_cast<u32>(p.original_core);
      original.release = release;
      original.wcet = task.wcet;
      original.deadline = release + task.period;
      original.sched_deadline = release + p.original_rel_deadline;  // virtual deadline
      jobs.push_back(original);
      const i32 original_index = static_cast<i32>(jobs.size() - 1);

      for (u32 copy_core : p.copy_cores) {
        SimJob check;
        check.task_id = task_id;
        check.core = copy_core;
        check.release = release;
        check.wcet = task.wcet;
        check.deadline = release + task.period;
        check.sched_deadline = release + task.period;
        check.is_check = true;
        check.depends_on = original_index;  // asynchronous: starts after original
        jobs.push_back(check);
      }
    }
  }
  return jobs;
}

std::vector<SimJob> make_lockstep_jobs(const TaskSet& tasks, const PartitionResult& plan,
                                       double horizon) {
  std::vector<SimJob> jobs;
  const auto placements = collect_placements(plan);
  for (const auto& [task_id, p] : placements) {
    const Task& task = task_by_id(tasks, task_id);
    FLEX_CHECK(p.original_core >= 0);
    for (double release = 0.0; release + task.period <= horizon + 1e-9;
         release += task.period) {
      SimJob job;
      job.task_id = task_id;
      job.core = static_cast<u32>(p.original_core);
      job.release = release;
      job.wcet = task.wcet;
      job.deadline = release + task.period;
      job.sched_deadline = job.deadline;
      jobs.push_back(job);
    }
  }
  return jobs;
}

std::vector<SimJob> make_hmr_jobs(const TaskSet& tasks, const PartitionResult& plan,
                                  double horizon) {
  std::vector<SimJob> jobs;
  const auto placements = collect_placements(plan);
  for (const auto& [task_id, p] : placements) {
    const Task& task = task_by_id(tasks, task_id);
    FLEX_CHECK(p.original_core >= 0);
    const bool verified = !p.copy_cores.empty();
    for (double release = 0.0; release + task.period <= horizon + 1e-9;
         release += task.period) {
      SimJob original;
      original.task_id = task_id;
      original.core = static_cast<u32>(p.original_core);
      original.release = release;
      original.wcet = task.wcet;
      original.deadline = release + task.period;
      original.sched_deadline = original.deadline;
      original.non_preemptive = verified;  // checking cannot be preempted
      jobs.push_back(original);
      const i32 original_index = static_cast<i32>(jobs.size() - 1);

      for (u32 copy_core : p.copy_cores) {
        SimJob mirror;
        mirror.task_id = task_id;
        mirror.core = copy_core;
        mirror.release = release;
        mirror.wcet = task.wcet;
        mirror.deadline = release + task.period;
        mirror.sched_deadline = mirror.deadline;
        mirror.is_check = true;
        mirror.non_preemptive = true;
        mirror.gang_master = original_index;  // synchronous split-lock
        jobs.push_back(mirror);
      }
    }
  }
  return jobs;
}

std::string render_gantt(const SimResult& result, u32 num_cores, double t_end,
                         u32 columns) {
  std::vector<std::string> rows(num_cores, std::string(columns, '.'));
  for (const auto& slice : result.gantt) {
    if (slice.core >= num_cores) continue;
    auto col_start = static_cast<std::size_t>(slice.start / t_end * columns);
    auto col_end = static_cast<std::size_t>(slice.end / t_end * columns);
    col_start = std::min<std::size_t>(col_start, columns - 1);
    col_end = std::min<std::size_t>(std::max(col_end, col_start + 1), columns);
    const char symbol = slice.is_check
                            ? static_cast<char>('a' + slice.task_id % 26)
                            : static_cast<char>('A' + slice.task_id % 26);
    for (std::size_t c = col_start; c < col_end; ++c) rows[slice.core][c] = symbol;
  }
  std::string out;
  for (u32 core = 0; core < num_cores; ++core) {
    out += "core " + std::to_string(core) + " |" + rows[core] + "|\n";
  }
  return out;
}

}  // namespace flexstep::sched
