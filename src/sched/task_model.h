// Sporadic task model of paper Sec. V.
//
// A task τi has WCET Ci, period Ti, implicit deadline Di = Ti, and one of
// three reliability classes: T^N (no verification), T^V2 (double-check: one
// duplicated computation) or T^V3 (triple-check: two duplicated computations).
// Under the asynchronous model, a verification task's original computation is
// scheduled against a *virtual deadline* D'i reserving time for the
// duplicated computation(s) to finish by Di:
//     T^V2: D'i = Di/2          T^V3: D'i = (√2 − 1)·Di
// chosen to minimise total density δo + (copies)·δv (paper Sec. V).
#pragma once

#include <cmath>
#include <string>
#include <vector>

#include "common/types.h"

namespace flexstep::sched {

enum class TaskType : u8 { kNormal, kV2, kV3 };

constexpr const char* task_type_name(TaskType t) {
  switch (t) {
    case TaskType::kNormal: return "N";
    case TaskType::kV2: return "V2";
    case TaskType::kV3: return "V3";
  }
  return "?";
}

/// Number of duplicated computations (checker copies) for a class.
constexpr u32 num_copies(TaskType t) {
  switch (t) {
    case TaskType::kNormal: return 0;
    case TaskType::kV2: return 1;
    case TaskType::kV3: return 2;
  }
  return 0;
}

struct Task {
  u32 id = 0;
  double wcet = 0.0;    ///< Ci.
  double period = 0.0;  ///< Ti = Di (implicit deadline).
  TaskType type = TaskType::kNormal;

  double deadline() const { return period; }
  double utilization() const { return wcet / period; }

  /// Virtual deadline D'i for the original computation (= Di for T^N).
  double virtual_deadline() const {
    switch (type) {
      case TaskType::kNormal: return period;
      case TaskType::kV2: return period / 2.0;
      case TaskType::kV3: return (std::sqrt(2.0) - 1.0) * period;
    }
    return period;
  }

  /// Density of the original computation under the virtual deadline.
  double density_original() const { return wcet / virtual_deadline(); }
  /// Density of each duplicated computation (window Di − D'i).
  double density_check() const { return wcet / (period - virtual_deadline()); }
};

using TaskSet = std::vector<Task>;

double total_utilization(const TaskSet& tasks);

/// Fractions of the set in each class (by count).
struct TypeCounts {
  u32 normal = 0;
  u32 v2 = 0;
  u32 v3 = 0;
};
TypeCounts count_types(const TaskSet& tasks);

}  // namespace flexstep::sched
