// HMR (Hybrid Modular Redundancy) baseline partitioning (paper Sec. VI-B).
//
// Split-lock at runtime: a verification task's original computation runs on a
// main core while mirrored cop(ies) occupy checker core(s) *synchronously* —
// same C, T, D. Cores are not statically bound, so checker-side capacity is
// reusable by other tasks when no verification is running. The binding
// constraints remain: (i) mirrors add full utilisation to their cores, and
// (ii) verification execution cannot be preempted by non-verification tasks,
// which shows up as a blocking term in the per-core EDF test:
//     ∀ τi on core k:  Σ_{Dj ≤ Di} δj + max{Cb : blocking source, Db > Di}/Di ≤ 1
// (Baker-style non-preemption blocking under EDF; the paper does not
// formalise its HMR test — DESIGN.md §2.5 documents this interpretation.)
#pragma once

#include "sched/partition.h"

namespace flexstep::sched {

/// The per-core EDF density test with non-preemption blocking (exposed for
/// tests and the ablation benches).
bool edf_blocking_schedulable(const CorePlan& core);

PartitionResult hmr_partition(const TaskSet& tasks, u32 m);

}  // namespace flexstep::sched
