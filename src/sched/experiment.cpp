#include "sched/experiment.h"

#include <algorithm>

#include "common/rng.h"
#include "runtime/parallel.h"
#include "sched/flexstep_partition.h"
#include "sched/hmr_partition.h"
#include "sched/lockstep_partition.h"
#include "sched/uunifast.h"

namespace flexstep::sched {

namespace {

/// Task sets evaluated per job. Fixed (never thread-derived): job boundaries
/// feed nothing — each set's Rng is keyed by its global (point, set) index —
/// but keeping the block size a constant makes the schedule reproducible too.
constexpr u32 kSetsPerJob = 64;

struct PointCounts {
  std::size_t point = 0;
  u32 lockstep = 0;
  u32 hmr = 0;
  u32 flexstep = 0;
};

}  // namespace

std::vector<SchedCurvePoint> run_sched_experiment(const SchedExperimentConfig& config) {
  std::vector<double> utilizations;
  for (double u = config.u_min; u <= config.u_max + 1e-9; u += config.u_step) {
    utilizations.push_back(u);
  }

  struct Job {
    std::size_t point;
    u32 set_begin;
    u32 set_end;
  };
  std::vector<Job> jobs;
  for (std::size_t p = 0; p < utilizations.size(); ++p) {
    for (u32 s = 0; s < config.sets_per_point; s += kSetsPerJob) {
      jobs.push_back({p, s, std::min(s + kSetsPerJob, config.sets_per_point)});
    }
  }

  auto run_job = [&](std::size_t j) {
    const Job& job = jobs[j];
    TaskSetParams params;
    params.n = config.n;
    params.total_utilization = utilizations[job.point] * config.m;
    params.alpha = config.alpha;
    params.beta = config.beta;

    PointCounts counts;
    counts.point = job.point;
    for (u32 s = job.set_begin; s < job.set_end; ++s) {
      Rng rng = runtime::stream_rng(
          config.seed, static_cast<u64>(job.point) * config.sets_per_point + s);
      const TaskSet tasks = generate_task_set(params, rng);
      if (lockstep_partition(tasks, config.m).schedulable) ++counts.lockstep;
      if (hmr_partition(tasks, config.m).schedulable) ++counts.hmr;
      if (flexstep_schedulable(tasks, config.m)) ++counts.flexstep;
    }
    return counts;
  };

  std::vector<PointCounts> partials;
  if (config.threads != 0) {
    runtime::JobPool pool(config.threads);
    partials = runtime::parallel_map<PointCounts>(pool, jobs.size(), run_job);
  } else {
    partials = runtime::parallel_map<PointCounts>(jobs.size(), run_job);
  }

  std::vector<SchedCurvePoint> curve(utilizations.size());
  for (std::size_t p = 0; p < utilizations.size(); ++p) {
    curve[p].utilization = utilizations[p];
  }
  std::vector<PointCounts> totals(utilizations.size());
  for (const auto& part : partials) {
    totals[part.point].lockstep += part.lockstep;
    totals[part.point].hmr += part.hmr;
    totals[part.point].flexstep += part.flexstep;
  }
  const double denom = config.sets_per_point;
  for (std::size_t p = 0; p < utilizations.size(); ++p) {
    curve[p].lockstep = 100.0 * totals[p].lockstep / denom;
    curve[p].hmr = 100.0 * totals[p].hmr / denom;
    curve[p].flexstep = 100.0 * totals[p].flexstep / denom;
  }
  return curve;
}

}  // namespace flexstep::sched
