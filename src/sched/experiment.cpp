#include "sched/experiment.h"

#include "common/rng.h"
#include "sched/flexstep_partition.h"
#include "sched/hmr_partition.h"
#include "sched/lockstep_partition.h"
#include "sched/uunifast.h"

namespace flexstep::sched {

std::vector<SchedCurvePoint> run_sched_experiment(const SchedExperimentConfig& config) {
  std::vector<SchedCurvePoint> curve;
  Rng rng(config.seed);

  for (double u = config.u_min; u <= config.u_max + 1e-9; u += config.u_step) {
    SchedCurvePoint point;
    point.utilization = u;

    TaskSetParams params;
    params.n = config.n;
    params.total_utilization = u * config.m;
    params.alpha = config.alpha;
    params.beta = config.beta;

    u32 ok_lockstep = 0;
    u32 ok_hmr = 0;
    u32 ok_flexstep = 0;
    for (u32 s = 0; s < config.sets_per_point; ++s) {
      const TaskSet tasks = generate_task_set(params, rng);
      if (lockstep_partition(tasks, config.m).schedulable) ++ok_lockstep;
      if (hmr_partition(tasks, config.m).schedulable) ++ok_hmr;
      if (flexstep_schedulable(tasks, config.m)) ++ok_flexstep;
    }
    const double denom = config.sets_per_point;
    point.lockstep = 100.0 * ok_lockstep / denom;
    point.hmr = 100.0 * ok_hmr / denom;
    point.flexstep = 100.0 * ok_flexstep / denom;
    curve.push_back(point);
  }
  return curve;
}

}  // namespace flexstep::sched
