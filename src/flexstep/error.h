// Error detection reporting: every checker mismatch lands here, with latency
// attribution against the channel's pending injected fault (Sec. VI-C).
#pragma once

#include <vector>

#include "common/types.h"

namespace flexstep::io {
class ArchiveWriter;
class ArchiveReader;
}  // namespace flexstep::io

namespace flexstep::fs {

class Channel;

/// Where the mismatch was caught.
enum class DetectKind : u8 {
  kLoadAddr,    ///< Replayed load address != logged address.
  kStoreAddr,   ///< Replayed store address != logged address.
  kStoreData,   ///< Replayed store data != logged data.
  kAmoStore,    ///< Replayed AMO result != logged new value.
  kScMismatch,  ///< SC store part mismatch.
  kEcpReg,      ///< End-checkpoint register mismatch.
  kEcpPc,       ///< End-checkpoint PC mismatch.
  kStructural,  ///< Stream shape broken (wrong item kind, runaway replay, fetch fault).
};

constexpr const char* detect_kind_name(DetectKind k) {
  switch (k) {
    case DetectKind::kLoadAddr: return "load-addr";
    case DetectKind::kStoreAddr: return "store-addr";
    case DetectKind::kStoreData: return "store-data";
    case DetectKind::kAmoStore: return "amo-store";
    case DetectKind::kScMismatch: return "sc";
    case DetectKind::kEcpReg: return "ecp-reg";
    case DetectKind::kEcpPc: return "ecp-pc";
    case DetectKind::kStructural: return "structural";
  }
  return "?";
}

struct DetectionEvent {
  CoreId checker = kInvalidCore;
  Cycle at = 0;
  DetectKind kind = DetectKind::kEcpReg;
  bool attributed = false;   ///< Matched against a pending injected fault.
  Cycle latency = 0;         ///< Detection latency in cycles (attributed only).
};

class ErrorReporter {
 public:
  /// Record a mismatch observed by `checker` on `channel`. If the channel has
  /// a pending injected fault, the event is attributed (latency = now - inject
  /// time) and the fault is cleared.
  void on_detect(Channel& channel, DetectKind kind, CoreId checker, Cycle now);

  const std::vector<DetectionEvent>& events() const { return events_; }
  std::size_t detections() const { return events_.size(); }
  std::size_t attributed_detections() const { return attributed_; }
  void clear() {
    events_.clear();
    attributed_ = 0;
  }

  // ---- state capture ----
  struct Snapshot {
    std::vector<DetectionEvent> events;
    std::size_t attributed = 0;

    void serialize(io::ArchiveWriter& ar) const;
    void deserialize(io::ArchiveReader& ar);
  };
  void save(Snapshot& out) const {
    out.events = events_;
    out.attributed = attributed_;
  }
  void restore(const Snapshot& snapshot) {
    events_ = snapshot.events;
    attributed_ = snapshot.attributed;
  }

 private:
  std::vector<DetectionEvent> events_;
  std::size_t attributed_ = 0;
};

}  // namespace flexstep::fs
