// The FlexStep fabric: per-core units, the global configuration registers and
// the System Interconnect (paper Sec. III-C) — a full crossbar that routes a
// main core's Data Buffer FIFO to one or more checker cores, configured at
// runtime by M.associate.
//
// Conflict handling follows the paper: when two main cores target the same
// checker, only one channel is attached at a time; the other buffers in its
// own FIFO/DMA space on a waitlist until the checker is released.
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "arch/core.h"
#include "common/types.h"
#include "flexstep/channel.h"
#include "flexstep/config.h"
#include "flexstep/core_unit.h"
#include "flexstep/error.h"
#include "flexstep/global_config.h"

namespace flexstep::fs {

class Fabric final : public InterconnectControl {
 public:
  explicit Fabric(const FlexStepConfig& config) : config_(config) {}

  /// Create (and attach) the FlexStep unit for `core`. Cores must be attached
  /// in id order, starting at 0.
  CoreUnit& attach(arch::Core& core);

  CoreUnit& unit(CoreId id) { return *units_.at(id); }
  const CoreUnit& unit(CoreId id) const { return *units_.at(id); }
  std::size_t num_units() const { return units_.size(); }

  GlobalConfig& global() { return global_; }
  ErrorReporter& reporter() { return reporter_; }
  const FlexStepConfig& config() const { return config_; }

  // ---- InterconnectControl (M.associate / job teardown) ----

  /// Route `main_id`'s stream to every checker in `checker_mask`, replacing
  /// the main core's previous out-set. Reuses still-open channels for
  /// unchanged pairs; creates fresh channels otherwise. Busy checkers queue
  /// the new channel on their waitlist.
  void associate(CoreId main_id, u64 checker_mask) override;

  /// Close all of `main_id`'s out channels (verification job finished). The
  /// checkers keep draining the closed channels asynchronously.
  void dissociate(CoreId main_id) override;

  /// Give idle checkers their next waitlisted channel and detach drained
  /// ones. The SoC driver calls this every scheduling round.
  void pump_assignments();

  /// Channels currently parked on `checker`'s waitlist (contending producers
  /// whose streams buffer in their own FIFO space until the checker frees up).
  std::size_t waitlist_depth(CoreId checker) const {
    return waitlists_.at(checker).size();
  }

  /// One arbitration decision: `checker` released `from_main`'s drained
  /// channel and attached `to_main`'s waitlisted one, at the checker's local
  /// clock `cycle`. The handoff happens between scheduling rounds (in
  /// pump_assignments), so the cycle is engine-independent — the contended-
  /// topology equivalence tests compare whole event logs across engines.
  struct HandoffEvent {
    Cycle cycle = 0;
    CoreId checker = 0;
    CoreId from_main = 0;
    CoreId to_main = 0;
  };

  /// Arbitration log, in decision order. Diagnostics only: not part of the
  /// snapshot wire form, cleared by restore() (a rewound run re-derives its
  /// own suffix).
  const std::vector<HandoffEvent>& handoff_events() const {
    return handoff_events_;
  }

  /// Ready horizon: the earliest cycle at which any unit that is not already
  /// replaying has a complete segment to pick up (kNever if none). Co-sim
  /// drivers use it to tell "everything drained / parked for good" apart from
  /// "work is pending but nobody is runnable" when diagnosing a stall.
  Cycle next_replay_ready_at() const;

  /// All live channels (diagnostics / fault-injection targeting).
  std::vector<Channel*> channels() const;

  // ---- state capture ----

  /// Fabric topology + state: global registers, error reporter, every channel
  /// (content + endpoints), every unit, and the wiring between them encoded as
  /// channel indices so restore() can rebuild the pointer graph — including
  /// into a freshly constructed SoC (Session::fork).
  struct Snapshot {
    u64 main_mask = 0;
    u64 checker_mask = 0;
    ErrorReporter::Snapshot reporter;
    std::vector<Channel::Snapshot> channels;
    std::vector<CoreUnit::Snapshot> units;
    std::vector<std::vector<std::size_t>> out_channels;  ///< Per unit: channel indices.
    std::vector<std::size_t> in_channel;   ///< Per unit: index + 1 (0 = none).
    std::vector<std::vector<std::size_t>> waitlists;     ///< Per checker: channel indices.
    std::size_t bytes() const;

    /// Wire format. deserialize() validates the index graph (every channel
    /// index in range, in_channel offsets by one) so a decoded snapshot never
    /// feeds restore() an out-of-range wiring table.
    void serialize(io::ArchiveWriter& ar) const;
    void deserialize(io::ArchiveReader& ar);
  };

  void save(Snapshot& out) const;
  /// Restore; the unit count must match (same SocConfig). Channels are
  /// recreated from scratch, so any Channel* held across a restore dangles —
  /// re-fetch through channels()/unit wiring.
  void restore(const Snapshot& snapshot);

 private:
  Channel* find_open_channel(CoreId main_id, CoreId checker_id);

  FlexStepConfig config_;
  GlobalConfig global_;
  ErrorReporter reporter_;
  std::vector<std::unique_ptr<CoreUnit>> units_;
  std::vector<std::unique_ptr<Channel>> channels_;
  std::vector<std::deque<Channel*>> waitlists_;  ///< Per checker core id.
  std::vector<HandoffEvent> handoff_events_;
};

}  // namespace flexstep::fs
