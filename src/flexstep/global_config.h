// Global configuration registers (paper Sec. III-C): core-attribute masks
// written by G.Configure and queried by G.IDs.contain. Making every core's
// attribute OS-visible is what enables dynamic reconfiguration at runtime.
#pragma once

#include "common/check.h"
#include "common/types.h"

namespace flexstep::fs {

enum class CoreAttr : u8 { kCompute = 0, kMain = 1, kChecker = 2 };

constexpr const char* core_attr_name(CoreAttr a) {
  switch (a) {
    case CoreAttr::kCompute: return "compute";
    case CoreAttr::kMain: return "main";
    case CoreAttr::kChecker: return "checker";
  }
  return "?";
}

class GlobalConfig {
 public:
  /// G.Configure: write the main/checker ID sets. A core may not be both.
  void configure(u64 main_mask, u64 checker_mask) {
    FLEX_CHECK_MSG((main_mask & checker_mask) == 0,
                   "a core cannot be main and checker simultaneously");
    main_mask_ = main_mask;
    checker_mask_ = checker_mask;
  }

  CoreAttr attr_of(CoreId id) const {
    const u64 bit = u64{1} << id;
    if ((main_mask_ & bit) != 0) return CoreAttr::kMain;
    if ((checker_mask_ & bit) != 0) return CoreAttr::kChecker;
    return CoreAttr::kCompute;
  }

  bool is_main(CoreId id) const { return attr_of(id) == CoreAttr::kMain; }
  bool is_checker(CoreId id) const { return attr_of(id) == CoreAttr::kChecker; }

  u64 main_mask() const { return main_mask_; }
  u64 checker_mask() const { return checker_mask_; }

 private:
  u64 main_mask_ = 0;
  u64 checker_mask_ = 0;
};

}  // namespace flexstep::fs
