// FlexStep hardware-unit configuration (defaults match the paper).
#pragma once

#include "common/types.h"

namespace flexstep::fs {

struct FlexStepConfig {
  /// CPC instruction-count limit per checking segment (paper default: 5000).
  u32 segment_limit = 5000;

  /// DBC backpressure threshold in stream entries. The SRAM FIFO holds 64
  /// entries (1088 B at 17 B/entry, Sec. VI-E); the paper extends buffering
  /// into main memory via DMA, so the effective channel depth is much larger.
  /// Backpressure (main-core stall) applies beyond this threshold.
  u64 channel_capacity = 2048;

  /// Cycles from a push until the item is visible to the checker (crossbar +
  /// FIFO traversal).
  Cycle channel_latency = 4;

  /// Main-core stall for extracting an SCP/ECP pair into the ASS at a segment
  /// boundary (register-file snapshot + formatting, Sec. III-A).
  Cycle checkpoint_stall = 24;

  /// Replay runaway guard: abandon a segment after this multiple of
  /// segment_limit replayed instructions (covers corrupted IC values).
  u32 max_replay_factor = 4;
};

/// Per-core storage added by FlexStep (paper Sec. VI-E): used by the
/// power/area model and printed by the Table III bench.
inline constexpr u32 kCpcStorageBytes = 8;
inline constexpr u32 kAssStorageBytes = 518;
inline constexpr u32 kDbcStorageBytes = 1088;
inline constexpr u32 kTotalStorageBytesPerCore =
    kCpcStorageBytes + kAssStorageBytes + kDbcStorageBytes;  // 1614 B

/// DBC SRAM FIFO geometry implied by the storage budget: 17 B per entry
/// (8 B address + 8 B data + 1 B metadata) × 64 entries = 1088 B.
inline constexpr u32 kFifoEntryBytes = 17;
inline constexpr u32 kFifoSramEntries = kDbcStorageBytes / kFifoEntryBytes;

}  // namespace flexstep::fs
