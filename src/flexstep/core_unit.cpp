#include "flexstep/core_unit.h"

#include <algorithm>

#include "common/archive.h"
#include "common/check.h"
#include "common/log.h"
#include "isa/csr.h"

namespace flexstep::fs {

using arch::ArchState;
using arch::CommitInfo;

namespace {

void serialize_state(io::ArchiveWriter& ar, const ArchState& s) {
  ar.put_u64(s.pc);
  for (u64 r : s.regs) ar.put_u64(r);
}

void deserialize_state(io::ArchiveReader& ar, ArchState& s) {
  s.pc = ar.take_u64();
  for (u64& r : s.regs) r = ar.take_u64();
}

}  // namespace

void CoreUnit::Snapshot::serialize(io::ArchiveWriter& ar) const {
  ar.put_bool(checking_enabled);
  ar.put_bool(segment_active);
  ar.put_varint(segment_ic);
  ar.put_varint(checking_budget);
  ar.put_u64(segment_start_pc);
  ar.put_bool(checker_busy);
  ar.put_bool(replay_active);
  ar.put_bool(replay_suspended);
  ar.put_bool(have_thread_ctx);
  serialize_state(ar, ass_thread_ctx);
  serialize_state(ar, pending_scp);
  ar.put_varint(expected_ic);
  ar.put_varint(replayed);
  ar.put_bool(segment_result_ok);
  ar.put_bool(segment_verify_failed);
  ar.put_bool(segment_abort);
  ar.put_varint(segments_produced);
  ar.put_varint(segments_verified);
  ar.put_varint(segments_failed);
  ar.put_varint(checkpoints_captured);
  ar.put_varint(mem_entries_logged);
  ar.put_varint(replayed_total);
}

void CoreUnit::Snapshot::deserialize(io::ArchiveReader& ar) {
  checking_enabled = ar.take_bool();
  segment_active = ar.take_bool();
  segment_ic = ar.take_varint();
  checking_budget = ar.take_varint();
  segment_start_pc = ar.take_u64();
  checker_busy = ar.take_bool();
  replay_active = ar.take_bool();
  replay_suspended = ar.take_bool();
  have_thread_ctx = ar.take_bool();
  deserialize_state(ar, ass_thread_ctx);
  deserialize_state(ar, pending_scp);
  expected_ic = ar.take_varint();
  replayed = ar.take_varint();
  segment_result_ok = ar.take_bool();
  segment_verify_failed = ar.take_bool();
  segment_abort = ar.take_bool();
  segments_produced = ar.take_varint();
  segments_verified = ar.take_varint();
  segments_failed = ar.take_varint();
  checkpoints_captured = ar.take_varint();
  mem_entries_logged = ar.take_varint();
  replayed_total = ar.take_varint();
}
using arch::MemResult;
using isa::Instruction;
using isa::Opcode;

// ---------------------------------------------------------------------------
// Replay memory port: "the checker core halts memory access and sequentially
// replays the checking segments" (Sec. II). Loads are served from the MAL log
// (address verified); stores/AMO results are verified against the log.
// ---------------------------------------------------------------------------
class CoreUnit::ReplayPort final : public arch::MemPort {
 public:
  explicit ReplayPort(CoreUnit& unit) : unit_(unit) {}

  MemResult load(Opcode, Addr addr, u32) override {
    MemResult r;
    const auto entry = next_entry(MemEntryKind::kLoadData);
    if (!entry.has_value()) return r;  // structural abort already flagged
    if (entry->addr != addr) {
      unit_.report(DetectKind::kLoadAddr);
      unit_.segment_verify_failed_ = true;
    }
    r.data = entry->data;  // replay uses the logged value
    r.stall = kFifoReadStall;
    return r;
  }

  MemResult store(Opcode, Addr addr, u32, u64 data) override {
    MemResult r;
    const auto entry = next_entry(MemEntryKind::kStoreAddrData);
    if (!entry.has_value()) return r;
    if (entry->addr != addr) {
      unit_.report(DetectKind::kStoreAddr);
      unit_.segment_verify_failed_ = true;
    } else if (entry->data != data) {
      unit_.report(DetectKind::kStoreData);
      unit_.segment_verify_failed_ = true;
    }
    r.stall = kFifoReadStall;
    return r;
  }

  MemResult amo(Opcode op, Addr addr, u64 operand) override {
    MemResult r;
    const auto load_part = next_entry(MemEntryKind::kAmoLoad);
    if (!load_part.has_value()) return r;
    if (load_part->addr != addr) {
      unit_.report(DetectKind::kLoadAddr);
      unit_.segment_verify_failed_ = true;
    }
    const u64 old = load_part->data;
    u64 next = 0;
    switch (op) {
      case Opcode::kAmoaddD: next = old + operand; break;
      case Opcode::kAmoswapD: next = operand; break;
      case Opcode::kAmoxorD: next = old ^ operand; break;
      case Opcode::kAmoandD: next = old & operand; break;
      case Opcode::kAmoorD: next = old | operand; break;
      default: FLEX_CHECK_MSG(false, "not an AMO opcode");
    }
    const auto store_part = next_entry(MemEntryKind::kAmoStore);
    if (!store_part.has_value()) return r;
    if (store_part->addr != addr || store_part->data != next) {
      unit_.report(DetectKind::kAmoStore);
      unit_.segment_verify_failed_ = true;
    }
    r.data = old;
    r.stall = kFifoReadStall + 1;
    return r;
  }

  MemResult load_reserved(Addr addr) override {
    MemResult r;
    const auto entry = next_entry(MemEntryKind::kLrLoad);
    if (!entry.has_value()) return r;
    if (entry->addr != addr) {
      unit_.report(DetectKind::kLoadAddr);
      unit_.segment_verify_failed_ = true;
    }
    r.data = entry->data;
    r.stall = kFifoReadStall;
    return r;
  }

  MemResult store_conditional(Addr addr, u64 data) override {
    MemResult r;
    // The success flag is microarchitectural (reservation state cannot be
    // reproduced asynchronously) — trusted for replay, per Sec. III-B.
    const auto flag = next_entry(MemEntryKind::kScFlag);
    if (!flag.has_value()) return r;
    const bool success = flag->data == 0;
    if (success) {
      const auto store_part = next_entry(MemEntryKind::kScStore);
      if (!store_part.has_value()) return r;
      if (store_part->addr != addr || store_part->data != data) {
        unit_.report(DetectKind::kScMismatch);
        unit_.segment_verify_failed_ = true;
      }
    }
    r.data = flag->data;
    r.stall = kFifoReadStall + 1;
    return r;
  }

 private:
  /// Pop the next log entry; structural mismatch aborts the segment.
  std::optional<MemLogEntry> next_entry(MemEntryKind expected) {
    Channel* ch = unit_.in_channel_;
    if (ch == nullptr || ch->empty() ||
        ch->front().kind != StreamItem::Kind::kMem ||
        ch->front().mem.kind != expected) {
      unit_.report(DetectKind::kStructural);
      unit_.segment_verify_failed_ = true;
      unit_.segment_abort_ = true;
      return std::nullopt;
    }
    return unit_.pop_in(unit_.core_.cycle()).mem;
  }

  CoreUnit& unit_;
};

// ---------------------------------------------------------------------------

CoreUnit::CoreUnit(arch::Core& core, GlobalConfig& global, ErrorReporter& reporter,
                   InterconnectControl* interconnect, const FlexStepConfig& config)
    : core_(core),
      global_(global),
      reporter_(reporter),
      interconnect_(interconnect),
      config_(config),
      replay_port_(std::make_unique<ReplayPort>(*this)) {
  refresh_passive();
  core_.set_hooks(this);
}

CoreUnit::~CoreUnit() {
  if (static_bound_memory_ != nullptr) {
    static_bound_memory_->unwatch_code_pages(this);
  }
}

void CoreUnit::set_static_dbc_bound(arch::Memory& memory,
                                    std::shared_ptr<const StaticDbcBound> bound) {
  if (static_bound_memory_ != nullptr) {
    static_bound_memory_->unwatch_code_pages(this);
    static_bound_memory_ = nullptr;
  }
  static_bound_ = std::move(bound);
  static_bound_dropped_ = false;
  if (static_bound_ != nullptr && static_bound_->end > static_bound_->base) {
    static_bound_memory_ = &memory;
    memory.watch_code_pages(this, static_bound_->base >> arch::Memory::kPageBits,
                            (static_bound_->end - 1) >> arch::Memory::kPageBits);
  }
}

void CoreUnit::on_code_page_written(u64 page_id) {
  // Flag only (this runs inside Memory's write path): the analysed image no
  // longer matches what may execute, so burst sizing falls back to the
  // conservative global divisor from the next sizing decision on. Sticky —
  // reanalysis arrives, if ever, through a fresh set_static_dbc_bound.
  (void)page_id;
  static_bound_dropped_ = true;
}

void CoreUnit::save(Snapshot& out) const {
  out.checking_enabled = checking_enabled_;
  out.segment_active = segment_active_;
  out.segment_ic = segment_ic_;
  out.checking_budget = checking_budget_;
  out.segment_start_pc = segment_start_pc_;
  out.checker_busy = checker_busy_;
  out.replay_active = replay_active_;
  out.replay_suspended = replay_suspended_;
  out.have_thread_ctx = have_thread_ctx_;
  out.ass_thread_ctx = ass_thread_ctx_;
  out.pending_scp = pending_scp_;
  out.expected_ic = expected_ic_;
  out.replayed = replayed_;
  out.segment_result_ok = segment_result_ok_;
  out.segment_verify_failed = segment_verify_failed_;
  out.segment_abort = segment_abort_;
  out.segments_produced = segments_produced_;
  out.segments_verified = segments_verified_;
  out.segments_failed = segments_failed_;
  out.checkpoints_captured = checkpoints_captured_;
  out.mem_entries_logged = mem_entries_logged_;
  out.replayed_total = replayed_total_;
}

void CoreUnit::restore(const Snapshot& snapshot) {
  checking_enabled_ = snapshot.checking_enabled;
  segment_active_ = snapshot.segment_active;
  segment_ic_ = snapshot.segment_ic;
  checking_budget_ = snapshot.checking_budget;
  segment_start_pc_ = snapshot.segment_start_pc;
  checker_busy_ = snapshot.checker_busy;
  replay_active_ = snapshot.replay_active;
  replay_suspended_ = snapshot.replay_suspended;
  have_thread_ctx_ = snapshot.have_thread_ctx;
  ass_thread_ctx_ = snapshot.ass_thread_ctx;
  pending_scp_ = snapshot.pending_scp;
  expected_ic_ = snapshot.expected_ic;
  replayed_ = snapshot.replayed;
  segment_result_ok_ = snapshot.segment_result_ok;
  segment_verify_failed_ = snapshot.segment_verify_failed;
  segment_abort_ = snapshot.segment_abort;
  segments_produced_ = snapshot.segments_produced;
  segments_verified_ = snapshot.segments_verified;
  segments_failed_ = snapshot.segments_failed;
  checkpoints_captured_ = snapshot.checkpoints_captured;
  mem_entries_logged_ = snapshot.mem_entries_logged;
  replayed_total_ = snapshot.replayed_total;
  // The fused-path cursor is quantum-scoped (never live across a run_until
  // return, hence never part of any snapshot); drop any stale staging. The
  // bulk-consume horizon is likewise per-quantum driver state: start
  // conservative until the restoring driver re-establishes its contract.
  cursor_.used = 0;
  cursor_.capacity = 0;
  bulk_consume_horizon_ = 0;
  refresh_passive();
  // The core's data-memory port is not part of Core::Snapshot (it is a seam
  // pointer into this unit); re-derive it from the replay state.
  core_.set_mem_port(replay_active_ ? static_cast<arch::MemPort*>(replay_port_.get())
                                    : nullptr);
  core_.set_trap_suppression(replay_active_);
}

// ---------------------------------------------------------------------------
// Main-core (producer) side
// ---------------------------------------------------------------------------

u32 CoreUnit::entries_for(Opcode op) {
  switch (isa::opcode_mem_kind(op)) {
    case isa::MemKind::kLoad:
    case isa::MemKind::kLoadReserved: return 1;
    case isa::MemKind::kStore: return 1;
    case isa::MemKind::kAmo:
    case isa::MemKind::kStoreConditional: return 2;
    case isa::MemKind::kNone: return 0;
  }
  return 0;
}

bool CoreUnit::out_channels_have_space() const {
  for (const Channel* ch : out_channels_) {
    if (!ch->producer_can_push(kProducerResumeHeadroom)) return false;
  }
  return true;
}

Cycle CoreUnit::out_channel_space_available_at() const {
  Cycle at = 0;
  for (const Channel* ch : out_channels_) at = std::max(at, ch->last_pop_cycle());
  return at;
}

u64 CoreUnit::producer_burst_headroom() const {
  if (!checking_enabled_ || out_channels_.empty()) return ~u64{0};
  u64 entries = ~u64{0};
  for (const Channel* ch : out_channels_) {
    entries = std::min(entries, ch->producer_headroom_entries());
  }
  if (entries == ~u64{0}) return entries;
  // Reserve one segment boundary (SegmentEnd + the next segment's SCP — the
  // boundary itself ends the burst via request_quantum_end) plus the resume
  // headroom the next memory pre-check asks for; the rest is divided by the
  // worst-case per-instruction entry production.
  constexpr u64 kReserve = 2 + kProducerResumeHeadroom;
  if (entries <= kReserve) return 0;
  const u64 avail = entries - kReserve;
  // Default divisor: the ISA-wide worst case (LR/SC, AMO log two entries).
  // With a trusted static bound, use the analysis' forward-closure bound for
  // the pc the burst starts at instead: no instruction from here until the
  // next segment boundary can produce more per commit (kernel entry ends the
  // segment — and with it the burst — via request_quantum_end, and kernel
  // commits never log, so a mid-burst trap cannot out-produce the bound).
  u64 divisor = 2;
  if (static_bound_ != nullptr && !static_bound_dropped_) {
    const StaticDbcBound& bound = *static_bound_;
    if (!core_.user_mode()) {
      // Kernel mode: the return pc is wherever mepc points — bound by the
      // image-wide worst case (kernel commits themselves log nothing).
      divisor = bound.global;
    } else if (const Addr pc = core_.pc(); pc >= bound.base && pc < bound.end) {
      divisor = bound.per_inst[(pc - bound.base) / 4];
    }
    // divisor 0: no DBC-producing instruction on any path from here — the
    // burst can never push, so backpressure can never turn negative.
    if (divisor == 0) return ~u64{0};
  }
  return avail / divisor;
}

bool CoreUnit::memory_can_commit(arch::Core& core, const Instruction& inst) {
  if (!checking_enabled_ || !segment_active_ || out_channels_.empty()) return true;
  const u32 need = entries_for(inst.op);
  if (need == 0) return true;
  for (Channel* ch : out_channels_) {
    if (!ch->producer_can_push(need)) {
      ch->count_backpressure_event();
      (void)core;
      return false;  // core blocks; SoC driver resumes it once space appears
    }
  }
  return true;
}

void CoreUnit::start_segment(Addr start_pc) {
  ArchState scp = core_.capture_state();
  scp.pc = start_pc;
  segment_start_pc_ = start_pc;
  segment_ic_ = 0;
  segment_active_ = true;
  refresh_passive();
  ++checkpoints_captured_;
  for (Channel* ch : out_channels_) ch->push_scp(scp, core_.cycle());
}

StreamItem CoreUnit::pop_in(Cycle now) {
  Channel& ch = *in_channel_;
  const bool had_space = ch.producer_can_push(kProducerResumeHeadroom);
  StreamItem item = ch.pop(now);
  // Ending the quantum on a space transition (or a SegmentEnd consumption,
  // which feeds the spill rule and drain detection) lets the co-sim driver
  // unblock a backpressured producer at exactly the cycle the stepwise
  // scheduler would have.
  if ((!had_space && ch.producer_can_push(kProducerResumeHeadroom)) ||
      item.kind == StreamItem::Kind::kSegmentEnd) {
    core_.request_quantum_end();
  }
  return item;
}

Cycle CoreUnit::end_segment(Addr resume_pc) {
  FLEX_CHECK(segment_active_);
  segment_active_ = false;
  refresh_passive();
  // Zero-length segments (e.g. two back-to-back kernel entries) carry no
  // information; retract rather than ship an empty segment.
  if (segment_ic_ == 0) {
    // The SCP was already pushed; ship a matching empty SegmentEnd so the
    // stream stays structurally regular. Checkers verify it trivially.
  }
  ArchState ecp = core_.capture_state();
  ecp.pc = resume_pc;
  ++checkpoints_captured_;
  ++segments_produced_;
  for (Channel* ch : out_channels_) ch->push_segment_end(ecp, segment_ic_, core_.cycle());
  // A SegmentEnd makes a parked checker wakeable (at the item's visible_at):
  // end the producer's quantum so the driver can schedule the wake before the
  // producer's clock runs past it.
  core_.request_quantum_end();
  return config_.checkpoint_stall;
}

Cycle CoreUnit::log_memory(const CommitInfo& info) {
  const Opcode op = info.inst->op;
  const Cycle now = core_.cycle();
  MemLogEntry entry;
  entry.addr = info.mem_addr;
  entry.bytes = static_cast<u8>(info.mem_bytes);

  u32 entries = 1;
  switch (isa::opcode_mem_kind(op)) {
    case isa::MemKind::kLoad:
      entry.kind = MemEntryKind::kLoadData;
      entry.data = info.mem_rdata;
      break;
    case isa::MemKind::kStore:
      entry.kind = MemEntryKind::kStoreAddrData;
      entry.data = info.mem_wdata;
      break;
    case isa::MemKind::kLoadReserved:
      entry.kind = MemEntryKind::kLrLoad;
      entry.data = info.mem_rdata;
      break;
    case isa::MemKind::kStoreConditional: {
      // Flag entry first; store part only when the SC succeeded.
      MemLogEntry flag;
      flag.kind = MemEntryKind::kScFlag;
      flag.data = info.mem_rdata;  // 0 = success
      flag.bytes = 1;
      for (Channel* ch : out_channels_) ch->push_mem(flag, now);
      ++mem_entries_logged_;
      if (info.sc_success) {
        entry.kind = MemEntryKind::kScStore;
        entry.data = info.mem_wdata;
        entries = 2;
      } else {
        return 1;  // flag only; extra micro-op latency
      }
      break;
    }
    case isa::MemKind::kAmo: {
      MemLogEntry load_part;
      load_part.kind = MemEntryKind::kAmoLoad;
      load_part.addr = info.mem_addr;
      load_part.data = info.mem_rdata;  // old value
      load_part.bytes = 8;
      for (Channel* ch : out_channels_) ch->push_mem(load_part, now);
      ++mem_entries_logged_;
      // New value = f(old, operand); recompute exactly as the core did.
      const u64 old = info.mem_rdata;
      const u64 operand = info.mem_wdata;
      u64 next = 0;
      switch (op) {
        case Opcode::kAmoaddD: next = old + operand; break;
        case Opcode::kAmoswapD: next = operand; break;
        case Opcode::kAmoxorD: next = old ^ operand; break;
        case Opcode::kAmoandD: next = old & operand; break;
        case Opcode::kAmoorD: next = old | operand; break;
        default: FLEX_CHECK_MSG(false, "not an AMO opcode");
      }
      entry.kind = MemEntryKind::kAmoStore;
      entry.data = next;
      entries = 2;
      break;
    }
    case isa::MemKind::kNone: return 0;
  }

  for (Channel* ch : out_channels_) ch->push_mem(entry, now);
  ++mem_entries_logged_;
  // Multi-entry instructions add a cycle of packaging latency (Sec. III-B).
  return entries > 1 ? 1 : 0;
}

Cycle CoreUnit::on_main_commit(const CommitInfo& info) {
  ++segment_ic_;
  Cycle stall = 0;
  if (info.mem_valid) stall += log_memory(info);
  if (checking_budget_ > 0 && --checking_budget_ == 0) {
    // Selective-checking budget exhausted: close the segment and switch the
    // checking function off for the rest of the job.
    stall += end_segment(info.next_pc);
    checking_enabled_ = false;
    refresh_passive();
    return stall;
  }
  if (segment_ic_ >= config_.segment_limit) {
    stall += end_segment(info.next_pc);
    start_segment(info.next_pc);
  }
  return stall;
}

// ---------------------------------------------------------------------------
// Checker-core (consumer) side
// ---------------------------------------------------------------------------

bool CoreUnit::segment_ready(Cycle now) const {
  return in_channel_ != nullptr && in_channel_->segment_ready(now);
}

Cycle CoreUnit::next_segment_ready_at() const {
  return in_channel_ == nullptr ? kNever : in_channel_->next_segment_ready_at();
}

void CoreUnit::apply_scp() {
  FLEX_CHECK_MSG(segment_ready(core_.cycle()), "C.apply with no ready SCP");
  FLEX_CHECK(in_channel_->front().kind == StreamItem::Kind::kScp);
  const StreamItem scp = pop_in(core_.cycle());
  pending_scp_ = scp.state;
  expected_ic_ = in_channel_->front_segment_ic();
  for (u8 r = 1; r < isa::kNumRegs; ++r) core_.set_reg(r, scp.state.regs[r]);
}

void CoreUnit::enter_replay() {
  replay_active_ = true;
  refresh_passive();
  replayed_ = 0;
  segment_verify_failed_ = false;
  segment_abort_ = false;
  if (expected_ic_ == 0) {
    // Zero-length segment (back-to-back kernel entries on the main core):
    // nothing to execute; verify the ECP against the just-applied SCP state.
    finish_segment(pending_scp_.pc);
    return;
  }
  core_.set_pc(pending_scp_.pc);
  core_.set_user_mode(true);
  core_.set_mem_port(replay_port_.get());
  core_.set_trap_suppression(true);
  core_.activate();
}

void CoreUnit::begin_replay() {
  FLEX_CHECK_MSG(!replay_active_ && !replay_suspended_, "replay already in flight");
  FLEX_CHECK_MSG(segment_ready(core_.cycle()), "no ready segment");

  // C.record: save the checker thread's context into the ASS (once per
  // activation; subsequent segments reuse it).
  if (!have_thread_ctx_) {
    ass_thread_ctx_ = core_.capture_state();
    have_thread_ctx_ = true;
  }
  core_.add_cycles(4);  // record/apply/jal micro-sequence
  apply_scp();
  enter_replay();
}

void CoreUnit::resume_replay() {
  FLEX_CHECK_MSG(replay_suspended_, "no suspended replay");
  replay_suspended_ = false;
  replay_active_ = true;
  refresh_passive();
  core_.set_user_mode(true);
  core_.set_mem_port(replay_port_.get());
  core_.set_trap_suppression(true);
}

CoreUnit::ReplayContext CoreUnit::extract_replay_context() {
  FLEX_CHECK_MSG(!replay_active_, "extract while replay is executing");
  ReplayContext ctx;
  ctx.active = replay_suspended_;
  ctx.replayed = replayed_;
  ctx.expected_ic = expected_ic_;
  ctx.pending_scp = pending_scp_;
  ctx.verify_failed = segment_verify_failed_;
  ctx.abort = segment_abort_;
  ctx.have_thread_ctx = have_thread_ctx_;
  ctx.thread_ctx = ass_thread_ctx_;
  replay_suspended_ = false;
  have_thread_ctx_ = false;
  replayed_ = 0;
  expected_ic_ = 0;
  segment_verify_failed_ = false;
  segment_abort_ = false;
  return ctx;
}

void CoreUnit::adopt_replay_context(const ReplayContext& ctx) {
  FLEX_CHECK_MSG(!replay_active_ && !replay_suspended_, "unit busy with another replay");
  replayed_ = ctx.replayed;
  expected_ic_ = ctx.expected_ic;
  pending_scp_ = ctx.pending_scp;
  segment_verify_failed_ = ctx.verify_failed;
  segment_abort_ = ctx.abort;
  have_thread_ctx_ = ctx.have_thread_ctx;
  ass_thread_ctx_ = ctx.thread_ctx;
  replay_suspended_ = ctx.active;
}

void CoreUnit::cancel_replay() {
  if (replay_active_ || replay_suspended_) {
    replay_active_ = false;
    replay_suspended_ = false;
    refresh_passive();
    core_.set_mem_port(nullptr);
    core_.set_trap_suppression(false);
  }
}

void CoreUnit::report(DetectKind kind) {
  FLEX_CHECK(in_channel_ != nullptr);
  // One error report per failing segment (hardware raises C.result once at
  // the segment boundary); a diverged replay would otherwise storm reports.
  if (segment_verify_failed_) return;
  reporter_.on_detect(*in_channel_, kind, core_.id(), core_.cycle());
}

void CoreUnit::on_replay_fetch_fault() {
  report(DetectKind::kStructural);
  segment_verify_failed_ = true;
  abandon_segment();
}

void CoreUnit::abandon_segment() {
  // Resynchronise: drop everything up to and including the SegmentEnd.
  while (in_channel_ != nullptr && !in_channel_->empty()) {
    const StreamItem item = pop_in(core_.cycle());
    if (item.kind == StreamItem::Kind::kSegmentEnd) break;
  }
  ++segments_failed_;
  exit_replay_mode(false);
}

void CoreUnit::finish_segment(Addr checker_next_pc) {
  // The SegmentEnd must be the next queued item (all entries consumed).
  if (in_channel_->empty() ||
      in_channel_->front().kind != StreamItem::Kind::kSegmentEnd) {
    report(DetectKind::kStructural);
    segment_verify_failed_ = true;
    abandon_segment();
    return;
  }
  const StreamItem end = pop_in(core_.cycle());
  const ArchState& ecp = end.state;

  // Compare the checker's architectural state with the ECP.
  bool mismatch_reported = false;
  if (ecp.pc != checker_next_pc) {
    report(DetectKind::kEcpPc);
    mismatch_reported = true;
  }
  for (u8 r = 1; r < isa::kNumRegs && !mismatch_reported; ++r) {
    if (core_.reg(r) != ecp.regs[r]) {
      report(DetectKind::kEcpReg);
      mismatch_reported = true;
    }
  }
  const bool ok = !mismatch_reported && !segment_verify_failed_;
  if (ok) {
    ++segments_verified_;
  } else {
    ++segments_failed_;
  }
  core_.add_cycles(4);  // ECP comparison + state swap back
  exit_replay_mode(ok);
}

void CoreUnit::exit_replay_mode(bool ok) {
  segment_result_ok_ = ok;
  replay_active_ = false;
  replay_suspended_ = false;
  refresh_passive();
  core_.set_mem_port(nullptr);
  core_.set_trap_suppression(false);
  // Rapid context switch back to the checker thread: restore the C.record
  // snapshot from the ASS (Sec. III-A).
  if (have_thread_ctx_) core_.restore_state(ass_thread_ctx_);
  core_.set_user_mode(false);
  if (on_segment_done_) on_segment_done_(*this, ok);
}

Cycle CoreUnit::on_replay_commit(const CommitInfo& info) {
  ++replayed_;
  ++replayed_total_;
  if (segment_abort_) {
    abandon_segment();
    return 0;
  }
  if (replayed_ >= expected_ic_) {
    finish_segment(info.next_pc);
    return 0;
  }
  if (replayed_ >= static_cast<u64>(config_.segment_limit) * config_.max_replay_factor) {
    // Runaway replay (corrupted IC): declare structural failure.
    report(DetectKind::kStructural);
    segment_verify_failed_ = true;
    abandon_segment();
  }
  return 0;
}

// ---------------------------------------------------------------------------
// CoreHooks dispatch
// ---------------------------------------------------------------------------

u64 CoreUnit::commit_batch_limit() const {
  // For non-memory user commits both live modes reduce to counter increments
  // (on_replay_commit / on_main_commit below); the batch may therefore run up
  // to — but must exclude — the next instruction whose commit does more.
  if (replay_active_) {
    if (segment_abort_) return 0;  // next commit abandons the segment
    const u64 runaway =
        u64{config_.segment_limit} * config_.max_replay_factor;
    const u64 horizon = std::min(expected_ic_, runaway);
    return horizon > replayed_ + 1 ? horizon - replayed_ - 1 : 0;
  }
  if (checking_enabled_ && segment_active_) {
    u64 limit = config_.segment_limit > segment_ic_
                    ? config_.segment_limit - segment_ic_
                    : 0;
    if (checking_budget_ > 0) limit = std::min(limit, checking_budget_);
    return limit > 1 ? limit - 1 : 0;
  }
  return 0;  // unreachable while non-passive; be conservative
}

void CoreUnit::on_commit_batch(arch::Core& core, u64 count) {
  (void)core;
  // Stream effects first: the staged records must land in the channel (or be
  // retired from it) before any per-instruction path can push or pop again.
  if (cursor_.used > 0) publish_cursor();
  if (replay_active_) {
    replayed_ += count;
    replayed_total_ += count;
    return;
  }
  segment_ic_ += count;
  // commit_batch_limit kept the batch short of exhausting the selective-
  // checking budget, so the closing instruction still commits one at a time.
  if (checking_budget_ > 0) checking_budget_ -= count;
}

arch::SegmentCursor* CoreUnit::open_segment_cursor(arch::Core& core,
                                                   u64 max_entries) {
  (void)core;
  cursor_.used = 0;
  cursor_.capacity = 0;
  if (max_entries == 0) return nullptr;
  if (replay_active_) {
    if (segment_abort_ || in_channel_ == nullptr) return nullptr;
    Channel& ch = *in_channel_;
    // Stage the run of plain load/store log entries at the queue front. The
    // staging copy is O(run length), so it is clamped to what the span can
    // actually consume (`max_entries`: tiny under the strict-leapfrog engine,
    // a whole burst under the relaxed one). Unless the driver has promised
    // that every pop this quantum stays in the producer's past (bulk consume
    // horizon), the pop that frees the producer-resume space threshold must
    // stay on the stepwise path (pop_in ends the quantum so the driver can
    // wake the blocked producer at exactly the stepwise cycle), so when the
    // channel is over that threshold the staged run stops one short of the
    // transition.
    // A span of `max_entries` instructions commits far fewer memory ops than
    // instructions (typical workloads sit near 15-25% memory density), and
    // staging is a per-entry copy — so pre-staging the full instruction
    // window mostly copies records the span never reaches. Stage a quarter
    // of the window (plus slack for tiny windows): dense memory code simply
    // exhausts the cursor early, bails, and re-stages on the next span.
    const u64 expected = max_entries / 4 + 8;
    u64 max_pops = std::min<u64>(kCursorSlots, std::min(max_entries, expected));
    if (bulk_consume_horizon_ == 0 &&
        !ch.producer_can_push(kProducerResumeHeadroom)) {
      const u64 wake =
          ch.size() + kProducerResumeHeadroom - config_.channel_capacity;
      max_pops = std::min<u64>(max_pops, wake - 1);
    }
    const u64 avail = std::min<u64>(ch.size(), max_pops);
    if (avail == 0) return nullptr;
    if (cursor_slots_.empty()) cursor_slots_.resize(kCursorSlots);
    u32 staged = 0;
    for (u64 i = 0; i < avail; ++i) {
      const StreamItem& item = ch.item(i);
      if (item.kind != StreamItem::Kind::kMem) break;
      if (item.mem.kind != MemEntryKind::kLoadData &&
          item.mem.kind != MemEntryKind::kStoreAddrData) {
        break;  // LR/SC/AMO entries replay through the stepwise port
      }
      arch::MemRecord& rec = cursor_slots_[staged];
      rec.kind = static_cast<u8>(item.mem.kind);
      rec.bytes = item.mem.bytes;
      rec.addr = item.mem.addr;
      rec.data = item.mem.data;
      ++staged;
    }
    if (staged == 0) return nullptr;
    cursor_.slots = cursor_slots_.data();
    cursor_.capacity = staged;
    cursor_.produce = false;
    cursor_.load_kind = static_cast<u8>(MemEntryKind::kLoadData);
    cursor_.store_kind = static_cast<u8>(MemEntryKind::kStoreAddrData);
    cursor_.replay_stall = kFifoReadStall;
    cursor_.last_cycle = core_.cycle();
    // Under a bulk-consume horizon the quantum bound is scheduler-only, so
    // hot traces whose pops fit below it may overrun with their tails.
    cursor_.allow_bound_overrun = bulk_consume_horizon_ != 0;
    cursor_.ctx = this;
    cursor_.on_mismatch = &cursor_mismatch_thunk;
    return &cursor_;
  }
  if (checking_enabled_ && segment_active_ && !out_channels_.empty()) {
    // Producer side: the cursor capacity is the number of entries every out
    // channel can absorb without any backpressure decision turning negative,
    // so the fused path never needs memory_can_commit (which would have
    // returned true for each staged access, with no backpressure event).
    u64 headroom = ~u64{0};
    for (const Channel* ch : out_channels_) {
      headroom = std::min(headroom, ch->producer_headroom_entries());
    }
    if (headroom == 0) return nullptr;
    if (cursor_slots_.empty()) cursor_slots_.resize(kCursorSlots);
    cursor_.slots = cursor_slots_.data();
    cursor_.capacity = static_cast<u32>(
        std::min<u64>(std::min<u64>(headroom, kCursorSlots), max_entries));
    cursor_.produce = true;
    cursor_.load_kind = static_cast<u8>(MemEntryKind::kLoadData);
    cursor_.store_kind = static_cast<u8>(MemEntryKind::kStoreAddrData);
    cursor_.replay_stall = 0;
    cursor_.allow_bound_overrun = false;
    cursor_.ctx = this;
    cursor_.on_mismatch = nullptr;
    return &cursor_;
  }
  return nullptr;
}

void CoreUnit::publish_cursor() {
  if (cursor_.produce) {
    for (u32 i = 0; i < cursor_.used; ++i) {
      const arch::MemRecord& rec = cursor_slots_[i];
      MemLogEntry entry;
      entry.kind = static_cast<MemEntryKind>(rec.kind);
      entry.bytes = rec.bytes;
      entry.addr = rec.addr;
      entry.data = rec.data;
      for (Channel* ch : out_channels_) ch->push_mem(entry, rec.cycle);
      ++mem_entries_logged_;
    }
  } else if (in_channel_ != nullptr) {
    in_channel_->consume_front(cursor_.used, cursor_.last_cycle);
  }
  cursor_.used = 0;
  cursor_.capacity = 0;
}

void CoreUnit::cursor_mismatch_thunk(void* ctx, arch::ReplayMismatch kind,
                                     Cycle at) {
  auto& unit = *static_cast<CoreUnit*>(ctx);
  DetectKind detect = DetectKind::kLoadAddr;
  switch (kind) {
    case arch::ReplayMismatch::kLoadAddr: detect = DetectKind::kLoadAddr; break;
    case arch::ReplayMismatch::kStoreAddr: detect = DetectKind::kStoreAddr; break;
    case arch::ReplayMismatch::kStoreData: detect = DetectKind::kStoreData; break;
  }
  // Same one-report-per-segment rule as report(), but with the pre-commit
  // clock of the diverging access (core_.cycle() is stale inside the batch).
  if (!unit.segment_verify_failed_) {
    unit.reporter_.on_detect(*unit.in_channel_, detect, unit.core_.id(), at);
  }
  unit.segment_verify_failed_ = true;
}

Cycle CoreUnit::on_commit(arch::Core& core, const CommitInfo& info) {
  (void)core;
  if (!info.user_mode) return 0;
  if (replay_active_) return on_replay_commit(info);
  if (checking_enabled_ && segment_active_) return on_main_commit(info);
  return 0;
}

void CoreUnit::on_enter_kernel(arch::Core& core) {
  if (replay_active_) {
    // Preemption of a checking segment (FlexStep's headline capability): the
    // replay context lives in the core's architectural state, which the
    // kernel saves; the unit keeps counters/channel position for resumption.
    replay_active_ = false;
    replay_suspended_ = true;
    refresh_passive();
    core.set_mem_port(nullptr);
    core.set_trap_suppression(false);
    return;
  }
  if (checking_enabled_ && segment_active_) {
    // Premature segment extermination (Fig. 3 case 1): close at the resume PC.
    const Addr resume_pc = core.read_csr(isa::kCsrMepc);
    const Cycle stall = end_segment(resume_pc);
    core.add_cycles(stall);
  }
}

void CoreUnit::on_exit_kernel(arch::Core& core) {
  if (replay_suspended_) {
    // Kernel excursion on the checker returned straight to the replay thread.
    resume_replay();
    return;
  }
  if (checking_enabled_ && !segment_active_ && attr() == CoreAttr::kMain) {
    // Temporary deviation over (Fig. 3 case 2): open the next segment.
    start_segment(core.pc());
  }
}

u64 CoreUnit::exec_custom(arch::Core& core, const Instruction& inst) {
  switch (inst.op) {
    case Opcode::kGIdsContain:
      return static_cast<u64>(global_.attr_of(static_cast<CoreId>(core.reg(inst.rs1))));

    case Opcode::kGConfigure:
      global_.configure(core.reg(inst.rs1), core.reg(inst.rs2));
      return 0;

    case Opcode::kMAssociate:
      FLEX_CHECK_MSG(interconnect_ != nullptr, "M.associate needs an interconnect");
      interconnect_->associate(core.id(), core.reg(inst.rs1));
      return 0;

    case Opcode::kMCheck: {
      const bool enable = inst.imm != 0;
      if (enable && !checking_enabled_) {
        checking_enabled_ = true;
        refresh_passive();
        // Selective checking (Sec. V: checking "performed on specific
        // portions of a job"): rs1 carries an instruction budget; the CPC
        // counts it down and switches checking off at zero. rs1 = x0 means
        // unbounded (full-job checking).
        checking_budget_ = inst.rs1 != 0 ? core.reg(inst.rs1) : 0;
        start_segment(core.pc());
      } else if (!enable && checking_enabled_) {
        if (segment_active_) {
          const Cycle stall = end_segment(core.pc());
          core.add_cycles(stall);
        }
        checking_enabled_ = false;
        checking_budget_ = 0;
        refresh_passive();
      }
      return 0;
    }

    case Opcode::kCCheckState:
      // The C.record snapshot stays in the ASS across busy/idle transitions;
      // the kernel extracts it per-job when interleaving checker jobs.
      checker_busy_ = inst.imm != 0;
      return 0;

    case Opcode::kCRecord:
      ass_thread_ctx_ = core.capture_state();
      have_thread_ctx_ = true;
      return 0;

    case Opcode::kCApply:
      // Kernel-driven variant of begin_replay()'s apply step.
      apply_scp();
      return 0;

    case Opcode::kCJal:
      enter_replay();
      return 0;

    case Opcode::kCResult:
      return segment_result_ok_ ? 1 : 0;

    default:
      FLEX_CHECK_MSG(false, "not a FlexStep custom instruction");
      return 0;
  }
}

}  // namespace flexstep::fs
