#include "flexstep/channel.h"

#include <algorithm>

#include "common/archive.h"
#include "common/check.h"

namespace flexstep::fs {

namespace {

void serialize_item(io::ArchiveWriter& ar, const StreamItem& item) {
  ar.put_u8(static_cast<u8>(item.kind));
  ar.put_varint(item.seq);
  ar.put_varint(item.visible_at);
  ar.put_u8(static_cast<u8>(item.mem.kind));
  ar.put_u8(item.mem.bytes);
  ar.put_u64(item.mem.addr);
  ar.put_u64(item.mem.data);
  ar.put_u64(item.state.pc);
  for (u64 r : item.state.regs) ar.put_u64(r);
  ar.put_varint(item.inst_count);
}

StreamItem deserialize_item(io::ArchiveReader& ar) {
  StreamItem item;
  const u8 kind = ar.take_u8();
  if (ar.ok() && kind > static_cast<u8>(StreamItem::Kind::kSegmentEnd)) {
    ar.fail(io::ArchiveStatus::kMalformed, "stream item kind out of domain");
  }
  item.kind = static_cast<StreamItem::Kind>(kind);
  item.seq = ar.take_varint();
  item.visible_at = ar.take_varint();
  const u8 mem_kind = ar.take_u8();
  if (ar.ok() && mem_kind > static_cast<u8>(MemEntryKind::kAmoStore)) {
    ar.fail(io::ArchiveStatus::kMalformed, "MAL entry kind out of domain");
  }
  item.mem.kind = static_cast<MemEntryKind>(mem_kind);
  item.mem.bytes = ar.take_u8();
  item.mem.addr = ar.take_u64();
  item.mem.data = ar.take_u64();
  item.state.pc = ar.take_u64();
  for (u64& r : item.state.regs) r = ar.take_u64();
  item.inst_count = ar.take_varint();
  return item;
}

}  // namespace

void Channel::Snapshot::serialize(io::ArchiveWriter& ar) const {
  ar.put_varint(main_id);
  ar.put_varint(checker_id);
  ar.put_varint(items.size());
  for (const StreamItem& item : items) serialize_item(ar, item);
  ar.put_varint(segments.size());
  for (const SegmentMeta& seg : segments) {
    ar.put_varint(seg.inst_count);
    ar.put_varint(seg.ready_at);
    ar.put_varint(seg.end_seq);
  }
  ar.put_varint(next_seq);
  ar.put_varint(last_popped_seq);
  ar.put_varint(last_pop_cycle);
  ar.put_bool(closed);
  ar.put_varint(max_occupancy);
  ar.put_varint(backpressure_events);
  ar.put_bool(fault.has_value());
  if (fault.has_value()) {
    ar.put_varint(fault->seq);
    ar.put_u64(fault->segment_end_seq);  // kUnresolvedSegmentEnd = ~0
    ar.put_varint(fault->injected_at);
    ar.put_u8(static_cast<u8>(fault->item_kind));
    ar.put_u8(fault->bit);
  }
}

void Channel::Snapshot::deserialize(io::ArchiveReader& ar) {
  items.clear();
  segments.clear();
  fault.reset();
  main_id = static_cast<CoreId>(ar.take_varint());
  checker_id = static_cast<CoreId>(ar.take_varint());
  const u64 item_count = ar.take_count(1 + 1 + 1 + 1 + 16 + 8 + 256 + 1);
  for (u64 i = 0; ar.ok() && i < item_count; ++i) {
    items.push_back(deserialize_item(ar));
  }
  const u64 seg_count = ar.take_count(3);
  for (u64 i = 0; ar.ok() && i < seg_count; ++i) {
    SegmentMeta seg;
    seg.inst_count = ar.take_varint();
    seg.ready_at = ar.take_varint();
    seg.end_seq = ar.take_varint();
    segments.push_back(seg);
  }
  next_seq = ar.take_varint();
  last_popped_seq = ar.take_varint();
  last_pop_cycle = ar.take_varint();
  closed = ar.take_bool();
  max_occupancy = ar.take_varint();
  backpressure_events = ar.take_varint();
  if (ar.take_bool()) {
    InjectedFault f;
    f.seq = ar.take_varint();
    f.segment_end_seq = ar.take_u64();
    f.injected_at = ar.take_varint();
    const u8 kind = ar.take_u8();
    if (ar.ok() && kind > static_cast<u8>(StreamItem::Kind::kSegmentEnd)) {
      ar.fail(io::ArchiveStatus::kMalformed, "injected-fault kind out of domain");
    }
    f.item_kind = static_cast<StreamItem::Kind>(kind);
    f.bit = ar.take_u8();
    if (ar.ok()) fault = f;
  }
}

bool Channel::producer_can_push(u32 entries) const {
  if (items_.size() + entries <= config_.channel_capacity) return true;
  // DMA-spill rule: while the checker has no complete segment to chew on,
  // stalling the producer could never be relieved — spill instead.
  return segments_.empty();
}

u64 Channel::producer_headroom_entries() const {
  if (segments_.empty()) return ~u64{0};
  const u64 occupancy = items_.size();
  return occupancy < config_.channel_capacity ? config_.channel_capacity - occupancy
                                              : 0;
}

StreamItem& Channel::push_raw(StreamItem::Kind kind, Cycle now) {
  FLEX_CHECK_MSG(!closed_, "push on closed channel");
  StreamItem& item = items_.emplace_back();
  item.kind = kind;
  item.seq = next_seq_++;
  item.visible_at = now + config_.channel_latency;
  max_occupancy_ = std::max<u64>(max_occupancy_, items_.size());
  return item;
}

void Channel::push_scp(const arch::ArchState& scp, Cycle now) {
  push_raw(StreamItem::Kind::kScp, now).state = scp;
}

void Channel::push_segment_end(const arch::ArchState& ecp, u64 inst_count, Cycle now) {
  StreamItem& item = push_raw(StreamItem::Kind::kSegmentEnd, now);
  item.state = ecp;
  item.inst_count = inst_count;
  segments_.push_back({inst_count, item.visible_at, item.seq});
  // A fault injected into a then-open segment resolves against this boundary.
  if (fault_.has_value() && fault_->segment_end_seq == kUnresolvedSegmentEnd) {
    fault_->segment_end_seq = item.seq;
  }
}

bool Channel::segment_ready(Cycle now) const {
  return !segments_.empty() && segments_.front().ready_at <= now;
}

Cycle Channel::next_segment_ready_at() const {
  return segments_.empty() ? kNever : segments_.front().ready_at;
}

u64 Channel::front_segment_ic() const {
  FLEX_CHECK(!segments_.empty());
  return segments_.front().inst_count;
}

StreamItem Channel::pop(Cycle now) {
  FLEX_CHECK_MSG(!items_.empty(), "pop on empty channel");
  StreamItem item = items_.front();
  items_.pop_front();
  last_popped_seq_ = item.seq;
  last_pop_cycle_ = now;
  if (item.kind == StreamItem::Kind::kSegmentEnd) {
    FLEX_CHECK(!segments_.empty());
    segments_.pop_front();
  }
  return item;
}

void Channel::consume_front(u64 count, Cycle now) {
  FLEX_CHECK_MSG(count <= items_.size(), "consume_front past queue end");
  for (u64 i = 0; i < count; ++i) {
    FLEX_CHECK(items_.front().kind == StreamItem::Kind::kMem);
    last_popped_seq_ = items_.front().seq;
    items_.pop_front();
  }
  if (count > 0) last_pop_cycle_ = now;
}

std::optional<InjectedFault> Channel::corrupt_item(std::size_t index, Rng& rng,
                                                   Cycle now) {
  StreamItem& item = items_[index];

  InjectedFault fault;
  fault.seq = item.seq;
  fault.injected_at = now;
  fault.item_kind = item.kind;

  switch (item.kind) {
    case StreamItem::Kind::kMem: {
      // Corrupt address (low 32 bits — stays in the plausible address range)
      // or data with equal probability.
      if (rng.next_bool(0.5)) {
        fault.bit = static_cast<u8>(rng.next_below(32));
        item.mem.addr ^= u64{1} << fault.bit;
      } else {
        const u32 width_bits = item.mem.bytes == 0 ? 64 : item.mem.bytes * 8;
        fault.bit = static_cast<u8>(rng.next_below(width_bits));
        item.mem.data ^= u64{1} << fault.bit;
      }
      break;
    }
    case StreamItem::Kind::kScp:
    case StreamItem::Kind::kSegmentEnd: {
      // Corrupt one architectural word: a register (x1..x31) or the PC.
      const u64 which = rng.next_below(32);
      if (which == 0) {
        // PC corruption restricted to bits 2..17: a misaligned or wildly
        // out-of-range PC would be caught trivially by the fetch stage.
        fault.bit = static_cast<u8>(2 + rng.next_below(16));
        item.state.pc ^= u64{1} << fault.bit;
      } else {
        fault.bit = static_cast<u8>(rng.next_below(64));
        item.state.regs[which] ^= u64{1} << fault.bit;
      }
      break;
    }
  }

  // Locate the SegmentEnd that closes the segment containing this item (for
  // undetected-fault resolution by the campaign driver). When the segment is
  // still open, push_segment_end() fills it in later.
  fault.segment_end_seq = kUnresolvedSegmentEnd;
  for (std::size_t i = index; i < items_.size(); ++i) {
    if (items_[i].kind == StreamItem::Kind::kSegmentEnd) {
      fault.segment_end_seq = items_[i].seq;
      break;
    }
  }
  fault_ = fault;
  return fault;
}

u64 Channel::entry_bit_count(std::size_t index) const {
  FLEX_CHECK(index < items_.size());
  switch (items_[index].kind) {
    case StreamItem::Kind::kMem:
      return 128;  // addr | data
    case StreamItem::Kind::kScp:
      return 64 + 31 * 64;  // pc | x1..x31 (x0 is architecturally zero)
    case StreamItem::Kind::kSegmentEnd:
      return 64 + 31 * 64 + 64;  // pc | x1..x31 | inst_count
  }
  return 0;
}

void Channel::flip_entry_bit(std::size_t index, u64 bit) {
  FLEX_CHECK(index < items_.size());
  StreamItem& item = items_[index];
  FLEX_CHECK(bit < entry_bit_count(index));
  switch (item.kind) {
    case StreamItem::Kind::kMem:
      if (bit < 64) {
        item.mem.addr ^= u64{1} << bit;
      } else {
        item.mem.data ^= u64{1} << (bit - 64);
      }
      return;
    case StreamItem::Kind::kSegmentEnd:
      if (bit >= 64 + 31 * 64) {
        item.inst_count ^= u64{1} << (bit - (64 + 31 * 64));
        return;
      }
      [[fallthrough]];
    case StreamItem::Kind::kScp:
      if (bit < 64) {
        item.state.pc ^= u64{1} << bit;
      } else {
        item.state.regs[1 + (bit - 64) / 64] ^= u64{1} << (bit % 64);
      }
      return;
  }
}

void Channel::flip_segment_meta_bit(std::size_t index, u64 bit) {
  FLEX_CHECK(index < segments_.size());
  FLEX_CHECK(bit < kSegmentMetaBits);
  SegmentMeta& meta = segments_[index];
  if (bit < 64) {
    meta.inst_count ^= u64{1} << bit;
  } else if (bit < 128) {
    meta.ready_at ^= u64{1} << (bit - 64);
  } else {
    meta.end_seq ^= u64{1} << (bit - 128);
  }
}

void Channel::save(Snapshot& out) const {
  out.main_id = main_id_;
  out.checker_id = checker_id_;
  out.items.clear();
  out.items.reserve(items_.size());
  for (std::size_t i = 0; i < items_.size(); ++i) out.items.push_back(items_[i]);
  out.segments.clear();
  out.segments.reserve(segments_.size());
  for (std::size_t i = 0; i < segments_.size(); ++i) out.segments.push_back(segments_[i]);
  out.next_seq = next_seq_;
  out.last_popped_seq = last_popped_seq_;
  out.last_pop_cycle = last_pop_cycle_;
  out.closed = closed_;
  out.max_occupancy = max_occupancy_;
  out.backpressure_events = backpressure_events_;
  out.fault = fault_;
}

void Channel::restore(const Snapshot& snapshot) {
  FLEX_CHECK_MSG(snapshot.main_id == main_id_ && snapshot.checker_id == checker_id_,
                 "channel snapshot endpoint mismatch");
  items_.clear();
  for (const StreamItem& item : snapshot.items) items_.push_back(item);
  segments_.clear();
  for (const SegmentMeta& meta : snapshot.segments) segments_.push_back(meta);
  next_seq_ = snapshot.next_seq;
  last_popped_seq_ = snapshot.last_popped_seq;
  last_pop_cycle_ = snapshot.last_pop_cycle;
  closed_ = snapshot.closed;
  max_occupancy_ = snapshot.max_occupancy;
  backpressure_events_ = snapshot.backpressure_events;
  fault_ = snapshot.fault;
}

std::optional<InjectedFault> Channel::inject_random_fault(Rng& rng, Cycle now) {
  if (items_.empty() || fault_.has_value()) return std::nullopt;
  const auto index = static_cast<std::size_t>(rng.next_below(items_.size()));
  return corrupt_item(index, rng, now);
}

std::optional<InjectedFault> Channel::inject_fault_at(std::size_t index, Rng& rng,
                                                      Cycle now) {
  if (index >= items_.size() || fault_.has_value()) return std::nullopt;
  const Cycle pushed_at = items_[index].visible_at - config_.channel_latency;
  return corrupt_item(index, rng, std::min(now, pushed_at));
}

std::optional<InjectedFault> Channel::inject_fault_at_tail(Rng& rng, Cycle now) {
  if (items_.empty() || fault_.has_value()) return std::nullopt;
  // The corruption physically happens in the forwarding path, i.e. when the
  // producer pushed the item — not at the campaign's (later) wall time.
  const Cycle pushed_at = items_.back().visible_at - config_.channel_latency;
  return corrupt_item(items_.size() - 1, rng, std::min(now, pushed_at));
}

}  // namespace flexstep::fs
