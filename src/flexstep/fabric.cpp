#include "flexstep/fabric.h"

#include "common/check.h"
#include "common/log.h"

namespace flexstep::fs {

CoreUnit& Fabric::attach(arch::Core& core) {
  FLEX_CHECK_MSG(core.id() == units_.size(), "attach cores in id order");
  units_.push_back(std::make_unique<CoreUnit>(core, global_, reporter_, this, config_));
  waitlists_.emplace_back();
  return *units_.back();
}

Channel* Fabric::find_open_channel(CoreId main_id, CoreId checker_id) {
  for (const auto& ch : channels_) {
    if (!ch->closed() && ch->main_id() == main_id && ch->checker_id() == checker_id) {
      return ch.get();
    }
  }
  return nullptr;
}

void Fabric::associate(CoreId main_id, u64 checker_mask) {
  CoreUnit& main_unit = unit(main_id);
  main_unit.clear_out_channels();
  for (CoreId checker = 0; checker < units_.size(); ++checker) {
    if ((checker_mask & (u64{1} << checker)) == 0) continue;
    FLEX_CHECK_MSG(checker != main_id, "a core cannot check itself");
    Channel* ch = find_open_channel(main_id, checker);
    if (ch == nullptr) {
      channels_.push_back(std::make_unique<Channel>(main_id, checker, config_));
      ch = channels_.back().get();
      CoreUnit& checker_unit = unit(checker);
      if (checker_unit.in_channel() == nullptr) {
        checker_unit.set_in_channel(ch);
      } else {
        // Conflict: checker occupied — buffer in the main's FIFO until the
        // checker is released (paper Sec. III-C).
        waitlists_[checker].push_back(ch);
      }
    }
    main_unit.add_out_channel(ch);
  }
  FLEX_LOG_TRACE("associate: main %u -> mask %llx", main_id,
                 static_cast<unsigned long long>(checker_mask));
}

void Fabric::dissociate(CoreId main_id) {
  CoreUnit& main_unit = unit(main_id);
  for (Channel* ch : main_unit.out_channels()) ch->close();
  main_unit.clear_out_channels();
}

void Fabric::pump_assignments() {
  for (CoreId checker = 0; checker < units_.size(); ++checker) {
    CoreUnit& checker_unit = unit(checker);
    Channel* current = checker_unit.in_channel();
    if (current != nullptr && current->drained() && !checker_unit.replay_active() &&
        !checker_unit.replay_suspended()) {
      checker_unit.set_in_channel(nullptr);
      current = nullptr;
    }
    if (current == nullptr && !waitlists_[checker].empty()) {
      checker_unit.set_in_channel(waitlists_[checker].front());
      waitlists_[checker].pop_front();
    }
  }
}

std::vector<Channel*> Fabric::channels() const {
  std::vector<Channel*> out;
  out.reserve(channels_.size());
  for (const auto& ch : channels_) out.push_back(ch.get());
  return out;
}

}  // namespace flexstep::fs
