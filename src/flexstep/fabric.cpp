#include "flexstep/fabric.h"

#include <algorithm>

#include "common/archive.h"
#include "common/check.h"
#include "common/log.h"

namespace flexstep::fs {

CoreUnit& Fabric::attach(arch::Core& core) {
  FLEX_CHECK_MSG(core.id() == units_.size(), "attach cores in id order");
  units_.push_back(std::make_unique<CoreUnit>(core, global_, reporter_, this, config_));
  waitlists_.emplace_back();
  return *units_.back();
}

Channel* Fabric::find_open_channel(CoreId main_id, CoreId checker_id) {
  for (const auto& ch : channels_) {
    if (!ch->closed() && ch->main_id() == main_id && ch->checker_id() == checker_id) {
      return ch.get();
    }
  }
  return nullptr;
}

void Fabric::associate(CoreId main_id, u64 checker_mask) {
  CoreUnit& main_unit = unit(main_id);
  main_unit.clear_out_channels();
  for (CoreId checker = 0; checker < units_.size(); ++checker) {
    if ((checker_mask & (u64{1} << checker)) == 0) continue;
    FLEX_CHECK_MSG(checker != main_id, "a core cannot check itself");
    Channel* ch = find_open_channel(main_id, checker);
    if (ch == nullptr) {
      channels_.push_back(std::make_unique<Channel>(main_id, checker, config_));
      ch = channels_.back().get();
      CoreUnit& checker_unit = unit(checker);
      if (checker_unit.in_channel() == nullptr) {
        checker_unit.set_in_channel(ch);
      } else {
        // Conflict: checker occupied — buffer in the main's FIFO until the
        // checker is released (paper Sec. III-C).
        waitlists_[checker].push_back(ch);
      }
    }
    main_unit.add_out_channel(ch);
  }
  FLEX_LOG_TRACE("associate: main %u -> mask %llx", main_id,
                 static_cast<unsigned long long>(checker_mask));
}

void Fabric::dissociate(CoreId main_id) {
  CoreUnit& main_unit = unit(main_id);
  for (Channel* ch : main_unit.out_channels()) ch->close();
  main_unit.clear_out_channels();
}

void Fabric::pump_assignments() {
  for (CoreId checker = 0; checker < units_.size(); ++checker) {
    CoreUnit& checker_unit = unit(checker);
    Channel* current = checker_unit.in_channel();
    Channel* released = nullptr;
    if (current != nullptr && current->drained() && !checker_unit.replay_active() &&
        !checker_unit.replay_suspended()) {
      checker_unit.set_in_channel(nullptr);
      released = current;
      current = nullptr;
    }
    if (current == nullptr && !waitlists_[checker].empty()) {
      Channel* next = waitlists_[checker].front();
      waitlists_[checker].pop_front();
      checker_unit.set_in_channel(next);
      // The waitlist only ever fills while an in-channel is attached, so an
      // attach-from-waitlist always pairs with a release — in this pass or an
      // earlier one with an empty waitlist (impossible by the above). Record
      // the arbitration decision at the checker's local clock: it is frozen
      // while the unit sat drained, making the log engine-independent.
      handoff_events_.push_back({checker_unit.core().cycle(), checker,
                                 released != nullptr ? released->main_id()
                                                     : next->main_id(),
                                 next->main_id()});
    }
  }
}

Cycle Fabric::next_replay_ready_at() const {
  Cycle earliest = kNever;
  for (const auto& unit : units_) {
    if (unit->replay_active() || unit->replay_suspended()) continue;
    earliest = std::min(earliest, unit->next_segment_ready_at());
  }
  return earliest;
}

void Fabric::Snapshot::serialize(io::ArchiveWriter& ar) const {
  ar.put_u64(main_mask);
  ar.put_u64(checker_mask);
  reporter.serialize(ar);
  ar.put_varint(channels.size());
  for (const Channel::Snapshot& ch : channels) ch.serialize(ar);
  ar.put_varint(units.size());
  for (const CoreUnit::Snapshot& unit : units) unit.serialize(ar);
  ar.put_varint(out_channels.size());
  for (const auto& outs : out_channels) {
    ar.put_varint(outs.size());
    for (std::size_t idx : outs) ar.put_varint(idx);
  }
  ar.put_varint(in_channel.size());
  for (std::size_t idx : in_channel) ar.put_varint(idx);
  ar.put_varint(waitlists.size());
  for (const auto& waitlist : waitlists) {
    ar.put_varint(waitlist.size());
    for (std::size_t idx : waitlist) ar.put_varint(idx);
  }
}

void Fabric::Snapshot::deserialize(io::ArchiveReader& ar) {
  channels.clear();
  units.clear();
  out_channels.clear();
  in_channel.clear();
  waitlists.clear();
  main_mask = ar.take_u64();
  checker_mask = ar.take_u64();
  reporter.deserialize(ar);
  const u64 channel_count = ar.take_count(16);
  for (u64 i = 0; ar.ok() && i < channel_count; ++i) {
    channels.emplace_back();
    channels.back().deserialize(ar);
  }
  const u64 unit_count = ar.take_count(32);
  for (u64 i = 0; ar.ok() && i < unit_count; ++i) {
    units.emplace_back();
    units.back().deserialize(ar);
  }
  // The wiring tables address into `channels`; validate every index here so
  // restore() (which FLEX_CHECK-aborts on broken invariants) only ever sees a
  // self-consistent graph from the decode path.
  const auto channel_index = [&](u64 raw) -> std::size_t {
    if (ar.ok() && raw >= channels.size()) {
      ar.fail(io::ArchiveStatus::kMalformed, "channel index out of range");
      return 0;
    }
    return static_cast<std::size_t>(raw);
  };
  const u64 out_count = ar.take_count(1);
  for (u64 i = 0; ar.ok() && i < out_count; ++i) {
    std::vector<std::size_t> outs;
    const u64 n = ar.take_count(1);
    for (u64 k = 0; ar.ok() && k < n; ++k) outs.push_back(channel_index(ar.take_varint()));
    out_channels.push_back(std::move(outs));
  }
  const u64 in_count = ar.take_count(1);
  for (u64 i = 0; ar.ok() && i < in_count; ++i) {
    const u64 raw = ar.take_varint();  // index + 1; 0 = no in channel
    if (raw != 0) channel_index(raw - 1);
    in_channel.push_back(static_cast<std::size_t>(raw));
  }
  const u64 wait_count = ar.take_count(1);
  for (u64 i = 0; ar.ok() && i < wait_count; ++i) {
    std::vector<std::size_t> waitlist;
    const u64 n = ar.take_count(1);
    for (u64 k = 0; ar.ok() && k < n; ++k) {
      waitlist.push_back(channel_index(ar.take_varint()));
    }
    waitlists.push_back(std::move(waitlist));
  }
  if (ar.ok() && (out_channels.size() != units.size() ||
                  in_channel.size() != units.size() ||
                  waitlists.size() != units.size())) {
    ar.fail(io::ArchiveStatus::kMalformed, "fabric wiring tables disagree on unit count");
  }
}

std::size_t Fabric::Snapshot::bytes() const {
  std::size_t total = sizeof(*this);
  for (const auto& ch : channels) total += ch.bytes();
  total += units.size() * sizeof(CoreUnit::Snapshot);
  total += reporter.events.size() * sizeof(DetectionEvent);
  return total;
}

void Fabric::save(Snapshot& out) const {
  out.main_mask = global_.main_mask();
  out.checker_mask = global_.checker_mask();
  reporter_.save(out.reporter);

  // Channel index map (stable: channels_ order is creation order).
  auto index_of = [&](const Channel* ch) -> std::size_t {
    for (std::size_t i = 0; i < channels_.size(); ++i) {
      if (channels_[i].get() == ch) return i;
    }
    FLEX_CHECK_MSG(false, "channel not owned by this fabric");
    return 0;
  };

  out.channels.resize(channels_.size());
  for (std::size_t i = 0; i < channels_.size(); ++i) channels_[i]->save(out.channels[i]);

  out.units.resize(units_.size());
  out.out_channels.assign(units_.size(), {});
  out.in_channel.assign(units_.size(), 0);
  for (std::size_t u = 0; u < units_.size(); ++u) {
    units_[u]->save(out.units[u]);
    for (const Channel* ch : units_[u]->out_channels()) {
      out.out_channels[u].push_back(index_of(ch));
    }
    if (units_[u]->in_channel() != nullptr) {
      out.in_channel[u] = index_of(units_[u]->in_channel()) + 1;
    }
  }

  out.waitlists.assign(waitlists_.size(), {});
  for (std::size_t w = 0; w < waitlists_.size(); ++w) {
    for (const Channel* ch : waitlists_[w]) out.waitlists[w].push_back(index_of(ch));
  }
}

void Fabric::restore(const Snapshot& snapshot) {
  FLEX_CHECK_MSG(snapshot.units.size() == units_.size(),
                 "fabric snapshot core-count mismatch");
  global_.configure(snapshot.main_mask, snapshot.checker_mask);
  reporter_.restore(snapshot.reporter);
  handoff_events_.clear();

  channels_.clear();
  channels_.reserve(snapshot.channels.size());
  for (const auto& ch_snap : snapshot.channels) {
    channels_.push_back(
        std::make_unique<Channel>(ch_snap.main_id, ch_snap.checker_id, config_));
    channels_.back()->restore(ch_snap);
  }

  for (std::size_t u = 0; u < units_.size(); ++u) {
    units_[u]->clear_out_channels();
    for (std::size_t index : snapshot.out_channels[u]) {
      units_[u]->add_out_channel(channels_.at(index).get());
    }
    units_[u]->set_in_channel(snapshot.in_channel[u] == 0
                                  ? nullptr
                                  : channels_.at(snapshot.in_channel[u] - 1).get());
    units_[u]->restore(snapshot.units[u]);
  }

  for (std::size_t w = 0; w < waitlists_.size(); ++w) {
    waitlists_[w].clear();
    for (std::size_t index : snapshot.waitlists[w]) {
      waitlists_[w].push_back(channels_.at(index).get());
    }
  }
}

std::vector<Channel*> Fabric::channels() const {
  std::vector<Channel*> out;
  out.reserve(channels_.size());
  for (const auto& ch : channels_) out.push_back(ch.get());
  return out;
}

}  // namespace flexstep::fs
