// Per-core FlexStep unit: RCPM (CPC instruction counter + privilege monitor,
// ASS snapshot storage), MAL memory-access logging, and the checker-side
// replay engine. One unit attaches to every core (homogeneous design, paper
// Sec. III) and implements the core's CoreHooks seam plus the replay MemPort.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "arch/core.h"
#include "arch/ports.h"
#include "common/types.h"
#include "flexstep/channel.h"
#include "flexstep/config.h"
#include "flexstep/error.h"
#include "flexstep/global_config.h"

namespace flexstep::fs {

/// Interconnect control surface used by the M.associate instruction; the
/// Fabric (system interconnect + global registers) implements it.
class InterconnectControl {
 public:
  virtual ~InterconnectControl() = default;
  virtual void associate(CoreId main_id, u64 checker_mask) = 0;
  virtual void dissociate(CoreId main_id) = 0;
};

/// Static per-pc bound on DBC stream-entry production, produced by
/// analysis::analyze() from the same pre-decoded image the core fetches from.
/// per_inst[(pc - base) / 4] is the worst-case entries any SINGLE instruction
/// can produce on any path starting at pc (forward-closure max); `global` is
/// the image-wide single-instruction worst case, used whenever the current pc
/// gives no per-pc answer (kernel mode about to return anywhere into the
/// image). Shared (immutable) between every unit of a session and its forks.
struct StaticDbcBound {
  Addr base = 0;
  Addr end = 0;
  std::vector<u8> per_inst;
  u8 global = 2;
};

class CoreUnit final : public arch::CoreHooks, public arch::CodeWriteListener {
 public:
  /// DBC headroom (in stream entries) required before a backpressure-blocked
  /// producer may resume: the largest single instruction logs two entries
  /// (LR/SC, AMO). The stepwise driver's wake condition
  /// (out_channels_have_space) and the quantum engine's end-of-quantum pop
  /// transition (pop_in) must use the same value or the two engines stop
  /// being schedule-identical.
  static constexpr u32 kProducerResumeHeadroom = 2;

  /// MAL FIFO read latency during replay: local SRAM, comparable to an L1 hit
  /// (Tab. II). Shared by the stepwise ReplayPort and the fused fast-path
  /// cursor — the two replay engines must charge the same per-access stall or
  /// they stop being cycle-identical.
  static constexpr Cycle kFifoReadStall = 2;

  CoreUnit(arch::Core& core, GlobalConfig& global, ErrorReporter& reporter,
           InterconnectControl* interconnect, const FlexStepConfig& config);
  ~CoreUnit() override;

  arch::Core& core() { return core_; }
  CoreAttr attr() const { return global_.attr_of(core_.id()); }
  const FlexStepConfig& config() const { return config_; }

  // ---- wiring (Fabric) ----
  void add_out_channel(Channel* channel) { out_channels_.push_back(channel); }
  void clear_out_channels() { out_channels_.clear(); }
  const std::vector<Channel*>& out_channels() const { return out_channels_; }
  void set_in_channel(Channel* channel) { in_channel_ = channel; }
  Channel* in_channel() const { return in_channel_; }

  // ---- main-core state ----
  bool checking_enabled() const { return checking_enabled_; }
  bool segment_active() const { return segment_active_; }
  /// Remaining selective-checking budget (0 = unbounded or exhausted).
  u64 checking_budget() const { return checking_budget_; }
  /// True when every out-channel currently has push space (SoC loop uses this
  /// to decide when a backpressure-blocked main core may resume).
  bool out_channels_have_space() const;
  /// Latest consumer pop time across out channels (resume timestamp).
  Cycle out_channel_space_available_at() const;

  /// Producer burst horizon for the relaxed co-simulation engine: how many
  /// instructions this core may commit before any DBC backpressure decision
  /// could turn negative — i.e. before the burst's behaviour could depend on
  /// consumer pops the relaxed schedule has deferred. Worst case every
  /// instruction logs two stream entries; one segment boundary (SegmentEnd +
  /// next SCP) inside the burst and the resume-headroom of the next memory
  /// pre-check are reserved up front. ~u64{0} when unbounded (not producing,
  /// or every out channel is in checker-starved DMA-spill mode).
  u64 producer_burst_headroom() const;

  /// Worst-case DBC stream entries one retired instruction of `op` produces.
  /// Public so the static analysis derives its costs from the same table —
  /// the static and dynamic answers can never drift apart.
  static u32 entries_for(isa::Opcode op);

  /// Install (or clear, with nullptr) a static production bound for burst
  /// sizing. `memory` is watched over the bound's code pages: any store into
  /// them permanently drops the bound back to the conservative global
  /// divisor (the analysed image may no longer describe what executes).
  void set_static_dbc_bound(arch::Memory& memory,
                            std::shared_ptr<const StaticDbcBound> bound);
  /// True while an installed bound is still trusted (test / bench hook).
  bool static_bound_active() const {
    return static_bound_ != nullptr && !static_bound_dropped_;
  }

  // CodeWriteListener: a store hit the analysed image's pages.
  void on_code_page_written(u64 page_id) override;

  // ---- checker-core state ----
  bool checker_busy() const { return checker_busy_; }
  bool replay_active() const { return replay_active_; }
  bool replay_suspended() const { return replay_suspended_; }
  /// A complete segment is ready for replay at `now`.
  bool segment_ready(Cycle now) const;
  Cycle next_segment_ready_at() const;

  /// Drive the checker per Alg. 2 semantics: save the thread context once
  /// (C.record), then apply the SCP and jump (C.apply + C.jal). Requires
  /// segment_ready(core cycle). The SoC driver and the kernel's checker
  /// thread both funnel through here (the kernel via the custom ISA).
  void begin_replay();
  /// Resume a replay that was suspended by kernel preemption; the kernel must
  /// have restored the checker task's architectural context first.
  void resume_replay();
  /// Abandon any in-flight replay (verification job cancelled).
  void cancel_replay();

  /// Scheduler contract for the NEXT quantum of this (checker) core: every
  /// channel pop the quantum performs lands strictly before the producer's
  /// next scheduling decision — either the quantum's cycle bound sits at or
  /// below the producer's clock (running or backpressure-blocked), or the
  /// producer has halted and makes no further push decisions. While the
  /// horizon is non-zero, fused replay staging may cross the producer-wake
  /// space threshold in bulk: a blocked producer resumes at its own clock
  /// regardless of which pop freed the space, so ending the quantum at the
  /// exact wake pop adds nothing. 0 (the default, and what every stepwise /
  /// strict-leapfrog quantum uses) keeps the conservative wake-exact clamp.
  void set_bulk_consume_horizon(Cycle horizon) { bulk_consume_horizon_ = horizon; }

  /// Per-job replay state, extracted/adopted across kernel context switches
  /// (EDF may interleave several checker jobs on one checker core; each job
  /// owns its replay progress, mirroring how the ASS snapshot travels with
  /// the checker thread).
  struct ReplayContext {
    bool active = false;  ///< A segment replay was in flight when suspended.
    u64 replayed = 0;
    u64 expected_ic = 0;
    arch::ArchState pending_scp{};
    bool verify_failed = false;
    bool abort = false;
    bool have_thread_ctx = false;
    arch::ArchState thread_ctx{};
  };

  /// Detach the suspended replay state for the outgoing checker job. The unit
  /// is left clean for the next job. Requires no replay actively executing.
  ReplayContext extract_replay_context();

  /// Re-install a previously extracted state. If `ctx.active`, the kernel
  /// must restore the job's architectural context and then call
  /// resume_replay().
  void adopt_replay_context(const ReplayContext& ctx);

  /// Invoked by the SoC driver / kernel when a replayed segment completes
  /// (successfully or not). `ok` is the C.result value.
  using SegmentDoneFn = std::function<void(CoreUnit&, bool ok)>;
  void set_on_segment_done(SegmentDoneFn fn) { on_segment_done_ = std::move(fn); }

  /// Complete unit state minus the channel wiring (out/in channel pointers are
  /// Fabric topology, captured as indices by fs::Fabric::Snapshot) and the
  /// on_segment_done callback (driver ownership, re-installed by the restoring
  /// driver).
  struct Snapshot {
    // Producer side.
    bool checking_enabled = false;
    bool segment_active = false;
    u64 segment_ic = 0;
    u64 checking_budget = 0;
    Addr segment_start_pc = 0;
    // Checker side.
    bool checker_busy = false;
    bool replay_active = false;
    bool replay_suspended = false;
    bool have_thread_ctx = false;
    arch::ArchState ass_thread_ctx{};
    arch::ArchState pending_scp{};
    u64 expected_ic = 0;
    u64 replayed = 0;
    bool segment_result_ok = true;
    bool segment_verify_failed = false;
    bool segment_abort = false;
    // Statistics.
    u64 segments_produced = 0;
    u64 segments_verified = 0;
    u64 segments_failed = 0;
    u64 checkpoints_captured = 0;
    u64 mem_entries_logged = 0;
    u64 replayed_total = 0;

    void serialize(io::ArchiveWriter& ar) const;
    void deserialize(io::ArchiveReader& ar);
  };

  void save(Snapshot& out) const;
  /// Restores the unit and re-establishes the core-side wiring the state
  /// implies: replay memory port + trap suppression while a replay is active,
  /// the default cache port otherwise, and the hooks passivity flag.
  void restore(const Snapshot& snapshot);

  /// Fetch fault while replaying (corrupted SCP PC): report + abandon. Called
  /// by the trap handler that owns the checker core.
  void on_replay_fetch_fault();

  // ---- statistics ----
  u64 segments_produced() const { return segments_produced_; }
  u64 segments_verified() const { return segments_verified_; }
  u64 segments_failed() const { return segments_failed_; }
  u64 checkpoints_captured() const { return checkpoints_captured_; }
  u64 mem_entries_logged() const { return mem_entries_logged_; }
  u64 replayed_instructions() const { return replayed_total_; }

  // ---- fault-site adapter (fault/sites.h) ----

  /// Checker-side replay state flip space: pending SCP (pc + x1..x31),
  /// ASS thread context (pc + x1..x31), expected IC, replayed counter —
  /// 2048 + 2048 + 64 + 64 bits. These are the unit's RCPM/ASS latches; a
  /// flip here models a particle strike inside the checker's own monitoring
  /// hardware rather than in the checked stream.
  static constexpr u64 kCheckerStateBits = 2048 + 2048 + 64 + 64;
  /// XOR one bit of the checker-side replay state. Self-inverse.
  void flip_checker_state_bit(u64 bit) {
    const auto flip_state = [](arch::ArchState& state, u64 b) {
      if (b < 64) {
        state.pc ^= u64{1} << b;
      } else {
        state.regs[1 + (b - 64) / 64] ^= u64{1} << (b % 64);
      }
    };
    if (bit < 2048) {
      flip_state(pending_scp_, bit);
    } else if (bit < 4096) {
      flip_state(ass_thread_ctx_, bit - 2048);
    } else if (bit < 4160) {
      expected_ic_ ^= u64{1} << (bit - 4096);
    } else {
      replayed_ ^= u64{1} << (bit - 4160);
    }
  }

  // ---- CoreHooks ----
  u64 commit_batch_limit() const override;
  void on_commit_batch(arch::Core& core, u64 count) override;
  arch::SegmentCursor* open_segment_cursor(arch::Core& core,
                                           u64 max_entries) override;
  bool memory_can_commit(arch::Core& core, const isa::Instruction& inst) override;
  Cycle on_commit(arch::Core& core, const arch::CommitInfo& info) override;
  void on_enter_kernel(arch::Core& core) override;
  void on_exit_kernel(arch::Core& core) override;
  u64 exec_custom(arch::Core& core, const isa::Instruction& inst) override;

 private:
  class ReplayPort;

  /// Recompute the CoreHooks passivity flag: no commit observation is needed
  /// while the unit is neither producing a checking segment nor replaying
  /// one. Called after every mutation of the three inputs; while passive,
  /// Core::run_until executes the common case without any hook dispatch.
  /// Passivity only flips inside slow-path events (custom ISA, traps, kernel
  /// transitions) or between quanta (begin_replay from the driver), so the
  /// engine's cached evaluation cannot go stale mid-fast-loop.
  void refresh_passive() {
    set_passive(!replay_active_ && !(checking_enabled_ && segment_active_));
  }

  // Main-core segment management (CPC working mechanism, Sec. III-A).
  void start_segment(Addr start_pc);
  Cycle end_segment(Addr resume_pc);
  Cycle log_memory(const arch::CommitInfo& info);

  // Checker-side replay management.
  /// Pop from the in-channel, ending the current execution quantum when the
  /// pop could wake another core: freeing DBC space a backpressured producer
  /// waits on, or consuming a SegmentEnd (occupancy spill-rule / drain
  /// transitions). Keeps the quantum engine's schedule bit-identical to the
  /// stepwise engine's.
  StreamItem pop_in(Cycle now);
  Cycle on_main_commit(const arch::CommitInfo& info);
  Cycle on_replay_commit(const arch::CommitInfo& info);
  void apply_scp();
  void enter_replay();
  void finish_segment(Addr checker_next_pc);
  void abandon_segment();
  void exit_replay_mode(bool ok);
  void report(DetectKind kind);

  arch::Core& core_;
  GlobalConfig& global_;
  ErrorReporter& reporter_;
  InterconnectControl* interconnect_;
  FlexStepConfig config_;

  // ---- main-core (producer) state ----
  std::vector<Channel*> out_channels_;
  bool checking_enabled_ = false;
  bool segment_active_ = false;
  u64 segment_ic_ = 0;           ///< CPC instruction counter.
  u64 checking_budget_ = 0;      ///< Selective checking: instructions left (0 = unbounded).
  Addr segment_start_pc_ = 0;

  // ---- static burst-sizing bound (analysis client) ----
  std::shared_ptr<const StaticDbcBound> static_bound_;
  arch::Memory* static_bound_memory_ = nullptr;  ///< Watched while bound set.
  bool static_bound_dropped_ = false;  ///< Code page written: fall back.

  // ---- checker-core (consumer) state ----
  Channel* in_channel_ = nullptr;
  bool checker_busy_ = false;
  bool replay_active_ = false;
  bool replay_suspended_ = false;
  bool have_thread_ctx_ = false;
  arch::ArchState ass_thread_ctx_{};  ///< C.record context (ASS storage).
  arch::ArchState pending_scp_{};     ///< Applied SCP (C.apply).
  u64 expected_ic_ = 0;
  u64 replayed_ = 0;
  bool segment_result_ok_ = true;     ///< C.result of the last segment.
  bool segment_verify_failed_ = false;
  bool segment_abort_ = false;        ///< Structural failure: abandon at next commit.

  std::unique_ptr<ReplayPort> replay_port_;
  SegmentDoneFn on_segment_done_;

  // ---- fused fast-path cursor (bulk CoreHooks seam, arch/ports.h) ----
  /// Staging depth per quantum. Producer side this bounds how many MAL
  /// entries are appended before publishing; consumer side how many log
  /// entries are pre-staged for in-loop verification. Both are re-opened
  /// every batched span, so the value only caps batching, not correctness.
  static constexpr u32 kCursorSlots = 4096;
  /// Publish (producer) / retire (consumer) the staged cursor records.
  void publish_cursor();
  static void cursor_mismatch_thunk(void* ctx, arch::ReplayMismatch kind, Cycle at);
  std::vector<arch::MemRecord> cursor_slots_;  ///< Lazily sized to kCursorSlots.
  arch::SegmentCursor cursor_{};
  /// Transient per-quantum driver hint (see set_bulk_consume_horizon); never
  /// snapshotted — a restored run starts conservative until its driver speaks.
  Cycle bulk_consume_horizon_ = 0;

  // ---- statistics ----
  u64 segments_produced_ = 0;
  u64 segments_verified_ = 0;
  u64 segments_failed_ = 0;
  u64 checkpoints_captured_ = 0;
  u64 mem_entries_logged_ = 0;
  u64 replayed_total_ = 0;
};

}  // namespace flexstep::fs
