// Data Buffering and Channelling (DBC, paper Sec. III-C).
//
// A Channel is one configured link of the System Interconnect: an SPSC,
// segment-ordered stream from a main core's Data Buffer FIFO to a checker
// core. Capacity combines the 64-entry SRAM FIFO with main-memory DMA spill;
// pushes beyond `channel_capacity` assert backpressure (the main core stalls)
// — except while the checker is starved of complete segments, in which case
// the DMA spill absorbs the overflow (deadlock freedom by construction).
//
// Segments are forwarded store-and-forward: a checker begins replaying a
// segment only once its SegmentEnd is queued, so replay never starves
// mid-segment. This conservatively lengthens detection latency by one
// segment, which the paper's µs-scale latency distribution absorbs.
#pragma once

#include <optional>
#include <vector>

#include "common/ring.h"
#include "common/rng.h"
#include "common/types.h"
#include "flexstep/config.h"
#include "flexstep/stream.h"

namespace flexstep::io {
class ArchiveWriter;
class ArchiveReader;
}  // namespace flexstep::io

namespace flexstep::fs {

inline constexpr Cycle kNever = ~Cycle{0};

/// segment_end_seq value while the corrupted item's segment is still open
/// (resolved when the SegmentEnd is eventually pushed).
inline constexpr u64 kUnresolvedSegmentEnd = ~u64{0};

/// An injected fault pending detection (campaign bookkeeping).
struct InjectedFault {
  u64 seq = 0;           ///< Sequence number of the corrupted item.
  u64 segment_end_seq = kUnresolvedSegmentEnd;  ///< Seq of the closing SegmentEnd.
  Cycle injected_at = 0;
  StreamItem::Kind item_kind = StreamItem::Kind::kMem;
  u8 bit = 0;            ///< Which bit was flipped.
};

class Channel {
 public:
  struct SegmentMeta {
    u64 inst_count = 0;
    Cycle ready_at = 0;     ///< SegmentEnd visible_at.
    u64 end_seq = 0;
  };

  /// Complete channel state, including the routing endpoints so a Fabric can
  /// recreate the channel object itself from the snapshot.
  struct Snapshot {
    CoreId main_id = 0;
    CoreId checker_id = 0;
    std::vector<StreamItem> items;
    std::vector<SegmentMeta> segments;
    u64 next_seq = 0;
    u64 last_popped_seq = 0;
    Cycle last_pop_cycle = 0;
    bool closed = false;
    u64 max_occupancy = 0;
    u64 backpressure_events = 0;
    std::optional<InjectedFault> fault;
    std::size_t bytes() const {
      return items.size() * sizeof(StreamItem) + segments.size() * sizeof(SegmentMeta);
    }

    void serialize(io::ArchiveWriter& ar) const;
    void deserialize(io::ArchiveReader& ar);
  };

  Channel(CoreId main_id, CoreId checker_id, const FlexStepConfig& config)
      : config_(config),
        main_id_(main_id),
        checker_id_(checker_id),
        // Ring sized to the backpressure threshold: occupancy beyond
        // channel_capacity (DMA spill while the checker starves) grows the
        // ring by doubling, preserving the overflow semantics.
        items_(static_cast<std::size_t>(config.channel_capacity) + 1) {}

  CoreId main_id() const { return main_id_; }
  CoreId checker_id() const { return checker_id_; }

  // ---- producer (main core) side ----

  /// Backpressure decision: can `entries` more items be pushed without
  /// stalling? Always true while the consumer has no complete segment queued
  /// (DMA spill rule; see header comment).
  bool producer_can_push(u32 entries) const;

  /// Space horizon: how many further entries are guaranteed pushable without
  /// any backpressure decision turning negative, assuming no consumer pop in
  /// between. ~u64{0} (unbounded) while no complete segment is queued — the
  /// DMA-spill rule makes a stall impossible then. The relaxed co-simulation
  /// engine sizes producer bursts from this up front instead of probing
  /// producer_can_push per instruction.
  u64 producer_headroom_entries() const;

  void push_scp(const arch::ArchState& scp, Cycle now);
  void push_segment_end(const arch::ArchState& ecp, u64 inst_count, Cycle now);

  /// Hot path: one call per logged memory access. Inline, and writes only the
  /// fields a kMem consumer can observe (kind/seq/visible_at/mem) — the slot's
  /// stale ArchState is dead weight no reader, fault injector, or snapshot
  /// consumer ever interprets for kMem items, and zeroing it dominated the
  /// publish cost of batched segments.
  void push_mem(const MemLogEntry& entry, Cycle now) {
    FLEX_CHECK_MSG(!closed_, "push on closed channel");
    StreamItem& item = items_.emplace_back_raw();
    item.kind = StreamItem::Kind::kMem;
    item.seq = next_seq_++;
    item.visible_at = now + config_.channel_latency;
    item.mem = entry;
    if (items_.size() > max_occupancy_) max_occupancy_ = items_.size();
  }

  /// Producer will push nothing more (verification job finished / dissociated).
  void close() { closed_ = true; }
  bool closed() const { return closed_; }

  // ---- consumer (checker core) side ----

  /// A complete segment (SCP..SegmentEnd) is queued and visible at `now`.
  bool segment_ready(Cycle now) const;
  /// Visibility time of the oldest complete queued segment (kNever if none).
  Cycle next_segment_ready_at() const;
  /// Instruction count of the oldest complete queued segment.
  u64 front_segment_ic() const;

  bool empty() const { return items_.empty(); }
  std::size_t size() const { return items_.size(); }
  bool drained() const { return closed_ && items_.empty(); }
  const StreamItem& front() const { return items_.front(); }
  /// Most recently forwarded queued item (what inject_fault_at_tail corrupts).
  const StreamItem& back() const { return items_.back(); }
  /// Queued item at `index` (0 = oldest still buffered).
  const StreamItem& item(std::size_t index) const { return items_[index]; }
  StreamItem pop(Cycle now);

  /// Bulk-retire `count` already-consumed kMem items from the front (fused
  /// replay path). Equivalent to `count` pop() calls whose intermediate
  /// last_pop_cycle values are unobservable: the caller guarantees no
  /// producer-wake space transition and no SegmentEnd sits inside the run,
  /// so only the final pop timestamp (`now`) is retained.
  void consume_front(u64 count, Cycle now);

  /// Cycle at which the consumer last freed space (producer resume time).
  Cycle last_pop_cycle() const { return last_pop_cycle_; }
  u64 last_popped_seq() const { return last_popped_seq_; }

  // ---- statistics ----
  u64 pushed() const { return next_seq_; }
  u64 complete_segments_queued() const { return static_cast<u64>(segments_.size()); }
  u64 max_occupancy() const { return max_occupancy_; }
  u64 backpressure_events() const { return backpressure_events_; }
  void count_backpressure_event() { ++backpressure_events_; }

  // ---- fault injection (Sec. VI-C) ----

  /// Flip one random payload bit of one random queued item. Fails (nullopt)
  /// if the queue is empty or a fault is already pending.
  std::optional<InjectedFault> inject_random_fault(Rng& rng, Cycle now);

  /// Corrupt the *most recently forwarded* item (the paper's fault model:
  /// the flip happens in the forwarding path as the main core produces the
  /// data, so detection latency spans the full buffering + replay pipeline).
  std::optional<InjectedFault> inject_fault_at_tail(Rng& rng, Cycle now);

  /// Corrupt the queued item at `index` (0 = oldest still buffered): targeted
  /// fault models — e.g. deterministic checkpoint corruption — beyond the
  /// campaign's tail placement. Fails if out of range or a fault is pending.
  std::optional<InjectedFault> inject_fault_at(std::size_t index, Rng& rng, Cycle now);

  bool fault_pending() const { return fault_.has_value(); }
  const InjectedFault& pending_fault() const { return *fault_; }
  void clear_fault() { fault_.reset(); }

  // ---- microarchitectural fault-site adapter (fault/sites.h) ----
  //
  // Unlike the Sec. VI-C injectors above, these flips perform no campaign
  // bookkeeping (no pending-fault attribution): the vulnerability framework
  // classifies outcomes against a golden fork, and a pending_fault() entry
  // would perturb the reporter's attribution path.

  /// Flippable payload bits of queued item `index` (kind-dependent: MAL
  /// entries expose addr+data, checkpoints expose pc + x1..x31 [+ IC]).
  u64 entry_bit_count(std::size_t index) const;
  /// XOR one payload bit of queued item `index`. Self-inverse.
  void flip_entry_bit(std::size_t index, u64 bit);

  /// Queued segment-metadata records (one per buffered SegmentEnd).
  u64 segment_meta_count() const { return segments_.size(); }
  /// SegmentMeta flip space: inst_count | ready_at | end_seq, 64 bits each.
  static constexpr u64 kSegmentMetaBits = 192;
  void flip_segment_meta_bit(std::size_t index, u64 bit);

  // ---- state capture ----
  void save(Snapshot& out) const;
  void restore(const Snapshot& snapshot);

 private:
  StreamItem& push_raw(StreamItem::Kind kind, Cycle now);
  std::optional<InjectedFault> corrupt_item(std::size_t index, Rng& rng, Cycle now);

  FlexStepConfig config_;
  CoreId main_id_;
  CoreId checker_id_;

  Ring<StreamItem> items_;
  Ring<SegmentMeta> segments_;  ///< One per queued SegmentEnd, FIFO order.
  u64 next_seq_ = 0;
  u64 last_popped_seq_ = 0;
  Cycle last_pop_cycle_ = 0;
  bool closed_ = false;

  u64 max_occupancy_ = 0;
  u64 backpressure_events_ = 0;

  std::optional<InjectedFault> fault_;
};

}  // namespace flexstep::fs
