// The verification stream flowing from a main core to its checker core(s):
// SCP, memory-access log entries, then IC + ECP per checking segment — the
// exact order of the paper's Fig. 3.
#pragma once

#include "arch/arch_state.h"
#include "common/types.h"

namespace flexstep::fs {

/// MAL entry kinds. Regular LD/ST package into one entry; LR/SC/AMO package
/// into multiple entries (paper Sec. III-B, "multiple micro-ops").
enum class MemEntryKind : u8 {
  kLoadData,       ///< Load: address (verified) + data (used for replay).
  kStoreAddrData,  ///< Store: address + data (both verified).
  kLrLoad,         ///< LR.D load part.
  kScFlag,         ///< SC.D success flag (0 = success; trusted for replay).
  kScStore,        ///< SC.D store part (present only when the SC succeeded).
  kAmoLoad,        ///< AMO read part (old value; used for replay).
  kAmoStore,       ///< AMO write part (new value; verified).
};

constexpr const char* mem_entry_kind_name(MemEntryKind k) {
  switch (k) {
    case MemEntryKind::kLoadData: return "load";
    case MemEntryKind::kStoreAddrData: return "store";
    case MemEntryKind::kLrLoad: return "lr";
    case MemEntryKind::kScFlag: return "sc-flag";
    case MemEntryKind::kScStore: return "sc-store";
    case MemEntryKind::kAmoLoad: return "amo-load";
    case MemEntryKind::kAmoStore: return "amo-store";
  }
  return "?";
}

struct MemLogEntry {
  MemEntryKind kind = MemEntryKind::kLoadData;
  u8 bytes = 0;
  Addr addr = 0;
  u64 data = 0;
};

struct StreamItem {
  enum class Kind : u8 {
    kScp,         ///< Start Register Checkpoint (state.pc = segment entry PC).
    kMem,         ///< One MAL entry.
    kSegmentEnd,  ///< Instruction count + End Register Checkpoint.
  };

  Kind kind = Kind::kScp;
  u64 seq = 0;          ///< Channel-monotonic sequence number.
  Cycle visible_at = 0; ///< Producer push time + channel latency.

  MemLogEntry mem{};            ///< kMem payload.
  arch::ArchState state{};      ///< kScp: SCP; kSegmentEnd: ECP.
  u64 inst_count = 0;           ///< kSegmentEnd: user instructions in segment.
};

}  // namespace flexstep::fs
