#include "flexstep/error.h"

#include "common/archive.h"
#include "common/log.h"
#include "flexstep/channel.h"

namespace flexstep::fs {

void ErrorReporter::Snapshot::serialize(io::ArchiveWriter& ar) const {
  ar.put_varint(events.size());
  for (const DetectionEvent& event : events) {
    ar.put_varint(event.checker);
    ar.put_varint(event.at);
    ar.put_u8(static_cast<u8>(event.kind));
    ar.put_bool(event.attributed);
    ar.put_varint(event.latency);
  }
  ar.put_varint(attributed);
}

void ErrorReporter::Snapshot::deserialize(io::ArchiveReader& ar) {
  events.clear();
  const u64 count = ar.take_count(5);
  for (u64 i = 0; ar.ok() && i < count; ++i) {
    DetectionEvent event;
    event.checker = static_cast<CoreId>(ar.take_varint());
    event.at = ar.take_varint();
    const u8 kind = ar.take_u8();
    if (ar.ok() && kind > static_cast<u8>(DetectKind::kStructural)) {
      ar.fail(io::ArchiveStatus::kMalformed, "detect kind out of domain");
    }
    event.kind = static_cast<DetectKind>(kind);
    event.attributed = ar.take_bool();
    event.latency = ar.take_varint();
    events.push_back(event);
  }
  attributed = static_cast<std::size_t>(ar.take_varint());
}

void ErrorReporter::on_detect(Channel& channel, DetectKind kind, CoreId checker,
                              Cycle now) {
  DetectionEvent event;
  event.checker = checker;
  event.at = now;
  event.kind = kind;
  // Attribute only when causally possible (the mismatch is downstream of the
  // corruption); a detection predating the injection belongs to residue of an
  // earlier event, not to this fault.
  if (channel.fault_pending() && now >= channel.pending_fault().injected_at) {
    const InjectedFault& fault = channel.pending_fault();
    event.attributed = true;
    event.latency = now - fault.injected_at;
    channel.clear_fault();
    ++attributed_;
  }
  FLEX_LOG_DEBUG("error detected by core %u at cycle %llu (%s%s)", checker,
                 static_cast<unsigned long long>(now), detect_kind_name(kind),
                 event.attributed ? ", attributed" : "");
  events_.push_back(event);
}

}  // namespace flexstep::fs
