#include "flexstep/error.h"

#include "common/log.h"
#include "flexstep/channel.h"

namespace flexstep::fs {

void ErrorReporter::on_detect(Channel& channel, DetectKind kind, CoreId checker,
                              Cycle now) {
  DetectionEvent event;
  event.checker = checker;
  event.at = now;
  event.kind = kind;
  // Attribute only when causally possible (the mismatch is downstream of the
  // corruption); a detection predating the injection belongs to residue of an
  // earlier event, not to this fault.
  if (channel.fault_pending() && now >= channel.pending_fault().injected_at) {
    const InjectedFault& fault = channel.pending_fault();
    event.attributed = true;
    event.latency = now - fault.injected_at;
    channel.clear_fault();
    ++attributed_;
  }
  FLEX_LOG_DEBUG("error detected by core %u at cycle %llu (%s%s)", checker,
                 static_cast<unsigned long long>(now), detect_kind_name(kind),
                 event.attributed ? ", attributed" : "");
  events_.push_back(event);
}

}  // namespace flexstep::fs
