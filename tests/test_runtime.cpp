// Parallel experiment runtime tests: JobPool lifecycle, exception
// propagation, work stealing under skewed job sizes, the parallel helpers,
// and the determinism contract — campaign and sched-experiment results are
// bit-identical at 1, 2 and 8 threads.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "fault/campaign.h"
#include "runtime/job_pool.h"
#include "runtime/parallel.h"
#include "sched/experiment.h"
#include "workloads/profile.h"

namespace flexstep::runtime {
namespace {

TEST(JobPool, ExecutesEveryJobExactlyOnce) {
  JobPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::vector<std::atomic<u32>> hits(1000);
  pool.run(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1u);
}

TEST(JobPool, SingleThreadRunsInline) {
  JobPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  const auto caller = std::this_thread::get_id();
  std::vector<u32> order;
  pool.run(16, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(static_cast<u32>(i));  // no lock needed: inline execution
  });
  ASSERT_EQ(order.size(), 16u);
  for (u32 i = 0; i < 16; ++i) EXPECT_EQ(order[i], i);  // serial = in order
}

TEST(JobPool, RepeatedShutdownIsClean) {
  for (int round = 0; round < 25; ++round) {
    JobPool pool(3);
    std::atomic<u32> count{0};
    pool.run(17, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 17u);
  }  // each destructor must join all workers without hanging or leaking
}

TEST(JobPool, ShutdownWithoutEverRunning) {
  for (int round = 0; round < 25; ++round) {
    JobPool pool(8);  // workers park on the condvar and must join immediately
  }
}

TEST(JobPool, ExceptionPropagatesAndPoolSurvives) {
  JobPool pool(4);
  EXPECT_THROW(
      pool.run(64,
               [&](std::size_t i) {
                 if (i % 7 == 3) throw std::runtime_error("injected failure");
               }),
      std::runtime_error);
  // The pool is still usable after a failed batch.
  std::atomic<u32> count{0};
  pool.run(10, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10u);
}

TEST(JobPool, ExceptionInSerialPathPropagates) {
  JobPool pool(1);
  EXPECT_THROW(pool.run(4, [&](std::size_t i) {
    if (i == 2) throw std::logic_error("serial failure");
  }),
               std::logic_error);
}

TEST(JobPool, WorkStealingBalancesSkewedJobSizes) {
  // Job 0 sits at the front of participant 0's initial range and blocks until
  // every other job has completed. Since its owner pops its range front-first,
  // jobs 1..15 of that range can only complete if other participants steal
  // them — run() returning at all proves stealing works; the executor count
  // proves multiple participants took part.
  JobPool pool(4);
  std::atomic<u32> done{0};
  std::mutex mu;
  std::set<std::thread::id> executors;
  pool.run(64, [&](std::size_t i) {
    if (i == 0) {
      while (done.load() < 63) std::this_thread::yield();
    } else {
      done.fetch_add(1);
    }
    std::lock_guard<std::mutex> lock(mu);
    executors.insert(std::this_thread::get_id());
  });
  EXPECT_EQ(done.load(), 63u);
  EXPECT_GE(executors.size(), 2u);
}

TEST(JobPool, NestedRunExecutesInline) {
  JobPool pool(4);
  std::atomic<u32> inner_total{0};
  pool.run(8, [&](std::size_t) {
    const auto worker = std::this_thread::get_id();
    pool.run(4, [&](std::size_t) {
      EXPECT_EQ(std::this_thread::get_id(), worker);  // no re-dispatch
      inner_total.fetch_add(1);
    });
  });
  EXPECT_EQ(inner_total.load(), 32u);
}

TEST(Parallel, MapPreservesIndexOrder) {
  JobPool pool(4);
  const auto out =
      parallel_map<u64>(pool, 100, [](std::size_t i) { return u64{i} * i; });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], u64{i} * i);
}

TEST(Parallel, AccumulateMergesInJobOrder) {
  JobPool pool(4);
  // String concatenation is order-sensitive: the merged result must follow
  // job-index order regardless of which worker finished first.
  const auto merged = parallel_accumulate(
      pool, 26, std::string{},
      [](std::size_t i) { return std::string(1, static_cast<char>('a' + i)); },
      [](std::string& acc, std::string&& part) { acc += part; });
  EXPECT_EQ(merged, "abcdefghijklmnopqrstuvwxyz");
}

TEST(Parallel, StreamRngIsPerStreamDeterministic) {
  Rng a = stream_rng(42, 7);
  Rng b = stream_rng(42, 7);
  Rng c = stream_rng(42, 8);
  Rng d = stream_rng(43, 7);
  bool differs_cd = false;
  for (int i = 0; i < 16; ++i) {
    const u64 va = a.next_u64();
    EXPECT_EQ(va, b.next_u64());  // same (seed, stream) -> same draws
    if (va != c.next_u64() || va != d.next_u64()) differs_cd = true;
  }
  EXPECT_TRUE(differs_cd);  // different stream or seed -> different draws
}

// ---- the determinism contract, end to end -------------------------------

fault::CampaignConfig determinism_campaign(u32 threads) {
  fault::CampaignConfig config;
  config.target_faults = 60;
  config.warmup_rounds = 15'000;
  config.gap_rounds = 1'000;
  config.workload_iterations = 20'000;
  config.shards = 4;
  config.threads = threads;
  return config;
}

TEST(Determinism, FaultCampaignBitIdenticalAcrossThreadCounts) {
  const auto& profile = workloads::find_profile("swaptions");
  const auto soc_config = soc::SocConfig::paper_default(2);
  const auto baseline =
      fault::run_fault_campaign(profile, soc_config, determinism_campaign(1));
  ASSERT_EQ(baseline.injected, 60u);
  for (u32 threads : {2u, 8u}) {
    const auto run =
        fault::run_fault_campaign(profile, soc_config, determinism_campaign(threads));
    EXPECT_EQ(run.injected, baseline.injected) << threads;
    EXPECT_EQ(run.detected, baseline.detected) << threads;
    EXPECT_EQ(run.undetected, baseline.undetected) << threads;
    ASSERT_EQ(run.outcomes.size(), baseline.outcomes.size()) << threads;
    for (std::size_t i = 0; i < run.outcomes.size(); ++i) {
      EXPECT_EQ(run.outcomes[i].detected, baseline.outcomes[i].detected);
      EXPECT_EQ(run.outcomes[i].latency_us, baseline.outcomes[i].latency_us);
      EXPECT_EQ(run.outcomes[i].detect_kind, baseline.outcomes[i].detect_kind);
      EXPECT_EQ(run.outcomes[i].target_kind, baseline.outcomes[i].target_kind);
    }
  }
}

sched::SchedExperimentConfig determinism_sched(u32 threads) {
  sched::SchedExperimentConfig config;
  config.m = 8;
  config.n = 48;
  config.alpha = 0.125;
  config.beta = 0.125;
  config.u_min = 0.4;
  config.u_max = 0.7;
  config.u_step = 0.1;
  config.sets_per_point = 150;  // > one job block, so blocks span workers
  config.threads = threads;
  return config;
}

TEST(Determinism, SchedExperimentBitIdenticalAcrossThreadCounts) {
  const auto baseline = sched::run_sched_experiment(determinism_sched(1));
  ASSERT_FALSE(baseline.empty());
  for (u32 threads : {2u, 8u}) {
    const auto curve = sched::run_sched_experiment(determinism_sched(threads));
    ASSERT_EQ(curve.size(), baseline.size()) << threads;
    for (std::size_t p = 0; p < curve.size(); ++p) {
      EXPECT_EQ(curve[p].utilization, baseline[p].utilization);
      EXPECT_EQ(curve[p].lockstep, baseline[p].lockstep);
      EXPECT_EQ(curve[p].hmr, baseline[p].hmr);
      EXPECT_EQ(curve[p].flexstep, baseline[p].flexstep);
    }
  }
}

}  // namespace
}  // namespace flexstep::runtime
