// Scheduling theory tests: UUnifast, the three partitioners, virtual-deadline
// math, and the property that accepted task sets run without deadline misses
// in the discrete-event EDF simulator.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "sched/edf_sim.h"
#include "sched/experiment.h"
#include "sched/flexstep_partition.h"
#include "sched/hmr_partition.h"
#include "sched/lockstep_partition.h"
#include "sched/uunifast.h"

namespace flexstep::sched {
namespace {

TaskSet make_tasks(std::initializer_list<Task> list) { return TaskSet(list); }

TEST(TaskModel, VirtualDeadlines) {
  Task v2{0, 10.0, 100.0, TaskType::kV2};
  EXPECT_DOUBLE_EQ(v2.virtual_deadline(), 50.0);
  EXPECT_DOUBLE_EQ(v2.density_original(), 0.2);
  EXPECT_DOUBLE_EQ(v2.density_check(), 0.2);

  Task v3{1, 10.0, 100.0, TaskType::kV3};
  EXPECT_NEAR(v3.virtual_deadline(), (std::sqrt(2.0) - 1.0) * 100.0, 1e-12);
  // δo + 2·δv is minimised at D' = (√2−1)·D; check optimality numerically.
  const double optimal = v3.density_original() + 2.0 * v3.density_check();
  for (double theta : {0.35, 0.40, 0.45, 0.50}) {
    const double d_virtual = theta * 100.0;
    const double alt = 10.0 / d_virtual + 2.0 * 10.0 / (100.0 - d_virtual);
    EXPECT_GE(alt, optimal - 1e-9) << theta;
  }
}

TEST(TaskModel, V2VirtualDeadlineIsDensityOptimal) {
  Task v2{0, 10.0, 100.0, TaskType::kV2};
  const double optimal = v2.density_original() + v2.density_check();
  for (double theta : {0.3, 0.4, 0.45, 0.55, 0.6, 0.7}) {
    const double d_virtual = theta * 100.0;
    const double alt = 10.0 / d_virtual + 10.0 / (100.0 - d_virtual);
    EXPECT_GE(alt, optimal - 1e-9) << theta;
  }
}

TEST(UUnifast, SumsToTarget) {
  Rng rng(1);
  for (double target : {0.5, 2.0, 6.4}) {
    const auto u = uunifast(64, target, rng);
    double sum = 0.0;
    for (double x : u) sum += x;
    EXPECT_NEAR(sum, target, 1e-9);
  }
}

TEST(UUnifast, GeneratedSetsRespectParams) {
  Rng rng(2);
  TaskSetParams params;
  params.n = 160;
  params.total_utilization = 4.0;
  params.alpha = 0.125;
  params.beta = 0.0625;
  const auto tasks = generate_task_set(params, rng);
  ASSERT_EQ(tasks.size(), 160u);
  EXPECT_NEAR(total_utilization(tasks), 4.0, 1e-9);
  const auto counts = count_types(tasks);
  EXPECT_EQ(counts.v2, 20u);
  EXPECT_EQ(counts.v3, 10u);
  for (const auto& t : tasks) {
    EXPECT_GE(t.period, params.period_min);
    EXPECT_LE(t.period, params.period_max);
    EXPECT_LE(t.utilization(), 1.0);
  }
}

TEST(FlexStepPartition, CopiesLandOnDistinctCores) {
  const auto tasks = make_tasks({{0, 10, 100, TaskType::kV3}, {1, 5, 50, TaskType::kV2}});
  const auto result = flexstep_partition(tasks, 4);
  ASSERT_TRUE(result.schedulable);
  // Each task's original + copies occupy distinct cores.
  for (u32 task_id = 0; task_id < 2; ++task_id) {
    int cores_with_task = 0;
    for (const auto& core : result.cores) {
      int appearances = 0;
      for (const auto& item : core.items) appearances += item.task_id == task_id;
      EXPECT_LE(appearances, 1);
      cores_with_task += appearances;
    }
    EXPECT_EQ(cores_with_task, task_id == 0 ? 3 : 2);
  }
}

TEST(FlexStepPartition, DensityAccounting) {
  const auto tasks = make_tasks({{0, 10, 100, TaskType::kV2}});
  const auto result = flexstep_partition(tasks, 2);
  ASSERT_TRUE(result.schedulable);
  // δo = 10/50 = 0.2 on one core; δv = 10/50 = 0.2 on the other.
  EXPECT_NEAR(result.cores[0].density + result.cores[1].density, 0.4, 1e-12);
}

TEST(FlexStepPartition, RejectsOverload) {
  const auto tasks = make_tasks({{0, 60, 100, TaskType::kV2}});
  // δo = 60/50 = 1.2 > 1: no core can host the original computation.
  EXPECT_FALSE(flexstep_partition(tasks, 8).schedulable);
}

TEST(FlexStepPartition, V3NeedsThreeCores) {
  const auto tasks = make_tasks({{0, 1, 100, TaskType::kV3}});
  EXPECT_FALSE(flexstep_partition(tasks, 2).schedulable);
  EXPECT_TRUE(flexstep_partition(tasks, 3).schedulable);
}

TEST(FlexStepPartition, FallbackAcceptsWhatAlg3Rejects) {
  // Density tax: 4u per V2 task under Alg. 3 vs 2u under the fallback.
  TaskSet tasks;
  for (u32 i = 0; i < 4; ++i) tasks.push_back({i, 35, 100, TaskType::kV2});
  const u32 m = 4;
  EXPECT_FALSE(flexstep_partition(tasks, m).schedulable);   // 4·0.35·4 = 5.6 > 4
  EXPECT_TRUE(flexstep_partition_fallback(tasks, m).schedulable);  // 2.8 ≤ 4
  EXPECT_TRUE(flexstep_schedulable(tasks, m));
}

TEST(LockStepPartition, CheckerCoresAreReserved) {
  // One V2 task forms a pair; 8 non-verification tasks must fit on the
  // remaining cores + the group main.
  TaskSet tasks;
  tasks.push_back({0, 10, 100, TaskType::kV2});
  for (u32 i = 1; i <= 8; ++i) tasks.push_back({i, 40, 100, TaskType::kNormal});
  // m=4: pair (2 cores) leaves main + 2 free; capacity ≈ 3·1.0 but demand 3.2+0.1.
  EXPECT_FALSE(lockstep_partition(tasks, 4).schedulable);
  // m=5: capacity 4 cores for 3.3 total utilisation.
  EXPECT_TRUE(lockstep_partition(tasks, 5).schedulable);
}

TEST(LockStepPartition, TripleGroupForV3) {
  const auto tasks = make_tasks({{0, 10, 100, TaskType::kV3}});
  EXPECT_FALSE(lockstep_partition(tasks, 2).schedulable);
  const auto result = lockstep_partition(tasks, 3);
  EXPECT_TRUE(result.schedulable);
}

TEST(LockStepPartition, GroupsSharedAcrossVerificationTasks) {
  // Two small V2 tasks share one pair group (checker-core minimisation).
  const auto tasks =
      make_tasks({{0, 10, 100, TaskType::kV2}, {1, 10, 100, TaskType::kV2}});
  const auto result = lockstep_partition(tasks, 2);
  ASSERT_TRUE(result.schedulable);
  EXPECT_EQ(result.cores[0].items.size(), 2u);  // both on the group main
  EXPECT_TRUE(result.cores[1].items.empty());   // the mirror carries no items
}

TEST(HmrPartition, MirrorsAddUtilisationToCheckerCores) {
  const auto tasks = make_tasks({{0, 20, 100, TaskType::kV2}});
  const auto result = hmr_partition(tasks, 2);
  ASSERT_TRUE(result.schedulable);
  EXPECT_NEAR(result.cores[0].density, 0.2, 1e-12);
  EXPECT_NEAR(result.cores[1].density, 0.2, 1e-12);
}

TEST(HmrPartition, BlockingTermRejectsTightNonVerificationTask) {
  // A long non-preemptible verification task blocks a short-deadline task on
  // the same core when cores are scarce.
  TaskSet tasks;
  tasks.push_back({0, 30, 100, TaskType::kV2});   // C=30 blocking source
  tasks.push_back({1, 30, 101, TaskType::kV2});   // forces mixing on m=2
  tasks.push_back({2, 2, 20, TaskType::kNormal}); // blocked: 30/20 > 1
  EXPECT_FALSE(hmr_partition(tasks, 2).schedulable);
  // FlexStep handles the same set: checking is preemptible.
  EXPECT_TRUE(flexstep_schedulable(tasks, 2));
}

TEST(EdfBlockingTest, DirectCheck) {
  CorePlan core;
  core.items.push_back({0, false, 30.0, 100.0, 0.3, true});  // verification
  core.items.push_back({1, false, 2.0, 20.0, 0.1, false});   // victim
  core.density = 0.4;
  // Victim: demand(D<=20) = 0.1, blocking 30/20 = 1.5 -> fails.
  EXPECT_FALSE(edf_blocking_schedulable(core));
  core.items[0].wcet = 10.0;  // blocking 10/20 = 0.5; 0.6 <= 1 passes
  EXPECT_TRUE(edf_blocking_schedulable(core));
}

// ---- property tests: accepted => no deadline misses in simulation ----

class PartitionProperty : public ::testing::TestWithParam<u64> {};

TEST_P(PartitionProperty, FlexStepAlg3AcceptedSetsMeetAllDeadlines) {
  Rng rng(GetParam());
  TaskSetParams params;
  params.n = 24;
  params.alpha = 0.2;
  params.beta = 0.1;
  params.total_utilization = 0.45 * 4;
  for (int trial = 0; trial < 8; ++trial) {
    const TaskSet tasks = generate_task_set(params, rng);
    const auto plan = flexstep_partition(tasks, 4);
    if (!plan.schedulable) continue;
    double max_period = 0.0;
    for (const auto& t : tasks) max_period = std::max(max_period, t.period);
    const double horizon = 4.0 * max_period;
    const auto jobs = make_flexstep_jobs(tasks, plan, horizon);
    const auto result = simulate_edf(jobs, 4, horizon);
    EXPECT_TRUE(result.feasible) << "seed " << GetParam() << " trial " << trial;
  }
}

TEST_P(PartitionProperty, LockStepAcceptedSetsMeetAllDeadlines) {
  Rng rng(GetParam() ^ 0x5A5A);
  TaskSetParams params;
  params.n = 24;
  params.alpha = 0.2;
  params.beta = 0.1;
  params.total_utilization = 0.45 * 6;
  for (int trial = 0; trial < 8; ++trial) {
    const TaskSet tasks = generate_task_set(params, rng);
    const auto plan = lockstep_partition(tasks, 6);
    if (!plan.schedulable) continue;
    double max_period = 0.0;
    for (const auto& t : tasks) max_period = std::max(max_period, t.period);
    const double horizon = 4.0 * max_period;
    const auto jobs = make_lockstep_jobs(tasks, plan, horizon);
    const auto result = simulate_edf(jobs, 6, horizon);
    EXPECT_TRUE(result.feasible) << "seed " << GetParam() << " trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionProperty, ::testing::Values(11, 22, 33, 44, 55));

TEST(Experiment, FlexStepDominatesBaselines) {
  SchedExperimentConfig config;
  config.m = 8;
  config.n = 80;
  config.alpha = 0.125;
  config.beta = 0.125;
  config.u_min = 0.4;
  config.u_max = 0.7;
  config.u_step = 0.1;
  config.sets_per_point = 60;
  const auto curve = run_sched_experiment(config);
  ASSERT_FALSE(curve.empty());
  for (const auto& point : curve) {
    EXPECT_GE(point.flexstep + 1e-9, point.lockstep) << point.utilization;
    EXPECT_GE(point.flexstep + 1e-9, point.hmr) << point.utilization;
  }
}

TEST(Experiment, SchedulabilityDecreasesWithUtilisation) {
  SchedExperimentConfig config;
  config.m = 8;
  config.n = 80;
  config.sets_per_point = 60;
  config.u_min = 0.5;
  config.u_max = 0.95;
  config.u_step = 0.15;
  const auto curve = run_sched_experiment(config);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i].flexstep, curve[i - 1].flexstep + 15.0);  // monotone-ish
  }
}

}  // namespace
}  // namespace flexstep::sched
