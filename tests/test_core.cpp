// Core execution tests: ISA semantics, branches, memory, traps, timers.
#include <gtest/gtest.h>

#include "arch/core.h"
#include "arch/memory.h"
#include "arch/program_image.h"
#include "isa/assembler.h"
#include "isa/csr.h"

namespace flexstep::arch {
namespace {

using isa::Assembler;
using isa::Opcode;

class CoreTest : public ::testing::Test {
 protected:
  Core& make_core() {
    core_ = std::make_unique<Core>(0, CoreConfig{}, memory_, images_, nullptr);
    return *core_;
  }

  Core& run_program(Assembler& a, u64 max_insts = 100000) {
    program_ = a.finalize("test");
    images_.load(memory_, program_);
    Core& core = make_core();
    core.set_pc(program_.entry());
    core.run(max_insts);
    return core;
  }

  Memory memory_;
  ImageRegistry images_;
  isa::Program program_;
  std::unique_ptr<Core> core_;
};

TEST_F(CoreTest, ArithmeticBasics) {
  Assembler a;
  a.li(1, 20);
  a.li(2, 22);
  a.add(3, 1, 2);
  a.sub(4, 1, 2);
  a.mul(5, 1, 2);
  a.halt();
  Core& core = run_program(a);
  EXPECT_EQ(core.reg(3), 42u);
  EXPECT_EQ(core.reg(4), static_cast<u64>(-2));
  EXPECT_EQ(core.reg(5), 440u);
  EXPECT_EQ(core.status(), Core::Status::kHalted);
}

TEST_F(CoreTest, X0IsHardwiredZero) {
  Assembler a;
  a.li(1, 7);
  a.add(0, 1, 1);  // write to x0 discarded
  a.add(2, 0, 0);
  a.halt();
  Core& core = run_program(a);
  EXPECT_EQ(core.reg(0), 0u);
  EXPECT_EQ(core.reg(2), 0u);
}

TEST_F(CoreTest, DivisionSemantics) {
  Assembler a;
  a.li(1, -100);
  a.li(2, 7);
  a.div(3, 1, 2);   // -14
  a.rem(4, 1, 2);   // -2
  a.li(5, 0);
  a.div(6, 1, 5);   // div by zero -> all ones
  a.rem(7, 1, 5);   // rem by zero -> dividend
  a.halt();
  Core& core = run_program(a);
  EXPECT_EQ(static_cast<i64>(core.reg(3)), -14);
  EXPECT_EQ(static_cast<i64>(core.reg(4)), -2);
  EXPECT_EQ(core.reg(6), ~u64{0});
  EXPECT_EQ(static_cast<i64>(core.reg(7)), -100);
}

TEST_F(CoreTest, ShiftsAndCompares) {
  Assembler a;
  a.li(1, -8);
  a.srai(2, 1, 1);    // -4 arithmetic
  a.srli(3, 1, 60);   // logical: top bits shift in zeros
  a.li(4, 3);
  a.slt(5, 1, 4);     // -8 < 3 signed -> 1
  a.sltu(6, 1, 4);    // huge unsigned < 3 -> 0
  a.halt();
  Core& core = run_program(a);
  EXPECT_EQ(static_cast<i64>(core.reg(2)), -4);
  EXPECT_EQ(core.reg(3), 0xFu);
  EXPECT_EQ(core.reg(5), 1u);
  EXPECT_EQ(core.reg(6), 0u);
}

class LiMaterialisation : public CoreTest,
                          public ::testing::WithParamInterface<i64> {};

TEST_P(LiMaterialisation, LoadsExactValue) {
  Assembler a;
  a.li(1, GetParam());
  a.halt();
  Core& core = run_program(a);
  EXPECT_EQ(static_cast<i64>(core.reg(1)), GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Values, LiMaterialisation,
    ::testing::Values(0, 1, -1, 8191, -8192, 8192, 65536, -65536, 1103515245,
                      -2147483648LL, 2147483647LL, 0x123456789ABCDEFLL,
                      -0x123456789ABCDEFLL, INT64_MAX, INT64_MIN));

TEST_F(CoreTest, LoadStoreRoundTrip) {
  Assembler a;
  a.li(10, 0x20000);
  a.li(1, 0x1122334455667788LL);
  a.sd(1, 10, 0);
  a.ld(2, 10, 0);
  a.lw(3, 10, 0);   // sign-extended low word
  a.lb(4, 10, 7);   // high byte 0x11
  a.halt();
  Core& core = run_program(a);
  EXPECT_EQ(core.reg(2), 0x1122334455667788u);
  EXPECT_EQ(core.reg(3), 0x55667788u);
  EXPECT_EQ(core.reg(4), 0x11u);
}

TEST_F(CoreTest, SignExtensionOnLoads) {
  Assembler a;
  a.li(10, 0x20000);
  a.li(1, -1);
  a.sw(1, 10, 0);
  a.lw(2, 10, 0);
  a.halt();
  Core& core = run_program(a);
  EXPECT_EQ(core.reg(2), ~u64{0});
}

TEST_F(CoreTest, BranchLoopExecutes) {
  Assembler a;
  a.li(1, 0);
  a.li(2, 10);
  auto loop = a.new_label();
  a.bind(loop);
  a.addi(1, 1, 1);
  a.bne(1, 2, loop);
  a.halt();
  Core& core = run_program(a);
  EXPECT_EQ(core.reg(1), 10u);
}

TEST_F(CoreTest, JalLinksReturnAddress) {
  Assembler a;           // 0x10000 base
  auto target = a.new_label();
  a.jal(1, target);      // at 0x10000; link = 0x10004
  a.nop();
  a.bind(target);
  a.halt();
  Core& core = run_program(a);
  EXPECT_EQ(core.reg(1), 0x10004u);
}

TEST_F(CoreTest, JalrComputedTarget) {
  Assembler a;
  a.li(1, 0x10010);  // address of the halt below (4 insts li + this + jalr)
  a.jalr(2, 1, 0);
  a.nop();           // skipped
  a.nop();
  a.halt();
  isa::Program p = a.finalize("jalr");
  // Fix the li to point at the halt (index size-1).
  // Rebuild with exact address:
  Assembler b;
  const Addr halt_addr = isa::kDefaultCodeBase + (p.code.size() - 1) * 4;
  b.li(1, static_cast<i64>(halt_addr));
  b.jalr(2, 1, 0);
  b.nop();
  b.nop();
  b.halt();
  program_ = b.finalize("jalr2");
  images_.load(memory_, program_);
  Core& core = make_core();
  core.set_pc(program_.entry());
  core.run(100);
  EXPECT_EQ(core.status(), Core::Status::kHalted);
  EXPECT_EQ(core.instret(), 4u);  // li(2 insts) + jalr + halt
}

TEST_F(CoreTest, AmoAndLrSc) {
  Assembler a;
  a.li(10, 0x30000);
  a.li(1, 5);
  a.sd(1, 10, 0);
  a.li(2, 3);
  a.amoadd_d(3, 10, 2);   // old = 5, mem = 8
  a.ld(4, 10, 0);
  a.lr_d(5, 10);          // 8
  a.addi(6, 5, 1);        // 9
  a.sc_d(7, 10, 6);       // success -> 0, mem = 9
  a.ld(8, 10, 0);
  a.sc_d(9, 10, 6);       // no reservation -> fail = 1
  a.halt();
  Core& core = run_program(a);
  EXPECT_EQ(core.reg(3), 5u);
  EXPECT_EQ(core.reg(4), 8u);
  EXPECT_EQ(core.reg(5), 8u);
  EXPECT_EQ(core.reg(7), 0u);
  EXPECT_EQ(core.reg(8), 9u);
  EXPECT_EQ(core.reg(9), 1u);
}

TEST_F(CoreTest, DivisionCornerCasesWrapLikeRv64) {
  // INT64_MIN / -1 must wrap to INT64_MIN (remainder 0) and x / 0 must give
  // all-ones (remainder x) — the naive host division is UB / SIGFPE.
  Assembler a;
  a.li(1, 1);
  a.slli(1, 1, 63);   // x1 = INT64_MIN
  a.li(2, -1);
  a.div(3, 1, 2);
  a.rem(4, 1, 2);
  a.div(5, 1, 0);     // divide by x0 (= 0)
  a.rem(6, 1, 0);
  a.halt();
  Core& core = run_program(a);
  EXPECT_EQ(core.reg(3), u64{1} << 63);
  EXPECT_EQ(core.reg(4), 0u);
  EXPECT_EQ(core.reg(5), ~u64{0});
  EXPECT_EQ(core.reg(6), u64{1} << 63);
}

TEST_F(CoreTest, AmoBreaksOwnReservation) {
  // Regression: an AMO is a store. One that hits this core's own reserved
  // granule must break the reservation exactly as an ordinary store does —
  // the following SC has to fail, and its data must not reach memory.
  Assembler a;
  a.li(10, 0x30000);
  a.li(1, 5);
  a.sd(1, 10, 0);
  a.lr_d(5, 10);          // reserve 0x30000; value 5
  a.li(2, 3);
  a.amoadd_d(3, 10, 2);   // old = 5, mem = 8 — and the reservation dies
  a.sc_d(7, 10, 2);       // must fail = 1
  a.ld(8, 10, 0);
  a.halt();
  Core& core = run_program(a);
  EXPECT_EQ(core.reg(5), 5u);
  EXPECT_EQ(core.reg(3), 5u);
  EXPECT_EQ(core.reg(7), 1u);  // SC failed
  EXPECT_EQ(core.reg(8), 8u);  // memory holds the AMO result, not the SC data
}

TEST_F(CoreTest, CrossCoreStoreBreaksReservation) {
  // Same-address-different-core store: previously nothing invalidated the
  // reservation (the old comment claimed sc() handled it — it only checked
  // the local flags), so the SC spuriously succeeded.
  Assembler a;
  a.li(10, 0x30000);
  a.li(1, 5);
  a.sd(1, 10, 0);
  a.lr_d(5, 10);
  a.sc_d(7, 10, 1);
  a.ld(8, 10, 0);
  a.halt();
  program_ = a.finalize("test");
  images_.load(memory_, program_);
  Core& core = make_core();
  core.set_pc(program_.entry());

  // Run core 0 up to (and including) the LR, detected via the shared
  // reservation registry rather than instruction counting.
  while (memory_.reservation_count() == 0 && core.status() == Core::Status::kRunning) {
    core.step();
  }
  ASSERT_EQ(memory_.reservation_count(), 1u);

  // Another core stores to the reserved granule through its own cache port.
  Core other(1, CoreConfig{}, memory_, images_, nullptr);
  other.cache_mem_port().store(Opcode::kSd, 0x30000, 8, 99);
  EXPECT_EQ(memory_.reservation_count(), 0u);

  core.run(100);
  EXPECT_EQ(core.reg(7), 1u);   // SC failed: the other core's store intervened
  EXPECT_EQ(core.reg(8), 99u);  // the other core's value survived
}

TEST_F(CoreTest, CsrAccess) {
  Assembler a;
  a.csrrs(1, isa::kCsrMhartid, 0);
  a.csrrs(2, isa::kCsrInstret, 0);
  a.halt();
  Core& core = run_program(a);
  EXPECT_EQ(core.reg(1), 0u);   // core id 0
  EXPECT_EQ(core.reg(2), 1u);   // one instruction retired before the read
}

TEST_F(CoreTest, HaltWithoutHandlerStops) {
  Assembler a;
  a.halt();
  Core& core = run_program(a);
  EXPECT_EQ(core.status(), Core::Status::kHalted);
}

namespace {
class CountingHandler : public TrapHandler {
 public:
  TrapAction on_trap(Core&, TrapCause cause) override {
    ++counts[static_cast<int>(cause)];
    if (cause == TrapCause::kTaskExit) return {TrapAction::Kind::kHalt, 0};
    return {TrapAction::Kind::kResumeUser, 100};
  }
  int counts[8] = {};
};
}  // namespace

TEST_F(CoreTest, EcallTrapsAndResumes) {
  Assembler a;
  a.li(1, 1);
  a.ecall();
  a.addi(1, 1, 1);
  a.halt();
  program_ = a.finalize("ecall");
  images_.load(memory_, program_);
  Core& core = make_core();
  CountingHandler handler;
  core.set_trap_handler(&handler);
  core.set_pc(program_.entry());
  core.run(100);
  EXPECT_EQ(handler.counts[static_cast<int>(TrapCause::kEcall)], 1);
  EXPECT_EQ(core.reg(1), 2u);  // resumed after the ecall
  EXPECT_EQ(core.status(), Core::Status::kHalted);
}

TEST_F(CoreTest, EcallKernelCostAddsCycles) {
  Assembler a;
  a.ecall();
  a.halt();
  program_ = a.finalize("cost");
  images_.load(memory_, program_);
  Core& core = make_core();
  CountingHandler handler;
  core.set_trap_handler(&handler);
  core.set_pc(program_.entry());
  const Cycle before = core.cycle();
  core.run(100);
  EXPECT_GE(core.cycle() - before, 100u);  // the modelled excursion
}

TEST_F(CoreTest, TimerInterruptFires) {
  Assembler a;
  a.li(1, 0);
  auto loop = a.new_label();
  a.bind(loop);
  a.addi(1, 1, 1);
  a.jal(0, loop);  // infinite loop; only the timer stops it
  program_ = a.finalize("timer");
  images_.load(memory_, program_);
  Core& core = make_core();
  CountingHandler handler;
  core.set_trap_handler(&handler);
  core.set_pc(program_.entry());
  core.set_timer(500);
  core.run(100000);
  EXPECT_GE(handler.counts[static_cast<int>(TrapCause::kTimer)], 1);
  EXPECT_GE(core.cycle(), 500u);
}

TEST_F(CoreTest, FetchFaultOnWildPc) {
  Assembler a;
  a.halt();
  program_ = a.finalize("fault");
  images_.load(memory_, program_);
  Core& core = make_core();
  core.set_pc(0xDEAD0000);
  core.step();
  EXPECT_EQ(core.status(), Core::Status::kHalted);  // default action
}

TEST_F(CoreTest, CaptureRestoreRoundTrip) {
  Assembler a;
  a.li(1, 111);
  a.li(2, 222);
  a.halt();
  Core& core = run_program(a);
  ArchState s = core.capture_state();
  EXPECT_EQ(s.regs[1], 111u);
  s.regs[1] = 999;
  s.pc = 0x4444;
  core.restore_state(s);
  EXPECT_EQ(core.reg(1), 999u);
  EXPECT_EQ(core.pc(), 0x4444u);
}

TEST_F(CoreTest, MispredictsCostCycles) {
  // Data-dependent alternating branch: the 2-bit BHT cannot track it.
  Assembler a;
  a.li(1, 0);
  a.li(2, 2000);
  auto loop = a.new_label();
  auto skip = a.new_label();
  a.bind(loop);
  a.andi(3, 1, 1);
  a.beq(3, 0, skip);
  a.nop();
  a.bind(skip);
  a.addi(1, 1, 1);
  a.bne(1, 2, loop);
  a.halt();
  Core& core = run_program(a, 100000);
  EXPECT_GT(core.mispredicts(), 500u);  // ~50% of 2000 alternating branches
}

TEST_F(CoreTest, WfiParksUntilWake) {
  Assembler a;
  a.emit(isa::make_c(Opcode::kWfi));
  a.halt();
  program_ = a.finalize("wfi");
  images_.load(memory_, program_);
  Core& core = make_core();
  core.set_pc(program_.entry());
  core.step();
  EXPECT_EQ(core.status(), Core::Status::kWaitingInterrupt);
  core.wake(12345);
  EXPECT_EQ(core.status(), Core::Status::kRunning);
  EXPECT_GE(core.cycle(), 12345u);
  core.step();
  EXPECT_EQ(core.status(), Core::Status::kHalted);
}

}  // namespace
}  // namespace flexstep::arch
