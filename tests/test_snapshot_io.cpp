// Wire-format robustness for the FXAR archive container and the snapshot /
// campaign checkpoint formats built on it, plus the multi-process resumable
// campaign driver (fork dispatch, small scale — the exec path and full-size
// parity gates live in micro_benchmarks --campaign).
//
// The contracts under test:
//   * Primitive and structure round-trips are bit-exact (re-serializing a
//     decoded snapshot reproduces the identical byte buffer).
//   * Every byte of a well-formed archive is covered by a check: a
//     deterministic single-bit corruption sweep must reject EVERY flip with a
//     structured error — never a crash, never a silent wrong decode.
//   * Truncation at any prefix and version skew are structured errors.
//   * A two-worker multi-process campaign merges digest-identical to the
//     single-process run, including after a worker dies mid-shard and the
//     campaign is resumed, and warm reruns elide persisted warmups.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <vector>

#include "common/archive.h"
#include "fault/campaign.h"
#include "fault/distributed.h"
#include "fault/vuln.h"
#include "sim/scenario.h"
#include "soc/snapshot.h"

namespace flexstep {
namespace {

using io::ArchiveReader;
using io::ArchiveStatus;
using io::ArchiveWriter;

constexpr u32 kTestTag = 0x54534554;  // "TEST"

TEST(Archive, PrimitiveRoundTrip) {
  ArchiveWriter w(kTestTag, 3);
  w.begin_section(1);
  w.put_u8(0xAB);
  w.put_u32(0xDEADBEEF);
  w.put_u64(0x0123456789ABCDEFULL);
  w.put_bool(true);
  w.put_bool(false);
  w.put_f64(-2.5);
  w.end_section();
  w.begin_section(2);
  w.put_varint(0);
  w.put_varint(127);
  w.put_varint(128);
  w.put_varint(0xFFFFFFFFFFFFFFFFULL);
  const u8 raw[5] = {1, 2, 3, 4, 5};
  w.put_bytes(raw, sizeof(raw));
  w.end_section();

  const auto& buf = w.buffer();
  ArchiveReader r(buf.data(), buf.size(), kTestTag, 3);
  ASSERT_TRUE(r.begin_section(1));
  EXPECT_EQ(r.take_u8(), 0xAB);
  EXPECT_EQ(r.take_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.take_u64(), 0x0123456789ABCDEFULL);
  EXPECT_TRUE(r.take_bool());
  EXPECT_FALSE(r.take_bool());
  EXPECT_EQ(r.take_f64(), -2.5);
  r.end_section();
  ASSERT_TRUE(r.begin_section(2));
  EXPECT_EQ(r.take_varint(), 0u);
  EXPECT_EQ(r.take_varint(), 127u);
  EXPECT_EQ(r.take_varint(), 128u);
  EXPECT_EQ(r.take_varint(), 0xFFFFFFFFFFFFFFFFULL);
  u8 got[5] = {};
  r.take_bytes(got, sizeof(got));
  EXPECT_EQ(std::memcmp(got, raw, sizeof(raw)), 0);
  r.end_section();
  EXPECT_TRUE(r.ok()) << r.error().message();
}

TEST(Archive, RejectsWrongTagAndVersion) {
  ArchiveWriter w(kTestTag, 3);
  w.begin_section(1);
  w.put_u64(42);
  w.end_section();
  const auto& buf = w.buffer();

  ArchiveReader wrong_tag(buf.data(), buf.size(), kTestTag + 1, 3);
  EXPECT_EQ(wrong_tag.error().status, ArchiveStatus::kBadMagic);

  ArchiveReader wrong_version(buf.data(), buf.size(), kTestTag, 4);
  EXPECT_EQ(wrong_version.error().status, ArchiveStatus::kVersionSkew);
  // The skew message names both versions so campaign logs are actionable.
  EXPECT_NE(wrong_version.error().message().find("3"), std::string::npos);
  EXPECT_NE(wrong_version.error().message().find("4"), std::string::npos);
}

TEST(Archive, SectionOrderAndOverconsumptionAreStructured) {
  ArchiveWriter w(kTestTag, 1);
  w.begin_section(7);
  w.put_u32(5);
  w.end_section();
  const auto& buf = w.buffer();

  ArchiveReader wrong_id(buf.data(), buf.size(), kTestTag, 1);
  EXPECT_FALSE(wrong_id.begin_section(8));
  EXPECT_EQ(wrong_id.error().status, ArchiveStatus::kMalformed);

  // A decoder that reads past the payload gets kTruncated, zeros, no crash.
  ArchiveReader over(buf.data(), buf.size(), kTestTag, 1);
  ASSERT_TRUE(over.begin_section(7));
  EXPECT_EQ(over.take_u32(), 5u);
  EXPECT_EQ(over.take_u64(), 0u);
  EXPECT_EQ(over.error().status, ArchiveStatus::kTruncated);

  // A decoder that consumes less than the payload is caught at end_section.
  ArchiveReader under(buf.data(), buf.size(), kTestTag, 1);
  ASSERT_TRUE(under.begin_section(7));
  under.end_section();
  EXPECT_EQ(under.error().status, ArchiveStatus::kMalformed);
}

TEST(Archive, CountValidationBlocksGiantAllocations) {
  ArchiveWriter w(kTestTag, 1);
  w.begin_section(1);
  w.put_varint(1u << 20);  // claims 2^20 elements in a near-empty payload
  w.end_section();
  const auto& buf = w.buffer();
  ArchiveReader r(buf.data(), buf.size(), kTestTag, 1);
  ASSERT_TRUE(r.begin_section(1));
  EXPECT_EQ(r.take_count(8), 0u);
  EXPECT_EQ(r.error().status, ArchiveStatus::kMalformed);
}

// ---------------------------------------------------------------------------
// Snapshot wire form
// ---------------------------------------------------------------------------

sim::Session warmed_session() {
  sim::Scenario scenario;
  scenario.workload("swaptions").seed(11).iterations(400).dual();
  sim::Session session = scenario.build();
  EXPECT_TRUE(session.advance(5'000));
  return session;
}

std::vector<u8> snapshot_bytes(const soc::Snapshot& snap) {
  ArchiveWriter w(soc::kSnapshotAppTag, soc::kSnapshotFormatVersion);
  snap.serialize(w);
  return w.buffer();
}

TEST(SnapshotWire, RoundTripIsBitIdentical) {
  sim::Session session = warmed_session();
  const soc::Snapshot snap = session.snapshot();
  const std::vector<u8> bytes = snapshot_bytes(snap);

  ArchiveReader r(bytes.data(), bytes.size(), soc::kSnapshotAppTag,
                  soc::kSnapshotFormatVersion);
  soc::Snapshot decoded;
  decoded.deserialize(r);
  ASSERT_TRUE(r.ok()) << r.error().message();
  EXPECT_EQ(soc::snapshot_digest(decoded), soc::snapshot_digest(snap));
  // Bit-identity of the wire form itself: re-encoding the decoded snapshot
  // reproduces the exact byte buffer.
  EXPECT_EQ(snapshot_bytes(decoded), bytes);
}

TEST(SnapshotWire, SingleBitCorruptionSweepAllRejected) {
  sim::Session session = warmed_session();
  const std::vector<u8> bytes = snapshot_bytes(session.snapshot());
  const u64 clean_digest = soc::snapshot_digest(session.snapshot());

  const auto decode = [&](const std::vector<u8>& buf, soc::Snapshot* out) {
    ArchiveReader r(buf.data(), buf.size(), soc::kSnapshotAppTag,
                    soc::kSnapshotFormatVersion);
    out->deserialize(r);
    return r.error();
  };

  // Deterministic sweep: every bit of the first 64 bytes (container header +
  // first section header — the fields with bespoke checks), then a fixed
  // prime stride across the whole buffer so every section's payload, CRC,
  // reserved word and padding gets sampled. Every flip must be rejected with
  // a structured error; none may crash or decode to a different snapshot.
  std::vector<std::size_t> bit_positions;
  const std::size_t total_bits = bytes.size() * 8;
  for (std::size_t b = 0; b < std::min<std::size_t>(64 * 8, total_bits); ++b) {
    bit_positions.push_back(b);
  }
  for (std::size_t b = 64 * 8; b < total_bits; b += 4099) bit_positions.push_back(b);

  std::vector<u8> corrupt = bytes;
  for (const std::size_t bit : bit_positions) {
    corrupt[bit / 8] ^= static_cast<u8>(1u << (bit % 8));
    soc::Snapshot out;
    const io::ArchiveError err = decode(corrupt, &out);
    EXPECT_FALSE(err.ok()) << "bit flip at " << bit << " was not rejected";
    corrupt[bit / 8] ^= static_cast<u8>(1u << (bit % 8));
  }

  // The unflipped buffer still decodes to the clean digest (sweep hygiene).
  soc::Snapshot out;
  ASSERT_TRUE(decode(corrupt, &out).ok());
  EXPECT_EQ(soc::snapshot_digest(out), clean_digest);
}

TEST(SnapshotWire, EveryTruncationPrefixIsStructurallyHandled) {
  // Small archive (a CampaignStats section) so every prefix length is cheap
  // to try. A prefix may only succeed if it merely dropped trailing padding;
  // anything else must fail with a structured error — never crash.
  fault::CampaignStats stats;
  fault::FaultOutcome o;
  o.detected = true;
  o.latency_us = 3.75;
  o.kind = fault::OutcomeKind::kDetected;
  stats.record(o);
  o.detected = false;
  o.latency_us = 0.0;
  o.kind = fault::OutcomeKind::kMasked;
  stats.record(o);
  stats.total_instructions = 12345;

  ArchiveWriter w(kTestTag, 1);
  w.begin_section(1);
  stats.serialize(w);
  w.end_section();
  const auto& buf = w.buffer();

  for (std::size_t len = 0; len < buf.size(); ++len) {
    ArchiveReader r(buf.data(), len, kTestTag, 1);
    fault::CampaignStats decoded;
    if (r.begin_section(1)) {
      decoded.deserialize(r);
      r.end_section();
    }
    if (r.ok()) {
      // Only a pad-only truncation may decode; it must decode identically.
      EXPECT_GE(len, buf.size() - 7);
      EXPECT_EQ(decoded.digest(), stats.digest());
    } else {
      EXPECT_NE(r.error().status, ArchiveStatus::kOk);
    }
  }
}

TEST(SnapshotWire, DomainChecksRejectCrcCleanGarbage) {
  // A CRC-valid payload whose fields are out of domain (e.g. written by a
  // buggy producer) must still be rejected: detect_kind 99 does not exist.
  ArchiveWriter w(kTestTag, 1);
  w.begin_section(1);
  w.put_varint(1);
  w.put_bool(true);
  w.put_f64(1.0);
  w.put_u8(99);  // detect_kind out of domain
  w.put_u8(0);
  w.put_u8(1);
  w.put_varint(0);
  w.end_section();
  const auto& buf = w.buffer();

  ArchiveReader r(buf.data(), buf.size(), kTestTag, 1);
  ASSERT_TRUE(r.begin_section(1));
  fault::CampaignStats decoded;
  decoded.deserialize(r);
  EXPECT_EQ(r.error().status, ArchiveStatus::kMalformed);
}

TEST(SnapshotWire, CampaignStatsAndVulnReportRoundTrip) {
  fault::CampaignStats stats;
  fault::FaultOutcome o;
  o.detected = true;
  o.latency_us = 0.5;
  o.kind = fault::OutcomeKind::kDetected;
  stats.record(o);
  stats.total_instructions = 777;

  ArchiveWriter sw(kTestTag, 1);
  sw.begin_section(1);
  stats.serialize(sw);
  sw.end_section();
  ArchiveReader sr(sw.buffer().data(), sw.buffer().size(), kTestTag, 1);
  ASSERT_TRUE(sr.begin_section(1));
  fault::CampaignStats stats2;
  stats2.deserialize(sr);
  sr.end_section();
  ASSERT_TRUE(sr.ok()) << sr.error().message();
  EXPECT_EQ(stats2.digest(), stats.digest());
  EXPECT_EQ(stats2.detected, stats.detected);
  EXPECT_EQ(stats2.total_instructions, stats.total_instructions);

  fault::VulnReport report;
  fault::InjectionRecord rec;
  rec.site = {fault::Component::kMemory, 12, 3, 77};
  rec.outcome = fault::OutcomeKind::kSdc;
  rec.rc_valid = true;
  rec.rc_instret = 1234;
  rec.rc_victim_pc = 0x80000010;
  rec.rc_golden_pc = 0x80000014;
  report.add(rec);
  rec = fault::InjectionRecord{};
  rec.site = {fault::Component::kDbcEntry, 4, 60, 900};
  rec.outcome = fault::OutcomeKind::kDetected;
  rec.latency_us = 8.25;
  report.add(rec);
  report.total_instructions = 4242;

  ArchiveWriter vw(kTestTag, 1);
  vw.begin_section(1);
  report.serialize(vw);
  vw.end_section();
  ArchiveReader vr(vw.buffer().data(), vw.buffer().size(), kTestTag, 1);
  ASSERT_TRUE(vr.begin_section(1));
  fault::VulnReport report2;
  report2.deserialize(vr);
  vr.end_section();
  ASSERT_TRUE(vr.ok()) << vr.error().message();
  EXPECT_EQ(report2.digest(), report.digest());
  EXPECT_EQ(report2.injected, report.injected);
  EXPECT_EQ(report2.sdc, report.sdc);
  report2.check_invariant();
}

TEST(SnapshotWire, VersionSkewIsRejectedExactly) {
  // v2 widened the driver section (exec_main_halted -> exec_halted_mask for
  // role-based topologies). There are no migration shims: a v1 archive — or
  // any version other than the current one — must be rejected with a
  // structured kVersionSkew before any section is decoded.
  static_assert(soc::kSnapshotFormatVersion == 2,
                "bump this test (and re-check the skew matrix) when the "
                "snapshot format changes again");

  sim::Session session = warmed_session();
  const soc::Snapshot snap = session.snapshot();

  for (const u32 stale : {u32{1}, soc::kSnapshotFormatVersion + 1}) {
    ArchiveWriter w(soc::kSnapshotAppTag, stale);
    snap.serialize(w);
    ArchiveReader r(w.buffer().data(), w.buffer().size(), soc::kSnapshotAppTag,
                    soc::kSnapshotFormatVersion);
    EXPECT_EQ(r.error().status, ArchiveStatus::kVersionSkew);
    soc::Snapshot decoded;
    decoded.deserialize(r);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.error().status, ArchiveStatus::kVersionSkew);
  }
}

TEST(SnapshotWire, FileHelpersReportIoErrors) {
  std::vector<u8> out;
  const io::ArchiveError err = io::read_file("does_not_exist.fxar", out);
  EXPECT_EQ(err.status, ArchiveStatus::kIoError);

  soc::Snapshot snap;
  EXPECT_EQ(soc::load_snapshot("also_missing.fxar", snap).status,
            ArchiveStatus::kIoError);
}

// ---------------------------------------------------------------------------
// Multi-process resumable driver (fork dispatch, small scale)
// ---------------------------------------------------------------------------

TEST(Distributed, TwoWorkerCampaignMatchesSingleProcessAndResumes) {
  const auto& profile = workloads::find_profile("swaptions");
  const auto soc_config = soc::SocConfig::paper_default(2);
  fault::CampaignConfig campaign;
  campaign.target_faults = 8;
  campaign.warmup_rounds = 2'000;
  campaign.gap_rounds = 500;
  campaign.workload_iterations = 4'000;
  campaign.shards = 4;
  campaign.threads = 1;

  const fault::CampaignStats single =
      fault::run_fault_campaign(profile, soc_config, campaign);
  ASSERT_EQ(single.injected, campaign.target_faults);

  const std::string dir = "test_snapshot_io_campaign";
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  fault::DistributedConfig dist;
  dist.workers = 2;
  dist.dir = dir;

  // Cold two-worker run: merged result digest-identical to single-process.
  dist.run_label = "cold";
  const auto cold = fault::run_distributed_campaign(profile, soc_config, campaign, dist);
  EXPECT_TRUE(cold.run.complete());
  EXPECT_EQ(cold.stats.digest(), single.digest());
  EXPECT_EQ(cold.stats.injected, single.injected);

  // Kill the worker that runs shard 1 after it finishes but before it writes
  // its result; the run is incomplete, then a resumed invocation redoes the
  // missing shards and still merges digest-identical.
  dist.run_label = "resume";
  setenv("FLEX_CAMPAIGN_DIE_SHARD", "1", 1);
  const auto killed = fault::run_distributed_campaign(profile, soc_config, campaign, dist);
  unsetenv("FLEX_CAMPAIGN_DIE_SHARD");
  EXPECT_FALSE(killed.run.complete());
  EXPECT_LT(killed.run.shards_completed, killed.run.shards_total);

  const auto resumed = fault::run_distributed_campaign(profile, soc_config, campaign, dist);
  EXPECT_TRUE(resumed.run.complete());
  EXPECT_GT(resumed.run.shards_resumed, 0u);
  EXPECT_EQ(resumed.stats.digest(), single.digest());

  // Warm rerun against the baselines the cold run persisted: every warmup is
  // elided, outcomes unchanged.
  dist.run_label = "warm";
  const auto warm = fault::run_distributed_campaign(profile, soc_config, campaign, dist);
  EXPECT_TRUE(warm.run.complete());
  EXPECT_GT(warm.run.warmup_instructions_elided, 0u);
  EXPECT_EQ(warm.stats.digest(), single.digest());

  // The resume journal names every shard.
  EXPECT_TRUE(std::filesystem::exists(dir + "/warm_journal.txt"));
  std::filesystem::remove_all(dir, ec);
}

}  // namespace
}  // namespace flexstep
