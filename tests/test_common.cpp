// Unit tests for the common utilities (RNG, statistics, histogram, table).
#include <gtest/gtest.h>

#include <cmath>

#include "common/histogram.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"

namespace flexstep {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(7);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 10000; ++i) ++seen[rng.next_below(10)];
  for (int count : seen) EXPECT_GT(count, 0);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextInInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 20000; ++i) {
    const i64 v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, LogUniformWithinBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_log_uniform(10.0, 1000.0);
    EXPECT_GE(v, 10.0);
    EXPECT_LT(v, 1000.0);
  }
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(9);
  Rng child = a.split();
  EXPECT_NE(a.next_u64(), child.next_u64());
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(13);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RunningStats, MeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesCombined) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.next_double_in(-5, 5);
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Stats, GeomeanOfSlowdowns) {
  const std::vector<double> xs{1.0107, 1.0107, 1.0107};
  EXPECT_NEAR(geomean(xs), 1.0107, 1e-9);
}

TEST(Stats, GeomeanMixed) {
  const std::vector<double> xs{1.0, 4.0};
  EXPECT_NEAR(geomean(xs), 2.0, 1e-12);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 2.0);
}

TEST(Histogram, DensityIntegratesToOne) {
  Histogram h(0.0, 10.0, 20);
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) h.add(rng.next_double_in(0, 10));
  double integral = 0.0;
  for (std::size_t b = 0; b < h.bin_count(); ++b) integral += h.density(b) * h.bin_width();
  EXPECT_NEAR(integral, 1.0, 1e-9);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0.0, 1.0, 10);
  h.add(-5.0);
  h.add(7.0);
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(9), 1u);
}

TEST(Histogram, CdfExactAtRangeEdges) {
  // Awkward (lo, hi, bins) triples where lo + bins*width lands a ULP off hi
  // under floating-point rounding: cdf(hi) used to drop the last bin.
  const struct {
    double lo, hi;
    std::size_t bins;
  } triples[] = {{0.0, 0.7, 7}, {0.1, 0.7, 6}, {0.0, 1.0 / 3.0, 9},
                 {1e-3, 2.3e-1, 11}, {0.0, 100.0, 50}};
  for (const auto& t : triples) {
    Histogram h(t.lo, t.hi, t.bins);
    Rng rng(13);
    for (int i = 0; i < 1000; ++i) h.add(rng.next_double_in(t.lo, t.hi));
    EXPECT_EQ(h.cdf(t.lo), 0.0) << t.lo << " " << t.hi << " " << t.bins;
    EXPECT_EQ(h.cdf(t.hi), 1.0) << t.lo << " " << t.hi << " " << t.bins;
  }
}

TEST(Histogram, RenderSurvivesWideWidths) {
  // Rows used to be assembled in a fixed char[256]: width ≳ 240 silently
  // truncated the bar and dropped the trailing count.
  Histogram h(0.0, 4.0, 4);
  h.add_n(0.5, 123456);  // peak bin: full-width bar
  h.add_n(1.5, 61728);
  for (const std::size_t width : {60u, 400u, 1000u}) {
    const std::string out = h.render(width);
    // Every row: 10-char center + " | " + width bar columns + " " + count.
    std::size_t rows = 0;
    std::size_t start = 0;
    while (start < out.size()) {
      const std::size_t end = out.find('\n', start);
      ASSERT_NE(end, std::string::npos);
      const std::string line = out.substr(start, end - start);
      EXPECT_GT(line.size(), 13 + width) << "width " << width;
      start = end + 1;
      ++rows;
    }
    EXPECT_EQ(rows, h.bin_count());
    // The peak bin renders a full-width bar and keeps its exact count.
    EXPECT_NE(out.find(std::string(width, '#') + " 123456"), std::string::npos)
        << "width " << width;
  }
}

TEST(Histogram, CdfMonotone) {
  Histogram h(0.0, 100.0, 50);
  Rng rng(4);
  for (int i = 0; i < 5000; ++i) h.add(rng.next_double_in(0, 100));
  double prev = 0.0;
  for (double x = 0; x <= 100; x += 5) {
    const double c = h.cdf(x);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_NEAR(h.cdf(100.0), 1.0, 1e-9);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1.00"});
  t.add_row({"longer-name", "2.50"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("| longer-name"), std::string::npos);
  EXPECT_NE(out.find("|---"), std::string::npos);
}

TEST(Table, FormatsNumbersAndPercent) {
  EXPECT_EQ(Table::num(1.2345, 2), "1.23");
  EXPECT_EQ(Table::pct(0.0221), "+2.21%");
  EXPECT_EQ(Table::pct(-0.01, 1), "-1.0%");
}

TEST(Types, CycleUsConversion) {
  EXPECT_DOUBLE_EQ(cycles_to_us(1600), 1.0);
  EXPECT_EQ(us_to_cycles(2.0), 3200u);
}

}  // namespace
}  // namespace flexstep
