// DBC channel unit tests: stream ordering, segment readiness, backpressure
// and the DMA-spill rule, fault injection bookkeeping.
#include <gtest/gtest.h>

#include "flexstep/channel.h"

namespace flexstep::fs {
namespace {

FlexStepConfig small_config() {
  FlexStepConfig c;
  c.channel_capacity = 8;
  c.channel_latency = 4;
  return c;
}

arch::ArchState state_with(u64 marker) {
  arch::ArchState s;
  s.pc = 0x1000;
  s.regs[1] = marker;
  return s;
}

TEST(Channel, FifoOrderPreserved) {
  Channel ch(0, 1, small_config());
  ch.push_scp(state_with(1), 10);
  MemLogEntry e;
  e.kind = MemEntryKind::kLoadData;
  e.addr = 0x100;
  e.data = 42;
  ch.push_mem(e, 11);
  ch.push_segment_end(state_with(2), 1, 12);

  EXPECT_EQ(ch.pop(20).kind, StreamItem::Kind::kScp);
  EXPECT_EQ(ch.pop(21).kind, StreamItem::Kind::kMem);
  EXPECT_EQ(ch.pop(22).kind, StreamItem::Kind::kSegmentEnd);
  EXPECT_TRUE(ch.empty());
}

TEST(Channel, SegmentReadyOnlyAfterSegmentEndVisible) {
  Channel ch(0, 1, small_config());
  ch.push_scp(state_with(1), 100);
  EXPECT_FALSE(ch.segment_ready(1000));  // no SegmentEnd yet
  ch.push_segment_end(state_with(2), 0, 200);
  EXPECT_FALSE(ch.segment_ready(203));   // latency 4: visible at 204
  EXPECT_TRUE(ch.segment_ready(204));
  EXPECT_EQ(ch.next_segment_ready_at(), 204u);
}

TEST(Channel, FrontSegmentIcTracksOldestSegment) {
  Channel ch(0, 1, small_config());
  ch.push_scp(state_with(1), 0);
  ch.push_segment_end(state_with(2), 7, 1);
  ch.push_scp(state_with(3), 2);
  ch.push_segment_end(state_with(4), 13, 3);
  EXPECT_EQ(ch.front_segment_ic(), 7u);
  ch.pop(10);  // SCP
  ch.pop(10);  // SegmentEnd of first segment
  EXPECT_EQ(ch.front_segment_ic(), 13u);
}

TEST(Channel, BackpressureBeyondCapacityWithReadySegment) {
  Channel ch(0, 1, small_config());  // capacity 8
  ch.push_scp(state_with(1), 0);
  ch.push_segment_end(state_with(2), 0, 1);  // complete segment queued
  MemLogEntry e;
  for (int i = 0; i < 6; ++i) ch.push_mem(e, 2);
  EXPECT_EQ(ch.size(), 8u);
  EXPECT_TRUE(ch.producer_can_push(0));   // exactly at capacity
  EXPECT_FALSE(ch.producer_can_push(2));  // over capacity, consumer has work
}

TEST(Channel, DmaSpillWhenConsumerStarved) {
  Channel ch(0, 1, small_config());
  MemLogEntry e;
  // No complete segment queued: pushes must never stall (deadlock freedom).
  ch.push_scp(state_with(1), 0);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(ch.producer_can_push(2));
    ch.push_mem(e, 1);
  }
  EXPECT_GT(ch.size(), small_config().channel_capacity);
}

TEST(Channel, ProducerHeadroomTracksSpaceHorizon) {
  Channel ch(0, 1, small_config());  // capacity 8
  MemLogEntry e;
  // Consumer starved (no complete segment): the spill rule makes a stall
  // impossible, so the horizon is unbounded — even past capacity.
  ch.push_scp(state_with(1), 0);
  EXPECT_EQ(ch.producer_headroom_entries(), ~u64{0});
  for (int i = 0; i < 10; ++i) ch.push_mem(e, 1);
  EXPECT_EQ(ch.producer_headroom_entries(), ~u64{0});

  // A complete segment arms backpressure: the horizon is the remaining space.
  ch.push_segment_end(state_with(2), 10, 2);  // occupancy 12 > capacity 8
  EXPECT_EQ(ch.producer_headroom_entries(), 0u);
  while (ch.size() > 5) ch.pop(10);
  EXPECT_EQ(ch.producer_headroom_entries(), 3u);

  // The horizon is exactly the guaranteed-no-stall push count.
  EXPECT_TRUE(ch.producer_can_push(3));
  EXPECT_FALSE(ch.producer_can_push(4));
}

TEST(Channel, DrainedRequiresCloseAndEmpty) {
  Channel ch(0, 1, small_config());
  ch.push_scp(state_with(1), 0);
  EXPECT_FALSE(ch.drained());
  ch.close();
  EXPECT_FALSE(ch.drained());
  ch.pop(5);
  EXPECT_TRUE(ch.drained());
}

TEST(Channel, PopTracksConsumerTimestamp) {
  Channel ch(0, 1, small_config());
  ch.push_scp(state_with(1), 0);
  ch.pop(777);
  EXPECT_EQ(ch.last_pop_cycle(), 777u);
}

TEST(ChannelFault, InjectFlipsExactlyOneBit) {
  Channel ch(0, 1, small_config());
  MemLogEntry e;
  e.kind = MemEntryKind::kStoreAddrData;
  e.addr = 0x1000;
  e.data = 0xABCD;
  e.bytes = 8;
  ch.push_mem(e, 0);

  Rng rng(1);
  const auto fault = ch.inject_random_fault(rng, 50);
  ASSERT_TRUE(fault.has_value());
  EXPECT_TRUE(ch.fault_pending());
  const StreamItem& item = ch.front();
  const bool addr_changed = item.mem.addr != e.addr;
  const bool data_changed = item.mem.data != e.data;
  EXPECT_TRUE(addr_changed ^ data_changed);
  if (addr_changed) {
    EXPECT_EQ(__builtin_popcountll(item.mem.addr ^ e.addr), 1);
  } else {
    EXPECT_EQ(__builtin_popcountll(item.mem.data ^ e.data), 1);
  }
}

TEST(ChannelFault, OnlyOnePendingFault) {
  Channel ch(0, 1, small_config());
  MemLogEntry e;
  ch.push_mem(e, 0);
  Rng rng(2);
  EXPECT_TRUE(ch.inject_random_fault(rng, 1).has_value());
  EXPECT_FALSE(ch.inject_random_fault(rng, 2).has_value());
  ch.clear_fault();
  EXPECT_TRUE(ch.inject_random_fault(rng, 3).has_value());
}

TEST(ChannelFault, InjectOnEmptyQueueFails) {
  Channel ch(0, 1, small_config());
  Rng rng(3);
  EXPECT_FALSE(ch.inject_random_fault(rng, 1).has_value());
}

TEST(ChannelFault, SegmentEndSeqLocatesClosingBoundary) {
  Channel ch(0, 1, small_config());
  ch.push_scp(state_with(1), 0);          // seq 0
  MemLogEntry e;
  ch.push_mem(e, 1);                      // seq 1
  ch.push_segment_end(state_with(2), 1, 2);  // seq 2
  Rng rng(4);
  const auto fault = ch.inject_random_fault(rng, 10);
  ASSERT_TRUE(fault.has_value());
  EXPECT_LE(fault->seq, 2u);
  EXPECT_EQ(fault->segment_end_seq, 2u);
}

TEST(ChannelFault, ScpPcCorruptionStaysAligned) {
  Channel ch(0, 1, small_config());
  for (int trial = 0; trial < 64; ++trial) {
    ch.push_scp(state_with(1), 0);
    Rng rng(trial);
    const auto fault = ch.inject_random_fault(rng, 1);
    ASSERT_TRUE(fault.has_value());
    const StreamItem item = ch.pop(2);
    EXPECT_EQ(item.state.pc % 4, 0u);  // PC flips restricted to bits 2..17
    ch.clear_fault();
  }
}

TEST(Channel, OccupancyHighWaterMark) {
  Channel ch(0, 1, small_config());
  MemLogEntry e;
  for (int i = 0; i < 5; ++i) ch.push_mem(e, 0);
  ch.pop(1);
  ch.pop(1);
  EXPECT_EQ(ch.max_occupancy(), 5u);
  EXPECT_EQ(ch.size(), 3u);
}

}  // namespace
}  // namespace flexstep::fs
