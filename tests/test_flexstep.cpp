// FlexStep end-to-end mechanism tests on a 2-4 core SoC: checking segments,
// asynchronous replay, ECP verification, multi-uop logging, custom ISA,
// global configuration.
#include <gtest/gtest.h>

#include "isa/assembler.h"
#include "soc/soc.h"
#include "soc/verified_run.h"

namespace flexstep {
namespace {

using fs::CoreAttr;
using isa::Assembler;
using isa::Opcode;
using soc::Soc;
using soc::SocConfig;
using soc::VerifiedExecution;
using soc::VerifiedRunConfig;

SocConfig test_config(u32 cores = 2, u32 segment_limit = 50) {
  SocConfig config = SocConfig::paper_default(cores);
  config.flexstep.segment_limit = segment_limit;
  return config;
}

/// A small self-checking compute/memory loop.
isa::Program small_program(u32 iterations = 40) {
  Assembler a;
  a.li(10, 0x200000);  // data base
  a.li(5, iterations);
  a.li(6, 0x1234);
  a.li(14, 1);
  auto loop = a.new_label();
  a.bind(loop);
  a.mul(6, 6, 14);
  a.addi(6, 6, 37);
  a.andi(7, 6, 0xFF8);
  a.add(7, 10, 7);
  a.sd(6, 7, 0);
  a.ld(8, 7, 0);
  a.add(14, 14, 8);
  a.amoadd_d(9, 10, 14);
  a.addi(5, 5, -1);
  a.bne(5, 0, loop);
  a.halt();
  return a.finalize("small");
}

TEST(FlexStep, GlobalConfigAttributes) {
  fs::GlobalConfig g;
  g.configure(0b0001, 0b0010);
  EXPECT_EQ(g.attr_of(0), CoreAttr::kMain);
  EXPECT_EQ(g.attr_of(1), CoreAttr::kChecker);
  EXPECT_EQ(g.attr_of(2), CoreAttr::kCompute);
}

TEST(FlexStep, CustomIsaConfigureAndQuery) {
  Soc soc(test_config(3));
  arch::Core& core = soc.core(0);
  core.set_user_mode(false);
  core.set_reg(5, 0b001);
  core.set_reg(6, 0b110);
  core.exec_kernel_instruction(isa::make_r(Opcode::kGConfigure, 0, 5, 6));
  // G.IDs.contain: query each core's attribute through the ISA.
  core.set_reg(7, 0);
  EXPECT_EQ(core.exec_kernel_instruction(isa::make_r(Opcode::kGIdsContain, 8, 7, 0)),
            static_cast<u64>(CoreAttr::kMain));
  core.set_reg(7, 1);
  EXPECT_EQ(core.exec_kernel_instruction(isa::make_r(Opcode::kGIdsContain, 8, 7, 0)),
            static_cast<u64>(CoreAttr::kChecker));
  EXPECT_EQ(core.reg(8), static_cast<u64>(CoreAttr::kChecker));  // rd written
}

TEST(FlexStep, UnverifiedRunMatchesPlainExecution) {
  Soc soc(test_config());
  VerifiedExecution exec(soc, VerifiedRunConfig{0, {}});
  exec.prepare(small_program());
  const auto stats = exec.run();
  EXPECT_GT(stats.main_instructions, 100u);
  EXPECT_EQ(stats.segments_produced, 0u);
  EXPECT_EQ(soc.core(0).status(), arch::Core::Status::kHalted);
}

TEST(FlexStep, DualCoreVerificationCleanRun) {
  Soc soc(test_config());
  VerifiedExecution exec(soc, VerifiedRunConfig{0, {1}});
  exec.prepare(small_program());
  const auto stats = exec.run();

  EXPECT_GT(stats.segments_produced, 2u);
  EXPECT_EQ(stats.segments_verified, stats.segments_produced);
  EXPECT_EQ(stats.segments_failed, 0u);
  EXPECT_EQ(soc.fabric().reporter().detections(), 0u);  // no false positives
  // All channels fully drained.
  for (const fs::Channel* ch : soc.fabric().channels()) {
    EXPECT_TRUE(ch->drained());
  }
}

TEST(FlexStep, VerificationCoversEveryUserInstruction) {
  Soc soc(test_config());
  VerifiedExecution exec(soc, VerifiedRunConfig{0, {1}});
  exec.prepare(small_program());
  exec.run();
  // The checker replayed exactly the main core's user-mode instructions.
  EXPECT_EQ(soc.unit(1).replayed_instructions(), soc.core(0).user_instret());
}

TEST(FlexStep, TripleCoreVerificationBothCheckersVerify) {
  Soc soc(test_config(3));
  VerifiedExecution exec(soc, VerifiedRunConfig{0, {1, 2}});
  exec.prepare(small_program());
  const auto stats = exec.run();
  EXPECT_EQ(soc.unit(1).segments_verified(), stats.segments_produced);
  EXPECT_EQ(soc.unit(2).segments_verified(), stats.segments_produced);
  EXPECT_EQ(stats.segments_failed, 0u);
}

TEST(FlexStep, SegmentLimitBoundsSegmentSize) {
  Soc soc(test_config(2, 100));
  VerifiedExecution exec(soc, VerifiedRunConfig{0, {1}});
  exec.prepare(small_program(100));
  const auto stats = exec.run();
  const u64 user_insts = soc.core(0).user_instret();
  // Segments of <= 100 instructions: at least user/100 segments.
  EXPECT_GE(stats.segments_produced, user_insts / 100);
}

TEST(FlexStep, EcallSplitsSegments) {
  // A program with frequent ecalls produces more (shorter) segments than the
  // instruction-count limit alone would.
  Assembler a;
  a.li(5, 30);
  auto loop = a.new_label();
  a.bind(loop);
  a.addi(6, 6, 1);
  a.ecall();
  a.addi(5, 5, -1);
  a.bne(5, 0, loop);
  a.halt();

  Soc soc(test_config(2, 5000));
  VerifiedExecution exec(soc, VerifiedRunConfig{0, {1}});
  exec.prepare(a.finalize("ecalls"));
  const auto stats = exec.run();
  EXPECT_GE(stats.segments_produced, 30u);  // one boundary per kernel entry
  EXPECT_EQ(stats.segments_failed, 0u);
  EXPECT_EQ(stats.segments_verified, stats.segments_produced);
}

TEST(FlexStep, MultiUopInstructionsProduceMultipleEntries) {
  Assembler a;
  a.li(10, 0x200000);
  a.li(1, 7);
  a.amoadd_d(2, 10, 1);  // 2 entries
  a.lr_d(3, 10);         // 1 entry
  a.sc_d(4, 10, 1);      // flag + store = 2 entries
  a.sd(1, 10, 8);        // 1 entry
  a.ld(5, 10, 8);        // 1 entry
  a.halt();

  Soc soc(test_config());
  VerifiedExecution exec(soc, VerifiedRunConfig{0, {1}});
  exec.prepare(a.finalize("multiuop"));
  const auto stats = exec.run();
  EXPECT_EQ(stats.mem_entries, 7u);
  EXPECT_EQ(stats.segments_failed, 0u);
}

TEST(FlexStep, FailedScProducesFlagOnly) {
  Assembler a;
  a.li(10, 0x200000);
  a.li(1, 7);
  a.sc_d(4, 10, 1);  // no reservation: fails -> flag entry only
  a.halt();
  Soc soc(test_config());
  VerifiedExecution exec(soc, VerifiedRunConfig{0, {1}});
  exec.prepare(a.finalize("scfail"));
  const auto stats = exec.run();
  EXPECT_EQ(stats.mem_entries, 1u);
  EXPECT_EQ(stats.segments_failed, 0u);
}

TEST(FlexStep, BackpressureThrottlesMainWithTinyChannel) {
  SocConfig config = test_config(2, 50);
  config.flexstep.channel_capacity = 64;
  Soc soc(config);
  VerifiedExecution exec(soc, VerifiedRunConfig{0, {1}});
  exec.prepare(small_program(200));
  const auto stats = exec.run();
  EXPECT_EQ(stats.segments_failed, 0u);
  EXPECT_LE(stats.max_channel_occupancy, 64u + 4u);  // soft cap + overshoot
}

TEST(FlexStep, CheckerLagBoundedByChannelCapacity) {
  SocConfig config = test_config(2, 50);
  config.flexstep.channel_capacity = 256;
  Soc soc(config);
  VerifiedExecution exec(soc, VerifiedRunConfig{0, {1}});
  exec.prepare(small_program(300));
  const auto stats = exec.run();
  EXPECT_LE(stats.max_channel_occupancy, 256u + 4u);
  // Completion (detection done) trails the main core's finish.
  EXPECT_GE(stats.completion_cycles, stats.main_cycles);
}

TEST(FlexStep, SlowdownIsSmall) {
  // The same program with and without verification: FlexStep's slowdown
  // should be in the low single digits of percent (paper: ~1%).
  const auto program = small_program(400);
  Cycle plain = 0;
  Cycle verified = 0;
  {
    Soc soc(test_config(2, 5000));
    VerifiedExecution exec(soc, VerifiedRunConfig{0, {}});
    exec.prepare(program);
    plain = exec.run().main_cycles;
  }
  {
    Soc soc(test_config(2, 5000));
    VerifiedExecution exec(soc, VerifiedRunConfig{0, {1}});
    exec.prepare(program);
    verified = exec.run().main_cycles;
  }
  const double slowdown = static_cast<double>(verified) / plain;
  EXPECT_GE(slowdown, 1.0);
  EXPECT_LT(slowdown, 1.10);
}

TEST(FlexStep, ReplayContextExtractAdoptRoundTrip) {
  Soc soc(test_config());
  fs::CoreUnit& unit = soc.unit(1);
  auto ctx = unit.extract_replay_context();
  EXPECT_FALSE(ctx.active);
  ctx.replayed = 17;
  ctx.expected_ic = 50;
  ctx.active = true;
  unit.adopt_replay_context(ctx);
  EXPECT_TRUE(unit.replay_suspended());
  const auto back = unit.extract_replay_context();
  EXPECT_TRUE(back.active);
  EXPECT_EQ(back.replayed, 17u);
  EXPECT_EQ(back.expected_ic, 50u);
  EXPECT_FALSE(unit.replay_suspended());
}

}  // namespace
}  // namespace flexstep
