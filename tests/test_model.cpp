// Power/area model tests: calibration against the paper's published numbers.
#include <gtest/gtest.h>

#include "model/power_area.h"

namespace flexstep::model {
namespace {

TEST(PowerArea, Table3VanillaCalibration) {
  const PowerAreaModel m;
  const auto vanilla = m.vanilla(4);
  EXPECT_NEAR(vanilla.area_mm2, 2.71, 0.01);   // paper Tab. III
  EXPECT_NEAR(vanilla.power_w, 0.485, 0.002);
}

TEST(PowerArea, Table3FlexStepCalibration) {
  const PowerAreaModel m;
  const auto flexstep = m.flexstep(4);
  EXPECT_NEAR(flexstep.area_mm2, 2.77, 0.02);
  EXPECT_NEAR(flexstep.power_w, 0.499, 0.002);
  EXPECT_NEAR(m.area_overhead(4), 0.0221, 0.004);   // +2.21%
  EXPECT_NEAR(m.power_overhead(4), 0.0289, 0.004);  // +2.89%
}

TEST(PowerArea, Figure8EndpointAnchors) {
  const PowerAreaModel m;
  // Fig. 8 axis anchors: 2-core ~2.0 mm2 / ~0.3 W; 32-core ~12 mm2 / ~3.3 W.
  EXPECT_NEAR(m.vanilla(2).area_mm2, 2.03, 0.1);
  EXPECT_NEAR(m.vanilla(2).power_w, 0.30, 0.02);
  EXPECT_NEAR(m.vanilla(32).area_mm2, 12.23, 0.3);
  EXPECT_NEAR(m.vanilla(32).power_w, 3.12, 0.25);
}

TEST(PowerArea, OverheadGrowsLinearlyNotExponentially) {
  const PowerAreaModel m;
  // Per-core absolute adder is constant: the overhead delta between
  // consecutive sizes must itself shrink (sublinear relative growth).
  double prev_delta = 1.0;
  for (u32 cores : {4u, 8u, 16u, 32u}) {
    const double delta = m.flexstep(cores).area_mm2 - m.vanilla(cores).area_mm2;
    const double per_core = delta / cores;
    if (cores > 4) {
      EXPECT_NEAR(per_core, prev_delta, 1e-12);
    }
    prev_delta = per_core;
  }
  // And the relative overhead stays below 5% through 32 cores.
  EXPECT_LT(m.area_overhead(32), 0.05);
  EXPECT_LT(m.power_overhead(32), 0.05);
}

TEST(PowerArea, StorageBudgetMatchesSecVIE) {
  EXPECT_EQ(fs::kCpcStorageBytes, 8u);
  EXPECT_EQ(fs::kAssStorageBytes, 518u);
  EXPECT_EQ(fs::kDbcStorageBytes, 1088u);
  EXPECT_EQ(fs::kTotalStorageBytesPerCore, 1614u);
  EXPECT_EQ(PowerAreaModel::storage_bytes(fs::FlexStepConfig{}), 1614u);
  // DBC geometry: 64 entries of 17 B.
  EXPECT_EQ(fs::kFifoSramEntries, 64u);
}

TEST(PowerArea, MonotoneInCores) {
  const PowerAreaModel m;
  double prev_area = 0.0;
  for (u32 cores = 1; cores <= 64; cores *= 2) {
    const auto pa = m.flexstep(cores);
    EXPECT_GT(pa.area_mm2, prev_area);
    prev_area = pa.area_mm2;
  }
}

}  // namespace
}  // namespace flexstep::model
