// Memory, cache, and branch-predictor unit tests.
#include <gtest/gtest.h>

#include "arch/branch_pred.h"
#include "arch/cache.h"
#include "arch/memory.h"

namespace flexstep::arch {
namespace {

TEST(Memory, ReadWriteWidths) {
  Memory m;
  m.write(0x1000, 8, 0x1122334455667788ULL);
  EXPECT_EQ(m.read(0x1000, 8), 0x1122334455667788ULL);
  EXPECT_EQ(m.read(0x1000, 4), 0x55667788ULL);
  EXPECT_EQ(m.read(0x1000, 2), 0x7788ULL);
  EXPECT_EQ(m.read(0x1000, 1), 0x88ULL);
  EXPECT_EQ(m.read(0x1004, 4), 0x11223344ULL);
}

TEST(Memory, ZeroInitialised) {
  Memory m;
  EXPECT_EQ(m.read(0xDEAD000, 8), 0u);
}

TEST(Memory, PageStraddlingAccess) {
  Memory m;
  const Addr addr = Memory::kPageSize - 4;
  m.write(addr, 8, 0xAABBCCDDEEFF0011ULL);
  EXPECT_EQ(m.read(addr, 8), 0xAABBCCDDEEFF0011ULL);
}

TEST(Memory, BlockCopy) {
  Memory m;
  std::vector<u8> src(10000);
  for (std::size_t i = 0; i < src.size(); ++i) src[i] = static_cast<u8>(i * 7);
  m.write_block(0x3F00, src.data(), src.size());  // crosses pages
  std::vector<u8> dst(src.size());
  m.read_block(0x3F00, dst.data(), dst.size());
  EXPECT_EQ(src, dst);
}

TEST(Memory, SparseAllocation) {
  Memory m;
  m.write(0x0, 8, 1);
  m.write(0x4000'0000, 8, 2);
  EXPECT_EQ(m.resident_pages(), 2u);
}

TEST(Cache, HitAfterFill) {
  Cache c({.size_bytes = 1024, .ways = 2, .line_bytes = 64, .latency = 2});
  EXPECT_FALSE(c.access(0x100));
  EXPECT_TRUE(c.access(0x100));
  EXPECT_TRUE(c.access(0x13F));  // same 64B line
  EXPECT_FALSE(c.access(0x140)); // next line
}

TEST(Cache, LruEviction) {
  // 2-way, 8 sets of 64B: addresses 0, 512, 1024 map to set 0.
  Cache c({.size_bytes = 1024, .ways = 2, .line_bytes = 64, .latency = 2});
  c.access(0);
  c.access(512);
  EXPECT_TRUE(c.access(0));     // refresh 0: LRU is 512
  c.access(1024);               // evicts 512
  EXPECT_TRUE(c.access(0));
  EXPECT_FALSE(c.access(512));  // was evicted
}

TEST(Cache, WorkingSetLargerThanCacheMisses) {
  Cache c({.size_bytes = 16 * 1024, .ways = 4, .line_bytes = 64, .latency = 2});
  // Stream 64 KB twice: second pass still misses (capacity).
  for (int pass = 0; pass < 2; ++pass) {
    for (Addr a = 0; a < 64 * 1024; a += 64) c.access(a);
  }
  EXPECT_GT(c.miss_rate(), 0.9);
}

TEST(Cache, WorkingSetFittingHitsOnSecondPass) {
  Cache c({.size_bytes = 16 * 1024, .ways = 4, .line_bytes = 64, .latency = 2});
  for (Addr a = 0; a < 8 * 1024; a += 64) c.access(a);
  u64 misses_before = c.misses();
  for (Addr a = 0; a < 8 * 1024; a += 64) c.access(a);
  EXPECT_EQ(c.misses(), misses_before);
}

TEST(Cache, InvalidateAll) {
  Cache c({.size_bytes = 1024, .ways = 2, .line_bytes = 64, .latency = 2});
  c.access(0x40);
  c.invalidate_all();
  EXPECT_FALSE(c.access(0x40));
}

TEST(CacheHierarchy, MissPenalties) {
  CacheConfig l1{.size_bytes = 1024, .ways = 2, .line_bytes = 64, .latency = 2};
  Cache l2({.size_bytes = 8 * 1024, .ways = 4, .line_bytes = 64, .latency = 40});
  CacheHierarchy h(l1, l1, &l2, 100);
  // Cold: L1 miss + L2 miss -> 140 extra cycles.
  EXPECT_EQ(h.data(0x5000), 140u);
  // Warm L1: no extra cost.
  EXPECT_EQ(h.data(0x5000), 0u);
}

TEST(CacheHierarchy, L2HitCostsL2Latency) {
  CacheConfig l1{.size_bytes = 128, .ways = 1, .line_bytes = 64, .latency = 2};
  Cache l2({.size_bytes = 8 * 1024, .ways = 4, .line_bytes = 64, .latency = 40});
  CacheHierarchy h(l1, l1, &l2, 100);
  h.data(0x0);     // fills both
  h.data(0x80);    // evicts 0x0 from the 2-line L1 (set 0)
  h.data(0x100);   // set 0 again
  const Cycle cost = h.data(0x0);  // L1 miss, L2 hit
  EXPECT_EQ(cost, 40u);
}

TEST(BranchPredictor, LearnsBias) {
  BranchPredictor bp({});
  const Addr pc = 0x1000;
  for (int i = 0; i < 4; ++i) bp.update(pc, true);
  EXPECT_TRUE(bp.predict_taken(pc));
  for (int i = 0; i < 4; ++i) bp.update(pc, false);
  EXPECT_FALSE(bp.predict_taken(pc));
}

TEST(BranchPredictor, TwoBitHysteresis) {
  BranchPredictor bp({});
  const Addr pc = 0x2000;
  for (int i = 0; i < 4; ++i) bp.update(pc, true);
  bp.update(pc, false);  // one not-taken shouldn't flip a saturated counter
  EXPECT_TRUE(bp.predict_taken(pc));
}

TEST(BranchPredictor, BtbInsertLookup) {
  BranchPredictor bp({});
  EXPECT_FALSE(bp.btb_lookup(0x100).has_value());
  bp.btb_insert(0x100, 0x500);
  ASSERT_TRUE(bp.btb_lookup(0x100).has_value());
  EXPECT_EQ(*bp.btb_lookup(0x100), 0x500u);
  bp.btb_insert(0x100, 0x600);  // update in place
  EXPECT_EQ(*bp.btb_lookup(0x100), 0x600u);
}

TEST(BranchPredictor, BtbCapacityEviction) {
  BranchPredictorConfig config;
  BranchPredictor bp(config);
  for (u32 i = 0; i < config.btb_entries + 4; ++i) {
    bp.btb_insert(0x1000 + i * 4, 0x9000 + i * 4);
  }
  u32 present = 0;
  for (u32 i = 0; i < config.btb_entries + 4; ++i) {
    present += bp.btb_lookup(0x1000 + i * 4).has_value();
  }
  EXPECT_EQ(present, config.btb_entries);
}

TEST(BranchPredictor, RasLifoOrder) {
  BranchPredictor bp({});
  bp.ras_push(0xA);
  bp.ras_push(0xB);
  EXPECT_EQ(*bp.ras_pop(), 0xBu);
  EXPECT_EQ(*bp.ras_pop(), 0xAu);
  EXPECT_FALSE(bp.ras_pop().has_value());
}

TEST(BranchPredictor, RasOverflowWraps) {
  BranchPredictorConfig config;  // 6 entries
  BranchPredictor bp(config);
  for (u32 i = 0; i < 8; ++i) bp.ras_push(i);
  // Deepest two entries were overwritten; the newest six pop correctly.
  for (u32 i = 8; i-- > 2;) {
    auto v = bp.ras_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

}  // namespace
}  // namespace flexstep::arch
