// ISA tests: encode/decode round trips (parameterized over every opcode),
// assembler label resolution, li materialisation, disassembly.
#include <gtest/gtest.h>

#include "isa/assembler.h"
#include "isa/disasm.h"
#include "isa/instruction.h"

namespace flexstep::isa {
namespace {

class EncodeRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(EncodeRoundTrip, AllOpcodesSurviveEncodeDecode) {
  const auto op = static_cast<Opcode>(GetParam());
  Instruction inst;
  inst.op = op;
  switch (opcode_format(op)) {
    case Format::kR:
      inst = make_r(op, 3, 14, 29);
      break;
    case Format::kI:
      inst = make_i(op, 7, 12, -1234);
      break;
    case Format::kS:
      inst = make_s(op, 9, 11, 4088);
      break;
    case Format::kB:
      inst = make_b(op, 4, 5, -64);
      break;
    case Format::kUJ:
      inst = make_uj(op, 1, op == Opcode::kJal ? 4096 : -777);
      break;
    case Format::kC:
      inst = make_c(op);
      break;
  }
  const u32 word = encode(inst);
  const auto decoded = decode(word);
  ASSERT_TRUE(decoded.has_value()) << opcode_name(op);
  EXPECT_EQ(*decoded, inst) << opcode_name(op);
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, EncodeRoundTrip,
                         ::testing::Range(0, static_cast<int>(kOpcodeCount)));

TEST(Decode, RejectsUnknownOpcodeByte) {
  const u32 word = 0xFFu << 24;
  EXPECT_FALSE(decode(word).has_value());
}

TEST(Decode, RejectsReservedBitsInRFormat) {
  u32 word = encode(make_r(Opcode::kAdd, 1, 2, 3));
  word |= 0x1;  // reserved low bits must be zero
  EXPECT_FALSE(decode(word).has_value());
}

TEST(Decode, RejectsPayloadInCFormat) {
  u32 word = encode(make_c(Opcode::kEcall));
  word |= 0x40;
  EXPECT_FALSE(decode(word).has_value());
}

TEST(Encode, ImmediateBoundaries) {
  EXPECT_NO_FATAL_FAILURE(encode(make_i(Opcode::kAddi, 1, 0, kImm14Max)));
  EXPECT_NO_FATAL_FAILURE(encode(make_i(Opcode::kAddi, 1, 0, kImm14Min)));
  const auto hi = decode(encode(make_i(Opcode::kAddi, 1, 0, kImm14Max)));
  EXPECT_EQ(hi->imm, kImm14Max);
  const auto lo = decode(encode(make_i(Opcode::kAddi, 1, 0, kImm14Min)));
  EXPECT_EQ(lo->imm, kImm14Min);
}

TEST(OpcodeProperties, MemoryClassification) {
  EXPECT_TRUE(is_load_like(Opcode::kLd));
  EXPECT_TRUE(is_load_like(Opcode::kLrD));
  EXPECT_TRUE(is_load_like(Opcode::kAmoaddD));
  EXPECT_TRUE(is_store_like(Opcode::kSd));
  EXPECT_TRUE(is_store_like(Opcode::kScD));
  EXPECT_TRUE(is_store_like(Opcode::kAmoswapD));
  EXPECT_FALSE(is_memory(Opcode::kAdd));
  EXPECT_FALSE(is_load_like(Opcode::kSd));
}

TEST(OpcodeProperties, AccessWidths) {
  EXPECT_EQ(mem_access_bytes(Opcode::kLb), 1u);
  EXPECT_EQ(mem_access_bytes(Opcode::kLh), 2u);
  EXPECT_EQ(mem_access_bytes(Opcode::kLw), 4u);
  EXPECT_EQ(mem_access_bytes(Opcode::kLd), 8u);
  EXPECT_EQ(mem_access_bytes(Opcode::kAmoaddD), 8u);
  EXPECT_EQ(mem_access_bytes(Opcode::kAdd), 0u);
}

TEST(OpcodeProperties, FlexStepCustomRange) {
  EXPECT_TRUE(is_flexstep_custom(Opcode::kGIdsContain));
  EXPECT_TRUE(is_flexstep_custom(Opcode::kCResult));
  EXPECT_FALSE(is_flexstep_custom(Opcode::kEcall));
  EXPECT_FALSE(is_flexstep_custom(Opcode::kAdd));
}

TEST(Assembler, ForwardAndBackwardLabels) {
  Assembler a(0x1000);
  auto top = a.new_label();
  auto end = a.new_label();
  a.bind(top);
  a.addi(1, 1, 1);
  a.beq(1, 2, end);     // forward
  a.jal(0, top);        // backward
  a.bind(end);
  a.halt();
  const auto prog = a.finalize("labels");
  // beq at index 1, target index 3: offset (3-1)*4 = 8.
  EXPECT_EQ(prog.code[1].imm, 8);
  // jal at index 2, target index 0: offset -8.
  EXPECT_EQ(prog.code[2].imm, -8);
}

TEST(Assembler, HereTracksAddresses) {
  Assembler a(0x2000);
  EXPECT_EQ(a.here(), 0x2000u);
  a.nop();
  a.nop();
  EXPECT_EQ(a.here(), 0x2008u);
}

TEST(Assembler, ProgramEncodesFully) {
  Assembler a;
  a.li(5, 123456789);
  a.halt();
  const auto prog = a.finalize("enc");
  const auto words = prog.encode_all();
  EXPECT_EQ(words.size(), prog.code.size());
  for (std::size_t i = 0; i < words.size(); ++i) {
    const auto decoded = decode(words[i]);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, prog.code[i]);
  }
}

TEST(Disasm, FormatsRepresentatives) {
  EXPECT_EQ(disasm(make_r(Opcode::kAdd, 3, 1, 2)), "add            x3, x1, x2");
  const std::string load = disasm(make_i(Opcode::kLd, 5, 10, 16));
  EXPECT_NE(load.find("ld"), std::string::npos);
  EXPECT_NE(load.find("x5"), std::string::npos);
  const std::string store = disasm(make_s(Opcode::kSd, 5, 10, 8));
  EXPECT_NE(store.find("8(x10)"), std::string::npos);
}

TEST(EncodeDeath, RejectsOutOfRangeImmediate) {
  EXPECT_DEATH(encode(make_i(Opcode::kAddi, 1, 0, kImm14Max + 1)), "imm14");
  EXPECT_DEATH(encode(make_i(Opcode::kAddi, 1, 0, kImm14Min - 1)), "imm14");
}

TEST(EncodeDeath, RejectsMisalignedBranchOffset) {
  EXPECT_DEATH(encode(make_b(Opcode::kBeq, 1, 2, 6)), "aligned");
}

TEST(AssemblerDeath, UnboundLabelRejectedAtFinalize) {
  Assembler a;
  auto dangling = a.new_label();
  a.beq(1, 2, dangling);
  EXPECT_DEATH(a.finalize("dangling"), "unbound label");
}

TEST(AssemblerDeath, DoubleBindRejected) {
  Assembler a;
  auto label = a.new_label();
  a.bind(label);
  EXPECT_DEATH(a.bind(label), "already bound");
}

TEST(Disasm, FlexStepCustomMnemonics) {
  EXPECT_NE(disasm(make_c(Opcode::kCApply)).find("c.apply"), std::string::npos);
  EXPECT_NE(disasm(make_c(Opcode::kCJal)).find("c.jal"), std::string::npos);
  EXPECT_NE(disasm(make_r(Opcode::kGIdsContain, 1, 2, 0)).find("g.ids.contain"),
            std::string::npos);
}

TEST(Disasm, ProgramListingHasAddresses) {
  Assembler a(0x1000);
  a.nop();
  a.halt();
  const auto prog = a.finalize("listing");
  const std::string text = disasm(prog);
  EXPECT_NE(text.find("00001000"), std::string::npos);
  EXPECT_NE(text.find("halt"), std::string::npos);
}

}  // namespace
}  // namespace flexstep::isa
