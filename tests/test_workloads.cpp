// Workload generator tests: profile coverage, determinism, mix realisation,
// and the Nzdc transformation's semantic equivalence.
#include <gtest/gtest.h>

#include <map>

#include "arch/core.h"
#include "arch/memory.h"
#include "arch/program_image.h"
#include "workloads/nzdc.h"
#include "workloads/profile.h"
#include "workloads/program_builder.h"

namespace flexstep::workloads {
namespace {

arch::ArchState run_to_halt(const isa::Program& program, u64 max_insts = 20'000'000) {
  arch::Memory memory;
  arch::ImageRegistry images;
  images.load(memory, program);
  arch::Core core(0, arch::CoreConfig{}, memory, images, nullptr);
  core.set_pc(program.entry());
  core.run(max_insts);
  EXPECT_EQ(core.status(), arch::Core::Status::kHalted);
  return core.capture_state();
}

BuildOptions tiny(u32 iterations = 3, u64 seed = 1) {
  BuildOptions options;
  options.iterations_override = iterations;
  options.seed = seed;
  return options;
}

TEST(Profiles, SuitesHaveThePaperCounts) {
  EXPECT_EQ(parsec_profiles().size(), 8u);   // Fig. 4(a)
  EXPECT_EQ(specint_profiles().size(), 11u); // Fig. 4(b)
}

TEST(Profiles, NzdcBuildFailuresMatchThePaper) {
  // Paper Sec. VI-A: nZDC fails to compile bodytrack, ferret and gcc.
  EXPECT_FALSE(find_profile("bodytrack").nzdc_compiles);
  EXPECT_FALSE(find_profile("ferret").nzdc_compiles);
  EXPECT_FALSE(find_profile("gcc").nzdc_compiles);
  EXPECT_TRUE(find_profile("blackscholes").nzdc_compiles);
  EXPECT_TRUE(find_profile("mcf").nzdc_compiles);
}

TEST(Profiles, MixFractionsAreSane) {
  for (const auto& profiles : {parsec_profiles(), specint_profiles()}) {
    for (const auto& p : profiles) {
      const double sum =
          p.f_load + p.f_store + p.f_branch + p.f_mul + p.f_div + p.f_amo;
      EXPECT_LT(sum, 0.9) << p.name;
      EXPECT_GT(p.f_load, 0.0) << p.name;
    }
  }
}

TEST(Builder, DeterministicForSeed) {
  const auto& profile = find_profile("bzip2");
  const auto a = build_workload(profile, tiny(3, 7));
  const auto b = build_workload(profile, tiny(3, 7));
  ASSERT_EQ(a.code.size(), b.code.size());
  EXPECT_EQ(a.code, b.code);
}

TEST(Builder, DifferentSeedsDiffer) {
  const auto& profile = find_profile("bzip2");
  const auto a = build_workload(profile, tiny(3, 7));
  const auto b = build_workload(profile, tiny(3, 8));
  EXPECT_NE(a.code, b.code);
}

TEST(Builder, ProgramsHaltAndProduceState) {
  for (const char* name : {"blackscholes", "dedup", "mcf", "gobmk"}) {
    const auto program = build_workload(find_profile(name), tiny());
    const auto state = run_to_halt(program);
    // Accumulators hold nontrivial values.
    EXPECT_NE(state.regs[14] | state.regs[15] | state.regs[3], 0u) << name;
  }
}

TEST(Builder, RegistersStayWithinNzdcRange) {
  for (const auto& p : parsec_profiles()) {
    const auto program = build_workload(p, tiny());
    for (const auto& inst : program.code) {
      EXPECT_LT(inst.rd, 16) << p.name;
      EXPECT_LT(inst.rs1, 16) << p.name;
      EXPECT_LT(inst.rs2, 16) << p.name;
    }
  }
}

TEST(Builder, RealisesTheInstructionMix) {
  const auto& profile = find_profile("sjeng");
  const auto program = build_workload(profile, tiny(1));
  std::map<isa::MemKind, u32> kinds;
  u32 branches = 0;
  for (const auto& inst : program.code) {
    ++kinds[isa::opcode_mem_kind(inst.op)];
    branches += isa::is_cond_branch(inst.op);
  }
  const double n = static_cast<double>(program.code.size());
  // Each load slot expands to 3-4 instructions (address + load + consume), so
  // the per-instruction load fraction sits between f_load/4 and f_load.
  EXPECT_GT(kinds[isa::MemKind::kLoad] / n, profile.f_load / 4.0);
  EXPECT_LT(kinds[isa::MemKind::kLoad] / n, profile.f_load);
  EXPECT_GT(branches / n, profile.f_branch * 0.5);
}

TEST(Builder, EstimatedInstructionsTracksActual) {
  const auto& profile = find_profile("hmmer");
  BuildOptions options = tiny(10);
  const auto program = build_workload(profile, options);
  const auto state = run_to_halt(program);
  (void)state;
  const u64 estimate = estimated_instructions(profile, options);
  EXPECT_GT(estimate, 10u * profile.body_instructions / 2);
}

// ---- Nzdc transformation ----

TEST(Nzdc, ShadowMapping) {
  EXPECT_EQ(nzdc_shadow(3), 18);
  EXPECT_EQ(nzdc_shadow(15), 30);
  EXPECT_EQ(nzdc_shadow(0), 0);
}

TEST(Nzdc, RejectsProgramsUsingShadowRegisters) {
  isa::Assembler a;
  a.addi(20, 0, 1);  // x20 is shadow space
  a.halt();
  EXPECT_FALSE(nzdc_supported(a.finalize("bad")));
}

TEST(Nzdc, ExpansionFactorInRange) {
  const auto program = build_workload(find_profile("swaptions"), tiny(2));
  const auto transformed = nzdc_transform(program);
  const double factor =
      static_cast<double>(transformed.code.size()) / program.code.size();
  EXPECT_GT(factor, 1.4);
  EXPECT_LT(factor, 2.6);
}

class NzdcEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(NzdcEquivalence, TransformedProgramComputesIdenticalResults) {
  const auto& profile = find_profile(GetParam());
  if (!profile.nzdc_compiles) GTEST_SKIP();
  const auto program = build_workload(profile, tiny(3));
  const auto transformed = nzdc_transform(program);

  const auto original_state = run_to_halt(program);
  const auto nzdc_state = run_to_halt(transformed);
  // All original computational registers (x3..x15) must match, and every
  // shadow must equal its master (no divergence, no false errors).
  for (u8 r = 3; r <= 15; ++r) {
    EXPECT_EQ(nzdc_state.regs[r], original_state.regs[r]) << "x" << int(r);
    EXPECT_EQ(nzdc_state.regs[nzdc_shadow(r)], nzdc_state.regs[r])
        << "shadow of x" << int(r);
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, NzdcEquivalence,
                         ::testing::Values("blackscholes", "dedup", "swaptions",
                                           "bzip2", "mcf", "hmmer", "libquantum",
                                           "streamcluster"));

TEST(Nzdc, ErrorHandlerUnreachableInFaultFreeRun) {
  // The transformed program ends with the error handler (halt); a fault-free
  // run must halt at the *program's* halt, i.e. execute every iteration.
  const auto program = build_workload(find_profile("hmmer"), tiny(2));
  const auto transformed = nzdc_transform(program);

  arch::Memory memory;
  arch::ImageRegistry images;
  images.load(memory, transformed);
  arch::Core core(0, arch::CoreConfig{}, memory, images, nullptr);
  core.set_pc(transformed.entry());
  core.run(20'000'000);
  EXPECT_EQ(core.status(), arch::Core::Status::kHalted);
  // The error handler is the final instruction; halting there would leave
  // pc at the last slot. The normal halt sits earlier.
  const Addr error_handler_pc = transformed.code_base + (transformed.code.size() - 1) * 4;
  EXPECT_NE(core.pc(), error_handler_pc);
}

}  // namespace
}  // namespace flexstep::workloads
