// VerifiedExecution driver tests on real workload programs, plus fault
// detection end-to-end sanity.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "soc/soc.h"
#include "soc/verified_run.h"
#include "workloads/profile.h"
#include "workloads/program_builder.h"

namespace flexstep {
namespace {

using soc::Soc;
using soc::SocConfig;
using soc::VerifiedExecution;
using soc::VerifiedRunConfig;

isa::Program tiny_workload(const char* name, u32 iterations = 3) {
  workloads::BuildOptions options;
  options.iterations_override = iterations;
  return workloads::build_workload(workloads::find_profile(name), options);
}

TEST(VerifiedRun, WorkloadVerifiesCleanly) {
  Soc soc(SocConfig::paper_default(2));
  VerifiedExecution exec(soc, VerifiedRunConfig{0, {1}});
  exec.prepare(tiny_workload("swaptions", 8));
  const auto stats = exec.run();
  EXPECT_GT(stats.main_instructions, 5000u);
  EXPECT_EQ(stats.segments_failed, 0u);
  EXPECT_EQ(stats.segments_verified, stats.segments_produced);
  EXPECT_EQ(soc.fabric().reporter().detections(), 0u);
}

TEST(VerifiedRun, DeterministicAcrossRuns) {
  Cycle cycles[2];
  for (int i = 0; i < 2; ++i) {
    Soc soc(SocConfig::paper_default(2));
    VerifiedExecution exec(soc, VerifiedRunConfig{0, {1}});
    exec.prepare(tiny_workload("hmmer"));
    cycles[i] = exec.run().main_cycles;
  }
  EXPECT_EQ(cycles[0], cycles[1]);
}

TEST(VerifiedRun, EveryParsecProfileRunsVerified) {
  for (const auto& profile : workloads::parsec_profiles()) {
    Soc soc(SocConfig::paper_default(2));
    VerifiedExecution exec(soc, VerifiedRunConfig{0, {1}});
    workloads::BuildOptions options;
    options.iterations_override = 2;
    exec.prepare(workloads::build_workload(profile, options));
    const auto stats = exec.run();
    EXPECT_EQ(stats.segments_failed, 0u) << profile.name;
    EXPECT_EQ(soc.fabric().reporter().detections(), 0u) << profile.name;
  }
}

TEST(VerifiedRun, InjectedFaultsAreDetected) {
  Soc soc(SocConfig::paper_default(2));
  VerifiedExecution exec(soc, VerifiedRunConfig{0, {1}});
  exec.prepare(tiny_workload("swaptions", 60));

  // Inject faults one at a time as the run progresses; individual flips can
  // be masked (dead values), but across several injections the checker must
  // attribute at least one detection.
  Rng rng(99);
  u32 injected = 0;
  u32 guard = 0;
  std::optional<fs::InjectedFault> outstanding;
  while (exec.step_round() && ++guard < 10'000'000) {
    if (soc.fabric().reporter().attributed_detections() > 0) break;
    auto channels = soc.fabric().channels();
    if (channels.empty()) continue;
    fs::Channel* ch = channels.front();
    if (outstanding.has_value()) {
      if (!ch->fault_pending()) {
        outstanding.reset();  // detected (attributed) — loop exits above
      } else if (ch->last_popped_seq() > outstanding->segment_end_seq) {
        ch->clear_fault();  // masked: the segment verified clean
        outstanding.reset();
      }
    }
    if (!outstanding.has_value() && injected < 50 && ch->size() > 32) {
      outstanding = ch->inject_random_fault(rng, soc.max_cycle());
      if (outstanding.has_value()) ++injected;
    }
  }
  ASSERT_GE(injected, 1u);
  ASSERT_GE(soc.fabric().reporter().attributed_detections(), 1u);
  bool found_attributed = false;
  for (const auto& event : soc.fabric().reporter().events()) {
    if (event.attributed) {
      found_attributed = true;
      EXPECT_GT(event.latency, 0u);
      break;
    }
  }
  EXPECT_TRUE(found_attributed);
}

TEST(VerifiedRun, TripleModeDetectsFaultInOneChannel) {
  // One-to-two verification: each checker holds an independent copy of the
  // stream; corrupting one link is caught by that checker while the other
  // verifies clean (the redundancy TCLS provides, without the binding).
  Soc soc(SocConfig::paper_default(3));
  VerifiedExecution exec(soc, VerifiedRunConfig{0, {1, 2}});
  exec.prepare(tiny_workload("swaptions", 40));

  Rng rng(7);
  u32 injected = 0;
  u32 guard = 0;
  std::optional<fs::InjectedFault> outstanding;
  while (exec.step_round() && ++guard < 10'000'000) {
    if (soc.fabric().reporter().attributed_detections() > 0) break;
    auto channels = soc.fabric().channels();
    if (channels.size() < 2) continue;
    fs::Channel* ch = channels.front();  // the main->checker1 link only
    if (outstanding.has_value()) {
      if (!ch->fault_pending()) {
        outstanding.reset();
      } else if (ch->pending_fault().segment_end_seq != fs::kUnresolvedSegmentEnd &&
                 ch->last_popped_seq() > ch->pending_fault().segment_end_seq) {
        ch->clear_fault();
        outstanding.reset();
      }
    }
    if (!outstanding.has_value() && injected < 40 && ch->size() > 16) {
      outstanding = ch->inject_fault_at_tail(rng, soc.max_cycle());
      if (outstanding.has_value()) ++injected;
    }
  }
  ASSERT_GE(soc.fabric().reporter().attributed_detections(), 1u);
  // The detection came from checker 1 (the corrupted link).
  bool from_checker1 = false;
  for (const auto& event : soc.fabric().reporter().events()) {
    if (event.attributed) from_checker1 = event.checker == 1;
  }
  EXPECT_TRUE(from_checker1);
  exec.run();  // drain
  // Checker 2's copy was uncorrupted: it never flagged anything.
  EXPECT_EQ(soc.unit(2).segments_failed(), 0u);
}

TEST(VerifiedRun, OsTicksCanBeDisabled) {
  const auto program = tiny_workload("hmmer", 30);
  Cycle with_ticks = 0;
  Cycle without_ticks = 0;
  {
    Soc soc(SocConfig::paper_default(2));
    VerifiedRunConfig config{0, {1}};
    config.tick_period = us_to_cycles(50.0);  // aggressive ticking
    VerifiedExecution exec(soc, config);
    exec.prepare(program);
    with_ticks = exec.run().main_cycles;
  }
  {
    Soc soc(SocConfig::paper_default(2));
    VerifiedRunConfig config{0, {1}};
    config.os_ticks = false;
    VerifiedExecution exec(soc, config);
    exec.prepare(program);
    without_ticks = exec.run().main_cycles;
  }
  EXPECT_GT(with_ticks, without_ticks);
}

TEST(VerifiedRun, StatsIpcPositive) {
  Soc soc(SocConfig::paper_default(2));
  VerifiedExecution exec(soc, VerifiedRunConfig{0, {1}});
  exec.prepare(tiny_workload("bzip2"));
  const auto stats = exec.run();
  EXPECT_GT(stats.ipc(), 0.1);  // Rocket-class in-order with 16 KB L1s
  EXPECT_LE(stats.ipc(), 1.0);
}

TEST(VerifiedRun, RunUntilReportsExitReason) {
  // The building blocks the quantum drivers' progress accounting rests on:
  // every run_until() return is classified, including the zero-progress
  // cycle-bound return the drivers must never produce from their own bounds.
  Soc soc(SocConfig::paper_default(1));
  VerifiedExecution exec(soc, VerifiedRunConfig{0, {}});
  exec.prepare(tiny_workload("swaptions", 4));
  arch::Core& core = soc.core(0);
  EXPECT_EQ(core.last_run_exit(), arch::RunExit::kNone);

  core.run_until(arch::kNoCycleBound, 100);
  EXPECT_EQ(core.last_run_exit(), arch::RunExit::kInstretBound);

  const Cycle now = core.cycle();
  const u64 instret = core.instret();
  core.run_until(now);  // bound at (or before) the current clock
  EXPECT_EQ(core.last_run_exit(), arch::RunExit::kCycleBound);
  EXPECT_EQ(core.cycle(), now);        // zero progress, classified as such
  EXPECT_EQ(core.instret(), instret);

  core.run_until(arch::kNoCycleBound);  // to completion
  EXPECT_EQ(core.last_run_exit(), arch::RunExit::kStatusChange);
  EXPECT_NE(core.status(), arch::Core::Status::kRunning);
}

using VerifiedRunDeathTest = testing::Test;

TEST(VerifiedRunDeathTest, QuantumDriverCrashesOnDeadlockInsteadOfSpinning) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Park the main core mid-job without halting it: the stream stays open, the
  // checker drains what is queued and parks, and no core is ever runnable
  // again. The driver must trip its deadlock FLEX_CHECK (after the double
  // pump_checkers retry) rather than spin forever.
  auto deadlock = [](soc::Engine engine) {
    Soc soc(SocConfig::paper_default(2));
    VerifiedRunConfig config{0, {1}};
    config.engine = engine;
    VerifiedExecution exec(soc, config);
    exec.prepare(tiny_workload("swaptions", 20));
    exec.advance(30'000);
    soc.core(0).set_idle();  // kernel parked the main core; nobody resumes it
    while (exec.advance(10'000)) {
    }
  };
  EXPECT_DEATH(deadlock(soc::Engine::kQuantum), "co-simulation deadlock");
  EXPECT_DEATH(deadlock(soc::Engine::kQuantumBounded), "co-simulation deadlock");
  EXPECT_DEATH(deadlock(soc::Engine::kStepwise), "co-simulation deadlock");
}

}  // namespace
}  // namespace flexstep
