// Equivalence proof for the batched execution engine: a run()-driven
// execution must be bit-identical to a step()-driven one — same ArchState
// trace, same cycle counts, same DBC stream, same detection outcomes — for
// plain, dual-checker and triple-checker co-simulations, with OS ticks on.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "arch/trace.h"
#include "common/rng.h"
#include "fault/campaign.h"
#include "sim/scenario.h"
#include "soc/soc.h"
#include "soc/verified_run.h"
#include "workloads/profile.h"
#include "workloads/program_builder.h"

namespace flexstep {
namespace {

using arch::ArchState;
using arch::Core;
using soc::Engine;
using soc::Soc;
using soc::SocConfig;
using soc::VerifiedExecution;
using soc::VerifiedRunConfig;

isa::Program tiny_workload(const char* name, u32 iterations = 3) {
  workloads::BuildOptions options;
  options.iterations_override = iterations;
  return workloads::build_workload(workloads::find_profile(name), options);
}

/// Everything externally observable about one co-simulated run.
struct Outcome {
  soc::RunStats stats;
  ArchState main_state;
  std::vector<Cycle> cycles;       ///< Per participating core.
  std::vector<u64> instret;        ///< Per participating core.
  std::vector<u64> replayed;       ///< Per checker.
  u64 detections = 0;
  u64 attributed = 0;
  std::vector<Cycle> event_latencies;
};

/// Field-wise equality except max_channel_occupancy — the one wall-order
/// diagnostic, handled by each caller per its engine's contract.
void expect_equal_except_occupancy(const Outcome& a, const Outcome& b) {
  EXPECT_EQ(a.stats.main_cycles, b.stats.main_cycles);
  EXPECT_EQ(a.stats.main_instructions, b.stats.main_instructions);
  EXPECT_EQ(a.stats.completion_cycles, b.stats.completion_cycles);
  EXPECT_EQ(a.stats.segments_produced, b.stats.segments_produced);
  EXPECT_EQ(a.stats.segments_verified, b.stats.segments_verified);
  EXPECT_EQ(a.stats.segments_failed, b.stats.segments_failed);
  EXPECT_EQ(a.stats.mem_entries, b.stats.mem_entries);
  EXPECT_EQ(a.stats.backpressure_events, b.stats.backpressure_events);
  EXPECT_EQ(a.main_state, b.main_state);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.instret, b.instret);
  EXPECT_EQ(a.replayed, b.replayed);
  EXPECT_EQ(a.detections, b.detections);
  EXPECT_EQ(a.attributed, b.attributed);
  EXPECT_EQ(a.event_latencies, b.event_latencies);
}

void expect_equal(const Outcome& a, const Outcome& b) {
  expect_equal_except_occupancy(a, b);
  EXPECT_EQ(a.stats.max_channel_occupancy, b.stats.max_channel_occupancy);
}

Outcome collect(Soc& soc, VerifiedExecution& exec, const VerifiedRunConfig& config) {
  Outcome out;
  out.stats = exec.stats();
  out.main_state = soc.core(config.main_core).capture_state();
  out.cycles.push_back(soc.core(config.main_core).cycle());
  out.instret.push_back(soc.core(config.main_core).instret());
  for (CoreId id : config.checkers) {
    out.cycles.push_back(soc.core(id).cycle());
    out.instret.push_back(soc.core(id).instret());
    out.replayed.push_back(soc.unit(id).replayed_instructions());
  }
  out.detections = soc.fabric().reporter().detections();
  out.attributed = soc.fabric().reporter().attributed_detections();
  for (const auto& event : soc.fabric().reporter().events()) {
    out.event_latencies.push_back(event.latency);
  }
  return out;
}

Outcome run_engine(const isa::Program& program, u32 cores,
                   std::vector<CoreId> checkers, Engine engine,
                   SocConfig soc_config, VerifiedRunConfig config = {},
                   bool fused = true) {
  soc_config.num_cores = cores;
  config.main_core = 0;
  config.checkers = std::move(checkers);
  config.engine = engine;
  Soc soc(soc_config);
  // fused == false pins the pre-fusion baseline (memory ops bail to step()
  // inside batched spans); everything observable must stay identical.
  for (u32 c = 0; c < cores; ++c) soc.core(c).set_fused_batching(fused);
  VerifiedExecution exec(soc, config);
  exec.prepare(program);
  exec.run();
  return collect(soc, exec, config);
}

Outcome run_engine(const isa::Program& program, u32 cores,
                   std::vector<CoreId> checkers, Engine engine) {
  return run_engine(program, cores, std::move(checkers), engine,
                    SocConfig::paper_default(cores));
}

// ---------------------------------------------------------------------------
// Standalone core: the full per-instruction ArchState trace matches at every
// commit boundary regardless of the run() batch size.
// ---------------------------------------------------------------------------

TEST(ExecEngine, IdenticalArchStateTraceAtEveryCommit) {
  const auto program = tiny_workload("swaptions", 12);

  // Reference: step() one instruction at a time, recording each state.
  Soc ref_soc(SocConfig::paper_default(1));
  VerifiedExecution ref(ref_soc, VerifiedRunConfig{0, {}});
  ref.prepare(program);
  Core& ref_core = ref_soc.core(0);
  std::vector<ArchState> trace;
  std::vector<Cycle> trace_cycles;
  while (ref_core.status() == Core::Status::kRunning) {
    ref_core.step();
    trace.push_back(ref_core.capture_state());
    trace_cycles.push_back(ref_core.cycle());
  }
  ASSERT_GT(trace.size(), 10'000u);

  // Batched: run() in uneven chunk sizes; every chunk boundary must land on
  // a state the stepwise trace visited, at the same instret and cycle.
  Soc soc(SocConfig::paper_default(1));
  VerifiedExecution exec(soc, VerifiedRunConfig{0, {}});
  exec.prepare(program);
  Core& core = soc.core(0);
  const u64 chunks[] = {1, 7, 64, 1000, 38, 5, 100'000};
  std::size_t chunk_index = 0;
  u64 committed = 0;
  while (core.status() == Core::Status::kRunning) {
    const u64 before = core.instret();
    core.run(chunks[chunk_index++ % std::size(chunks)]);
    committed += core.instret() - before;
    ASSERT_GT(core.instret(), 0u);
    const std::size_t at = static_cast<std::size_t>(core.instret()) - 1;
    ASSERT_LT(at, trace.size());
    EXPECT_EQ(core.capture_state(), trace[at]) << "diverged at instret " << core.instret();
    EXPECT_EQ(core.cycle(), trace_cycles[at]) << "cycle diverged at instret " << core.instret();
  }
  EXPECT_EQ(committed, trace.size());
  EXPECT_EQ(core.capture_state(), trace.back());
  EXPECT_EQ(core.cycle(), trace_cycles.back());
}

TEST(ExecEngine, SlowOpAtColdFetchLineChargesMissIdentically) {
  // Regression: a slow-path opcode (FENCE) sitting at the start of a cold
  // 64 B fetch line must charge the L1I miss penalty in the batched engine
  // exactly as step() does — the fast path must not touch the fetch-line
  // state before bailing out. 128 KiB of straight-line code (8× the 16 KiB
  // L1I) guarantees every line start misses, and every line starts slow.
  isa::Assembler a;
  for (int line = 0; line < 2048; ++line) {
    a.fence();
    for (int i = 0; i < 15; ++i) a.addi(5, 5, 1);
  }
  a.halt();
  const isa::Program program = a.finalize("cold-line-fence");

  auto execute = [&](bool stepwise) {
    Soc soc(SocConfig::paper_default(1));
    soc.load_program(program);
    Core& core = soc.core(0);
    core.set_pc(program.entry());
    if (stepwise) {
      while (core.status() == Core::Status::kRunning) core.step();
    } else {
      core.run(~u64{0});
    }
    return std::pair<Cycle, u64>{core.cycle(), core.instret()};
  };
  const auto [step_cycles, step_insts] = execute(true);
  const auto [run_cycles, run_insts] = execute(false);
  EXPECT_EQ(step_insts, run_insts);
  EXPECT_EQ(step_cycles, run_cycles);
  // Sanity: the workload really was miss-dominated (≥ 2048 line misses at
  // ≥ L2 latency each), so a dropped penalty would be visible.
  EXPECT_GT(step_cycles, step_insts + 2048 * 40);
}

// ---------------------------------------------------------------------------
// Co-simulation: plain / dual / triple runs, OS ticks enabled.
// ---------------------------------------------------------------------------

TEST(ExecEngine, PlainRunIdentical) {
  const auto program = tiny_workload("swaptions", 40);
  const auto stepwise = run_engine(program, 1, {}, Engine::kStepwise);
  const auto quantum = run_engine(program, 1, {}, Engine::kQuantum);
  ASSERT_GT(stepwise.stats.main_instructions, 10'000u);
  expect_equal(stepwise, quantum);
}

TEST(ExecEngine, DualCheckerRunIdentical) {
  const auto program = tiny_workload("swaptions", 40);
  const auto stepwise = run_engine(program, 2, {1}, Engine::kStepwise);
  const auto quantum = run_engine(program, 2, {1}, Engine::kQuantum);
  ASSERT_GT(stepwise.stats.segments_produced, 3u);
  expect_equal(stepwise, quantum);
}

TEST(ExecEngine, TripleCheckerRunIdentical) {
  const auto program = tiny_workload("swaptions", 40);
  const auto stepwise = run_engine(program, 3, {1, 2}, Engine::kStepwise);
  const auto quantum = run_engine(program, 3, {1, 2}, Engine::kQuantum);
  ASSERT_GT(stepwise.stats.segments_produced, 3u);
  expect_equal(stepwise, quantum);
}

TEST(ExecEngine, EveryProfileDualIdentical) {
  for (const auto& profile : workloads::parsec_profiles()) {
    workloads::BuildOptions options;
    options.iterations_override = 2;
    const auto program = workloads::build_workload(profile, options);
    const auto stepwise = run_engine(program, 2, {1}, Engine::kStepwise);
    const auto quantum = run_engine(program, 2, {1}, Engine::kQuantum);
    SCOPED_TRACE(profile.name);
    expect_equal(stepwise, quantum);
  }
}

// ---------------------------------------------------------------------------
// kQuantumBounded: the relaxed-skew engine must stay bit-identical to
// stepwise in every verdict, count and cycle — the relaxation is only taken
// where it is provably invisible. The single exception is
// max_channel_occupancy, a wall-order diagnostic sampled at push time:
// deferring consumer pops within the skew window can only raise it, never
// change any decision derived from it.
// ---------------------------------------------------------------------------

void expect_equal_relaxed(const Outcome& ref, const Outcome& relaxed) {
  expect_equal_except_occupancy(ref, relaxed);
  EXPECT_GE(relaxed.stats.max_channel_occupancy, ref.stats.max_channel_occupancy);
}

TEST(ExecEngineBounded, PlainDualTripleIdenticalToStepwise) {
  const auto program = tiny_workload("swaptions", 40);
  const struct {
    u32 cores;
    std::vector<CoreId> checkers;
  } topologies[] = {{1, {}}, {2, {1}}, {3, {1, 2}}};
  for (const auto& topo : topologies) {
    SCOPED_TRACE(topo.cores);
    const auto stepwise = run_engine(program, topo.cores, topo.checkers,
                                     Engine::kStepwise);
    const auto bounded = run_engine(program, topo.cores, topo.checkers,
                                    Engine::kQuantumBounded);
    ASSERT_GT(stepwise.stats.main_instructions, 10'000u);
    expect_equal_relaxed(stepwise, bounded);
  }
}

TEST(ExecEngineBounded, EveryProfileDualIdentical) {
  for (const auto& profile : workloads::parsec_profiles()) {
    workloads::BuildOptions options;
    options.iterations_override = 2;
    const auto program = workloads::build_workload(profile, options);
    const auto stepwise = run_engine(program, 2, {1}, Engine::kStepwise);
    const auto bounded = run_engine(program, 2, {1}, Engine::kQuantumBounded);
    SCOPED_TRACE(profile.name);
    expect_equal_relaxed(stepwise, bounded);
  }
}

TEST(ExecEngineBounded, TraceOffDualTripleIdentical) {
  // The trace-on variants run above (traces are on by default); this pins the
  // trace-off half of the matrix.
  const auto program = tiny_workload("swaptions", 40);
  SocConfig soc_config = SocConfig::paper_default(3);
  soc_config.core.trace.enabled = false;
  for (const std::vector<CoreId>& checkers :
       {std::vector<CoreId>{1}, std::vector<CoreId>{1, 2}}) {
    SCOPED_TRACE(checkers.size());
    const u32 cores = static_cast<u32>(checkers.size()) + 1;
    const auto stepwise =
        run_engine(program, cores, checkers, Engine::kStepwise, soc_config);
    const auto bounded =
        run_engine(program, cores, checkers, Engine::kQuantumBounded, soc_config);
    expect_equal_relaxed(stepwise, bounded);
  }
}

TEST(ExecEngineBounded, AggressiveOsTicksIdentical) {
  const auto program = tiny_workload("hmmer", 20);
  VerifiedRunConfig config;
  config.tick_period = us_to_cycles(50.0);
  const auto stepwise = run_engine(program, 2, {1}, Engine::kStepwise,
                                   SocConfig::paper_default(2), config);
  const auto bounded = run_engine(program, 2, {1}, Engine::kQuantumBounded,
                                  SocConfig::paper_default(2), config);
  expect_equal_relaxed(stepwise, bounded);
}

TEST(ExecEngineBounded, TinyChannelBackpressureIdentical) {
  // A 64-entry channel keeps the producer near the backpressure threshold:
  // the relaxed engine must take its strict fallback and reproduce every
  // block/resume cycle-for-cycle.
  const auto program = tiny_workload("bzip2", 10);
  SocConfig soc_config = SocConfig::paper_default(2);
  soc_config.flexstep.channel_capacity = 64;
  const auto stepwise = run_engine(program, 2, {1}, Engine::kStepwise, soc_config);
  const auto bounded =
      run_engine(program, 2, {1}, Engine::kQuantumBounded, soc_config);
  EXPECT_GT(stepwise.stats.backpressure_events, 0u);
  expect_equal_relaxed(stepwise, bounded);
}

TEST(ExecEngineBounded, RelaxedBurstsEngageAndSkewStaysBounded) {
  // Without this, every proof above would be vacuous: a bounded engine that
  // always fell back to the strict bound would trivially match stepwise.
  const auto program = tiny_workload("swaptions", 40);
  VerifiedRunConfig config;
  config.main_core = 0;
  config.checkers = {1};
  config.engine = Engine::kQuantumBounded;
  Soc soc(SocConfig::paper_default(2));
  VerifiedExecution exec(soc, config);
  exec.prepare(program);
  exec.run();

  const soc::CosimStats& cosim = exec.cosim_stats();
  EXPECT_GT(cosim.relaxed_bursts, 0u);
  // Relaxed bursts dominate the schedule (the strict fallback is the
  // exception, not the rule) — that is where the speedup comes from.
  EXPECT_GT(cosim.relaxed_bursts, cosim.strict_fallbacks);
  // Cross-core interaction hooks really end bursts (segment publishes at
  // minimum): a schedule with no hook breaks would mean the burst-end
  // machinery the correctness argument leans on never engaged.
  EXPECT_GT(cosim.hook_breaks, 0u);
  // Far fewer scheduling rounds than instructions: bursts really batch.
  EXPECT_LT(cosim.rounds, exec.total_instret() / 20);
  // Declared skew bound: one burst may overrun the strict leapfrog by at most
  // skew_instructions commits; at a worst-case per-instruction cost (miss +
  // mispredict) that caps the clock lead a burst can build.
  EXPECT_GT(cosim.max_skew_cycles, 0u);
  EXPECT_LE(cosim.max_skew_cycles, exec.skew_instructions() * 64);
}

TEST(ExecEngineBounded, SnapshotForkRestoreBitIdentical) {
  // Snapshot mid-run under the relaxed engine (the capture lands in a skewed
  // state): run-on, fork and in-place restore must evolve bit-identically,
  // and all of them must still land on the stepwise result.
  const auto program = tiny_workload("swaptions", 40);
  sim::Session session = sim::Scenario()
                             .program(program)
                             .dual()
                             .engine(Engine::kQuantumBounded)
                             .build();
  ASSERT_TRUE(session.advance(40'000));
  const soc::Snapshot warm = session.snapshot();

  sim::Session fork = session.fork(warm);
  const soc::RunStats run_on = session.run();
  const soc::RunStats forked = fork.run();
  EXPECT_EQ(run_on, forked);

  session.restore(warm);
  const soc::RunStats rerun = session.run();
  EXPECT_EQ(run_on, rerun);

  const auto stepwise = run_engine(program, 2, {1}, Engine::kStepwise);
  EXPECT_EQ(stepwise.stats.main_cycles, run_on.main_cycles);
  EXPECT_EQ(stepwise.stats.completion_cycles, run_on.completion_cycles);
  EXPECT_EQ(stepwise.stats.segments_verified, run_on.segments_verified);
  EXPECT_EQ(stepwise.stats.segments_failed, run_on.segments_failed);
  EXPECT_EQ(stepwise.stats.backpressure_events, run_on.backpressure_events);
}

TEST(ExecEngineBounded, SnapshotForkMidSegmentPartialProduceIdentical) {
  // Snapshot at an instret target chosen to land INSIDE a segment: the DBC
  // holds a partially produced segment (open tail, no SegmentEnd yet), so the
  // fused produce cursor has published only a prefix of the segment's MAL
  // records. Fork, run-on and in-place restore must evolve bit-identically —
  // the cursor must not leak staged state across the capture — and still land
  // on the stepwise result.
  const auto program = tiny_workload("swaptions", 40);
  sim::Session session = sim::Scenario()
                             .program(program)
                             .dual()
                             .engine(Engine::kQuantumBounded)
                             .build();
  ASSERT_TRUE(session.advance(12'345));  // deliberately not segment-aligned
  auto channels = session.soc().fabric().channels();
  ASSERT_FALSE(channels.empty());
  fs::Channel* ch = channels.front();
  // The capture really is mid-segment: the stream's tail is a MAL record with
  // its SegmentEnd still unpushed. (If a workload change ever aligns 12'345
  // with a boundary, pick a different offset — the seam is the point.)
  ASSERT_FALSE(ch->empty());
  ASSERT_EQ(ch->back().kind, fs::StreamItem::Kind::kMem);
  const soc::Snapshot warm = session.snapshot();

  sim::Session fork = session.fork(warm);
  const soc::RunStats run_on = session.run();
  const soc::RunStats forked = fork.run();
  EXPECT_EQ(run_on, forked);

  session.restore(warm);
  const soc::RunStats rerun = session.run();
  EXPECT_EQ(run_on, rerun);

  const auto stepwise = run_engine(program, 2, {1}, Engine::kStepwise);
  EXPECT_EQ(stepwise.stats.main_cycles, run_on.main_cycles);
  EXPECT_EQ(stepwise.stats.completion_cycles, run_on.completion_cycles);
  EXPECT_EQ(stepwise.stats.segments_verified, run_on.segments_verified);
  EXPECT_EQ(stepwise.stats.segments_failed, run_on.segments_failed);
  EXPECT_EQ(stepwise.stats.backpressure_events, run_on.backpressure_events);
}

TEST(ExecEngineBounded, HotTraceUnderChannelBackpressureIdentical) {
  // A tiny channel keeps the producer bouncing off the backpressure threshold
  // while traces are live: hot-trace dispatch must respect the staged-cursor
  // capacity (derived from the channel headroom scan) and reproduce every
  // block/resume decision cycle-for-cycle. The dispatch assertion keeps the
  // test honest — with traces silently disengaged it would prove nothing.
  const auto program = tiny_workload("swaptions", 40);
  SocConfig soc_config = SocConfig::paper_default(2);
  soc_config.flexstep.channel_capacity = 64;
  const auto stepwise = run_engine(program, 2, {1}, Engine::kStepwise, soc_config);

  VerifiedRunConfig config;
  config.main_core = 0;
  config.checkers = {1};
  config.engine = Engine::kQuantumBounded;
  Soc soc(soc_config);
  VerifiedExecution exec(soc, config);
  exec.prepare(program);
  exec.run();
  const auto bounded = collect(soc, exec, config);

  EXPECT_GT(bounded.stats.backpressure_events, 0u);
  const arch::TraceCache* traces = soc.core(0).trace_cache();
  ASSERT_NE(traces, nullptr);
  EXPECT_GT(traces->stats().dispatches, 0u);
  expect_equal_relaxed(stepwise, bounded);
}

TEST(ExecEngineBounded, FusedTraceTopologyMatrixIdentical) {
  // Full configuration matrix: plain/dual/triple x traces on/off x fused
  // on/off, each against the stepwise reference of the same SoC config. The
  // fused-off column is the pre-fusion baseline the bench measures against;
  // nothing observable may depend on which path executed the memory stream.
  const auto program = tiny_workload("swaptions", 40);
  const struct {
    u32 cores;
    std::vector<CoreId> checkers;
  } topologies[] = {{1, {}}, {2, {1}}, {3, {1, 2}}};
  for (const bool trace_on : {true, false}) {
    for (const auto& topo : topologies) {
      SocConfig soc_config = SocConfig::paper_default(topo.cores);
      soc_config.core.trace.enabled = trace_on;
      const auto stepwise = run_engine(program, topo.cores, topo.checkers,
                                       Engine::kStepwise, soc_config);
      for (const bool fused : {true, false}) {
        SCOPED_TRACE(std::string("cores=") + std::to_string(topo.cores) +
                     " trace=" + (trace_on ? "on" : "off") +
                     " fused=" + (fused ? "on" : "off"));
        const auto bounded =
            run_engine(program, topo.cores, topo.checkers,
                       Engine::kQuantumBounded, soc_config, {}, fused);
        expect_equal_relaxed(stepwise, bounded);
      }
    }
  }
}

TEST(ExecEngine, AggressiveOsTicksIdentical) {
  // Frequent kernel excursions exercise premature segment extermination,
  // replay suspension/resumption and staggered checker stalls.
  const auto program = tiny_workload("hmmer", 20);
  VerifiedRunConfig config;
  config.tick_period = us_to_cycles(50.0);
  const auto stepwise = run_engine(program, 2, {1}, Engine::kStepwise,
                                   SocConfig::paper_default(2), config);
  const auto quantum = run_engine(program, 2, {1}, Engine::kQuantum,
                                  SocConfig::paper_default(2), config);
  expect_equal(stepwise, quantum);
}

TEST(ExecEngine, TinyChannelBackpressureIdentical) {
  // A 64-entry channel forces real backpressure: blocked transitions and the
  // pop-that-frees-space wakeup path must match cycle-for-cycle.
  const auto program = tiny_workload("bzip2", 10);
  SocConfig soc_config = SocConfig::paper_default(2);
  soc_config.flexstep.channel_capacity = 64;
  const auto stepwise = run_engine(program, 2, {1}, Engine::kStepwise, soc_config);
  const auto quantum = run_engine(program, 2, {1}, Engine::kQuantum, soc_config);
  EXPECT_GT(stepwise.stats.backpressure_events, 0u);
  expect_equal(stepwise, quantum);
}

// ---------------------------------------------------------------------------
// Trace cache: engagement, write-invalidation, snapshot interplay, quantum
// breaks. Every path must degrade to the stepwise semantics bit-identically.
// ---------------------------------------------------------------------------

TEST(ExecEngine, TraceCacheEngagesAndStaysIdentical) {
  // The existing equivalence proofs run with traces live (they are on by
  // default); this pins down that they actually engage — a silently disabled
  // trace path would make those proofs vacuous. Long enough a run that the
  // record warmup (heat thresholds) amortises away.
  const auto program = tiny_workload("swaptions", 150);
  const auto stepwise = run_engine(program, 1, {}, Engine::kStepwise);

  VerifiedRunConfig config;
  config.main_core = 0;
  config.engine = Engine::kQuantum;
  Soc soc(SocConfig::paper_default(1));
  VerifiedExecution exec(soc, config);
  exec.prepare(program);
  exec.run();
  expect_equal(stepwise, collect(soc, exec, config));

  const arch::TraceCache* traces = soc.core(0).trace_cache();
  ASSERT_NE(traces, nullptr);
  EXPECT_GT(traces->stats().recorded, 0u);
  // The bulk of the run must flow through traces, not the stepwise loop.
  EXPECT_GT(traces->stats().insts_from_traces, soc.core(0).instret() / 2);
}

TEST(ExecEngine, StoreToTracedCodePageFlushesAndStaysIdentical) {
  // The hot loop stores into its own code page every iteration, so the
  // write-invalidation fires from INSIDE the executing trace: the flush must
  // defer to the next dispatch boundary (freeing the trace mid-replay would
  // be a use-after-free), drop the covering traces, and the run must stay
  // bit-identical to stepwise. Decoded images are the fetch source, so the
  // store does not change the executed program — only the derived traces.
  isa::Assembler a;
  a.li(5, 300);                                       // loop counter
  a.li(7, static_cast<i64>(isa::kDefaultCodeBase));   // address inside the code page
  auto loop = a.new_label();
  a.bind(loop);
  for (int i = 0; i < 12; ++i) a.addi(6, 6, 1);
  a.sd(6, 7, 0);                                      // store into traced code
  a.addi(5, 5, -1);
  a.bne(5, 0, loop);
  a.halt();
  const isa::Program program = a.finalize("code-page-store");

  Soc ref_soc(SocConfig::paper_default(1));
  ref_soc.load_program(program);
  Core& ref = ref_soc.core(0);
  ref.set_pc(program.entry());
  while (ref.status() == Core::Status::kRunning) ref.step();

  Soc soc(SocConfig::paper_default(1));
  soc.load_program(program);
  Core& core = soc.core(0);
  core.set_pc(program.entry());
  core.run(~u64{0});

  EXPECT_EQ(core.instret(), ref.instret());
  EXPECT_EQ(core.cycle(), ref.cycle());
  EXPECT_EQ(core.capture_state(), ref.capture_state());

  const arch::TraceCache* traces = core.trace_cache();
  ASSERT_NE(traces, nullptr);
  EXPECT_GT(traces->stats().recorded, 0u);
  EXPECT_GT(traces->stats().code_write_flushes, 0u);
}

TEST(ExecEngine, SnapshotRestoreMidHotRegionBitIdentical) {
  // Land a snapshot in the middle of hot (traced) execution: run-on, a fork,
  // and an in-place restore must all evolve bit-identically, and the restore
  // must flush the trace cache (derived state is never captured).
  sim::Session session =
      sim::Scenario().workload("swaptions").iterations(40).plain().build();
  ASSERT_TRUE(session.advance(30'000));
  const arch::TraceCache* traces = session.soc().core(0).trace_cache();
  ASSERT_NE(traces, nullptr);
  ASSERT_GT(traces->stats().dispatches, 0u);  // snapshot lands in hot execution
  const u64 flushes_before = traces->stats().full_flushes;
  const soc::Snapshot warm = session.snapshot();

  sim::Session fork = session.fork(warm);
  const soc::RunStats run_on = session.run();
  const soc::RunStats forked = fork.run();
  EXPECT_EQ(run_on, forked);

  session.restore(warm);
  EXPECT_EQ(traces->stats().full_flushes, flushes_before + 1);
  const soc::RunStats rerun = session.run();
  EXPECT_EQ(run_on, rerun);
}

namespace trace_quantum {
class QuantumEndingHandler final : public arch::TrapHandler {
 public:
  arch::TrapAction on_trap(arch::Core& core, arch::TrapCause cause) override {
    using arch::TrapAction;
    if (cause == arch::TrapCause::kEcall) {
      core.request_quantum_end();
      return {TrapAction::Kind::kResumeUser, 50};
    }
    if (cause == arch::TrapCause::kTaskExit) return {TrapAction::Kind::kHalt, 0};
    return {TrapAction::Kind::kResumeUser, 0};
  }
};
}  // namespace trace_quantum

TEST(ExecEngine, QuantumEndRequestInsideHotRegionEndsQuantumExactly) {
  // A hot ALU loop with an ECALL whose handler requests a quantum end (the
  // way FlexStep hooks end quanta on cross-core events). Every run_until()
  // must stop exactly one instruction past the ECALL commit — even though
  // the trace cache has ample cycle/instret headroom to keep going — and the
  // state at every quantum boundary must match a stepwise core.
  isa::Assembler a;
  a.li(5, 60);
  auto loop = a.new_label();
  a.bind(loop);
  for (int i = 0; i < 24; ++i) a.addi(6, 6, 1);
  a.ecall();
  a.addi(5, 5, -1);
  a.bne(5, 0, loop);
  a.halt();
  const isa::Program program = a.finalize("quantum-end");

  trace_quantum::QuantumEndingHandler handler;
  Soc soc(SocConfig::paper_default(1));
  soc.load_program(program);
  Core& core = soc.core(0);
  core.set_trap_handler(&handler);
  core.set_pc(program.entry());

  trace_quantum::QuantumEndingHandler ref_handler;
  Soc ref_soc(SocConfig::paper_default(1));
  ref_soc.load_program(program);
  Core& ref = ref_soc.core(0);
  ref.set_trap_handler(&ref_handler);
  ref.set_pc(program.entry());

  while (core.status() == Core::Status::kRunning) {
    core.run_until(arch::kNoCycleBound);
    while (ref.instret() < core.instret() && ref.status() == Core::Status::kRunning) {
      ref.step();
    }
    ASSERT_EQ(ref.instret(), core.instret());
    EXPECT_EQ(ref.capture_state(), core.capture_state());
    EXPECT_EQ(ref.cycle(), core.cycle());
    if (core.status() == Core::Status::kRunning) {
      // The quantum ended exactly one instruction past the ECALL commit.
      const std::size_t index = (core.pc() - program.entry()) / 4;
      ASSERT_GT(index, 0u);
      EXPECT_EQ(program.code[index - 1].op, isa::Opcode::kEcall);
    }
  }
  const arch::TraceCache* traces = core.trace_cache();
  ASSERT_NE(traces, nullptr);
  EXPECT_GT(traces->stats().dispatches, 0u);  // the loop body really was traced
}

// ---------------------------------------------------------------------------
// Fault injection: identical detection outcomes and latencies.
// ---------------------------------------------------------------------------

/// Advance the co-sim until the participating cores have retired `target`
/// instructions in total (engine-independent rendezvous points).
bool advance_to_instret(VerifiedExecution& exec, Engine engine, u64 target) {
  if (engine == Engine::kQuantum) {
    if (exec.total_instret() >= target) return true;
    return exec.advance(target - exec.total_instret());
  }
  while (exec.total_instret() < target) {
    if (!exec.step_round()) return false;
  }
  return true;
}

Outcome run_fault_schedule(const isa::Program& program, std::vector<CoreId> checkers,
                           Engine engine) {
  const u32 cores = static_cast<u32>(checkers.size()) + 1;
  SocConfig soc_config = SocConfig::paper_default(cores);
  VerifiedRunConfig config;
  config.checkers = checkers;
  config.engine = engine;
  Soc soc(soc_config);
  VerifiedExecution exec(soc, config);
  exec.prepare(program);

  // Deterministic injection schedule: one tail corruption every 40k retired
  // instructions (see next_injection). Both engines visit the exact same machine states at these
  // rendezvous points, so the injected flips (same RNG stream) are identical.
  Rng rng(0xF00D);
  u64 next_injection = 10'000;
  while (advance_to_instret(exec, engine, next_injection)) {
    auto channels = soc.fabric().channels();
    if (!channels.empty()) {
      fs::Channel* ch = channels.front();
      if (ch->fault_pending() &&
          ch->pending_fault().segment_end_seq != fs::kUnresolvedSegmentEnd &&
          ch->last_popped_seq() > ch->pending_fault().segment_end_seq) {
        ch->clear_fault();  // masked
      }
      ch->inject_fault_at_tail(rng, soc.max_cycle());
    }
    next_injection += 10'000;
  }
  return collect(soc, exec, config);
}

TEST(ExecEngine, DualCheckerFaultDetectionIdentical) {
  const auto program = tiny_workload("swaptions", 80);
  const auto stepwise = run_fault_schedule(program, {1}, Engine::kStepwise);
  const auto quantum = run_fault_schedule(program, {1}, Engine::kQuantum);
  ASSERT_GT(stepwise.detections, 0u);
  expect_equal(stepwise, quantum);
}

TEST(ExecEngine, TripleCheckerFaultDetectionIdentical) {
  const auto program = tiny_workload("swaptions", 80);
  const auto stepwise = run_fault_schedule(program, {1, 2}, Engine::kStepwise);
  const auto quantum = run_fault_schedule(program, {1, 2}, Engine::kQuantum);
  ASSERT_GT(stepwise.detections, 0u);
  expect_equal(stepwise, quantum);
}

/// Sequence-targeted injection schedule: corrupt the stream item with global
/// sequence number S (for an arithmetic series of S) as soon as it is queued,
/// each flip drawn from an Rng seeded by S alone. Unlike tail placement at
/// total-instret rendezvous, this schedule is independent of how the engine
/// chunks work across cores, so detection verdicts AND latencies must be
/// bit-identical across all three engines (the corruption time is the item's
/// push time, the detection time the checker's local clock — both exact).
Outcome run_seq_fault_schedule(const isa::Program& program,
                               std::vector<CoreId> checkers, Engine engine,
                               u64* injections_out = nullptr, bool fused = true,
                               u64* open_segment_hits = nullptr) {
  const u32 cores = static_cast<u32>(checkers.size()) + 1;
  VerifiedRunConfig config;
  config.checkers = checkers;
  config.engine = engine;
  Soc soc(SocConfig::paper_default(cores));
  for (u32 c = 0; c < cores; ++c) soc.core(c).set_fused_batching(fused);
  VerifiedExecution exec(soc, config);
  exec.prepare(program);

  constexpr u64 kSeqStride = 6'007;  // > one fault's resolution horizon (~2 segments)
  u64 next_seq = 1'000;
  u64 injections = 0;
  while (exec.advance(256)) {
    auto channels = soc.fabric().channels();
    if (channels.empty()) continue;
    fs::Channel* ch = channels.front();
    if (ch->fault_pending() &&
        ch->pending_fault().segment_end_seq != fs::kUnresolvedSegmentEnd &&
        ch->last_popped_seq() > ch->pending_fault().segment_end_seq) {
      ch->clear_fault();  // masked
    }
    if (!ch->fault_pending() && !ch->empty() && ch->front().seq <= next_seq &&
        next_seq <= ch->back().seq) {
      Rng rng(0x5EED ^ next_seq);
      if (ch->inject_fault_at(static_cast<std::size_t>(next_seq - ch->front().seq),
                              rng, soc.max_cycle())
              .has_value()) {
        ++injections;
        // An unresolved segment_end_seq right after injection means the flip
        // landed in an entry whose SegmentEnd has not been pushed yet — the
        // producer appended it but the segment is still open (the
        // "appended-but-unpublished" seam). The count is chunking-dependent,
        // so callers only assert it on their reference engine.
        if (open_segment_hits != nullptr &&
            ch->pending_fault().segment_end_seq == fs::kUnresolvedSegmentEnd) {
          ++*open_segment_hits;
        }
        next_seq += kSeqStride;
      }
    }
  }
  if (injections_out != nullptr) *injections_out = injections;
  return collect(soc, exec, config);
}

TEST(ExecEngineBounded, DualCheckerFaultDetectionIdentical) {
  const auto program = tiny_workload("swaptions", 200);
  u64 injected = 0;
  const auto stepwise =
      run_seq_fault_schedule(program, {1}, Engine::kStepwise, &injected);
  ASSERT_GT(injected, 3u);
  ASSERT_GT(stepwise.detections, 0u);
  u64 injected_bounded = 0;
  const auto bounded = run_seq_fault_schedule(program, {1}, Engine::kQuantumBounded,
                                              &injected_bounded);
  EXPECT_EQ(injected, injected_bounded);
  expect_equal_relaxed(stepwise, bounded);
}

TEST(ExecEngineBounded, TripleCheckerFaultDetectionIdentical) {
  const auto program = tiny_workload("swaptions", 200);
  u64 injected = 0;
  const auto stepwise =
      run_seq_fault_schedule(program, {1, 2}, Engine::kStepwise, &injected);
  ASSERT_GT(injected, 3u);
  ASSERT_GT(stepwise.detections, 0u);
  u64 injected_bounded = 0;
  const auto bounded = run_seq_fault_schedule(program, {1, 2},
                                              Engine::kQuantumBounded,
                                              &injected_bounded);
  EXPECT_EQ(injected, injected_bounded);
  expect_equal_relaxed(stepwise, bounded);
}

TEST(ExecEngineBounded, OpenSegmentFaultFusedVsUnfusedIdentical) {
  // Corruptions landing in appended-but-unpublished DBC entries (the
  // segment's SegmentEnd not pushed yet — the producer's cursor published the
  // record, the segment is still open) must be detected with identical
  // verdicts and latencies whether the checker replays them through the fused
  // staged-log window or the stepwise ReplayPort. The open-segment hit count
  // is asserted on the stepwise reference only (it depends on engine
  // chunking); the outcomes must match everywhere.
  const auto program = tiny_workload("swaptions", 200);
  u64 injected = 0;
  u64 open_hits = 0;
  const auto stepwise = run_seq_fault_schedule(program, {1}, Engine::kStepwise,
                                               &injected, true, &open_hits);
  ASSERT_GT(injected, 3u);
  ASSERT_GT(open_hits, 0u);
  ASSERT_GT(stepwise.detections, 0u);
  for (const bool fused : {true, false}) {
    SCOPED_TRACE(fused ? "fused" : "unfused");
    u64 injected_bounded = 0;
    const auto bounded = run_seq_fault_schedule(
        program, {1}, Engine::kQuantumBounded, &injected_bounded, fused);
    EXPECT_EQ(injected, injected_bounded);
    expect_equal_relaxed(stepwise, bounded);
  }
}

// ---------------------------------------------------------------------------
// Contended role-based topologies: several producers sharing one checker
// through the fabric waitlist. The arbitration (handoff ordering), the parked-
// producer relaxation, snapshot/fork mid-waitlist and fault injection during
// arbitration must all stay bit-identical to the stepwise reference.
// ---------------------------------------------------------------------------

/// One workload instance per producer at disjoint code/data regions (the data
/// base is baked into the code, so producers cannot share an image).
std::vector<isa::Program> role_programs(const char* name, std::size_t count,
                                        u32 iterations) {
  std::vector<isa::Program> programs;
  for (std::size_t r = 0; r < count; ++r) {
    workloads::BuildOptions options;
    options.iterations_override = iterations;
    options.code_base = isa::kDefaultCodeBase + r * 0x0011'0000;
    options.data_base = 0x0800'0000 + r * 0x0011'0000;
    programs.push_back(
        workloads::build_workload(workloads::find_profile(name), options));
  }
  return programs;
}

/// collect() for an arbitrary role topology, plus the fabric arbitration log
/// flattened for cross-engine comparison (handoffs happen between scheduling
/// rounds, so the whole log is part of the deterministic outcome).
Outcome collect_roles(Soc& soc, VerifiedExecution& exec) {
  Outcome out;
  out.stats = exec.stats();
  out.main_state = soc.core(exec.roles().front().producer).capture_state();
  std::vector<CoreId> checker_ids;
  for (const soc::RoleBinding& role : exec.roles()) {
    out.cycles.push_back(soc.core(role.producer).cycle());
    out.instret.push_back(soc.core(role.producer).instret());
    for (CoreId id : role.checkers) {
      if (std::find(checker_ids.begin(), checker_ids.end(), id) ==
          checker_ids.end()) {
        checker_ids.push_back(id);
      }
    }
  }
  for (CoreId id : checker_ids) {
    out.cycles.push_back(soc.core(id).cycle());
    out.instret.push_back(soc.core(id).instret());
    out.replayed.push_back(soc.unit(id).replayed_instructions());
  }
  out.detections = soc.fabric().reporter().detections();
  out.attributed = soc.fabric().reporter().attributed_detections();
  for (const auto& event : soc.fabric().reporter().events()) {
    out.event_latencies.push_back(event.latency);
  }
  for (const auto& handoff : soc.fabric().handoff_events()) {
    out.event_latencies.push_back(handoff.cycle);
    out.event_latencies.push_back(handoff.checker);
    out.event_latencies.push_back(handoff.from_main);
    out.event_latencies.push_back(handoff.to_main);
  }
  return out;
}

Outcome run_roles(const std::vector<isa::Program>& programs,
                  std::vector<soc::RoleBinding> roles, Engine engine,
                  u32 cores, soc::CosimStats* cosim_out = nullptr) {
  VerifiedRunConfig config;
  config.roles = std::move(roles);
  config.engine = engine;
  Soc soc(SocConfig::paper_default(cores));
  VerifiedExecution exec(soc, config);
  exec.prepare(programs);
  exec.run();
  if (cosim_out != nullptr) *cosim_out = exec.cosim_stats();
  return collect_roles(soc, exec);
}

TEST(ExecEngineContended, SharedCheckerIdenticalAcrossEngines) {
  // Two producers, one shared checker: producer 1's channel parks on the
  // waitlist until producer 0 exits and its stream drains. The quantum engine
  // must match stepwise exactly; the bounded engine up to occupancy.
  const auto programs = role_programs("swaptions", 2, 30);
  const std::vector<soc::RoleBinding> roles = {{0, {2}}, {1, {2}}};
  const auto stepwise = run_roles(programs, roles, Engine::kStepwise, 3);
  const auto quantum = run_roles(programs, roles, Engine::kQuantum, 3);
  soc::CosimStats cosim;
  const auto bounded =
      run_roles(programs, roles, Engine::kQuantumBounded, 3, &cosim);

  ASSERT_GT(stepwise.stats.segments_produced, 6u);
  // Both producers' segments were verified (the handoff really happened).
  EXPECT_EQ(stepwise.stats.segments_verified, stepwise.stats.segments_produced);
  expect_equal(stepwise, quantum);
  expect_equal_relaxed(stepwise, bounded);

  // Vacuousness guards: the parked producer ran relaxed bursts instead of
  // dragging the SoC to the strict leapfrog.
  EXPECT_GT(cosim.parked_producer_bursts, 0u);
  EXPECT_GT(cosim.relaxed_bursts, cosim.strict_fallbacks);
}

TEST(ExecEngineContended, ThreeProducersHandoffOrderIsFifo) {
  // Three producers contending for one checker: arbitration must hand the
  // checker over in association (role) order — 0 -> 1 -> 2.
  const auto programs = role_programs("swaptions", 3, 12);
  const std::vector<soc::RoleBinding> roles = {{0, {3}}, {1, {3}}, {2, {3}}};
  VerifiedRunConfig config;
  config.roles = roles;
  config.engine = Engine::kQuantumBounded;
  Soc soc(SocConfig::paper_default(4));
  VerifiedExecution exec(soc, config);
  exec.prepare(programs);
  // Mid-run the later producers are parked on the waitlist.
  ASSERT_TRUE(exec.advance(20'000));
  EXPECT_EQ(soc.fabric().waitlist_depth(3), 2u);
  exec.run();

  const auto& handoffs = soc.fabric().handoff_events();
  ASSERT_EQ(handoffs.size(), 2u);
  EXPECT_EQ(handoffs[0].checker, 3u);
  EXPECT_EQ(handoffs[0].from_main, 0u);
  EXPECT_EQ(handoffs[0].to_main, 1u);
  EXPECT_EQ(handoffs[1].from_main, 1u);
  EXPECT_EQ(handoffs[1].to_main, 2u);
  EXPECT_LE(handoffs[0].cycle, handoffs[1].cycle);
  EXPECT_EQ(soc.fabric().waitlist_depth(3), 0u);
  // All three producers' work was verified through the single checker.
  EXPECT_EQ(exec.stats().segments_verified, exec.stats().segments_produced);
}

TEST(ExecEngineContended, SnapshotForkMidWaitlistBitIdentical) {
  // Capture while producer 1's channel sits on the waitlist (pre-handoff):
  // run-on, fork and in-place restore must evolve bit-identically, including
  // the arbitration the restored run still has ahead of it.
  sim::Scenario scenario = sim::Scenario()
                               .workload("swaptions")
                               .iterations(30)
                               .shared_checker(2)
                               .engine(Engine::kQuantumBounded);
  sim::Session session = scenario.build();
  ASSERT_TRUE(session.advance(25'000));
  ASSERT_GT(session.soc().fabric().waitlist_depth(2), 0u);  // mid-waitlist
  ASSERT_EQ(session.arbitration_handoffs(), 0u);
  const soc::Snapshot warm = session.snapshot();

  sim::Session fork = session.fork(warm);
  const soc::RunStats run_on = session.run();
  const soc::RunStats forked = fork.run();
  EXPECT_EQ(run_on, forked);
  EXPECT_EQ(session.arbitration_handoffs(), fork.arbitration_handoffs());
  EXPECT_GT(session.arbitration_handoffs(), 0u);  // the handoff happened later

  session.restore(warm);
  const soc::RunStats rerun = session.run();
  EXPECT_EQ(run_on, rerun);

  // And the whole thing still lands on the stepwise result.
  sim::Session ref = sim::Scenario(scenario).engine(Engine::kStepwise).build();
  const soc::RunStats stepwise = ref.run();
  EXPECT_EQ(stepwise.main_cycles, run_on.main_cycles);
  EXPECT_EQ(stepwise.completion_cycles, run_on.completion_cycles);
  EXPECT_EQ(stepwise.segments_produced, run_on.segments_produced);
  EXPECT_EQ(stepwise.segments_verified, run_on.segments_verified);
  EXPECT_EQ(stepwise.segments_failed, run_on.segments_failed);
  EXPECT_EQ(stepwise.backpressure_events, run_on.backpressure_events);
}

/// Sequence-targeted fault schedule against the PARKED producer's channel:
/// corruptions land in entries queued while the channel waits on arbitration,
/// so every verdict is rendered only after the handoff. Engine-independent by
/// the same argument as run_seq_fault_schedule.
Outcome run_waitlist_fault_schedule(const std::vector<isa::Program>& programs,
                                    Engine engine, u64* injections_out) {
  VerifiedRunConfig config;
  config.roles = {{0, {2}}, {1, {2}}};
  config.engine = engine;
  Soc soc(SocConfig::paper_default(3));
  VerifiedExecution exec(soc, config);
  exec.prepare(programs);

  // Denser than run_seq_fault_schedule's stride: while parked, the channel
  // only exposes a capacity-wide seq window, so a coarse stride would land
  // too few corruptions in the pre-handoff regime.
  constexpr u64 kSeqStride = 1'501;
  u64 next_seq = 200;
  u64 injections = 0;
  while (exec.advance(256)) {
    auto channels = soc.fabric().channels();
    if (channels.size() < 2) continue;
    fs::Channel* ch = channels[1];  // producer 1 -> shared checker (parked)
    if (ch->fault_pending() &&
        ch->pending_fault().segment_end_seq != fs::kUnresolvedSegmentEnd &&
        ch->last_popped_seq() > ch->pending_fault().segment_end_seq) {
      ch->clear_fault();  // masked
    }
    if (!ch->fault_pending() && !ch->empty() && ch->front().seq <= next_seq &&
        next_seq <= ch->back().seq) {
      Rng rng(0x5EED ^ next_seq);
      if (ch->inject_fault_at(static_cast<std::size_t>(next_seq - ch->front().seq),
                              rng, soc.max_cycle())
              .has_value()) {
        ++injections;
        next_seq += kSeqStride;
      }
    }
  }
  if (injections_out != nullptr) *injections_out = injections;
  return collect_roles(soc, exec);
}

TEST(ExecEngineContended, FaultInjectionDuringArbitrationIdentical) {
  const auto programs = role_programs("swaptions", 2, 60);
  u64 injected = 0;
  const auto stepwise =
      run_waitlist_fault_schedule(programs, Engine::kStepwise, &injected);
  ASSERT_GT(injected, 2u);
  ASSERT_GT(stepwise.detections, 0u);
  u64 injected_quantum = 0;
  const auto quantum =
      run_waitlist_fault_schedule(programs, Engine::kQuantum, &injected_quantum);
  EXPECT_EQ(injected, injected_quantum);
  expect_equal(stepwise, quantum);
  u64 injected_bounded = 0;
  const auto bounded = run_waitlist_fault_schedule(
      programs, Engine::kQuantumBounded, &injected_bounded);
  EXPECT_EQ(injected, injected_bounded);
  expect_equal_relaxed(stepwise, bounded);
}

TEST(ExecEngineContended, PairsTopologyIdenticalAcrossEngines) {
  // Independent producer/checker pairs on one SoC (the uncontended many-core
  // shape of the fig8 sweep): per-role lattices must not couple the pairs.
  const auto programs = role_programs("swaptions", 3, 20);
  const std::vector<soc::RoleBinding> roles = {{0, {1}}, {2, {3}}, {4, {5}}};
  const auto stepwise = run_roles(programs, roles, Engine::kStepwise, 6);
  const auto quantum = run_roles(programs, roles, Engine::kQuantum, 6);
  const auto bounded = run_roles(programs, roles, Engine::kQuantumBounded, 6);
  ASSERT_GT(stepwise.stats.segments_produced, 9u);
  EXPECT_EQ(stepwise.stats.segments_verified, stepwise.stats.segments_produced);
  expect_equal(stepwise, quantum);
  expect_equal_relaxed(stepwise, bounded);
}

TEST(ExecEngineBounded, FaultCampaignForkReexecutionParity) {
  // The production fault campaign under the relaxed engine: snapshot-fork and
  // warmup-re-execution must stay bit-identical outcome-for-outcome, exactly
  // as they are under kQuantum (tests/test_sim.cpp).
  fault::CampaignConfig campaign;
  campaign.target_faults = 24;
  campaign.warmup_rounds = 15'000;
  campaign.gap_rounds = 800;
  campaign.workload_iterations = 4'000;
  campaign.shards = 4;
  campaign.threads = 1;
  campaign.engine = Engine::kQuantumBounded;

  const auto& profile = workloads::find_profile("swaptions");
  const auto soc_config = SocConfig::paper_default(2);
  campaign.mode = fault::CampaignMode::kSnapshotFork;
  const auto forked = fault::run_fault_campaign(profile, soc_config, campaign);
  campaign.mode = fault::CampaignMode::kWarmupReexecution;
  const auto reexec = fault::run_fault_campaign(profile, soc_config, campaign);

  ASSERT_EQ(forked.injected, 24u);
  EXPECT_GT(forked.detected, 0u);
  EXPECT_EQ(forked.detected, reexec.detected);
  EXPECT_EQ(forked.undetected, reexec.undetected);
  ASSERT_EQ(forked.outcomes.size(), reexec.outcomes.size());
  for (std::size_t i = 0; i < forked.outcomes.size(); ++i) {
    EXPECT_EQ(forked.outcomes[i].detected, reexec.outcomes[i].detected);
    EXPECT_EQ(forked.outcomes[i].latency_us, reexec.outcomes[i].latency_us);
    EXPECT_EQ(forked.outcomes[i].detect_kind, reexec.outcomes[i].detect_kind);
  }
  EXPECT_LT(forked.total_instructions, reexec.total_instructions);
}

}  // namespace
}  // namespace flexstep
