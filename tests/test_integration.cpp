// Theory-meets-system integration: a task set accepted by the Alg. 3
// schedulability test is mapped onto the *actual* simulated SoC (programs,
// kernel, FlexStep verification) and runs without deadline misses — the loop
// the paper itself never closes between Sec. V and the FPGA prototype.
#include <gtest/gtest.h>

#include "kernel/kernel.h"
#include "sched/flexstep_partition.h"
#include "soc/soc.h"
#include "workloads/profile.h"
#include "workloads/program_builder.h"

namespace flexstep {
namespace {

using kernel::Kernel;
using kernel::RtTaskSpec;

struct TheoryTask {
  const char* workload;
  double wcet_us;    ///< Budgeted WCET (with engineering margin over the mean).
  double period_us;
  sched::TaskType type;
};

TEST(Integration, Alg3AcceptedSetRunsOnTheSocWithoutMisses) {
  // Four tasks on four cores; one double-checked. WCETs carry ~40% margin
  // over the programs' measured runtimes (checkpointing, ticks, preemption).
  const TheoryTask theory[] = {
      {"swaptions", 300.0, 1200.0, sched::TaskType::kV2},
      {"hmmer", 280.0, 1400.0, sched::TaskType::kNormal},
      {"bzip2", 350.0, 2000.0, sched::TaskType::kNormal},
      {"x264", 250.0, 1600.0, sched::TaskType::kNormal},
  };

  // ---- theory side: Alg. 3 accepts the set on 4 cores ----
  sched::TaskSet tasks;
  for (u32 i = 0; i < 4; ++i) {
    tasks.push_back({i, theory[i].wcet_us, theory[i].period_us, theory[i].type});
  }
  const auto plan = sched::flexstep_partition(tasks, 4);
  ASSERT_TRUE(plan.schedulable);

  // Extract the partitioning (task -> core, checker copies -> cores).
  i32 original_core[4] = {-1, -1, -1, -1};
  std::vector<CoreId> checker_cores[4];
  for (u32 k = 0; k < plan.cores.size(); ++k) {
    for (const auto& item : plan.cores[k].items) {
      if (item.is_check_copy) {
        checker_cores[item.task_id].push_back(k);
      } else {
        original_core[item.task_id] = static_cast<i32>(k);
      }
    }
  }

  // ---- system side: realise it on the SoC ----
  soc::Soc soc(soc::SocConfig::paper_default(4));
  kernel::KernelConfig config;
  config.horizon = us_to_cycles(10'000.0);
  Kernel rtos(soc, config);

  for (u32 i = 0; i < 4; ++i) {
    const auto& profile = workloads::find_profile(theory[i].workload);
    workloads::BuildOptions build;
    build.seed = 100 + i;
    build.code_base = 0x10000 + i * 0x80000;
    build.data_base = 0x1000000 + static_cast<Addr>(i) * 0x800000;
    // Size the program to ~70% of the theoretical WCET (margin).
    build.iterations_override = std::max<u32>(
        1, static_cast<u32>(theory[i].wcet_us * 0.7 * kCyclesPerUs / 2.4 /
                            profile.body_instructions));
    RtTaskSpec spec;
    spec.name = theory[i].workload;
    spec.program = workloads::build_workload(profile, build);
    spec.period = us_to_cycles(theory[i].period_us);
    spec.type = theory[i].type;
    ASSERT_GE(original_core[i], 0);
    spec.core = static_cast<CoreId>(original_core[i]);
    spec.checker_cores = checker_cores[i];
    rtos.add_task(std::move(spec));
  }

  rtos.run();
  const auto& stats = rtos.stats();
  EXPECT_EQ(stats.missed, 0u) << "theory-accepted set missed on the system";
  EXPECT_GT(stats.completed, 20u);
  // The verified task's checking completed cleanly on its assigned checker.
  u64 verified = 0;
  for (CoreId id = 0; id < 4; ++id) {
    verified += soc.unit(id).segments_verified();
    EXPECT_EQ(soc.unit(id).segments_failed(), 0u);
  }
  EXPECT_GT(verified, 0u);
  EXPECT_EQ(soc.fabric().reporter().detections(), 0u);
}

TEST(Integration, VerificationWorkTracksDuplicatedComputation) {
  // The checker replays exactly the user-mode instructions of the verified
  // task — FlexStep's "duplicated computation" is real work, accounted 1:1.
  soc::Soc soc(soc::SocConfig::paper_default(2));
  kernel::KernelConfig config;
  config.horizon = us_to_cycles(4'000.0);
  Kernel rtos(soc, config);

  RtTaskSpec spec;
  spec.name = "verified";
  const auto& profile = workloads::find_profile("swaptions");
  workloads::BuildOptions build;
  build.seed = 55;
  build.iterations_override = 120;
  spec.program = workloads::build_workload(profile, build);
  spec.period = us_to_cycles(1000.0);
  spec.core = 0;
  spec.type = sched::TaskType::kV2;
  spec.checker_cores = {1};
  rtos.add_task(std::move(spec));
  rtos.run();

  ASSERT_EQ(rtos.stats().missed, 0u);
  EXPECT_EQ(soc.unit(1).replayed_instructions(), soc.core(0).user_instret());
}

}  // namespace
}  // namespace flexstep
