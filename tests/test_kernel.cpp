// Kernel (RTOS model) integration tests: partitioned EDF with preemption,
// Alg. 1 context switches, Alg. 2 checker threads, verification completion.
#include <gtest/gtest.h>

#include "kernel/kernel.h"
#include "soc/soc.h"
#include "workloads/profile.h"
#include "workloads/program_builder.h"

namespace flexstep {
namespace {

using kernel::Kernel;
using kernel::KernelConfig;
using kernel::RtTaskSpec;
using soc::Soc;
using soc::SocConfig;

/// Program with a deterministic cycle cost around `target_us` at CPI~2.3.
isa::Program timed_program(const char* profile_name, double target_us, u64 seed,
                           Addr code_base, Addr data_base) {
  const auto& profile = workloads::find_profile(profile_name);
  workloads::BuildOptions build;
  build.seed = seed;
  build.code_base = code_base;
  build.data_base = data_base;
  const double insts = target_us * kCyclesPerUs / 2.3;
  build.iterations_override =
      std::max<u32>(1, static_cast<u32>(insts / profile.body_instructions));
  return workloads::build_workload(profile, build);
}

KernelConfig short_horizon(double ms) {
  KernelConfig config;
  config.horizon = us_to_cycles(ms * 1000.0);
  return config;
}

TEST(Kernel, SingleTaskCompletesAllJobs) {
  Soc soc(SocConfig::paper_default(2));
  Kernel kernel(soc, short_horizon(8.0));

  RtTaskSpec task;
  task.name = "solo";
  task.program = timed_program("swaptions", 300.0, 1, 0x10000, 0x1000000);
  task.period = us_to_cycles(1000.0);
  task.core = 0;
  kernel.add_task(std::move(task));
  kernel.run();

  const auto& stats = kernel.stats();
  EXPECT_EQ(stats.missed, 0u);
  EXPECT_EQ(stats.completed, stats.released);
  EXPECT_GE(stats.completed, 7u);
}

TEST(Kernel, EdfPreemptionBetweenTwoTasks) {
  Soc soc(SocConfig::paper_default(2));
  Kernel kernel(soc, short_horizon(8.0));

  // Long-period task with long jobs, preempted by a tight-period task.
  RtTaskSpec heavy;
  heavy.name = "heavy";
  heavy.program = timed_program("hmmer", 900.0, 2, 0x10000, 0x1000000);
  heavy.period = us_to_cycles(2000.0);
  heavy.core = 0;
  kernel.add_task(std::move(heavy));

  RtTaskSpec light;
  light.name = "light";
  light.program = timed_program("swaptions", 100.0, 3, 0x80000, 0x2000000);
  light.period = us_to_cycles(500.0);
  light.core = 0;
  kernel.add_task(std::move(light));

  kernel.run();
  const auto& stats = kernel.stats();
  EXPECT_EQ(stats.missed, 0u);
  EXPECT_GT(stats.preemptions, 0u);  // light must have preempted heavy
}

TEST(Kernel, VerifiedTaskRunsAndChecksComplete) {
  Soc soc(SocConfig::paper_default(2));
  Kernel kernel(soc, short_horizon(6.0));

  RtTaskSpec task;
  task.name = "verified";
  task.program = timed_program("swaptions", 250.0, 4, 0x10000, 0x1000000);
  task.period = us_to_cycles(1000.0);
  task.core = 0;
  task.type = sched::TaskType::kV2;
  task.checker_cores = {1};
  kernel.add_task(std::move(task));
  kernel.run();

  const auto& stats = kernel.stats();
  EXPECT_EQ(stats.missed, 0u);
  // Both original jobs and checker jobs completed.
  u32 checker_jobs = 0;
  for (const auto& job : stats.jobs) checker_jobs += job.is_checker;
  EXPECT_GE(checker_jobs, 5u);
  // The checker verified every produced segment without errors.
  EXPECT_GT(soc.unit(1).segments_verified(), 0u);
  EXPECT_EQ(soc.unit(1).segments_failed(), 0u);
  EXPECT_EQ(soc.fabric().reporter().detections(), 0u);
  EXPECT_EQ(soc.unit(0).segments_produced(),
            soc.unit(1).segments_verified());
}

TEST(Kernel, TripleCheckTaskUsesTwoCheckers) {
  Soc soc(SocConfig::paper_default(4));
  Kernel kernel(soc, short_horizon(5.0));

  RtTaskSpec task;
  task.name = "triple";
  task.program = timed_program("swaptions", 200.0, 5, 0x10000, 0x1000000);
  task.period = us_to_cycles(1000.0);
  task.core = 0;
  task.type = sched::TaskType::kV3;
  task.checker_cores = {1, 2};
  kernel.add_task(std::move(task));
  kernel.run();

  EXPECT_EQ(kernel.stats().missed, 0u);
  EXPECT_GT(soc.unit(1).segments_verified(), 0u);
  EXPECT_GT(soc.unit(2).segments_verified(), 0u);
  EXPECT_EQ(soc.unit(1).segments_failed(), 0u);
  EXPECT_EQ(soc.unit(2).segments_failed(), 0u);
}

TEST(Kernel, CheckerPreemptedByTighterTaskStillCompletes) {
  // FlexStep's flagship capability (Fig. 1(c)): a non-verification task with
  // an earlier deadline preempts in-flight checking on the checker core, and
  // the checking still completes before its own deadline.
  Soc soc(SocConfig::paper_default(2));
  Kernel kernel(soc, short_horizon(6.0));

  RtTaskSpec verified;
  verified.name = "verified";
  verified.program = timed_program("hmmer", 300.0, 6, 0x10000, 0x1000000);
  verified.period = us_to_cycles(1500.0);
  verified.core = 0;
  verified.type = sched::TaskType::kV2;
  verified.checker_cores = {1};
  kernel.add_task(std::move(verified));

  // Tight task placed on the CHECKER core: it must preempt replay.
  RtTaskSpec tight;
  tight.name = "tight";
  tight.program = timed_program("swaptions", 120.0, 7, 0x80000, 0x2000000);
  tight.period = us_to_cycles(400.0);
  tight.core = 1;
  kernel.add_task(std::move(tight));

  kernel.run();
  const auto& stats = kernel.stats();
  EXPECT_EQ(stats.missed, 0u);
  EXPECT_GT(stats.preemptions, 0u);
  EXPECT_GT(soc.unit(1).segments_verified(), 0u);
  EXPECT_EQ(soc.fabric().reporter().detections(), 0u);
}

TEST(Kernel, NonVerifiedTasksAcrossFourCores) {
  Soc soc(SocConfig::paper_default(4));
  Kernel kernel(soc, short_horizon(4.0));
  for (u32 i = 0; i < 4; ++i) {
    RtTaskSpec task;
    task.name = "t" + std::to_string(i);
    task.program = timed_program("bzip2", 150.0 + 40.0 * i, 10 + i,
                                 0x10000 + i * 0x40000, 0x1000000 + i * 0x400000);
    task.period = us_to_cycles(600.0 + 150.0 * i);
    task.core = i;
    kernel.add_task(std::move(task));
  }
  kernel.run();
  EXPECT_EQ(kernel.stats().missed, 0u);
  EXPECT_GT(kernel.stats().completed, 10u);
}

TEST(Kernel, SelectiveCheckingVerifiesOnlyTheBudget) {
  // Paper Fig. 1(c): an emergency requires only the first N units of a job
  // to be checked. The CPC counts the budget down and switches checking off;
  // the checker replays exactly the budgeted prefix.
  Soc soc(SocConfig::paper_default(2));
  Kernel rtos(soc, short_horizon(5.0));

  RtTaskSpec task;
  task.name = "selective";
  task.program = timed_program("swaptions", 400.0, 8, 0x10000, 0x1000000);
  task.period = us_to_cycles(1200.0);
  task.core = 0;
  task.type = sched::TaskType::kV2;
  task.checker_cores = {1};
  task.verify_budget = 60'000;  // ~first quarter of each job
  rtos.add_task(std::move(task));
  rtos.run();

  EXPECT_EQ(rtos.stats().missed, 0u);
  const u64 jobs = 4;  // horizon 5 ms / period 1.2 ms, release+period<=horizon
  // Replayed instructions ≈ budget per job (not the whole job).
  EXPECT_NEAR(static_cast<double>(soc.unit(1).replayed_instructions()),
              static_cast<double>(jobs * 60'000), 4'000.0);
  EXPECT_LT(soc.unit(1).replayed_instructions(), soc.core(0).user_instret() / 2);
  EXPECT_EQ(soc.unit(1).segments_failed(), 0u);
  EXPECT_GT(soc.unit(1).segments_verified(), 0u);
}

TEST(Kernel, SelectiveBudgetSurvivesPreemption) {
  // The budget is per-job state: a preempted verification job resumes with
  // its remaining budget, not a fresh one.
  Soc soc(SocConfig::paper_default(2));
  Kernel rtos(soc, short_horizon(6.0));

  RtTaskSpec verified;
  verified.name = "budgeted";
  verified.program = timed_program("hmmer", 500.0, 9, 0x10000, 0x1000000);
  verified.period = us_to_cycles(2000.0);
  verified.core = 0;
  verified.type = sched::TaskType::kV2;
  verified.checker_cores = {1};
  verified.verify_budget = 100'000;
  rtos.add_task(std::move(verified));

  RtTaskSpec tight;  // forces preemption of the budgeted job on core 0
  tight.name = "tight";
  tight.program = timed_program("swaptions", 100.0, 10, 0x80000, 0x2000000);
  tight.period = us_to_cycles(500.0);
  tight.core = 0;
  rtos.add_task(std::move(tight));

  rtos.run();
  EXPECT_EQ(rtos.stats().missed, 0u);
  EXPECT_GT(rtos.stats().preemptions, 0u);
  const u64 jobs = 3;  // releases at 0, 2, 4 ms within the 6 ms horizon
  EXPECT_NEAR(static_cast<double>(soc.unit(1).replayed_instructions()),
              static_cast<double>(jobs * 100'000), 6'000.0);
  EXPECT_EQ(soc.unit(1).segments_failed(), 0u);
}

TEST(Kernel, OverloadedCoreMissesDeadlines) {
  // Sanity: the kernel reports misses rather than hiding them.
  Soc soc(SocConfig::paper_default(2));
  Kernel kernel(soc, short_horizon(3.0));
  RtTaskSpec task;
  task.name = "overload";
  task.program = timed_program("hmmer", 900.0, 20, 0x10000, 0x1000000);
  task.period = us_to_cycles(500.0);  // WCET >> period
  task.core = 0;
  kernel.add_task(std::move(task));
  kernel.run();
  EXPECT_GT(kernel.stats().missed, 0u);
}

}  // namespace
}  // namespace flexstep
