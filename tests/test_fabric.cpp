// Fabric (system interconnect) tests: association, conflict waitlists,
// dissociation, channel reuse across preemptions.
#include <gtest/gtest.h>

#include "soc/soc.h"
#include "soc/verified_run.h"

namespace flexstep::fs {
namespace {

using soc::Soc;
using soc::SocConfig;

SocConfig small(u32 cores) {
  SocConfig config = SocConfig::paper_default(cores);
  config.flexstep.segment_limit = 50;
  return config;
}

TEST(Fabric, AssociateCreatesChannelAndBindsChecker) {
  Soc soc(small(3));
  soc.fabric().associate(0, 0b010);
  const auto channels = soc.fabric().channels();
  ASSERT_EQ(channels.size(), 1u);
  EXPECT_EQ(channels[0]->main_id(), 0u);
  EXPECT_EQ(channels[0]->checker_id(), 1u);
  EXPECT_EQ(soc.unit(0).out_channels().size(), 1u);
  EXPECT_EQ(soc.unit(1).in_channel(), channels[0]);
}

TEST(Fabric, OneToTwoAssociation) {
  Soc soc(small(3));
  soc.fabric().associate(0, 0b110);  // checkers 1 and 2 (TCLS-like)
  EXPECT_EQ(soc.fabric().channels().size(), 2u);
  EXPECT_EQ(soc.unit(0).out_channels().size(), 2u);
  EXPECT_NE(soc.unit(1).in_channel(), nullptr);
  EXPECT_NE(soc.unit(2).in_channel(), nullptr);
}

TEST(Fabric, ReassociationReusesOpenChannel) {
  Soc soc(small(3));
  soc.fabric().associate(0, 0b010);
  Channel* first = soc.fabric().channels().front();
  // Alg. 1 re-associates on every context switch; the open channel persists.
  soc.fabric().associate(0, 0b010);
  ASSERT_EQ(soc.fabric().channels().size(), 1u);
  EXPECT_EQ(soc.unit(0).out_channels().front(), first);
}

TEST(Fabric, DissociateClosesAndFreshAssociateCreatesNew) {
  Soc soc(small(3));
  soc.fabric().associate(0, 0b010);
  Channel* first = soc.fabric().channels().front();
  soc.fabric().dissociate(0);
  EXPECT_TRUE(first->closed());
  EXPECT_TRUE(soc.unit(0).out_channels().empty());
  // Next verification job gets a fresh channel.
  soc.fabric().associate(0, 0b010);
  ASSERT_EQ(soc.fabric().channels().size(), 2u);
  EXPECT_NE(soc.unit(0).out_channels().front(), first);
}

TEST(Fabric, ConflictingMainsWaitlistOnBusyChecker) {
  // Paper Sec. III-C: when two main cores compete for a checker, one buffers
  // in its own FIFO until the checker is released.
  Soc soc(small(3));
  soc.fabric().associate(0, 0b100);  // main 0 -> checker 2
  soc.fabric().associate(1, 0b100);  // main 1 -> checker 2 (busy)
  const auto channels = soc.fabric().channels();
  ASSERT_EQ(channels.size(), 2u);
  EXPECT_EQ(soc.unit(2).in_channel(), channels[0]);  // serving main 0
  // Main 1's channel exists and accepts pushes (its own buffering).
  EXPECT_EQ(soc.unit(1).out_channels().size(), 1u);
  EXPECT_TRUE(soc.unit(1).out_channels().front()->producer_can_push(2));

  // When main 0's stream drains and closes, the checker picks up main 1.
  soc.fabric().dissociate(0);
  soc.fabric().pump_assignments();
  EXPECT_EQ(soc.unit(2).in_channel(), channels[1]);
  EXPECT_EQ(soc.unit(2).in_channel()->main_id(), 1u);
}

TEST(Fabric, PumpKeepsBusyCheckerAttached) {
  Soc soc(small(3));
  soc.fabric().associate(0, 0b100);
  soc.fabric().associate(1, 0b100);
  // Main 0 still open: pump must not steal the checker.
  soc.fabric().pump_assignments();
  EXPECT_EQ(soc.unit(2).in_channel()->main_id(), 0u);
}

TEST(Fabric, WaitlistDepthTracksParkedChannels) {
  Soc soc(small(4));
  EXPECT_EQ(soc.fabric().waitlist_depth(3), 0u);
  soc.fabric().associate(0, 0b1000);  // main 0 -> checker 3 (attached)
  EXPECT_EQ(soc.fabric().waitlist_depth(3), 0u);
  soc.fabric().associate(1, 0b1000);  // parked
  soc.fabric().associate(2, 0b1000);  // parked
  EXPECT_EQ(soc.fabric().waitlist_depth(3), 2u);
  soc.fabric().dissociate(0);
  soc.fabric().pump_assignments();
  EXPECT_EQ(soc.fabric().waitlist_depth(3), 1u);
}

TEST(Fabric, HandoffEventsRecordArbitrationDecisions) {
  Soc soc(small(4));
  soc.fabric().associate(0, 0b1000);
  soc.fabric().associate(1, 0b1000);
  soc.fabric().associate(2, 0b1000);
  EXPECT_TRUE(soc.fabric().handoff_events().empty());  // attach != handoff

  soc.fabric().dissociate(0);
  soc.fabric().pump_assignments();
  soc.fabric().dissociate(1);
  soc.fabric().pump_assignments();

  const auto& handoffs = soc.fabric().handoff_events();
  ASSERT_EQ(handoffs.size(), 2u);
  EXPECT_EQ(handoffs[0].checker, 3u);
  EXPECT_EQ(handoffs[0].from_main, 0u);
  EXPECT_EQ(handoffs[0].to_main, 1u);
  EXPECT_EQ(handoffs[1].checker, 3u);
  EXPECT_EQ(handoffs[1].from_main, 1u);
  EXPECT_EQ(handoffs[1].to_main, 2u);
}

TEST(Fabric, SequentialVerifiedRunsOnSharedChecker) {
  // End-to-end: two mains verified by the same checker, one after another.
  Soc soc(small(3));
  isa::Assembler a0(0x10000);
  a0.li(10, 0x200000);
  a0.li(5, 60);
  auto l0 = a0.new_label();
  a0.bind(l0);
  a0.sd(5, 10, 0);
  a0.ld(6, 10, 0);
  a0.addi(5, 5, -1);
  a0.bne(5, 0, l0);
  a0.halt();
  const auto prog0 = a0.finalize("m0", 0x200000, 4096);

  soc::VerifiedExecution exec0(soc, soc::VerifiedRunConfig{0, {2}});
  exec0.prepare(prog0);
  const auto stats0 = exec0.run();
  EXPECT_EQ(stats0.segments_failed, 0u);
  EXPECT_GT(stats0.segments_verified, 0u);

  // Second main reuses the (now released) checker.
  isa::Assembler a1(0x40000);
  a1.li(10, 0x300000);
  a1.li(5, 40);
  auto l1 = a1.new_label();
  a1.bind(l1);
  a1.sd(5, 10, 8);
  a1.addi(5, 5, -1);
  a1.bne(5, 0, l1);
  a1.halt();
  const auto prog1 = a1.finalize("m1", 0x300000, 4096);

  soc::VerifiedExecution exec1(soc, soc::VerifiedRunConfig{1, {2}});
  exec1.prepare(prog1);
  const auto stats1 = exec1.run();
  EXPECT_EQ(stats1.segments_failed, 0u);
  EXPECT_GT(stats1.segments_verified, 0u);
  EXPECT_EQ(soc.fabric().reporter().detections(), 0u);
}

TEST(GlobalConfigDeath, RejectsOverlappingMasks) {
  GlobalConfig config;
  EXPECT_DEATH(config.configure(0b011, 0b010), "main and checker");
}

TEST(FabricDeath, SelfCheckingRejected) {
  Soc soc(small(2));
  EXPECT_DEATH(soc.fabric().associate(0, 0b001), "cannot check itself");
}

}  // namespace
}  // namespace flexstep::fs
