// Static guest-program analysis: CFG construction, DBC-cost dataflow, the
// pre-run lint, dynamic validation against retired-instruction truth, and the
// three runtime clients (trace seeding, tightened producer bursts, the
// Scenario::analyze() entry point). The load-bearing guarantees pinned here:
//   * every analysis result is consistent with dynamic behaviour (validator);
//   * seeding / burst tightening are host-speed only — simulated outcomes are
//     bit-identical with analysis on, off, and across engines;
//   * a store into the code image drops both the traces and the static burst
//     bound (conservative fallback), still bit-identically.
#include <gtest/gtest.h>

#include "analysis/report.h"
#include "analysis/validate.h"
#include "arch/trace.h"
#include "sim/scenario.h"
#include "soc/verified_run.h"
#include "workloads/profile.h"
#include "workloads/program_builder.h"

namespace flexstep::analysis {
namespace {

using isa::Assembler;
using isa::Opcode;

// ---------------------------------------------------------------------------
// CFG construction
// ---------------------------------------------------------------------------

/// li(5, 60); loop: addi*2; bne -> loop; halt; <unreachable addi; halt>
isa::Program loop_program() {
  Assembler a;
  a.li(5, 60);
  auto loop = a.new_label();
  a.bind(loop);
  a.addi(6, 6, 1);
  a.addi(5, 5, -1);
  a.bne(5, 0, loop);
  a.halt();
  a.addi(7, 7, 1);  // dead code
  a.halt();
  return a.finalize("loop");
}

TEST(Cfg, LoopProgramStructure) {
  const isa::Program program = loop_program();
  const Cfg cfg = build_cfg(view_of(program));

  // Blocks: [li][loop body+bne][halt][dead addi+halt] — the li block ends at
  // the loop leader, the body at the bne terminator; the dead tail is one
  // block because nothing targets its halt.
  ASSERT_EQ(cfg.blocks.size(), 4u);
  const BasicBlock& prologue = cfg.blocks[0];
  const BasicBlock& body = cfg.blocks[1];
  const BasicBlock& halt = cfg.blocks[2];
  const BasicBlock& dead = cfg.blocks[3];

  EXPECT_EQ(prologue.fall_through, 1u);
  EXPECT_EQ(prologue.taken, kNoBlock);
  EXPECT_TRUE(prologue.reachable);

  EXPECT_EQ(body.count, 3u);
  EXPECT_TRUE(body.has_direct_target);
  EXPECT_EQ(body.taken, 1u);          // back edge to itself
  EXPECT_EQ(body.fall_through, 2u);
  EXPECT_TRUE(body.back_edge_target);
  EXPECT_TRUE(body.in_loop);
  EXPECT_TRUE(body.reachable);

  EXPECT_TRUE(halt.ends_in_halt);
  EXPECT_EQ(halt.fall_through, kNoBlock);
  EXPECT_TRUE(halt.reachable);

  EXPECT_EQ(dead.count, 2u);
  EXPECT_TRUE(dead.ends_in_halt);
  EXPECT_FALSE(dead.reachable);
  EXPECT_FALSE(cfg.has_indirect_flow);

  // block_of is total over the image.
  for (u32 i = 0; i < cfg.view.inst_count(); ++i) {
    EXPECT_NE(cfg.block_of[i], kNoBlock);
  }
}

TEST(Cfg, IndirectFlowReachesAddressTakenLeaders) {
  // A JALR through a li-materialised address: the target block must be
  // reachable through the over-approximation even with no direct edge to it.
  Assembler a;
  const std::size_t materialize_at = a.size();
  a.addi(5, 0, 0);  // imm patched below once the target address is known
  a.jalr(1, 5, 0);
  a.halt();
  const Addr target_pc = a.here();
  a.addi(6, 6, 1);
  a.halt();
  isa::Program program = a.finalize("indirect");
  program.code[materialize_at].imm = static_cast<i32>(target_pc);

  const Cfg cfg = build_cfg(view_of(program));
  EXPECT_TRUE(cfg.has_indirect_flow);
  const u32 tb = cfg.block_at(target_pc);
  ASSERT_NE(tb, kNoBlock);
  EXPECT_TRUE(cfg.blocks[tb].reachable);
  EXPECT_FALSE(cfg.indirect_target_blocks.empty());
}

// ---------------------------------------------------------------------------
// Dataflow
// ---------------------------------------------------------------------------

TEST(Dataflow, ForwardEntryBoundTightensAfterLastAmo) {
  // Block A: amoadd (2 entries); block B (after the only path past it): plain
  // loads/stores (1); block C: pure ALU then halt (0 after last mem op...
  // bound joins over successors, so C's bound is 0 only if no mem op follows).
  Assembler a;
  a.li(10, 0x0100'0000);
  a.amoadd_d(5, 10, 6);
  auto next = a.new_label();
  a.j(next);
  a.bind(next);
  a.ld(6, 10, 0);
  a.sd(6, 10, 8);
  auto tail = a.new_label();
  a.j(tail);
  a.bind(tail);
  a.addi(7, 7, 1);
  a.halt();
  const isa::Program program = a.finalize("phases");
  const ProgramReport report = analyze(program);

  EXPECT_EQ(report.global_entry_bound, 2u);
  const CodeView view = view_of(program);
  // At the amo itself: 2. After it (the ld/sd region): 1. In the ALU tail: 0.
  const auto bound_at = [&](Addr pc) { return report.fwd_entry_bound[view.index_of(pc)]; };
  u32 amo_index = 0, ld_index = 0, tail_index = 0;
  for (u32 i = 0; i < view.inst_count(); ++i) {
    if (view.code[i].op == Opcode::kAmoaddD) amo_index = i;
    if (view.code[i].op == Opcode::kLd) ld_index = i;
    if (view.code[i].op == Opcode::kHalt) { tail_index = i - 1; break; }
  }
  EXPECT_EQ(bound_at(program.code_base + amo_index * 4), 2u);
  EXPECT_EQ(bound_at(program.code_base + ld_index * 4), 1u);
  EXPECT_EQ(bound_at(program.code_base + tail_index * 4), 0u);

  // Exact block costs: the ld/sd block produces 2 entries, 2 mem ops.
  const u32 ld_block = report.cfg.block_of[ld_index];
  EXPECT_EQ(report.costs[ld_block].dbc_entries, 2u);
  EXPECT_EQ(report.costs[ld_block].mem_ops, 2u);
}

TEST(Dataflow, LoopKeepsBoundAliveAroundBackEdge) {
  // The AMO sits at the TOP of the loop: pcs later in the body must still
  // carry bound 2 because the back edge re-reaches the AMO.
  Assembler a;
  a.li(10, 0x0100'0000);
  a.li(5, 10);
  auto loop = a.new_label();
  a.bind(loop);
  a.amoadd_d(6, 10, 7);
  a.addi(5, 5, -1);
  a.bne(5, 0, loop);
  a.halt();
  const isa::Program program = a.finalize("loop-amo");
  const ProgramReport report = analyze(program);
  const CodeView view = view_of(program);
  for (u32 i = 0; i < view.inst_count(); ++i) {
    if (view.code[i].op == Opcode::kAddi && view.code[i].rd == 5 &&
        view.code[i].imm == -1) {
      EXPECT_EQ(report.fwd_entry_bound[i], 2u);  // loop re-reaches the AMO
    }
    if (view.code[i].op == Opcode::kHalt) {
      EXPECT_EQ(report.fwd_entry_bound[i], 0u);
    }
  }
}

TEST(Dataflow, RegionsRollUpWorstPathCosts) {
  const isa::Program program = loop_program();
  const ProgramReport report = analyze(program);
  ASSERT_FALSE(report.regions.empty());
  // The loop body is its own region (back-edge target) and a hot candidate.
  bool found_hot = false;
  for (const Region& region : report.regions) {
    if (region.hot_candidate) {
      found_hot = true;
      EXPECT_GT(region.worst_path_insts, 0u);
      EXPECT_GT(region.worst_path_static_cost, 0u);
    }
  }
  EXPECT_TRUE(found_hot);
  EXPECT_FALSE(report.trace_seeds.empty());
  EXPECT_EQ(report.total_insts, program.code.size());
  EXPECT_LT(report.reachable_insts, report.total_insts);  // dead tail
}

// ---------------------------------------------------------------------------
// Lint
// ---------------------------------------------------------------------------

u32 count_kind(const ProgramReport& report, LintKind kind) {
  u32 n = 0;
  for (const LintFinding& f : report.findings) n += f.kind == kind ? 1 : 0;
  return n;
}

TEST(Lint, FlagsUnreachableBlocks) {
  const ProgramReport report = analyze(loop_program());
  EXPECT_GE(count_kind(report, LintKind::kUnreachableBlock), 1u);
  EXPECT_EQ(report.error_count, 0u);  // warnings only
}

TEST(Lint, FlagsMalformedBranchTargets) {
  Assembler a;
  a.addi(5, 5, 1);
  auto l = a.new_label();
  a.bind(l);
  a.beq(0, 0, l);
  a.halt();
  isa::Program program = a.finalize("wild");
  // Surgically corrupt the branch: byte offset +2 (misaligned), then another
  // program with offset far outside the image.
  isa::Program misaligned = program;
  misaligned.code[1].imm = 2;
  const ProgramReport r1 = analyze(misaligned);
  EXPECT_EQ(count_kind(r1, LintKind::kBranchTargetMisaligned), 1u);
  EXPECT_TRUE(r1.has_errors());

  isa::Program wild = program;
  wild.code[1].imm = 0x40000;
  const ProgramReport r2 = analyze(wild);
  EXPECT_EQ(count_kind(r2, LintKind::kBranchTargetOutOfImage), 1u);
  EXPECT_TRUE(r2.has_errors());
}

TEST(Lint, FlagsJumpIntoFusedPair) {
  // add x5,x5,x6 ; add x7,x7,x8 is a fusible ALU pair; a jump entering at the
  // second add splits it.
  Assembler a;
  auto entry_skip = a.new_label();
  a.j(entry_skip);
  a.add(5, 5, 6);
  a.bind(entry_skip);   // jump lands between the two fusible adds...
  a.add(7, 7, 8);
  a.halt();
  const ProgramReport report = analyze(a.finalize("split-pair"));
  EXPECT_EQ(count_kind(report, LintKind::kJumpIntoFusedPair), 1u);
  EXPECT_EQ(report.error_count, 0u);
}

TEST(Lint, FlagsStoresIntoExecutableImage) {
  Assembler a;
  a.li(5, static_cast<i64>(isa::kDefaultCodeBase));
  a.sd(6, 5, 4);  // store lands inside the (3-instruction) code image
  a.halt();
  const ProgramReport report = analyze(a.finalize("self-store"));
  EXPECT_EQ(count_kind(report, LintKind::kStoreToCode), 1u);
}

TEST(Lint, FlagsOrphanStoreConditional) {
  Assembler a;
  a.li(10, 0x0100'0000);
  a.sc_d(5, 10, 6);  // no LR anywhere: can never succeed
  a.halt();
  const ProgramReport report = analyze(a.finalize("orphan-sc"));
  EXPECT_EQ(count_kind(report, LintKind::kScNeverSucceeds), 1u);
  EXPECT_TRUE(report.has_errors());
}

TEST(Lint, PairedLrScIsClean) {
  Assembler a;
  a.li(10, 0x0100'0000);
  auto retry = a.new_label();
  a.bind(retry);
  a.lr_d(5, 10);
  a.addi(5, 5, 1);
  a.sc_d(6, 10, 5);
  a.bne(6, 0, retry);
  a.halt();
  const ProgramReport report = analyze(a.finalize("lr-sc"));
  EXPECT_EQ(count_kind(report, LintKind::kScNeverSucceeds), 0u);
  EXPECT_FALSE(report.has_errors());
}

TEST(Lint, GeneratedWorkloadsAreLintClean) {
  // The shipped example programs must carry zero lint errors (CI gates on
  // this through micro_benchmarks --analyze; pin it in-tree too).
  workloads::BuildOptions tiny;
  tiny.iterations_override = 3;
  tiny.seed = 1;
  for (const auto& profile : workloads::parsec_profiles()) {
    const ProgramReport report =
        analyze(workloads::build_workload(profile, tiny));
    EXPECT_FALSE(report.has_errors()) << profile.name << "\n" << report.render();
  }
}

// ---------------------------------------------------------------------------
// Dynamic validation (the consistency gate)
// ---------------------------------------------------------------------------

TEST(Validate, HandWrittenProgramsMatchDynamicTruth) {
  for (const isa::Program& program : {loop_program()}) {
    const ProgramReport report = analyze(program);
    const ValidationResult result = validate_report(report, program);
    EXPECT_TRUE(result.ok()) << result.summary();
    EXPECT_GT(result.retired_insts, 0u);
  }
}

TEST(Validate, GeneratedWorkloadsMatchDynamicTruth) {
  workloads::BuildOptions tiny;
  tiny.iterations_override = 3;
  for (const char* name : {"blackscholes", "mcf", "swaptions", "xalancbmk"}) {
    tiny.seed = 7;
    const isa::Program program =
        workloads::build_workload(workloads::find_profile(name), tiny);
    const ProgramReport report = analyze(program);
    const ValidationResult result = validate_report(report, program);
    EXPECT_TRUE(result.ok()) << name << ": " << result.summary();
    EXPECT_GT(result.retired_mem_ops, 0u) << name;
  }
}

TEST(Validate, DetectsDeliberatelyCorruptedCounts) {
  // Negative control: break the report and the validator must object.
  const isa::Program program = loop_program();
  ProgramReport report = analyze(program);
  ASSERT_FALSE(report.fwd_entry_bound.empty());
  report.trace_seeds.push_back(program.code_base + 2);  // not a leader pc
  const ValidationResult result = validate_report(report, program);
  EXPECT_FALSE(result.ok());
}

// ---------------------------------------------------------------------------
// Runtime clients: seeding, burst tightening, bit-identity
// ---------------------------------------------------------------------------

sim::Scenario tiny_scenario(const char* workload, soc::Engine engine) {
  return sim::Scenario()
      .workload(workload)
      .iterations(40)
      .seed(11)
      .dual()
      .engine(engine);
}

void expect_equal_except_occupancy(const soc::RunStats& a, const soc::RunStats& b) {
  EXPECT_EQ(a.main_cycles, b.main_cycles);
  EXPECT_EQ(a.main_instructions, b.main_instructions);
  EXPECT_EQ(a.completion_cycles, b.completion_cycles);
  EXPECT_EQ(a.segments_produced, b.segments_produced);
  EXPECT_EQ(a.segments_verified, b.segments_verified);
  EXPECT_EQ(a.segments_failed, b.segments_failed);
  EXPECT_EQ(a.mem_entries, b.mem_entries);
  EXPECT_EQ(a.backpressure_events, b.backpressure_events);
}

TEST(AnalysisClients, SeedingPreinstallsTracesAndCutsHeatMisses) {
  sim::Session seeded = tiny_scenario("swaptions", soc::Engine::kQuantum)
                            .analysis(true)
                            .build();
  sim::Session unseeded = tiny_scenario("swaptions", soc::Engine::kQuantum)
                              .analysis(false)
                              .build();
  ASSERT_NE(seeded.analysis(), nullptr);
  EXPECT_EQ(unseeded.analysis(), nullptr);
  const auto* seeded_cache = seeded.soc().core(0).trace_cache();
  ASSERT_NE(seeded_cache, nullptr);
  EXPECT_GT(seeded_cache->stats().seeded, 0u);

  const soc::RunStats a = seeded.run();
  const soc::RunStats b = unseeded.run();
  EXPECT_EQ(a, b);  // host-speed only: identical simulated outcomes

  const auto& ss = seeded.soc().core(0).trace_cache()->stats();
  const auto& us = unseeded.soc().core(0).trace_cache()->stats();
  // Seeds engage at least as much trace coverage with fewer heat-warming
  // misses than threshold-triggered recording.
  EXPECT_GE(ss.insts_from_traces, us.insts_from_traces);
  EXPECT_GT(ss.dispatches, 0u);
  EXPECT_LT(ss.heat_misses, us.heat_misses);
}

TEST(AnalysisClients, BoundedEngineWithAnalysisMatchesStepwise) {
  for (const char* workload : {"mcf", "streamcluster"}) {
    sim::Session stepwise = tiny_scenario(workload, soc::Engine::kStepwise)
                                .analysis(false)
                                .build();
    sim::Session bounded = tiny_scenario(workload, soc::Engine::kQuantumBounded)
                               .analysis(true)
                               .build();
    // The bound must actually be armed on the producer unit.
    EXPECT_TRUE(bounded.soc().unit(0).static_bound_active());
    const soc::RunStats ref = stepwise.run();
    const soc::RunStats tightened = bounded.run();
    expect_equal_except_occupancy(ref, tightened);
  }
}

TEST(AnalysisClients, ForkAndRestoreReapplySeedsAndBound) {
  sim::Session session = tiny_scenario("swaptions", soc::Engine::kQuantum)
                             .analysis(true)
                             .build();
  session.advance(20'000);
  const soc::Snapshot warm = session.snapshot();

  sim::Session fork = session.fork(warm);
  ASSERT_NE(fork.analysis(), nullptr);
  EXPECT_GT(fork.soc().core(0).trace_cache()->stats().seeded, 0u);
  EXPECT_TRUE(fork.soc().unit(0).static_bound_active());

  const u64 seeded_before = session.soc().core(0).trace_cache()->stats().seeded;
  session.restore(warm);
  // restore() flushes traces, then apply_analysis re-seeds.
  EXPECT_GT(session.soc().core(0).trace_cache()->stats().seeded, seeded_before);
  EXPECT_TRUE(session.soc().unit(0).static_bound_active());

  const soc::RunStats run_on = session.run();
  const soc::RunStats forked = fork.run();
  EXPECT_EQ(run_on, forked);
}

// ---------------------------------------------------------------------------
// Self-modification: conservative fallback (satellite contract)
// ---------------------------------------------------------------------------

/// A hot loop that, once, stores into its own code page (overwriting the dead
/// tail — never executed, so architectural behaviour is unchanged, but the
/// write must still drop every derived static structure covering the page).
isa::Program self_writing_program() {
  Assembler a;
  a.li(5, 200);
  a.li(10, 0x0100'0000);
  // One store into the code image before the hot loop (targets the dead tail
  // below) — the loop's later trace-cache activity then processes the
  // deferred page invalidation.
  a.li(11, static_cast<i64>(isa::kDefaultCodeBase));
  a.sd(6, 11, 0x80);
  auto loop = a.new_label();
  a.bind(loop);
  a.addi(6, 6, 1);
  a.ld(7, 10, 0);
  a.sd(6, 10, 8);
  a.addi(5, 5, -1);
  a.bne(5, 0, loop);
  a.halt();
  while (a.size() < 0x80 / 4 + 2) a.nop();  // dead tail: the store target
  a.halt();
  return a.finalize("self-write");
}

TEST(SelfModify, CodeStoreDropsTracesAndStaticBound) {
  sim::Scenario scenario = sim::Scenario()
                               .program(self_writing_program())
                               .dual()
                               .engine(soc::Engine::kQuantumBounded);
  sim::Session with = sim::Scenario(scenario).analysis(true).build();
  sim::Session without = sim::Scenario(scenario).analysis(false).build();
  EXPECT_TRUE(with.soc().unit(0).static_bound_active());
  EXPECT_GT(with.soc().core(0).trace_cache()->stats().seeded, 0u);
  const soc::RunStats a = with.run();
  const soc::RunStats b = without.run();
  // Bit-identical despite the mid-run fallback.
  expect_equal_except_occupancy(a, b);
  // The code-page store dropped the static bound on the producer unit...
  EXPECT_FALSE(with.soc().unit(0).static_bound_active());
  // ...and invalidated the traces covering the written page.
  EXPECT_GT(with.soc().core(0).trace_cache()->stats().code_write_flushes, 0u);
}

TEST(SelfModify, RestoreRearmsTheDroppedBound) {
  sim::Session session = sim::Scenario()
                             .program(self_writing_program())
                             .dual()
                             .engine(soc::Engine::kQuantumBounded)
                             .analysis(true)
                             .build();
  const soc::Snapshot start = session.snapshot();
  const soc::RunStats first = session.run();
  EXPECT_FALSE(session.soc().unit(0).static_bound_active());
  // Restoring rewinds memory to the analysed image, so the bound is trusted
  // again — and the rerun must reproduce the run bit-identically.
  session.restore(start);
  EXPECT_TRUE(session.soc().unit(0).static_bound_active());
  const soc::RunStats second = session.run();
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace flexstep::analysis
