// Fault-injection campaign tests: coverage, latency sanity, detection kinds,
// whole-SoC fault-site adapters, and vulnerability-campaign classification.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/stats.h"
#include "fault/campaign.h"
#include "fault/sites.h"
#include "fault/vuln.h"
#include "flexstep/channel.h"
#include "sim/scenario.h"
#include "workloads/profile.h"
#include "workloads/program_builder.h"

namespace flexstep::fault {
namespace {

CampaignConfig small_campaign(u32 faults = 150) {
  CampaignConfig config;
  config.target_faults = faults;
  config.warmup_rounds = 20'000;
  config.gap_rounds = 1'000;
  config.workload_iterations = 20'000;
  return config;
}

TEST(FaultCampaign, ReachesTargetInjectionCount) {
  const auto stats = run_fault_campaign(workloads::find_profile("swaptions"),
                                        soc::SocConfig::paper_default(2),
                                        small_campaign());
  EXPECT_EQ(stats.injected, 150u);
  EXPECT_EQ(stats.detected + stats.undetected, stats.injected);
}

TEST(FaultCampaign, HighCoverage) {
  const auto stats = run_fault_campaign(workloads::find_profile("swaptions"),
                                        soc::SocConfig::paper_default(2),
                                        small_campaign(300));
  // Paper reports >99.9%; our synthetic workloads legitimately mask a few
  // percent (dead temporaries, shifted-out bits) — see EXPERIMENTS.md.
  EXPECT_GT(stats.coverage(), 0.80);
}

TEST(FaultCampaign, LatenciesArePositiveAndBounded) {
  const auto stats = run_fault_campaign(workloads::find_profile("hmmer"),
                                        soc::SocConfig::paper_default(2),
                                        small_campaign(200));
  const auto latencies = stats.latencies_us();
  ASSERT_FALSE(latencies.empty());
  for (double latency : latencies) {
    EXPECT_GT(latency, 0.0);
    // Bounded by buffering: channel capacity (~2048 entries) plus a couple of
    // segments and OS-tick interference — far below 1 ms.
    EXPECT_LT(latency, 200.0);
  }
}

FaultOutcome detected_outcome(double latency_us,
                              fs::DetectKind kind = fs::DetectKind::kStoreData) {
  FaultOutcome outcome;
  outcome.detected = true;
  outcome.latency_us = latency_us;
  outcome.detect_kind = kind;
  outcome.kind = OutcomeKind::kDetected;
  return outcome;
}

FaultOutcome undetected_outcome(OutcomeKind kind = OutcomeKind::kMasked) {
  FaultOutcome outcome;
  outcome.kind = kind;
  return outcome;
}

TEST(CampaignStats, MergeFoldsCountersAndAppendsOutcomes) {
  CampaignStats a;
  a.record(detected_outcome(3.5));
  a.record(undetected_outcome());
  CampaignStats b;
  b.record(detected_outcome(7.25, fs::DetectKind::kEcpReg));
  b.record(undetected_outcome(OutcomeKind::kSdc));
  b.record(undetected_outcome(OutcomeKind::kDue));

  a.merge(std::move(b));
  EXPECT_EQ(a.injected, 5u);
  EXPECT_EQ(a.detected, 2u);
  EXPECT_EQ(a.undetected, 3u);
  EXPECT_EQ(a.masked, 1u);
  EXPECT_EQ(a.sdc, 1u);
  EXPECT_EQ(a.due, 1u);
  EXPECT_DOUBLE_EQ(a.sdc_rate(), 0.2);
  ASSERT_EQ(a.outcomes.size(), 5u);
  EXPECT_DOUBLE_EQ(a.outcomes[2].latency_us, 7.25);
  EXPECT_EQ(a.outcomes[2].detect_kind, fs::DetectKind::kEcpReg);
}

TEST(CampaignStats, MergeKeepsShardOrderDeterministic) {
  // Shards fold in ascending shard order; the merged outcome stream must be
  // exactly shard-0's records followed by shard-1's — never interleaved.
  CampaignStats a;
  a.record(detected_outcome(1.0));
  a.record(detected_outcome(2.0));
  CampaignStats b;
  b.record(detected_outcome(3.0));
  a.merge(std::move(b));
  const auto latencies = a.latencies_us();
  ASSERT_EQ(latencies.size(), 3u);
  EXPECT_DOUBLE_EQ(latencies[0], 1.0);
  EXPECT_DOUBLE_EQ(latencies[1], 2.0);
  EXPECT_DOUBLE_EQ(latencies[2], 3.0);
}

TEST(CampaignStats, LatenciesEmptyOnFreshStats) {
  const CampaignStats stats;
  EXPECT_TRUE(stats.latencies_us().empty());
  EXPECT_DOUBLE_EQ(stats.coverage(), 0.0);
  EXPECT_DOUBLE_EQ(stats.sdc_rate(), 0.0);
}

TEST(CampaignStats, LatenciesEmptyWhenAllMasked) {
  CampaignStats stats;
  stats.record(undetected_outcome());
  stats.record(undetected_outcome());
  EXPECT_EQ(stats.injected, 2u);
  EXPECT_EQ(stats.masked, 2u);
  EXPECT_TRUE(stats.latencies_us().empty());
  EXPECT_DOUBLE_EQ(stats.coverage(), 0.0);
}

TEST(FaultCampaign, ShardQuotasSumToTarget) {
  // 90 faults over 4 shards: every shard contributes and the total is exact.
  auto config = small_campaign(90);
  config.shards = 4;
  const auto stats = run_fault_campaign(workloads::find_profile("swaptions"),
                                        soc::SocConfig::paper_default(2), config);
  EXPECT_EQ(stats.injected, 90u);
  EXPECT_EQ(stats.outcomes.size(), 90u);
  EXPECT_EQ(stats.detected + stats.undetected, stats.injected);
}

TEST(FaultCampaign, DeterministicForSeed) {
  const auto a = run_fault_campaign(workloads::find_profile("bzip2"),
                                    soc::SocConfig::paper_default(2), small_campaign());
  const auto b = run_fault_campaign(workloads::find_profile("bzip2"),
                                    soc::SocConfig::paper_default(2), small_campaign());
  EXPECT_EQ(a.detected, b.detected);
  EXPECT_EQ(a.undetected, b.undetected);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].detected, b.outcomes[i].detected);
    EXPECT_DOUBLE_EQ(a.outcomes[i].latency_us, b.outcomes[i].latency_us);
  }
}

TEST(FaultCampaign, DetectionKindsAreDiverse) {
  const auto stats = run_fault_campaign(workloads::find_profile("streamcluster"),
                                        soc::SocConfig::paper_default(2),
                                        small_campaign(400));
  // Tail injection overwhelmingly lands on MAL entries, whose corruptions are
  // caught in-flight; assert the in-flight kinds are all represented and that
  // some faults mask (dead temporaries). Checkpoint (ECP) detection is
  // exercised deterministically by CheckpointCorruptionIsDetectedAtTheEcp
  // below — at the campaign level it is a <1% event on every workload
  // (corrupted load data almost always reaches a store first).
  bool saw_load_addr = false;
  bool saw_store_addr = false;
  bool saw_store_data = false;
  for (const auto& outcome : stats.outcomes) {
    if (!outcome.detected) continue;
    switch (outcome.detect_kind) {
      case fs::DetectKind::kLoadAddr: saw_load_addr = true; break;
      case fs::DetectKind::kStoreAddr: saw_store_addr = true; break;
      case fs::DetectKind::kStoreData: saw_store_data = true; break;
      default: break;
    }
  }
  EXPECT_TRUE(saw_load_addr);
  EXPECT_TRUE(saw_store_addr);
  EXPECT_TRUE(saw_store_data);
  EXPECT_GT(stats.undetected, 0u);
}

TEST(FaultCampaign, CheckpointCorruptionIsDetectedAtTheEcp) {
  // Corrupt a SegmentEnd checkpoint word and assert the checker reports the
  // mismatch at the end-checkpoint comparison — the detection path that is
  // too rare under random tail injection to assert from campaign statistics.
  const auto& profile = workloads::find_profile("swaptions");
  workloads::BuildOptions build;
  build.seed = 3;
  build.iterations_override = 20'000;
  const auto program = workloads::build_workload(profile, build);

  soc::Soc soc(soc::SocConfig::paper_default(2));
  soc::VerifiedExecution exec(soc, soc::VerifiedRunConfig{0, {1}});
  exec.prepare(program);
  ASSERT_TRUE(exec.advance(20'000));
  fs::Channel* ch = soc.fabric().channels().front();

  // Advance until a SegmentEnd checkpoint sits buffered in the channel, then
  // corrupt it in place (any queued item is still unconsumed by the checker).
  std::size_t end_index = 0;
  bool found = false;
  for (u64 step = 0; step < 10'000 && !found; ++step) {
    for (std::size_t i = 0; i < ch->size(); ++i) {
      if (ch->item(i).kind == fs::StreamItem::Kind::kSegmentEnd) {
        end_index = i;
        found = true;
        break;
      }
    }
    if (!found) ASSERT_TRUE(exec.advance(64));
  }
  ASSERT_TRUE(found);

  Rng rng(7);
  const auto fault = ch->inject_fault_at(end_index, rng, soc.max_cycle());
  ASSERT_TRUE(fault.has_value());
  ASSERT_EQ(fault->item_kind, fs::StreamItem::Kind::kSegmentEnd);

  bool detected = false;
  fs::DetectKind kind{};
  while (!detected && exec.advance(64)) {
    for (const auto& event : soc.fabric().reporter().events()) {
      if (event.attributed) {
        detected = true;
        kind = event.kind;
        break;
      }
    }
  }
  ASSERT_TRUE(detected);
  EXPECT_TRUE(kind == fs::DetectKind::kEcpReg || kind == fs::DetectKind::kEcpPc)
      << detect_kind_name(kind);
}

TEST(FaultCampaign, ShorterSegmentsDetectFaster) {
  soc::SocConfig fast = soc::SocConfig::paper_default(2);
  fast.flexstep.segment_limit = 1000;
  soc::SocConfig slow = soc::SocConfig::paper_default(2);
  slow.flexstep.segment_limit = 10000;
  slow.flexstep.channel_capacity = 12000;  // keep a full segment buffered

  const auto& profile = workloads::find_profile("swaptions");
  const auto stats_fast = run_fault_campaign(profile, fast, small_campaign(200));
  const auto stats_slow = run_fault_campaign(profile, slow, small_campaign(200));
  const auto lat_fast = stats_fast.latencies_us();
  const auto lat_slow = stats_slow.latencies_us();
  ASSERT_FALSE(lat_fast.empty());
  ASSERT_FALSE(lat_slow.empty());
  EXPECT_LT(mean(lat_fast), mean(lat_slow));
}

// ---------------------------------------------------------------------------
// Whole-SoC fault sites (fault/sites.h)
// ---------------------------------------------------------------------------

/// A warmed dual-core session with live DBC state (non-empty channel and at
/// least one complete segment queued), so every component class has sites.
sim::Session warmed_session() {
  sim::Scenario scenario;
  scenario.workload(workloads::find_profile("swaptions"))
      .seed(3)
      .iterations(20'000)
      .soc(soc::SocConfig::paper_default(2))
      .main_core(0)
      .checkers({1})
      .tolerate_stall(true);
  sim::Session session = scenario.build();
  EXPECT_TRUE(session.advance(30'000));
  fs::Channel* ch = session.channel();
  EXPECT_NE(ch, nullptr);
  while (ch->empty() || ch->complete_segments_queued() == 0) {
    EXPECT_TRUE(session.advance(64));
  }
  return session;
}

TEST(FaultSites, EveryComponentEnumeratesSites) {
  sim::Session session = warmed_session();
  for (std::size_t c = 0; c < kComponentCount; ++c) {
    const auto component = static_cast<Component>(c);
    EXPECT_GT(site_index_count(session.soc(), component), 0u)
        << component_name(component);
  }
}

TEST(FaultSites, FlipIsSelfInverseForEveryComponent) {
  sim::Session session = warmed_session();
  Rng rng(0x51735);
  for (std::size_t c = 0; c < kComponentCount; ++c) {
    const auto component = static_cast<Component>(c);
    // Several random sites per component so the per-field sub-routing (BTB
    // target/pc/valid, MAL addr/data, SCP pc/regs, ...) gets exercised.
    for (int trial = 0; trial < 8; ++trial) {
      const u64 before = snapshot_digest(session.snapshot());
      const FaultSite site = random_site(session.soc(), component, rng);
      flip(session.soc(), site);
      EXPECT_NE(snapshot_digest(session.snapshot()), before) << describe(site);
      flip(session.soc(), site);
      EXPECT_EQ(snapshot_digest(session.snapshot()), before) << describe(site);
    }
  }
}

TEST(FaultSites, DescribeRoundTripsThroughParse) {
  sim::Session session = warmed_session();
  Rng rng(0xD15C);
  for (std::size_t c = 0; c < kComponentCount; ++c) {
    const FaultSite site =
        random_site(session.soc(), static_cast<Component>(c), rng);
    const auto parsed = parse_site(describe(site));
    ASSERT_TRUE(parsed.has_value()) << describe(site);
    EXPECT_EQ(*parsed, site);
  }
  EXPECT_FALSE(parse_site("").has_value());
  EXPECT_FALSE(parse_site("warp i0 b0 @0").has_value());
  EXPECT_FALSE(parse_site("mem i3 b4").has_value());
  EXPECT_FALSE(parse_site("mem i3 b4 @9 extra").has_value());
  EXPECT_FALSE(parse_site("mem ix b4 @9").has_value());
}

TEST(FaultSites, ParseFailuresCarryStructuredDiagnostics) {
  EXPECT_NE(parse_site_checked("warp i0 b0 @0").error.find("unknown component"),
            std::string::npos);
  EXPECT_NE(parse_site_checked("mem x3 b4 @9").error.find("index token"),
            std::string::npos);
  EXPECT_NE(parse_site_checked("mem i3 x4 @9").error.find("bit token"),
            std::string::npos);
  EXPECT_NE(parse_site_checked("mem i3 b4 9").error.find("cycle token"),
            std::string::npos);
  EXPECT_NE(parse_site_checked("mem i3 b4 @9 junk").error.find("trailing"),
            std::string::npos);
  const auto ok = parse_site_checked("mem i3 b4 @9");
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(ok.error.empty());
  EXPECT_EQ(ok.site->index, 3u);
}

TEST(FaultSites, ParseNeverAbortsOnMutatedDescriptions) {
  // Deterministic fuzz: mutate valid descriptions (truncation, byte
  // substitution, duplication) and require parse_site_checked to return —
  // either rejecting with a diagnostic or, when the mutation is benign,
  // round-tripping to SOME site that re-describes to the parsed text.
  Rng rng(0xF022);
  const FaultSite base{Component::kDbcMeta, 12, 7, 990};
  const std::string good = describe(base);
  ASSERT_EQ(parse_site(good), base);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string mutated = good;
    switch (rng.next_below(3)) {
      case 0:  // truncate
        mutated.resize(rng.next_below(mutated.size() + 1));
        break;
      case 1:  // substitute one byte with printable noise
        mutated[rng.next_below(mutated.size())] =
            static_cast<char>(' ' + rng.next_below(95));
        break;
      default:  // duplicate a chunk
        mutated += mutated.substr(rng.next_below(mutated.size()));
        break;
    }
    const auto result = parse_site_checked(mutated);
    if (result.ok()) {
      EXPECT_TRUE(result.error.empty()) << mutated;
      EXPECT_EQ(parse_site(describe(*result.site)), result.site) << mutated;
    } else {
      EXPECT_FALSE(result.error.empty()) << mutated;
    }
  }
}

// ---------------------------------------------------------------------------
// Vulnerability campaigns (fault/vuln.h)
// ---------------------------------------------------------------------------

VulnConfig small_vuln(u32 faults = 28) {
  VulnConfig config;
  config.target_faults = faults;
  config.shards = 4;
  config.warmup_rounds = 20'000;
  config.gap_rounds = 1'000;
  config.horizon = 16'000;
  config.workload_iterations = 20'000;
  return config;
}

TEST(VulnCampaign, ClassifiesEveryInjectionAcrossAllComponents) {
  auto config = small_vuln();
  config.root_cause = true;
  const auto report = run_vuln_campaign(workloads::find_profile("swaptions"),
                                        soc::SocConfig::paper_default(2), config);
  EXPECT_EQ(report.injected, 28u);
  EXPECT_EQ(report.records.size(), 28u);
  // The four-way classification must be exhaustive and exclusive.
  EXPECT_EQ(report.masked + report.detected + report.sdc + report.due,
            report.injected);
  report.check_invariant();
  // 28 faults round-robined over 7 component classes: exactly 4 each.
  for (std::size_t c = 0; c < kComponentCount; ++c) {
    EXPECT_EQ(report.components[c].injected, 4u)
        << component_name(static_cast<Component>(c));
  }
  EXPECT_GT(report.detected, 0u);
  for (const auto& record : report.records) {
    if (record.outcome == OutcomeKind::kDetected) {
      EXPECT_GE(record.latency_us, 0.0);
    }
    // Root-cause attribution only ever fires on SDC/DUE outcomes, and an
    // attributed divergence names two distinct replay positions or pcs.
    if (record.rc_valid) {
      EXPECT_TRUE(record.outcome == OutcomeKind::kSdc ||
                  record.outcome == OutcomeKind::kDue);
    }
  }
}

TEST(VulnCampaign, DeterministicAcrossModesAndThreads) {
  const auto& profile = workloads::find_profile("swaptions");
  const auto soc_config = soc::SocConfig::paper_default(2);
  auto config = small_vuln(14);
  config.threads = 1;
  const auto fork_serial = run_vuln_campaign(profile, soc_config, config);
  config.threads = 8;
  const auto fork_wide = run_vuln_campaign(profile, soc_config, config);
  config.mode = CampaignMode::kWarmupReexecution;
  const auto reexec = run_vuln_campaign(profile, soc_config, config);

  EXPECT_EQ(fork_serial.digest(), fork_wide.digest());
  EXPECT_EQ(fork_serial.digest(), reexec.digest());
  EXPECT_EQ(fork_serial.injected, 14u);
  // Re-execution simulates every warmup prefix again; fork restores them.
  EXPECT_GT(reexec.total_instructions, fork_serial.total_instructions);
}

TEST(VulnCampaign, LatencyHistogramCountsDetectionsOnly) {
  VulnReport report;
  InjectionRecord detected;
  detected.site.component = Component::kDbcEntry;
  detected.outcome = OutcomeKind::kDetected;
  detected.latency_us = 5.0;
  InjectionRecord masked;
  masked.site.component = Component::kMemory;
  report.add(detected);
  report.add(masked);
  report.check_invariant();
  EXPECT_EQ(report.latency_histogram().total(), 1u);
  EXPECT_DOUBLE_EQ(
      report.components[static_cast<std::size_t>(Component::kDbcEntry)]
          .coverage(),
      1.0);
  EXPECT_DOUBLE_EQ(
      report.components[static_cast<std::size_t>(Component::kMemory)]
          .coverage(),
      0.0);
}

// ---------------------------------------------------------------------------
// Config validation (FLEX_CHECK aborts with a usable message)
// ---------------------------------------------------------------------------

TEST(CampaignValidationDeathTest, RejectsDegenerateConfigs) {
  const auto& profile = workloads::find_profile("swaptions");
  const auto soc_config = soc::SocConfig::paper_default(2);
  auto no_shards = small_campaign(10);
  no_shards.shards = 0;
  EXPECT_DEATH(run_fault_campaign(profile, soc_config, no_shards),
               "shards must be >= 1");
  auto no_faults = small_campaign(10);
  no_faults.target_faults = 0;
  EXPECT_DEATH(run_fault_campaign(profile, soc_config, no_faults),
               "target_faults must be > 0");
  auto no_warmup = small_campaign(10);
  no_warmup.warmup_rounds = 0;
  EXPECT_DEATH(run_fault_campaign(profile, soc_config, no_warmup), "nonzero");
}

TEST(VulnValidationDeathTest, RejectsDegenerateConfigs) {
  const auto& profile = workloads::find_profile("swaptions");
  const auto soc_config = soc::SocConfig::paper_default(2);
  auto no_horizon = small_vuln(4);
  no_horizon.horizon = 0;
  EXPECT_DEATH(run_vuln_campaign(profile, soc_config, no_horizon), "nonzero");
  auto no_shards = small_vuln(4);
  no_shards.shards = 0;
  EXPECT_DEATH(run_vuln_campaign(profile, soc_config, no_shards),
               "shards must be >= 1");
  auto no_faults = small_vuln(4);
  no_faults.target_faults = 0;
  EXPECT_DEATH(run_vuln_campaign(profile, soc_config, no_faults),
               "target_faults must be > 0");
}

}  // namespace
}  // namespace flexstep::fault
