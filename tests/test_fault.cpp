// Fault-injection campaign tests: coverage, latency sanity, detection kinds.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/stats.h"
#include "fault/campaign.h"
#include "workloads/profile.h"
#include "workloads/program_builder.h"

namespace flexstep::fault {
namespace {

CampaignConfig small_campaign(u32 faults = 150) {
  CampaignConfig config;
  config.target_faults = faults;
  config.warmup_rounds = 20'000;
  config.gap_rounds = 1'000;
  config.workload_iterations = 20'000;
  return config;
}

TEST(FaultCampaign, ReachesTargetInjectionCount) {
  const auto stats = run_fault_campaign(workloads::find_profile("swaptions"),
                                        soc::SocConfig::paper_default(2),
                                        small_campaign());
  EXPECT_EQ(stats.injected, 150u);
  EXPECT_EQ(stats.detected + stats.undetected, stats.injected);
}

TEST(FaultCampaign, HighCoverage) {
  const auto stats = run_fault_campaign(workloads::find_profile("swaptions"),
                                        soc::SocConfig::paper_default(2),
                                        small_campaign(300));
  // Paper reports >99.9%; our synthetic workloads legitimately mask a few
  // percent (dead temporaries, shifted-out bits) — see EXPERIMENTS.md.
  EXPECT_GT(stats.coverage(), 0.80);
}

TEST(FaultCampaign, LatenciesArePositiveAndBounded) {
  const auto stats = run_fault_campaign(workloads::find_profile("hmmer"),
                                        soc::SocConfig::paper_default(2),
                                        small_campaign(200));
  const auto latencies = stats.latencies_us();
  ASSERT_FALSE(latencies.empty());
  for (double latency : latencies) {
    EXPECT_GT(latency, 0.0);
    // Bounded by buffering: channel capacity (~2048 entries) plus a couple of
    // segments and OS-tick interference — far below 1 ms.
    EXPECT_LT(latency, 200.0);
  }
}

TEST(CampaignStats, MergeFoldsCountersAndAppendsOutcomes) {
  CampaignStats a;
  a.injected = 2;
  a.detected = 1;
  a.undetected = 1;
  a.outcomes.push_back({true, 3.5, fs::DetectKind::kStoreData, fs::StreamItem::Kind::kMem});
  a.outcomes.push_back({false, 0.0, {}, fs::StreamItem::Kind::kMem});
  CampaignStats b;
  b.injected = 1;
  b.detected = 1;
  b.undetected = 0;
  b.outcomes.push_back({true, 7.25, fs::DetectKind::kEcpReg, fs::StreamItem::Kind::kSegmentEnd});

  a.merge(std::move(b));
  EXPECT_EQ(a.injected, 3u);
  EXPECT_EQ(a.detected, 2u);
  EXPECT_EQ(a.undetected, 1u);
  ASSERT_EQ(a.outcomes.size(), 3u);
  EXPECT_DOUBLE_EQ(a.outcomes[2].latency_us, 7.25);
  EXPECT_EQ(a.outcomes[2].detect_kind, fs::DetectKind::kEcpReg);
}

TEST(FaultCampaign, ShardQuotasSumToTarget) {
  // 90 faults over 4 shards: every shard contributes and the total is exact.
  auto config = small_campaign(90);
  config.shards = 4;
  const auto stats = run_fault_campaign(workloads::find_profile("swaptions"),
                                        soc::SocConfig::paper_default(2), config);
  EXPECT_EQ(stats.injected, 90u);
  EXPECT_EQ(stats.outcomes.size(), 90u);
  EXPECT_EQ(stats.detected + stats.undetected, stats.injected);
}

TEST(FaultCampaign, DeterministicForSeed) {
  const auto a = run_fault_campaign(workloads::find_profile("bzip2"),
                                    soc::SocConfig::paper_default(2), small_campaign());
  const auto b = run_fault_campaign(workloads::find_profile("bzip2"),
                                    soc::SocConfig::paper_default(2), small_campaign());
  EXPECT_EQ(a.detected, b.detected);
  EXPECT_EQ(a.undetected, b.undetected);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].detected, b.outcomes[i].detected);
    EXPECT_DOUBLE_EQ(a.outcomes[i].latency_us, b.outcomes[i].latency_us);
  }
}

TEST(FaultCampaign, DetectionKindsAreDiverse) {
  const auto stats = run_fault_campaign(workloads::find_profile("streamcluster"),
                                        soc::SocConfig::paper_default(2),
                                        small_campaign(400));
  // Tail injection overwhelmingly lands on MAL entries, whose corruptions are
  // caught in-flight; assert the in-flight kinds are all represented and that
  // some faults mask (dead temporaries). Checkpoint (ECP) detection is
  // exercised deterministically by CheckpointCorruptionIsDetectedAtTheEcp
  // below — at the campaign level it is a <1% event on every workload
  // (corrupted load data almost always reaches a store first).
  bool saw_load_addr = false;
  bool saw_store_addr = false;
  bool saw_store_data = false;
  for (const auto& outcome : stats.outcomes) {
    if (!outcome.detected) continue;
    switch (outcome.detect_kind) {
      case fs::DetectKind::kLoadAddr: saw_load_addr = true; break;
      case fs::DetectKind::kStoreAddr: saw_store_addr = true; break;
      case fs::DetectKind::kStoreData: saw_store_data = true; break;
      default: break;
    }
  }
  EXPECT_TRUE(saw_load_addr);
  EXPECT_TRUE(saw_store_addr);
  EXPECT_TRUE(saw_store_data);
  EXPECT_GT(stats.undetected, 0u);
}

TEST(FaultCampaign, CheckpointCorruptionIsDetectedAtTheEcp) {
  // Corrupt a SegmentEnd checkpoint word and assert the checker reports the
  // mismatch at the end-checkpoint comparison — the detection path that is
  // too rare under random tail injection to assert from campaign statistics.
  const auto& profile = workloads::find_profile("swaptions");
  workloads::BuildOptions build;
  build.seed = 3;
  build.iterations_override = 20'000;
  const auto program = workloads::build_workload(profile, build);

  soc::Soc soc(soc::SocConfig::paper_default(2));
  soc::VerifiedExecution exec(soc, soc::VerifiedRunConfig{0, {1}});
  exec.prepare(program);
  ASSERT_TRUE(exec.advance(20'000));
  fs::Channel* ch = soc.fabric().channels().front();

  // Advance until a SegmentEnd checkpoint sits buffered in the channel, then
  // corrupt it in place (any queued item is still unconsumed by the checker).
  std::size_t end_index = 0;
  bool found = false;
  for (u64 step = 0; step < 10'000 && !found; ++step) {
    for (std::size_t i = 0; i < ch->size(); ++i) {
      if (ch->item(i).kind == fs::StreamItem::Kind::kSegmentEnd) {
        end_index = i;
        found = true;
        break;
      }
    }
    if (!found) ASSERT_TRUE(exec.advance(64));
  }
  ASSERT_TRUE(found);

  Rng rng(7);
  const auto fault = ch->inject_fault_at(end_index, rng, soc.max_cycle());
  ASSERT_TRUE(fault.has_value());
  ASSERT_EQ(fault->item_kind, fs::StreamItem::Kind::kSegmentEnd);

  bool detected = false;
  fs::DetectKind kind{};
  while (!detected && exec.advance(64)) {
    for (const auto& event : soc.fabric().reporter().events()) {
      if (event.attributed) {
        detected = true;
        kind = event.kind;
        break;
      }
    }
  }
  ASSERT_TRUE(detected);
  EXPECT_TRUE(kind == fs::DetectKind::kEcpReg || kind == fs::DetectKind::kEcpPc)
      << detect_kind_name(kind);
}

TEST(FaultCampaign, ShorterSegmentsDetectFaster) {
  soc::SocConfig fast = soc::SocConfig::paper_default(2);
  fast.flexstep.segment_limit = 1000;
  soc::SocConfig slow = soc::SocConfig::paper_default(2);
  slow.flexstep.segment_limit = 10000;
  slow.flexstep.channel_capacity = 12000;  // keep a full segment buffered

  const auto& profile = workloads::find_profile("swaptions");
  const auto stats_fast = run_fault_campaign(profile, fast, small_campaign(200));
  const auto stats_slow = run_fault_campaign(profile, slow, small_campaign(200));
  const auto lat_fast = stats_fast.latencies_us();
  const auto lat_slow = stats_slow.latencies_us();
  ASSERT_FALSE(lat_fast.empty());
  ASSERT_FALSE(lat_slow.empty());
  EXPECT_LT(mean(lat_fast), mean(lat_slow));
}

}  // namespace
}  // namespace flexstep::fault
