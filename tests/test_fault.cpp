// Fault-injection campaign tests: coverage, latency sanity, detection kinds.
#include <gtest/gtest.h>

#include "common/stats.h"
#include "fault/campaign.h"
#include "workloads/profile.h"

namespace flexstep::fault {
namespace {

CampaignConfig small_campaign(u32 faults = 150) {
  CampaignConfig config;
  config.target_faults = faults;
  config.warmup_rounds = 20'000;
  config.gap_rounds = 1'000;
  config.workload_iterations = 20'000;
  return config;
}

TEST(FaultCampaign, ReachesTargetInjectionCount) {
  const auto stats = run_fault_campaign(workloads::find_profile("swaptions"),
                                        soc::SocConfig::paper_default(2),
                                        small_campaign());
  EXPECT_EQ(stats.injected, 150u);
  EXPECT_EQ(stats.detected + stats.undetected, stats.injected);
}

TEST(FaultCampaign, HighCoverage) {
  const auto stats = run_fault_campaign(workloads::find_profile("swaptions"),
                                        soc::SocConfig::paper_default(2),
                                        small_campaign(300));
  // Paper reports >99.9%; our synthetic workloads legitimately mask a few
  // percent (dead temporaries, shifted-out bits) — see EXPERIMENTS.md.
  EXPECT_GT(stats.coverage(), 0.80);
}

TEST(FaultCampaign, LatenciesArePositiveAndBounded) {
  const auto stats = run_fault_campaign(workloads::find_profile("hmmer"),
                                        soc::SocConfig::paper_default(2),
                                        small_campaign(200));
  const auto latencies = stats.latencies_us();
  ASSERT_FALSE(latencies.empty());
  for (double latency : latencies) {
    EXPECT_GT(latency, 0.0);
    // Bounded by buffering: channel capacity (~2048 entries) plus a couple of
    // segments and OS-tick interference — far below 1 ms.
    EXPECT_LT(latency, 200.0);
  }
}

TEST(FaultCampaign, DeterministicForSeed) {
  const auto a = run_fault_campaign(workloads::find_profile("bzip2"),
                                    soc::SocConfig::paper_default(2), small_campaign());
  const auto b = run_fault_campaign(workloads::find_profile("bzip2"),
                                    soc::SocConfig::paper_default(2), small_campaign());
  EXPECT_EQ(a.detected, b.detected);
  EXPECT_EQ(a.undetected, b.undetected);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].detected, b.outcomes[i].detected);
    EXPECT_DOUBLE_EQ(a.outcomes[i].latency_us, b.outcomes[i].latency_us);
  }
}

TEST(FaultCampaign, DetectionKindsAreDiverse) {
  const auto stats = run_fault_campaign(workloads::find_profile("streamcluster"),
                                        soc::SocConfig::paper_default(2),
                                        small_campaign(400));
  bool saw_immediate = false;  // store/load address or data mismatch
  bool saw_ecp = false;        // end-checkpoint comparison
  for (const auto& outcome : stats.outcomes) {
    if (!outcome.detected) continue;
    switch (outcome.detect_kind) {
      case fs::DetectKind::kLoadAddr:
      case fs::DetectKind::kStoreAddr:
      case fs::DetectKind::kStoreData:
      case fs::DetectKind::kAmoStore:
      case fs::DetectKind::kScMismatch: saw_immediate = true; break;
      case fs::DetectKind::kEcpReg:
      case fs::DetectKind::kEcpPc: saw_ecp = true; break;
      default: break;
    }
  }
  EXPECT_TRUE(saw_immediate);  // corrupted addresses/stores caught in-flight
  EXPECT_TRUE(saw_ecp);        // corrupted load data caught at the checkpoint
}

TEST(FaultCampaign, ShorterSegmentsDetectFaster) {
  soc::SocConfig fast = soc::SocConfig::paper_default(2);
  fast.flexstep.segment_limit = 1000;
  soc::SocConfig slow = soc::SocConfig::paper_default(2);
  slow.flexstep.segment_limit = 10000;
  slow.flexstep.channel_capacity = 12000;  // keep a full segment buffered

  const auto& profile = workloads::find_profile("swaptions");
  const auto stats_fast = run_fault_campaign(profile, fast, small_campaign(200));
  const auto stats_slow = run_fault_campaign(profile, slow, small_campaign(200));
  const auto lat_fast = stats_fast.latencies_us();
  const auto lat_slow = stats_slow.latencies_us();
  ASSERT_FALSE(lat_fast.empty());
  ASSERT_FALSE(lat_slow.empty());
  EXPECT_LT(mean(lat_fast), mean(lat_slow));
}

}  // namespace
}  // namespace flexstep::fault
