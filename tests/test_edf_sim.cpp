// Discrete-event EDF engine tests: preemption, dependencies, non-preemption,
// gang co-scheduling, Gantt rendering.
#include <gtest/gtest.h>

#include "sched/edf_sim.h"

namespace flexstep::sched {
namespace {

SimJob job(u32 task, u32 core, double release, double wcet, double deadline) {
  SimJob j;
  j.task_id = task;
  j.core = core;
  j.release = release;
  j.wcet = wcet;
  j.deadline = deadline;
  j.sched_deadline = deadline;
  return j;
}

double completion_of(const SimResult& result, u32 job_index) {
  double end = -1.0;
  for (const auto& slice : result.gantt) {
    if (slice.job_index == job_index) end = std::max(end, slice.end);
  }
  return end;
}

TEST(EdfSim, SingleJobRunsAtRelease) {
  const auto result = simulate_edf({job(0, 0, 5, 10, 30)}, 1, 100);
  EXPECT_TRUE(result.feasible);
  ASSERT_EQ(result.gantt.size(), 1u);
  EXPECT_DOUBLE_EQ(result.gantt[0].start, 5.0);
  EXPECT_DOUBLE_EQ(result.gantt[0].end, 15.0);
}

TEST(EdfSim, EdfOrderByDeadline) {
  // Two jobs released together: the tighter deadline runs first.
  const auto result =
      simulate_edf({job(0, 0, 0, 5, 100), job(1, 0, 0, 5, 20)}, 1, 100);
  EXPECT_TRUE(result.feasible);
  EXPECT_GT(completion_of(result, 0), completion_of(result, 1));
}

TEST(EdfSim, PreemptionOnRelease) {
  // Long job starts; a tight job released mid-way preempts it.
  const auto result =
      simulate_edf({job(0, 0, 0, 20, 100), job(1, 0, 5, 5, 15)}, 1, 100);
  EXPECT_TRUE(result.feasible);
  EXPECT_DOUBLE_EQ(completion_of(result, 1), 10.0);
  EXPECT_DOUBLE_EQ(completion_of(result, 0), 25.0);
}

TEST(EdfSim, DependencyDefersStart) {
  std::vector<SimJob> jobs{job(0, 0, 0, 10, 50), job(1, 1, 0, 5, 50)};
  jobs[1].depends_on = 0;  // cross-core dependency (FlexStep checking)
  const auto result = simulate_edf(jobs, 2, 100);
  EXPECT_TRUE(result.feasible);
  // Job 1 cannot start before job 0 completes at t=10.
  for (const auto& slice : result.gantt) {
    if (slice.job_index == 1) {
      EXPECT_GE(slice.start, 10.0);
    }
  }
}

TEST(EdfSim, NonPreemptiveJobBlocksTighterArrival) {
  std::vector<SimJob> jobs{job(0, 0, 0, 20, 100), job(1, 0, 5, 5, 18)};
  jobs[0].non_preemptive = true;
  const auto result = simulate_edf(jobs, 1, 100);
  EXPECT_FALSE(result.feasible);  // job 1 misses: blocked until t=20
  ASSERT_EQ(result.misses.size(), 1u);
  EXPECT_EQ(result.misses[0].task_id, 1u);
}

TEST(EdfSim, GangOccupiesBothCores) {
  std::vector<SimJob> jobs{job(0, 0, 0, 10, 100), job(0, 1, 0, 10, 100),
                           job(1, 1, 0, 4, 30)};
  jobs[1].gang_master = 0;  // mirror on core 1
  const auto result = simulate_edf(jobs, 2, 100);
  EXPECT_TRUE(result.feasible);
  // The mirror executes exactly when the master does.
  double master_time = 0.0;
  double mirror_time = 0.0;
  for (const auto& slice : result.gantt) {
    if (slice.job_index == 0) master_time += slice.end - slice.start;
    if (slice.job_index == 1) mirror_time += slice.end - slice.start;
  }
  EXPECT_DOUBLE_EQ(master_time, 10.0);
  EXPECT_DOUBLE_EQ(mirror_time, 10.0);
}

TEST(EdfSim, GangWaitsForMirrorCore) {
  // The mirror core is busy with a non-preemptible tight job: the gang must
  // wait even though the master core is free.
  std::vector<SimJob> jobs{job(0, 0, 0, 10, 100), job(0, 1, 0, 10, 100),
                           job(1, 1, 0, 6, 7)};
  jobs[1].gang_master = 0;
  jobs[2].non_preemptive = true;
  const auto result = simulate_edf(jobs, 2, 100);
  EXPECT_TRUE(result.feasible);
  double master_start = 1e9;
  for (const auto& slice : result.gantt) {
    if (slice.job_index == 0) master_start = std::min(master_start, slice.start);
  }
  EXPECT_GE(master_start, 6.0);
}

TEST(EdfSim, MissedDeadlineReported) {
  const auto result = simulate_edf({job(0, 0, 0, 30, 20)}, 1, 100);
  EXPECT_FALSE(result.feasible);
  ASSERT_EQ(result.misses.size(), 1u);
  EXPECT_DOUBLE_EQ(result.misses[0].completion, 30.0);
}

TEST(EdfSim, UnfinishedJobAtHorizonCountsAsMiss) {
  const auto result = simulate_edf({job(0, 0, 0, 200, 50)}, 1, 100);
  EXPECT_FALSE(result.feasible);
}

TEST(EdfSim, VirtualDeadlinePriority) {
  // sched_deadline earlier than deadline: job 0 wins EDF against job 1 even
  // though its real deadline is later (FlexStep original computations).
  std::vector<SimJob> jobs{job(0, 0, 0, 5, 100), job(1, 0, 0, 5, 60)};
  jobs[0].sched_deadline = 40.0;
  const auto result = simulate_edf(jobs, 1, 100);
  EXPECT_TRUE(result.feasible);
  EXPECT_LT(completion_of(result, 0), completion_of(result, 1));
}

TEST(EdfSim, GanttRenderShowsTasks) {
  const auto result = simulate_edf({job(0, 0, 0, 50, 100)}, 1, 100);
  const std::string gantt = render_gantt(result, 1, 100.0, 50);
  EXPECT_NE(gantt.find('A'), std::string::npos);
  EXPECT_NE(gantt.find("core 0"), std::string::npos);
}

TEST(EdfSim, ZeroWcetJobCompletesImmediately) {
  const auto result = simulate_edf({job(0, 0, 10, 0, 20)}, 1, 100);
  EXPECT_TRUE(result.feasible);
}

}  // namespace
}  // namespace flexstep::sched
