// sim::Scenario / sim::Session / soc::Snapshot semantics.
//
// The contracts under test:
//   * Round-trip bit-identity — run N instructions, snapshot, then run-on vs
//     restore-and-run produce identical RunStats (in-place and across forks).
//   * Fork isolation — a fault injected into a forked session never perturbs
//     its sibling or the baseline.
//   * Campaign parity — the snapshot-fork campaign reproduces the
//     warmup-re-execution campaign outcome-for-outcome at the same
//     (seed, shards) while executing measurably fewer instructions.
#include <gtest/gtest.h>

#include <cstdio>

#include "common/rng.h"
#include "fault/campaign.h"
#include "isa/assembler.h"
#include "sim/scenario.h"
#include "soc/snapshot.h"

namespace flexstep::sim {
namespace {

Scenario small_verified_scenario(u64 seed = 7) {
  Scenario scenario;
  scenario.workload("swaptions").seed(seed).iterations(600).dual();
  return scenario;
}

TEST(Scenario, AutoSizesTheSocToTheTopology) {
  EXPECT_EQ(Scenario().workload("swaptions").plain().soc_config().num_cores, 1u);
  EXPECT_EQ(Scenario().workload("swaptions").dual().soc_config().num_cores, 2u);
  EXPECT_EQ(Scenario().workload("swaptions").triple().soc_config().num_cores, 3u);
  EXPECT_EQ(Scenario().workload("swaptions").checkers({2, 3}).soc_config().num_cores, 4u);
  EXPECT_EQ(Scenario().workload("swaptions").dual().cores(8).soc_config().num_cores, 8u);
}

TEST(Scenario, FlexStepKnobsComposeWithTopologyInAnyOrder) {
  // Knob-before-topology must not freeze the core count (regression test).
  const auto knob_first = Scenario()
                              .workload("swaptions")
                              .segment_limit(1000)
                              .channel_capacity(4096)
                              .dual()
                              .soc_config();
  EXPECT_EQ(knob_first.num_cores, 2u);
  EXPECT_EQ(knob_first.flexstep.segment_limit, 1000u);
  EXPECT_EQ(knob_first.flexstep.channel_capacity, 4096u);

  const auto knob_last =
      Scenario().workload("swaptions").dual().segment_limit(1000).soc_config();
  EXPECT_EQ(knob_last.num_cores, 2u);
  EXPECT_EQ(knob_last.flexstep.segment_limit, 1000u);
}

TEST(Scenario, TwoBuildsEvolveBitIdentically) {
  const Scenario scenario = small_verified_scenario();
  Session a = scenario.build();
  Session b = scenario.build();
  EXPECT_EQ(a.run(), b.run());
}

TEST(Scenario, BuildProgramMatchesWorkloadBuilder) {
  workloads::BuildOptions build;
  build.seed = 3;
  build.iterations_override = 50;
  const auto direct = workloads::build_workload(workloads::find_profile("mcf"), build);
  const auto via_scenario =
      Scenario().workload("mcf").seed(3).iterations(50).build_program();
  EXPECT_EQ(direct.code.size(), via_scenario.code.size());
  EXPECT_EQ(direct.code_base, via_scenario.code_base);
  EXPECT_EQ(direct.data_base, via_scenario.data_base);
}

TEST(Snapshot, InPlaceRestoreIsBitIdentical) {
  const Scenario scenario = small_verified_scenario();
  Session session = scenario.build();
  ASSERT_TRUE(session.advance(50'000));
  const soc::Snapshot warm = session.snapshot();

  const soc::RunStats run_on = session.run();
  session.restore(warm);
  const soc::RunStats restored_run = session.run();
  EXPECT_EQ(run_on, restored_run);
}

TEST(Snapshot, FileRoundTripIsBitIdentical) {
  // The file path of the identity suite: save_file -> load_file into a fresh
  // session must reproduce the exact digest and be execution-indistinguishable
  // from the session that kept its state in memory.
  const Scenario scenario = small_verified_scenario();
  Session session = scenario.build();
  ASSERT_TRUE(session.advance(50'000));
  const u64 digest_at_save = soc::snapshot_digest(session.snapshot());

  const std::string path = "test_sim_snapshot.fxar";
  ASSERT_TRUE(session.save_file(path).ok());

  Session restored = scenario.build();
  const io::ArchiveError err = restored.load_file(path);
  ASSERT_TRUE(err.ok()) << err.message();
  EXPECT_EQ(soc::snapshot_digest(restored.snapshot()), digest_at_save);

  const soc::RunStats run_on = session.run();
  const soc::RunStats from_file = restored.run();
  EXPECT_EQ(run_on, from_file);
  std::remove(path.c_str());
}

TEST(Snapshot, LoadFileRejectsForeignGeometry) {
  // A snapshot from a dual-core platform must not restore into a single-core
  // session: structured kMalformed, target session untouched.
  Session dual = small_verified_scenario().build();
  ASSERT_TRUE(dual.advance(10'000));
  const std::string path = "test_sim_snapshot_geometry.fxar";
  ASSERT_TRUE(dual.save_file(path).ok());

  Session plain = Scenario().workload("swaptions").seed(7).iterations(600).plain().build();
  const u64 digest_before = soc::snapshot_digest(plain.snapshot());
  const io::ArchiveError err = plain.load_file(path);
  EXPECT_EQ(err.status, io::ArchiveStatus::kMalformed);
  EXPECT_EQ(soc::snapshot_digest(plain.snapshot()), digest_before);
  std::remove(path.c_str());
}

TEST(Snapshot, ForkedSessionRunsBitIdenticalToRunOn) {
  const Scenario scenario = small_verified_scenario();
  Session session = scenario.build();
  ASSERT_TRUE(session.advance(50'000));
  Session fork = session.fork();

  const soc::RunStats run_on = session.run();
  const soc::RunStats forked = fork.run();
  EXPECT_EQ(run_on, forked);
}

TEST(Snapshot, RestoreRewindsMidFlightState) {
  // Snapshot early, run further, restore, and check the observable clocks and
  // counters rewound exactly.
  Session session = small_verified_scenario().build();
  ASSERT_TRUE(session.advance(20'000));
  const u64 instret_at_save = session.total_instret();
  const Cycle cycle_at_save = session.soc().max_cycle();
  const soc::Snapshot warm = session.snapshot();

  ASSERT_TRUE(session.advance(30'000));
  ASSERT_GT(session.total_instret(), instret_at_save);

  session.restore(warm);
  EXPECT_EQ(session.total_instret(), instret_at_save);
  EXPECT_EQ(session.soc().max_cycle(), cycle_at_save);
}

TEST(Snapshot, LrScReservationRoundTripsThroughSnapshotAndFork) {
  // A reservation pending at snapshot time must behave identically after an
  // in-place restore and in a fork: the SC succeeds unless someone touched
  // the granule. The second half is the regression — the architectural flags
  // always round-tripped through Core::Snapshot, but the shared Memory
  // registry that delivers cross-agent invalidation has to be rebuilt on
  // restore, or a forked session's SC can spuriously succeed.
  constexpr Addr kGranule = 0x30000;
  isa::Assembler a;
  a.li(10, static_cast<i64>(kGranule));
  a.li(1, 5);
  a.sd(1, 10, 0);
  a.lr_d(5, 10);
  a.sc_d(7, 10, 1);
  a.halt();
  const Scenario scenario =
      Scenario().program(a.finalize("lr-sc")).plain().os_ticks(false);
  Session session = scenario.build();

  // Advance one instruction at a time until the LR retired (visible through
  // the shared reservation registry), leaving the SC as the next commit.
  while (session.soc().memory().reservation_count() == 0) {
    ASSERT_TRUE(session.advance(1));
  }
  const soc::Snapshot pending = session.snapshot();

  const auto sc_result = [](Session& s) {
    s.run();
    return s.soc().core(0).reg(7);  // 0 = SC success, 1 = failure
  };

  Session fork_clean = session.fork(pending);
  EXPECT_EQ(fork_clean.soc().memory().reservation_count(), 1u);
  EXPECT_EQ(sc_result(fork_clean), 0u) << "reservation lost across fork";

  Session fork_dirty = session.fork(pending);
  // Any agent writing the reserved granule must kill the restored
  // reservation — this is exactly what a stale (unrebuilt) registry misses.
  fork_dirty.soc().memory().write(kGranule, 8, 77);
  EXPECT_EQ(sc_result(fork_dirty), 1u) << "SC spuriously succeeded in the fork";

  session.restore(pending);
  EXPECT_EQ(sc_result(session), 0u) << "reservation lost across in-place restore";
}

TEST(Snapshot, CapturesResidentMemoryNotAddressSpace) {
  Session session = small_verified_scenario().build();
  ASSERT_TRUE(session.advance(20'000));
  const soc::Snapshot warm = session.snapshot();
  EXPECT_EQ(warm.memory.pages.size(), session.soc().memory().resident_pages());
  // Touched pages only: code + working set, nowhere near even 1 MiB of pages.
  EXPECT_LT(warm.memory.pages.size(), 4096u);
  EXPECT_GT(warm.bytes(), warm.memory.bytes());  // caches/fabric counted too
}

TEST(Snapshot, ForkIsolationFaultStaysInTheFork) {
  const Scenario scenario = small_verified_scenario();
  Session session = scenario.build();
  ASSERT_TRUE(session.advance(50'000));
  while (session.channel() != nullptr && session.channel()->empty()) {
    ASSERT_TRUE(session.advance(512));
  }
  ASSERT_NE(session.channel(), nullptr);
  const soc::Snapshot warm = session.snapshot();

  Session clean = session.fork(warm);
  Session faulty = session.fork(warm);

  Rng rng(99);
  const auto fault =
      faulty.channel()->inject_fault_at_tail(rng, faulty.soc().max_cycle());
  ASSERT_TRUE(fault.has_value());

  const soc::RunStats faulty_stats = faulty.run();
  const soc::RunStats clean_stats = clean.run();
  const soc::RunStats sibling_stats = session.run();

  // The siblings never saw the fault: bit-identical to each other, reporter
  // silent, channel fault flag clear.
  EXPECT_EQ(clean_stats, sibling_stats);
  EXPECT_EQ(clean.reporter().events().size(), 0u);
  EXPECT_EQ(session.reporter().events().size(), 0u);

  // The fork either detected its fault or masked it — and any detection stayed
  // inside the fork.
  if (faulty_stats.segments_failed > 0) {
    EXPECT_GT(faulty.reporter().detections(), 0u);
  }
  EXPECT_EQ(clean_stats.segments_failed, 0u);
  EXPECT_EQ(sibling_stats.segments_failed, 0u);
}

TEST(Snapshot, ForkSurvivesItsParentsDestruction) {
  // The fork owns its whole platform: run it after the parent (and the
  // snapshot) are gone.
  std::unique_ptr<Session> fork;
  soc::RunStats parent_stats;
  {
    Session session = small_verified_scenario().build();
    EXPECT_TRUE(session.advance(50'000));
    fork = std::make_unique<Session>(session.fork());
    parent_stats = session.run();
  }
  EXPECT_EQ(fork->run(), parent_stats);
}

TEST(CampaignParity, SnapshotForkMatchesWarmupReexecution) {
  // The acceptance bar: bit-identical CampaignStats at the same (seed,
  // shards) across materialisation modes, with the snapshot path executing
  // measurably fewer instructions. Three seeds.
  for (u64 seed : {u64{0xF417}, u64{1}, u64{2025}}) {
    fault::CampaignConfig config;
    config.target_faults = 24;
    config.warmup_rounds = 20'000;
    config.gap_rounds = 1'000;
    config.workload_iterations = 20'000;
    config.shards = 4;
    config.seed = seed;

    config.mode = fault::CampaignMode::kSnapshotFork;
    const auto forked = fault::run_fault_campaign(
        workloads::find_profile("swaptions"), soc::SocConfig::paper_default(2), config);

    config.mode = fault::CampaignMode::kWarmupReexecution;
    const auto reexecuted = fault::run_fault_campaign(
        workloads::find_profile("swaptions"), soc::SocConfig::paper_default(2), config);

    EXPECT_EQ(forked.injected, reexecuted.injected) << "seed " << seed;
    EXPECT_EQ(forked.detected, reexecuted.detected) << "seed " << seed;
    EXPECT_EQ(forked.undetected, reexecuted.undetected) << "seed " << seed;
    ASSERT_EQ(forked.outcomes.size(), reexecuted.outcomes.size()) << "seed " << seed;
    for (std::size_t i = 0; i < forked.outcomes.size(); ++i) {
      EXPECT_EQ(forked.outcomes[i].detected, reexecuted.outcomes[i].detected)
          << "seed " << seed << " outcome " << i;
      EXPECT_DOUBLE_EQ(forked.outcomes[i].latency_us, reexecuted.outcomes[i].latency_us)
          << "seed " << seed << " outcome " << i;
      EXPECT_EQ(forked.outcomes[i].detect_kind, reexecuted.outcomes[i].detect_kind)
          << "seed " << seed << " outcome " << i;
      EXPECT_EQ(forked.outcomes[i].target_kind, reexecuted.outcomes[i].target_kind)
          << "seed " << seed << " outcome " << i;
    }

    // The warmup (20k) dominates each injection's resolution tail, so
    // re-executing it per fault must cost at least 2x the snapshot path.
    EXPECT_GT(forked.total_instructions, 0u);
    EXPECT_GT(reexecuted.total_instructions, 2 * forked.total_instructions)
        << "seed " << seed;
  }
}

TEST(CampaignParity, SnapshotForkDeterministicAcrossThreads) {
  fault::CampaignConfig config;
  config.target_faults = 16;
  config.warmup_rounds = 10'000;
  config.gap_rounds = 1'000;
  config.workload_iterations = 20'000;
  config.shards = 4;

  config.threads = 1;
  const auto serial = fault::run_fault_campaign(
      workloads::find_profile("swaptions"), soc::SocConfig::paper_default(2), config);
  config.threads = 4;
  const auto parallel = fault::run_fault_campaign(
      workloads::find_profile("swaptions"), soc::SocConfig::paper_default(2), config);

  EXPECT_EQ(serial.detected, parallel.detected);
  EXPECT_EQ(serial.undetected, parallel.undetected);
  EXPECT_EQ(serial.total_instructions, parallel.total_instructions);
  ASSERT_EQ(serial.outcomes.size(), parallel.outcomes.size());
  for (std::size_t i = 0; i < serial.outcomes.size(); ++i) {
    EXPECT_EQ(serial.outcomes[i].detected, parallel.outcomes[i].detected);
    EXPECT_DOUBLE_EQ(serial.outcomes[i].latency_us, parallel.outcomes[i].latency_us);
  }
}

}  // namespace
}  // namespace flexstep::sim
