// Fig. 7: probability distribution of error-detection latency per Parsec
// workload, from fault-injection campaigns on the forwarded data (MAL
// entries + ASS checkpoints).
//
// Paper result: most mass concentrated around ~20 µs; blackscholes reaches
// 2-3x higher (up to ~50 µs); coverage > 99.9% of injected hardware faults.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/histogram.h"
#include "common/stats.h"
#include "common/table.h"
#include "fault/campaign.h"
#include "runtime/parallel.h"

using namespace flexstep;

int main() {
  const auto faults = static_cast<u32>(bench::env_u64("FLEX_FAULTS", 1200));
  std::printf("== Fig. 7: error-detection latency distribution (Parsec) ==\n");
  std::printf("(%u injected faults per workload; FLEX_FAULTS=5000 reproduces the\n"
              " paper's campaign size; %u threads)\n\n",
              faults, bench::thread_count());

  Table table({"workload", "detected", "coverage", "p50 us", "mean us", "p99 us",
               "max us"});

  Histogram example_hist(0.0, 40.0, 20);
  std::string example_name;

  // One job per workload; each campaign is itself sharded on the runtime
  // (nested runs execute inline, so this composes without oversubscription).
  const auto& profiles = workloads::parsec_profiles();
  const auto campaigns = runtime::parallel_map<fault::CampaignStats>(
      profiles.size(), [&](std::size_t i) {
        fault::CampaignConfig campaign;
        campaign.target_faults = faults;
        campaign.seed = 0xF417 + static_cast<u64>(profiles[i].name[0]);
        return fault::run_fault_campaign(profiles[i], soc::SocConfig::paper_default(2),
                                         campaign);
      });

  for (std::size_t i = 0; i < profiles.size(); ++i) {
    const auto& profile = profiles[i];
    const auto& stats = campaigns[i];
    const auto lat = stats.latencies_us();
    table.add_row({profile.name, std::to_string(stats.detected),
                   Table::num(stats.coverage() * 100.0, 2) + "%",
                   Table::num(percentile(lat, 50), 1), Table::num(mean(lat), 1),
                   Table::num(percentile(lat, 99), 1), Table::num(percentile(lat, 100), 1)});
    if (profile.name == "blackscholes") {
      example_name = profile.name;
      for (double v : lat) example_hist.add(v);
    }
  }
  table.print();

  std::printf("\nDensity of detection latency for %s (paper's heaviest tail):\n",
              example_name.c_str());
  std::printf("%s", example_hist.render(48).c_str());

  std::printf(
      "\npaper: latency mass around ~20 us, max ~50 us (blackscholes), coverage\n"
      ">99.9%%. measured: same shape at this simulator's segment pacing — see\n"
      "EXPERIMENTS.md for the absolute-scale discussion.\n");
  return 0;
}
