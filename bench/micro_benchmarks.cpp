// Micro-benchmarks (google-benchmark): throughput of the hot paths that the
// reproduction's experiments lean on — core simulation, checker replay, DBC
// channel operations, task-set generation and the three partitioners.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "sched/flexstep_partition.h"
#include "sched/hmr_partition.h"
#include "sched/lockstep_partition.h"
#include "sched/uunifast.h"
#include "soc/soc.h"
#include "soc/verified_run.h"
#include "workloads/nzdc.h"
#include "workloads/profile.h"
#include "workloads/program_builder.h"

using namespace flexstep;

namespace {

void BM_CoreSimulation(benchmark::State& state) {
  const auto& profile = workloads::find_profile("swaptions");
  workloads::BuildOptions build;
  build.iterations_override = 50;
  const auto program = workloads::build_workload(profile, build);
  u64 instructions = 0;
  for (auto _ : state) {
    soc::Soc soc(soc::SocConfig::paper_default(1));
    soc::VerifiedExecution exec(soc, soc::VerifiedRunConfig{0, {}});
    exec.prepare(program);
    instructions += exec.run().main_instructions;
  }
  state.counters["inst/s"] = benchmark::Counter(static_cast<double>(instructions),
                                                benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CoreSimulation)->Unit(benchmark::kMillisecond);

void BM_VerifiedSimulation(benchmark::State& state) {
  const auto& profile = workloads::find_profile("swaptions");
  workloads::BuildOptions build;
  build.iterations_override = 50;
  const auto program = workloads::build_workload(profile, build);
  u64 instructions = 0;
  for (auto _ : state) {
    soc::Soc soc(soc::SocConfig::paper_default(2));
    soc::VerifiedExecution exec(soc, soc::VerifiedRunConfig{0, {1}});
    exec.prepare(program);
    instructions += exec.run().main_instructions;
  }
  state.counters["inst/s"] = benchmark::Counter(static_cast<double>(instructions),
                                                benchmark::Counter::kIsRate);
}
BENCHMARK(BM_VerifiedSimulation)->Unit(benchmark::kMillisecond);

void BM_ChannelPushPop(benchmark::State& state) {
  fs::FlexStepConfig config;
  fs::MemLogEntry entry;
  entry.kind = fs::MemEntryKind::kLoadData;
  for (auto _ : state) {
    fs::Channel channel(0, 1, config);
    channel.push_scp({}, 0);
    for (int i = 0; i < 1000; ++i) channel.push_mem(entry, i);
    channel.push_segment_end({}, 1000, 1001);
    while (!channel.empty()) benchmark::DoNotOptimize(channel.pop(2000));
  }
  state.SetItemsProcessed(state.iterations() * 1002);
}
BENCHMARK(BM_ChannelPushPop);

void BM_NzdcTransform(benchmark::State& state) {
  const auto& profile = workloads::find_profile("bzip2");
  const auto program = workloads::build_workload(profile);
  for (auto _ : state) {
    benchmark::DoNotOptimize(workloads::nzdc_transform(program));
  }
  state.SetItemsProcessed(state.iterations() * program.code.size());
}
BENCHMARK(BM_NzdcTransform);

void BM_UUnifastGeneration(benchmark::State& state) {
  Rng rng(1);
  sched::TaskSetParams params;
  params.n = 160;
  params.total_utilization = 5.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::generate_task_set(params, rng));
  }
}
BENCHMARK(BM_UUnifastGeneration);

template <sched::PartitionResult (*Partitioner)(const sched::TaskSet&, u32)>
void BM_Partitioner(benchmark::State& state) {
  Rng rng(2);
  sched::TaskSetParams params;
  params.n = 160;
  params.alpha = 0.125;
  params.beta = 0.125;
  params.total_utilization = 0.6 * 8;
  const auto tasks = sched::generate_task_set(params, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Partitioner(tasks, 8));
  }
}
BENCHMARK(BM_Partitioner<sched::flexstep_partition>)->Name("BM_FlexStepPartition");
BENCHMARK(BM_Partitioner<sched::lockstep_partition>)->Name("BM_LockStepPartition");
BENCHMARK(BM_Partitioner<sched::hmr_partition>)->Name("BM_HmrPartition");

}  // namespace

BENCHMARK_MAIN();
